// Package build is the TESLA toolchain's incremental build engine: the §4
// pipeline (parse, compile to IR, analyse to manifest fragments, combine,
// compile automata, instrument per unit, link) restructured as a content-
// hash-keyed dependency graph executed by a bounded worker pool.
//
// Every node's cache key is the hash of its literal inputs (source bytes,
// file names, pipeline options) plus its dependencies' artifact hashes, so
// the graph gets early cutoff for free: an edit that re-runs a stage but
// reproduces byte-identical output stops invalidation right there. Two
// consequences reproduce the paper's §5.1 build behaviour measurably:
//
//   - Editing a function body re-compiles that file, but its manifest
//     fragment (and therefore the combined manifest) hashes the same, so
//     only that one unit re-instruments.
//   - Editing an assertion changes the combined manifest's hash, which is
//     an input to every instrument node — the one-to-many property: one
//     .tesla change re-instruments every unit in the program.
//
// With a disk-backed Cache (Open), artifacts persist across processes: an
// unchanged file is never re-parsed or re-compiled, because its interface
// summary, IR module and manifest fragment all load by key. Outputs are
// byte-identical to the sequential reference pipeline
// (toolchain.BuildSequential); internal/build's differential tests hold
// the two implementations together.
package build

import (
	"fmt"
	"sort"
	"sync"

	"tesla/internal/automata"
	"tesla/internal/compiler"
	"tesla/internal/csub"
	"tesla/internal/instrument"
	"tesla/internal/ir"
	"tesla/internal/manifest"
	"tesla/internal/staticcheck"
)

// Options selects pipeline stages and execution parameters.
type Options struct {
	// Instrument, Check, Elide and Entry mirror the sequential pipeline's
	// stage selection (toolchain.BuildOptions).
	Instrument bool
	Check      bool
	Elide      bool
	Entry      string
	// NoLiveness restricts the checker to the safety pass; part of the
	// check node's key, so toggling it re-runs the check and re-keys
	// every downstream instrument node exactly when the safe set moves.
	NoLiveness bool
	// Jobs bounds the worker pool; <= 0 means GOMAXPROCS.
	Jobs int
	// Cache supplies artifact reuse across builds; nil means a fresh
	// in-process cache (no reuse, but the graph still runs in parallel).
	Cache *Cache
}

// Result is a completed build plus the per-node execution report.
type Result struct {
	// Names are the source file names in the build's deterministic order.
	Names []string
	// Files holds parsed ASTs for the files this build actually parsed;
	// entries are nil for files served entirely from cache.
	Files []*csub.File
	// Units are the per-file compilation results, aligned with Names.
	Units []*compiler.Unit
	// Fragments are the per-file manifest fragments, aligned with Names.
	Fragments []*manifest.File
	// Manifest is the combined program manifest.
	Manifest *manifest.File
	// Autos are the compiled automata (instrumented builds only).
	Autos []*automata.Automaton
	// Program is the linked module.
	Program *ir.Module
	// Stats aggregates instrumentation statistics across units.
	Stats instrument.Stats
	// Engines reports the engine node's per-class lowering reuse
	// (instrumented builds only).
	Engines EngineStats
	// Report is the static checker's verdicts (Check builds only).
	Report *staticcheck.Report
	// Nodes reports every graph node's status, in pipeline order.
	Nodes []NodeReport
}

// EngineStats is the engine node's per-class outcome split: how many
// automaton classes had their transition engines lowered this build versus
// reinstalled from cached images. On a warm build every class is reused;
// an assertion edit re-lowers exactly the classes whose automata changed.
type EngineStats struct {
	Lowered int
	Reused  int
}

// NodeReport is one node's execution record, for -explain output.
type NodeReport struct {
	ID     string
	Status Status
	Key    string // content-hash key (hex), "" for parse records
	Err    error
}

// graphState carries the shared lazy singletons node run functions need:
// the parse memo (so a file demanded by both its interface and compile
// nodes parses once) and the compilation context (built from interface
// artifacts only after every interface node has finished).
type graphState struct {
	sources map[string]string
	names   []string

	parseMu sync.Mutex
	parsed  map[string]*parseEntry

	ifaceNodes []*node
	ctxOnce    sync.Once
	ctx        *compiler.Context
	ctxErr     error

	defsOnce sync.Once
	defs     map[string]bool
	defsFp   []byte
}

type parseEntry struct {
	once sync.Once
	file *csub.File
	err  error
}

// parse memoizes csub.Parse per file. It only ever runs for files whose
// interface or compile node missed the cache: an unchanged file with a
// warm disk cache is never re-parsed.
func (g *graphState) parse(name string) (*csub.File, error) {
	g.parseMu.Lock()
	e, ok := g.parsed[name]
	if !ok {
		e = &parseEntry{}
		g.parsed[name] = e
	}
	g.parseMu.Unlock()
	e.once.Do(func() {
		e.file, e.err = csub.Parse(name, g.sources[name])
	})
	return e.file, e.err
}

// context builds the cross-file compilation context from the interface
// artifacts. Callers run only after every interface node completed
// successfully (compile nodes depend on all of them), so the artifacts are
// present.
func (g *graphState) context() (*compiler.Context, error) {
	g.ctxOnce.Do(func() {
		ifaces := make([]*compiler.Interface, len(g.ifaceNodes))
		for i, n := range g.ifaceNodes {
			ifaces[i] = n.art.(*compiler.Interface)
		}
		g.ctx, g.ctxErr = compiler.NewContextFromInterfaces(ifaces...)
	})
	return g.ctx, g.ctxErr
}

// defined returns the program-wide defined-function set and its
// fingerprint (a deterministic serialisation, used as instrument/check key
// material). Same availability precondition as context.
func (g *graphState) defined() (map[string]bool, []byte) {
	g.defsOnce.Do(func() {
		g.defs = map[string]bool{}
		for _, n := range g.ifaceNodes {
			for _, fn := range n.art.(*compiler.Interface).Fns {
				g.defs[fn] = true
			}
		}
		names := make([]string, 0, len(g.defs))
		for fn := range g.defs {
			names = append(names, fn)
		}
		sort.Strings(names)
		var fp []byte
		for _, fn := range names {
			fp = append(fp, fn...)
			fp = append(fp, 0)
		}
		g.defsFp = fp
	})
	return g.defs, g.defsFp
}

// Run executes the build graph over the sources.
func Run(sources map[string]string, opts Options) (*Result, error) {
	cache := opts.Cache
	if cache == nil {
		cache = NewCache()
	}

	g := &graphState{
		sources: sources,
		parsed:  map[string]*parseEntry{},
	}
	for n := range sources {
		g.names = append(g.names, n)
	}
	sort.Strings(g.names)

	var nodes []*node
	add := func(n *node) *node {
		nodes = append(nodes, n)
		return n
	}

	// Stage 1: per-file interface summaries (parse on demand).
	for _, name := range g.names {
		name := name
		g.ifaceNodes = append(g.ifaceNodes, add(&node{
			id:        "iface:" + name,
			kind:      "iface",
			extra:     [][]byte{[]byte(name), []byte(sources[name])},
			cacheable: true,
			run: func() (any, error) {
				f, err := g.parse(name)
				if err != nil {
					return nil, err
				}
				return compiler.InterfaceOf(f), nil
			},
			encode: encodeIface,
			decode: decodeIface,
		}))
	}

	// Stage 2: per-file compilation to IR + assertion extraction. The key
	// is the file's own bytes plus every interface artifact hash (the
	// role of header dependencies in a C build): editing one file's body
	// leaves its interface — and so every other file's compile key —
	// unchanged.
	compileNodes := make([]*node, len(g.names))
	for i, name := range g.names {
		name := name
		compileNodes[i] = add(&node{
			id:        "compile:" + name,
			kind:      "compile",
			deps:      g.ifaceNodes,
			extra:     [][]byte{[]byte(name), []byte(sources[name])},
			cacheable: true,
			run: func() (any, error) {
				f, err := g.parse(name)
				if err != nil {
					return nil, err
				}
				ctx, err := g.context()
				if err != nil {
					return nil, err
				}
				u, err := compiler.CompileFile(f, ctx)
				if err != nil {
					return nil, err
				}
				frag, err := encodeManifest(manifest.FromAssertions(name, u.Assertions))
				if err != nil {
					return nil, err
				}
				return &unitArtifact{Module: u.Module, Fragment: frag}, nil
			},
			encode: encodeUnit,
			decode: decodeUnit,
		})
	}

	// Stage 3: per-file manifest fragments. Re-running is cheap; the point
	// of the node is early cutoff — a body edit re-compiles the file but
	// reproduces the same fragment bytes, so downstream combine hits.
	analyseNodes := make([]*node, len(g.names))
	for i, name := range g.names {
		i := i
		analyseNodes[i] = add(&node{
			id:        "analyse:" + name,
			kind:      "analyse",
			deps:      []*node{compileNodes[i]},
			cacheable: true,
			run: func() (any, error) {
				return compileNodes[i].art.(*unitArtifact).fragment()
			},
			encode: encodeManifest,
			decode: decodeManifest,
		})
	}

	// Stage 4: combine fragments into the program manifest. Its artifact
	// hash is the one-to-many pivot of §5.1: every instrument node keys on
	// it (via the automata node).
	combineNode := add(&node{
		id:        "combine",
		kind:      "combine",
		deps:      analyseNodes,
		cacheable: true,
		run: func() (any, error) {
			frags := make([]*manifest.File, len(analyseNodes))
			for i, n := range analyseNodes {
				frags[i] = n.art.(*manifest.File)
			}
			return manifest.Combine(frags...)
		},
		encode: encodeManifest,
		decode: decodeManifest,
	})

	// Stage 5: automata compilation from the combined manifest.
	var autosNode *node
	if opts.Instrument || opts.Check {
		autosNode = add(&node{
			id:        "automata",
			kind:      "automata",
			deps:      []*node{combineNode},
			cacheable: true,
			run: func() (any, error) {
				m := combineNode.art.(*manifest.File)
				autos, err := m.Compile()
				if err != nil {
					return nil, err
				}
				data, err := encodeManifest(m)
				if err != nil {
					return nil, err
				}
				return &autosArtifact{Autos: autos, Manifest: data}, nil
			},
			encode: encodeAutos,
			decode: decodeAutos,
		})
	}

	// Stage 5b: engine lowering. The node is *scheduled* after the automata
	// node but *keyed* on the per-class engine fingerprints (an `after`
	// dependency plus extraFn), so its cutoff is finer than the automata
	// artifact's: an edit that recompiles the manifest but leaves every
	// automaton's transition tables intact still hits. Inside the node each
	// class has its own disk object keyed on its fingerprint — an assertion
	// edit re-lowers exactly the classes whose automata changed and reuses
	// every other class's image.
	var engineNode *node
	if opts.Instrument {
		engineNode = add(&node{
			id:    "engine",
			kind:  "engine",
			after: []*node{autosNode},
			extraFn: func() [][]byte {
				autos := autosNode.art.(*autosArtifact).Autos
				fps := make([][]byte, len(autos))
				for i, a := range autos {
					fps[i] = automata.EngineFingerprint(a)
				}
				return fps
			},
			cacheable: true,
			run: func() (any, error) {
				autos := autosNode.art.(*autosArtifact).Autos
				art := &engineArtifact{Images: make([]*automata.EngineImage, len(autos))}
				for i, a := range autos {
					key := nodeKey("engine-image", [][]byte{automata.EngineFingerprint(a)}, nil)
					if data, ok := cache.getDisk(key); ok {
						if img, err := automata.DecodeEngineImage(data); err == nil {
							if err := a.AttachEngine(img); err == nil {
								art.Images[i] = img
								art.Reused++
								continue
							}
						}
						// Corrupt or stale image: re-lower over it.
					}
					data, err := automata.EncodeEngine(a)
					if err != nil {
						return nil, err
					}
					img, err := automata.DecodeEngineImage(data)
					if err != nil {
						return nil, err
					}
					art.Images[i] = img
					art.Lowered++
					_ = cache.putDisk(key, data)
				}
				return art, nil
			},
			encode: encodeEngines,
			decode: decodeEngines,
		})
	}

	// Static checking: the raw (uninstrumented, sites in place) linked
	// program, then the checker. The check node's artifact hash is its
	// elision set, so downstream instrument keys change exactly when the
	// set of provably-safe automata does. Reports are not persisted: a
	// fresh process re-derives verdicts (cheap relative to their value,
	// and Report carries live graph state).
	var checkNode *node
	if opts.Check {
		rawLink := add(&node{
			id:        "rawlink",
			kind:      "rawlink",
			deps:      compileNodes,
			cacheable: true,
			run: func() (any, error) {
				mods := make([]*ir.Module, len(compileNodes))
				for i, n := range compileNodes {
					mods[i] = n.art.(*unitArtifact).Module
				}
				m, err := ir.Link("program", mods...)
				if err != nil {
					return nil, err
				}
				return &moduleArtifact{Module: m}, nil
			},
			encode: encodeModule,
			decode: decodeModule,
		})
		checkNode = add(&node{
			id:      "check",
			kind:    "check",
			deps:    []*node{rawLink, autosNode},
			extra:   [][]byte{[]byte(opts.Entry), []byte(fmt.Sprintf("liveness=%t", !opts.NoLiveness))},
			extraFn: func() [][]byte { _, fp := g.defined(); return [][]byte{fp} },
			run: func() (any, error) {
				defs, _ := g.defined()
				return staticcheck.Check(
					rawLink.art.(*moduleArtifact).Module,
					autosNode.art.(*autosArtifact).Autos,
					staticcheck.Options{Entry: opts.Entry, DefinedFns: defs, NoLiveness: opts.NoLiveness},
				), nil
			},
			encode: func(art any) ([]byte, error) {
				return encodeSafeSet(art.(*staticcheck.Report)), nil
			},
		})
	}

	// Stage 6: per-unit instrumentation (or stripping). Deps: the unit's
	// module, the automata (for instrumented builds), and — with elision —
	// the checker's safe set.
	unitNodes := make([]*node, len(g.names))
	for i, name := range g.names {
		i := i
		if opts.Instrument {
			deps := []*node{compileNodes[i], autosNode}
			elide := opts.Elide && checkNode != nil
			if elide {
				deps = append(deps, checkNode)
			}
			suffix := fmt.Sprintf("__m%d", i)
			unitNodes[i] = add(&node{
				id:        "instrument:" + name,
				kind:      "instrument",
				deps:      deps,
				extra:     [][]byte{[]byte(suffix)},
				extraFn:   func() [][]byte { _, fp := g.defined(); return [][]byte{fp} },
				cacheable: true,
				run: func() (any, error) {
					defs, _ := g.defined()
					var elideSet map[string]bool
					if elide {
						elideSet = checkNode.art.(*staticcheck.Report).SafeSet()
					}
					m, stats, err := instrument.Module(
						compileNodes[i].art.(*unitArtifact).Module,
						autosNode.art.(*autosArtifact).Autos,
						instrument.Options{DefinedFns: defs, Suffix: suffix, Elide: elideSet},
					)
					if err != nil {
						return nil, err
					}
					ir.Optimize(m)
					return &moduleArtifact{Module: m, Stats: stats}, nil
				},
				encode: encodeModule,
				decode: decodeModule,
			})
		} else {
			unitNodes[i] = add(&node{
				id:        "strip:" + name,
				kind:      "strip",
				deps:      []*node{compileNodes[i]},
				cacheable: true,
				run: func() (any, error) {
					m := instrument.Strip(compileNodes[i].art.(*unitArtifact).Module)
					ir.Optimize(m)
					return &moduleArtifact{Module: m}, nil
				},
				encode: encodeModule,
				decode: decodeModule,
			})
		}
	}

	// Stage 7: link.
	linkNode := add(&node{
		id:        "link",
		kind:      "link",
		deps:      unitNodes,
		cacheable: true,
		run: func() (any, error) {
			mods := make([]*ir.Module, len(unitNodes))
			for i, n := range unitNodes {
				mods[i] = n.art.(*moduleArtifact).Module
			}
			m, err := ir.Link("program", mods...)
			if err != nil {
				return nil, err
			}
			return &moduleArtifact{Module: m}, nil
		},
		encode: encodeModule,
		decode: decodeModule,
	})

	x := &exec{cache: cache, jobs: opts.Jobs}
	x.runGraph(nodes)

	res := &Result{Names: g.names}
	for _, name := range g.names {
		g.parseMu.Lock()
		e := g.parsed[name]
		g.parseMu.Unlock()
		if e != nil && e.err == nil {
			res.Files = append(res.Files, e.file)
			res.Nodes = append(res.Nodes, NodeReport{ID: "parse:" + name, Status: StatusBuilt})
		} else {
			res.Files = append(res.Files, nil)
		}
	}
	for _, n := range nodes {
		res.Nodes = append(res.Nodes, NodeReport{ID: n.id, Status: n.status, Key: n.key, Err: n.err})
	}

	// Diagnostics: every failed node, deduplicated (shared singletons like
	// a context error surface once), in pipeline order.
	var errs []error
	seen := map[string]bool{}
	for _, n := range nodes {
		if n.status == StatusFailed && n.err != nil && !seen[n.err.Error()] {
			seen[n.err.Error()] = true
			errs = append(errs, n.err)
		}
	}
	if err := buildError(errs); err != nil {
		return res, err
	}

	// Assemble the result from the node artifacts.
	for i := range g.names {
		u, err := compileNodes[i].art.(*unitArtifact).unit()
		if err != nil {
			return res, err
		}
		res.Units = append(res.Units, u)
		res.Fragments = append(res.Fragments, analyseNodes[i].art.(*manifest.File))
	}
	res.Manifest = combineNode.art.(*manifest.File)
	if opts.Instrument {
		res.Autos = autosNode.art.(*autosArtifact).Autos
		if engineNode != nil {
			ea := engineNode.art.(*engineArtifact)
			for i, img := range ea.Images {
				if img == nil || i >= len(res.Autos) {
					continue
				}
				// A no-op when the engine node itself attached (it ran this
				// build); on a node-level cache hit this is where the cached
				// images install. A stale image is rejected here and the
				// class falls back to lazy lowering.
				_ = res.Autos[i].AttachEngine(img)
			}
			res.Engines = EngineStats{Lowered: ea.Lowered, Reused: ea.Reused}
			if engineNode.status != StatusBuilt {
				// Served from cache: no lowering happened anywhere.
				res.Engines = EngineStats{Reused: len(ea.Images)}
			}
		}
		for _, n := range unitNodes {
			s := n.art.(*moduleArtifact).Stats
			res.Stats.Hooks += s.Hooks
			res.Stats.Translators += s.Translators
			res.Stats.Sites += s.Sites
			res.Stats.ElidedHooks += s.ElidedHooks
			res.Stats.ElidedSites += s.ElidedSites
		}
	}
	if checkNode != nil {
		res.Report = checkNode.art.(*staticcheck.Report)
	}
	res.Program = linkNode.art.(*moduleArtifact).Module
	return res, nil
}

// encodeSafeSet serialises a report's provably-safe automata names — the
// only part of a check verdict downstream instrumentation keys on.
func encodeSafeSet(r *staticcheck.Report) []byte {
	var names []string
	for name := range r.SafeSet() {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []byte
	for _, n := range names {
		out = append(out, n...)
		out = append(out, 0)
	}
	return out
}
