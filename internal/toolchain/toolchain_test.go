package toolchain

import (
	"strings"
	"testing"

	"tesla/internal/core"
	"tesla/internal/manifest"
	"tesla/internal/monitor"
)

// progFig4 is a miniature of the paper's figures 3/4: a socket poll path
// where protocol-agnostic code performs the MAC check and protocol-specific
// code asserts it happened — across an indirect call through a function
// pointer, as in the real kernel.
const progFig4 = `
struct ucred { int uid; };
struct protosw { int (*pru_sopoll)(struct socket *, struct ucred *); };
struct socket { struct protosw *so_proto; int so_state; };

int mac_socket_check_poll(struct ucred *cred, struct socket *so) {
	return 0;
}

int sopoll_generic(struct socket *so, struct ucred *active_cred) {
	TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0);
	return 7;
}

int sopoll(struct socket *so, struct ucred *cred) {
	return so->so_proto->pru_sopoll(so, cred);
}

int soo_poll(struct socket *so, struct ucred *active_cred, int check) {
	if (check) {
		int error = mac_socket_check_poll(active_cred, so);
		if (error != 0) { return error; }
	}
	return sopoll(so, active_cred);
}

int amd64_syscall(struct socket *so, struct ucred *cred, int check) {
	return soo_poll(so, cred, check);
}

int main(int do_check) {
	struct protosw *p = alloc(protosw);
	p->pru_sopoll = sopoll_generic;
	struct socket *so = alloc(socket);
	so->so_proto = p;
	struct ucred *cred = alloc(ucred);
	cred->uid = 1001;
	return amd64_syscall(so, cred, do_check);
}
`

func TestPipelineFig4Good(t *testing.T) {
	b, err := BuildProgram(map[string]string{"uipc_socket.c": progFig4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Autos) != 1 {
		t.Fatalf("automata = %d", len(b.Autos))
	}
	if b.Stats.Sites != 1 || b.Stats.Translators == 0 || b.Stats.Hooks == 0 {
		t.Fatalf("stats = %+v", b.Stats)
	}

	h := core.NewCountingHandler()
	ret, _, err := b.Run("main", monitor.Options{Handler: h}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 7 {
		t.Fatalf("ret = %d", ret)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	// Both the bound (∗) instance (bypass) and the (so) clone accept.
	if h.Accepts("uipc_socket.c:11") == 0 {
		t.Fatalf("assertion did not accept: %v", h.Edges())
	}
}

func TestPipelineFig4BugDetected(t *testing.T) {
	b, err := BuildProgram(map[string]string{"uipc_socket.c": progFig4}, true)
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewCountingHandler()
	// do_check = 0: the kqueue-style path that skips the MAC check.
	ret, _, err := b.Run("main", monitor.Options{Handler: h}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 7 {
		t.Fatalf("ret = %d", ret)
	}
	vs := h.Violations()
	if len(vs) != 1 || vs[0].Kind != core.VerdictNoInstance {
		t.Fatalf("missing-check violation not detected: %v", vs)
	}
}

func TestPipelineFailStop(t *testing.T) {
	b, err := BuildProgram(map[string]string{"uipc_socket.c": progFig4}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Fail-stop is TESLA's default: the violation aborts execution.
	_, _, err = b.Run("main", monitor.Options{FailFast: true}, 0)
	if err == nil {
		t.Fatal("fail-stop run should abort")
	}
	if !strings.Contains(err.Error(), "mac_socket_check_poll") {
		t.Fatalf("error should cite the assertion: %v", err)
	}
}

func TestPipelineUninstrumented(t *testing.T) {
	b, err := BuildProgram(map[string]string{"uipc_socket.c": progFig4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Autos) != 0 {
		t.Fatal("uninstrumented build must carry no automata")
	}
	// The manifest is still produced by analysis.
	if len(b.Manifest.Assertions) != 1 {
		t.Fatalf("manifest = %+v", b.Manifest)
	}
	ret, _, err := b.Run("main", monitor.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 7 {
		t.Fatalf("ret = %d", ret)
	}
}

// TestInstrumentedSameResult: instrumentation must not change program
// semantics, only observe them.
func TestInstrumentedSameResult(t *testing.T) {
	src := map[string]string{"prog.c": `
int work(int n) {
	int acc = 0;
	int i = 0;
	while (i < n) {
		acc = acc + i * i % 7;
		if (acc > 100) { acc = acc - 50; }
		i++;
	}
	TESLA_WITHIN(main, previously(work(ANY(int))));
	return acc;
}
int main(int n) { return work(n); }
`}
	inst, err := BuildProgram(src, true)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildProgram(src, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{0, 1, 5, 40, 137} {
		r1, _, err := inst.Run("main", monitor.Options{}, n)
		if err != nil {
			t.Fatal(err)
		}
		r2, _, err := plain.Run("main", monitor.Options{}, n)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("n=%d: instrumented %d != plain %d", n, r1, r2)
		}
	}
}

// TestCrossModuleAssertion mirrors §5.1: an assertion in one file references
// an event (function) defined in another file.
func TestCrossModuleAssertion(t *testing.T) {
	sources := map[string]string{
		"libcrypto.c": `
int EVP_VerifyFinal(int ctx, int sig, int siglen, int key) {
	if (sig == 42) { return 1; }
	if (sig == 13) { return -1; }
	return 0;
}
`,
		"client.c": `
int fetch(int sig) {
	int ok = EVP_VerifyFinal(1, sig, 8, 2);
	TESLA_WITHIN(main, previously(
		EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1));
	return ok;
}
int main(int sig) { return fetch(sig); }
`,
	}
	b, err := BuildProgram(sources, true)
	if err != nil {
		t.Fatal(err)
	}

	h := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h}, 42); err != nil {
		t.Fatal(err)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("valid signature flagged: %v", vs)
	}

	// Forged signature: EVP_VerifyFinal returns -1, conflated with
	// success by the `ok != 0` style bug — TESLA catches it.
	h2 := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h2}, 13); err != nil {
		t.Fatal(err)
	}
	if vs := h2.Violations(); len(vs) != 1 {
		t.Fatalf("forged signature not detected: %v", vs)
	}
}

// TestFieldAssignPipeline drives a field-assignment automaton end to end.
func TestFieldAssignPipeline(t *testing.T) {
	src := map[string]string{"proc.c": `
#define P_SUGID 256
struct proc { int p_flag; int p_uid; };

int setuid(struct proc *p, int uid) {
	TESLA_SYSCALL(eventually(p.p_flag = P_SUGID));
	p->p_uid = uid;
	if (uid != 0) {
		p->p_flag = P_SUGID;
	}
	return 0;
}

int amd64_syscall(struct proc *p, int uid) {
	return setuid(p, uid);
}

int main(int uid) {
	struct proc *p = alloc(proc);
	return amd64_syscall(p, uid);
}
`}
	b, err := BuildProgram(src, true)
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h}, 1001); err != nil {
		t.Fatal(err)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("good path: %v", vs)
	}
	// uid==0 skips the flag assignment: the eventually obligation fails
	// at syscall exit.
	h2 := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h2}, 0); err != nil {
		t.Fatal(err)
	}
	vs := h2.Violations()
	if len(vs) != 1 || vs[0].Kind != core.VerdictIncomplete {
		t.Fatalf("missing P_SUGID not detected: %v", vs)
	}
}

// TestCallerSideInstrumentation forces caller-side hooks and checks they
// observe a function with no body in the program (a "library" call).
func TestCallerSideInstrumentation(t *testing.T) {
	src := map[string]string{
		"lib.c": `
int lib_op(int x) { return x + 1; }
`,
		"app.c": `
int run(int x) {
	int r = lib_op(x);
	TESLA_WITHIN(main, previously(caller(lib_op(ANY(int)) == 8)));
	return r;
}
int main(int x) { return run(x); }
`,
	}
	b, err := BuildProgram(src, true)
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h}, 7); err != nil {
		t.Fatal(err)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("caller-side hooks missed the event: %v", vs)
	}
	h2 := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h2}, 1); err != nil {
		t.Fatal(err)
	}
	if vs := h2.Violations(); len(vs) != 1 {
		t.Fatalf("wrong return value not detected: %v", vs)
	}
}

// TestIncallstackPipeline exercises the fig. 7 OR-of-paths pattern through
// the compiled toolchain, including the VM-backed call-stack query.
func TestIncallstackPipeline(t *testing.T) {
	src := map[string]string{"ufs.c": `
int mac_vnode_check_read(int cred, int vp) { return 0; }

int ffs_read(int vp, int checked) {
	TESLA_SYSCALL(incallstack(ufs_readdir)
		|| previously(mac_vnode_check_read(ANY(ptr), vp) == 0));
	return vp;
}

int ufs_readdir(int vp) {
	return ffs_read(vp, 0);
}

int amd64_syscall(int vp, int path) {
	if (path == 0) {
		int c = mac_vnode_check_read(1, vp);
		return ffs_read(vp, 1);
	}
	if (path == 1) {
		return ufs_readdir(vp);
	}
	return ffs_read(vp, 0);
}

int main(int path) {
	return amd64_syscall(55, path);
}
`}
	b, err := BuildProgram(src, true)
	if err != nil {
		t.Fatal(err)
	}
	for path, wantViolations := range map[int64]int{0: 0, 1: 0, 2: 1} {
		h := core.NewCountingHandler()
		if _, _, err := b.Run("main", monitor.Options{Handler: h}, path); err != nil {
			t.Fatal(err)
		}
		if vs := h.Violations(); len(vs) != wantViolations {
			t.Errorf("path %d: violations = %v, want %d", path, vs, wantViolations)
		}
	}
}

// TestManifestRoundTrip: the combined manifest survives encode/decode and
// recompiles to the same automata shapes.
func TestManifestRoundTrip(t *testing.T) {
	b, err := BuildProgram(map[string]string{"uipc_socket.c": progFig4}, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := b.Manifest.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := decodeManifest(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	autos2, err := m2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(autos2) != len(b.Autos) {
		t.Fatalf("automata count changed: %d vs %d", len(autos2), len(b.Autos))
	}
	for i := range autos2 {
		if autos2[i].States != b.Autos[i].States || len(autos2[i].Symbols) != len(b.Autos[i].Symbols) {
			t.Errorf("automaton %d shape changed", i)
		}
	}
}

func decodeManifest(s string) (*manifest.File, error) {
	return manifest.Decode(strings.NewReader(s))
}

// TestStrictAssertionPipeline: a strict() assertion compiled from csub
// rejects out-of-order events that conditional mode tolerates.
func TestStrictAssertionPipeline(t *testing.T) {
	build := func(modifier string) *Build {
		b, err := BuildProgram(map[string]string{"s.c": `
int step_a(int x) { return 0; }
int step_b(int x) { return 0; }
int run(int x, int order) {
	if (order) {
		int a = step_a(x);
		int b = step_b(x);
		TESLA_WITHIN(main, ` + modifier + `(previously(call(step_a), call(step_b))));
		return a + b;
	}
	int b = step_b(x);
	int a = step_a(x);
	TESLA_WITHIN(main, ` + modifier + `(previously(call(step_a), call(step_b))));
	return a + b;
}
int main(int order) { return run(5, order); }
`}, true)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Strict: b-then-a is a violation.
	strict := build("strict")
	h := core.NewCountingHandler()
	if _, _, err := strict.Run("main", monitor.Options{Handler: h}, 1); err != nil {
		t.Fatal(err)
	}
	if len(h.Violations()) != 0 {
		t.Fatalf("strict in-order flagged: %v", h.Violations())
	}
	h2 := core.NewCountingHandler()
	if _, _, err := strict.Run("main", monitor.Options{Handler: h2}, 0); err != nil {
		t.Fatal(err)
	}
	if len(h2.Violations()) == 0 {
		t.Fatal("strict out-of-order not flagged")
	}

	// Conditional tolerates the subsequence… but b,a alone has no a,b
	// subsequence, so it still fails at the site — via NoInstance rather
	// than strict's BadTransition.
	lax := build("conditional")
	h3 := core.NewCountingHandler()
	if _, _, err := lax.Run("main", monitor.Options{Handler: h3}, 0); err != nil {
		t.Fatal(err)
	}
	for _, v := range h3.Violations() {
		if v.Kind == core.VerdictBadTransition {
			t.Fatalf("conditional mode must not raise strict violations: %v", v)
		}
	}
}

// TestCustomBoundsPipeline: TESLA_ASSERT with explicit bounds spanning two
// different functions.
func TestCustomBoundsPipeline(t *testing.T) {
	b, err := BuildProgram(map[string]string{"cb.c": `
int begin_tx(int id) { return id; }
int end_tx(int id) { return 0; }
int log_write(int id) { return 0; }
int commit(int id, int doLog) {
	TESLA_ASSERT(perthread, call(begin_tx), returnfrom(end_tx),
		previously(log_write(id) == 0));
	return 0;
}
int main(int doLog) {
	int t = begin_tx(1);
	if (doLog) {
		int l = log_write(1);
	}
	int c = commit(1, doLog);
	return end_tx(1);
}
`}, true)
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h}, 1); err != nil {
		t.Fatal(err)
	}
	if len(h.Violations()) != 0 {
		t.Fatalf("logged commit flagged: %v", h.Violations())
	}
	h2 := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h2}, 0); err != nil {
		t.Fatal(err)
	}
	if len(h2.Violations()) != 1 {
		t.Fatalf("unlogged commit not flagged: %v", h2.Violations())
	}
}

// TestMultipleAssertionsShareBound: several assertions bounded by the same
// function are tracked independently.
func TestMultipleAssertionsShareBound(t *testing.T) {
	b, err := BuildProgram(map[string]string{"mb.c": `
int chk1(int x) { return 0; }
int chk2(int x) { return 0; }
int stage1(int x) {
	TESLA_SYSCALL_PREVIOUSLY(chk1(x) == 0);
	return 0;
}
int stage2(int x) {
	TESLA_SYSCALL_PREVIOUSLY(chk2(x) == 0);
	return 0;
}
int amd64_syscall(int x, int skip2) {
	int a = chk1(x);
	int s1 = stage1(x);
	if (skip2 == 0) {
		int b = chk2(x);
	}
	return stage2(x);
}
int main(int skip2) { return amd64_syscall(3, skip2); }
`}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Autos) != 2 {
		t.Fatalf("automata = %d", len(b.Autos))
	}
	h := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h}, 0); err != nil {
		t.Fatal(err)
	}
	if len(h.Violations()) != 0 {
		t.Fatalf("both checked: %v", h.Violations())
	}
	h2 := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h2}, 1); err != nil {
		t.Fatal(err)
	}
	vs := h2.Violations()
	if len(vs) != 1 || !strings.Contains(vs[0].Error(), "chk2") {
		t.Fatalf("only stage2 should fail: %v", vs)
	}
}

func TestBuildWithCheckAndElide(t *testing.T) {
	// progFig4 goes through a function pointer, so its assertion stays
	// NEEDS-RUNTIME: the checker must not elide anything, and the report
	// must say why.
	b, err := BuildProgramOpts(map[string]string{"fig4.c": progFig4}, BuildOptions{
		Instrument: true, Check: true, Elide: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Report == nil || len(b.Report.Results) != 1 {
		t.Fatalf("report = %+v", b.Report)
	}
	r := b.Report.Results[0]
	if r.Verdict.String() != "NEEDS-RUNTIME" {
		t.Fatalf("verdict = %s", r.Verdict)
	}
	if len(r.Reasons) == 0 || !strings.Contains(r.Reasons[0], "indirect call") {
		t.Fatalf("reasons = %v", r.Reasons)
	}
	if b.Stats.ElidedHooks != 0 || b.Stats.ElidedSites != 0 {
		t.Fatalf("unproved assertion elided: %+v", b.Stats)
	}
	// The instrumentation still works end to end.
	h := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h}, 1); err != nil {
		t.Fatal(err)
	}
	if len(h.Violations()) != 0 {
		t.Fatalf("checked run flagged: %v", h.Violations())
	}
	h2 := core.NewCountingHandler()
	if _, _, err := b.Run("main", monitor.Options{Handler: h2}, 0); err != nil {
		t.Fatal(err)
	}
	if len(h2.Violations()) != 1 {
		t.Fatalf("unchecked run not flagged: %v", h2.Violations())
	}
}

func TestCheckOnlyBuild(t *testing.T) {
	// Check without Instrument: the program is stripped (no monitor, no
	// hooks) but the report is still produced.
	b, err := BuildProgramOpts(map[string]string{"fig4.c": progFig4}, BuildOptions{Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Report == nil || len(b.Report.Results) != 1 {
		t.Fatalf("report = %+v", b.Report)
	}
	if len(b.Autos) != 0 {
		t.Fatalf("uninstrumented build kept autos: %d", len(b.Autos))
	}
	if ret, _, err := b.Run("main", monitor.Options{}, 0); err != nil || ret != 7 {
		t.Fatalf("stripped run = %d, %v", ret, err)
	}
}
