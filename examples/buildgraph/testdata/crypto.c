int verify(int sig) {
	int c = checksum(sig);
	if (c == 0) { return 1; }
	return 0;
}
