package core

// The compiled transition engine. The interpreted event bodies (update.go,
// shard.go) pay a per-event "interpreter tax" that is constant per
// (class, symbol): they rescan the transition set for every candidate
// instance, recompute HasCleanup and the «init» selection, and walk Key
// comparison bit by bit. A SymbolPlan hoists all of that out of the event
// loop at automaton-link time — internal/automata lowers each class into a
// StepEngine holding one plan per alphabet symbol — leaving monomorphic
// bodies whose per-event work is O(candidates) table lookups:
//
//   - a dense state→transition array (next) replaces the first-match scan
//     over the TransitionSet, with a 64-bit From-state bitmask in front of
//     it so the common no-edge case is one shift-and-test;
//   - the «init» transition and the cleanup flag are picked once, not once
//     per event;
//   - Key compatibility is unrolled for TESLA_KEY_SIZE = 4 into a branchless
//     mismatch mask, and clone-key unions skip the redundant compatibility
//     re-check the generic path pays;
//   - the reference store's candidate snapshot and exact-key probe stop as
//     soon as every live instance has been seen instead of walking the
//     whole preallocated block.
//
// The interpreted walk survives untouched as the executable differential
// reference, selectable per store via StoreOpts.NoEngine — the PR 3/4/8
// pattern: fast path + byte-identical reference + schedule-exploring parity
// gate (engine_diff_test.go, FuzzCompiledStep).

import "sync"

// The key-comparison unrolling below is only valid while TESLA_KEY_SIZE is
// 4; force a compile error if KeySize ever changes so the engine is revised
// rather than silently miscompiled.
const _ = uint(KeySize-4) + uint(4-KeySize)

// notePool recycles engine-path notification buffers. A noteBuf's inline
// array is several KB, and the interpreted entry points heap-allocate one
// per event (the buffer escapes into the policy closures and the handler
// interface); at millions of events per second that allocation — and the GC
// work of scanning it — is a large share of the per-event cost. The compiled
// entry point draws buffers from this pool instead, so the steady-state
// engine path allocates nothing. Safe because notes are delivered to
// handlers by pointer valid only for the duration of the callback
// (supervise.go: instances are copied because slots may be reused once the
// locks drop — the same contract covers the buffer itself).
var notePool = sync.Pool{New: func() any { return new(noteBuf) }}

// reset clears the used prefix — dropping class/violation references so a
// pooled buffer cannot pin them — and returns nb to its zero state.
func (nb *noteBuf) reset() {
	for i := 0; i < nb.n; i++ {
		nb.arr[i] = note{}
	}
	nb.n = 0
	nb.spill = nil
}

// refFail records one violation on the reference store's engine path: the
// fail closure of updateRefLocked as a direct call.
func (s *Store) refFail(cs *classState, nb *noteBuf, failStop bool, firstErr *error, v *Violation) {
	cs.health.Violations++
	nb.add(note{kind: noteFail, cls: cs.cls, v: v})
	if failStop && *firstErr == nil {
		*firstErr = v
	}
}

// shardedFail is refFail over the lock-striped store.
func (s *Store) shardedFail(sc *shardedClass, nb *noteBuf, failStop bool, firstErr *error, v *Violation) {
	sc.health.violations.Add(1)
	nb.add(note{kind: noteFail, cls: sc.cls, v: v})
	if failStop && *firstErr == nil {
		*firstErr = v
	}
}

// SymbolPlan is the compiled form of one (class, symbol) pair: everything
// UpdateState derives from the TransitionSet per event, derived once.
type SymbolPlan struct {
	// Cls, Symbol, Flags and TS are the arguments the equivalent
	// interpreted UpdateState call would take; the reference fallback
	// (StoreOpts.NoEngine) passes them through verbatim.
	Cls    *Class
	Symbol string
	Flags  SymbolFlags
	TS     TransitionSet

	// next[q] is the index in TS of the transition taken from state q
	// (first match wins, like the interpreted scan), or -1. The table
	// covers every From state in TS, so an out-of-range state provably has
	// no edge.
	next []int32
	// fromMask caches bit q of "state q has an edge" for states < 64 — a
	// branch-free prefilter for the common no-edge candidate.
	fromMask uint64
	// init is the index in TS of the first «init» transition, or -1.
	init int32
	// cleanup is TS.HasCleanup().
	cleanup bool
	// det and keyed classify the plan's shape (see Shape).
	det   bool
	keyed bool
}

// NewSymbolPlan lowers one (class, symbol) transition set into its engine
// plan. ts is retained (not copied); callers must not mutate it afterwards.
func NewSymbolPlan(cls *Class, symbol string, flags SymbolFlags, ts TransitionSet) *SymbolPlan {
	states := cls.States
	for i := range ts {
		if ts[i].From >= states {
			states = ts[i].From + 1
		}
	}
	p := &SymbolPlan{
		Cls:    cls,
		Symbol: symbol,
		Flags:  flags,
		TS:     ts,
		next:   make([]int32, states),
		init:   -1,
		det:    true,
	}
	for q := range p.next {
		p.next[q] = -1
	}
	for i := range ts {
		q := ts[i].From
		if p.next[q] >= 0 {
			// A second edge from the same state: the interpreted scan
			// takes the first, so the plan keeps it and the shape is
			// nondeterministic.
			p.det = false
			continue
		}
		p.next[q] = int32(i)
		if q < 64 {
			p.fromMask |= 1 << q
		}
		if ts[i].KeyMask != 0 {
			p.keyed = true
		}
	}
	if p.init < 0 {
		for i := range ts {
			if ts[i].Init() {
				p.init = int32(i)
				break
			}
		}
	}
	p.cleanup = ts.HasCleanup()
	return p
}

// NewSymbolPlanFromTables rebuilds a plan from precomputed tables (a decoded
// engine image from the build cache). The tables are validated against the
// transition set — a corrupt or stale image is rejected so the caller can
// fall back to fresh lowering — and the derived flags are recomputed from
// ts, which is authoritative.
func NewSymbolPlanFromTables(cls *Class, symbol string, flags SymbolFlags, ts TransitionSet, next []int32) (*SymbolPlan, error) {
	fresh := NewSymbolPlan(cls, symbol, flags, ts)
	if len(next) != len(fresh.next) {
		return nil, &EngineImageError{Class: cls.Name, Symbol: symbol, Reason: "state table length mismatch"}
	}
	for q, i := range next {
		if i != fresh.next[q] {
			return nil, &EngineImageError{Class: cls.Name, Symbol: symbol, Reason: "state table drifted from transition set"}
		}
	}
	return fresh, nil
}

// EngineImageError reports a cached engine image that does not match the
// automaton it was attached to.
type EngineImageError struct {
	Class, Symbol, Reason string
}

func (e *EngineImageError) Error() string {
	return "core: engine image for " + e.Class + "/" + e.Symbol + ": " + e.Reason
}

// Next exposes the dense state→transition table (index into TS per state,
// -1 for no edge) for serialisation by the build layer.
func (p *SymbolPlan) Next() []int32 { return p.next }

// HasInit reports whether the plan carries an «init» transition.
func (p *SymbolPlan) HasInit() bool { return p.init >= 0 }

// HasCleanup reports whether the plan finalises instances.
func (p *SymbolPlan) HasCleanup() bool { return p.cleanup }

// Deterministic reports whether every state has at most one edge.
func (p *SymbolPlan) Deterministic() bool { return p.det }

// Keyed reports whether any transition binds key slots.
func (p *SymbolPlan) Keyed() bool { return p.keyed }

// Shape names the plan's place in the engine's shape taxonomy — which
// specialisations apply — for diagnostics and the engine dump.
func (p *SymbolPlan) Shape() string {
	s := "det"
	if !p.det {
		s = "nondet"
	}
	if p.keyed {
		s += "+keyed"
	} else {
		s += "+unkeyed"
	}
	if p.init >= 0 {
		s += "+init"
	}
	if p.cleanup {
		s += "+cleanup"
	}
	return s
}

// find returns the transition taken from state q, or nil. One shift-and-test
// rejects edge-less states; the table lookup handles the rest.
func (p *SymbolPlan) find(q uint32) *Transition {
	if q < 64 {
		if p.fromMask&(1<<q) == 0 {
			return nil
		}
		return &p.TS[p.next[q]]
	}
	if q < uint32(len(p.next)) {
		if i := p.next[q]; i >= 0 {
			return &p.TS[i]
		}
	}
	return nil
}

// initTr returns the hoisted «init» transition, or nil.
func (p *SymbolPlan) initTr() *Transition {
	if p.init < 0 {
		return nil
	}
	return &p.TS[p.init]
}

// compatible4 is Key.Compatible unrolled for KeySize = 4: compare all four
// slots unconditionally into a mismatch mask, then test it against the slots
// bound in both keys. No per-slot branches, no loop.
func compatible4(k, o Key) bool {
	var bad uint32
	if k.Data[0] != o.Data[0] {
		bad = 1
	}
	if k.Data[1] != o.Data[1] {
		bad |= 2
	}
	if k.Data[2] != o.Data[2] {
		bad |= 4
	}
	if k.Data[3] != o.Data[3] {
		bad |= 8
	}
	return k.Mask&o.Mask&bad == 0
}

// union4 merges two keys known to be compatible (the engine body established
// it via compatible4), skipping Union's redundant re-check and panic guard.
func union4(k, o Key) Key {
	if o.Mask&1 != 0 {
		k.Data[0] = o.Data[0]
	}
	if o.Mask&2 != 0 {
		k.Data[1] = o.Data[1]
	}
	if o.Mask&4 != 0 {
		k.Data[2] = o.Data[2]
	}
	if o.Mask&8 != 0 {
		k.Data[3] = o.Data[3]
	}
	k.Mask |= o.Mask
	return k
}

// findExactFast is classState.findExact with an early exit once every live
// instance has been seen — engine-path only, so the reference store's
// whole-block scan stays byte-identical.
func (cs *classState) findExactFast(key Key) *Instance {
	seen := 0
	for i := range cs.insts {
		if !cs.insts[i].Active {
			continue
		}
		if cs.insts[i].Key == key {
			return &cs.insts[i]
		}
		if seen++; seen >= cs.live {
			break
		}
	}
	return nil
}

// UpdateStatePlan drives one program event through a compiled plan. It is
// observably equivalent to
//
//	s.UpdateState(p.Cls, p.Symbol, p.Flags, key, p.TS)
//
// — and literally is that call when the store was built with
// StoreOpts.NoEngine, which is how the differential harness runs the same
// event stream through the interpreted reference.
func (s *Store) UpdateStatePlan(p *SymbolPlan, key Key) error {
	if s.noEngine {
		return s.UpdateState(p.Cls, p.Symbol, p.Flags, key, p.TS)
	}
	nb := notePool.Get().(*noteBuf)
	var err error
	if s.nshards > 0 {
		sc := s.shardedClassOf(p.Cls)
		if sc == nil {
			s.Register(p.Cls)
			sc = s.shardedClassOf(p.Cls)
		}
		err = s.updateShardedEngine(sc, p, key, nb)
	} else {
		err = s.updateRefEngine(p, key, nb)
	}
	s.dispatch(nb)
	nb.reset()
	notePool.Put(nb)
	return err
}

// updateRefEngine locks the reference store and runs the compiled body.
func (s *Store) updateRefEngine(p *SymbolPlan, key Key, nb *noteBuf) error {
	s.lock()
	defer s.unlock()
	cs := s.classes[p.Cls]
	if cs == nil {
		s.unlock()
		s.Register(p.Cls)
		s.lock()
		cs = s.classes[p.Cls]
	}
	return s.updateRefEngineLocked(cs, p, key, nb)
}

// updateRefEngineLocked is the compiled event body over the reference store:
// the same lifecycle as updateRefLocked (update.go), with the per-event
// derivations replaced by the plan's tables. Every divergence in behaviour
// is a bug the differential gate exists to catch.
func (s *Store) updateRefEngineLocked(cs *classState, p *SymbolPlan, key Key, nb *noteBuf) error {
	cls := cs.cls
	if s.refQuarGate(cs, nb) {
		return nil
	}

	// Direct calls to the policy machinery (refFail/refClaim) instead of the
	// interpreted body's closures: the closures force nb onto the heap per
	// event, and the engine's whole point is to leave nothing per-event.
	var firstErr error
	failStop := cs.pol.failureIn(s) == FailStop

	// Snapshot the instances live before this event, stopping at the live
	// count instead of walking the whole preallocated block.
	var candArr [DefaultInstanceLimit]refCand
	live := candArr[:0]
	for i, n := 0, cs.live; i < len(cs.insts) && len(live) < n; i++ {
		if cs.insts[i].Active {
			live = append(live, refCand{idx: i, birth: cs.insts[i].birth})
		}
	}

	matched := false
	for _, c := range live {
		inst := &cs.insts[c.idx]
		if !inst.Active || inst.birth != c.birth {
			continue
		}
		if !compatible4(inst.Key, key) {
			continue
		}

		tr := p.find(inst.State)
		if tr == nil {
			switch {
			case p.cleanup:
				s.refFail(cs, nb, failStop, &firstErr, &Violation{Class: cls, Kind: VerdictIncomplete, Key: inst.Key, State: inst.State, Symbol: p.Symbol})
			case p.Flags&SymStrict != 0:
				s.refFail(cs, nb, failStop, &firstErr, &Violation{Class: cls, Kind: VerdictBadTransition, Key: inst.Key, State: inst.State, Symbol: p.Symbol})
				inst.Active = false
				cs.live--
			}
			continue
		}

		if key.Mask&^inst.Key.Mask != 0 {
			// Specialisation (compatibility already established): clone.
			newKey := union4(inst.Key, key)
			if cs.findExactFast(newKey) != nil {
				matched = true
				continue
			}
			parent := *inst
			clone := s.refClaim(cs, nb, failStop, &firstErr, newKey)
			if clone == nil {
				continue
			}
			cs.birthClock++
			*clone = Instance{State: tr.To, Key: newKey, Active: true, birth: cs.birthClock}
			cs.commit()
			nb.add(note{kind: noteClone, cls: cls, parent: parent, inst: *clone})
			nb.add(note{kind: noteTransition, cls: cls, inst: *clone, from: tr.From, to: tr.To, symbol: p.Symbol})
			matched = true
			if tr.Cleanup() {
				nb.add(note{kind: noteAccept, cls: cls, inst: *clone})
			}
			continue
		}

		from := inst.State
		inst.State = tr.To
		nb.add(note{kind: noteTransition, cls: cls, inst: *inst, from: from, to: tr.To, symbol: p.Symbol})
		matched = true
		if tr.Cleanup() {
			nb.add(note{kind: noteAccept, cls: cls, inst: *inst})
		}
	}

	if !matched && !cs.quarantined {
		if init := p.initTr(); init != nil {
			initKey := key.project(init.KeyMask)
			if cs.findExactFast(initKey) == nil {
				if inst := s.refClaim(cs, nb, failStop, &firstErr, initKey); inst != nil {
					cs.birthClock++
					*inst = Instance{State: init.To, Key: initKey, Active: true, birth: cs.birthClock}
					cs.commit()
					nb.add(note{kind: noteNew, cls: cls, inst: *inst})
					nb.add(note{kind: noteTransition, cls: cls, inst: *inst, from: init.From, to: init.To, symbol: p.Symbol})
					matched = true
					if init.Cleanup() {
						nb.add(note{kind: noteAccept, cls: cls, inst: *inst})
					}
				}
			}
		} else if p.Flags&SymRequired != 0 && cs.live > 0 {
			s.refFail(cs, nb, failStop, &firstErr, &Violation{Class: cls, Kind: VerdictNoInstance, Key: key, Symbol: p.Symbol})
		}
	}

	if p.cleanup && !cs.quarantined {
		cs.expunge()
	}

	return firstErr
}

// updateShardedEngine is the compiled analogue of updateShardedLocked: the
// same quarantine gate and plan/lock/re-plan escalation, with the «init»
// selection and cleanup escalation taken from the plan.
func (s *Store) updateShardedEngine(sc *shardedClass, p *SymbolPlan, key Key, nb *noteBuf) error {
	if s.shardedQuarGate(sc, nb) {
		return nil
	}

	set, scan := sc.planWith(key, p.initTr())
	if p.cleanup {
		set = sc.allMask()
	}
	for tries := 0; ; tries++ {
		s.lockShards(sc, set)
		need, nscan := sc.planWith(key, p.initTr())
		if need&^set == 0 {
			scan = nscan
			break
		}
		s.unlockShards(sc, set)
		if tries >= 1 {
			set = sc.allMask()
		} else {
			set |= need
		}
	}
	defer s.unlockShards(sc, set)
	return s.updateShardedEngineBody(sc, p, key, nb, set, scan)
}

// updateShardedEngineBody is the compiled event body over the lock-striped
// store, mirroring updateShardedBody (shard.go) with the plan's tables in
// place of the per-event scans. The caller holds the stripe locks in set.
func (s *Store) updateShardedEngineBody(sc *shardedClass, p *SymbolPlan, key Key, nb *noteBuf, set uint64, scan bool) error {
	if sc.needsFlush.Load() && set == sc.allMask() {
		sc.expungeLocked()
		sc.needsFlush.Store(false)
	}

	// As in the reference engine body: direct shardedFail/shardedClaim calls
	// so nothing per-event escapes to the heap.
	var firstErr error
	failStop := sc.pol.failureIn(s) == FailStop

	var candBuf [DefaultInstanceLimit]shardCand
	cand := candBuf[:0]
	if scan {
		for si := range sc.shards {
			for _, e := range sc.shards[si].table {
				if e == 0 {
					continue
				}
				if slot := int32(e - 1); compatible4(sc.insts[slot].Key, key) {
					cand = append(cand, shardCand{slot: slot, birth: sc.insts[slot].birth})
				}
			}
		}
	} else {
		for m := uint32(0); m <= keyMaskAll; m++ {
			if m&^key.Mask != 0 || sc.masks[m].Load() == 0 {
				continue
			}
			k := key.project(m)
			if slot := sc.findIn(&sc.shards[sc.shardOf(k)], k); slot >= 0 {
				cand = append(cand, shardCand{slot: slot, birth: sc.insts[slot].birth})
			}
		}
	}
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && cand[j].slot < cand[j-1].slot; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}

	matched := false
	for _, c := range cand {
		if sc.quarantined.Load() {
			break
		}
		inst := &sc.insts[c.slot]
		if !inst.Active || inst.birth != c.birth {
			continue
		}

		tr := p.find(inst.State)
		if tr == nil {
			switch {
			case p.cleanup:
				s.shardedFail(sc, nb, failStop, &firstErr, &Violation{Class: sc.cls, Kind: VerdictIncomplete, Key: inst.Key, State: inst.State, Symbol: p.Symbol})
			case p.Flags&SymStrict != 0:
				s.shardedFail(sc, nb, failStop, &firstErr, &Violation{Class: sc.cls, Kind: VerdictBadTransition, Key: inst.Key, State: inst.State, Symbol: p.Symbol})
				sc.deactivate(c.slot)
			}
			continue
		}

		if key.Mask&^inst.Key.Mask != 0 {
			newKey := union4(inst.Key, key)
			if sc.findIn(&sc.shards[sc.shardOf(newKey)], newKey) >= 0 {
				matched = true
				continue
			}
			parent := *inst
			nslot := s.shardedClaim(sc, nb, failStop, &firstErr, set, newKey)
			if nslot < 0 {
				continue
			}
			clone := sc.activate(nslot, tr.To, newKey)
			nb.add(note{kind: noteClone, cls: sc.cls, parent: parent, inst: *clone})
			nb.add(note{kind: noteTransition, cls: sc.cls, inst: *clone, from: tr.From, to: tr.To, symbol: p.Symbol})
			matched = true
			if tr.Cleanup() {
				nb.add(note{kind: noteAccept, cls: sc.cls, inst: *clone})
			}
			continue
		}

		from := inst.State
		inst.State = tr.To
		nb.add(note{kind: noteTransition, cls: sc.cls, inst: *inst, from: from, to: tr.To, symbol: p.Symbol})
		matched = true
		if tr.Cleanup() {
			nb.add(note{kind: noteAccept, cls: sc.cls, inst: *inst})
		}
	}

	if !matched && !sc.quarantined.Load() {
		if init := p.initTr(); init != nil {
			initKey := key.project(init.KeyMask)
			if sc.findIn(&sc.shards[sc.shardOf(initKey)], initKey) < 0 {
				if slot := s.shardedClaim(sc, nb, failStop, &firstErr, set, initKey); slot >= 0 {
					inst := sc.activate(slot, init.To, initKey)
					nb.add(note{kind: noteNew, cls: sc.cls, inst: *inst})
					nb.add(note{kind: noteTransition, cls: sc.cls, inst: *inst, from: init.From, to: init.To, symbol: p.Symbol})
					matched = true
					if init.Cleanup() {
						nb.add(note{kind: noteAccept, cls: sc.cls, inst: *inst})
					}
				}
			}
		} else if p.Flags&SymRequired != 0 && sc.live.Load() > 0 {
			s.shardedFail(sc, nb, failStop, &firstErr, &Violation{Class: sc.cls, Kind: VerdictNoInstance, Key: key, Symbol: p.Symbol})
		}
	}

	if p.cleanup && !sc.quarantined.Load() {
		sc.expungeLocked()
	}

	return firstErr
}
