package staticcheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tesla/internal/staticcheck"
)

// The verdict programs double as the soundness corpus in sound_test.go.
var verdictPrograms = []struct {
	name    string
	verdict staticcheck.Verdict
	src     string
}{
	{
		// The required `previously` event runs on every path to the site.
		name:    "safe_previously",
		verdict: staticcheck.Safe,
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int r = audit_log(x);
	return do_work(x);
}
`,
	},
	{
		// The event function exists but is never called: the site can
		// never be satisfied. The lint pass cannot see this.
		name:    "doomed_previously",
		verdict: staticcheck.Failing,
		src: `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(ANY(int))));
	return x;
}
int main(int x) { return do_work(x); }
`,
	},
	{
		// The event only happens on one branch: runtime must decide.
		name:    "conditional_event",
		verdict: staticcheck.NeedsRuntime,
		src: `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(ANY(int))));
	return x;
}
int main(int x) {
	if (x > 0) {
		int r = security_check(x);
	}
	return do_work(x);
}
`,
	},
	{
		// A constant return pattern may fail to match, so delivery of the
		// event is not certain even though the call always runs.
		name:    "ret_pattern_may_fire",
		verdict: staticcheck.NeedsRuntime,
		src: `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(ANY(int)) == 0));
	return x;
}
int main(int x) {
	int r = security_check(x);
	return do_work(x);
}
`,
	},
	{
		// A scope variable keys the instances; the general instance never
		// moves on keyed events, so nothing is provable.
		name:    "keyed_event",
		verdict: staticcheck.NeedsRuntime,
		src: `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(x)));
	return x;
}
int main(int x) {
	int r = security_check(x);
	return do_work(x);
}
`,
	},
	{
		// eventually() whose event never occurs: stuck at bound exit on
		// every path — Incomplete is guaranteed.
		name:    "doomed_eventually",
		verdict: staticcheck.Failing,
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int main(int x) { return do_work(x); }
`,
	},
	{
		// eventually() whose event always follows the site.
		name:    "safe_eventually",
		verdict: staticcheck.Safe,
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int w = do_work(x);
	int r = audit_log(x);
	return w;
}
`,
	},
	{
		// incallstack satisfied: the site is only reached under helper.
		name:    "safe_incallstack",
		verdict: staticcheck.Safe,
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, incallstack(helper) || previously(audit_log(ANY(int))));
	return x;
}
int helper(int x) { return do_work(x); }
int main(int x) { return helper(x); }
`,
	},
	{
		// incallstack never satisfied and the alternative event never
		// happens: doomed.
		name:    "doomed_incallstack",
		verdict: staticcheck.Failing,
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, incallstack(helper) || previously(audit_log(ANY(int))));
	return x;
}
int helper(int x) { return do_work(x); }
int main(int x) { return do_work(x); }
`,
	},
	{
		// A loop between bound begin and the doomed site must not weaken
		// the FAILING proof: diverging runs are outside the quantifier.
		name:    "doomed_after_loop",
		verdict: staticcheck.Failing,
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	while (x > 0) {
		x = x - 1;
	}
	return do_work(x);
}
`,
	},
	{
		// Recursion defeats the interprocedural analysis.
		name:    "recursion_bails",
		verdict: staticcheck.NeedsRuntime,
		src: `
int audit_log(int x) { return 0; }
int fact(int n) {
	if (n < 2) { return 1; }
	return fact(n - 1);
}
int do_work(int x) {
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int r = audit_log(x);
	int f = fact(3);
	return do_work(x);
}
`,
	},
	{
		// An indirect call hides arbitrary callees.
		name:    "callptr_bails",
		verdict: staticcheck.NeedsRuntime,
		src: `
int audit_log(int x) { return 0; }
int call_it(int audit_log) { return audit_log(); }
int do_work(int x) {
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int r = audit_log(x);
	int c = call_it(x);
	return do_work(x);
}
`,
	},
	{
		// Every run dies with a VM error at the undefined callee before
		// the site: no execution can produce a violation, so the doomed-
		// looking assertion is in fact safe.
		name:    "escape_before_site_is_safe",
		verdict: staticcheck.Safe,
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int e = external_fn(x);
	return do_work(x);
}
`,
	},
	{
		// Only one branch escapes: the other path is guaranteed to
		// violate, but a run may also die violation-free, so neither
		// SAFE nor FAILING can be claimed.
		name:    "escape_blocks_failing",
		verdict: staticcheck.NeedsRuntime,
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	if (x > 0) {
		int e = external_fn(x);
	}
	return do_work(x);
}
`,
	},
}

func TestVerdicts(t *testing.T) {
	for _, tc := range verdictPrograms {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := staticcheck.CheckSources(map[string]string{tc.name + ".c": tc.src}, "main")
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Results) != 1 {
				t.Fatalf("results = %d", len(rep.Results))
			}
			r := rep.Results[0]
			if r.Verdict != tc.verdict {
				t.Fatalf("verdict = %s, want %s (reasons: %v)", r.Verdict, tc.verdict, r.Reasons)
			}
			if r.Verdict != staticcheck.Safe && len(r.Reasons) == 0 {
				t.Fatal("non-SAFE verdict must carry a reason")
			}
		})
	}
}

func TestCrossFileResolution(t *testing.T) {
	// The event function is defined in another translation unit; the
	// checker links the program before walking it.
	sources := map[string]string{
		"main.c": `
int do_work(int x) {
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int r = audit_log(x);
	return do_work(x);
}
`,
		"lib.c": `
int audit_log(int x) { return 0; }
`,
	}
	rep, err := staticcheck.CheckSources(sources, "main")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Verdict != staticcheck.Safe {
		t.Fatalf("verdict = %s, want PROVABLY-SAFE: %v", rep.Results[0].Verdict, rep.Results[0].Reasons)
	}
}

func TestMissingEntry(t *testing.T) {
	rep, err := staticcheck.CheckSources(map[string]string{"a.c": `
int audit_log(int x) { return 0; }
int start(int x) {
	TESLA_WITHIN(start, previously(audit_log(ANY(int))));
	return x;
}
`}, "main")
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Verdict != staticcheck.NeedsRuntime || !strings.Contains(strings.Join(r.Reasons, " "), "entry") {
		t.Fatalf("verdict = %s %v", r.Verdict, r.Reasons)
	}
	// With the right entry the same program is provable.
	rep, err = staticcheck.CheckSources(map[string]string{"a.c": `
int audit_log(int x) { return 0; }
int start(int x) {
	int r = audit_log(x);
	TESLA_WITHIN(start, previously(audit_log(ANY(int))));
	return x;
}
`}, "start")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Verdict != staticcheck.Safe {
		t.Fatalf("verdict = %s %v", rep.Results[0].Verdict, rep.Results[0].Reasons)
	}
}

func TestReportHelpers(t *testing.T) {
	sources := map[string]string{"two.c": `
int audit_log(int x) { return 0; }
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	TESLA_WITHIN(main, previously(security_check(ANY(int))));
	return x;
}
int main(int x) {
	int r = audit_log(x);
	return do_work(x);
}
`}
	rep, err := staticcheck.CheckSources(sources, "main")
	if err != nil {
		t.Fatal(err)
	}
	safe, failing, runtime := rep.Counts()
	if safe != 1 || failing != 1 || runtime != 0 {
		t.Fatalf("counts = %d/%d/%d", safe, failing, runtime)
	}
	set := rep.SafeSet()
	if len(set) != 1 || !set["two.c:5"] {
		t.Fatalf("safe set = %v", set)
	}
	if rep.Result("two.c:6") == nil || rep.Result("nope") != nil {
		t.Fatal("Result lookup broken")
	}
}

func TestDotOutput(t *testing.T) {
	rep, err := staticcheck.CheckSources(map[string]string{"d.c": verdictPrograms[0].src}, "main")
	if err != nil {
		t.Fatal(err)
	}
	dot := rep.Results[0].Dot()
	if !strings.HasPrefix(dot, "digraph ") || !strings.Contains(dot, "->") {
		t.Fatalf("dot output malformed:\n%s", dot)
	}
	if !strings.Contains(dot, "audit_log") {
		t.Fatalf("dot output lacks event labels:\n%s", dot)
	}
}

// TestExamplePrograms pins the verdicts for the on-disk demo sources that
// the README and the Makefile `check` target rely on.
func TestExamplePrograms(t *testing.T) {
	cases := map[string]staticcheck.Verdict{
		"safe.c":   staticcheck.Safe,
		"doomed.c": staticcheck.Failing,
	}
	for name, want := range cases {
		text, err := os.ReadFile(filepath.Join("..", "..", "examples", "staticcheck", "testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := staticcheck.CheckSources(map[string]string{name: string(text)}, "main")
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Results) != 1 || rep.Results[0].Verdict != want {
			t.Fatalf("%s: verdict = %s, want %s (%v)", name, rep.Results[0].Verdict, want, rep.Results[0].Reasons)
		}
	}
}
