package kernel

import "tesla/internal/core"

// Vnode is a VFS node. Ops is the per-filesystem operation table — the
// function-pointer indirection that separates access-control checks from
// the code they govern (fig. 3) and defeats simple static analysis.
type Vnode struct {
	ID    core.Value
	Path  string
	Label int64
	Data  []byte
	Mode  int64
	Owner int64
	// ExtAttrs holds extended attributes; ACLs are stored in one of them
	// and accessed by UFS itself via vn_rdwr, requiring different MAC
	// enforcement depending on the code path (§3.5.2).
	ExtAttrs map[string][]byte
	Ops      *VnodeOps
	Dir      bool
	Children []string
	refs     int
}

// VnodeOps is the vnode operation table (struct vop_vector).
type VnodeOps struct {
	Open    func(t *Thread, vp *Vnode, mode int64) int64
	Read    func(t *Thread, vp *Vnode, n int64) int64
	Write   func(t *Thread, vp *Vnode, n int64) int64
	Readdir func(t *Thread, vp *Vnode) int64
	Setattr func(t *Thread, vp *Vnode, mode int64) int64
	Getattr func(t *Thread, vp *Vnode) int64
}

type filesystem struct {
	k     *Kernel
	nodes map[string]*Vnode
	ufs   *VnodeOps
}

func newFilesystem(k *Kernel) *filesystem {
	fs := &filesystem{k: k, nodes: map[string]*Vnode{}}
	fs.ufs = &VnodeOps{
		Open:    ufsOpen,
		Read:    ffsRead,
		Write:   ffsWrite,
		Readdir: ufsReaddir,
		Setattr: ufsSetattr,
		Getattr: ufsGetattr,
	}
	root := fs.mknode("/", true)
	root.Label = 0
	return fs
}

func (fs *filesystem) mknode(path string, dir bool) *Vnode {
	vp := &Vnode{
		ID:       fs.k.id(),
		Path:     path,
		Ops:      fs.ufs,
		Dir:      dir,
		ExtAttrs: map[string][]byte{},
		refs:     1,
	}
	fs.nodes[path] = vp
	return vp
}

// lookup resolves a path, performing the MAC lookup check against the
// containing directory.
func (t *Thread) lookup(path string, create bool) (*Vnode, int64) {
	t.enter("namei", core.Value(len(path)))
	defer t.exit("namei", 0, core.Value(len(path)))
	root := t.k.fs.nodes["/"]
	if err := t.macVnodeCheck("mac_vnode_check_lookup", t.proc.Cred, root); err != OK {
		return nil, err
	}
	t.site("MF:namei", root.ID)
	vp, ok := t.k.fs.nodes[path]
	if !ok {
		if !create {
			return nil, ENOENT
		}
		if err := t.macVnodeCheck("mac_vnode_check_create", t.proc.Cred, root); err != OK {
			return nil, err
		}
		t.site("MF:create", root.ID)
		vp = t.k.fs.mknode(path, false)
		root.Children = append(root.Children, path)
	}
	return vp, OK
}

// OpenKind distinguishes the open-like operations that each carry their own
// MAC check: regular opens, binary execution and kernel-module loading
// (§3.5.2: “we initially believed that mac_vnode_check_open authorised all
// file-system level open operations, and quickly discovered that different
// checks handled other open-like operations”).
type OpenKind int

const (
	OpenNormal OpenKind = iota
	OpenExec
	OpenKldload
)

// vnOpen is the VFS-level open path: the appropriate MAC check, then the
// filesystem's VOP_OPEN through the operation table.
func (t *Thread) vnOpen(path string, kind OpenKind, create bool) (*Vnode, int64) {
	t.enter("vn_open", core.Value(kind))
	defer t.exit("vn_open", 0, core.Value(kind))
	vp, err := t.lookup(path, create)
	if err != OK {
		return nil, err
	}
	switch kind {
	case OpenExec:
		if err := t.macVnodeCheck("mac_vnode_check_exec", t.proc.Cred, vp); err != OK {
			return nil, err
		}
	case OpenKldload:
		if err := t.macKldCheckLoad(t.proc.Cred, vp); err != OK {
			return nil, err
		}
	default:
		if err := t.macVnodeCheck("mac_vnode_check_open", t.proc.Cred, vp); err != OK {
			return nil, err
		}
	}
	t.site("MF:vn_open", vp.ID)
	t.lock("vnode")
	ret := vp.Ops.Open(t, vp, 0)
	t.unlock("vnode")
	if ret != OK {
		return nil, ret
	}
	vp.refs++
	return vp, OK
}

// vnRdwr is the file-system independent read/write entry point. With
// IO_NOMACCHECK it is used “internally” (e.g. by UFS itself to read ACLs)
// and MAC checks are deliberately skipped — TESLA assertions must not
// expect them on this path (fig. 7).
func (t *Thread) vnRdwr(vp *Vnode, write bool, n int64, flags int64) int64 {
	t.enter("vn_rdwr", vp.ID, core.Value(flags))
	ret := int64(OK)
	if flags&IO_NOMACCHECK == 0 {
		if write {
			ret = t.macVnodeCheck("mac_vnode_check_write", t.proc.Cred, vp)
		} else {
			ret = t.macVnodeCheck("mac_vnode_check_read", t.proc.Cred, vp)
		}
	}
	if ret == OK {
		if write {
			ret = vp.Ops.Write(t, vp, n)
		} else {
			ret = vp.Ops.Read(t, vp, n)
		}
	}
	t.exit("vn_rdwr", core.Value(ret), vp.ID, core.Value(flags))
	return ret
}

// UFS/FFS implementations — the object layer whose assertions refer to
// checks performed in the higher-level VFS framework.

func ufsOpen(t *Thread, vp *Vnode, mode int64) int64 {
	t.enter("ufs_open", vp.ID)
	// Fig. 7: across open, exec and kldload paths, some open-like
	// authorisation must already have happened.
	t.site("MF:ufs_open", vp.ID)
	t.exit("ufs_open", 0, vp.ID)
	return OK
}

func ffsRead(t *Thread, vp *Vnode, n int64) int64 {
	t.enter("ffs_read", vp.ID)
	// Fig. 7: reads reached via ufs_readdir or via vn_rdwr with
	// IO_NOMACCHECK are exempt; all others need mac_vnode_check_read.
	t.site("MF:ffs_read", vp.ID)
	var sum int64
	for _, b := range vp.Data {
		sum += int64(b)
	}
	_ = sum
	t.exit("ffs_read", core.Value(n), vp.ID)
	return OK
}

func ffsWrite(t *Thread, vp *Vnode, n int64) int64 {
	t.enter("ffs_write", vp.ID)
	t.site("MF:ffs_write", vp.ID)
	if int64(len(vp.Data)) < n {
		vp.Data = append(vp.Data, make([]byte, n-int64(len(vp.Data)))...)
	}
	t.exit("ffs_write", core.Value(n), vp.ID)
	return OK
}

// ufsReaddir reads directory entries; one instance occurs within the file
// system without passing back through VFS — it calls ffs_read directly,
// the incallstack(ufs_readdir) case.
func ufsReaddir(t *Thread, vp *Vnode) int64 {
	t.enter("ufs_readdir", vp.ID)
	t.site("MF:ufs_readdir", vp.ID)
	t.site("MF:ufs_readdir_cred", t.proc.Cred.ID, vp.ID)
	ret := ffsRead(t, vp, 64)
	t.exit("ufs_readdir", core.Value(ret), vp.ID)
	return ret
}

func ufsSetattr(t *Thread, vp *Vnode, mode int64) int64 {
	t.enter("ufs_setattr", vp.ID)
	t.site("MF:ufs_setattr", vp.ID)
	t.site("MF:ufs_setattr_cred", t.proc.Cred.ID, vp.ID)
	vp.Mode = mode
	t.exit("ufs_setattr", 0, vp.ID)
	return OK
}

func ufsGetattr(t *Thread, vp *Vnode) int64 {
	t.enter("ufs_getattr", vp.ID)
	t.site("MF:ufs_getattr", vp.ID)
	t.site("MF:ufs_getattr_cred", t.proc.Cred.ID, vp.ID)
	t.exit("ufs_getattr", 0, vp.ID)
	return OK
}

// aclRead is UFS implementing access-control lists on top of extended
// attributes: an internal read through vn_rdwr with MAC disabled.
func (t *Thread) aclRead(vp *Vnode) int64 {
	t.enter("ufs_getacl", vp.ID)
	t.site("MF:ufs_getacl", vp.ID)
	t.site("MF:ufs_getacl_cred", t.proc.Cred.ID, vp.ID)
	ret := t.extattrGet(vp, "posix1e.acl")
	t.exit("ufs_getacl", core.Value(ret), vp.ID)
	return ret
}

func (t *Thread) aclWrite(vp *Vnode) int64 {
	t.enter("ufs_setacl", vp.ID)
	t.site("MF:ufs_setacl", vp.ID)
	t.site("MF:ufs_setacl_cred", t.proc.Cred.ID, vp.ID)
	ret := t.extattrSet(vp, "posix1e.acl", []byte{1})
	t.exit("ufs_setacl", core.Value(ret), vp.ID)
	return ret
}

// extattrGet/Set are the extended-attribute implementations, reachable via
// system calls as well as from UFS's ACL code.
func (t *Thread) extattrGet(vp *Vnode, name string) int64 {
	t.enter("ufs_getextattr", vp.ID)
	t.site("MF:ufs_getextattr", vp.ID)
	_ = vp.ExtAttrs[name]
	ret := t.vnRdwr(vp, false, 16, IO_NOMACCHECK)
	t.exit("ufs_getextattr", core.Value(ret), vp.ID)
	return ret
}

func (t *Thread) extattrSet(vp *Vnode, name string, val []byte) int64 {
	t.enter("ufs_setextattr", vp.ID)
	t.site("MF:ufs_setextattr", vp.ID)
	vp.ExtAttrs[name] = val
	ret := t.vnRdwr(vp, true, 16, IO_NOMACCHECK)
	t.exit("ufs_setextattr", core.Value(ret), vp.ID)
	return ret
}

// trapPfault is the page-fault handler: file-system I/O initiated by
// virtual memory rather than a system call, with its own TESLA bound
// (§3.5.2: “we are concerned with certain other cases, such as file-system
// I/O initiated by virtual-memory page faults”).
func (t *Thread) trapPfault(vp *Vnode) int64 {
	t.enter("trap_pfault", vp.ID)
	ret := t.macVnodeCheck("mac_vnode_check_read", t.proc.Cred, vp)
	if ret == OK {
		t.site("MF:pfault_read", vp.ID)
		ret = vp.Ops.Read(t, vp, 4096)
	}
	t.exit("trap_pfault", core.Value(ret), vp.ID)
	return ret
}
