package staticcheck

import (
	"fmt"
	"sort"
	"strings"

	"tesla/internal/automata"
	"tesla/internal/compiler"
	"tesla/internal/ir"
	"tesla/internal/spec"
)

// config is the abstract monitor state for one automaton at one program
// point. The partial order is set inclusion on lo/hi with the scalar
// fields exact; paths are kept apart (no join), bounded by the per-block
// valve.
type config struct {
	// active: the assertion's bound is open on this path.
	active bool
	// delivered: has any event been delivered this bound epoch?
	// 0 = none, 1 = maybe, 2 = surely. Only touched automata receive the
	// «cleanup» event at bound exit, so Incomplete verdicts require it.
	delivered uint8
	// failed: a violation has definitely been reported on this path.
	failed bool
	// lo: possible DFA states of the general instance (empty key, created
	// by «init»). A superset of the truth; the general instance never
	// moves on key-binding events (it forks and stays).
	lo automata.StateSet
	// hi: superset of the states of every live instance, clones included.
	hi automata.StateSet
}

func (c config) key() string {
	return fmt.Sprintf("%t|%d|%t|%s|%s", c.active, c.delivered, c.failed, c.lo.Key(), c.hi.Key())
}

// absState is one explored product state: the monitor configuration plus
// (in the liveness refinement pass) the frame's known values. The safety
// pass runs with a nil frame and is behaviourally identical to the
// original single-pass checker.
type absState struct {
	cfg config
	fr  *frame
}

func (s absState) key() string {
	if s.fr == nil {
		return s.cfg.key()
	}
	return s.cfg.key() + "|" + s.fr.key()
}

// exitState is one deduplicated function exit: the monitor configuration
// at the return plus the abstract return value (⊤ in the safety pass).
type exitState struct {
	cfg config
	ret cval
}

// event is one instrumentation point the instrumenter would emit for the
// automaton under analysis, in the exact order hooks execute.
type event struct {
	bound int // 0 = symbol event, 1 = bound begin, 2 = bound end
	sym   *automata.Symbol
}

// fnEvents are the per-function hook sequences (entry block prologue and
// pre-return epilogue), mirroring instrument.instrumentFunc.
type fnEvents struct {
	entry []event
	ret   []event
}

type checker struct {
	mod  *ir.Module
	auto *automata.Automaton
	opts Options
	// refine enables the liveness value refinement: constant cells,
	// branch pruning and counted-loop widening.
	refine bool

	fns      map[string]*ir.Func
	events   map[string]*fnEvents
	stackFns map[string]bool // functions named by incallstack symbols
	infos    map[string]*fnInfo
	// reachableFns are the functions reachable from the entry point via
	// direct calls — used to sharpen fairness diagnostics.
	reachableFns map[string]bool

	summaries map[string][]exitState

	bail       string          // non-empty: give up, NEEDS-RUNTIME
	bailBudget bool            // the bail was the MaxConfigs valve, not a modelling gap
	preBail    bool            // bailed before the walk (strict/entry/indirect)
	reasons    map[string]bool // possible-violation findings
	failWhy    map[string]bool // guaranteed-violation findings
	obls       map[string]Obligation
	mayAbort   bool // an indirect hook load may abort the VM
	escapeNF   bool // a non-failed path exits via a VM error

	pruned    int             // infeasible branches cut by constant propagation
	loopNotes map[string]bool // counted loops proved terminating on explored paths

	graph *productGraph
}

func newChecker(mod *ir.Module, auto *automata.Automaton, opts Options, refine bool) *checker {
	c := &checker{
		mod:       mod,
		auto:      auto,
		opts:      opts,
		refine:    refine,
		fns:       map[string]*ir.Func{},
		events:    map[string]*fnEvents{},
		stackFns:  map[string]bool{},
		infos:     map[string]*fnInfo{},
		summaries: map[string][]exitState{},
		reasons:   map[string]bool{},
		failWhy:   map[string]bool{},
		obls:      map[string]Obligation{},
		loopNotes: map[string]bool{},
		graph:     newProductGraph(),
	}
	for _, f := range mod.Funcs {
		c.fns[f.Name] = f
	}
	for _, s := range auto.Symbols {
		if s.Kind == automata.KindInCallStack {
			c.stackFns[s.Fn] = true
		}
	}
	return c
}

// checkOne classifies one automaton: the safety pass first (identical to
// the original checker), then — only when that pass is undecided and the
// program shape is modellable — the liveness refinement, which may
// upgrade the verdict with a termination/discharge proof. Where neither
// pass decides, the structured obligations (missing fairness assumptions)
// are attached to the NEEDS-RUNTIME result.
func checkOne(mod *ir.Module, auto *automata.Automaton, opts Options) *Result {
	c := newChecker(mod, auto, opts, false)
	res := c.run()
	if res.Verdict != NeedsRuntime || opts.NoLiveness || c.preBail || (c.bail != "" && !c.bailBudget) {
		c.attachObligations(res)
		return res
	}

	l := newChecker(mod, auto, opts, true)
	res2 := l.run()
	if l.bail == "" {
		if res2.Verdict == Safe || res2.Verdict == Failing {
			res2.Liveness = true
			res2.Proof = l.proofLines()
			return res2
		}
		l.attachObligations(res2)
		return res2
	}

	// The refinement bailed. A budget bail is an explicit obligation on
	// the safety verdict; any other bail cannot occur here (the program
	// shape was already walked by the safety pass), but be conservative.
	if c.bailBudget {
		c.addBudgetObligation(c.bail)
	}
	if l.bailBudget {
		c.addBudgetObligation(l.bail)
	}
	c.attachObligations(res)
	return res
}

// run is one full pass: pre-checks, the product walk from the entry
// point, and the verdict.
func (c *checker) run() *Result {
	res := &Result{Automaton: c.auto, graph: c.graph}

	if c.auto.Spec.Strict {
		c.preBail = true
		res.Verdict = NeedsRuntime
		res.Reasons = sortedReasons(map[string]bool{
			"strict automata are not modelled statically": true})
		return res
	}
	entry, ok := c.fns[c.opts.Entry]
	if !ok {
		c.preBail = true
		res.Verdict = NeedsRuntime
		res.Reasons = sortedReasons(map[string]bool{
			fmt.Sprintf("entry function %q is not defined", c.opts.Entry): true})
		return res
	}
	if fn := c.findIndirectCall(entry); fn != "" {
		c.preBail = true
		res.Verdict = NeedsRuntime
		res.Reasons = sortedReasons(map[string]bool{fmt.Sprintf(
			"indirect call (OpCallPtr) reachable in %s: callees unknown statically", fn): true})
		return res
	}
	c.reachableFns = c.mod.Reachable(c.opts.Entry)

	exits := c.analyzeFn(entry, map[string]bool{}, map[string]bool{}, config{}, nil)

	switch {
	case c.bail != "":
		res.Verdict = NeedsRuntime
		res.Reasons = sortedReasons(map[string]bool{c.bail: true})
	case len(c.reasons) == 0:
		res.Verdict = Safe
	default:
		allFail := len(exits) > 0
		for _, e := range exits {
			if !e.cfg.failed {
				allFail = false
			}
		}
		if allFail && !c.escapeNF && !c.mayAbort {
			res.Verdict = Failing
			res.Reasons = sortedReasons(c.failWhy)
		} else {
			res.Verdict = NeedsRuntime
			res.Reasons = sortedReasons(c.reasons)
		}
	}
	return res
}

// proofLines renders the refinement facts a liveness verdict rests on.
func (c *checker) proofLines() []string {
	set := map[string]bool{
		"liveness: every feasible path leaving the bound discharges its obligations (product-graph argument over the refined walk)": true,
	}
	if c.pruned > 0 {
		set[fmt.Sprintf("liveness: %d infeasible branch(es) pruned by constant propagation", c.pruned)] = true
	}
	for n := range c.loopNotes {
		set[n] = true
	}
	return sortedReasons(set)
}

func (c *checker) noteLoop(f *ir.Func, lp *countedLoop) {
	if len(c.loopNotes) >= 32 {
		return
	}
	c.loopNotes[fmt.Sprintf(
		"liveness: counted loop at %s/%s proved terminating (syntactic ranking on its counter slot, back-edge variance %+d)",
		f.Name, f.Blocks[lp.loop.Head].Name, lp.step)] = true
}

func (c *checker) bailf(format string, args ...interface{}) {
	if c.bail == "" {
		c.bail = fmt.Sprintf(format, args...)
	}
}

func (c *checker) flagPossible(format string, args ...interface{}) {
	if len(c.reasons) < 32 {
		c.reasons[fmt.Sprintf(format, args...)] = true
	}
}

func (c *checker) flagFailed(format string, args ...interface{}) {
	if len(c.failWhy) < 32 {
		c.failWhy[fmt.Sprintf(format, args...)] = true
	}
}

// obligationAt records a structured obligation: the states that may be
// stuck, the events that would move them, and the □◇ fairness assumption
// under which the assertion would discharge. fromKey anchors the dashed
// obligation edge in the product-graph rendering.
func (c *checker) obligationAt(kind, where, fromKey string, pending automata.StateSet) {
	if len(c.obls) >= 32 {
		return
	}
	names := c.dischargeSymbols(pending)
	discharge := map[string]bool{}
	for _, n := range names {
		discharge[n] = true
	}
	var unreachable []string
	seenFn := map[string]bool{}
	for _, sym := range c.auto.Symbols {
		if !discharge[sym.Name] || sym.Fn == "" || seenFn[sym.Fn] {
			continue
		}
		if (sym.Kind == automata.KindFuncEntry || sym.Kind == automata.KindFuncExit) &&
			!c.reachableFns[sym.Fn] {
			seenFn[sym.Fn] = true
			unreachable = append(unreachable, sym.Fn)
		}
	}
	sort.Strings(unreachable)
	fairness := fairnessFor(names)

	var detail string
	switch {
	case len(names) == 0:
		detail = fmt.Sprintf("%s: state(s) %s cannot be moved by any event: the obligation is undischargeable", where, pending)
	case kind == "site":
		detail = fmt.Sprintf("%s: the general instance may reach the assertion site in state(s) %s; assume %s before the site to discharge", where, pending, fairness)
	default:
		detail = fmt.Sprintf("%s: an instance may reach bound exit in state(s) %s without completing; assume %s within every bound epoch to discharge", where, pending, fairness)
	}
	if len(unreachable) > 0 {
		detail += fmt.Sprintf("; note %s never runs under %s, so the assumption cannot hold there",
			strings.Join(unreachable, ", "), c.opts.Entry)
	}
	ob := Obligation{Kind: kind, Where: where, Pending: pending, Discharge: names, Fairness: fairness, Detail: detail}
	c.obls[ob.id()] = ob
	label := fairness
	if label == "" {
		label = "undischargeable"
	}
	c.graph.obligation(fromKey, label)
}

func (c *checker) addBudgetObligation(why string) {
	ob := Obligation{
		Kind: "budget",
		Detail: fmt.Sprintf(
			"analysis budget exhausted before a proof (%s); raise Options.MaxConfigs to let the checker decide", why),
	}
	c.obls[ob.id()] = ob
}

// attachObligations finalises a NEEDS-RUNTIME result with the sorted
// obligation set (decided verdicts carry none).
func (c *checker) attachObligations(res *Result) {
	if res.Verdict != NeedsRuntime || len(c.obls) == 0 {
		return
	}
	if c.bailBudget {
		c.addBudgetObligation(c.bail)
	}
	res.Obligations = sortObligations(c.obls)
}

// findIndirectCall scans the functions reachable from entry through direct
// calls for OpCallPtr. One indirect call defeats the whole analysis: the
// callee set is unknown, so any event could fire there.
func (c *checker) findIndirectCall(entry *ir.Func) string {
	seen := map[string]bool{}
	var visit func(f *ir.Func) string
	visit = func(f *ir.Func) string {
		if seen[f.Name] {
			return ""
		}
		seen[f.Name] = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpCallPtr:
					return f.Name
				case ir.OpCall:
					if g, ok := c.fns[in.Sym]; ok && !strings.HasPrefix(in.Sym, "__tesla") {
						if hit := visit(g); hit != "" {
							return hit
						}
					}
				}
			}
		}
		return ""
	}
	return visit(entry)
}

// calleeSide mirrors instrument.(*instrumenter).calleeSide.
func (c *checker) calleeSide(sym *automata.Symbol) bool {
	switch sym.Side {
	case spec.SideCallee:
		return true
	case spec.SideCaller:
		return false
	default:
		return c.opts.DefinedFns[sym.Fn]
	}
}

// eventsFor computes the entry/return hook sequences the instrumenter
// would insert in f for this automaton, in execution order.
func (c *checker) eventsFor(f *ir.Func) *fnEvents {
	if ev, ok := c.events[f.Name]; ok {
		return ev
	}
	ev := &fnEvents{}
	b := c.auto.Spec.Bound
	// Entry: call-kind bound begin, then call-kind bound end, then
	// callee-side entry translators in symbol order.
	if b.Begin.Fn == f.Name && b.Begin.Kind == spec.StaticCall {
		ev.entry = append(ev.entry, event{bound: 1})
	}
	if b.End.Fn == f.Name && b.End.Kind != spec.StaticReturn {
		ev.entry = append(ev.entry, event{bound: 2})
	}
	for _, sym := range c.auto.Symbols {
		if sym.ObjC || sym.Fn != f.Name || !c.calleeSide(sym) {
			continue
		}
		switch sym.Kind {
		case automata.KindFuncEntry:
			if len(sym.Args) <= f.NParams {
				ev.entry = append(ev.entry, event{sym: sym})
			}
		case automata.KindFuncExit:
			if len(sym.Args) <= f.NParams {
				ev.ret = append(ev.ret, event{sym: sym})
			}
		}
	}
	// Return: exit translators, then return-kind bound begin, then
	// return-kind bound end (instrumenter appends begin before end).
	if b.Begin.Fn == f.Name && b.Begin.Kind != spec.StaticCall {
		ev.ret = append(ev.ret, event{bound: 1})
	}
	if b.End.Fn == f.Name && b.End.Kind == spec.StaticReturn {
		ev.ret = append(ev.ret, event{bound: 2})
	}
	c.events[f.Name] = ev
	return ev
}

// apply advances a config over one event, recording possible and
// guaranteed violations.
func (c *checker) apply(cfg config, ev event, where string) config {
	from := cfg.key()
	label := ""
	switch {
	case ev.bound == 1:
		label = "«bound begin»"
		if cfg.active {
			c.bailf("bound re-opened while already open at %s: epochs would overlap", where)
			return cfg
		}
		cfg.active = true
		cfg.delivered = 0
		cfg.lo = automata.NewStateSet(c.auto.Start)
		cfg.hi = automata.NewStateSet(c.auto.Start)

	case ev.bound == 2:
		label = "«bound end»"
		if !cfg.active {
			return cfg // runtime ignores bound exits with no open bound
		}
		if cfg.delivered > 0 {
			var pending automata.StateSet
			for _, q := range cfg.hi {
				if !c.auto.CanCleanup(q) {
					pending = append(pending, q)
				}
			}
			if len(pending) > 0 {
				c.flagPossible("%s: an instance may be in state %d at bound exit, which cannot accept «cleanup» (Incomplete)", where, pending[0])
				c.obligationAt("eventually", where, from, pending)
			}
			if cfg.delivered == 2 {
				stuck := true
				for _, q := range cfg.lo {
					if c.auto.CanCleanup(q) {
						stuck = false
						break
					}
				}
				if stuck {
					cfg.failed = true
					c.flagFailed("%s: the general instance is stuck in %s at bound exit: Incomplete on every such path", where, cfg.lo)
				}
			}
		}
		cfg.active = false
		cfg.delivered = 0
		cfg.lo, cfg.hi = nil, nil

	default:
		sym := ev.sym
		label = sym.Name
		if !cfg.active {
			return cfg // events outside the bound are ignored (lazy init)
		}
		if sym.IndirectAccess() {
			c.mayAbort = true
		}
		det := sym.Deterministic()
		moved := c.auto.DetStep(cfg.lo, sym.ID)
		if sym.ProvidesMask == 0 {
			if det {
				cfg.lo = moved
			} else {
				cfg.lo = cfg.lo.Union(moved)
			}
		}
		// mask != 0: the event forks a keyed clone; the general instance
		// stays put, so lo is unchanged.
		if sym.ProvidesMask == 0 && det {
			// AnyKey delivery that surely fires: every live instance takes
			// the conditional update, so the image is exact.
			cfg.hi = c.auto.DetStep(cfg.hi, sym.ID)
		} else {
			cfg.hi = c.auto.CondStep(cfg.hi, sym.ID)
		}
		if det {
			cfg.delivered = 2
		} else if cfg.delivered < 1 {
			cfg.delivered = 1
		}
	}
	c.graph.edge(from, cfg, label)
	return cfg
}

// applySite handles the assertion site: incallstack pseudo-events fire
// first for functions on the abstract call chain, then the required site
// symbol, whose rejection is the canonical violation.
func (c *checker) applySite(cfg config, stack map[string]bool, where string) config {
	if !cfg.active {
		// Outside the bound no instance exists and required events with
		// no live instances are ignored by libtesla.
		return cfg
	}
	for _, sym := range c.auto.Symbols {
		if sym.Kind == automata.KindInCallStack && stack[sym.Fn] {
			cfg = c.apply(cfg, event{sym: sym}, where)
		}
	}
	from := cfg.key()
	site := c.auto.Site()
	var pending automata.StateSet
	for _, q := range cfg.lo {
		if !c.auto.HasMove(q, site.ID) {
			pending = append(pending, q)
		}
	}
	if len(pending) > 0 {
		c.flagPossible("%s: the general instance may be in state %d, which cannot accept the assertion site", where, pending[0])
		c.obligationAt("site", where, from, pending)
	}
	accepted := false
	for _, q := range cfg.hi {
		if c.auto.HasMove(q, site.ID) {
			accepted = true
			break
		}
	}
	if !accepted {
		cfg.failed = true
		c.flagFailed("%s: no live instance can accept the assertion site (states %s)", where, cfg.hi)
	}
	if len(c.auto.Vars) == 0 {
		// With no scope variables the site's key is empty and the general
		// instance itself takes the transition; every other instance also
		// receives the event, so both bounds take the exact image.
		cfg.lo = c.auto.DetStep(cfg.lo, site.ID)
		cfg.hi = c.auto.DetStep(cfg.hi, site.ID)
	} else {
		cfg.hi = c.auto.CondStep(cfg.hi, site.ID)
	}
	cfg.delivered = 2
	c.graph.edge(from, cfg, site.Name)
	return cfg
}

// stackKey canonicalises the incallstack-relevant part of the call chain.
func stackKey(stack map[string]bool) string {
	if len(stack) == 0 {
		return ""
	}
	keys := make([]string, 0, len(stack))
	for k := range stack {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// analyzeFn returns the exit states at f's returns when entered with
// entry (and, in the refinement pass, the abstract argument values).
// onChain is the set of functions on the concrete abstract call chain
// (recursion detection); stack is its projection onto incallstack-relevant
// functions (part of the summary key, and what sites consult).
func (c *checker) analyzeFn(f *ir.Func, onChain, stack map[string]bool, entry config, args []cval) []exitState {
	if c.bail != "" {
		return nil
	}
	key := f.Name + "|" + stackKey(stack) + "|" + entry.key() + "|" + cvalsKey(args)
	if exits, ok := c.summaries[key]; ok {
		return exits
	}
	if onChain[f.Name] {
		c.bailf("recursive call to %s: unbounded call chains are not modelled", f.Name)
		return nil
	}
	onChain[f.Name] = true
	addedStack := false
	if c.stackFns[f.Name] && !stack[f.Name] {
		stack[f.Name] = true
		addedStack = true
	}
	defer func() {
		delete(onChain, f.Name)
		if addedStack {
			delete(stack, f.Name)
		}
	}()

	ev := c.eventsFor(f)
	cfg := entry
	for _, e := range ev.entry {
		cfg = c.apply(cfg, e, f.Name)
	}
	if c.bail != "" {
		return nil
	}
	var fr *frame
	if c.refine {
		fr = newFrame(c.infoFor(f))
		for i, a := range args {
			if i < f.NParams && a.ok {
				fr.regs[i] = a.v
			}
		}
	}
	st := absState{cfg: cfg, fr: fr}

	type item struct {
		blk int
		st  absState
	}
	seen := make([]map[string]bool, len(f.Blocks))
	for i := range seen {
		seen[i] = map[string]bool{}
	}
	hist := make([]map[string]*blockHist, len(f.Blocks))
	var exits []exitState
	queue := []item{{0, st}}
	seen[0][st.key()] = true

	// Loops need no special casing in the safety pass: config transitions
	// are deterministic in the event sequence, so a terminating execution
	// whose config repeats at a loop head has the same continuation — and
	// the same exit config — as the first, already-explored visit.
	// Diverging executions never reach an exit and are outside every
	// verdict's quantifier. The refinement pass additionally carries
	// value state, which loops DO grow — widening (ranked counters first,
	// generic intersection after widenBudget visits) restores
	// termination of the walk without losing the trip-count facts that
	// make «eventually» provable.
	enqueue := func(cur, target int, st absState) {
		if c.refine && st.fr != nil {
			nf := st.fr.enterBlock()
			mk := st.cfg.key()
			if hist[target] == nil {
				hist[target] = map[string]*blockHist{}
			}
			h := hist[target][mk]
			if h == nil {
				h = &blockHist{}
				hist[target][mk] = h
			}
			h.count++
			if lp := st.fr.info.loops[target]; lp != nil && h.count > 1 {
				// Ranked counter: widen exactly the counter slot on
				// re-entry; the first visit's exact guard already proved
				// the trip-count facts, and recognition proved the loop
				// terminates.
				if _, tracked := nf.cells[lp.counter]; tracked {
					delete(nf.cells, lp.counter)
				}
				c.noteLoop(f, lp)
			} else if h.wide != nil || h.count > widenBudget {
				nf.cells = h.widen(nf.cells)
			}
			st.fr = nf
		}
		k := st.key()
		if seen[target][k] {
			return
		}
		if len(seen[target]) >= c.opts.MaxConfigs {
			c.bailBudget = true
			c.bailf("abstract state explosion in %s (more than %d configurations per block)", f.Name, c.opts.MaxConfigs)
			return
		}
		seen[target][k] = true
		queue = append(queue, item{target, st})
	}

	for len(queue) > 0 && c.bail == "" {
		it := queue[0]
		queue = queue[1:]
		cur := []absState{it.st}
		blk := f.Blocks[it.blk]

		for _, in := range blk.Instrs {
			if c.bail != "" {
				return nil
			}
			switch in.Op {
			case ir.OpRet:
				for _, s := range cur {
					cf := s.cfg
					for _, e := range ev.ret {
						cf = c.apply(cf, e, f.Name)
					}
					ret := cval{}
					if c.refine {
						if in.HasX {
							ret = s.fr.reg(in.X)
						} else {
							ret = cval{0, true}
						}
					}
					exits = append(exits, exitState{cfg: cf, ret: ret})
				}
				cur = nil

			case ir.OpBr:
				for _, s := range cur {
					enqueue(it.blk, in.Blk1, s)
				}
				cur = nil

			case ir.OpCondBr:
				for _, s := range cur {
					if c.refine {
						if v := s.fr.reg(in.X); v.ok {
							// The branch is decided at compile time: the
							// other edge is infeasible on this path and
							// is pruned (this is what removes the
							// zero-trip path of a counted loop from an
							// «eventually» refutation).
							c.pruned++
							if v.v != 0 {
								enqueue(it.blk, in.Blk1, s)
							} else {
								enqueue(it.blk, in.Blk2, s)
							}
							continue
						}
					}
					enqueue(it.blk, in.Blk1, s)
					enqueue(it.blk, in.Blk2, s)
				}
				cur = nil

			case ir.OpCall:
				cur = c.applyCall(f, in, cur, onChain, stack)

			case ir.OpFieldStore:
				for i := range cur {
					cur[i].cfg = c.applyFieldStore(cur[i].cfg, in, f.Name)
				}

			default:
				if c.refine {
					alive := cur[:0]
					for _, s := range cur {
						if s.fr.step(in) {
							alive = append(alive, s)
						} else if !s.cfg.failed {
							// The instruction surely aborts the VM
							// (division by zero): the path ends without
							// completing, which blocks FAILING claims.
							c.escapeNF = true
						}
					}
					cur = alive
				}
			}
			if len(cur) == 0 {
				break
			}
			if len(cur) > c.opts.MaxConfigs {
				c.bailBudget = true
				c.bailf("abstract state explosion in %s (more than %d parallel configurations)", f.Name, c.opts.MaxConfigs)
				return nil
			}
		}
		// A block that ends without a terminator is unreachable IR; any
		// config still alive simply has no continuation.
	}
	if c.bail != "" {
		return nil
	}
	exits = dedupExits(exits)
	c.summaries[key] = exits
	return exits
}

// dedupExits collapses identical exit states so summaries stay small
// across call-chain fan-out.
func dedupExits(exits []exitState) []exitState {
	seen := map[string]bool{}
	out := exits[:0]
	for _, e := range exits {
		k := e.cfg.key() + "|" + e.ret.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}

// applyCall advances each state over one OpCall: assertion sites, direct
// calls into analysed callees (with caller-side hooks around them), and
// escapes into undefined functions (a VM error ends the path).
func (c *checker) applyCall(f *ir.Func, in ir.Instr, cur []absState, onChain, stack map[string]bool) []absState {
	where := fmt.Sprintf("%s (line %d)", f.Name, in.Line)
	clobber := func() {
		if c.refine {
			for i := range cur {
				delete(cur[i].fr.regs, in.Dst)
			}
		}
	}
	if strings.HasPrefix(in.Sym, compiler.SitePseudoFn) {
		name := strings.TrimPrefix(in.Sym, compiler.SitePseudoFn+":")
		clobber()
		if name != c.auto.Name {
			return cur // another assertion's site: no event for this automaton
		}
		for i := range cur {
			cur[i].cfg = c.applySite(cur[i].cfg, stack, where)
		}
		return cur
	}
	if in.Sym == "print" || strings.HasPrefix(in.Sym, "__tesla") {
		clobber()
		return cur
	}

	// Caller-side entry hooks run before the call executes.
	var pre, post []*automata.Symbol
	for _, sym := range c.auto.Symbols {
		if sym.ObjC || sym.Fn != in.Sym || c.calleeSide(sym) {
			continue
		}
		if len(sym.Args) > len(in.Args) {
			continue
		}
		switch sym.Kind {
		case automata.KindFuncEntry:
			pre = append(pre, sym)
		case automata.KindFuncExit:
			post = append(post, sym)
		}
	}
	for i := range cur {
		for _, sym := range pre {
			cur[i].cfg = c.apply(cur[i].cfg, event{sym: sym}, where)
		}
	}

	callee, defined := c.fns[in.Sym]
	if !defined {
		// The VM reports "call to undefined function" and unwinds: the
		// path ends here. A non-failed escape blocks FAILING verdicts.
		for _, s := range cur {
			if !s.cfg.failed {
				c.escapeNF = true
			}
		}
		return nil
	}

	var out []absState
	for _, s := range cur {
		var args []cval
		if c.refine {
			args = make([]cval, len(in.Args))
			for i, a := range in.Args {
				args[i] = s.fr.reg(a)
			}
		}
		rets := c.analyzeFn(callee, onChain, stack, s.cfg, args)
		if c.bail != "" {
			return nil
		}
		for _, ex := range rets {
			ns := absState{cfg: ex.cfg}
			if c.refine {
				nf := s.fr.clone()
				if ex.ret.ok {
					nf.regs[in.Dst] = ex.ret.v
				} else {
					delete(nf.regs, in.Dst)
				}
				ns.fr = nf
			}
			for _, sym := range post {
				ns.cfg = c.apply(ns.cfg, event{sym: sym}, where)
			}
			out = append(out, ns)
		}
	}
	return out
}

// applyFieldStore fires the field-assignment translators that match the
// store's struct, field and assignment operator, in symbol order.
func (c *checker) applyFieldStore(cfg config, in ir.Instr, fname string) config {
	for _, sym := range c.auto.Symbols {
		if sym.Kind != automata.KindFieldAssign {
			continue
		}
		if sym.Struct != in.Struct.Name || sym.Field != in.Struct.Fields[in.Field].Name {
			continue
		}
		if assignKind(sym.AssignOp) != in.Assign {
			continue
		}
		cfg = c.apply(cfg, event{sym: sym}, fmt.Sprintf("%s (line %d)", fname, in.Line))
	}
	return cfg
}

func assignKind(op spec.AssignOp) ir.AssignKind {
	switch op {
	case spec.OpAddAssign:
		return ir.AssignAdd
	case spec.OpIncr:
		return ir.AssignIncr
	default:
		return ir.AssignSet
	}
}
