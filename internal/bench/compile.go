package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"

	"tesla/internal/monitor"
)

// FigCompile measures the interpreter tax the compiled transition engines
// remove. Both rungs run the identical check-heavy workload — keyed events
// delivered into a global-context automaton whose instance population the
// store must scan on every event — differing only in how a candidate is
// stepped: the interpreted walk re-derives everything per event (linear
// TransitionSet scan per candidate, limb-by-limb key compares, «init» and
// cleanup rescans), while the compiled path executes the class's lowered
// core.SymbolPlan (dense state→transition table behind a from-state bitmask,
// hoisted «init»/cleanup, unrolled fixed-width key compare).
//
// The interpreted rung is monitor.Options.NoEngine — the same switch the
// compile-gate differential uses, so the figure benchmarks exactly the two
// paths the gate proves equivalent.
//
// Methodology is the shared noise gate (noise.go); additionally the figure
// *fails* when the single-thread check-heavy speedup lands under
// compileTarget — this is the PR's acceptance number, not decoration.

const (
	// compileKeys widens the per-goroutine key range over the ingest
	// figure's: more live clones per class make each event's candidate scan
	// — the code the engines compile — the dominant cost. 24 keys plus the
	// unkeyed parent stay under DefaultInstanceLimit, so the single-thread
	// rung has zero eviction churn and measures the scan alone.
	compileKeys = 24
	// compileTarget is the minimum accepted compiled/interpreted speedup on
	// the single-thread rung.
	compileTarget = 1.5
)

// FigCompileMeasure is one data point: total check events through g
// goroutines, interpreted (noEngine) or compiled. batch == 0 is the
// synchronous plane. The key range is split across goroutines so every rung
// keeps the same compileKeys live clones in the (shared, global) class —
// constant scan work per event, no eviction churn at any width.
func FigCompileMeasure(noEngine bool, batch, g, total int) (float64, error) {
	return ingestRun(monitor.Options{
		NoEngine:     noEngine,
		BatchSize:    batch,
		GlobalShards: ingestShards,
	}, g, compileKeys/g, total)
}

// FigCompile prints check-heavy events/sec, interpreted vs compiled, across
// dispatch planes. It returns an error when a rung stays over the noise
// gate after a retry, or when the single-thread speedup misses the target.
func FigCompile(w io.Writer, iters int) error {
	total := iters * 50
	if total < 100000 {
		total = 100000
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	fmt.Fprintln(w, "Figure compile: interpreted transition walk vs compiled step engines")
	fmt.Fprintf(w, "  (%d keys/goroutine, %d stripes, batch ring %d, best of %d runs, middle-3 noise <= 10%%)\n",
		compileKeys, ingestShards, ingestBatch, noiseIters)
	fmt.Fprintf(w, "  %-12s %14s %14s %10s %16s\n", "plane", "interp ev/s", "compiled ev/s", "speedup", "noise int/comp")

	rungs := []struct {
		name  string
		batch int
		g     int
	}{
		{"sync/1", 0, 1},
		{"sync/4", 0, 4},
		{"batched/4", ingestBatch, 4},
	}

	var noisy []string
	var headline float64
	for _, r := range rungs {
		r := r
		interp := func(n int) (float64, error) { return FigCompileMeasure(true, r.batch, r.g, n) }
		comp := func(n int) (float64, error) { return FigCompileMeasure(false, r.batch, r.g, n) }

		intBest, intNoise, err := noiseRung(total, interp)
		if err != nil {
			return err
		}
		compBest, compNoise, err := noiseRung(total, comp)
		if err != nil {
			return err
		}
		intBest, intNoise = noiseRetry(intBest, intNoise, total, interp)
		compBest, compNoise = noiseRetry(compBest, compNoise, total, comp)
		if intNoise > noiseGate || compNoise > noiseGate {
			noisy = append(noisy, fmt.Sprintf("%s (interp %.1f%%, compiled %.1f%%)",
				r.name, intNoise*100, compNoise*100))
		}
		speedup := compBest / intBest
		if r.name == "sync/1" {
			headline = speedup
		}
		fmt.Fprintf(w, "  %-12s %14.0f %14.0f %9.2fx %7.1f%% /%5.1f%%\n",
			r.name, intBest, compBest, speedup, intNoise*100, compNoise*100)
	}
	fmt.Fprintf(w, "  compile: compiled/interpreted single-thread = %.2fx (target >= %.1fx)\n",
		headline, compileTarget)
	fmt.Fprintln(w, "  reproduction shape: the interpreted walk pays a transition-set scan and")
	fmt.Fprintln(w, "  a limb loop per candidate per event; the compiled engine's plan answers")
	fmt.Fprintln(w, "  the same questions with one table index and an unrolled compare, so the")
	fmt.Fprintln(w, "  per-event cost that remains is the store's bookkeeping itself")
	fmt.Fprintln(w)
	if len(noisy) > 0 {
		return fmt.Errorf("bench: compile figure too noisy (>10%% trimmed spread): %s",
			strings.Join(noisy, ", "))
	}
	if headline < compileTarget {
		return fmt.Errorf("bench: compiled engines %.2fx over interpreted, want >= %.1fx",
			headline, compileTarget)
	}
	return nil
}
