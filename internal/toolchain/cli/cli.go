// Package cli factors out the flag/driver boilerplate shared by the
// cmd/tesla-* tools: positional-argument handling, source loading,
// multi-error reporting with the tool name prefixed on every line, and
// the build-graph flags (-j, -cache, -explain) shared by tesla-run and
// tesla-build.
package cli

import (
	"flag"
	"fmt"
	"os"

	"tesla/internal/toolchain"
)

// Tool is one command-line tool's identity: its name (the diagnostic
// prefix) and its usage line.
type Tool struct {
	Name  string
	Usage string
}

// New returns the driver helper for the named tool. usage is the
// argument synopsis printed after the tool name, e.g.
// "[-entry main] file.c...".
func New(name, usage string) *Tool { return &Tool{Name: name, Usage: usage} }

// ParseSourceArgs parses the command line and requires at least one
// positional argument (the source files); otherwise it prints the usage
// line and exits 2.
func (t *Tool) ParseSourceArgs() []string {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintf(os.Stderr, "usage: %s %s\n", t.Name, t.Usage)
		os.Exit(2)
	}
	return flag.Args()
}

// LoadSources reads the named files into the name → text map the
// toolchain consumes, fataling on the first unreadable path.
func (t *Tool) LoadSources(paths []string) map[string]string {
	sources := make(map[string]string, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sources[path] = string(data)
	}
	return sources
}

// Fatal prints err prefixed with the tool name — one line per underlying
// error for multi-error values like build.ErrorList — and exits 1.
func (t *Tool) Fatal(err error) { t.FatalCode(1, err) }

// FatalCode is Fatal with an explicit exit status (tesla-check exits 2
// on compilation errors to distinguish them from failing assertions).
func (t *Tool) FatalCode(code int, err error) {
	for _, e := range Errors(err) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", t.Name, e)
	}
	os.Exit(code)
}

// Errors flattens a multi-error (anything with Unwrap() []error, such as
// the build graph's ErrorList) into its parts so each diagnostic gets its
// own prefixed line; a plain error is returned alone.
func Errors(err error) []error {
	if multi, ok := err.(interface{ Unwrap() []error }); ok {
		if errs := multi.Unwrap(); len(errs) > 0 {
			return errs
		}
	}
	return []error{err}
}

// BuildFlags holds the registered build-graph flag values.
type BuildFlags struct {
	Jobs     *int
	CacheDir *string
	Explain  *bool
}

// RegisterBuildFlags registers -j, -cache and -explain on the default
// flag set. Call before flag.Parse.
func RegisterBuildFlags() *BuildFlags {
	return &BuildFlags{
		Jobs:     flag.Int("j", 0, "build-graph worker count (0 = GOMAXPROCS)"),
		CacheDir: flag.String("cache", "", "on-disk artifact cache directory (persists across runs)"),
		Explain:  flag.Bool("explain", false, "print the per-node cache hit/miss/rebuild report to stderr"),
	}
}

// Apply maps the parsed flag values onto the build options (-explain
// reports to stderr so it composes with -o/-dump on stdout).
func (f *BuildFlags) Apply(opts *toolchain.BuildOptions) {
	opts.Jobs = *f.Jobs
	opts.CacheDir = *f.CacheDir
	if *f.Explain {
		opts.Explain = os.Stderr
	}
}
