package core

// Batched ingestion. UpdateState costs one full lock round-trip per event; at
// millions of events per second the monitor's dispatch plane stages matched
// symbols per thread and applies them here in runs, amortising stripe
// acquisition and registration lookups across a batch. Semantics are the
// single-event path's, exactly: ops apply strictly in slice order (no
// cross-key reordering — the differential harness compares against a
// reference store fed one op at a time), every op re-plans its lock need
// under the held stripes, and handler notifications buffer across the whole
// batch and dispatch once, after every lock is released.

// batchRunMax bounds how many ops one stripe-lock acquisition may cover, so
// a large batch's union lock set cannot degenerate into holding every stripe
// for the whole batch and starving concurrent threads.
const batchRunMax = 64

// BatchOp is one deferred UpdateState call: the class, the driving symbol
// (name for notifications, flags for required/strict verdicts), the key the
// event binds and the transition set it can drive.
type BatchOp struct {
	Cls    *Class
	Symbol string
	Flags  SymbolFlags
	Key    Key
	TS     TransitionSet

	// Plan, when non-nil, is the op's compiled engine plan (engine.go): the
	// batch run applies it through the monomorphic engine body instead of
	// the interpreted walk. It must have been lowered from the same
	// (Cls, Symbol, Flags, TS); stores built with StoreOpts.NoEngine ignore
	// it.
	Plan *SymbolPlan
}

// batchPlan resolves the engine plan an op applies under in this store: nil
// when the op carries none or the store is pinned to the interpreted walk.
func (s *Store) batchPlan(op *BatchOp) *SymbolPlan {
	if s.noEngine {
		return nil
	}
	return op.Plan
}

// UpdateBatch applies ops in order, equivalent to calling UpdateState once
// per op but with locks amortised across runs: the reference store holds its
// mutex over the whole batch; the sharded store acquires the union lock set
// of a lookahead window of same-class ops and applies as many as the held
// stripes cover, re-planning each op under the locks. The returned error is
// the first (in op order) fail-stop violation or overflow, matching the
// error the synchronous path would have returned from that op's UpdateState.
func (s *Store) UpdateBatch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	if s.nshards > 0 {
		return s.updateBatchSharded(ops)
	}
	return s.updateBatchRef(ops)
}

// updateBatchRef is the batch path over the single-mutex reference store:
// one lock round-trip and one notification dispatch for the whole batch.
func (s *Store) updateBatchRef(ops []BatchOp) error {
	var nb noteBuf
	var firstErr error
	s.lock()
	for i := range ops {
		op := &ops[i]
		cs := s.classes[op.Cls]
		if cs == nil {
			s.unlock()
			s.Register(op.Cls)
			s.lock()
			cs = s.classes[op.Cls]
		}
		var err error
		if p := s.batchPlan(op); p != nil {
			err = s.updateRefEngineLocked(cs, p, op.Key, &nb)
		} else {
			err = s.updateRefLocked(cs, op.Symbol, op.Flags, op.Key, op.TS, &nb)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.unlock()
	s.dispatch(&nb)
	return firstErr
}

// batchNeed is one op's full lock requirement: its plan, escalated to every
// stripe for cleanup ops (which expunge the whole class). Plan-carrying ops
// use the compiled plan's hoisted «init» and cleanup instead of rescanning
// the transition set.
func (s *Store) batchNeed(sc *shardedClass, op *BatchOp) (set uint64, scan bool) {
	if p := s.batchPlan(op); p != nil {
		set, scan = sc.planWith(op.Key, p.initTr())
		if p.cleanup {
			set = sc.allMask()
		}
		return set, scan
	}
	set, scan = sc.plan(op.Key, op.TS)
	if op.TS.HasCleanup() {
		set = sc.allMask()
	}
	return set, scan
}

// updateBatchSharded is the batch path over the lock-striped store. Each
// outer iteration opens a window: the union of the optimistic lock plans of
// the next run of same-class ops (capped at batchRunMax). The window's
// stripes are acquired once — with the same re-plan/escalate loop the
// single-event path uses for the head op — and ops then apply in order,
// each re-planning under the held locks; the first op whose need outgrows
// the held set ends the run and starts the next window. Order is never
// changed: an op applies exactly when every op before it has.
func (s *Store) updateBatchSharded(ops []BatchOp) error {
	var nb noteBuf
	var firstErr error
	i := 0
	for i < len(ops) {
		sc := s.shardedClassOf(ops[i].Cls)
		if sc == nil {
			s.Register(ops[i].Cls)
			sc = s.shardedClassOf(ops[i].Cls)
		}
		if s.shardedQuarGate(sc, &nb) {
			i++
			continue
		}

		set, _ := s.batchNeed(sc, &ops[i])
		j := i + 1
		for ; j < len(ops) && j-i < batchRunMax && ops[j].Cls == ops[i].Cls; j++ {
			ps, _ := s.batchNeed(sc, &ops[j])
			set |= ps
		}
		for tries := 0; ; tries++ {
			s.lockShards(sc, set)
			need, _ := s.batchNeed(sc, &ops[i])
			if need&^set == 0 {
				break
			}
			s.unlockShards(sc, set)
			if tries >= 1 {
				set = sc.allMask()
			} else {
				set |= need
			}
		}

		for i < j {
			op := &ops[i]
			if s.shardedQuarGate(sc, &nb) {
				// Quarantined mid-run (or suppressed); the gate counted
				// it, skip the op. Safe under the held stripes: quarMu
				// nests inside stripe locks everywhere.
				i++
				continue
			}
			need, scan := s.batchNeed(sc, op)
			if need&^set != 0 {
				// The run's window no longer covers this op (a mid-run
				// activation widened its mask set, or a re-arm left a
				// deferred flush needing every stripe): end the run here
				// and reacquire.
				break
			}
			var err error
			if p := s.batchPlan(op); p != nil {
				err = s.updateShardedEngineBody(sc, p, op.Key, &nb, set, scan)
			} else {
				err = s.updateShardedBody(sc, op.Symbol, op.Flags, op.Key, op.TS, &nb, set, scan)
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
			i++
		}
		s.unlockShards(sc, set)
	}
	s.dispatch(&nb)
	return firstErr
}

// FailStopFor reports whether cls's effective failure action in this store
// is fail-stop — whether a violation surfaces as an UpdateState error. The
// monitor's batch plane uses it to decide which staged ops must drain
// through synchronously so their verdict error surfaces at the event call
// that caused it.
func (s *Store) FailStopFor(cls *Class) bool {
	return s.sv.resolve(cls).failureIn(s) == FailStop
}
