// csubdemo walks the complete compiler-path workflow of §4 on an embedded
// two-file program: analyse the C-subset sources into .tesla manifests,
// compile to IR, instrument against the combined manifest, and execute on
// the IR interpreter — once on a correct path and once on a path whose
// missing check TESLA flags at run time.
//
//	go run ./examples/csubdemo
package main

import (
	"fmt"
	"os"
	"strings"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
)

var sources = map[string]string{
	// The "framework": performs the access-control check.
	"framework.c": `
int mac_check_access(int cred, int obj) {
	if (cred < 0) { return 13; }
	return 0;
}

int framework_dispatch(struct req *r, int checked) {
	if (checked) {
		int err = mac_check_access(r->cred, r);
		if (err != 0) { return err; }
	}
	return object_method(r);
}
`,
	// The "object layer": asserts the framework checked first.
	"object.c": `
struct req { int cred; int obj; };

int object_method(struct req *r) {
	TESLA_SYSCALL_PREVIOUSLY(mac_check_access(ANY(int), r) == 0);
	return 42;
}

int amd64_syscall(struct req *r, int checked) {
	return framework_dispatch(r, checked);
}

int main(int checked) {
	struct req *r = alloc(req);
	r->cred = 7;
	r->obj = 99;
	return amd64_syscall(r, checked);
}
`,
}

func main() {
	build, err := toolchain.BuildProgram(sources, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("== combined .tesla manifest ==")
	var buf strings.Builder
	build.Manifest.Encode(&buf)
	fmt.Println(buf.String())

	fmt.Printf("== instrumentation ==\n%d automata, %d hooks, %d event translators, %d sites\n\n",
		len(build.Autos), build.Stats.Hooks, build.Stats.Translators, build.Stats.Sites)

	fmt.Println("== instrumented IR for object_method ==")
	for _, f := range build.Program.Funcs {
		if f.Name == "object_method" {
			fmt.Print(f.String())
		}
	}
	fmt.Println()

	runOnce := func(checked int64) {
		handler := core.NewCountingHandler()
		ret, _, err := build.Run("main", monitor.Options{Handler: handler}, checked)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("main(checked=%d) = %d; violations: %d\n", checked, ret, len(handler.Violations()))
		for _, v := range handler.Violations() {
			fmt.Printf("  %v\n", v)
		}
	}

	fmt.Println("== execution ==")
	runOnce(1) // framework performs the check: assertion holds
	runOnce(0) // check skipped: TESLA reports the missing check
}
