package bench

import (
	"runtime"
	"sort"
)

// Noise-gated measurement, shared by the throughput figures that make
// comparative claims (ingest, compile). A speedup claim is only as good as
// the run-to-run stability of the numbers behind it, so these figures
// measure every rung several times and fail when the spread is too wide to
// support the comparison.

const (
	// noiseIters is the per-rung run count; the noise metric keeps the
	// middle three.
	noiseIters = 7
	// noiseGate is the maximum tolerated trimmed relative spread.
	noiseGate = 0.10
)

// noiseRung measures one rung noiseIters times and returns the best
// throughput plus the trimmed relative spread of the middle runs. One
// discarded warm-up at a quarter workload heats code and allocator paths;
// collecting between runs keeps one measurement's garbage from being
// charged to the next.
func noiseRung(total int, measure func(total int) (float64, error)) (best, noise float64, err error) {
	if _, err := measure(total / 4); err != nil {
		return 0, 0, err
	}
	runs := make([]float64, 0, noiseIters)
	for i := 0; i < noiseIters; i++ {
		runtime.GC()
		v, err := measure(total)
		if err != nil {
			return 0, 0, err
		}
		runs = append(runs, v)
	}
	sort.Float64s(runs)
	best = runs[len(runs)-1]
	// The noise statistic is the relative spread of the middle three runs:
	// outlier runs (scheduler preemption, a GC landing mid-measurement) are
	// trimmed symmetrically rather than widening the spread they caused.
	lo := (len(runs) - 3) / 2
	trimmed := runs[lo : lo+3]
	noise = (trimmed[2] - trimmed[0]) / trimmed[1]
	return best, noise, nil
}

// noiseRetry gives an over-gate rung one second chance with a doubled
// workload — longer runs average scheduler jitter out — keeping the quieter
// of the two measurements. A rung that stays noisy keeps its spread and the
// caller fails the figure.
func noiseRetry(best, noise float64, total int, measure func(total int) (float64, error)) (float64, float64) {
	if noise <= noiseGate {
		return best, noise
	}
	if b, n, err := noiseRung(total*2, measure); err == nil && n < noise {
		if b > best {
			best = b
		}
		noise = n
	}
	return best, noise
}
