package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/spec"
)

// FigIngest measures the monitor's event ingest plane: the synchronous
// reference path (one global-store round trip per event) against the
// batched per-thread event plane (Options.BatchSize > 0, staged rings
// applied in runs via core.UpdateBatch). The workload is the generated-
// translator path — Thread.Deliver of pre-matched keyed events into a
// global-context automaton from a growing number of goroutines on disjoint
// key ranges — so the figure isolates exactly what batching amortises:
// stripe locking, lock planning and handler dispatch per event.
//
// Methodology differs from the other throughput figures on purpose: every
// rung runs under the shared noise gate (noise.go) — measured noiseIters
// times, best-of reported, failing on >10% trimmed cross-run spread after
// one retry with a doubled workload.

const (
	ingestKeysPerG = 16
	ingestBatch    = 256
	ingestShards   = 8
)

// ingestAutomaton compiles the global-context session automaton once per
// measurement (stores are not reusable across monitors).
func ingestAutomaton() (*automata.Automaton, int, error) {
	a, err := spec.Parse("ingest",
		`TESLA_GLOBAL(call(start_op), returnfrom(end_op), previously(prepare(x) == 0))`, nil)
	if err != nil {
		return nil, 0, err
	}
	auto, err := automata.Compile(a)
	if err != nil {
		return nil, 0, err
	}
	for _, sym := range auto.Symbols {
		if sym.Fn == "prepare" {
			return auto, sym.ID, nil
		}
	}
	return nil, 0, fmt.Errorf("bench: ingest automaton has no prepare symbol")
}

// ingestRun drives total pre-matched events through one monitor from g
// goroutines (one monitor thread each, disjoint ranges of keysPerG keys)
// and returns aggregate events/sec. The timed region includes the final
// drain: the batched plane only gets credit for events the store has
// actually absorbed. FigCompile shares this body with engine-selecting
// options.
func ingestRun(o monitor.Options, g, keysPerG, total int) (float64, error) {
	auto, symID, err := ingestAutomaton()
	if err != nil {
		return 0, err
	}
	m, err := monitor.New(o, auto)
	if err != nil {
		return 0, err
	}
	idx := m.AutoIndex("ingest")

	ths := make([]*monitor.Thread, g)
	for t := range ths {
		ths[t] = m.NewThread()
		// Open the bound once per thread so instances are live and events
		// hit the store's update path, not the pre-init fast path.
		ths[t].Call("start_op")
	}

	perG := total / g
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < g; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			th := ths[t]
			base := t * keysPerG
			for i := 0; i < perG; i++ {
				th.Deliver(idx, symID, core.Value(base+i%keysPerG))
			}
		}(t)
	}
	wg.Wait()
	if err := m.Drain(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	return float64(perG*g) / elapsed.Seconds(), nil
}

// FigIngestMeasure is one ingest data point: batch == 0 selects the
// synchronous reference path.
func FigIngestMeasure(batch, g, total int) (float64, error) {
	return ingestRun(monitor.Options{BatchSize: batch, GlobalShards: ingestShards}, g, ingestKeysPerG, total)
}

// ingestRung measures one (batch, g) rung under the shared noise gate.
func ingestRung(batch, g, total int) (best, noise float64, err error) {
	return noiseRung(total, func(n int) (float64, error) {
		return FigIngestMeasure(batch, g, n)
	})
}

// FigIngest prints aggregate events/sec for the synchronous and batched
// event planes against goroutine count. It returns an error when any rung's
// cross-run noise exceeds 10% after a retry with a doubled workload — a
// figure that unstable is not evidence.
func FigIngest(w io.Writer, iters int) error {
	total := iters * 50
	if total < 100000 {
		total = 100000
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	fmt.Fprintln(w, "Figure ingest: monitor event ingest, synchronous vs batched event plane")
	fmt.Fprintf(w, "  (batch ring %d, %d stripes, %d keys/goroutine, best of %d runs, middle-3 noise <= 10%%)\n",
		ingestBatch, ingestShards, ingestKeysPerG, noiseIters)
	fmt.Fprintf(w, "  %-12s %14s %14s %10s %16s\n", "goroutines", "sync ev/s", "batched ev/s", "speedup", "noise sync/bat")

	var noisy []string
	var speedupAt8 float64
	for _, g := range []int{1, 2, 4, 8} {
		syncBest, syncNoise, err := ingestRung(0, g, total)
		if err != nil {
			return err
		}
		batBest, batNoise, err := ingestRung(ingestBatch, g, total)
		if err != nil {
			return err
		}
		syncBest, syncNoise = noiseRetry(syncBest, syncNoise, total, func(n int) (float64, error) {
			return FigIngestMeasure(0, g, n)
		})
		batBest, batNoise = noiseRetry(batBest, batNoise, total, func(n int) (float64, error) {
			return FigIngestMeasure(ingestBatch, g, n)
		})
		if syncNoise > noiseGate || batNoise > noiseGate {
			noisy = append(noisy, fmt.Sprintf("g=%d (sync %.1f%%, batched %.1f%%)",
				g, syncNoise*100, batNoise*100))
		}
		speedup := batBest / syncBest
		if g == 8 {
			speedupAt8 = speedup
		}
		fmt.Fprintf(w, "  %-12d %14.0f %14.0f %9.2fx %7.1f%% /%5.1f%%\n",
			g, syncBest, batBest, speedup, syncNoise*100, batNoise*100)
	}
	fmt.Fprintf(w, "  ingest: batched/sync at 8 goroutines = %.2fx (target >= 3x)\n", speedupAt8)
	fmt.Fprintln(w, "  reproduction shape: the synchronous path pays a stripe lock round and")
	fmt.Fprintln(w, "  a handler dispatch per event; the batched plane stages events in the")
	fmt.Fprintln(w, "  thread's ring and applies them in runs, so the per-event cost that is")
	fmt.Fprintln(w, "  left is the transition work itself and throughput scales with goroutines")
	fmt.Fprintln(w)
	if len(noisy) > 0 {
		return fmt.Errorf("bench: ingest figure too noisy (>10%% trimmed spread): %s",
			strings.Join(noisy, ", "))
	}
	return nil
}
