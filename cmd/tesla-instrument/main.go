// tesla-instrument runs the TESLA instrumenter (§4.2) over csub sources:
// it compiles each file to IR, instruments it against a manifest (by
// default the one analysed from the same sources), links, and reports what
// was inserted. With -dump the instrumented IR is printed.
//
// Usage:
//
//	tesla-instrument [-manifest program.tesla] [-dump] [-strip] file.c...
package main

import (
	"flag"
	"fmt"

	"tesla/internal/manifest"
	"tesla/internal/toolchain"
	"tesla/internal/toolchain/cli"
)

func main() {
	tool := cli.New("tesla-instrument", "[-manifest m.tesla] [-dump] [-strip] file.c...")
	manifestPath := flag.String("manifest", "", "instrument against this manifest instead of the sources' own assertions")
	dump := flag.Bool("dump", false, "print the linked instrumented IR")
	strip := flag.Bool("strip", false, "produce the uninstrumented (Default) build instead")
	sources := tool.LoadSources(tool.ParseSourceArgs())

	build, err := toolchain.BuildProgram(sources, !*strip)
	if err != nil {
		tool.Fatal(err)
	}

	if *manifestPath != "" {
		m, err := manifest.Load(*manifestPath)
		if err != nil {
			tool.Fatal(err)
		}
		fmt.Printf("manifest %s: %d assertions (build used %d from sources)\n",
			*manifestPath, len(m.Assertions), len(build.Manifest.Assertions))
	}

	fmt.Printf("modules: %d  functions: %d\n", len(build.Units), len(build.Program.Funcs))
	if !*strip {
		fmt.Printf("automata: %d  hooks: %d  translators: %d  sites: %d\n",
			len(build.Autos), build.Stats.Hooks, build.Stats.Translators, build.Stats.Sites)
	}
	if *dump {
		fmt.Print(build.Program.String())
	}
}
