package automata

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"tesla/internal/core"
)

// Engine lowering. At automaton-link time each class is compiled into a
// StepEngine: a dense symbol-ID→plan table whose entries are the
// monomorphic core.SymbolPlans the stores' engine bodies execute. The
// lowering hoists everything that is constant per (class, symbol) — the
// state→transition table, the «init» selection, the cleanup flag, the
// deterministic/keyed shape — out of the per-event loop; the per-event
// residue is what internal/core's compiled bodies run.
//
// Lowering is lazy (the first Engine call pays it once, guarded by a
// sync.Once) so every path that compiles automata — the sequential
// toolchain, tests, tools — gets engines without new plumbing. The build
// graph's engine node additionally persists lowered engines as images keyed
// on the per-class fingerprint, and re-attaches them on warm builds via
// AttachEngine so only edited classes are re-lowered.

// StepEngine is one automaton class's compiled transition engine.
type StepEngine struct {
	// Auto is the automaton the engine was lowered from.
	Auto *Automaton
	// Plans holds one compiled plan per alphabet symbol, indexed by
	// symbol ID (Symbols[i].ID == i, so the table is dense by
	// construction).
	Plans []*core.SymbolPlan
}

// PlanFor returns the plan of one symbol, or nil if the ID is out of range.
func (e *StepEngine) PlanFor(symID int) *core.SymbolPlan {
	if symID < 0 || symID >= len(e.Plans) {
		return nil
	}
	return e.Plans[symID]
}

// Engine returns the automaton's compiled engine, lowering it on first use.
// Safe for concurrent callers.
func (a *Automaton) Engine() *StepEngine {
	a.engineOnce.Do(func() {
		if a.engine == nil {
			a.engine = lowerEngine(a)
		}
	})
	return a.engine
}

// lowerEngine compiles every (class, symbol) pair into its plan.
func lowerEngine(a *Automaton) *StepEngine {
	plans := make([]*core.SymbolPlan, len(a.Symbols))
	for i, s := range a.Symbols {
		plans[i] = core.NewSymbolPlan(a.Class, s.Name, s.Flags, a.Trans[s.ID])
	}
	return &StepEngine{Auto: a, Plans: plans}
}

// EngineImage is the serialisable form of a lowered engine — the build
// graph's engine artifact. It carries the compiled tables plus enough
// identity (class name, state count, per-symbol name/flags) for AttachEngine
// to reject an image that does not belong to the automaton it is offered to.
type EngineImage struct {
	Class   string
	States  uint32
	Symbols []SymbolImage
}

// SymbolImage is one symbol's compiled table in an EngineImage.
type SymbolImage struct {
	Name  string
	Flags core.SymbolFlags
	Shape string
	Next  []int32
}

// EngineImageOf lowers (or reuses) the automaton's engine and captures it as
// a serialisable image.
func EngineImageOf(a *Automaton) *EngineImage {
	e := a.Engine()
	img := &EngineImage{Class: a.Name, States: a.States}
	for _, p := range e.Plans {
		img.Symbols = append(img.Symbols, SymbolImage{
			Name:  p.Symbol,
			Flags: p.Flags,
			Shape: p.Shape(),
			Next:  p.Next(),
		})
	}
	return img
}

// EncodeEngine serialises the automaton's engine image.
func EncodeEngine(a *Automaton) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(EngineImageOf(a)); err != nil {
		return nil, fmt.Errorf("automata: encode engine for %s: %w", a.Name, err)
	}
	return buf.Bytes(), nil
}

// DecodeEngineImage deserialises an engine image.
func DecodeEngineImage(data []byte) (*EngineImage, error) {
	var img EngineImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("automata: decode engine image: %w", err)
	}
	return &img, nil
}

// AttachEngine installs a cached engine image as the automaton's engine,
// validating every table against the automaton's transition sets first: a
// stale or corrupt image is rejected with an error (and the automaton left
// untouched, so the lazy lowering still applies). If an engine is already
// resident the attach is a validated no-op.
func (a *Automaton) AttachEngine(img *EngineImage) error {
	e, err := img.build(a)
	if err != nil {
		return err
	}
	a.engineOnce.Do(func() { a.engine = e })
	return nil
}

// build validates the image against the automaton and constructs the engine.
func (img *EngineImage) build(a *Automaton) (*StepEngine, error) {
	if img.Class != a.Name {
		return nil, fmt.Errorf("automata: engine image for class %q attached to %q", img.Class, a.Name)
	}
	if img.States != a.States {
		return nil, fmt.Errorf("automata: engine image for %s has %d states, automaton has %d", a.Name, img.States, a.States)
	}
	if len(img.Symbols) != len(a.Symbols) {
		return nil, fmt.Errorf("automata: engine image for %s has %d symbols, automaton has %d", a.Name, len(img.Symbols), len(a.Symbols))
	}
	plans := make([]*core.SymbolPlan, len(a.Symbols))
	for i, s := range a.Symbols {
		si := &img.Symbols[i]
		if si.Name != s.Name || si.Flags != s.Flags {
			return nil, fmt.Errorf("automata: engine image for %s symbol %d: identity mismatch", a.Name, i)
		}
		p, err := core.NewSymbolPlanFromTables(a.Class, s.Name, s.Flags, a.Trans[s.ID], si.Next)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}
	return &StepEngine{Auto: a, Plans: plans}, nil
}

// EngineFingerprint returns canonical bytes identifying everything the
// lowering consumes for this class: name, state count, and per symbol its
// identity plus the exact transition table. The build graph keys per-class
// engine artifacts on a hash of these bytes, so an assertion edit invalidates
// exactly the classes whose automata changed.
func EngineFingerprint(a *Automaton) []byte {
	var buf bytes.Buffer
	buf.WriteString("tesla-engine-v1\x00")
	buf.WriteString(a.Name)
	buf.WriteByte(0)
	var w [4]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:], v)
		buf.Write(w[:])
	}
	u32(a.States)
	u32(uint32(len(a.Symbols)))
	for _, s := range a.Symbols {
		buf.WriteString(s.Name)
		buf.WriteByte(0)
		u32(uint32(s.Flags))
		ts := a.Trans[s.ID]
		u32(uint32(len(ts)))
		for _, t := range ts {
			u32(t.From)
			u32(t.To)
			u32(t.KeyMask)
			u32(uint32(t.Flags))
		}
	}
	return buf.Bytes()
}
