package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tesla/internal/staticcheck"
)

var update = flag.Bool("update", false, "rewrite the JSON golden files")

// TestJSONGoldens pins the machine-readable report for every example
// program, byte for byte, under the same source names tesla-check would
// use from the repository root — so `tesla-check -json
// examples/staticcheck/testdata/x.c` matches `x.golden.json` exactly.
// Each report is rendered twice; any divergence between the runs is a
// determinism regression (map-ordered reasons or obligations).
func TestJSONGoldens(t *testing.T) {
	for _, name := range []string{"safe.c", "doomed.c", "liveness.c"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name)
			text, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			key := "examples/staticcheck/" + filepath.ToSlash(path)
			render := func() []byte {
				rep, err := staticcheck.CheckSources(map[string]string{key: string(text)}, "main")
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := rep.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			got := render()
			if again := render(); !bytes.Equal(got, again) {
				t.Fatalf("JSON report not deterministic across runs:\n--- first\n%s\n--- second\n%s", got, again)
			}

			golden := filepath.Join("testdata", name[:len(name)-2]+".golden.json")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("JSON report drifted from %s (run with -update to regenerate):\n--- got\n%s\n--- want\n%s",
					golden, got, want)
			}
		})
	}
}
