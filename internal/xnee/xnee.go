// Package xnee is a GNU Xnee-style X11 event recorder/replayer: the paper
// uses Xnee to replay X11 events and interact with dialog boxes for the
// figure 14b redraw-time measurements. This implementation generates and
// replays deterministic event scripts against the gui substrate.
package xnee

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"tesla/internal/gui"
)

// Script is a recorded interaction session: batches of events, one batch
// per run-loop iteration.
type Script struct {
	Batches [][]gui.Event
}

// DialogSession synthesises the paper's workload — interacting with dialog
// boxes: pointer movement across widgets (tracking rectangles), clicks that
// repaint portions of the window, and occasional complete redraws.
func DialogSession(iterations int) *Script {
	s := &Script{}
	// A deterministic LCG so every run replays identically.
	seed := int64(20131001)
	next := func(n int64) int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := (seed >> 33) % n
		if v < 0 {
			v += n
		}
		return v
	}
	for i := 0; i < iterations; i++ {
		var batch []gui.Event
		// Pointer glide: a few moves.
		x, y := next(400), next(300)
		for m := 0; m < 4; m++ {
			batch = append(batch, gui.Event{Kind: gui.MouseMove, X: x + int64(m)*7, Y: y + int64(m)*3})
		}
		// Most iterations click (partial repaint); every 16th exposes
		// the whole window (the fig. 14b outliers).
		if i%16 == 15 {
			batch = append(batch, gui.Event{Kind: gui.Expose})
		} else {
			batch = append(batch, gui.Event{Kind: gui.Click, X: x, Y: y})
		}
		s.Batches = append(s.Batches, batch)
	}
	return s
}

// CursorCrossing synthesises the §3.5.3 cursor-bug trigger: the pointer
// enters a tracking rectangle, the rectangles are invalidated (a scroll)
// while the pointer stays inside, and the pointer wiggles — a buggy run
// loop re-enters and pushes the same cursor a second time before the
// single exit.
func CursorCrossing(rect gui.Rect, repeats int) *Script {
	s := &Script{}
	inX, inY := rect.X+1, rect.Y+1
	outX := rect.X + rect.W + 5
	for i := 0; i < repeats; i++ {
		s.Batches = append(s.Batches,
			[]gui.Event{{Kind: gui.MouseMove, X: inX, Y: inY}}, // enter
			[]gui.Event{ // scroll + wiggle, same batch
				{Kind: gui.Invalidate},
				{Kind: gui.MouseMove, X: inX + 2, Y: inY},
			},
			[]gui.Event{{Kind: gui.MouseMove, X: outX, Y: inY}}, // leave
		)
	}
	return s
}

// Replay drives the script through the run loop, one batch per iteration.
func Replay(rl *gui.RunLoop, s *Script) {
	for _, b := range s.Batches {
		rl.ProcessBatch(b)
	}
}

// Save writes the script in xnee's line-oriented record format.
func (s *Script) Save(w io.Writer) error {
	for _, b := range s.Batches {
		for _, ev := range b {
			var line string
			switch ev.Kind {
			case gui.MouseMove:
				line = fmt.Sprintf("motion %d %d", ev.X, ev.Y)
			case gui.Click:
				line = fmt.Sprintf("button %d %d", ev.X, ev.Y)
			case gui.Expose:
				line = "expose"
			case gui.Invalidate:
				line = "invalidate"
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "---"); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a script saved with Save.
func Load(r io.Reader) (*Script, error) {
	s := &Script{}
	var batch []gui.Event
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "---":
			s.Batches = append(s.Batches, batch)
			batch = nil
		case line == "expose":
			batch = append(batch, gui.Event{Kind: gui.Expose})
		case line == "invalidate":
			batch = append(batch, gui.Event{Kind: gui.Invalidate})
		default:
			var kind string
			var x, y int64
			if _, err := fmt.Sscanf(line, "%s %d %d", &kind, &x, &y); err != nil {
				return nil, fmt.Errorf("xnee: bad line %q", line)
			}
			switch kind {
			case "motion":
				batch = append(batch, gui.Event{Kind: gui.MouseMove, X: x, Y: y})
			case "button":
				batch = append(batch, gui.Event{Kind: gui.Click, X: x, Y: y})
			default:
				return nil, fmt.Errorf("xnee: unknown event %q", kind)
			}
		}
	}
	if len(batch) > 0 {
		s.Batches = append(s.Batches, batch)
	}
	return s, sc.Err()
}
