package trace

import (
	"fmt"
	"io"

	"tesla/internal/automata"
	"tesla/internal/core"
)

// The reporter renders a (typically shrunk) violating trace as a
// counterexample: the violation itself, the event timeline that produced
// it, and the path the automaton took — the per-edge weighted graph of
// figure 9, restricted to one run.

// Report writes a human-readable counterexample for the trace's first
// recorded violation. The trace must contain lifecycle events (a recorded
// or re-recorded trace, not a bare program-event subset).
func Report(w io.Writer, t *Trace, autos []*automata.Automaton) error {
	if err := Check(t, autos); err != nil {
		return err
	}
	fails := t.Violations()
	if len(fails) == 0 {
		return fmt.Errorf("trace: no violation recorded in trace")
	}
	fail := fails[0]
	fmt.Fprintf(w, "violation: %s: %s (key %s, state %d, symbol %q)\n",
		fail.Class, fail.Verdict, fail.Key, fail.State, fail.Symbol)
	if t.Dropped > 0 {
		fmt.Fprintf(w, "warning: %d event(s) dropped to ring overflow; timeline is incomplete\n", t.Dropped)
	}

	fmt.Fprintf(w, "\ntimeline (%d events):\n", len(t.Events))
	for i := range t.Events {
		ev := &t.Events[i]
		marker := "  "
		if ev.Kind == KindFail {
			marker = "✗ "
		}
		fmt.Fprintf(w, "%s%s\n", marker, ev)
	}

	fmt.Fprintf(w, "\npath of %s:\n", fail.Class)
	steps := 0
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind == KindTransition && ev.Class == fail.Class {
			fmt.Fprintf(w, "  %d -> %d on %q (%s)\n", ev.From, ev.To, ev.Symbol, ev.Key)
			steps++
		}
	}
	if steps == 0 {
		fmt.Fprintf(w, "  (no transitions: the automaton never left its initial state)\n")
	}
	return nil
}

// Dot renders the violating automaton with the trace's transition counts
// as edge weights: edges the counterexample took are emphasised, untaken
// edges render dimmed, so the path to the failure is visible at a glance.
// class selects the automaton; empty means the first violation's class.
func Dot(t *Trace, autos []*automata.Automaton, class string) (string, error) {
	if err := Check(t, autos); err != nil {
		return "", err
	}
	if class == "" {
		fails := t.Violations()
		if len(fails) == 0 {
			return "", fmt.Errorf("trace: no violation recorded and no class named")
		}
		class = fails[0].Class
	}
	var auto *automata.Automaton
	for _, a := range autos {
		if a.Name == class {
			auto = a
			break
		}
	}
	if auto == nil {
		return "", fmt.Errorf("trace: unknown automaton %q", class)
	}
	weights := map[core.TransitionEdge]uint64{}
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind == KindTransition && ev.Class == class {
			weights[core.TransitionEdge{Class: class, From: ev.From, To: ev.To, Symbol: ev.Symbol}]++
		}
	}
	return auto.Dot(weights), nil
}
