// Package trace is TESLA's structured event-tracing subsystem. It records
// every automaton lifecycle event (§4.4.1: «init», clone, update, error,
// «cleanup») together with the raw program events that caused them, in
// per-thread bounded ring buffers, and merges them into one totally-ordered
// trace. Saved traces can be replayed offline through the compiled automata
// — without re-running the VM or the monitored system — reproducing the
// live run's verdicts, and a violating trace can be delta-debugged down to
// a minimal counterexample (TeSSLa-style offline stream analysis grafted
// onto TESLA's instrumentation).
package trace

import (
	"fmt"
	"strings"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/spec"
)

// Version is the trace-file format version written by this package. Readers
// reject files with any other version.
const Version = 1

// Kind classifies trace events. KindProgram events are the replayable raw
// inputs; the rest are automaton lifecycle events derived from them, kept so
// reports can show the path an automaton took without replaying.
type Kind uint8

const (
	// KindProgram is a raw program event as it entered a monitor thread.
	KindProgram Kind = iota
	// KindInit is an instance creation («init» transition).
	KindInit
	// KindClone is an instance specialising its key (the fork of fig. 4).
	KindClone
	// KindTransition is one instance state change.
	KindTransition
	// KindAccept is an instance finalising in an accepting state.
	KindAccept
	// KindFail is a detected violation.
	KindFail
	// KindOverflow is an instance-table overflow.
	KindOverflow
	// KindEvict is a live instance sacrificed by the EvictOldest overflow
	// policy.
	KindEvict
	// KindQuarantine is a class entering (On) or leaving (!On) quarantine
	// under the QuarantineClass overflow policy.
	KindQuarantine
)

func (k Kind) String() string {
	switch k {
	case KindProgram:
		return "program"
	case KindInit:
		return "init"
	case KindClone:
		return "clone"
	case KindTransition:
		return "transition"
	case KindAccept:
		return "accept"
	case KindFail:
		return "fail"
	case KindOverflow:
		return "overflow"
	case KindEvict:
		return "evict"
	case KindQuarantine:
		return "quarantine"
	default:
		return "Kind(?)"
	}
}

// Event is one trace record. It is self-contained: slice fields are owned
// by the event, not borrowed. Which fields are meaningful depends on Kind
// (and, for KindProgram, on Prog) — unused fields stay zero and are elided
// from JSON.
type Event struct {
	// Seq is the event's position in the global order. Sequence numbers
	// are allocated from one atomic counter across all threads, so sorting
	// by Seq linearises the trace; for single-threaded runs the order is
	// exact.
	Seq uint64 `json:"seq"`
	// Thread is the monitor thread the event entered on, or -1 for
	// lifecycle events (which are recorded store-side, where the thread
	// is unknown for the shared global context).
	Thread int  `json:"thread"`
	Kind   Kind `json:"kind"`
	// Time is the thread's clock at the event (VM steps when attached to
	// a VM; 0 when no clock is installed).
	Time int64 `json:"time,omitempty"`

	// Program-event payload (KindProgram).
	Prog    monitor.ProgKind `json:"prog,omitempty"`
	Fn      string           `json:"fn,omitempty"`
	Field   string           `json:"field,omitempty"`
	Op      spec.AssignOp    `json:"op,omitempty"`
	Auto    int              `json:"auto,omitempty"`
	Sym     int              `json:"sym,omitempty"`
	Slot    int              `json:"slot,omitempty"`
	Ret     core.Value       `json:"ret,omitempty"`
	HasRet  bool             `json:"hasRet,omitempty"`
	Vals    []core.Value     `json:"vals,omitempty"`
	InStack []int            `json:"inStack,omitempty"`

	// Lifecycle payload (all other kinds).
	Class string `json:"class,omitempty"`
	// Key is the instance binding: the new instance's key for init/clone,
	// the instance key for transition/accept/fail, the event key for
	// overflow.
	Key core.Key `json:"key,omitempty"`
	// ParentKey is the cloned-from instance's key (KindClone only).
	ParentKey core.Key         `json:"parentKey,omitempty"`
	From      uint32           `json:"from,omitempty"`
	To        uint32           `json:"to,omitempty"`
	State     uint32           `json:"state,omitempty"`
	Symbol    string           `json:"symbol,omitempty"`
	Verdict   core.VerdictKind `json:"verdict,omitempty"`
	// On distinguishes quarantine entry (true) from re-arm (false) for
	// KindQuarantine.
	On bool `json:"on,omitempty"`
}

// IsProgram reports whether the event is a replayable raw program event.
func (e *Event) IsProgram() bool { return e.Kind == KindProgram }

// String renders the event for timelines and reports.
func (e *Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d t%d %s", e.Seq, e.Thread, e.Kind)
	switch e.Kind {
	case KindProgram:
		fmt.Fprintf(&b, "/%s", e.Prog)
		switch e.Prog {
		case monitor.ProgCall, monitor.ProgSend:
			fmt.Fprintf(&b, " %s%v", e.Fn, e.Vals)
		case monitor.ProgReturn, monitor.ProgSendReturn:
			fmt.Fprintf(&b, " %s%v = %d", e.Fn, e.Vals, e.Ret)
		case monitor.ProgAssign:
			fmt.Fprintf(&b, " %s.%s %s %v", e.Fn, e.Field, e.Op, e.Vals)
		case monitor.ProgSite:
			fmt.Fprintf(&b, " %s%v", e.Fn, e.Vals)
			if len(e.InStack) > 0 {
				fmt.Fprintf(&b, " instack=%v", e.InStack)
			}
		case monitor.ProgBoundBegin, monitor.ProgBoundEnd:
			fmt.Fprintf(&b, " slot=%d", e.Slot)
		case monitor.ProgDeliver:
			fmt.Fprintf(&b, " auto=%d sym=%d %v", e.Auto, e.Sym, e.Vals)
		}
	case KindInit:
		fmt.Fprintf(&b, " %s %s state=%d", e.Class, e.Key, e.State)
	case KindClone:
		fmt.Fprintf(&b, " %s %s -> %s state=%d", e.Class, e.ParentKey, e.Key, e.State)
	case KindTransition:
		fmt.Fprintf(&b, " %s %s %d->%d on %q", e.Class, e.Key, e.From, e.To, e.Symbol)
	case KindAccept:
		fmt.Fprintf(&b, " %s %s", e.Class, e.Key)
	case KindFail:
		fmt.Fprintf(&b, " %s %s key=%s state=%d sym=%q", e.Class, e.Verdict, e.Key, e.State, e.Symbol)
	case KindOverflow:
		fmt.Fprintf(&b, " %s %s", e.Class, e.Key)
	case KindEvict:
		fmt.Fprintf(&b, " %s %s state=%d", e.Class, e.Key, e.State)
	case KindQuarantine:
		if e.On {
			fmt.Fprintf(&b, " %s enter", e.Class)
		} else {
			fmt.Fprintf(&b, " %s re-arm", e.Class)
		}
	}
	return b.String()
}

// Trace is a complete recorded run: the merged, Seq-ordered event stream
// plus the identity of the automata that produced it.
type Trace struct {
	// FormatVersion is the file-format version (== Version for traces
	// produced by this package).
	FormatVersion int `json:"version"`
	// Automata are the compiled automata names in monitor index order.
	// Replay refuses a trace whose names differ from the automata it is
	// given — Auto indices in events are only meaningful against the
	// same set.
	Automata []string `json:"automata"`
	// Dropped counts events lost to ring-buffer overflow across all
	// threads. A trace with Dropped > 0 may not replay to the same
	// verdicts.
	Dropped uint64 `json:"dropped,omitempty"`
	// Events is the merged stream, ascending by Seq.
	Events []Event `json:"events"`
}

// Programs returns the replayable subset of the trace's events, in order.
func (t *Trace) Programs() []Event {
	out := make([]Event, 0, len(t.Events))
	for _, e := range t.Events {
		if e.IsProgram() {
			out = append(out, e)
		}
	}
	return out
}

// Violations returns the trace's recorded violation events, in order.
func (t *Trace) Violations() []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Kind == KindFail {
			out = append(out, e)
		}
	}
	return out
}
