/*
 * A provably-failing temporal assertion: security_check() is defined but
 * never called, so the required `previously` event can never have
 * happened when the assertion site runs. The static checker proves the
 * violation at compile time — no execution needed. (The existing lint
 * pass does not catch this: the function exists, it is just never on any
 * path to the site.)
 */

int security_check(int x) {
	return 0;
}

int process(int x) {
	TESLA_WITHIN(main, previously(security_check(ANY(int))));
	return x + 1;
}

int main(int x) {
	return process(x);
}
