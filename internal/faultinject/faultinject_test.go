package faultinject

import (
	"sync"
	"testing"
)

// TestDeterminism: two injectors with one seed asked the same questions give
// identical answers, regardless of what other streams were consulted in
// between.
func TestDeterminism(t *testing.T) {
	a := New(7)
	b := New(7)
	a.SetRate(SiteAlloc, 0.3)
	b.SetRate(SiteAlloc, 0.3)

	var seqA, seqB []bool
	for i := 0; i < 500; i++ {
		seqA = append(seqA, a.Should(SiteAlloc, "cls"))
	}
	for i := 0; i < 500; i++ {
		// Interleave decisions of an unrelated stream: the cls stream
		// must be unaffected.
		b.Should(SiteAlloc, "other")
		seqB = append(seqB, b.Should(SiteAlloc, "cls"))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, seqA[i], seqB[i])
		}
	}
}

// TestSeedsDiffer: different seeds give different streams.
func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	a.SetRate(SiteAlloc, 0.5)
	b.SetRate(SiteAlloc, 0.5)
	same := 0
	for i := 0; i < 256; i++ {
		if a.Should(SiteAlloc, "x") == b.Should(SiteAlloc, "x") {
			same++
		}
	}
	if same == 256 {
		t.Fatal("seeds 1 and 2 produced identical streams")
	}
}

// TestRateAccuracy: observed fire frequency tracks the configured rate.
func TestRateAccuracy(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		in := New(99)
		in.SetRate(SiteAlloc, rate)
		const n = 200000
		fired := 0
		for i := 0; i < n; i++ {
			if in.Should(SiteAlloc, "r") {
				fired++
			}
		}
		got := float64(fired) / n
		if got < rate*0.8 || got > rate*1.2 {
			t.Errorf("rate %.2f: observed %.4f over %d draws", rate, got, n)
		}
		if in.Fired(SiteAlloc, "r") != uint64(fired) || in.Attempts(SiteAlloc, "r") != n {
			t.Errorf("rate %.2f: accounting mismatch", rate)
		}
	}
}

// TestEdgesAndEvery: rate 0 never fires, rate 1 always fires, SetEvery fires
// on the exact cadence, Disarm goes inert.
func TestEdgesAndEvery(t *testing.T) {
	in := New(5)
	for i := 0; i < 100; i++ {
		if in.Should(SiteAlloc, "inert") {
			t.Fatal("unarmed site fired")
		}
	}
	in.SetRate(SiteAlloc, 1)
	for i := 0; i < 100; i++ {
		if !in.Should(SiteAlloc, "hot") {
			t.Fatal("rate-1 site failed to fire")
		}
	}
	in.SetEvery(SiteAlloc, 3)
	for i := 1; i <= 9; i++ {
		want := i%3 == 0
		if got := in.Should(SiteAlloc, "every"); got != want {
			t.Fatalf("SetEvery(3) attempt %d: got %v want %v", i, got, want)
		}
	}
	in.Disarm(SiteAlloc)
	if in.Should(SiteAlloc, "hot") {
		t.Fatal("disarmed site fired")
	}
	if in.TotalFired() == 0 {
		t.Fatal("TotalFired lost history")
	}
	if got := in.Streams(); len(got) != 3 {
		t.Fatalf("Streams() = %v", got)
	}
}

// TestConcurrentUse: concurrent Should calls race-cleanly and conserve
// accounting (attempts across goroutines sum exactly).
func TestConcurrentUse(t *testing.T) {
	in := New(11)
	in.SetRate(SiteAlloc, 0.2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.Should(SiteAlloc, "conc")
			}
		}()
	}
	wg.Wait()
	if got := in.Attempts(SiteAlloc, "conc"); got != 8000 {
		t.Fatalf("attempts = %d, want 8000", got)
	}
}
