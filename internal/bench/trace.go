package bench

import (
	"fmt"
	"io"
	"time"

	"tesla/internal/core"
	"tesla/internal/kernel"
	"tesla/internal/monitor"
	"tesla/internal/trace"
)

// TraceMode is one tracing configuration of the overhead figure.
type TraceMode int

const (
	// TraceOff runs with no tap installed: the cost every untraced run
	// pays is one nil check per event.
	TraceOff TraceMode = iota
	// TraceRing records every program and lifecycle event into the
	// per-thread ring buffers, nothing leaves memory.
	TraceRing
	// TraceFile additionally merges the rings and encodes the full trace
	// to a file (binary codec) at the end of the run.
	TraceFile
)

func (m TraceMode) String() string {
	switch m {
	case TraceOff:
		return "tracing off"
	case TraceRing:
		return "ring buffer"
	default:
		return "ring + file"
	}
}

// countWriter measures encoded size without touching a filesystem.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// traceRun drives the OLTP workload under the full assertion set in one
// tracing mode and returns total wall time, events recorded (0 when off)
// and encoded bytes (TraceFile only). The ring capacity is sized to hold
// the whole run so the file mode writes a complete trace.
func traceRun(mode TraceMode, iters int) (time.Duration, uint64, int64, error) {
	autos, err := kernel.CompileAssertions(kernel.SetAll)
	if err != nil {
		return 0, 0, 0, err
	}
	opts := monitor.Options{Handler: core.NopHandler{}}
	var rec *trace.Recorder
	if mode != TraceOff {
		rec = trace.NewRecorder(autos, 64*iters+1024)
		opts.Handler = rec
		opts.Tap = rec
	}
	k, _, err := kernel.Boot(kernel.Release, kernel.SetAll, kernel.BugConfig{}, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	th := k.NewThread()
	pair, err := kernel.SetupOLTP(th)
	if err != nil {
		return 0, 0, 0, err
	}

	start := time.Now()
	for i := 0; i < iters; i++ {
		kernel.OLTPTransaction(th, pair)
	}
	var bytes int64
	if mode == TraceFile {
		w := &countWriter{}
		if err := trace.Write(w, rec.Snapshot()); err != nil {
			return 0, 0, 0, err
		}
		bytes = w.n
	}
	total := time.Since(start)

	var events uint64
	if rec != nil {
		events = rec.EventCount()
	}
	return total, events, bytes, nil
}

// TraceOverhead prints the tracing-overhead figure: the OLTP macrobenchmark
// under the full assertion set with tracing off, ring-buffer recording, and
// full file capture, reported as ns/event and events/sec. The event count
// comes from the recording runs (the workload is deterministic, so the
// untraced run sees the same stream).
func TraceOverhead(w io.Writer, iters int) error {
	type result struct {
		mode  TraceMode
		total time.Duration
		bytes int64
	}
	var results []result
	var events uint64
	for _, mode := range []TraceMode{TraceOff, TraceRing, TraceFile} {
		total, n, bytes, err := traceRun(mode, iters)
		if err != nil {
			return err
		}
		if n > 0 {
			events = n
		}
		results = append(results, result{mode, total, bytes})
	}
	if events == 0 {
		return fmt.Errorf("bench: trace workload produced no events")
	}

	fmt.Fprintln(w, "Tracing overhead (OLTP workload, all assertion sets)")
	fmt.Fprintf(w, "  %-14s %12s %14s %10s\n", "mode", "ns/event", "events/sec", "vs off")
	var base float64
	for _, r := range results {
		nsPerEvent := float64(r.total.Nanoseconds()) / float64(events)
		if r.mode == TraceOff {
			base = nsPerEvent
		}
		fmt.Fprintf(w, "  %-14s %12.1f %14.0f %9.2fx\n",
			r.mode, nsPerEvent, 1e9/nsPerEvent, nsPerEvent/base)
	}
	for _, r := range results {
		if r.bytes > 0 {
			fmt.Fprintf(w, "  trace file: %d events, %d bytes (%.1f bytes/event)\n",
				events, r.bytes, float64(r.bytes)/float64(events))
		}
	}
	fmt.Fprintf(w, "  events per run: %d (%d transactions)\n", events, iters)
	fmt.Fprintln(w, "  expected shape: ring recording adds a small constant per event;")
	fmt.Fprintln(w, "  file capture adds a one-off flush, amortised across the run")
	fmt.Fprintln(w)
	return nil
}
