// tesla-build compiles a csub program through the parallel,
// content-hash-cached build graph without executing it — the incremental
// driver behind the §5.1 rebuild experiment. With -cache, artifacts
// persist on disk across invocations: an unchanged file is never
// re-parsed or re-compiled, a body edit re-instruments only its own
// unit, and an assertion edit re-instruments every unit (the one-to-many
// property). -explain prints which graph nodes were cache hits, which
// were rebuilt and why a node has the key it has.
//
// Usage:
//
//	tesla-build [-j N] [-cache dir] [-explain] [-plain] [-check] [-elide]
//	            [-entry main] [-o out.ir] [-manifest out.tesla] file.c...
//
// The exit status is 1 on build errors (every failing file's diagnostics
// are reported, not just the first), 2 on usage errors, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"tesla/internal/toolchain"
	"tesla/internal/toolchain/cli"
)

func main() {
	tool := cli.New("tesla-build",
		"[-j N] [-cache dir] [-explain] [-plain] [-check] [-elide] [-o out.ir] [-manifest out.tesla] file.c...")
	plain := flag.Bool("plain", false, "build without instrumentation (Default build)")
	check := flag.Bool("check", false, "run the static model checker and report verdict counts")
	elide := flag.Bool("elide", false, "with -check: elide instrumentation for provably-safe assertions")
	entry := flag.String("entry", "main", "entry function for the static checker")
	outIR := flag.String("o", "", "write the linked program IR to this file")
	outManifest := flag.String("manifest", "", "write the combined program manifest to this file")
	buildFlags := cli.RegisterBuildFlags()
	sources := tool.LoadSources(tool.ParseSourceArgs())

	opts := toolchain.BuildOptions{
		Instrument: !*plain,
		Check:      *check,
		Elide:      *elide,
		Entry:      *entry,
	}
	buildFlags.Apply(&opts)
	build, err := toolchain.BuildProgramOpts(sources, opts)
	if err != nil {
		tool.Fatal(err)
	}

	fmt.Printf("modules: %d  functions: %d\n", len(build.Units), len(build.Program.Funcs))
	if !*plain {
		fmt.Printf("automata: %d  hooks: %d  translators: %d  sites: %d\n",
			len(build.Autos), build.Stats.Hooks, build.Stats.Translators, build.Stats.Sites)
	}
	if build.Report != nil {
		safe, failing, runtime := build.Report.Counts()
		fmt.Printf("check: %d provably safe, %d provably failing, %d need runtime\n",
			safe, failing, runtime)
	}
	fmt.Println(build.Graph.Summary())

	if *outIR != "" {
		if err := os.WriteFile(*outIR, []byte(build.Program.String()), 0o644); err != nil {
			tool.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outIR)
	}
	if *outManifest != "" {
		if err := build.Manifest.Save(*outManifest); err != nil {
			tool.Fatal(err)
		}
		fmt.Printf("wrote %s (%d assertions)\n", *outManifest, len(build.Manifest.Assertions))
	}
}
