package bench

import (
	"strings"
	"testing"
	"time"

	"tesla/internal/kernel"
	"tesla/internal/objc"
	"tesla/internal/spec"
)

// The harness runners are exercised with tiny iteration counts: the goal is
// that every figure regenerates without error and produces the expected
// table structure, not that the numbers are stable.

func TestKernelConfigs(t *testing.T) {
	cfgs := KernelConfigs()
	if len(cfgs) != 10 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	if _, ok := ConfigByName("Release"); !ok {
		t.Fatal("Release config missing")
	}
	if _, ok := ConfigByName("nope"); ok {
		t.Fatal("phantom config")
	}
	for _, c := range cfgs {
		k, err := BootConfig(c, kernel.BugConfig{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		th := k.NewThread()
		kernel.OpenClose(th, 2)
	}
}

func TestTable1Output(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	for _, want := range []string{"MF", "25", "96", "Process lifetimes"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table 1 missing %q:\n%s", want, sb.String())
		}
	}
}

func TestFig9Output(t *testing.T) {
	var sb strings.Builder
	if err := Fig9(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "«init»", "mac_socket_check_poll", "xlabel"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig 9 missing %q", want)
		}
	}
}

func TestFig10Runs(t *testing.T) {
	bt, err := Fig10Measure(OpenSSLCodebase(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if bt.CleanDefault <= 0 || bt.CleanTESLA <= 0 || bt.IncrDefault <= 0 || bt.IncrTESLA <= 0 {
		t.Fatalf("missing timings: %+v", bt)
	}
	// The structural property: incremental TESLA re-instruments every
	// module and must cost more than the one-file default rebuild.
	if bt.IncrTESLA <= bt.IncrDefault {
		t.Fatalf("incremental TESLA (%v) should exceed default (%v)", bt.IncrTESLA, bt.IncrDefault)
	}
	var sb strings.Builder
	if err := Fig10(&sb, 4, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Incremental, TESLA") {
		t.Fatalf("fig 10 table malformed:\n%s", sb.String())
	}
}

func TestFig11Runners(t *testing.T) {
	var sb strings.Builder
	if err := Fig11a(&sb, 20); err != nil {
		t.Fatal(err)
	}
	if err := Fig11b(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 11a", "SysBench OLTP", "Clang build", "Release"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig 11 output missing %q", want)
		}
	}
}

func TestFig12And13Runners(t *testing.T) {
	var sb strings.Builder
	if err := Fig12(&sb, 64); err != nil {
		t.Fatal(err)
	}
	if err := Fig13(&sb, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Per-thread", "Global", "lazy-initialisation", "MAC micro pre"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig 12/13 output missing %q", want)
		}
	}
}

func TestFig13ShapeHolds(t *testing.T) {
	pre, err := Fig13Measure(kernel.SetAll, true, OLTP, 50)
	if err != nil {
		t.Fatal(err)
	}
	post, err := Fig13Measure(kernel.SetAll, false, OLTP, 50)
	if err != nil {
		t.Fatal(err)
	}
	// The lazy-init optimisation must be a clear win — the figure 13
	// claim. Allow generous slack for timer noise.
	if post >= pre {
		t.Fatalf("optimisation not effective: pre=%v post=%v", pre, post)
	}
}

func TestFig14Runners(t *testing.T) {
	var sb strings.Builder
	Fig14a(&sb, 500)
	if err := Fig14b(&sb, 32); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"release", "TESLA", "p50", "max"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig 14 output missing %q", want)
		}
	}
}

func TestFig14aLadderShape(t *testing.T) {
	rel := Fig14aMeasure(objc.NoTracing, 30000)
	tes := Fig14aMeasure(objc.TESLA, 30000)
	if tes <= rel {
		t.Fatalf("TESLA mode (%v) must cost more than release (%v)", tes, rel)
	}
}

func TestTraceOverheadRuns(t *testing.T) {
	var sb strings.Builder
	if err := TraceOverhead(&sb, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tracing off", "ring buffer", "ring + file", "ns/event", "bytes/event"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace overhead output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRunRecordsEvents(t *testing.T) {
	// The recording modes must capture a non-empty, complete event stream:
	// a complete trace is what makes the file mode's output replayable.
	_, events, bytes, err := traceRun(TraceFile, 10)
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no events recorded")
	}
	if bytes == 0 {
		t.Fatal("no trace encoded")
	}
}

func TestPercentile(t *testing.T) {
	s := []time.Duration{5, 1, 9, 3, 7}
	if Percentile(s, 0) != 1 || Percentile(s, 1) != 9 || Percentile(s, 0.5) != 5 {
		t.Fatalf("percentiles wrong: %v", s)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestFig12MeasureBothContexts(t *testing.T) {
	for _, ctx := range []spec.Context{spec.PerThread, spec.Global} {
		if _, err := Fig12Measure(ctx, 32); err != nil {
			t.Fatalf("%v: %v", ctx, err)
		}
	}
}

func TestElisionRuns(t *testing.T) {
	es, err := ElisionMeasure(ElisionCodebase(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if es.SafeAssertions != 2 || es.RuntimeAssertions != 1 {
		t.Fatalf("verdicts = %d safe, %d runtime", es.SafeAssertions, es.RuntimeAssertions)
	}
	// Exactly one of the safe assertions needs the liveness pass.
	if es.SafetySafe != 1 {
		t.Fatalf("safety pass proved %d assertions, want 1", es.SafetySafe)
	}
	if es.LivenessHooks+es.LivenessAway != es.FullHooks || es.LivenessAway == 0 {
		t.Fatalf("hook accounting: %+v", es)
	}
	// Each rung must strictly remove hooks: full > safety-only > liveness.
	if es.SafetyHooks >= es.FullHooks || es.LivenessHooks >= es.SafetyHooks {
		t.Fatalf("elision ladder not strictly decreasing: %+v", es)
	}
	if es.LivenessInstrs >= es.SafetyInstrs || es.SafetyInstrs >= es.FullInstrs {
		t.Fatalf("elision did not shrink the program: %+v", es)
	}
	if es.LivenessSteps >= es.SafetySteps || es.SafetySteps >= es.FullSteps {
		t.Fatalf("elision did not shorten the run: %+v", es)
	}
	var buf strings.Builder
	if err := Elision(&buf, 3, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "provably safe") {
		t.Fatalf("table output:\n%s", buf.String())
	}
}

func TestFigCompileMeasureBothPaths(t *testing.T) {
	// Interpreted and compiled, synchronous and batched: every cell of the
	// compile figure must measure cleanly (the speedup itself is asserted by
	// `make bench-compile`, which runs the full noise-gated figure).
	for _, noEngine := range []bool{false, true} {
		for _, batch := range []int{0, ingestBatch} {
			evs, err := FigCompileMeasure(noEngine, batch, 2, 2000)
			if err != nil {
				t.Fatalf("noEngine=%v batch=%d: %v", noEngine, batch, err)
			}
			if evs <= 0 {
				t.Fatalf("noEngine=%v batch=%d: nonpositive throughput %v", noEngine, batch, evs)
			}
		}
	}
}
