// Command supervision demonstrates the runtime's fault-tolerance layer:
// what happens when a monitored program creates more automaton instances
// than the class's preallocated table holds, and how the overflow policies
// (drop-new, quarantine) and the deterministic fault injector change the
// verdict and the health report.
//
// The same knobs are exposed on the CLI as
// `tesla-run -overflow quarantine -quarantine-after 2 -health ...`.
//
//	go run ./examples/supervision
package main

import (
	"fmt"
	"io"
	"os"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/faultinject"
	"tesla/internal/monitor"
	"tesla/internal/spec"
)

func main() {
	if err := demo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "supervision demo:", err)
		os.Exit(1)
	}
}

// sessions is how many distinct objects one request touches; the class
// limit below holds only two, so the overload is 3 instances deep.
const sessions = 5

// newAuto compiles the quickstart property — within a request handler, a
// security check on the same object must previously have succeeded — and
// clamps its instance table to 2 slots so a handful of objects overloads it.
func newAuto() (*automata.Automaton, error) {
	assertion := spec.Within("supervision", "handle_request",
		spec.Previously(
			spec.Call("security_check", spec.AnyPtr(), spec.Var("o"), spec.Var("op")).ReturnsInt(0)))
	auto, err := automata.Compile(assertion)
	if err != nil {
		return nil, err
	}
	auto.Class.Limit = 2
	return auto, nil
}

// overload drives one request that checks and then uses `sessions` distinct
// objects, keeping the bound open so the instances stay live and the third
// object onward finds the table full.
func overload(th *monitor.Thread) {
	op := core.Value(4)
	th.Call("handle_request")
	for i := 0; i < sessions; i++ {
		object := core.Value(7001 + i)
		th.Call("security_check", 1, object, op)
		th.Return("security_check", 0, 1, object, op)
		th.Site("supervision", object, op)
	}
	th.Return("handle_request", 0)
}

func demo(w io.Writer) error {
	// Part 1: the default drop-new policy. Overflowing allocations are
	// dropped, so correctly-checked objects hit the assertion site with no
	// instance to vouch for them: the verdict degrades to false alarms,
	// and the health report is what tells you not to trust it (tesla-run
	// exits 3 in this situation).
	fmt.Fprintln(w, "== drop-new (default): overflow drops instances, verdict degrades ==")
	auto, err := newAuto()
	if err != nil {
		return err
	}
	handler := core.NewCountingHandler()
	mon := monitor.MustNew(monitor.Options{Handler: handler}, auto)
	overload(mon.NewThread())
	fmt.Fprintf(w, "drove %d checked objects through a %d-slot class\n", sessions, auto.Class.Limit)
	fmt.Fprintf(w, "false alarms: %d violation(s) on a correct program\n", len(handler.Violations()))
	printHealth(w, mon)

	// Part 2: quarantine. After two consecutive overflows the class takes
	// itself out of service instead of emitting unreliable verdicts:
	// further events are suppressed (and counted), and after RearmEvents
	// suppressed events the class re-arms and monitors again.
	fmt.Fprintln(w, "== quarantine: the class withdraws rather than guess ==")
	auto, err = newAuto()
	if err != nil {
		return err
	}
	handler = core.NewCountingHandler()
	mon = monitor.MustNew(monitor.Options{
		Handler:         handler,
		Overflow:        core.QuarantineClass,
		QuarantineAfter: 2,
		RearmEvents:     6,
	}, auto)
	overload(mon.NewThread())
	fmt.Fprintf(w, "false alarms: %d violation(s) — suppressed events raise no verdicts\n",
		len(handler.Violations()))
	printHealth(w, mon)

	// Part 3: deterministic fault injection. The injector fails every
	// second allocation; the health counters account for every forced
	// failure exactly, which is what the chaos suite asserts at scale.
	fmt.Fprintln(w, "== fault injection: seeded allocation failures, exactly accounted ==")
	auto, err = newAuto()
	if err != nil {
		return err
	}
	auto.Class.Limit = 64 // plenty of room: every overflow below is injected
	inj := faultinject.New(42)
	inj.SetEvery(faultinject.SiteAlloc, 2)
	mon = monitor.MustNew(monitor.Options{
		AllocFail: func(cls *core.Class) bool {
			return inj.Should(faultinject.SiteAlloc, cls.Name)
		},
	}, auto)
	overload(mon.NewThread())
	fmt.Fprintf(w, "injector fired %d time(s); health must show exactly that many overflows\n",
		inj.TotalFired())
	printHealth(w, mon)
	return nil
}

// printHealth renders the monitor's merged per-class health report, the
// same data `tesla-run -health` prints.
func printHealth(w io.Writer, m *monitor.Monitor) {
	for _, h := range m.Health() {
		state := "ok"
		switch {
		case h.Quarantined:
			state = "QUARANTINED"
		case h.Health.Degraded():
			state = "degraded"
		}
		fmt.Fprintf(w, "health %-12s state=%-11s live=%d violations=%d overflows=%d evictions=%d suppressed=%d quarantines=%d handler-panics=%d\n",
			h.Class, state, h.Live, h.Violations, h.Overflows, h.Evictions,
			h.Suppressed, h.Quarantines, h.HandlerPanics)
	}
	fmt.Fprintln(w)
}
