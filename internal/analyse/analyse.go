// Package analyse is the TESLA analyser (§4.1): it performs a recursive
// descent over csub ASTs (via the shared front-end, as the paper's analyser
// reuses Clang), parses the TESLA assertions it finds — benefiting from the
// same scoping and type information as a normal compilation pass — and
// emits per-file .tesla manifests that the instrumenter consumes.
package analyse

import (
	"tesla/internal/compiler"
	"tesla/internal/csub"
	"tesla/internal/manifest"
)

// Sources analyses a set of source files (name → text) and returns one
// manifest per file plus the combined program manifest.
func Sources(sources map[string]string) (map[string]*manifest.File, *manifest.File, error) {
	var files []*csub.File
	for name, src := range sources {
		f, err := csub.Parse(name, src)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	ctx, err := compiler.NewContext(files...)
	if err != nil {
		return nil, nil, err
	}
	perFile := make(map[string]*manifest.File, len(files))
	var all []*manifest.File
	for _, f := range files {
		u, err := compiler.CompileFile(f, ctx)
		if err != nil {
			return nil, nil, err
		}
		m := manifest.FromAssertions(f.Name, u.Assertions)
		perFile[f.Name] = m
		all = append(all, m)
	}
	combined, err := manifest.Combine(all...)
	if err != nil {
		return nil, nil, err
	}
	return perFile, combined, nil
}
