package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// Differential property harness: the sharded lock-striped store must be
// observationally equivalent to the seed single-mutex store (the reference
// model, selected with Shards: 1). Identical randomised event schedules —
// init, update, clone, cleanup over random keys, ANY patterns, strict and
// required events, overflow — are driven through both stores, asserting
// identical verdicts, live counts, instance sets and handler notification
// multisets after every event. Notification order within one event may
// differ (slot numbering diverges once frees interleave with allocations),
// so notifications are compared as multisets, which is also the only
// meaningful comparison once the sharded store runs concurrently.

// noteHandler records every notification as a serialised line.
type noteHandler struct {
	mu    sync.Mutex
	notes []string
}

func (h *noteHandler) add(format string, args ...interface{}) {
	h.mu.Lock()
	h.notes = append(h.notes, fmt.Sprintf(format, args...))
	h.mu.Unlock()
}

func (h *noteHandler) InstanceNew(cls *Class, inst *Instance) {
	h.add("new|%s|%s|%d", cls.Name, inst.Key, inst.State)
}

func (h *noteHandler) InstanceClone(cls *Class, parent, clone *Instance) {
	h.add("clone|%s|%s|%s|%d", cls.Name, parent.Key, clone.Key, clone.State)
}

func (h *noteHandler) Transition(cls *Class, inst *Instance, from, to uint32, symbol string) {
	h.add("trans|%s|%s|%d|%d|%s", cls.Name, inst.Key, from, to, symbol)
}

func (h *noteHandler) Accept(cls *Class, inst *Instance) {
	h.add("accept|%s|%s|%d", cls.Name, inst.Key, inst.State)
}

func (h *noteHandler) Fail(v *Violation) {
	h.add("fail|%s|%s|%s|%d|%s", v.Class.Name, v.Kind, v.Key, v.State, v.Symbol)
}

func (h *noteHandler) Overflow(cls *Class, key Key) {
	h.add("overflow|%s|%s", cls.Name, key)
}

func (h *noteHandler) Evict(cls *Class, inst *Instance) {
	h.add("evict|%s|%s|%d", cls.Name, inst.Key, inst.State)
}

func (h *noteHandler) Quarantine(cls *Class, on bool) {
	h.add("quarantine|%s|%v", cls.Name, on)
}

// sorted returns the notification multiset in canonical order.
func (h *noteHandler) sorted() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := append([]string(nil), h.notes...)
	sort.Strings(out)
	return out
}

// diffEvent is one step of a randomised schedule.
type diffEvent struct {
	op     string // "update", "reset", "resetclass"
	symbol string
	flags  SymbolFlags
	key    Key
	ts     TransitionSet
}

// randKey builds a key binding 0..KeySize slots with small values, so that
// clones, exact matches, ANY patterns and collisions all occur.
func randKey(rng *rand.Rand) Key {
	k := Key{}
	for i := 0; i < KeySize; i++ {
		if rng.Intn(3) == 0 {
			k = k.Set(i, Value(rng.Intn(5)))
		}
	}
	return k
}

// randSchedule builds one schedule over the given class shape.
func randSchedule(rng *rand.Rand, states uint32, n int) []diffEvent {
	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit, KeyMask: uint32(rng.Intn(1 << KeySize))}}
	var mid TransitionSet
	for s := uint32(1); s < states; s++ {
		mid = append(mid, Transition{From: s, To: 1 + (s+1)%states, KeyMask: uint32(rng.Intn(1 << KeySize))})
	}
	site := TransitionSet{{From: 2, To: states, KeyMask: 1}}
	var exit TransitionSet
	for s := uint32(1); s <= states; s++ {
		if s == 1 || rng.Intn(2) == 0 {
			exit = append(exit, Transition{From: s, To: states + 1, Flags: TransCleanup})
		}
	}

	evs := make([]diffEvent, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(16) {
		case 0:
			evs = append(evs, diffEvent{op: "reset"})
		case 1:
			evs = append(evs, diffEvent{op: "resetclass"})
		case 2, 3:
			evs = append(evs, diffEvent{op: "update", symbol: "enter", ts: enter, key: randKey(rng)})
		case 4:
			evs = append(evs, diffEvent{op: "update", symbol: "exit", ts: exit, key: randKey(rng)})
		case 5:
			evs = append(evs, diffEvent{op: "update", symbol: "site", flags: SymRequired, ts: site, key: randKey(rng)})
		case 6:
			evs = append(evs, diffEvent{op: "update", symbol: "mid", flags: SymStrict, ts: mid, key: randKey(rng)})
		default:
			evs = append(evs, diffEvent{op: "update", symbol: "mid", ts: mid, key: randKey(rng)})
		}
	}
	return evs
}

// instSet summarises a store's live instances as sorted key→state lines.
func instSet(s *Store, cls *Class) []string {
	var out []string
	for _, in := range s.Instances(cls) {
		out = append(out, fmt.Sprintf("%s|%d", in.Key, in.State))
	}
	sort.Strings(out)
	return out
}

// runDifferential drives one schedule through both stores and compares them
// after every event.
func runDifferential(t *testing.T, seed int64, shards int, failFast bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Small limits make overflow reachable; vary them per schedule, along
	// with the overflow-degradation policy so the whole supervision matrix
	// rides the same 1300+-schedule sweep (chaos_test.go adds injected
	// allocation failures on top).
	cls := &Class{
		Name: "diff", States: 8, Limit: 2 + rng.Intn(8),
		Overflow:        []OverflowPolicy{DropNew, EvictOldest, QuarantineClass}[rng.Intn(3)],
		QuarantineAfter: 1 + rng.Intn(3),
		RearmEvents:     1 + rng.Intn(8),
	}
	states := uint32(3 + rng.Intn(3))

	href := &noteHandler{}
	hsh := &noteHandler{}
	ref := NewStoreOpts(StoreOpts{Context: Global, Handler: href, Shards: 1})
	sh := NewStoreOpts(StoreOpts{Context: Global, Handler: hsh, Shards: shards})
	ref.FailFast = failFast
	sh.FailFast = failFast
	ref.Register(cls)
	sh.Register(cls)
	if !sh.Sharded() || ref.Sharded() {
		t.Fatalf("impl selection broken: ref sharded=%v sh sharded=%v", ref.Sharded(), sh.Sharded())
	}

	for i, ev := range randSchedule(rng, states, 48) {
		var errRef, errSh error
		switch ev.op {
		case "reset":
			ref.Reset()
			sh.Reset()
		case "resetclass":
			ref.ResetClass(cls)
			sh.ResetClass(cls)
		default:
			errRef = ref.UpdateState(cls, ev.symbol, ev.flags, ev.key, ev.ts)
			errSh = sh.UpdateState(cls, ev.symbol, ev.flags, ev.key, ev.ts)
		}
		if (errRef == nil) != (errSh == nil) {
			t.Fatalf("seed %d event %d (%s %s): verdict diverged: ref=%v sharded=%v",
				seed, i, ev.symbol, ev.key, errRef, errSh)
		}
		if lr, ls := ref.LiveCount(cls), sh.LiveCount(cls); lr != ls {
			t.Fatalf("seed %d event %d (%s %s): live count diverged: ref=%d sharded=%d",
				seed, i, ev.symbol, ev.key, lr, ls)
		}
		if ir, is := instSet(ref, cls), instSet(sh, cls); !reflect.DeepEqual(ir, is) {
			t.Fatalf("seed %d event %d (%s %s): instances diverged:\nref:     %v\nsharded: %v",
				seed, i, ev.symbol, ev.key, ir, is)
		}
		if qr, qs := ref.Quarantined(cls), sh.Quarantined(cls); qr != qs {
			t.Fatalf("seed %d event %d: quarantine state diverged: ref=%v sharded=%v", seed, i, qr, qs)
		}
		if hr, hs := healthOf(ref, cls), healthOf(sh, cls); hr != hs {
			t.Fatalf("seed %d event %d: health diverged: ref=%v sharded=%v", seed, i, hr, hs)
		}
		if nr, ns := href.sorted(), hsh.sorted(); !reflect.DeepEqual(nr, ns) {
			t.Fatalf("seed %d event %d (%s %s): notification multisets diverged:\nref:     %v\nsharded: %v",
				seed, i, ev.symbol, ev.key, nr, ns)
		}
	}
}

// TestDifferentialShardedVsReference runs ≥1000 randomised schedules against
// the reference store, covering both fail-fast modes and several stripe
// counts (including 2, where cross-shard traffic is most likely, and the
// single-stripe sharded store, which isolates the index/free-list machinery
// from striping).
func TestDifferentialShardedVsReference(t *testing.T) {
	const schedules = 1200
	for i := 0; i < schedules; i++ {
		shards := []int{2, 4, 8, 16}[i%4]
		runDifferential(t, int64(i), shards, i%2 == 0)
	}
}

// TestDifferentialSingleStripe pins the sharded implementation with one
// stripe against the reference separately: any divergence here is in the
// hash index or free list, not the lock planning.
func TestDifferentialSingleStripe(t *testing.T) {
	for i := 0; i < 100; i++ {
		runDifferential(t, int64(10000+i), 2, false)
	}
}

// TestDifferentialConcurrentPerKey checks linearisable per-key outcomes:
// goroutines drive disjoint key ranges concurrently into one sharded global
// store; afterwards each goroutine's schedule replayed alone against a
// reference store must produce exactly the final instances the shared store
// holds for that goroutine's keys. Keys are made independent by an «init»
// transition that binds the event key directly (no shared ANY parent), so
// the decomposition is semantically exact. Run under -race this also proves
// the striped locking publishes instance state correctly.
func TestDifferentialConcurrentPerKey(t *testing.T) {
	const (
		goroutines = 4
		perG       = 400
		keysPerG   = 8
	)
	cls := &Class{Name: "conc", States: 8, Limit: goroutines*keysPerG + 8}
	sh := NewStoreOpts(StoreOpts{Context: Global, Shards: 8})
	sh.Register(cls)

	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit, KeyMask: 1}}
	mid := TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 3, KeyMask: 1}, {From: 3, To: 2, KeyMask: 1}}
	site := TransitionSet{{From: 2, To: 4, KeyMask: 1}}

	type step struct {
		symbol string
		flags  SymbolFlags
		key    Key
		ts     TransitionSet
	}
	schedules := make([][]step, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 99))
			for i := 0; i < perG; i++ {
				key := NewKey(Value(g*keysPerG + rng.Intn(keysPerG)))
				var st step
				switch rng.Intn(8) {
				case 0:
					st = step{symbol: "enter", key: key, ts: enter}
				case 1:
					st = step{symbol: "site", flags: SymRequired, key: key, ts: site}
				default:
					st = step{symbol: "mid", key: key, ts: mid}
				}
				schedules[g] = append(schedules[g], st)
				sh.UpdateState(cls, st.symbol, st.flags, st.key, st.ts)
			}
		}(g)
	}
	wg.Wait()

	// Index the shared store's final instances by key.
	got := map[Key]uint32{}
	for _, in := range sh.Instances(cls) {
		got[in.Key] = in.State
	}

	for g := 0; g < goroutines; g++ {
		ref := NewStoreOpts(StoreOpts{Context: Global, Shards: 1})
		ref.Register(cls)
		for _, st := range schedules[g] {
			ref.UpdateState(cls, st.symbol, st.flags, st.key, st.ts)
		}
		want := map[Key]uint32{}
		for _, in := range ref.Instances(cls) {
			want[in.Key] = in.State
		}
		for k, wstate := range want {
			if gstate, ok := got[k]; !ok || gstate != wstate {
				t.Errorf("goroutine %d key %s: sharded state %d (present=%v), reference %d",
					g, k, gstate, ok, wstate)
			}
		}
		// And no phantom instances in this goroutine's key range.
		for k, gstate := range got {
			if int(k.Data[0])/keysPerG == g {
				if _, ok := want[k]; !ok {
					t.Errorf("goroutine %d: phantom instance %s state %d", g, k, gstate)
				}
			}
		}
	}
}

// TestDifferentialConcurrentInvariants hammers the cross-shard paths (ANY
// keys, cleanup, required sites, overflow) from several goroutines at once;
// exact outcomes are timing-dependent, but the structural invariants —
// LiveCount agrees with Instances, no duplicate keys, cleanup empties the
// class — must hold at every quiescent check, and -race must stay silent.
func TestDifferentialConcurrentInvariants(t *testing.T) {
	cls := &Class{Name: "stress", States: 8, Limit: 24}
	sh := NewStoreOpts(StoreOpts{Context: Global, Shards: 4})
	sh.Register(cls)

	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit}}
	mid := TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 2, KeyMask: 3}}
	exit := TransitionSet{{From: 1, To: 7, Flags: TransCleanup}, {From: 2, To: 7, Flags: TransCleanup}}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 7))
			for i := 0; i < 500; i++ {
				switch rng.Intn(10) {
				case 0:
					sh.UpdateState(cls, "enter", 0, AnyKey, enter)
				case 1:
					sh.UpdateState(cls, "exit", 0, AnyKey, exit)
				case 2:
					sh.UpdateState(cls, "site", SymRequired, randKey(rng), mid)
				default:
					sh.UpdateState(cls, "mid", 0, randKey(rng), mid)
				}
			}
		}(g)
	}
	wg.Wait()

	insts := sh.Instances(cls)
	if len(insts) != sh.LiveCount(cls) {
		t.Fatalf("LiveCount=%d but %d instances", sh.LiveCount(cls), len(insts))
	}
	seen := map[Key]bool{}
	for _, in := range insts {
		if seen[in.Key] {
			t.Fatalf("duplicate live key %s", in.Key)
		}
		seen[in.Key] = true
	}
	sh.UpdateState(cls, "exit", 0, AnyKey, exit)
	if n := sh.LiveCount(cls); n != 0 {
		t.Fatalf("cleanup left %d instances live", n)
	}
}
