// tesla-run compiles, instruments and executes a csub program under TESLA:
// the full §4 workflow in one command. Violations are reported as they are
// detected; with -failstop (TESLA's default behaviour in the paper) the
// first violation aborts execution.
//
// Usage:
//
//	tesla-run [-plain] [-failstop] [-debug] [-entry main] [-arg N]... file.c...
package main

import (
	"flag"
	"fmt"
	"os"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
)

func main() {
	plain := flag.Bool("plain", false, "run without instrumentation (Default build)")
	failstop := flag.Bool("failstop", false, "abort on the first violation")
	debug := flag.Bool("debug", false, "trace automaton events (TESLA_DEBUG-style output)")
	entry := flag.String("entry", "main", "entry function")
	var args intList
	flag.Var(&args, "arg", "integer argument to the entry function (repeatable)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tesla-run [-plain] [-failstop] [-debug] [-arg N]... file.c...")
		os.Exit(2)
	}

	sources := map[string]string{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		sources[path] = string(data)
	}

	build, err := toolchain.BuildProgram(sources, !*plain)
	if err != nil {
		fatal(err)
	}

	counting := core.NewCountingHandler()
	handler := core.MultiHandler{counting}
	if *debug {
		handler = append(handler, &core.PrintHandler{W: os.Stderr})
	}
	rt, err := build.NewRuntime(monitor.Options{Handler: handler, FailFast: *failstop})
	if err != nil {
		fatal(err)
	}
	rt.VM.Out = os.Stdout

	ret, err := rt.VM.Run(*entry, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tesla-run: execution aborted: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s returned %d\n", *entry, ret)

	if vs := counting.Violations(); len(vs) > 0 {
		fmt.Printf("%d TESLA violation(s):\n", len(vs))
		for _, v := range vs {
			fmt.Printf("  %v\n", v)
		}
		os.Exit(1)
	}
	if !*plain {
		fmt.Printf("all %d assertions held\n", len(build.Autos))
	}
}

type intList []int64

func (l *intList) String() string { return fmt.Sprint([]int64(*l)) }

func (l *intList) Set(s string) error {
	var v int64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tesla-run:", err)
	os.Exit(1)
}
