int fetch(int sig) {
	int ok = verify(sig);
	TESLA_WITHIN(main, previously(verify(ANY(int)) == 1));
	return ok;
}
int main(int sig) { return fetch(sig); }
