# Developer entry points. `make ci` is what the build gate runs.

GO ?= go

# Per-target budget for the fuzz smoke pass (native Go fuzzing syntax).
FUZZTIME ?= 30s

.PHONY: ci fmt vet build test race check bench fuzz-smoke bench-compare cache-gate bench-rebuild chaos-gate bench-faults liveness-gate agg-gate bench-agg ingest-gate bench-ingest compile-gate bench-compile crash-gate

ci: fmt vet build test race check liveness-gate cache-gate chaos-gate agg-gate ingest-gate compile-gate crash-gate fuzz-smoke bench-compare

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The monitor's global-context path, the trace recorder and the build
# graph's scheduler/cache are exercised from many goroutines; keep them
# provably race-free.
race:
	$(GO) test -race ./...

# The static checker over the demo programs: safe.c and liveness.c must
# pass (exit 0), doomed.c must be rejected (exit 1); the -json reports
# must match the golden files byte for byte (regenerate with
# `go test ./examples/staticcheck -update`).
check: build
	$(GO) run ./cmd/tesla-check examples/staticcheck/testdata/safe.c
	! $(GO) run ./cmd/tesla-check examples/staticcheck/testdata/doomed.c
	$(GO) run ./cmd/tesla-check examples/staticcheck/testdata/liveness.c
	@for n in safe liveness; do \
		$(GO) run ./cmd/tesla-check -json examples/staticcheck/testdata/$$n.c \
			| diff - examples/staticcheck/testdata/$$n.golden.json \
			|| { echo "check: $$n.c JSON drifted from golden"; exit 1; }; \
	done
	@$(GO) run ./cmd/tesla-check -json examples/staticcheck/testdata/doomed.c \
		| diff - examples/staticcheck/testdata/doomed.golden.json \
		|| { echo "check: doomed.c JSON drifted from golden"; exit 1; }

# Soundness differential for the liveness refinement: every corpus
# program is executed under the real VM/monitor across an input range; a
# liveness-PROVABLY-SAFE assertion must never record a runtime violation,
# and its hooks must actually be elided.
liveness-gate:
	$(GO) test -count=1 ./internal/staticcheck -run 'TestLivenessGate|TestVerdictSoundness'
	$(GO) test -count=1 ./examples/staticcheck -run 'TestJSONGoldens'

bench:
	$(GO) run ./cmd/tesla-bench -fig elide -files 8

# The §5.1 rebuild matrix on the build graph: cold vs warm vs one-file
# incremental, sequential vs parallel.
bench-rebuild:
	$(GO) run ./cmd/tesla-bench -fig rebuild -files 12

# Cache-correctness gate: build the example program twice against the same
# on-disk cache. The second build must do zero stage work (built=0 in the
# summary line) and both linked-IR dumps must be byte-identical.
CACHEGATE := /tmp/tesla-cache-gate
cache-gate: build
	@rm -rf $(CACHEGATE) && mkdir -p $(CACHEGATE)
	$(GO) run ./cmd/tesla-build -cache $(CACHEGATE)/cache -o $(CACHEGATE)/a.ir \
		examples/buildgraph/testdata/*.c
	$(GO) run ./cmd/tesla-build -cache $(CACHEGATE)/cache -o $(CACHEGATE)/b.ir \
		examples/buildgraph/testdata/*.c | tee $(CACHEGATE)/second.out
	@grep -q 'built=0' $(CACHEGATE)/second.out || \
		{ echo "cache-gate: warm build rebuilt nodes"; exit 1; }
	cmp $(CACHEGATE)/a.ir $(CACHEGATE)/b.ir
	@echo "cache-gate: warm build fully cached, IR byte-identical"

# Fault-injection gate: the chaos property suite (deterministic seeded
# injector, fixed seed matrix baked into the tests) under the race detector.
# Covers reference-vs-sharded parity under injected allocation failures at
# 1%/10%/50%, cross-class quarantine isolation, exact suppression and
# handler-panic accounting, and concurrent no-deadlock/no-corruption
# invariants — plus the injector's own determinism tests and the monitor's
# supervision passthrough.
chaos-gate:
	$(GO) test -race -count=1 ./internal/faultinject
	$(GO) test -race -count=1 ./internal/core -run 'TestChaos'
	$(GO) test -race -count=1 ./internal/monitor -run 'TestSupervision|TestHealth'

# Supervision-policy cost ladder on the sharded store (drop-new vs
# evict-oldest vs quarantine vs injected faults); target <3% per rung.
bench-faults:
	$(GO) run ./cmd/tesla-bench -fig faults

# Fleet-aggregation gate: the in-process fleet smoke under the race
# detector (concurrent producers, one mid-stream disconnect, exact
# ingested + dropped == sent accounting) plus the built-binary end-to-end
# (tesla-agg serve on a unix socket, three tesla-run -agg producers,
# tesla-agg query).
agg-gate: build
	$(GO) test -race -count=1 ./internal/agg
	$(GO) test -count=1 ./cmd/tesla-agg -run 'TestAggEndToEnd'

# Fleet ingestion throughput ladder (2..16 concurrent producers) with the
# exact-accounting column asserted per rung.
bench-agg:
	$(GO) run ./cmd/tesla-bench -fig agg

# Batched-event-plane gate: the schedule-exploring differential parity
# suites under the race detector. Covers the store-level batch-vs-sequential
# differential (with injected allocation faults), the monitor-level
# batched-vs-synchronous parity harness (>=1000 deterministic schedules
# across batch sizes and thread counts, plus real-goroutine runs), the
# trace recorder's ProgramBatch accounting/Seq invariants, replay parity
# over a batched corpus, and the agg producer's exact accounting under a
# batched monitor.
ingest-gate:
	$(GO) test -race -count=1 ./internal/core -run 'TestBatchDifferential'
	$(GO) test -race -count=1 ./internal/monitor -run 'TestBatchParity|TestBatchGlobal'
	$(GO) test -race -count=1 ./internal/trace -run 'TestCutSinceProgramBatch|TestProgramBatchSeqInvariant|TestReplayParityBatchedCorpus|TestReplayIgnoresCallerBatchSize'
	$(GO) test -race -count=1 ./internal/agg -run 'TestAggBatchedProducer'

# Ingest throughput figure: synchronous reference path vs the batched
# per-thread event plane, with the per-rung noise gate (<=10% trimmed
# spread over >=5 runs) enforced by the figure itself.
bench-ingest:
	$(GO) run ./cmd/tesla-bench -fig ingest

# Compiled-engine gate: the schedule-exploring compiled-vs-interpreted
# differential under the race detector. Covers >=1000 seeded schedules per
# sweep across the single-mutex reference store and stripe counts 1-16
# (supervision matrix: overflow policies, quarantine/re-arm, strict and
# required symbols, resets), the same sweeps under injected allocation
# failures, the Plan-carrying batch variant, the automaton-level lowering /
# image round-trip / corrupt-image-rejection suite, and the build graph's
# per-class engine cache cutoffs.
compile-gate:
	$(GO) test -race -count=1 ./internal/core -run 'TestEngineDifferential|TestEngineBatchDifferential|TestTransitionSet|TestInitTransition'
	$(GO) test -race -count=1 ./internal/automata -run 'TestEngine|TestAttachEngine|TestStepUnifiedContract'
	$(GO) test -race -count=1 ./internal/build -run 'TestEngineNode|TestAssertionEditRelowersOneClass|TestBodyEditKeepsEngines'

# Compile figure: interpreted transition walk vs the compiled step engines,
# with the shared noise gate and the >=1.5x single-thread speedup floor
# enforced by the figure itself.
bench-compile:
	$(GO) run ./cmd/tesla-bench -fig compile

# Crash-consistency gate: the WAL spool's torn-tail recovery unit suite,
# the in-process randomized crash schedules (producer/server kills and
# restarts, snapshot restore, seq dedup — exact-accounting invariants
# asserted after every schedule), and the process-level gate that
# SIGKILLs real tesla-run / tesla-agg binaries at randomized points:
# every recovered -trace-spool must be a verbatim prefix of an uncrashed
# run, and fleet counts must come out exactly once across producer
# crash, two resends and a server kill/restart in between.
crash-gate: build
	$(GO) test -count=1 ./internal/trace -run 'TestSpool|TestWAL'
	$(GO) test -count=1 ./internal/agg -run 'TestCrashSchedules|TestSnapshot|TestDurableAcks|TestResendDeduplicated'
	$(GO) test -count=1 ./cmd/tesla-agg -run 'TestCrashGate'

# Short fuzz pass over the binary/JSON trace codec, the streaming frame
# reader, the WAL spool's segment repair, the csub front end, the batched
# event plane's flush protocol and the compiled-vs-interpreted step
# differential
# ($(FUZZTIME) per target); saved crashers land in testdata/fuzz and fail
# `make test` from then on.
fuzz-smoke:
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzCodecRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzFrameStream$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzSpoolRecover$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/csub -run '^$$' -fuzz '^FuzzCsubParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/monitor -run '^$$' -fuzz '^FuzzBatchFlush$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzCompiledStep$$' -fuzztime $(FUZZTIME)

# Store benchmarks, single-mutex reference vs sharded, diffed with benchstat
# when it is installed (the benchmark names match across runs by design).
bench-compare:
	@TESLA_STORE_SHARDS=1 $(GO) test ./internal/core -run '^$$' -bench 'StoreOLTP' -benchtime 0.5s -count 5 | tee /tmp/tesla-store-old.txt
	@$(GO) test ./internal/core -run '^$$' -bench 'StoreOLTP' -benchtime 0.5s -count 5 | tee /tmp/tesla-store-new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat /tmp/tesla-store-old.txt /tmp/tesla-store-new.txt; \
	else \
		echo "benchstat not installed; raw results above (old = mutex, new = sharded)"; \
	fi
