// tesla-trace works with recorded TESLA event traces (produced by
// `tesla-run -trace` or any trace.Recorder): inspect the timeline, replay
// it offline against the program's automata, delta-debug a violating trace
// to a minimal counterexample, and render the counterexample as the
// automaton path taken.
//
// Usage:
//
//	tesla-trace show trace.tr
//	tesla-trace replay [-overflow policy] trace.tr file.c...
//	tesla-trace shrink [-o min.tr] [-json] [-overflow policy] trace.tr file.c...
//	tesla-trace report [-dot] [-class name] trace.tr file.c...
//	tesla-trace convert [-json] [-o out.tr] trace.tr
//
// Subcommands that rebuild automata (replay, shrink, report) need the same
// csub sources the trace was recorded from; the trace file itself carries
// the automata names and is refused on mismatch. Runs recorded under a
// non-default overflow policy (`tesla-run -overflow ...`) replay and
// shrink faithfully only under the same policy: pass the matching
// -overflow/-quarantine-after/-rearm flags.
//
// Exit status mirrors tesla-run: 1 when a replay detects assertion
// violations, 2 for unusable input (bad usage, unreadable or mismatched
// traces, source build errors).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
	"tesla/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "show":
		cmdShow(args)
	case "replay":
		cmdReplay(args)
	case "shrink":
		cmdShrink(args)
	case "report":
		cmdReport(args)
	case "convert":
		cmdConvert(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tesla-trace show trace.tr
  tesla-trace replay [-overflow policy] trace.tr file.c...
  tesla-trace shrink [-o min.tr] [-json] [-overflow policy] trace.tr file.c...
  tesla-trace report [-dot] [-class name] trace.tr file.c...
  tesla-trace convert [-json] [-o out.tr] trace.tr

trace.tr may also be a -trace-spool directory from tesla-run: the spool
is recovered (a torn tail from a crash is truncated to the last complete
frame) and its delta cuts are merged into one trace.`)
	os.Exit(2)
}

func cmdShow(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	// A directory is a write-ahead trace spool (tesla-run -trace-spool):
	// recover it — torn tail and all — and show the merged trace.
	if fi, err := os.Stat(fs.Arg(0)); err == nil && fi.IsDir() {
		tr := loadTrace(fs.Arg(0))
		showHeader(tr.FormatVersion, len(tr.Events), tr.Automata, tr.Dropped)
		for i := range tr.Events {
			fmt.Println(tr.Events[i].String())
		}
		return
	}
	// Binary traces stream event by event (trace.StreamDecoder), so show
	// handles traces far larger than memory; JSON traces fall back to a
	// whole-file load.
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatalCode(2, err)
	}
	defer f.Close()
	sd, err := trace.NewStreamDecoder(f)
	if err != nil {
		// Not a binary trace (or corrupt): let the dual-format loader
		// decide, preserving its diagnostics.
		tr := loadTrace(fs.Arg(0))
		showHeader(tr.FormatVersion, len(tr.Events), tr.Automata, tr.Dropped)
		for i := range tr.Events {
			fmt.Println(tr.Events[i].String())
		}
		return
	}
	showHeader(trace.Version, sd.Len(), sd.Automata(), sd.Dropped())
	for {
		ev, err := sd.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			fatalCode(2, err)
		}
		fmt.Println(ev.String())
	}
}

func showHeader(version, events int, automata []string, dropped uint64) {
	fmt.Printf("trace: format v%d, %d events, %d automata", version, events, len(automata))
	if dropped > 0 {
		fmt.Printf(", %d dropped", dropped)
	}
	fmt.Println()
	for i, name := range automata {
		fmt.Printf("  automaton %d: %s\n", i, name)
	}
}

// policyFlags registers the supervision-policy flags shared by replay and
// shrink and returns a resolver. A run recorded under a non-default
// overflow policy can degrade differently on replay (an instance the live
// run evicted survives a drop-new replay), so reproducing its verdict
// means replaying under the same policy tesla-run used.
func policyFlags(fs *flag.FlagSet) func() monitor.Options {
	overflow := fs.String("overflow", "default", "overflow policy the run was recorded under (default, drop-new, evict-oldest, quarantine)")
	quarAfter := fs.Int("quarantine-after", 0, "consecutive overflows before quarantine (0 = default)")
	rearm := fs.Int("rearm", 0, "suppressed events before a quarantined class re-arms (0 = default)")
	return func() monitor.Options {
		pol, err := core.ParseOverflowPolicy(*overflow)
		if err != nil {
			fatalCode(2, err)
		}
		return monitor.Options{Overflow: pol, QuarantineAfter: *quarAfter, RearmEvents: *rearm}
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	opts := policyFlags(fs)
	fs.Parse(args)
	if fs.NArg() < 2 {
		usage()
	}
	tr := loadTrace(fs.Arg(0))
	autos := buildAutos(fs.Args()[1:])
	res, err := trace.ReplayOpts(tr, autos, opts())
	if err != nil {
		fatalCode(2, err)
	}
	for name, n := range res.Accepts {
		fmt.Printf("%s: %d acceptance(s)\n", name, n)
	}
	if len(res.Violations) == 0 {
		fmt.Printf("replay of %d events: all assertions held\n", len(tr.Events))
		return
	}
	fmt.Printf("replay of %d events: %d violation(s):\n", len(tr.Events), len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  %v\n", v)
	}
	os.Exit(1)
}

func cmdShrink(args []string) {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	out := fs.String("o", "", "write the minimal trace here (default stdout)")
	asJSON := fs.Bool("json", false, "write the minimal trace as JSON")
	opts := policyFlags(fs)
	fs.Parse(args)
	if fs.NArg() < 2 {
		usage()
	}
	tr := loadTrace(fs.Arg(0))
	autos := buildAutos(fs.Args()[1:])
	res, err := trace.ShrinkOpts(tr, autos, opts())
	if err != nil {
		fatalCode(2, err)
	}
	fmt.Fprintf(os.Stderr, "shrink: %s: kept %d of %d program event(s)\n",
		res.Target, res.Kept, res.Kept+res.Removed)
	writeTrace(res.Trace, *out, *asJSON)
}

func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	dot := fs.Bool("dot", false, "emit the automaton path as Graphviz DOT")
	class := fs.String("class", "", "automaton to render (default: the first violation's)")
	fs.Parse(args)
	if fs.NArg() < 2 {
		usage()
	}
	tr := loadTrace(fs.Arg(0))
	autos := buildAutos(fs.Args()[1:])
	if *dot {
		g, err := trace.Dot(tr, autos, *class)
		if err != nil {
			fatalCode(2, err)
		}
		fmt.Print(g)
		return
	}
	if err := trace.Report(os.Stdout, tr, autos); err != nil {
		fatal(err)
	}
}

func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("o", "", "output path (default stdout)")
	asJSON := fs.Bool("json", false, "write JSON instead of binary")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	writeTrace(loadTrace(fs.Arg(0)), *out, *asJSON)
}

// loadTrace reads a trace in any of its at-rest forms: binary file, JSON
// file, or a write-ahead spool directory left by tesla-run -trace-spool
// (recovered to the longest valid prefix, deltas merged in order).
func loadTrace(path string) *trace.Trace {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		tr, err := trace.ReadSpool(path)
		if err != nil {
			fatalCode(2, err)
		}
		return tr
	}
	f, err := os.Open(path)
	if err != nil {
		fatalCode(2, err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatalCode(2, err)
	}
	return tr
}

func writeTrace(tr *trace.Trace, path string, asJSON bool) {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	if asJSON {
		err = trace.WriteJSON(w, tr)
	} else {
		err = trace.Write(w, tr)
	}
	if err != nil {
		fatal(err)
	}
}

func buildAutos(paths []string) []*automata.Automaton {
	sources := map[string]string{}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalCode(2, err)
		}
		sources[path] = string(data)
	}
	build, err := toolchain.BuildProgram(sources, true)
	if err != nil {
		fatalCode(2, err)
	}
	return build.Autos
}

func fatal(err error) { fatalCode(1, err) }

// fatalCode exits with the given status: 2 marks unusable input (bad trace,
// bad sources), distinct from 1 (violations found on replay).
func fatalCode(code int, err error) {
	fmt.Fprintln(os.Stderr, "tesla-trace:", err)
	os.Exit(code)
}
