package kernel

import (
	"fmt"
	"sync/atomic"

	"tesla/internal/core"
)

// Sysno identifies a system call for the dispatcher.
type Sysno int64

// System call numbers (arbitrary but stable).
const (
	SysOpen Sysno = iota + 1
	SysClose
	SysRead
	SysWrite
	SysReaddir
	SysStat
	SysChmod
	SysExtattrGet
	SysExtattrSet
	SysAclGet
	SysAclSet
	SysExec
	SysKldload
	SysSocket
	SysBind
	SysConnect
	SysListen
	SysAccept
	SysSend
	SysRecv
	SysPoll
	SysSelect
	SysKevent
	SysSockStat
	SysSockRelabel
	SysFork
	SysExit
	SysWait
	SysKill
	SysPtrace
	SysSetPriority
	SysGetPriority
	SysSetuid
	SysSetgid
	SysProcfs
	SysCpusetGet
	SysCpusetSet
	SysRtprio
)

// syscall is the AMD64Syscall dispatcher: the bound for TESLA_SYSCALL*
// assertions (fig. 9's «init»/«cleanup» events).
func (t *Thread) syscall(no Sysno, body func() int64) int64 {
	atomic.AddUint64(&t.k.SyscallCount, 1)
	t.enter("amd64_syscall", core.Value(no))
	ret := body()
	t.exit("amd64_syscall", core.Value(ret), core.Value(no))
	return ret
}

// File-system system calls.

// Open opens (creating if absent) a path and returns an fd or -errno.
func (t *Thread) Open(path string) int64 {
	return t.syscall(SysOpen, func() int64 {
		vp, err := t.vnOpen(path, OpenNormal, true)
		if err != OK {
			return -err
		}
		fp := &File{ID: t.k.id(), Ops: vnodeFileOps, Vnode: vp, FCred: t.crhold(t.proc.Cred)}
		return t.newFd(fp)
	})
}

// Close closes an fd.
func (t *Thread) Close(fd int64) int64 {
	return t.syscall(SysClose, func() int64 {
		fp := t.fd(fd)
		if fp == nil {
			return -EBADF
		}
		ret := fp.Ops.Close(t, fp)
		t.crfree(fp.FCred)
		t.fds[fd] = nil
		return -ret
	})
}

// Read reads n bytes from fd.
func (t *Thread) Read(fd, n int64) int64 {
	return t.syscall(SysRead, func() int64 {
		fp := t.fd(fd)
		if fp == nil {
			return -EBADF
		}
		return -fp.Ops.Read(t, fp, n)
	})
}

// Write writes n bytes to fd.
func (t *Thread) Write(fd, n int64) int64 {
	return t.syscall(SysWrite, func() int64 {
		fp := t.fd(fd)
		if fp == nil {
			return -EBADF
		}
		return -fp.Ops.Write(t, fp, n)
	})
}

// Readdir lists a directory through the VFS-independent path.
func (t *Thread) Readdir(path string) int64 {
	return t.syscall(SysReaddir, func() int64 {
		vp, err := t.lookup(path, false)
		if err != OK {
			return -err
		}
		if err := t.macVnodeCheck("mac_vnode_check_readdir", t.proc.Cred, vp); err != OK {
			return -err
		}
		return -vp.Ops.Readdir(t, vp)
	})
}

// Stat fetches attributes.
func (t *Thread) Stat(path string) int64 {
	return t.syscall(SysStat, func() int64 {
		vp, err := t.lookup(path, false)
		if err != OK {
			return -err
		}
		if err := t.macVnodeCheck("mac_vnode_check_stat", t.proc.Cred, vp); err != OK {
			return -err
		}
		ret := vp.Ops.Getattr(t, vp)
		if ret == OK {
			t.site("MF:stat_flow", vp.ID)
		}
		return -ret
	})
}

// Chmod sets attributes.
func (t *Thread) Chmod(path string, mode int64) int64 {
	return t.syscall(SysChmod, func() int64 {
		vp, err := t.lookup(path, false)
		if err != OK {
			return -err
		}
		if err := t.macVnodeCheck("mac_vnode_check_setmode", t.proc.Cred, vp); err != OK {
			return -err
		}
		ret := vp.Ops.Setattr(t, vp, mode)
		if ret == OK {
			t.site("MF:chmod_flow", vp.ID)
		}
		return -ret
	})
}

// ExtattrGet reads an extended attribute via the system-call path.
func (t *Thread) ExtattrGet(path, name string) int64 {
	return t.syscall(SysExtattrGet, func() int64 {
		vp, err := t.lookup(path, false)
		if err != OK {
			return -err
		}
		if err := t.macVnodeCheck("mac_vnode_check_getextattr", t.proc.Cred, vp); err != OK {
			return -err
		}
		t.site("MF:extattr_get_cred", t.proc.Cred.ID, vp.ID)
		return -t.extattrGet(vp, name)
	})
}

// ExtattrSet writes an extended attribute via the system-call path.
func (t *Thread) ExtattrSet(path, name string) int64 {
	return t.syscall(SysExtattrSet, func() int64 {
		vp, err := t.lookup(path, false)
		if err != OK {
			return -err
		}
		if err := t.macVnodeCheck("mac_vnode_check_setextattr", t.proc.Cred, vp); err != OK {
			return -err
		}
		t.site("MF:extattr_set_cred", t.proc.Cred.ID, vp.ID)
		return -t.extattrSet(vp, name, []byte{1})
	})
}

// AclGet reads an ACL: UFS implements it with an internal MAC-exempt read.
func (t *Thread) AclGet(path string) int64 {
	return t.syscall(SysAclGet, func() int64 {
		vp, err := t.lookup(path, false)
		if err != OK {
			return -err
		}
		if err := t.macVnodeCheck("mac_vnode_check_getacl", t.proc.Cred, vp); err != OK {
			return -err
		}
		return -t.aclRead(vp)
	})
}

// AclSet writes an ACL.
func (t *Thread) AclSet(path string) int64 {
	return t.syscall(SysAclSet, func() int64 {
		vp, err := t.lookup(path, false)
		if err != OK {
			return -err
		}
		if err := t.macVnodeCheck("mac_vnode_check_setacl", t.proc.Cred, vp); err != OK {
			return -err
		}
		return -t.aclWrite(vp)
	})
}

// Exec executes a binary: the open-like path guarded by
// mac_vnode_check_exec rather than _open (§3.5.2, fig. 7).
func (t *Thread) Exec(path string) int64 {
	return t.syscall(SysExec, func() int64 {
		vp, err := t.vnOpen(path, OpenExec, false)
		if err != OK {
			return -err
		}
		// A setuid image changes credentials; P_SUGID must follow.
		if vp.Mode&0o4000 != 0 {
			newCred := &Ucred{ID: t.k.id(), UID: vp.Owner, Label: t.proc.Cred.Label, refs: 0}
			t.setCred(t.proc, newCred)
		}
		t.site("P:exec", t.proc.ID)
		return 0
	})
}

// Kldload loads a kernel module: guarded by mac_kld_check_load.
func (t *Thread) Kldload(path string) int64 {
	return t.syscall(SysKldload, func() int64 {
		vp, err := t.vnOpen(path, OpenKldload, false)
		if err != OK {
			return -err
		}
		t.site("M:kldload", vp.ID)
		return 0
	})
}

// PageFault simulates a read fault on a mapped file: file-system I/O
// initiated outside any system call, bounded by trap_pfault.
func (t *Thread) PageFault(path string) int64 {
	vp, err := t.lookup(path, false)
	if err != OK {
		return -err
	}
	return -t.trapPfault(vp)
}

// Socket system calls.

// Socket creates a socket fd.
func (t *Thread) Socket() int64 {
	return t.syscall(SysSocket, func() int64 {
		so, err := t.soCreate()
		if err != OK {
			return -err
		}
		fp := &File{ID: t.k.id(), Ops: socketFileOps, Socket: so, FCred: t.crhold(t.proc.Cred)}
		return t.newFd(fp)
	})
}

// Bind binds a socket.
func (t *Thread) Bind(fd int64) int64 {
	return t.syscall(SysBind, func() int64 { return t.sockOp(fd, t.soBind) })
}

// Listen marks a socket passive.
func (t *Thread) Listen(fd int64) int64 {
	return t.syscall(SysListen, func() int64 { return t.sockOp(fd, t.soListen) })
}

// Connect connects fd to the peer socket held by pfd.
func (t *Thread) Connect(fd, pfd int64) int64 {
	return t.syscall(SysConnect, func() int64 {
		fp, pp := t.fd(fd), t.fd(pfd)
		if fp == nil || fp.Socket == nil || pp == nil || pp.Socket == nil {
			return -EBADF
		}
		if err := t.macSocketCheckConnect(t.proc.Cred, fp.Socket); err != OK {
			return -err
		}
		return -fp.Socket.Proto.PrUsrreqs.PruConnect(t, fp.Socket, pp.Socket)
	})
}

// Accept accepts a connection, returning a new fd.
func (t *Thread) Accept(fd int64) int64 {
	return t.syscall(SysAccept, func() int64 {
		fp := t.fd(fd)
		if fp == nil || fp.Socket == nil {
			return -EBADF
		}
		conn, err := t.soAccept(fp.Socket)
		if err != OK {
			return -err
		}
		nfp := &File{ID: t.k.id(), Ops: socketFileOps, Socket: conn, FCred: t.crhold(t.proc.Cred)}
		return t.newFd(nfp)
	})
}

// Send writes to a socket.
func (t *Thread) Send(fd, n int64) int64 {
	return t.syscall(SysSend, func() int64 {
		fp := t.fd(fd)
		if fp == nil || fp.Socket == nil {
			return -EBADF
		}
		return -fp.Ops.Write(t, fp, n)
	})
}

// Recv reads from a socket.
func (t *Thread) Recv(fd, n int64) int64 {
	return t.syscall(SysRecv, func() int64 {
		fp := t.fd(fd)
		if fp == nil || fp.Socket == nil {
			return -EBADF
		}
		return -fp.Ops.Read(t, fp, n)
	})
}

// Poll polls one fd via the poll(2) dynamic call graph.
func (t *Thread) Poll(fd int64) int64 {
	return t.syscall(SysPoll, func() int64 { return t.pollCommon(fd, FromPoll) })
}

// Select polls one fd via the select(2) call graph — where the wrong-
// credential bug hides.
func (t *Thread) Select(fd int64) int64 {
	return t.syscall(SysSelect, func() int64 { return t.pollCommon(fd, FromSelect) })
}

// Kevent registers fd with a kqueue-style filter — the call graph where
// the missing-check bug hides.
func (t *Thread) Kevent(fd int64) int64 {
	return t.syscall(SysKevent, func() int64 { return t.pollCommon(fd, FromKevent) })
}

func (t *Thread) pollCommon(fd int64, whence PollWhence) int64 {
	fp := t.fd(fd)
	if fp == nil {
		return -EBADF
	}
	return -t.foPoll(fp, t.proc.Cred, whence)
}

// SockStat queries socket state (MS:sostat).
func (t *Thread) SockStat(fd int64) int64 {
	return t.syscall(SysSockStat, func() int64 { return t.sockOp(fd, t.soStat) })
}

// SockRelabel changes a socket's MAC label (MS:sorelabel).
func (t *Thread) SockRelabel(fd, label int64) int64 {
	return t.syscall(SysSockRelabel, func() int64 {
		return t.sockOp(fd, func(so *Socket) int64 { return t.soRelabel(so, label) })
	})
}

// SockVisible asks whether the socket is visible to the caller.
func (t *Thread) SockVisible(fd int64) int64 {
	return t.syscall(SysSockStat, func() int64 { return t.sockOp(fd, t.soVisible) })
}

func (t *Thread) sockOp(fd int64, op func(*Socket) int64) int64 {
	fp := t.fd(fd)
	if fp == nil || fp.Socket == nil {
		return -EBADF
	}
	return -op(fp.Socket)
}

// Process system calls.

// Fork creates a child process; the lifecycle assertion requires its
// initialisation before the syscall completes.
func (t *Thread) Fork() (*Proc, int64) {
	var child *Proc
	ret := t.syscall(SysFork, func() int64 {
		t.site("P:fork", t.proc.ID)
		child = &Proc{ID: t.k.id(), Cred: t.crhold(t.proc.Cred), Parent: t.proc}
		t.enter("proc_init", child.ID)
		child.State = ProcRunning
		t.exit("proc_init", 0, child.ID)
		return int64(child.ID)
	})
	return child, ret
}

// ExitProc terminates a process: it must become a zombie and signal its
// parent before the syscall ends.
func (t *Thread) ExitProc(p *Proc) int64 {
	return t.syscall(SysExit, func() int64 {
		t.site("P:exit", p.ID)
		t.enter("proc_zombie", p.ID)
		p.State = ProcZombie
		t.exit("proc_zombie", 0, p.ID)
		t.enter("sigparent", p.ID)
		t.exit("sigparent", 0, p.ID)
		return 0
	})
}

// Wait reaps a zombie child.
func (t *Thread) Wait(child *Proc) int64 {
	return t.syscall(SysWait, func() int64 {
		if err := t.macProcCheckWait(t.proc.Cred, child); err != OK {
			return -err
		}
		t.site("MP:wait", t.proc.Cred.ID, child.ID)
		t.invariant(child.State == ProcZombie, "wait on non-zombie")
		t.site("P:wait", child.ID)
		t.enter("proc_reap", child.ID)
		child.State = ProcReaped
		t.exit("proc_reap", 0, child.ID)
		return 0
	})
}

// Kill delivers a signal after the inter-process checks.
func (t *Thread) Kill(target *Proc, sig int64) int64 {
	return t.syscall(SysKill, func() int64 {
		if err := t.pCansignal(t.proc.Cred, target); err != OK {
			return -err
		}
		if err := t.macProcCheckSignal(t.proc.Cred, target); err != OK {
			return -err
		}
		t.enter("psignal", target.ID, core.Value(sig))
		t.site("P:psignal", t.proc.Cred.ID, target.ID)
		t.site("MP:psignal", t.proc.Cred.ID, target.ID)
		t.exit("psignal", 0, target.ID, core.Value(sig))
		return 0
	})
}

// Ptrace attaches a debugger to the target.
func (t *Thread) Ptrace(target *Proc) int64 {
	return t.syscall(SysPtrace, func() int64 {
		if err := t.pCandebug(t.proc.Cred, target); err != OK {
			return -err
		}
		if err := t.macProcCheckDebug(t.proc.Cred, target); err != OK {
			return -err
		}
		// A P_SUGID process may not be traced: the invariant the
		// eventually(P_SUGID) assertion family protects.
		if target.Flag&P_SUGID != 0 && t.proc.Cred.UID != 0 {
			return -EPERM
		}
		t.site("P:ptrace", t.proc.Cred.ID, target.ID)
		t.site("MP:ptrace", t.proc.Cred.ID, target.ID)
		return 0
	})
}

// SetPriority reschedules the target.
func (t *Thread) SetPriority(target *Proc, prio int64) int64 {
	return t.syscall(SysSetPriority, func() int64 {
		if err := t.pCansee(t.proc.Cred, target); err != OK {
			return -err
		}
		if err := t.macProcCheckSched(t.proc.Cred, target); err != OK {
			return -err
		}
		t.site("P:setpriority", t.proc.Cred.ID, target.ID)
		t.site("MP:sched", t.proc.Cred.ID, target.ID)
		target.Prio = prio
		return 0
	})
}

// GetPriority reads the target's priority.
func (t *Thread) GetPriority(target *Proc) int64 {
	return t.syscall(SysGetPriority, func() int64 {
		if err := t.pCansee(t.proc.Cred, target); err != OK {
			return -err
		}
		t.site("P:getpriority", t.proc.Cred.ID, target.ID)
		return target.Prio
	})
}

// Setuid changes the process's user id: credential modification must set
// P_SUGID before the syscall completes (the eventually assertion; the
// MissingSUGID bug violates it).
func (t *Thread) Setuid(uid int64) int64 {
	return t.syscall(SysSetuid, func() int64 {
		if err := t.macCredCheckSetuid(t.proc.Cred, uid); err != OK {
			return -err
		}
		t.site("MP:setuid", t.proc.Cred.ID)
		t.site("P:setuid_sugid", t.proc.ID)
		newCred := &Ucred{ID: t.k.id(), UID: uid, GID: t.proc.Cred.GID, Label: t.proc.Cred.Label}
		t.setCred(t.proc, newCred)
		return 0
	})
}

// Setgid changes the process's group id.
func (t *Thread) Setgid(gid int64) int64 {
	return t.syscall(SysSetgid, func() int64 {
		if err := t.macCredCheckSetgid(t.proc.Cred, gid); err != OK {
			return -err
		}
		t.site("MP:setgid", t.proc.Cred.ID)
		t.site("P:setgid_sugid", t.proc.ID)
		newCred := &Ucred{ID: t.k.id(), UID: t.proc.Cred.UID, GID: gid, Label: t.proc.Cred.Label}
		t.setCred(t.proc, newCred)
		return 0
	})
}

// Inter-process visibility/authority helpers (instrumented, as the P
// assertions reference them).

func (t *Thread) pCansignal(cred *Ucred, p *Proc) int64 {
	t.enter("p_cansignal", cred.ID, p.ID)
	ret := int64(OK)
	if cred.UID != 0 && cred.UID != p.Cred.UID {
		ret = EPERM
	}
	t.exit("p_cansignal", core.Value(ret), cred.ID, p.ID)
	return ret
}

func (t *Thread) pCandebug(cred *Ucred, p *Proc) int64 {
	t.enter("p_candebug", cred.ID, p.ID)
	ret := int64(OK)
	if cred.UID != 0 && cred.UID != p.Cred.UID {
		ret = EPERM
	}
	t.exit("p_candebug", core.Value(ret), cred.ID, p.ID)
	return ret
}

func (t *Thread) pCansee(cred *Ucred, p *Proc) int64 {
	t.enter("p_cansee", cred.ID, p.ID)
	ret := int64(OK)
	t.exit("p_cansee", core.Value(ret), cred.ID, p.ID)
	return ret
}

// Unexercised facilities: the assertion sites below exist — and their
// assertions are registered — but FreeBSD's inter-process access-control
// test suite (and our benchmark workloads) never reaches them, reproducing
// the §3.5.2 coverage finding (26 of 37 assertions unexercised: 19 in the
// deprecated procfs, 2 in CPUSET, 5 in POSIX real-time scheduling).

// ProcfsOps is the number of distinct procfs entry points.
const ProcfsOps = 19

// Procfs invokes the op'th procfs entry point (0 ≤ op < ProcfsOps).
func (t *Thread) Procfs(op int, target *Proc) int64 {
	return t.syscall(SysProcfs, func() int64 {
		if op < 0 || op >= ProcfsOps {
			return -EINVAL
		}
		name := fmt.Sprintf("pfs_op%d", op)
		t.enter(name, target.ID)
		if err := t.pCansee(t.proc.Cred, target); err != OK {
			t.exit(name, core.Value(err), target.ID)
			return -err
		}
		t.site(fmt.Sprintf("P:procfs%d", op), t.proc.Cred.ID, target.ID)
		t.exit(name, 0, target.ID)
		return 0
	})
}

// CpusetGet reads CPU affinity (CPUSET facility, added after the test
// suite was written).
func (t *Thread) CpusetGet(target *Proc) int64 {
	return t.syscall(SysCpusetGet, func() int64 {
		t.enter("cpuset_check", target.ID)
		t.exit("cpuset_check", 0, target.ID)
		t.site("P:cpuset_get", target.ID)
		return 0
	})
}

// CpusetSet writes CPU affinity.
func (t *Thread) CpusetSet(target *Proc) int64 {
	return t.syscall(SysCpusetSet, func() int64 {
		t.enter("cpuset_check", target.ID)
		t.exit("cpuset_check", 0, target.ID)
		t.site("P:cpuset_set", target.ID)
		return 0
	})
}

// RtprioOps is the number of POSIX real-time scheduling entry points.
const RtprioOps = 5

// Rtprio invokes the op'th POSIX real-time scheduling entry point.
func (t *Thread) Rtprio(op int, target *Proc) int64 {
	return t.syscall(SysRtprio, func() int64 {
		if op < 0 || op >= RtprioOps {
			return -EINVAL
		}
		name := fmt.Sprintf("rtp_op%d", op)
		t.enter(name, target.ID)
		t.exit(name, 0, target.ID)
		t.site(fmt.Sprintf("P:rtprio%d", op), target.ID)
		return 0
	})
}

// Audit and kernel-environment system calls (the remaining MP/misc hooks).

// GetAudit reads the target's audit state.
func (t *Thread) GetAudit(target *Proc) int64 {
	return t.syscall(SysGetPriority, func() int64 {
		if err := t.macProcCheckGetaudit(t.proc.Cred, target); err != OK {
			return -err
		}
		t.site("MP:getaudit", t.proc.Cred.ID, target.ID)
		return 0
	})
}

// SetAudit writes the target's audit state.
func (t *Thread) SetAudit(target *Proc) int64 {
	return t.syscall(SysSetPriority, func() int64 {
		if err := t.macProcCheckSetaudit(t.proc.Cred, target); err != OK {
			return -err
		}
		t.site("MP:setaudit", t.proc.Cred.ID, target.ID)
		return 0
	})
}

// SeeCred asks whether another credential is visible to the caller.
func (t *Thread) SeeCred(other *Ucred) int64 {
	return t.syscall(SysStat, func() int64 {
		if err := t.macCredCheckVisible(t.proc.Cred, other); err != OK {
			return -err
		}
		t.site("MP:cred_visible", t.proc.Cred.ID, other.ID)
		return 0
	})
}

// KenvGet reads a kernel environment variable.
func (t *Thread) KenvGet(name int64) int64 {
	return t.syscall(SysStat, func() int64 {
		if err := t.macKenvCheckGet(t.proc.Cred, core.Value(name)); err != OK {
			return -err
		}
		t.site("MP:kenv_get", t.proc.Cred.ID, core.Value(name))
		return 0
	})
}

// KenvSet writes a kernel environment variable.
func (t *Thread) KenvSet(name int64) int64 {
	return t.syscall(SysStat, func() int64 {
		if err := t.macKenvCheckSet(t.proc.Cred, core.Value(name)); err != OK {
			return -err
		}
		t.site("M:kenv_set", t.proc.Cred.ID, core.Value(name))
		return 0
	})
}
