package manifest

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tesla/internal/spec"
)

func sample() *File {
	return FromAssertions("mac.c", []*spec.Assertion{
		spec.SyscallPreviously("mac.c:10",
			spec.Call("mac_socket_check_poll", spec.AnyPtr(), spec.Var("so")).ReturnsInt(0)),
		spec.Within("mac.c:20", "trap_pfault",
			spec.Eventually(spec.Call("audit", spec.Var("vp")))),
	})
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sample()
	var sb strings.Builder
	if err := m.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("round trip changed manifest:\n%+v\n%+v", m, m2)
	}
}

func TestParseRecoversAssertions(t *testing.T) {
	m := sample()
	as, err := m.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("assertions = %d", len(as))
	}
	if as[0].Name != "mac.c:10" || as[0].Bound.Begin.Fn != spec.SyscallFn {
		t.Fatalf("assertion 0 = %+v", as[0])
	}
	if as[1].Bound.Begin.Fn != "trap_pfault" {
		t.Fatalf("assertion 1 = %+v", as[1])
	}
}

func TestCompile(t *testing.T) {
	autos, err := sample().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(autos) != 2 {
		t.Fatalf("automata = %d", len(autos))
	}
	if autos[0].Name != "mac.c:10" {
		t.Fatalf("name = %q", autos[0].Name)
	}
}

func TestCombine(t *testing.T) {
	a := FromAssertions("a.c", []*spec.Assertion{
		spec.SyscallPreviously("a.c:1", spec.Call("f").ReturnsInt(0)),
	})
	b := FromAssertions("b.c", []*spec.Assertion{
		spec.SyscallPreviously("b.c:1", spec.Call("g").ReturnsInt(0)),
	})
	c, err := Combine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Assertions) != 2 {
		t.Fatalf("combined = %d", len(c.Assertions))
	}
	if _, err := Combine(a, a); err == nil {
		t.Fatal("duplicate names must fail")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog"+Ext)
	m := sample()
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatal("save/load changed manifest")
	}
	if _, err := Load(filepath.Join(dir, "missing.tesla")); err == nil {
		t.Fatal("missing file must fail")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad JSON must fail")
	}
	bad := &File{Assertions: []Entry{{Name: "x", Text: "NOT_A_MACRO(y)"}}}
	if _, err := bad.Parse(); err == nil {
		t.Fatal("unparsable entry must fail")
	}
	if _, err := bad.Compile(); err == nil {
		t.Fatal("compile of unparsable entry must fail")
	}
}
