package core

// UpdateState drives one program event through an automaton class,
// implementing the instance lifecycle of §4.4.1:
//
//   - «init»: an event whose transition set carries TransInit creates a new
//     instance when no existing instance consumed the event.
//   - clone: an event that specialises a live instance's key (binds new
//     variables) forks a copy; the more general parent instance remains so
//     that other bindings can fork later.
//   - update: an event matching an instance's key and state moves it along.
//   - error: a required event (SymRequired, e.g. reaching the assertion
//     site) that no instance can accept is a violation, as is a strict
//     automaton instance observing an event its state cannot accept.
//   - «cleanup»: an event whose set carries TransCleanup finalises the
//     class; instances that cannot take a cleanup transition have unmet
//     obligations (eventually-style violations) and all instances are
//     expunged afterwards.
//
// symbol names the driving event for notification purposes. key carries the
// variable bindings the event provides. ts is the set of class transitions
// this event can drive, assembled statically by the event translator.
//
// The returned error is non-nil only when the store is in FailFast mode and
// a violation or overflow occurred; the store's Handler is notified of every
// outcome regardless.
func (s *Store) UpdateState(cls *Class, symbol string, flags SymbolFlags, key Key, ts TransitionSet) error {
	if s.nshards > 0 {
		sc := s.shardedClassOf(cls)
		if sc == nil {
			// Implicit registration keeps one-off uses simple; hot
			// paths should Register up front so this branch never
			// runs.
			s.Register(cls)
			sc = s.shardedClassOf(cls)
		}
		return s.updateSharded(sc, symbol, flags, key, ts)
	}

	handler := s.Handler()
	s.lock()
	defer s.unlock()

	cs := s.classes[cls]
	if cs == nil {
		s.unlock()
		s.Register(cls)
		s.lock()
		cs = s.classes[cls]
	}

	var firstErr error
	fail := func(v *Violation) {
		handler.Fail(v)
		if firstErr == nil {
			firstErr = v
		}
	}

	cleanup := ts.HasCleanup()

	// Snapshot the instances that were live before this event so that
	// clones created below are not themselves driven by the same event.
	var liveIdx [DefaultInstanceLimit]int
	live := liveIdx[:0]
	for i := range cs.insts {
		if cs.insts[i].Active {
			live = append(live, i)
		}
	}

	matched := false
	for _, i := range live {
		inst := &cs.insts[i]
		if !inst.Key.Compatible(key) {
			continue
		}

		var tr *Transition
		for j := range ts {
			if ts[j].From == inst.State {
				tr = &ts[j]
				break
			}
		}

		if tr == nil {
			switch {
			case cleanup:
				// The bound is ending but this instance is stuck
				// in a non-accepting state: an `eventually`
				// obligation was never satisfied.
				fail(&Violation{Class: cls, Kind: VerdictIncomplete, Key: inst.Key, State: inst.State, Symbol: symbol})
			case flags&SymStrict != 0:
				fail(&Violation{Class: cls, Kind: VerdictBadTransition, Key: inst.Key, State: inst.State, Symbol: symbol})
				inst.Active = false
				cs.live--
			}
			continue
		}

		if inst.Key.Specializes(key) {
			// The event binds variables this instance has not seen:
			// clone a more specific instance and leave the parent.
			newKey := inst.Key.Union(key)
			if cs.findExact(newKey) != nil {
				// The specific instance already exists and is
				// processed (or was) on its own terms.
				matched = true
				continue
			}
			clone := cs.alloc()
			if clone == nil {
				handler.Overflow(cls, newKey)
				if s.FailFast && firstErr == nil {
					firstErr = ErrOverflow
				}
				continue
			}
			*clone = Instance{State: tr.To, Key: newKey, Active: true}
			cs.commit()
			handler.InstanceClone(cls, inst, clone)
			handler.Transition(cls, clone, tr.From, tr.To, symbol)
			matched = true
			if tr.Cleanup() {
				handler.Accept(cls, clone)
			}
			continue
		}

		from := inst.State
		inst.State = tr.To
		handler.Transition(cls, inst, from, tr.To, symbol)
		matched = true
		if tr.Cleanup() {
			handler.Accept(cls, inst)
		}
	}

	if !matched {
		if init := initTransition(ts); init != nil {
			initKey := key.project(init.KeyMask)
			if cs.findExact(initKey) == nil {
				inst := cs.alloc()
				if inst == nil {
					handler.Overflow(cls, initKey)
					if s.FailFast && firstErr == nil {
						firstErr = ErrOverflow
					}
				} else {
					*inst = Instance{State: init.To, Key: initKey, Active: true}
					cs.commit()
					handler.InstanceNew(cls, inst)
					handler.Transition(cls, inst, init.From, init.To, symbol)
					matched = true
					if init.Cleanup() {
						handler.Accept(cls, inst)
					}
				}
			}
		} else if flags&SymRequired != 0 && cs.live > 0 {
			// Execution reached the assertion site with bindings for
			// which no instance exists: the events the assertion
			// requires never happened (fig. 9 “Error”). With no live
			// instances at all the automaton was never initialised —
			// the event arrived outside the assertion's bound — and
			// libtesla ignores events until the next «init».
			fail(&Violation{Class: cls, Kind: VerdictNoInstance, Key: key, Symbol: symbol})
		}
	}

	if cleanup {
		// A cleanup transition resets the class: all instances are
		// expunged and events are ignored until the next «init».
		cs.expunge()
	}

	if s.FailFast {
		return firstErr
	}
	return nil
}

// initTransition returns the first init transition in ts, or nil.
func initTransition(ts TransitionSet) *Transition {
	for i := range ts {
		if ts[i].Init() {
			return &ts[i]
		}
	}
	return nil
}

// project restricts a key to the slots in mask.
func (k Key) project(mask uint32) Key {
	var out Key
	out.Mask = k.Mask & mask
	for i := 0; i < KeySize; i++ {
		if out.Mask&(1<<uint(i)) != 0 {
			out.Data[i] = k.Data[i]
		}
	}
	return out
}
