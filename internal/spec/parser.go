package spec

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Env supplies the symbol context the analyser has when parsing assertions
// out of source code: named C constants (for flags(IO_NOMACCHECK) and
// enum-like arguments) and the struct types of in-scope variables (for field
// assignment events).
type Env struct {
	// Consts maps C constant names to values. A bare identifier argument
	// found here is a PatConst; otherwise it is a PatVar bound from the
	// assertion's scope.
	Consts map[string]int64
	// VarStructs maps scope variable names to their struct type names,
	// used to resolve `s.field = v` events.
	VarStructs map[string]string
	// Syscall overrides the function bounding TESLA_SYSCALL* macros
	// (defaults to SyscallFn).
	Syscall string
}

func (e *Env) constVal(name string) (int64, bool) {
	if e == nil || e.Consts == nil {
		return 0, false
	}
	v, ok := e.Consts[name]
	return v, ok
}

func (e *Env) structOf(varName string) string {
	if e == nil || e.VarStructs == nil {
		return ""
	}
	return e.VarStructs[varName]
}

func (e *Env) syscall() string {
	if e != nil && e.Syscall != "" {
		return e.Syscall
	}
	return SyscallFn
}

// Parse parses a complete TESLA assertion macro, e.g.
//
//	TESLA_WITHIN(enclosing_fn, previously(security_check(ANY(ptr), o, op) == 0))
//
// name becomes the assertion's identifier (conventionally file:line).
func Parse(name, src string, env *Env) (*Assertion, error) {
	p := &parser{lex: newLexer(src), env: env}
	a, err := p.parseAssertion(name)
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", name, err)
	}
	if !p.lex.atEOF() {
		return nil, fmt.Errorf("spec: %s: trailing input %q", name, p.lex.rest())
	}
	return a, nil
}

// ParseExpr parses a bare TESLA expression (the body of an assertion macro).
func ParseExpr(src string, env *Env) (Expr, error) {
	p := &parser{lex: newLexer(src), env: env}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.lex.atEOF() {
		return nil, fmt.Errorf("spec: trailing input %q", p.lex.rest())
	}
	return e, nil
}

// lexer

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single or multi char punctuation, Text holds it
)

type token struct {
	Kind tokKind
	Text string
	Num  int64
	Pos  int
}

type lexer struct {
	src  string
	pos  int
	tok  token
	peek *token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.next()
	return l
}

func (l *lexer) atEOF() bool { return l.tok.Kind == tokEOF }

func (l *lexer) rest() string {
	if l.tok.Kind == tokEOF {
		return ""
	}
	return l.src[l.tok.Pos:]
}

func (l *lexer) next() {
	if l.peek != nil {
		l.tok = *l.peek
		l.peek = nil
		return
	}
	l.tok = l.scan()
}

func (l *lexer) peekTok() token {
	if l.peek == nil {
		t := l.scan()
		l.peek = &t
	}
	return *l.peek
}

var multiPunct = []string{"::", "==", "+=", "++", "||"}

func (l *lexer) scan() token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// C comments inside macro bodies are skipped.
		if strings.HasPrefix(l.src[l.pos:], "//") {
			i := strings.IndexByte(l.src[l.pos:], '\n')
			if i < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += i + 1
			}
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], "/*") {
			i := strings.Index(l.src[l.pos+2:], "*/")
			if i < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += i + 4
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{Kind: tokEOF, Pos: l.pos}
	}
	start := l.pos
	c := rune(l.src[l.pos])
	switch {
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		return token{Kind: tokIdent, Text: l.src[start:l.pos], Pos: start}
	case unicode.IsDigit(c):
		for l.pos < len(l.src) && isNumChar(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		n, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{Kind: tokPunct, Text: text, Pos: start}
		}
		return token{Kind: tokNumber, Num: n, Text: text, Pos: start}
	default:
		for _, mp := range multiPunct {
			if strings.HasPrefix(l.src[l.pos:], mp) {
				l.pos += len(mp)
				return token{Kind: tokPunct, Text: mp, Pos: start}
			}
		}
		l.pos++
		return token{Kind: tokPunct, Text: string(c), Pos: start}
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' || c == 'x' || c == 'X'
}

// parser

type parser struct {
	lex *lexer
	env *Env
	// strict records a top-level strict(...) modifier.
	strict bool
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf(format+" (at offset %d)", append(args, p.lex.tok.Pos)...)
}

func (p *parser) expectPunct(s string) error {
	if p.lex.tok.Kind != tokPunct || p.lex.tok.Text != s {
		return p.errf("expected %q, found %q", s, p.lex.tok.Text)
	}
	p.lex.next()
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.lex.tok.Kind == tokPunct && p.lex.tok.Text == s {
		p.lex.next()
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	if p.lex.tok.Kind != tokIdent {
		return "", p.errf("expected identifier, found %q", p.lex.tok.Text)
	}
	s := p.lex.tok.Text
	p.lex.next()
	return s, nil
}

func (p *parser) parseAssertion(name string) (*Assertion, error) {
	macro, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var a *Assertion
	switch macro {
	case "TESLA_WITHIN":
		fn, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		a = Within(name, fn, expr)
	case "TESLA_SYSCALL_PREVIOUSLY":
		exprs, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		a = Within(name, p.env.syscall(), Previously(exprs...))
	case "TESLA_SYSCALL_EVENTUALLY":
		exprs, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		a = Within(name, p.env.syscall(), Eventually(exprs...))
	case "TESLA_SYSCALL":
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		a = Within(name, p.env.syscall(), expr)
	case "TESLA_GLOBAL", "TESLA_PERTHREAD":
		bound, expr, err := p.parseBoundAndExpr()
		if err != nil {
			return nil, err
		}
		ctx := PerThread
		if macro == "TESLA_GLOBAL" {
			ctx = Global
		}
		a = Assert(name, ctx, bound, expr)
	case "TESLA_ASSERT":
		ctxName, err := p.ident()
		if err != nil {
			return nil, err
		}
		var ctx Context
		switch ctxName {
		case "global":
			ctx = Global
		case "perthread", "per_thread":
			ctx = PerThread
		default:
			return nil, p.errf("unknown context %q", ctxName)
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		bound, expr, err := p.parseBoundAndExpr()
		if err != nil {
			return nil, err
		}
		a = Assert(name, ctx, bound, expr)
	default:
		return nil, p.errf("unknown TESLA macro %q", macro)
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	a.Strict = p.strict
	return a, nil
}

// parseBoundAndExpr parses `start, end, expr`.
func (p *parser) parseBoundAndExpr() (Bound, Expr, error) {
	begin, err := p.parseStaticEvent()
	if err != nil {
		return Bound{}, nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return Bound{}, nil, err
	}
	end, err := p.parseStaticEvent()
	if err != nil {
		return Bound{}, nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return Bound{}, nil, err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return Bound{}, nil, err
	}
	return Bound{Begin: begin, End: end}, expr, nil
}

func (p *parser) parseStaticEvent() (StaticEvent, error) {
	kw, err := p.ident()
	if err != nil {
		return StaticEvent{}, err
	}
	var kind StaticKind
	switch kw {
	case "call":
		kind = StaticCall
	case "returnfrom":
		kind = StaticReturn
	default:
		return StaticEvent{}, p.errf("expected call/returnfrom, found %q", kw)
	}
	if err := p.expectPunct("("); err != nil {
		return StaticEvent{}, err
	}
	fn, err := p.ident()
	if err != nil {
		return StaticEvent{}, err
	}
	if err := p.expectPunct(")"); err != nil {
		return StaticEvent{}, err
	}
	return StaticEvent{Kind: kind, Fn: fn}, nil
}

func (p *parser) parseExprList() ([]Expr, error) {
	var out []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.acceptPunct(",") {
			return out, nil
		}
	}
}

// parseExpr parses a boolean combination of unary expressions.
func (p *parser) parseExpr() (Expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	var op BoolOp
	var exprs []Expr
	for {
		switch {
		case p.acceptPunct("||"):
			if len(exprs) > 0 && op != OrOp {
				return nil, p.errf("mixed || and ^ require parentheses")
			}
			op = OrOp
		case p.acceptPunct("^"):
			if len(exprs) > 0 && op != XorOp {
				return nil, p.errf("mixed || and ^ require parentheses")
			}
			op = XorOp
		default:
			if len(exprs) == 0 {
				return first, nil
			}
			return &BoolExpr{Op: op, Exprs: exprs}, nil
		}
		if len(exprs) == 0 {
			exprs = append(exprs, first)
		}
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, next)
	}
}

func (p *parser) parseUnary() (Expr, error) {
	tok := p.lex.tok
	if tok.Kind == tokPunct {
		switch tok.Text {
		case "(":
			p.lex.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		case "[":
			return p.parseObjCMsg()
		}
		return nil, p.errf("unexpected %q", tok.Text)
	}
	if tok.Kind != tokIdent {
		return nil, p.errf("unexpected token %q", tok.Text)
	}

	switch tok.Text {
	case "TSEQUENCE":
		p.lex.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		exprs, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		return &Sequence{Exprs: exprs}, p.expectPunct(")")
	case "previously", "eventually":
		kw := tok.Text
		p.lex.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		exprs, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if kw == "previously" {
			return Previously(exprs...), nil
		}
		return Eventually(exprs...), nil
	case "optional":
		p.lex.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Optional{Expr: e}, p.expectPunct(")")
	case "strict", "conditional":
		kw := tok.Text
		p.lex.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if kw == "strict" {
			p.strict = true
		}
		return e, p.expectPunct(")")
	case "caller", "callee":
		kw := tok.Text
		p.lex.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		side := SideCallee
		if kw == "caller" {
			side = SideCaller
		}
		setSide(e, side)
		return e, p.expectPunct(")")
	case "ATLEAST":
		p.lex.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.lex.tok.Kind != tokNumber {
			return nil, p.errf("ATLEAST needs a count, found %q", p.lex.tok.Text)
		}
		min := int(p.lex.tok.Num)
		p.lex.next()
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		exprs, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		return &ATLeast{Min: min, Exprs: exprs}, p.expectPunct(")")
	case "incallstack":
		p.lex.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		fn, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &InCallStack{Fn: fn}, p.expectPunct(")")
	case "TESLA_ASSERTION_SITE":
		p.lex.next()
		return &AssertionSite{}, nil
	case "call", "called", "returnfrom":
		kw := tok.Text
		p.lex.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		fe, err := p.parseFnExpr()
		if err != nil {
			return nil, err
		}
		if kw == "returnfrom" {
			fe.Kind = FuncExit
		}
		return fe, p.expectPunct(")")
	}

	// Bare identifier: fn(args) [== val], var.field assignment, or a
	// struct-qualified field assignment (struct::var.field, the manifest
	// round-trip form).
	name := tok.Text
	p.lex.next()
	if p.acceptPunct("::") {
		varName, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("."); err != nil {
			return nil, err
		}
		return p.parseFieldAssign(varName, name)
	}
	if p.acceptPunct(".") {
		return p.parseFieldAssign(name, p.env.structOf(name))
	}
	if p.lex.tok.Kind == tokPunct && p.lex.tok.Text == "(" {
		fe, err := p.parseFnCallTail(name)
		if err != nil {
			return nil, err
		}
		if p.acceptPunct("==") {
			ret, err := p.parseVal()
			if err != nil {
				return nil, err
			}
			fe.Kind = FuncExit
			fe.Ret = &ret
		}
		return fe, nil
	}
	return nil, p.errf("expected event after %q", name)
}

// parseFnExpr parses `fn(args…)` inside call()/returnfrom().
func (p *parser) parseFnExpr() (*FunctionEvent, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.lex.tok.Kind == tokPunct && p.lex.tok.Text == "(" {
		return p.parseFnCallTail(name)
	}
	// Bare name: any arguments.
	return &FunctionEvent{Fn: name, Kind: FuncEntry}, nil
}

func (p *parser) parseFnCallTail(name string) (*FunctionEvent, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fe := &FunctionEvent{Fn: name, Kind: FuncEntry}
	if p.acceptPunct(")") {
		return fe, nil
	}
	for {
		arg, err := p.parseVal()
		if err != nil {
			return nil, err
		}
		fe.Args = append(fe.Args, arg)
		if p.acceptPunct(")") {
			return fe, nil
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseFieldAssign(varName, structName string) (Expr, error) {
	field, err := p.ident()
	if err != nil {
		return nil, err
	}
	ev := &FieldAssignEvent{
		Struct: structName,
		Field:  field,
		Target: Var(varName),
		Value:  Any(""),
	}
	switch {
	case p.acceptPunct("++"):
		ev.Op = OpIncr
		return ev, nil
	case p.acceptPunct("+="):
		ev.Op = OpAddAssign
	case p.acceptPunct("="):
		ev.Op = OpAssign
	default:
		return nil, p.errf("expected =, += or ++ after %s.%s", varName, field)
	}
	val, err := p.parseVal()
	if err != nil {
		return nil, err
	}
	ev.Value = val
	return ev, nil
}

func (p *parser) parseObjCMsg() (Expr, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	recv, err := p.parseVal()
	if err != nil {
		return nil, err
	}
	var selParts []string
	args := []ArgPattern{recv}
	for {
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.acceptPunct(":") {
			selParts = append(selParts, part+":")
			arg, err := p.parseVal()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			if p.acceptPunct("]") {
				break
			}
			continue
		}
		// Unary selector.
		selParts = append(selParts, part)
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		break
	}
	return &FunctionEvent{Fn: strings.Join(selParts, ""), Kind: FuncEntry, Args: args, ObjC: true}, nil
}

// parseVal parses an argument pattern (grammar rule val).
func (p *parser) parseVal() (ArgPattern, error) {
	if p.acceptPunct("&") {
		inner, err := p.parseVal()
		if err != nil {
			return ArgPattern{}, err
		}
		inner.Indirect = true
		return inner, nil
	}
	if p.acceptPunct("-") {
		if p.lex.tok.Kind != tokNumber {
			return ArgPattern{}, p.errf("expected number after -")
		}
		v := -p.lex.tok.Num
		p.lex.next()
		return Int(v), nil
	}
	tok := p.lex.tok
	switch tok.Kind {
	case tokNumber:
		p.lex.next()
		return Int(tok.Num), nil
	case tokIdent:
		name := tok.Text
		p.lex.next()
		switch name {
		case "ANY", "any":
			if err := p.expectPunct("("); err != nil {
				return ArgPattern{}, err
			}
			t, err := p.ident()
			if err != nil {
				return ArgPattern{}, err
			}
			return Any(t), p.expectPunct(")")
		case "flags", "bitmask":
			if err := p.expectPunct("("); err != nil {
				return ArgPattern{}, err
			}
			v, err := p.parseFlagsValue()
			if err != nil {
				return ArgPattern{}, err
			}
			if err := p.expectPunct(")"); err != nil {
				return ArgPattern{}, err
			}
			if name == "flags" {
				return Flags(v), nil
			}
			return Bitmask(v), nil
		}
		if v, ok := p.env.constVal(name); ok {
			return Int(v), nil
		}
		return Var(name), nil
	default:
		return ArgPattern{}, p.errf("expected value, found %q", tok.Text)
	}
}

// parseFlagsValue parses `F1 | F2 | 0x4` — a C flags expression.
func (p *parser) parseFlagsValue() (int64, error) {
	var v int64
	for {
		tok := p.lex.tok
		switch tok.Kind {
		case tokNumber:
			v |= tok.Num
			p.lex.next()
		case tokIdent:
			c, ok := p.env.constVal(tok.Text)
			if !ok {
				return 0, p.errf("unknown flag constant %q", tok.Text)
			}
			v |= c
			p.lex.next()
		default:
			return 0, p.errf("expected flag, found %q", tok.Text)
		}
		if !p.acceptPunct("|") {
			return v, nil
		}
	}
}

// setSide applies a caller/callee modifier to every function event in e.
func setSide(e Expr, side InstrSide) {
	Walk(e, func(e Expr) {
		if fe, ok := e.(*FunctionEvent); ok {
			fe.Side = side
		}
	})
}
