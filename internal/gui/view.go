package gui

import (
	"tesla/internal/core"
	"tesla/internal/objc"
)

// View and cell classes. Views delegate drawing to cells — simple classes
// that draw data in a particular way, provided by another object — which
// is why the library's dynamic behaviour is so hard to discover statically
// (§3.5.3) and why the AppKit profiling found redundant gsave/grestore
// pairs around cells that always set their own colour and location.

// PadOps is the number of synthetic attribute selectors each cell touches
// while drawing, standing in for the ~110 AppKit methods the TESLAGOps.h
// header lists for instrumentation.
const PadOps = 96

// PadSelectors returns the synthetic attribute selector names.
func PadSelectors() []string {
	out := make([]string, PadOps)
	for i := range out {
		out[i] = padSel(i)
	}
	return out
}

func padSel(i int) string {
	return "setAttr" + string(rune('A'+i/10)) + string(rune('0'+i%10)) + ":"
}

// CoreSelectors are the real drawing/cursor selectors TESLA instruments.
var CoreSelectors = []string{
	"push", "pop", "drawWithFrame:inView:", "drawRect:", "display",
	"gsave", "grestore", "grestoreToken:", "setColor:", "translate::",
	"lockFocus", "unlockFocus", "setNeedsDisplay:", "mouseEntered:",
}

// AllSelectors is the complete instrumented selector list (fig. 8's
// TESLAGOps.h contents: roughly 110 methods).
func AllSelectors() []string {
	return append(append([]string{}, CoreSelectors...), PadSelectors()...)
}

// Window owns the view tree, the back end and the cursor machinery.
type Window struct {
	RT      *objc.Runtime
	Backend Backend

	viewClass   *objc.Class
	cellClass   *objc.Class
	cursorClass *objc.Class
	beObj       *objc.Object
	cursorObj   *objc.Object

	Views []*View

	// CursorStack is the shared cursor stack of §3.5.3.
	CursorStack []int64
	// Tracking rectangles generate mouse-entered/exited events.
	Tracking []*TrackingRect
	// DeliveryBug enables the event-ordering bug: events invalidating
	// cursor tracking rectangles are delivered after events that inspect
	// them, so rapid moves push the same cursor multiple times.
	DeliveryBug bool

	// Redraws counts full-window redraws.
	Redraws int

	// lastX/lastY track the pointer for tracking-rect recomputation.
	lastX, lastY int64
}

// View is a rectangle of screen delegating most drawing to cells.
type View struct {
	Obj    *objc.Object
	Frame  Rect
	Color  int64
	Cells  []*Cell
	Nested bool // draws a nested save and restores non-LIFO (old-backend idiom)
}

// Cell draws data in a particular way inside a view.
type Cell struct {
	Obj   *objc.Object
	Frame Rect
	Color int64
}

// TrackingRect generates enter/exit events that push and pop cursors.
type TrackingRect struct {
	Rect   Rect
	Cursor int64
	Inside bool
}

// NewWindow builds a window over the given runtime and back end.
func NewWindow(rt *objc.Runtime, be Backend) *Window {
	w := &Window{RT: rt, Backend: be}

	w.viewClass = objc.NewClass("NSView", nil)
	w.cellClass = objc.NewClass("NSCell", nil)
	w.cursorClass = objc.NewClass("NSCursor", nil)
	beClass := objc.NewClass("GSBackend", nil)

	// Back-end selectors forward to the Backend implementation so every
	// graphics-state operation is an observable message send.
	beClass.AddMethod("gsave", func(_ *objc.Runtime, _ *objc.Object, _ ...core.Value) core.Value {
		return w.Backend.Save()
	})
	beClass.AddMethod("grestore", func(_ *objc.Runtime, _ *objc.Object, _ ...core.Value) core.Value {
		w.Backend.Restore()
		return 0
	})
	beClass.AddMethod("grestoreToken:", func(_ *objc.Runtime, _ *objc.Object, args ...core.Value) core.Value {
		w.Backend.RestoreToken(args[0])
		return 0
	})
	beClass.AddMethod("setColor:", func(_ *objc.Runtime, _ *objc.Object, args ...core.Value) core.Value {
		w.Backend.SetColor(int64(args[0]))
		return 0
	})
	beClass.AddMethod("translate::", func(_ *objc.Runtime, _ *objc.Object, args ...core.Value) core.Value {
		w.Backend.Translate(int64(args[0]), int64(args[1]))
		return 0
	})
	beClass.AddMethod("drawRect:", func(_ *objc.Runtime, _ *objc.Object, args ...core.Value) core.Value {
		w.Backend.DrawRect(Rect{int64(args[0]), int64(args[1]), int64(args[2]), int64(args[3])})
		return 0
	})
	for i := 0; i < PadOps; i++ {
		beClass.AddMethod(padSel(i), func(_ *objc.Runtime, _ *objc.Object, _ ...core.Value) core.Value {
			return 0
		})
	}
	w.beObj = rt.NewObject(beClass)

	// Cursor push/pop are message sends on NSCursor (fig. 8's [ANY(id)
	// push] / [ANY(id) pop] events).
	w.cursorClass.AddMethod("push", func(_ *objc.Runtime, _ *objc.Object, args ...core.Value) core.Value {
		w.CursorStack = append(w.CursorStack, int64(args[0]))
		return 0
	})
	w.cursorClass.AddMethod("pop", func(_ *objc.Runtime, _ *objc.Object, _ ...core.Value) core.Value {
		if n := len(w.CursorStack); n > 0 {
			w.CursorStack = w.CursorStack[:n-1]
		}
		return 0
	})
	w.cursorObj = rt.NewObject(w.cursorClass)

	// Cell drawing: explicitly sets colour and location, then draws —
	// which is why the enclosing save/restore is often redundant (§3.5.3
	// optimisation finding).
	w.cellClass.AddMethod("drawWithFrame:inView:", func(rt *objc.Runtime, self *objc.Object, args ...core.Value) core.Value {
		color := int64(args[0])
		rt.MsgSend(w.beObj, "setColor:", core.Value(color))
		rt.MsgSend(w.beObj, "drawRect:", args[1], args[2], args[3], args[4])
		// Touch a handful of the padding attribute selectors.
		for i := 0; i < 6; i++ {
			rt.MsgSend(w.beObj, padSel((int(args[1])+i)%PadOps))
		}
		return 0
	})

	// View display: save state, translate, draw own background, let each
	// cell draw, restore. A Nested view restores directly to its saved
	// token (non-LIFO) after its cells have saved further states — valid
	// against the old back end, wrong output on the new one.
	w.viewClass.AddMethod("display", func(rt *objc.Runtime, self *objc.Object, args ...core.Value) core.Value {
		v := w.viewByObj(self)
		tok := rt.MsgSend(w.beObj, "gsave")
		rt.MsgSend(w.beObj, "translate::", core.Value(v.Frame.X), core.Value(v.Frame.Y))
		rt.MsgSend(w.beObj, "setColor:", core.Value(v.Color))
		rt.MsgSend(w.beObj, "drawRect:", 0, 0, core.Value(v.Frame.W), core.Value(v.Frame.H))
		for _, c := range v.Cells {
			if v.Nested {
				// Nested views leave per-cell saves open and jump
				// back with one non-LIFO token restore below.
				rt.MsgSend(w.beObj, "gsave")
			} else {
				// The AppKit-typical pattern the §3.5.3 profiling
				// calls out: each cell draw is wrapped in its own
				// save/restore, even though the cell explicitly
				// sets every attribute it uses.
				rt.MsgSend(w.beObj, "gsave")
			}
			rt.MsgSend(c.Obj, "drawWithFrame:inView:",
				core.Value(c.Color), core.Value(c.Frame.X), core.Value(c.Frame.Y),
				core.Value(c.Frame.W), core.Value(c.Frame.H))
			if !v.Nested {
				rt.MsgSend(w.beObj, "grestore")
			}
		}
		if v.Nested {
			// Restore straight to the view's own save point,
			// skipping the per-cell saves: non-LIFO.
			rt.MsgSend(w.beObj, "grestoreToken:", tok)
		} else {
			rt.MsgSend(w.beObj, "grestore")
		}
		return 0
	})

	return w
}

func (w *Window) viewByObj(o *objc.Object) *View {
	for _, v := range w.Views {
		if v.Obj == o {
			return v
		}
	}
	return nil
}

// AddView creates a view with n cells.
func (w *Window) AddView(frame Rect, color int64, ncells int, nested bool) *View {
	v := &View{Obj: w.RT.NewObject(w.viewClass), Frame: frame, Color: color, Nested: nested}
	for i := 0; i < ncells; i++ {
		c := &Cell{
			Obj:   w.RT.NewObject(w.cellClass),
			Frame: Rect{int64(i) * 10, 0, 10, 10},
			Color: color + int64(i) + 1,
		}
		v.Cells = append(v.Cells, c)
	}
	w.Views = append(w.Views, v)
	return v
}

// AddTracking registers a cursor tracking rectangle.
func (w *Window) AddTracking(r Rect, cursor int64) *TrackingRect {
	tr := &TrackingRect{Rect: r, Cursor: cursor}
	w.Tracking = append(w.Tracking, tr)
	return tr
}
