package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"tesla/internal/core"
	"tesla/internal/faultinject"
)

// FigFaults measures what the supervision layer (failure policies, overflow
// degradation, quarantine bookkeeping, out-of-lock notification dispatch)
// costs on the monitored fast path. It reuses the OLTP session workload of
// the shard figure — a pool of keyed sessions driven through the sharded
// store — and walks the policy ladder: the
// drop-new default (the seed's behaviour, now routed through the policy
// machinery), evict-oldest, quarantine, and drop-new with the fault
// injector armed at 1% allocation failures. Sessions fit the instance limit,
// so the ladder prices the supervision plumbing itself, not degraded
// operation: the acceptance bar is <3% regression versus the PR 3 shard
// figure's throughput on the same workload.

// figFaultsVariant is one rung of the policy ladder.
type figFaultsVariant struct {
	name string
	opts func() core.StoreOpts
}

func figFaultsVariants() []figFaultsVariant {
	return []figFaultsVariant{
		{"drop-new (default)", func() core.StoreOpts {
			return core.StoreOpts{Context: core.Global, Shards: 8}
		}},
		{"evict-oldest", func() core.StoreOpts {
			return core.StoreOpts{Context: core.Global, Shards: 8, Overflow: core.EvictOldest}
		}},
		{"quarantine", func() core.StoreOpts {
			return core.StoreOpts{Context: core.Global, Shards: 8, Overflow: core.QuarantineClass}
		}},
		{"drop-new + inject 1%", func() core.StoreOpts {
			inj := faultinject.New(1)
			inj.SetRate(faultinject.SiteAlloc, 0.01)
			return core.StoreOpts{Context: core.Global, Shards: 8,
				AllocFail: func(cls *core.Class) bool {
					return inj.Should(faultinject.SiteAlloc, cls.Name)
				}}
		}},
	}
}

// FigFaultsMeasure drives the shard-figure session workload through a store
// built with the variant's options and returns events/sec.
func FigFaultsMeasure(opts core.StoreOpts, g, total int) float64 {
	cls := &core.Class{Name: "session", States: 8, Limit: shardFigLimit}
	s := core.NewStoreOpts(opts)
	s.Register(cls)
	enter, work, site := shardFigTransitions()
	for k := 0; k < shardFigSessions; k++ {
		s.UpdateState(cls, "enter", 0, core.NewKey(core.Value(k)), enter)
	}

	perG := total / g
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < g; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			base := (t * shardFigKeysPerG) % shardFigSessions
			for i := 0; i < perG; i++ {
				key := core.NewKey(core.Value(base + i%shardFigKeysPerG))
				if i%8 == 7 {
					s.UpdateState(cls, "site", core.SymRequired, key, site)
				} else {
					s.UpdateState(cls, "work", 0, key, work)
				}
			}
		}(t)
	}
	wg.Wait()
	return float64(perG*g) / time.Since(start).Seconds()
}

// FigFaults prints the supervision-policy throughput ladder. The ladder is
// measured single-goroutine: the acceptance question is what the policy
// machinery costs per event on the hot path, and one goroutine isolates
// exactly that (branch + atomic bookkeeping) from scheduler and lock-convoy
// noise, which on small hosts dwarfs a 3% signal. Multi-goroutine scaling of
// the same store and workload is the shard figure's job. Variants are
// measured in interleaved rounds and the per-rung median is reported.
func FigFaults(w io.Writer, iters int) error {
	total := iters * 8
	if total < 64000 {
		total = 64000
	}
	// One P for one goroutine: extra Ps on small hosts only add runtime
	// churn between the interleaved rounds.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const rounds = 7

	variants := figFaultsVariants()
	samples := make([][]float64, len(variants))
	for r := 0; r < rounds; r++ {
		for i, v := range variants {
			samples[i] = append(samples[i], FigFaultsMeasure(v.opts(), 1, total))
		}
	}
	// Median per rung: with the rounds interleaved, slow drift (frequency
	// scaling, co-tenant load) hits all rungs alike and the median shrugs
	// off the outlier rounds a best-of would chase.
	med := make([]float64, len(variants))
	for i := range samples {
		sort.Float64s(samples[i])
		med[i] = samples[i][len(samples[i])/2]
	}

	fmt.Fprintln(w, "Figure faults: supervision-policy cost on the sharded store (OLTP sessions)")
	fmt.Fprintf(w, "  %-22s %14s %10s\n", "policy", "events/s", "vs default")
	for i, v := range variants {
		fmt.Fprintf(w, "  %-22s %14.0f %9.2f%%\n", v.name, med[i], (med[i]/med[0]-1)*100)
	}
	fmt.Fprintln(w, "  target: every rung within 3% of the drop-new default, which itself must")
	fmt.Fprintln(w, "  stay within 3% of the shard figure's sharded throughput — the policy and")
	fmt.Fprintln(w, "  injection seams are branches on data already under the stripe lock")
	fmt.Fprintln(w)
	return nil
}
