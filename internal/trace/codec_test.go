package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/spec"
)

// randomEvent builds a structurally valid event with randomised payload:
// the codec only promises round-tripping for events the recorder can
// produce, so kinds and per-kind fields stay in range while values roam.
func randomEvent(r *rand.Rand, seq uint64) Event {
	names := []string{"", "alpha", "beta", "a_rather_longer_symbol_name", "γ"}
	ev := Event{
		Seq:    seq,
		Thread: r.Intn(5) - 1,
		Time:   r.Int63n(1 << 40),
	}
	randKey := func() core.Key {
		var k core.Key
		k.Mask = uint32(r.Intn(1 << core.KeySize))
		for i := 0; i < core.KeySize; i++ {
			if k.Bound(i) {
				k.Data[i] = core.Value(r.Int63() - r.Int63())
			}
		}
		return k
	}
	if r.Intn(2) == 0 {
		ev.Kind = KindProgram
		ev.Prog = monitor.ProgKind(r.Intn(int(monitor.ProgDeliver) + 1))
		ev.Fn = names[r.Intn(len(names))]
		ev.Field = names[r.Intn(len(names))]
		ev.Op = spec.AssignOp(r.Intn(3))
		ev.Auto = r.Intn(8)
		ev.Sym = r.Intn(8)
		ev.Slot = r.Intn(8)
		if r.Intn(2) == 0 {
			ev.HasRet = true
			ev.Ret = core.Value(r.Int63() - r.Int63())
		}
		if n := r.Intn(4); n > 0 {
			ev.Vals = make([]core.Value, n)
			for i := range ev.Vals {
				ev.Vals[i] = core.Value(r.Int63() - r.Int63())
			}
		}
		if n := r.Intn(3); n > 0 {
			ev.InStack = make([]int, n)
			for i := range ev.InStack {
				ev.InStack[i] = r.Intn(16)
			}
		}
	} else {
		ev.Kind = Kind(1 + r.Intn(int(KindQuarantine)))
		ev.Class = names[1+r.Intn(len(names)-1)]
		ev.Symbol = names[r.Intn(len(names))]
		ev.Key = randKey()
		if ev.Kind == KindClone {
			ev.ParentKey = randKey()
		}
		ev.From = uint32(r.Intn(16))
		ev.To = uint32(r.Intn(16))
		ev.State = uint32(r.Intn(16))
		if ev.Kind == KindFail {
			ev.Verdict = core.VerdictKind(1 + r.Intn(3))
		}
		if ev.Kind == KindQuarantine {
			ev.On = r.Intn(2) == 0
		}
	}
	return ev
}

func randomTrace(r *rand.Rand) *Trace {
	t := &Trace{
		FormatVersion: Version,
		Automata:      []string{"a0", "a1"},
		Dropped:       uint64(r.Intn(3)),
	}
	seq := uint64(0)
	for i, n := 0, r.Intn(60); i < n; i++ {
		seq += uint64(1 + r.Intn(3)) // gaps, as ring overflow produces
		t.Events = append(t.Events, randomEvent(r, seq))
	}
	return t
}

// TestCodecRoundTrip is the property test for both encodings: any
// recorder-shaped trace survives encode/decode bit-for-bit.
func TestCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		tr := randomTrace(r)

		var bin bytes.Buffer
		if err := Write(&bin, tr); err != nil {
			t.Fatalf("#%d: write: %v", i, err)
		}
		got, err := Read(&bin)
		if err != nil {
			t.Fatalf("#%d: read: %v", i, err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Fatalf("#%d: binary round-trip mismatch\nin:  %+v\nout: %+v", i, tr, got)
		}

		var js bytes.Buffer
		if err := WriteJSON(&js, tr); err != nil {
			t.Fatalf("#%d: write json: %v", i, err)
		}
		got, err = Read(&js)
		if err != nil {
			t.Fatalf("#%d: read json: %v", i, err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Fatalf("#%d: JSON round-trip mismatch\nin:  %+v\nout: %+v", i, tr, got)
		}
	}
}

func TestCodecRejectsWrongVersion(t *testing.T) {
	tr := &Trace{FormatVersion: Version, Automata: []string{"a"}}
	var bin bytes.Buffer
	if err := Write(&bin, tr); err != nil {
		t.Fatal(err)
	}
	// The version uvarint is the byte right after the magic; Version is 1,
	// so bumping that byte forges a future version.
	data := bin.Bytes()
	data[len(magic)] = 99
	if _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future binary version accepted: %v", err)
	}

	if _, err := Read(strings.NewReader(`{"version": 99, "automata": [], "events": []}`)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future JSON version accepted: %v", err)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "XYZ", "TESLATRC", "TESLAT"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("garbage %q accepted", in)
		}
	}
	// Truncation mid-stream must error, not silently shorten.
	r := rand.New(rand.NewSource(2))
	var tr *Trace
	for tr == nil || len(tr.Events) == 0 {
		tr = randomTrace(r)
	}
	var bin bytes.Buffer
	if err := Write(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(bin.Bytes()[:bin.Len()-1])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := newRing(4)
	for i := 1; i <= 7; i++ {
		r.push(Event{Seq: uint64(i)})
	}
	got := r.snapshot(nil)
	if len(got) != 4 || r.dropped != 3 {
		t.Fatalf("got %d events, %d dropped; want 4, 3", len(got), r.dropped)
	}
	for i, ev := range got {
		if want := uint64(4 + i); ev.Seq != want {
			t.Fatalf("slot %d: seq %d, want %d", i, ev.Seq, want)
		}
	}
}

// TestDDMinSynthetic pins ddmin behaviour against predicates with known
// minima, independent of automata.
func TestDDMinSynthetic(t *testing.T) {
	mk := func(n int) []Event {
		out := make([]Event, n)
		for i := range out {
			out[i] = Event{Seq: uint64(i + 1)}
		}
		return out
	}
	has := func(events []Event, seqs ...uint64) bool {
		found := map[uint64]bool{}
		for _, e := range events {
			found[e.Seq] = true
		}
		for _, s := range seqs {
			if !found[s] {
				return false
			}
		}
		return true
	}

	// Needs exactly {3, 17}: ddmin must isolate the pair.
	got := ddmin(mk(24), func(es []Event) bool { return has(es, 3, 17) })
	if len(got) != 2 || !has(got, 3, 17) {
		t.Fatalf("pair predicate: got %v", got)
	}
	// Needs one event.
	got = ddmin(mk(31), func(es []Event) bool { return has(es, 30) })
	if len(got) != 1 || !has(got, 30) {
		t.Fatalf("singleton predicate: got %v", got)
	}
	// Everything required: nothing removable.
	all := mk(7)
	got = ddmin(all, func(es []Event) bool { return len(es) == 7 })
	if len(got) != 7 {
		t.Fatalf("rigid predicate: got %d events", len(got))
	}
}
