package monitor

import (
	"sync"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/spec"
)

func mustAuto(t *testing.T, name, src string, env *spec.Env) *automata.Automaton {
	t.Helper()
	a, err := spec.Parse(name, src, env)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := automata.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	return auto
}

// TestFig9EndToEnd drives the paper's running example through the dispatch
// layer: TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so)==0).
func TestFig9EndToEnd(t *testing.T) {
	for _, naive := range []bool{false, true} {
		auto := mustAuto(t, "fig9",
			`TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)`, nil)
		h := core.NewCountingHandler()
		m := MustNew(Options{Handler: h, Naive: naive}, auto)
		th := m.NewThread()

		// Syscall 1: check performed for so=7, assertion passes.
		th.Call("amd64_syscall")
		th.Call("mac_socket_check_poll", 99, 7)
		th.Return("mac_socket_check_poll", 0, 99, 7)
		th.Site("fig9", 7)
		th.Return("amd64_syscall", 0)
		if vs := h.Violations(); len(vs) != 0 {
			t.Fatalf("naive=%v good syscall: %v", naive, vs)
		}

		// Syscall 2: check performed for so=7 but assertion site sees
		// so=8 — the error case of fig. 9.
		th.Call("amd64_syscall")
		th.Call("mac_socket_check_poll", 99, 7)
		th.Return("mac_socket_check_poll", 0, 99, 7)
		th.Site("fig9", 8)
		th.Return("amd64_syscall", 0)
		vs := h.Violations()
		if len(vs) != 1 || vs[0].Kind != core.VerdictNoInstance {
			t.Fatalf("naive=%v bad syscall: %v", naive, vs)
		}

		// Syscall 3: check returned non-zero — must not satisfy.
		th.Call("amd64_syscall")
		th.Call("mac_socket_check_poll", 99, 9)
		th.Return("mac_socket_check_poll", -13, 99, 9)
		th.Site("fig9", 9)
		th.Return("amd64_syscall", 0)
		if vs := h.Violations(); len(vs) != 2 {
			t.Fatalf("naive=%v failed check: %v", naive, vs)
		}

		// Syscall 4: no site reached — bypass, no violation.
		th.Call("amd64_syscall")
		th.Return("amd64_syscall", 0)
		if vs := h.Violations(); len(vs) != 2 {
			t.Fatalf("naive=%v bypass: %v", naive, vs)
		}
	}
}

func TestFailFastPropagates(t *testing.T) {
	auto := mustAuto(t, "ff", `TESLA_SYSCALL_PREVIOUSLY(check(x) == 0)`, nil)
	m := MustNew(Options{FailFast: true}, auto)
	th := m.NewThread()
	th.Call("amd64_syscall")
	err := th.Site("ff", 5)
	if err == nil {
		t.Fatal("expected violation error")
	}
	v, ok := err.(*core.Violation)
	if !ok || v.Kind != core.VerdictNoInstance {
		t.Fatalf("err = %v", err)
	}
}

// TestLazyEqualsNaive: both modes produce identical verdicts and accepts
// over a mixed workload with many automata sharing a bound.
func TestLazyEqualsNaive(t *testing.T) {
	build := func() []*automata.Automaton {
		return []*automata.Automaton{
			mustAuto(t, "a1", `TESLA_SYSCALL_PREVIOUSLY(chk1(x) == 0)`, nil),
			mustAuto(t, "a2", `TESLA_SYSCALL_PREVIOUSLY(chk2(y) == 0)`, nil),
			mustAuto(t, "a3", `TESLA_SYSCALL(eventually(fin(z) == 0))`, nil),
			mustAuto(t, "a4", `TESLA_WITHIN(pagefault, previously(chk1(x) == 0))`, nil),
		}
	}
	run := func(naive bool) ([]*core.Violation, map[string]uint64) {
		h := core.NewCountingHandler()
		m := MustNew(Options{Handler: h, Naive: naive}, build()...)
		th := m.NewThread()
		// Syscall with chk1 and a1's site.
		th.Call("amd64_syscall")
		th.Call("chk1", 1)
		th.Return("chk1", 0, 1)
		th.Site("a1", 1)
		th.Return("amd64_syscall", 0)
		// Syscall hitting a2's site without chk2 → violation.
		th.Call("amd64_syscall")
		th.Site("a2", 2)
		th.Return("amd64_syscall", 0)
		// Syscall hitting a3's site without fin → incomplete.
		th.Call("amd64_syscall")
		th.Site("a3", 3)
		th.Return("amd64_syscall", 0)
		// Page fault path for a4.
		th.Call("pagefault")
		th.Call("chk1", 4)
		th.Return("chk1", 0, 4)
		th.Site("a4", 4)
		th.Return("pagefault", 0)
		// Empty syscalls: lazy mode should do nothing per automaton.
		for i := 0; i < 10; i++ {
			th.Call("amd64_syscall")
			th.Return("amd64_syscall", 0)
		}
		accepts := map[string]uint64{}
		for _, name := range []string{"a1", "a2", "a3", "a4"} {
			accepts[name] = h.Accepts(name)
		}
		return h.Violations(), accepts
	}

	vN, aN := run(true)
	vL, aL := run(false)
	if len(vN) != len(vL) {
		t.Fatalf("violations differ: naive=%v lazy=%v", vN, vL)
	}
	for i := range vN {
		if vN[i].Kind != vL[i].Kind || vN[i].Class.Name != vL[i].Class.Name {
			t.Errorf("violation %d differs: %v vs %v", i, vN[i], vL[i])
		}
	}
	for name := range aL {
		// Naive mode accepts every automaton on every bound exit (the
		// (∗) instance always finalises); lazy mode only touches
		// automata that saw real events, so accept counts differ — but
		// an automaton accepted under lazy must accept under naive.
		if aL[name] > aN[name] {
			t.Errorf("%s: lazy accepts %d > naive %d", name, aL[name], aN[name])
		}
	}
}

func TestGlobalContextSharedAcrossThreads(t *testing.T) {
	src := `TESLA_GLOBAL(call(start_op), returnfrom(end_op), previously(prepare(x) == 0))`
	auto := mustAuto(t, "glob", src, nil)
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h}, auto)

	t1 := m.NewThread()
	t2 := m.NewThread()

	// Thread 1 opens the bound and prepares; thread 2 reaches the site.
	t1.Call("start_op")
	t1.Call("prepare", 5)
	t1.Return("prepare", 0, 5)
	t2.Site("glob", 5)
	t1.Return("end_op", 0)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("cross-thread previously failed: %v", vs)
	}
	if m.GlobalStore().LiveCount(auto.Class) != 0 {
		t.Error("cleanup did not expunge global instances")
	}
}

func TestPerThreadIsolation(t *testing.T) {
	auto := mustAuto(t, "iso", `TESLA_SYSCALL_PREVIOUSLY(chk(x) == 0)`, nil)
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h}, auto)
	t1 := m.NewThread()
	t2 := m.NewThread()

	// Thread 1 performs the check; thread 2 reaches the site — per-thread
	// automata must NOT see thread 1's event.
	t1.Call("amd64_syscall")
	t1.Call("chk", 5)
	t1.Return("chk", 0, 5)
	t2.Call("amd64_syscall")
	t2.Site("iso", 5)
	if vs := h.Violations(); len(vs) != 1 || vs[0].Kind != core.VerdictNoInstance {
		t.Fatalf("per-thread isolation broken: %v", vs)
	}
}

func TestFieldAssignEvents(t *testing.T) {
	env := &spec.Env{
		Consts:     map[string]int64{"P_SUGID": 0x100},
		VarStructs: map[string]string{"p": "proc"},
	}
	// If credentials change, the sugid flag must eventually be set.
	auto := mustAuto(t, "sugid",
		`TESLA_SYSCALL(eventually(p.p_flag = P_SUGID))`, env)
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h}, auto)
	th := m.NewThread()

	// Good path.
	th.Call("amd64_syscall")
	th.Site("sugid", 77) // p = 77
	th.Assign("proc", "p_flag", 77, spec.OpAssign, 0x100)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("good path: %v", vs)
	}

	// Wrong value assigned: obligation unmet.
	th.Call("amd64_syscall")
	th.Site("sugid", 78)
	th.Assign("proc", "p_flag", 78, spec.OpAssign, 0x1)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 1 || vs[0].Kind != core.VerdictIncomplete {
		t.Fatalf("wrong value: %v", vs)
	}

	// Wrong struct instance: still unmet.
	th.Call("amd64_syscall")
	th.Site("sugid", 79)
	th.Assign("proc", "p_flag", 80, spec.OpAssign, 0x100)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 2 {
		t.Fatalf("wrong target: %v", vs)
	}
}

func TestFieldIncrAndAddAssign(t *testing.T) {
	env := &spec.Env{VarStructs: map[string]string{"s": "counter"}}
	auto := mustAuto(t, "incr", `TESLA_SYSCALL(eventually(s.n++))`, env)
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h}, auto)
	th := m.NewThread()

	th.Call("amd64_syscall")
	th.Site("incr", 5)
	th.Assign("counter", "n", 5, spec.OpIncr, 0)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("incr: %v", vs)
	}
	// += with the wrong op does not match ++.
	th.Call("amd64_syscall")
	th.Site("incr", 6)
	th.Assign("counter", "n", 6, spec.OpAddAssign, 1)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 1 {
		t.Fatalf("op mismatch: %v", vs)
	}
}

func TestObjCMessages(t *testing.T) {
	auto := mustAuto(t, "objc",
		`TESLA_WITHIN(runloop, previously(ATLEAST(0, [ANY(id) push], [ANY(id) pop])))`, nil)
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h}, auto)
	th := m.NewThread()

	th.Call("runloop")
	th.Send("push", 1)
	th.Send("push", 2)
	th.Send("pop", 2)
	th.Site("objc")
	th.Return("runloop", 0)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("objc trace: %v", vs)
	}
	var pushes uint64
	for e, n := range h.Edges() {
		if e.Symbol == "[ANY(id) push]" {
			pushes += n
		}
	}
	if pushes != 2 {
		t.Errorf("push events observed = %d, want 2", pushes)
	}
}

func TestInCallStack(t *testing.T) {
	auto := mustAuto(t, "ics",
		`TESLA_SYSCALL(incallstack(ufs_readdir) || previously(mac_check(vp) == 0))`, nil)
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h}, auto)
	th := m.NewThread()

	// Within ufs_readdir: no MAC check needed.
	th.Call("amd64_syscall")
	th.Call("ufs_readdir")
	th.Site("ics", 4)
	th.Return("ufs_readdir", 0)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("incallstack path: %v", vs)
	}

	// Outside ufs_readdir without the check: violation.
	th.Call("amd64_syscall")
	th.Site("ics", 4)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 1 {
		t.Fatalf("unprotected path: %v", vs)
	}

	// Outside ufs_readdir with the check: fine.
	th.Call("amd64_syscall")
	th.Call("mac_check", 4)
	th.Return("mac_check", 0, 4)
	th.Site("ics", 4)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 1 {
		t.Fatalf("checked path: %v", vs)
	}
}

func TestIndirectPatternWithMemory(t *testing.T) {
	mem := memMap{100: 0} // address 100 holds 0
	auto := mustAuto(t, "ind",
		`TESLA_SYSCALL_PREVIOUSLY(getlock(&err) == 1)`, nil)
	_ = auto
	// &err is a variable capture through memory: the captured slot value
	// is the pointee. Use a const pattern instead for the check:
	auto2 := mustAuto(t, "ind2",
		`TESLA_SYSCALL_PREVIOUSLY(getlock(&0) == 1)`, nil)
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h, Memory: mem}, auto2)
	th := m.NewThread()

	th.Call("amd64_syscall")
	th.Call("getlock", 100) // arg points at 0
	th.Return("getlock", 1, 100)
	th.Site("ind2")
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("indirect match: %v", vs)
	}

	// Pointee mismatch.
	mem[100] = 7
	th.Call("amd64_syscall")
	th.Call("getlock", 100)
	th.Return("getlock", 1, 100)
	th.Site("ind2")
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 1 {
		t.Fatalf("indirect mismatch: %v", vs)
	}
}

type memMap map[core.Value]core.Value

func (m memMap) Load(a core.Value) (core.Value, bool) {
	v, ok := m[a]
	return v, ok
}

func TestUnknownSite(t *testing.T) {
	m := MustNew(Options{})
	th := m.NewThread()
	if err := th.Site("nope"); err == nil {
		t.Fatal("expected unknown-site error")
	}
}

func TestDuplicateAutomatonName(t *testing.T) {
	a1 := mustAuto(t, "dup", `TESLA_SYSCALL_PREVIOUSLY(f(x) == 0)`, nil)
	a2 := mustAuto(t, "dup", `TESLA_SYSCALL_PREVIOUSLY(g(x) == 0)`, nil)
	if _, err := New(Options{}, a1, a2); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestInstrumentedFns(t *testing.T) {
	auto := mustAuto(t, "fns", `TESLA_SYSCALL_PREVIOUSLY(chk(x) == 0, TSEQUENCE(call(aux)))`, nil)
	_ = auto
	auto2 := mustAuto(t, "fns2", `TESLA_WITHIN(render, previously(draw(x) == 0))`, nil)
	m := MustNew(Options{}, auto2)
	fns := m.InstrumentedFns()
	for _, want := range []string{"render", "draw"} {
		if !fns[want] {
			t.Errorf("missing instrumented fn %q in %v", want, fns)
		}
	}
}

func TestDuplicateVariableConsistency(t *testing.T) {
	// The same variable twice in one event: both positions must agree.
	auto := mustAuto(t, "dupvar", `TESLA_SYSCALL_PREVIOUSLY(transfer(x, x) == 0)`, nil)
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h}, auto)
	th := m.NewThread()

	th.Call("amd64_syscall")
	th.Call("transfer", 3, 4) // mismatched: not a matching event
	th.Return("transfer", 0, 3, 4)
	th.Site("dupvar", 3)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 1 {
		t.Fatalf("mismatched duplicate var should not satisfy: %v", vs)
	}

	th.Call("amd64_syscall")
	th.Call("transfer", 5, 5)
	th.Return("transfer", 0, 5, 5)
	th.Site("dupvar", 5)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 1 {
		t.Fatalf("matching duplicate var should satisfy: %v", vs)
	}
}

func TestReturnValueCapture(t *testing.T) {
	// The return value itself binds a variable: alloc() == p, then use(p).
	auto := mustAuto(t, "retvar",
		`TESLA_SYSCALL_PREVIOUSLY(alloc() == p, use(p) == 0)`, nil)
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h}, auto)
	th := m.NewThread()

	th.Call("amd64_syscall")
	th.Call("alloc")
	th.Return("alloc", 42)
	th.Call("use", 42)
	th.Return("use", 0, 42)
	th.Site("retvar", 42)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("retvar chain: %v", vs)
	}

	// use() on a different pointer than alloc returned.
	th.Call("amd64_syscall")
	th.Call("alloc")
	th.Return("alloc", 42)
	th.Call("use", 43)
	th.Return("use", 0, 43)
	th.Site("retvar", 43)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 1 {
		t.Fatalf("mismatched pointer: %v", vs)
	}
}

// TestFreeVariables pins the §7 "free variables" capability: an assertion
// can bind events together with values that are no longer known at the
// assertion site. Here `owner` is bound by the create event and checked for
// consistency by the grant event, but the site only knows the handle.
func TestFreeVariables(t *testing.T) {
	auto := mustAuto(t, "free",
		`TESLA_SYSCALL_PREVIOUSLY(create(h) == owner, grant(owner, h) == 0)`, nil)
	// Vars: h (slot 0), owner (slot 1); the site provides only h.
	if got := auto.Vars; len(got) != 2 || got[0] != "h" || got[1] != "owner" {
		t.Fatalf("vars = %v", got)
	}
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h}, auto)
	th := m.NewThread()

	// Consistent run: create(7) returned owner 42; grant(42, 7).
	th.Call("amd64_syscall")
	th.Call("create", 7)
	th.Return("create", 42, 7)
	th.Call("grant", 42, 7)
	th.Return("grant", 0, 42, 7)
	th.Site("free", 7) // owner is no longer in scope: site binds h only
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("consistent run: %v", vs)
	}

	// Inconsistent: grant ran with a different owner than create returned.
	th.Call("amd64_syscall")
	th.Call("create", 8)
	th.Return("create", 42, 8)
	th.Call("grant", 99, 8)
	th.Return("grant", 0, 99, 8)
	th.Site("free", 8)
	th.Return("amd64_syscall", 0)
	if vs := h.Violations(); len(vs) != 1 {
		t.Fatalf("owner mismatch not detected: %v", vs)
	}
}

// TestGlobalCloneCleanupInterleaving hammers the global store's clone and
// cleanup paths from many concurrent threads: each goroutine creates its
// own monitor thread, opens the shared global bound, prepares a keyed
// instance (forcing a clone of the (∗) instance), reaches the site and
// closes the bound, while an observer snapshots the store. Verdicts are
// timing-dependent (another thread's bound exit may expunge an instance
// first), so the assertions are the structural invariants that must hold
// under every interleaving: no duplicate active keys, live count within
// the class limit, no overflow, and an empty store after a final cleanup.
func TestGlobalCloneCleanupInterleaving(t *testing.T) {
	src := `TESLA_GLOBAL(call(start_op), returnfrom(end_op), previously(prepare(x) == 0))`
	auto := mustAuto(t, "glob", src, nil)
	h := core.NewCountingHandler()
	m := MustNew(Options{Handler: h}, auto)

	checkSnapshot := func() {
		seen := map[core.Key]bool{}
		live := 0
		for _, inst := range m.GlobalStore().Instances(auto.Class) {
			if !inst.Active {
				continue
			}
			live++
			if inst.Key.Mask != 0 {
				if seen[inst.Key] {
					t.Errorf("duplicate active key %s in global store", inst.Key)
				}
				seen[inst.Key] = true
			}
		}
		if live > core.DefaultInstanceLimit {
			t.Errorf("live instances %d exceed limit %d", live, core.DefaultInstanceLimit)
		}
	}

	const goroutines = 8
	const rounds = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Observer: concurrent store snapshots while events fly.
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
				checkSnapshot()
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := m.NewThread()
			for r := 0; r < rounds; r++ {
				x := core.Value(g*rounds + r)
				th.Call("start_op")
				th.Call("prepare", x)
				th.Return("prepare", 0, x)
				th.Site("glob", x)
				th.Return("end_op", 0)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	obs.Wait()
	checkSnapshot()

	for _, v := range h.Violations() {
		// Interleaved cleanup may legitimately yield no-instance verdicts;
		// anything else means the automaton itself misbehaved.
		if v.Kind != core.VerdictNoInstance {
			t.Fatalf("unexpected verdict under interleaving: %v", v)
		}
	}

	// A final bound cycle must expunge everything the run left behind.
	th := m.NewThread()
	th.Call("start_op")
	th.Return("end_op", 0)
	if n := m.GlobalStore().LiveCount(auto.Class); n != 0 {
		t.Fatalf("%d live instances after final cleanup", n)
	}
}

// TestThreadIDsUniqueUnderConcurrency pins the thread numbering used for
// trace attribution: concurrent NewThread calls must hand out distinct IDs.
func TestThreadIDsUniqueUnderConcurrency(t *testing.T) {
	auto := mustAuto(t, "ids", `TESLA_SYSCALL_PREVIOUSLY(chk(x) == 0)`, nil)
	m := MustNew(Options{}, auto)
	const n = 32
	ids := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids <- m.NewThread().ID()
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[int]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate thread id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct ids, want %d", len(seen), n)
	}
}
