package tesla

import (
	"strings"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/bench"
	"tesla/internal/core"
	"tesla/internal/gui"
	"tesla/internal/kernel"
	"tesla/internal/monitor"
	"tesla/internal/objc"
	"tesla/internal/spec"
	"tesla/internal/ssl"
	"tesla/internal/toolchain"
	"tesla/internal/xnee"
)

// TestEndToEndCompilerPath runs the complete §4 workflow on a program whose
// behaviour depends on its input, checking both verdicts.
func TestEndToEndCompilerPath(t *testing.T) {
	build, err := toolchain.BuildProgram(map[string]string{
		"mini.c": `
int security_check(int obj, int op) { return 0; }
int perform(int obj, int op, int checked) {
	TESLA_SYSCALL_PREVIOUSLY(security_check(obj, op) == 0);
	return obj + op;
}
int amd64_syscall(int obj, int op, int checked) {
	if (checked) {
		int c = security_check(obj, op);
		if (c != 0) { return c; }
	}
	return perform(obj, op, checked);
}
int main(int checked) { return amd64_syscall(10, 4, checked); }
`}, true)
	if err != nil {
		t.Fatal(err)
	}

	h := core.NewCountingHandler()
	ret, _, err := build.Run("main", monitor.Options{Handler: h}, 1)
	if err != nil || ret != 14 {
		t.Fatalf("checked run: ret=%d err=%v", ret, err)
	}
	if len(h.Violations()) != 0 {
		t.Fatalf("checked run flagged: %v", h.Violations())
	}

	h2 := core.NewCountingHandler()
	if _, _, err := build.Run("main", monitor.Options{Handler: h2}, 0); err != nil {
		t.Fatal(err)
	}
	if len(h2.Violations()) != 1 {
		t.Fatalf("unchecked run not flagged: %v", h2.Violations())
	}
}

// TestEndToEndKernelStory replays the §3.5.2 narrative in miniature.
func TestEndToEndKernelStory(t *testing.T) {
	h := core.NewCountingHandler()
	k, _, err := kernel.Boot(kernel.Release, kernel.SetAll,
		kernel.BugConfig{KqueueMissingPollCheck: true}, monitor.Options{Handler: h})
	if err != nil {
		t.Fatal(err)
	}
	th := k.NewThread()
	pair, err := kernel.SetupOLTP(th)
	if err != nil {
		t.Fatal(err)
	}
	th.Poll(pair.Client)
	th.Kevent(pair.Client)
	vs := h.Violations()
	if len(vs) != 1 || !strings.Contains(vs[0].Error(), "mac_socket_check_poll") {
		t.Fatalf("kernel story: %v", vs)
	}
}

// TestEndToEndSSLStory replays §3.5.1 against both server behaviours.
func TestEndToEndSSLStory(t *testing.T) {
	for _, malicious := range []bool{false, true} {
		auto, err := ssl.FetchAutomaton()
		if err != nil {
			t.Fatal(err)
		}
		h := core.NewCountingHandler()
		m := monitor.MustNew(monitor.Options{Handler: h}, auto)
		env := ssl.NewEnv(m.NewThread())
		srv := ssl.NewServer(77)
		srv.Malicious = malicious
		c := &ssl.Client{Env: env}
		if _, err := ssl.FetchMain(env, c, srv, "/"); err != nil {
			t.Fatal(err)
		}
		if got := len(h.Violations()); (got != 0) != malicious {
			t.Fatalf("malicious=%v violations=%d", malicious, got)
		}
	}
}

// TestEndToEndGUIStory replays §3.5.3's cursor investigation via Xnee.
func TestEndToEndGUIStory(t *testing.T) {
	var events []spec.Expr
	for _, sel := range gui.AllSelectors() {
		events = append(events, spec.Msg(spec.Any("id"), sel))
	}
	auto, err := automata.Compile(spec.Within("gui:runloop", "startDrawing",
		spec.Previously(spec.AtLeast(0, events...))))
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewCountingHandler()
	m := monitor.MustNew(monitor.Options{Handler: h}, auto)
	th := m.NewThread()
	rt := objc.NewRuntime(objc.TESLA)
	rt.InterposeTESLA(th, gui.AllSelectors(), nil)
	w := gui.NewWindow(rt, gui.NewOldBackend())
	w.DeliveryBug = true
	rect := gui.Rect{X: 0, Y: 0, W: 100, H: 100}
	w.AddTracking(rect, gui.CursorIBeam)
	xnee.Replay(gui.NewRunLoop(w, th), xnee.CursorCrossing(rect, 2))

	var pushes, pops uint64
	for e, n := range h.Edges() {
		if strings.Contains(e.Symbol, "push]") {
			pushes += n
		}
		if strings.Contains(e.Symbol, "pop]") {
			pops += n
		}
	}
	if pushes <= pops {
		t.Fatalf("trace should show unpaired pushes: push=%d pop=%d", pushes, pops)
	}
	if len(w.CursorStack) == 0 {
		t.Fatal("cursor stack should be left corrupted")
	}
}

// TestBenchHarnessSmoke: the tesla-bench entry points run end to end.
func TestBenchHarnessSmoke(t *testing.T) {
	var sb strings.Builder
	bench.Table1(&sb)
	if err := bench.Fig9(&sb, 24); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Fatal("harness output malformed")
	}
}
