package instrument

import (
	"strings"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/compiler"
	"tesla/internal/csub"
	"tesla/internal/ir"
	"tesla/internal/spec"
)

func compileUnit(t *testing.T, src string) (*compiler.Unit, *compiler.Context) {
	t.Helper()
	f, err := csub.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := compiler.NewContext(f)
	if err != nil {
		t.Fatal(err)
	}
	u, err := compiler.CompileFile(f, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return u, ctx
}

func countCalls(m *ir.Module, prefix string) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && strings.HasPrefix(in.Sym, prefix) {
					n++
				}
			}
		}
	}
	return n
}

const srcBasic = `
int check(int vp) { return 0; }
int body(int vp) {
	TESLA_SYSCALL_PREVIOUSLY(check(vp) == 0);
	return vp;
}
int amd64_syscall(int vp) {
	int c = check(vp);
	return body(vp);
}
`

func TestCalleeSideHooks(t *testing.T) {
	u, ctx := compileUnit(t, srcBasic)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sites != 1 {
		t.Fatalf("sites = %d", stats.Sites)
	}
	if stats.Translators == 0 || stats.Hooks == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// check is defined in the module: callee-side exit hook in check's
	// own body, none around the call site.
	chk := m.Func("check")
	found := false
	for _, b := range chk.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && strings.HasPrefix(in.Sym, "__tesla_evt") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("callee-side exit hook missing in check")
	}
	// Bound hooks around amd64_syscall.
	if countCalls(m, "__tesla_bound_begin") != 1 || countCalls(m, "__tesla_bound_end") == 0 {
		t.Fatal("bound hooks missing")
	}
	// The input module is untouched.
	if countCalls(u.Module, "__tesla_bound_begin") != 0 {
		t.Fatal("instrumentation mutated the input module")
	}
}

func TestCallerSideForUndefinedFn(t *testing.T) {
	src := `
int body(int vp) {
	int c = ext_check(vp);
	TESLA_SYSCALL_PREVIOUSLY(ext_check(vp) == 0);
	return vp;
}
int amd64_syscall(int vp) { return body(vp); }
`
	u, ctx := compileUnit(t, src)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	// ext_check is not defined anywhere: caller-side instrumentation.
	defined := ctx.DefinedFns()
	m, _, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: defined})
	if err != nil {
		t.Fatal(err)
	}
	body := m.Func("body")
	var hookAfterCall bool
	for _, b := range body.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Sym == "ext_check" && i+1 < len(b.Instrs) {
				next := b.Instrs[i+1]
				if next.Op == ir.OpCall && strings.HasPrefix(next.Sym, "__tesla_evt") {
					hookAfterCall = true
				}
			}
		}
	}
	if !hookAfterCall {
		t.Fatal("caller-side exit hook not inserted after the call site")
	}
}

func TestStripRemovesSites(t *testing.T) {
	u, _ := compileUnit(t, srcBasic)
	if countCalls(u.Module, compiler.SitePseudoFn) != 1 {
		t.Fatal("pseudo-call missing before strip")
	}
	s := Strip(u.Module)
	if countCalls(s, compiler.SitePseudoFn) != 0 {
		t.Fatal("strip left pseudo-calls")
	}
}

func TestTranslatorStaticChecks(t *testing.T) {
	// Flags and bitmask patterns compile to mask-and-compare chains.
	src := `
#define IO_NOMACCHECK 128
int vn_rdwr(int vp, int flags) { return 0; }
int body(int vp) {
	TESLA_SYSCALL_PREVIOUSLY(called(vn_rdwr(vp, flags(IO_NOMACCHECK))));
	return 0;
}
int amd64_syscall(int vp) {
	int r = vn_rdwr(vp, 128);
	return body(vp);
}
`
	u, ctx := compileUnit(t, src)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns()})
	if err != nil {
		t.Fatal(err)
	}
	var translator *ir.Func
	for _, f := range m.Funcs {
		if strings.HasPrefix(f.Name, "__tesla_evt") {
			translator = f
		}
	}
	if translator == nil {
		t.Fatal("translator not generated")
	}
	text := translator.String()
	if !strings.Contains(text, "and") || !strings.Contains(text, "condbr") {
		t.Fatalf("translator lacks flag checks:\n%s", text)
	}
	if !strings.Contains(text, "__tesla_update") {
		t.Fatalf("translator lacks update call:\n%s", text)
	}
}

func TestFieldStoreHooks(t *testing.T) {
	src := `
struct proc { int p_flag; };
int amd64_syscall(struct proc *p) {
	TESLA_SYSCALL(eventually(p.p_flag = 256));
	p->p_flag = 256;
	p->p_flag += 1;
	return 0;
}
`
	u, ctx := compileUnit(t, src)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns()})
	if err != nil {
		t.Fatal(err)
	}
	// Only the plain-assignment store is hooked; the compound one has a
	// different operator and does not match.
	fn := m.Func("amd64_syscall")
	hooks := 0
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpFieldStore && i+1 < len(b.Instrs) {
				next := b.Instrs[i+1]
				if next.Op == ir.OpCall && strings.HasPrefix(next.Sym, "__tesla_evt") {
					hooks++
				}
			}
		}
	}
	if hooks != 1 {
		t.Fatalf("field hooks = %d, want 1", hooks)
	}
	_ = stats
}

func TestExplicitSideModifiers(t *testing.T) {
	u, ctx := compileUnit(t, `
int lib(int x) { return 0; }
int body(int x) {
	TESLA_SYSCALL_PREVIOUSLY(caller(lib(x) == 0));
	return 0;
}
int amd64_syscall(int x) {
	int r = lib(x);
	return body(x);
}
`)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns()})
	if err != nil {
		t.Fatal(err)
	}
	// caller() forces call-site hooks even though lib is defined here.
	libFn := m.Func("lib")
	for _, b := range libFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && strings.HasPrefix(in.Sym, "__tesla_evt") {
				t.Fatal("caller modifier must not produce callee hooks")
			}
		}
	}
	caller := m.Func("amd64_syscall")
	found := false
	for _, b := range caller.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && strings.HasPrefix(in.Sym, "__tesla_evt") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("caller-side hook missing")
	}
}

func TestSuffixDisambiguatesTranslators(t *testing.T) {
	u, ctx := compileUnit(t, srcBasic)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns(), Suffix: "__m0"})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns(), Suffix: "__m1"})
	if err != nil {
		t.Fatal(err)
	}
	m2.Funcs = m2.Funcs[len(u.Module.Funcs):] // keep only generated translators
	if _, err := ir.Link("prog", m1, m2); err != nil {
		t.Fatalf("suffixed translators should link: %v", err)
	}
}

func TestUnmatchedSiteIsRemoved(t *testing.T) {
	u, _ := compileUnit(t, srcBasic)
	// Instrument against a different automaton: the site pseudo-call has
	// no automaton and is dropped.
	other := automata.MustCompile(spec.SyscallPreviously("other", spec.Call("zzz").ReturnsInt(0)))
	m, stats, err := Module(u.Module, []*automata.Automaton{other}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sites != 0 {
		t.Fatalf("sites = %d", stats.Sites)
	}
	if countCalls(m, compiler.SitePseudoFn) != 0 {
		t.Fatal("unmatched pseudo-call left behind")
	}
}
