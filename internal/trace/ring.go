package trace

// ring is a bounded append-only event buffer that overwrites its oldest
// entries when full, counting what it loses. Bounding memory per thread is
// what makes always-on tracing viable in the kernel configurations the
// paper targets: a hot thread can emit millions of events, but debugging a
// violation only ever needs the recent window that led to it.
type ring struct {
	buf     []Event
	start   int // index of the oldest event
	n       int // live events
	dropped uint64
}

// defaultRingCap bounds each ring when the caller does not choose a size.
const defaultRingCap = 1 << 16

func newRing(capacity int) *ring {
	if capacity <= 0 {
		capacity = defaultRingCap
	}
	return &ring{buf: make([]Event, capacity)}
}

func (r *ring) push(ev Event) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = ev
		r.n++
		return
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// snapshot appends the ring's events, oldest first, to dst.
func (r *ring) snapshot(dst []Event) []Event {
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.buf[(r.start+i)%len(r.buf)])
	}
	return dst
}
