package analyse

import (
	"strings"
	"testing"
)

func TestSources(t *testing.T) {
	perFile, combined, err := Sources(map[string]string{
		"a.c": `
int f(int x) {
	TESLA_SYSCALL_PREVIOUSLY(check(x) == 0);
	return x;
}
`,
		"b.c": `
int g(int y) {
	TESLA_WITHIN(main, eventually(audit(y) == 0));
	TESLA_WITHIN(main, previously(check(y) == 0));
	return y;
}
`,
		"c.c": `int plain(int z) { return z; }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(perFile["a.c"].Assertions) != 1 || len(perFile["b.c"].Assertions) != 2 || len(perFile["c.c"].Assertions) != 0 {
		t.Fatalf("per-file counts wrong: %+v", perFile)
	}
	if len(combined.Assertions) != 3 {
		t.Fatalf("combined = %d", len(combined.Assertions))
	}
	// Names carry file:line positions.
	if !strings.HasPrefix(perFile["a.c"].Assertions[0].Name, "a.c:") {
		t.Fatalf("name = %q", perFile["a.c"].Assertions[0].Name)
	}
	// The combined manifest compiles.
	if _, err := combined.Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestSourcesErrors(t *testing.T) {
	if _, _, err := Sources(map[string]string{"bad.c": "int f( {"}); err == nil {
		t.Fatal("parse error must propagate")
	}
	if _, _, err := Sources(map[string]string{"bad.c": `
int f(int x) {
	TESLA_WITHIN(main, previously(check(undeclared_var) == 0));
	return x;
}
`}); err == nil {
		t.Fatal("out-of-scope assertion variable must fail analysis")
	}
}

func TestLint(t *testing.T) {
	warnings, err := LintSources(map[string]string{"a.c": `
int check(int x) { return 0; }
int amd64_syscall(int x) {
	int c = check(x);
	TESLA_SYSCALL_PREVIOUSLY(check(x) == 0);
	TESLA_SYSCALL_PREVIOUSLY(chekc(x) == 0);
	TESLA_WITHIN(no_such_bound, previously(check(x) == 0));
	TESLA_SYSCALL(incallstack(never_defined) || previously(check(x) == 0));
	return c;
}
`})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, w := range warnings {
		msgs = append(msgs, w.String())
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{`"chekc"`, `"no_such_bound"`, `"never_defined"`} {
		if !strings.Contains(joined, want) {
			t.Errorf("lint missing %s in:\n%s", want, joined)
		}
	}
	// The healthy assertion produces no warning.
	if strings.Contains(joined, `"check"`) {
		t.Errorf("false positive on defined function:\n%s", joined)
	}
	if len(warnings) != 3 {
		t.Errorf("warnings = %d:\n%s", len(warnings), joined)
	}
}

func TestLintExternalCallIsKnown(t *testing.T) {
	// A function that is only *called* (defined in a library outside the
	// program) still counts: caller-side instrumentation can observe it.
	warnings, err := LintSources(map[string]string{"a.c": `
int amd64_syscall(int x) {
	int c = ext_check(x);
	TESLA_SYSCALL_PREVIOUSLY(ext_check(x) == 0);
	return c;
}
`})
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("warnings = %v", warnings)
	}
}
