package analyse

import (
	"fmt"
	"sort"
	"strings"

	"tesla/internal/csub"
	"tesla/internal/spec"
	"tesla/internal/staticcheck"
)

// Lint is the static half the paper proposes as future work (§7: "a further
// advantage would be compile-time reporting of potential failures"): without
// running anything, it reports assertions whose events cannot occur in the
// program — a bound or event function that is neither defined nor called
// anywhere means the automaton can never initialise (the assertion is dead),
// or, for an `eventually` obligation, that every run reaching the site is
// already guaranteed to fail.

// Warning is one static finding.
type Warning struct {
	Assertion string
	Message   string
}

func (w Warning) String() string {
	return fmt.Sprintf("%s: %s", w.Assertion, w.Message)
}

// Lint analyses parsed sources and their assertions.
func Lint(files []*csub.File, assertions []*spec.Assertion) []Warning {
	known := map[string]bool{}
	structs := map[string]*csub.StructDef{}
	for _, f := range files {
		for _, sd := range f.Structs {
			structs[sd.Name] = sd
		}
		for _, fn := range f.Funcs {
			known[fn.Name] = true
			for _, st := range fn.Body {
				collectCalls(st, known)
			}
		}
	}

	var out []Warning
	warn := func(a *spec.Assertion, format string, args ...interface{}) {
		out = append(out, Warning{Assertion: a.Name, Message: fmt.Sprintf(format, args...)})
	}

	for _, a := range assertions {
		seen := map[string]bool{}
		for _, fn := range []string{a.Bound.Begin.Fn, a.Bound.End.Fn} {
			if !known[fn] && !seen[fn] {
				seen[fn] = true
				warn(a, "bound function %q is never defined or called: the automaton can never initialise", fn)
			}
		}
		spec.Walk(a.Expr, func(e spec.Expr) {
			switch ev := e.(type) {
			case *spec.FunctionEvent:
				if ev.ObjC || known[ev.Fn] || seen[ev.Fn] {
					return
				}
				seen[ev.Fn] = true
				warn(a, "event function %q is never defined or called: the event cannot occur", ev.Fn)
			case *spec.InCallStack:
				if !known[ev.Fn] && !seen[ev.Fn] {
					seen[ev.Fn] = true
					warn(a, "incallstack function %q is never defined or called", ev.Fn)
				}
			case *spec.FieldAssignEvent:
				// An unresolvable struct or field means the instrumenter
				// can never match a store to this event.
				if ev.Struct == "" {
					return
				}
				key := ev.Struct + "." + ev.Field
				if seen[key] {
					return
				}
				sd, ok := structs[ev.Struct]
				switch {
				case !ok:
					seen[key] = true
					warn(a, "field event names struct %q, which is not defined: the event cannot occur", ev.Struct)
				case sd.FieldIndex(ev.Field) < 0:
					seen[key] = true
					warn(a, "field event names %s.%s, but struct %q has no field %q: the event cannot occur",
						ev.Struct, ev.Field, ev.Struct, ev.Field)
				}
			}
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Assertion != out[j].Assertion {
			return out[i].Assertion < out[j].Assertion
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// collectCalls records every statically-named callee in a statement tree.
func collectCalls(s csub.Stmt, into map[string]bool) {
	var expr func(e csub.Expr)
	expr = func(e csub.Expr) {
		switch x := e.(type) {
		case *csub.CallExpr:
			if id, ok := x.Fn.(*csub.Ident); ok {
				into[id.Name] = true
			} else {
				expr(x.Fn)
			}
			for _, a := range x.Args {
				expr(a)
			}
		case *csub.BinExpr:
			expr(x.X)
			expr(x.Y)
		case *csub.UnaryExpr:
			expr(x.X)
		case *csub.FieldExpr:
			expr(x.X)
		case *csub.IndexExpr:
			expr(x.X)
			expr(x.Index)
		case *csub.AddrExpr:
			expr(x.X)
		}
	}
	switch st := s.(type) {
	case *csub.DeclStmt:
		if st.Decl.Init != nil {
			expr(st.Decl.Init)
		}
	case *csub.AssignStmt:
		expr(st.LHS)
		if st.RHS != nil {
			expr(st.RHS)
		}
	case *csub.IfStmt:
		expr(st.Cond)
		for _, sub := range st.Then {
			collectCalls(sub, into)
		}
		for _, sub := range st.Else {
			collectCalls(sub, into)
		}
	case *csub.WhileStmt:
		expr(st.Cond)
		for _, sub := range st.Body {
			collectCalls(sub, into)
		}
	case *csub.ReturnStmt:
		if st.Val != nil {
			expr(st.Val)
		}
	case *csub.ExprStmt:
		expr(st.X)
	}
}

// LintSources parses and lints in one step.
func LintSources(sources map[string]string) ([]Warning, error) {
	var files []*csub.File
	for name, src := range sources {
		f, err := csub.Parse(name, src)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	_, combined, err := Sources(sources)
	if err != nil {
		return nil, err
	}
	assertions, err := combined.Parse()
	if err != nil {
		return nil, err
	}
	return Lint(files, assertions), nil
}

// LintProgram runs the syntactic lint and the static model checker
// together: checker verdicts sharpen the lint (a PROVABLY-FAILING
// assertion becomes a warning even when every event function exists,
// and a NEEDS-RUNTIME assertion with undischarged liveness obligations
// surfaces the missing □◇ fairness assumptions), and the full report is
// returned for callers that want the verdicts.
func LintProgram(sources map[string]string, entry string) ([]Warning, *staticcheck.Report, error) {
	warnings, err := LintSources(sources)
	if err != nil {
		return nil, nil, err
	}
	rep, err := staticcheck.CheckSources(sources, entry)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range rep.Results {
		switch r.Verdict {
		case staticcheck.Failing:
			warnings = append(warnings, Warning{
				Assertion: r.Automaton.Name,
				Message:   "assertion is provably failing: " + strings.Join(r.Reasons, "; "),
			})
		case staticcheck.NeedsRuntime:
			for _, o := range r.Obligations {
				if o.Fairness == "" {
					continue
				}
				warnings = append(warnings, Warning{
					Assertion: r.Automaton.Name,
					Message: fmt.Sprintf("%s obligation not provable: assume %s (%s)",
						o.Kind, o.Fairness, o.Detail),
				})
			}
		}
	}
	sort.Slice(warnings, func(i, j int) bool {
		if warnings[i].Assertion != warnings[j].Assertion {
			return warnings[i].Assertion < warnings[j].Assertion
		}
		return warnings[i].Message < warnings[j].Message
	})
	return warnings, rep, nil
}
