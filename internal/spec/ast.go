// Package spec defines the TESLA assertion language: an abstract syntax for
// the grammar of figure 5 of the paper, a parser for the high-level macro
// syntax (TESLA_WITHIN, previously, eventually, TSEQUENCE, …) and a Go
// builder DSL producing the same trees.
//
// Temporal assertions augment standard assertions with keywords such as
// previously and eventually that specify temporal events relative to the
// moment the assertion site is reached (§3.1). An assertion consists of a
// context (§3.2), temporal bounds (§3.3) and an expression (§3.4).
package spec

import (
	"fmt"
	"strings"
)

// Context selects thread-local or global automata state (§3.2).
type Context int

const (
	// PerThread uses implicit per-thread event serialisation.
	PerThread Context = iota
	// Global provides explicit synchronisation for behaviours that span
	// threads.
	Global
)

func (c Context) String() string {
	if c == Global {
		return "global"
	}
	return "per-thread"
}

// StaticKind distinguishes the two static (bound) event forms.
type StaticKind int

const (
	// StaticCall is `call(fnName)`: entry into fnName.
	StaticCall StaticKind = iota
	// StaticReturn is `returnfrom(fnName)`: return from fnName.
	StaticReturn
)

// StaticEvent is a bound event: a bare function entry or return with no
// argument patterns (grammar rule staticExpr).
type StaticEvent struct {
	Kind StaticKind
	Fn   string
}

func (e StaticEvent) String() string {
	if e.Kind == StaticCall {
		return fmt.Sprintf("call(%s)", e.Fn)
	}
	return fmt.Sprintf("returnfrom(%s)", e.Fn)
}

// Bound delimits the period during which an assertion's automata may exist
// (§3.3). Bounds let libtesla control its memory footprint: automata are
// initialised at Begin and finalised at End.
type Bound struct {
	Begin StaticEvent
	End   StaticEvent
}

// WithinBound is the TESLA_WITHIN(fn, …) bound: from entry into fn until
// return from it.
func WithinBound(fn string) Bound {
	return Bound{
		Begin: StaticEvent{Kind: StaticCall, Fn: fn},
		End:   StaticEvent{Kind: StaticReturn, Fn: fn},
	}
}

func (b Bound) String() string {
	return fmt.Sprintf("%s, %s", b.Begin, b.End)
}

// Assertion is a complete temporal assertion: context, bound, expression.
type Assertion struct {
	// Name identifies the assertion; by convention "file:line" of the
	// assertion site.
	Name    string
	Context Context
	Bound   Bound
	Expr    Expr
	// Strict, when set, makes every instrumented event significant: an
	// instance observing an event its state cannot accept is a violation
	// (the `strict` modifier; the default is `conditional`).
	Strict bool
}

func (a *Assertion) String() string {
	ctx := "TESLA_PERTHREAD"
	if a.Context == Global {
		ctx = "TESLA_GLOBAL"
	}
	expr := a.Expr.String()
	if a.Strict {
		// Printed in the parseable modifier form so manifests
		// round-trip.
		expr = "strict(" + expr + ")"
	}
	return fmt.Sprintf("%s(%s, %s)", ctx, a.Bound, expr)
}

// Expr is a TESLA expression (grammar rule expr): a concrete event, an
// operator over sub-expressions, or a modifier application.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Sequence is TSEQUENCE(e₁, …, eₙ): the sub-expressions in order.
// previously(x) and eventually(x) are macros expanding to sequences that
// include the assertion-site event (§3.4.1 “Assertion site”).
type Sequence struct {
	Exprs []Expr
}

func (*Sequence) isExpr() {}

func (s *Sequence) String() string {
	return "TSEQUENCE(" + joinExprs(s.Exprs) + ")"
}

// BoolOp is a boolean operator over expressions.
type BoolOp int

const (
	// OrOp is inclusive or: at least one operand occurred; it is not an
	// error for both to occur (§3.4.2). Implemented by a cross-product
	// automaton tracking the operands independently.
	OrOp BoolOp = iota
	// XorOp is exclusive or: exactly one operand may occur.
	XorOp
)

func (o BoolOp) String() string {
	if o == XorOp {
		return "^"
	}
	return "||"
}

// BoolExpr is e₁ op e₂ (op … )*.
type BoolExpr struct {
	Op    BoolOp
	Exprs []Expr
}

func (*BoolExpr) isExpr() {}

func (b *BoolExpr) String() string {
	parts := make([]string, len(b.Exprs))
	for i, e := range b.Exprs {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " "+b.Op.String()+" ") + ")"
}

// Optional marks a sub-expression that may be skipped.
type Optional struct {
	Expr Expr
}

func (*Optional) isExpr() {}

func (o *Optional) String() string { return "optional(" + o.Expr.String() + ")" }

// ATLeast is ATLEAST(n, e₁, …, eₖ): at least n occurrences drawn from the
// listed events, in any order (fig. 8 uses ATLEAST(0, …) to instrument a
// large API surface for tracing).
type ATLeast struct {
	Min   int
	Exprs []Expr
}

func (*ATLeast) isExpr() {}

func (a *ATLeast) String() string {
	return fmt.Sprintf("ATLEAST(%d, %s)", a.Min, joinExprs(a.Exprs))
}

// InCallStack is incallstack(fn): the assertion site is reached while fn is
// on the call stack (fig. 7's ufs_readdir case).
type InCallStack struct {
	Fn string
}

func (*InCallStack) isExpr() {}

func (i *InCallStack) String() string { return fmt.Sprintf("incallstack(%s)", i.Fn) }

// AssertionSite is the concrete event of program execution reaching the
// assertion's source location. It binds every scope variable the assertion
// names.
type AssertionSite struct{}

func (*AssertionSite) isExpr() {}

func (*AssertionSite) String() string { return "TESLA_ASSERTION_SITE" }

// InstrSide selects where function instrumentation is added (§4.2): callee
// context instruments the target function's entry and returns (requires its
// source); caller context instruments around call sites (works for
// libraries that cannot be recompiled).
type InstrSide int

const (
	// SideDefault lets the instrumenter pick (callee when the function is
	// defined in the instrumented module, caller otherwise).
	SideDefault InstrSide = iota
	// SideCallee forces callee-side instrumentation.
	SideCallee
	// SideCaller forces caller-side instrumentation.
	SideCaller
)

// FuncEventKind distinguishes call (entry) from return (exit) events.
type FuncEventKind int

const (
	// FuncEntry observes a call: arguments are available.
	FuncEntry FuncEventKind = iota
	// FuncExit observes a return: arguments and return value available.
	FuncExit
)

// FunctionEvent is a concrete function call or return event, optionally
// constrained by argument patterns and a return value (§3.4.1).
type FunctionEvent struct {
	Fn   string
	Kind FuncEventKind
	// Args patterns; empty means "any arguments".
	Args []ArgPattern
	// Ret, when non-nil, constrains the return value (the `fn(args) == v`
	// grammar form); only meaningful for FuncExit.
	Ret *ArgPattern
	// Side selects caller/callee instrumentation (modifiers).
	Side InstrSide
	// ObjC marks an Objective-C message-send event: Fn is the selector
	// and Args[0] matches the receiver (§4.3).
	ObjC bool
}

func (*FunctionEvent) isExpr() {}

func (f *FunctionEvent) String() string {
	var b strings.Builder
	if f.ObjC {
		// Message sends print in keyword-selector form so they
		// reparse: [recv part1: arg1 part2: arg2] — or [recv sel]
		// for unary selectors.
		b.WriteString("[")
		if len(f.Args) > 0 {
			b.WriteString(f.Args[0].String())
			b.WriteString(" ")
		}
		if parts := strings.Split(f.Fn, ":"); len(parts) > 1 && parts[len(parts)-1] == "" {
			rest := f.Args[1:]
			for i, part := range parts[:len(parts)-1] {
				if i > 0 {
					b.WriteString(" ")
				}
				b.WriteString(part)
				b.WriteString(":")
				if i < len(rest) {
					b.WriteString(" ")
					b.WriteString(rest[i].String())
				}
			}
		} else {
			b.WriteString(f.Fn)
		}
		b.WriteString("]")
	} else {
		b.WriteString(f.Fn)
		b.WriteString("(")
		for i, a := range f.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	}
	inner := b.String()
	switch {
	case f.Ret != nil:
		inner = fmt.Sprintf("%s == %s", inner, f.Ret)
	case f.ObjC && f.Kind == FuncEntry:
		// The bracket form already denotes a message send.
	case f.Kind == FuncEntry:
		inner = fmt.Sprintf("call(%s)", inner)
	default:
		inner = fmt.Sprintf("returnfrom(%s)", inner)
	}
	switch f.Side {
	case SideCallee:
		inner = "callee(" + inner + ")"
	case SideCaller:
		inner = "caller(" + inner + ")"
	}
	return inner
}

// AssignOp is the kind of structure-field assignment observed.
type AssignOp int

const (
	// OpAssign is simple assignment: s.foo = v.
	OpAssign AssignOp = iota
	// OpAddAssign is compound assignment: s.foo += v.
	OpAddAssign
	// OpIncr is increment: s.foo++.
	OpIncr
)

func (o AssignOp) String() string {
	switch o {
	case OpAddAssign:
		return "+="
	case OpIncr:
		return "++"
	default:
		return "="
	}
}

// FieldAssignEvent is the concrete event of assignment to a structure field
// (§3.4.1 “Field assignment”).
type FieldAssignEvent struct {
	// Struct and Field name the C structure type and member.
	Struct string
	Field  string
	Op     AssignOp
	// Target matches the structure instance being written.
	Target ArgPattern
	// Value matches the assigned value (ignored for OpIncr).
	Value ArgPattern
}

func (*FieldAssignEvent) isExpr() {}

func (f *FieldAssignEvent) String() string {
	lhs := fmt.Sprintf("%s.%s", f.Target, f.Field)
	if f.Struct != "" {
		// The struct qualifier keeps the event unambiguous when the
		// assertion is reparsed from a manifest, outside the scope
		// that originally resolved the variable's type.
		lhs = f.Struct + "::" + lhs
	}
	if f.Op == OpIncr {
		return lhs + "++"
	}
	return fmt.Sprintf("%s %s %s", lhs, f.Op, f.Value)
}

// PatternKind classifies argument patterns (grammar rule val).
type PatternKind int

const (
	// PatAny is ANY(type): a wildcard matching any value.
	PatAny PatternKind = iota
	// PatConst matches a specific constant value.
	PatConst
	// PatVar matches a named variable bound from the assertion's scope;
	// variables become automaton key slots.
	PatVar
	// PatFlags is flags(F): the argument must have all bits of F set
	// (minimal bitfield).
	PatFlags
	// PatBitmask is bitmask(F): the argument must have no bits outside F
	// (maximal bitfield).
	PatBitmask
)

// ArgPattern matches one argument or return value.
type ArgPattern struct {
	Kind  PatternKind
	Const int64
	Var   string
	// CType records the C type named in ANY(type), for documentation.
	CType string
	// Indirect matches the value *pointed to* by the argument, using the
	// C address-of operator form (&x). This supports APIs that pass
	// values out by pointer, using return values for error codes.
	Indirect bool
}

func (p ArgPattern) String() string {
	var s string
	switch p.Kind {
	case PatAny:
		t := p.CType
		if t == "" {
			t = "?"
		}
		s = fmt.Sprintf("ANY(%s)", t)
	case PatConst:
		s = fmt.Sprintf("%d", p.Const)
	case PatVar:
		s = p.Var
	case PatFlags:
		s = fmt.Sprintf("flags(0x%x)", p.Const)
	case PatBitmask:
		s = fmt.Sprintf("bitmask(0x%x)", p.Const)
	}
	if p.Indirect {
		s = "&" + s
	}
	return s
}

// Matches reports whether the pattern accepts the value (for PatVar the
// caller must resolve the binding; Matches treats it as accepting any).
func (p ArgPattern) Matches(v int64) bool {
	switch p.Kind {
	case PatConst:
		return v == p.Const
	case PatFlags:
		return v&p.Const == p.Const
	case PatBitmask:
		return v&^p.Const == 0
	default:
		return true
	}
}

func joinExprs(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// Vars returns the scope-variable names referenced by the expression, in
// first-appearance order. These become the automaton's key slots.
func Vars(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(p ArgPattern) {
		if p.Kind == PatVar && !seen[p.Var] {
			seen[p.Var] = true
			out = append(out, p.Var)
		}
	}
	Walk(e, func(e Expr) {
		switch ev := e.(type) {
		case *FunctionEvent:
			for _, a := range ev.Args {
				add(a)
			}
			if ev.Ret != nil {
				add(*ev.Ret)
			}
		case *FieldAssignEvent:
			add(ev.Target)
			add(ev.Value)
		}
	})
	return out
}

// Walk applies fn to e and every sub-expression, depth-first.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case *Sequence:
		for _, sub := range v.Exprs {
			Walk(sub, fn)
		}
	case *BoolExpr:
		for _, sub := range v.Exprs {
			Walk(sub, fn)
		}
	case *Optional:
		Walk(v.Expr, fn)
	case *ATLeast:
		for _, sub := range v.Exprs {
			Walk(sub, fn)
		}
	}
}
