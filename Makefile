# Developer entry points. `make ci` is what the build gate runs.

GO ?= go

.PHONY: ci fmt vet build test race check bench

ci: fmt vet build test race check

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The monitor's global-context path and the trace recorder are exercised
# from many goroutines; keep them provably race-free.
race:
	$(GO) test -race ./...

# The static checker over the demo programs: safe.c must pass (exit 0),
# doomed.c must be rejected (exit 1).
check: build
	$(GO) run ./cmd/tesla-check examples/staticcheck/testdata/safe.c
	! $(GO) run ./cmd/tesla-check examples/staticcheck/testdata/doomed.c

bench:
	$(GO) run ./cmd/tesla-bench -fig elision -files 8
