package agg

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/spec"
	"tesla/internal/trace"
)

// startServer runs an in-process server on a listener and returns it with
// its dial address.
func startServer(t *testing.T, opts ServerOpts) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	sock := filepath.Join(dir, "agg.sock")
	ln, err := Listen(sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(NewStore(StoreOpts{Seed: 7}), opts)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, sock
}

// producerTrace builds one delta trace with a known event mix.
func producerTrace(seqBase uint64, n int) *trace.Trace {
	tr := &trace.Trace{FormatVersion: trace.Version}
	for i := 0; i < n; i++ {
		ev := trace.Event{Seq: seqBase + uint64(i) + 1, Thread: -1, Class: "lock"}
		switch i % 4 {
		case 0, 1:
			ev.Kind = trace.KindTransition
			ev.From, ev.To, ev.Symbol = 0, 1, "acquire"
		case 2:
			ev.Kind = trace.KindAccept
		case 3:
			ev.Kind = trace.KindFail
			ev.Symbol = "release"
			ev.Verdict = core.VerdictNoInstance
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAggGate is the fleet smoke: several concurrent producers stream a
// known corpus, one disconnects mid-stream without a bye, and the fleet
// query must report exact counts — ingested + dropped == sent per clean
// producer, the disconnect marked, nothing lost silently.
func TestAggGate(t *testing.T) {
	srv, sock := startServer(t, ServerOpts{})

	const producers = 4
	const framesPer = 8
	const eventsPer = 64

	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			c, err := Dial(sock, ClientOpts{Tool: "agg-test", Process: fmt.Sprintf("proc-%d", p)})
			if err != nil {
				errs <- err
				return
			}
			for f := 0; f < framesPer; f++ {
				if err := c.SendTrace(producerTrace(uint64(p*1000000+f*1000), eventsPer)); err != nil {
					errs <- err
					return
				}
			}
			if err := c.SendHealth([]core.ClassHealth{{Class: "lock", Live: 1, Health: core.Health{Violations: uint64(p)}}}); err != nil {
				errs <- err
				return
			}
			errs <- c.Close()
		}(p)
	}
	for p := 0; p < producers; p++ {
		if err := <-errs; err != nil {
			t.Fatalf("producer: %v", err)
		}
	}

	// One more producer connects, streams one frame, then vanishes without
	// a bye: a mid-stream disconnect the fleet must mark, not hide.
	network, address := SplitAddr(sock)
	conn, err := net.Dial(network, address)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	fw := trace.NewFrameWriter(conn)
	hello, _ := json.Marshal(Hello{Proto: ProtoVersion, Codec: trace.Version, Tool: "agg-test", Process: "proc-lost"})
	if _, err := conn.Write([]byte(Magic)); err != nil {
		t.Fatal(err)
	}
	if err := fw.Frame(FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	if kind, _, err := trace.NewFrameReader(conn).Next(); err != nil || kind != FrameHelloAck {
		t.Fatalf("no ack for raw producer: kind=%d err=%v", kind, err)
	}
	lost := producerTrace(9000000, 16)
	var payload strings.Builder
	payload.WriteByte(byte(len(lost.Events))) // single-byte uvarint for 16
	if err := trace.Write(&payload, lost); err != nil {
		t.Fatal(err)
	}
	if err := fw.Frame(FrameTrace, []byte(payload.String())); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	store := srv.Store()
	waitFor(t, "all producers accounted", func() bool {
		sum := store.Fleet()
		return sum.CleanProducers == producers && sum.Disconnected == 1 &&
			sum.TotalEvents == uint64(producers*framesPer*eventsPer+16)
	})

	sum := store.Fleet()
	if len(sum.Producers) != producers+1 {
		t.Fatalf("producer count: %+v", sum.Producers)
	}
	for _, ps := range sum.Producers {
		if ps.Process == "proc-lost" {
			if ps.Clean || ps.Disconnects != 1 || ps.Events != 16 {
				t.Fatalf("lost producer misreported: %+v", ps)
			}
			continue
		}
		// The exact-accounting invariant, per clean producer: what the
		// server ingested plus what it dropped is exactly what the bye
		// says was sent.
		if !ps.Clean {
			t.Fatalf("producer not clean: %+v", ps)
		}
		if ps.Events+ps.DroppedEvents != ps.SentEvents {
			t.Fatalf("accounting leak: ingested %d + dropped %d != sent %d (%s)",
				ps.Events, ps.DroppedEvents, ps.SentEvents, ps.Process)
		}
		if ps.SentEvents != framesPer*eventsPer {
			t.Fatalf("producer sent %d events, want %d", ps.SentEvents, framesPer*eventsPer)
		}
	}

	// The aggregation itself: each clean producer's corpus is framesPer
	// frames of eventsPer events in a fixed 2:1:1 mix, plus the lost
	// producer's 16.
	perProducer := uint64(framesPer * eventsPer)
	wantTransitions := (perProducer/2)*producers + 8
	cls := sum.Classes
	if len(cls) != 1 || cls[0].Class != "lock" || cls[0].Transitions != wantTransitions {
		t.Fatalf("class rollup: %+v (want %d transitions)", cls, wantTransitions)
	}

	// Health arrived from every clean producer; violations sum 0+1+2+3.
	hs := store.Health()
	if len(hs) != 1 || hs[0].Live != producers || hs[0].Violations != 6 {
		t.Fatalf("fleet health: %+v", hs)
	}

	// Query-role round trip over the wire.
	qc, err := net.Dial(network, address)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	qw := trace.NewFrameWriter(qc)
	qhello, _ := json.Marshal(Hello{Proto: ProtoVersion, Codec: trace.Version, Tool: "agg-test", Query: true})
	qc.Write([]byte(Magic))
	qw.Frame(FrameHello, qhello)
	qr := trace.NewFrameReader(qc)
	if kind, _, err := qr.Next(); err != nil || kind != FrameHelloAck {
		t.Fatalf("query ack: kind=%d err=%v", kind, err)
	}
	q, _ := json.Marshal(Query{Q: "failures"})
	qw.Frame(FrameQuery, q)
	kind, res, err := qr.Next()
	if err != nil || kind != FrameResult {
		t.Fatalf("query result: kind=%d err=%v", kind, err)
	}
	var sites []FailureSite
	if err := json.Unmarshal(res, &sites); err != nil {
		t.Fatalf("result not JSON: %v\n%s", err, res)
	}
	if len(sites) != 1 || sites[0].Class != "lock" || len(sites[0].PerProcess) != producers+1 {
		t.Fatalf("failures over the wire: %+v", sites)
	}
}

// TestVersionRejection: a mismatched codec or proto version is refused at
// the handshake with a message naming the producing tool and both sides'
// versions — satellite 1's wire half.
func TestVersionRejection(t *testing.T) {
	_, sock := startServer(t, ServerOpts{})
	network, address := SplitAddr(sock)
	conn, err := net.Dial(network, address)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, _ := json.Marshal(Hello{Proto: ProtoVersion, Codec: trace.Version + 1, Tool: "old-tesla-run", Process: "p"})
	conn.Write([]byte(Magic))
	trace.NewFrameWriter(conn).Frame(FrameHello, hello)
	kind, payload, err := trace.NewFrameReader(conn).Next()
	if err != nil || kind != FrameHelloAck {
		t.Fatalf("want hello ack, got kind=%d err=%v", kind, err)
	}
	var ack HelloAck
	if err := json.Unmarshal(payload, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.OK {
		t.Fatal("mismatched codec version was accepted")
	}
	for _, want := range []string{"old-tesla-run", fmt.Sprintf("codec v%d", trace.Version+1), fmt.Sprintf("codec v%d", trace.Version)} {
		if !strings.Contains(ack.Message, want) {
			t.Fatalf("rejection %q does not name %q", ack.Message, want)
		}
	}

	// The Dial helper surfaces the same rejection as an error.
	if _, err := dialWithCodec(sock); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("Dial accepted a rejected handshake: %v", err)
	}
}

// dialWithCodec exercises Dial against a one-shot server that always
// rejects the handshake, mimicking a version-mismatch verdict.
func dialWithCodec(realSock string) (*Client, error) {
	ln, err := net.Listen("unix", realSock+".reject")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		var magic [len(Magic)]byte
		if _, err := io.ReadFull(conn, magic[:]); err != nil {
			return
		}
		trace.NewFrameReader(conn).Next() // hello
		ack, _ := json.Marshal(HelloAck{OK: false, Message: "tesla-agg rejected you: upgrade"})
		trace.NewFrameWriter(conn).Frame(FrameHelloAck, ack)
	}()
	return Dial(realSock+".reject", ClientOpts{Tool: "t", Process: "p"})
}

// TestServerQueueDrop: with a tiny queue and a blocked worker the server
// drops new frames and charges the producer the exact declared event
// counts.
func TestServerQueueDrop(t *testing.T) {
	store := NewStore(StoreOpts{})
	// Exercise DropFrame directly — the queue race itself is timing-bound;
	// the contract under test is the accounting arithmetic.
	tr := producerTrace(0, 10)
	var payload strings.Builder
	payload.WriteByte(10)
	if err := trace.Write(&payload, tr); err != nil {
		t.Fatal(err)
	}
	store.DropFrame("p", FrameEventCount([]byte(payload.String())))
	sum := store.Fleet()
	if sum.DroppedFrames != 1 || sum.DroppedEvents != 10 {
		t.Fatalf("drop accounting: %+v", sum)
	}

	// And through a real connection with Queue=1 and a storm of frames:
	// whatever was not ingested must appear in the drop counters so the
	// invariant still sums exactly.
	srv, sock := startServer(t, ServerOpts{Queue: 1})
	c, err := Dial(sock, ClientOpts{Tool: "t", Process: "stormy", Buffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := c.SendTrace(producerTrace(uint64(i*100), 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Store()
	waitFor(t, "storm accounted", func() bool {
		for _, ps := range st.Fleet().Producers {
			if ps.Process == "stormy" && ps.Clean {
				return true
			}
		}
		return false
	})
	for _, ps := range st.Fleet().Producers {
		if ps.Process != "stormy" {
			continue
		}
		if ps.Events+ps.DroppedEvents != ps.SentEvents {
			t.Fatalf("storm accounting leak: ingested %d + dropped %d != sent %d",
				ps.Events, ps.DroppedEvents, ps.SentEvents)
		}
		if ps.SentEvents+c.Stats().DroppedEvents != 200*32 {
			t.Fatalf("client accounting leak: sent %d + client-dropped %d != %d",
				ps.SentEvents, c.Stats().DroppedEvents, 200*32)
		}
	}
}

// TestClientReconnect: a connection killed mid-stream is re-established
// transparently; every frame still arrives or is counted dropped.
func TestClientReconnect(t *testing.T) {
	srv, sock := startServer(t, ServerOpts{})
	c, err := Dial(sock, ClientOpts{Tool: "t", Process: "bouncy", Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendTrace(producerTrace(0, 8)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first frame", func() bool { return c.Stats().SentFrames == 1 })

	// Kill every live server-side connection out from under the client.
	srv.mu.Lock()
	for conn := range srv.conns {
		conn.Close()
	}
	srv.mu.Unlock()

	if err := c.SendTrace(producerTrace(1000, 8)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close after reconnect: %v", err)
	}
	if c.Stats().Reconnects == 0 {
		t.Fatal("no reconnect recorded")
	}
	st := srv.Store()
	waitFor(t, "reconnected producer clean", func() bool {
		for _, ps := range st.Fleet().Producers {
			if ps.Process == "bouncy" && ps.Clean {
				return true
			}
		}
		return false
	})
	for _, ps := range st.Fleet().Producers {
		if ps.Process == "bouncy" && ps.Events+ps.DroppedEvents != ps.SentEvents {
			t.Fatalf("reconnect accounting leak: %+v", ps)
		}
	}
}

// mustCompile builds one automaton for the batched-producer e2e.
func mustCompile(t *testing.T, name, src string) *automata.Automaton {
	t.Helper()
	a, err := spec.Parse(name, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := automata.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	return auto
}

// TestAggBatchedProducer runs the real producer stack — batched monitor
// threads staging into trace rings, the publisher cutting live deltas with
// CutSince while events fly — against an in-process server, and checks that
// the exact-accounting invariant survives batching: per producer,
// ingested + dropped == sent, and every event the recorder assigned a
// sequence number to is either ingested or charged to a drop counter
// (client, server or ring). Tiny rings plus a pre-publisher burst force a
// known-nonzero ring loss, so the loss path is exercised, not just zero.
func TestAggBatchedProducer(t *testing.T) {
	for _, bs := range []int{1, 7, 64} {
		t.Run(fmt.Sprintf("batch%d", bs), func(t *testing.T) {
			srv, sock := startServer(t, ServerOpts{})
			autos := []*automata.Automaton{mustCompile(t, "a1", `TESLA_SYSCALL_PREVIOUSLY(chk(x) == 0)`)}
			rec := trace.NewRecorder(autos, 64)
			m := monitor.MustNew(monitor.Options{Handler: rec, Tap: rec, BatchSize: bs}, autos...)
			c, err := Dial(sock, ClientOpts{Tool: "agg-test", Process: "batchy"})
			if err != nil {
				t.Fatal(err)
			}
			pub := NewPublisher(rec, c)

			// Overrun the ring before the first cut: the stream must open
			// with explicit loss, not silence.
			burst := m.NewThread()
			for i := 0; i < 100; i++ {
				burst.Call("chk", core.Value(i))
			}
			burst.Flush()
			pub.Start(time.Millisecond)

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				th := m.NewThread()
				wg.Add(1)
				go func(th *monitor.Thread, g int) {
					defer wg.Done()
					for r := 0; r < 150; r++ {
						v := core.Value(g*1000 + r)
						th.Call("amd64_syscall")
						th.Call("chk", v)
						th.Return("chk", 0, v)
						th.Site("a1", v)
						th.Return("amd64_syscall", 0)
						if r%17 == 0 {
							th.Flush()
						}
					}
				}(th, g)
			}
			wg.Wait()
			// Process exit: drain the staged rings, then finish the stream —
			// final delta, health ride-along, bye — as tesla-run does.
			if err := m.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}
			if err := pub.Stop(); err != nil {
				t.Fatalf("final flush: %v", err)
			}
			if err := c.SendHealth(m.Health()); err != nil {
				t.Fatalf("health: %v", err)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			recorded := rec.EventCount()

			store := srv.Store()
			waitFor(t, "batched producer clean", func() bool {
				for _, ps := range store.Fleet().Producers {
					if ps.Process == "batchy" && ps.Clean {
						return true
					}
				}
				return false
			})
			for _, ps := range store.Fleet().Producers {
				if ps.Process != "batchy" {
					continue
				}
				if ps.Events+ps.DroppedEvents != ps.SentEvents {
					t.Fatalf("batch %d: accounting leak: ingested %d + dropped %d != sent %d",
						bs, ps.Events, ps.DroppedEvents, ps.SentEvents)
				}
				if ps.RingDropped == 0 {
					t.Fatalf("batch %d: burst past ring capacity reported no ring loss", bs)
				}
				got := ps.Events + ps.DroppedEvents + ps.ClientDropped + ps.RingDropped
				if got != recorded {
					t.Fatalf("batch %d: conservation leak: ingested %d + server-dropped %d + client-dropped %d + ring-lost %d != recorded %d",
						bs, ps.Events, ps.DroppedEvents, ps.ClientDropped, ps.RingDropped, recorded)
				}
			}
		})
	}
}
