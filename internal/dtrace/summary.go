package dtrace

import (
	"fmt"

	"tesla/internal/trace"
)

// Summarize rebuilds the kernel default handler's aggregations from a
// recorded trace, offline: the same per-(class, edge) transition counts,
// acceptance counts and failure counts that a live dtrace.Handler would
// have accumulated, without re-running anything. This is the bridge from
// the trace subsystem back to the paper's DTrace-style reporting — record
// once in production, aggregate later on a developer machine.
func Summarize(tr *trace.Trace) *Handler {
	h := NewHandler(nil)
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Kind {
		case trace.KindTransition:
			h.Transitions.Add(h.key(ev.Class, fmt.Sprintf("%d->%d", ev.From, ev.To), ev.Symbol), 1)
		case trace.KindAccept:
			h.Accepts.Add(h.key(ev.Class), 1)
		case trace.KindFail:
			h.Failures.Add(h.key(ev.Class, ev.Verdict.String()), 1)
		}
	}
	return h
}
