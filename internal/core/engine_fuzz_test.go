package core

import (
	"reflect"
	"testing"
)

// FuzzCompiledStep feeds fuzzer-chosen event streams through a compiled
// engine store and the interpreted NoEngine reference and requires identical
// observable state after every event. Each input byte encodes one event —
// symbol choice in the low bits, key material in the high bits — so the
// fuzzer can reach clone chains, strict violations, required-site misses,
// overflow and cleanup expunges in any order. This is the coverage-guided
// companion to the seeded sweep in engine_diff_test.go and runs in
// `make fuzz-smoke`.
func FuzzCompiledStep(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x12, 0x34, 0x56, 0x78})
	f.Add([]byte{0xc1, 0x02, 0x43, 0x84, 0xc5, 0x06, 0x47, 0x88})
	f.Add([]byte{0x03, 0x43, 0x83, 0xc3, 0x03, 0x43, 0x83, 0xc3, 0x03})

	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit, KeyMask: 1}}
	mid := TransitionSet{{From: 1, To: 2, KeyMask: 3}, {From: 2, To: 3, KeyMask: 3}, {From: 3, To: 2, KeyMask: 3}}
	site := TransitionSet{{From: 2, To: 4, KeyMask: 1}}
	exit := TransitionSet{{From: 1, To: 7, Flags: TransCleanup}, {From: 2, To: 7, Flags: TransCleanup}, {From: 4, To: 7, Flags: TransCleanup}}

	type symbol struct {
		name  string
		flags SymbolFlags
		ts    TransitionSet
	}
	symbols := []symbol{
		{"enter", 0, enter},
		{"mid", 0, mid},
		{"mid", SymStrict, mid},
		{"site", SymRequired, site},
		{"exit", 0, exit},
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			return
		}
		for _, shards := range []int{1, 4} {
			cls := &Class{Name: "fuzzstep", States: 8, Limit: 6, Overflow: EvictOldest}
			href := &noteHandler{}
			heng := &noteHandler{}
			ref := NewStoreOpts(StoreOpts{Context: Global, Handler: href, Shards: shards, NoEngine: true})
			eng := NewStoreOpts(StoreOpts{Context: Global, Handler: heng, Shards: shards})
			ref.Register(cls)
			eng.Register(cls)

			plans := make([]*SymbolPlan, len(symbols))
			for i, sym := range symbols {
				plans[i] = NewSymbolPlan(cls, sym.name, sym.flags, sym.ts)
			}

			for i, b := range data {
				sym := int(b) % len(symbols)
				key := Key{}
				if b&0x40 != 0 {
					key = key.Set(0, Value(b>>6))
				}
				if b&0x20 != 0 {
					key = key.Set(1, Value(b>>5&1))
				}
				errRef := ref.UpdateStatePlan(plans[sym], key)
				errEng := eng.UpdateStatePlan(plans[sym], key)
				if (errRef == nil) != (errEng == nil) {
					t.Fatalf("byte %d (%#x, shards %d): verdict diverged: interpreted=%v engine=%v",
						i, b, shards, errRef, errEng)
				}
				if lr, le := ref.LiveCount(cls), eng.LiveCount(cls); lr != le {
					t.Fatalf("byte %d (%#x, shards %d): live diverged: interpreted=%d engine=%d",
						i, b, shards, lr, le)
				}
				if ir, ie := instSet(ref, cls), instSet(eng, cls); !reflect.DeepEqual(ir, ie) {
					t.Fatalf("byte %d (%#x, shards %d): instances diverged:\ninterpreted: %v\nengine:      %v",
						i, b, shards, ir, ie)
				}
				if nr, ne := href.sorted(), heng.sorted(); !reflect.DeepEqual(nr, ne) {
					t.Fatalf("byte %d (%#x, shards %d): notifications diverged:\ninterpreted: %v\nengine:      %v",
						i, b, shards, nr, ne)
				}
			}
		}
	})
}
