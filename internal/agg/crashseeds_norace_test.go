//go:build !race

package agg

// crashSeeds is how many randomized crash schedules TestCrashSchedules
// runs — well over the crash-gate's required kill-point count.
const crashSeeds = 36
