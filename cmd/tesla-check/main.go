// tesla-check is the static model checker: it compiles csub source files,
// walks the linked program's control-flow graph against every assertion
// automaton, and classifies each assertion as PROVABLY-SAFE (its
// instrumentation can be elided), PROVABLY-FAILING (a compile-time error:
// the assertion cannot hold in any completing run) or NEEDS-RUNTIME.
//
// Usage:
//
//	tesla-check [-entry main] [-dot] [-q] file.c...
//
// The exit status is 1 when any assertion is PROVABLY-FAILING, 2 on usage
// or compilation errors, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"tesla/internal/staticcheck"
	"tesla/internal/toolchain/cli"
)

func main() {
	tool := cli.New("tesla-check", "[-entry main] [-dot] [-q] file.c...")
	entry := flag.String("entry", "main", "program entry point the analysis starts from")
	dot := flag.Bool("dot", false, "dump each assertion's explored product graph as Graphviz")
	quiet := flag.Bool("q", false, "only print non-SAFE assertions")
	sources := tool.LoadSources(tool.ParseSourceArgs())

	rep, err := staticcheck.CheckSources(sources, *entry)
	if err != nil {
		tool.FatalCode(2, err)
	}

	for _, r := range rep.Results {
		if *quiet && r.Verdict == staticcheck.Safe {
			continue
		}
		fmt.Printf("%s: %s\n", r.Automaton.Name, r.Verdict)
		for _, reason := range r.Reasons {
			fmt.Printf("\t%s\n", reason)
		}
		if *dot {
			fmt.Print(r.Dot())
		}
	}
	safe, failing, runtime := rep.Counts()
	fmt.Printf("%d assertions: %d provably safe, %d provably failing, %d need runtime checking\n",
		safe+failing+runtime, safe, failing, runtime)
	if failing > 0 {
		os.Exit(1)
	}
}
