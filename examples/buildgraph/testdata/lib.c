int checksum(int x) { return x % 97; }
