// tesla-run compiles, instruments and executes a csub program under TESLA:
// the full §4 workflow in one command. Violations are reported as they are
// detected; with -failstop (TESLA's default behaviour in the paper) the
// first violation aborts execution. With -trace, every program and
// automaton lifecycle event is recorded to a trace file for offline replay
// and shrinking with tesla-trace. The build runs through the parallel
// content-hash-cached graph: -j bounds the workers, -cache persists
// artifacts across runs, and -explain reports which graph nodes were
// cache hits versus rebuilt.
//
// With -agg, the run additionally streams its lifecycle events live to a
// tesla-agg fleet aggregation server: deltas are cut from the trace rings
// on an interval (-agg-flush) and sent without ever blocking the monitored
// program, and the final health counters ride along at exit. -agg implies
// recording (an in-memory recorder is created when -trace is absent).
//
// Crash durability: -trace-spool writes the trace incrementally to a
// segmented write-ahead spool, flushed every -spool-flush, so a SIGKILL
// loses at most one flush interval of events (plus any backlog an
// in-flight flush had not yet appended) — tesla-trace reads the
// spool directory like a trace file. -agg-spool write-ahead-logs the
// fleet stream the same way; after a crash, `tesla-agg resend` replays
// the spool and closes the run's fleet accounting exactly once (it
// requires a stable -agg-process identity). Both flags refuse a
// non-empty directory: a leftover spool is an earlier run's evidence.
//
// Usage:
//
//	tesla-run [-plain] [-failstop] [-debug] [-trace out.tr] [-entry main]
//	          [-trace-spool dir] [-spool-flush dur] [-spool-sync policy]
//	          [-agg addr] [-agg-flush dur] [-agg-process name]
//	          [-agg-spool dir]
//	          [-j N] [-cache dir] [-explain] [-health] [-failure mode]
//	          [-overflow policy] [-quarantine-after K] [-rearm N]
//	          [-shards N] [-batch N] [-noengine] [-arg N]... file.c...
//
// -batch N switches the monitor to the batched per-thread event plane: each
// thread stages up to N events in a local ring and applies them to the
// global store in runs, amortising stripe locking. 0 (the default) keeps
// the synchronous reference path. Verdicts are identical either way; batch
// only changes when events are applied, never whether.
//
// -noengine pins the monitor to the interpreted transition walk instead of
// the compiled step engines — the byte-identical reference path the
// compile-gate differential proves equivalent. Useful for isolating an
// engine bug in the field and for measuring the interpreter tax.
//
// Exit status distinguishes the three failure layers: 1 for assertion
// violations (the monitored program is wrong), 2 for build/usage errors (the
// input is wrong), 3 for monitor-internal degradation on an otherwise clean
// run (the monitor itself hit overflow, quarantine, suppression or handler
// faults — its verdict is incomplete and must not be trusted as a pass).
// Aggregation losses count as degradation too: a run whose stream to the
// fleet dropped frames exits 3 unless a violation (1) outranks it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tesla/internal/agg"
	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
	"tesla/internal/toolchain/cli"
	"tesla/internal/trace"
)

func main() {
	tool := cli.New("tesla-run",
		"[-plain] [-failstop] [-debug] [-trace out.tr] [-agg addr] [-j N] [-cache dir] [-explain] [-health] [-failure mode] [-overflow policy] [-shards N] [-batch N] [-noengine] [-arg N]... file.c...")
	plain := flag.Bool("plain", false, "run without instrumentation (Default build)")
	failstop := flag.Bool("failstop", false, "abort on the first violation")
	debug := flag.Bool("debug", false, "trace automaton events (TESLA_DEBUG-style output)")
	tracePath := flag.String("trace", "", "record an event trace to this file (.json for JSON, else binary)")
	traceCap := flag.Int("trace-buf", 0, "per-thread trace ring capacity in events (0 = default)")
	traceSpool := flag.String("trace-spool", "", "record the trace crash-durably into this write-ahead spool directory")
	spoolFlush := flag.Duration("spool-flush", 25*time.Millisecond, "flush interval for -trace-spool (bounds what a SIGKILL can lose)")
	spoolSync := flag.String("spool-sync", "always", "spool fsync policy: always, interval or none")
	aggAddr := flag.String("agg", "", "stream lifecycle events to a tesla-agg server at this address")
	aggFlush := flag.Duration("agg-flush", 100*time.Millisecond, "delta flush interval for -agg")
	aggProcess := flag.String("agg-process", "", "process name reported to -agg (default host:pid)")
	aggSpool := flag.String("agg-spool", "", "write-ahead spool directory for -agg (crash-durable exactly-once delivery)")
	entry := flag.String("entry", "main", "entry function")
	shards := flag.Int("shards", 0, "global-store lock stripes (0 = GOMAXPROCS, 1 = single-mutex reference store)")
	batch := flag.Int("batch", 0, "per-thread event ring size for batched dispatch (0 = synchronous reference path)")
	noEngine := flag.Bool("noengine", false, "use the interpreted transition walk instead of the compiled step engines")
	health := flag.Bool("health", false, "print the per-class monitor health report to stderr after the run")
	failureMode := flag.String("failure", "default", "violation action: default, report, stop or callback")
	overflow := flag.String("overflow", "default", "instance-table overflow policy: default, drop-new, evict-oldest or quarantine")
	quarAfter := flag.Int("quarantine-after", 0, "consecutive overflows before a class is quarantined (0 = default)")
	rearm := flag.Int("rearm", 0, "suppressed events before a quarantined class re-arms (0 = default)")
	buildFlags := cli.RegisterBuildFlags()
	var args intList
	flag.Var(&args, "arg", "integer argument to the entry function (repeatable)")
	sources := tool.LoadSources(tool.ParseSourceArgs())

	failure, err := core.ParseFailureAction(*failureMode)
	if err != nil {
		tool.FatalCode(2, err)
	}
	overflowPol, err := core.ParseOverflowPolicy(*overflow)
	if err != nil {
		tool.FatalCode(2, err)
	}

	opts := toolchain.BuildOptions{Instrument: !*plain}
	buildFlags.Apply(&opts)
	build, err := toolchain.BuildProgramOpts(sources, opts)
	if err != nil {
		tool.FatalCode(2, err)
	}

	counting := core.NewCountingHandler()
	handler := core.MultiHandler{counting}
	if *debug {
		handler = append(handler, &core.PrintHandler{W: os.Stderr})
	}
	monOpts := monitor.Options{
		FailFast:        *failstop,
		GlobalShards:    *shards,
		BatchSize:       *batch,
		NoEngine:        *noEngine,
		Failure:         failure,
		Overflow:        overflowPol,
		QuarantineAfter: *quarAfter,
		RearmEvents:     *rearm,
	}
	var rec *trace.Recorder
	if *tracePath != "" || *aggAddr != "" || *traceSpool != "" {
		rec = trace.NewRecorder(build.Autos, *traceCap)
		handler = append(handler, rec)
		monOpts.Tap = rec
	}
	monOpts.Handler = handler
	rt, err := build.NewRuntime(monOpts)
	if err != nil {
		tool.FatalCode(2, err)
	}
	rt.VM.Out = os.Stdout

	syncPolicy, err := trace.ParseSpoolSync(*spoolSync)
	if err != nil {
		tool.FatalCode(2, err)
	}

	// Crash-durable trace recording: deltas are cut from the rings every
	// -spool-flush and appended to the write-ahead spool, so the trace on
	// disk is always a valid prefix of the run — a SIGKILL loses at most
	// one interval plus an in-flight flush's backlog.
	var spoolW *trace.SpoolWriter
	if *traceSpool != "" {
		sp := openEmptySpool(tool, *traceSpool, syncPolicy,
			"replay or archive it with tesla-trace, then point -trace-spool at a fresh directory")
		spoolW = trace.NewSpoolWriter(rec, sp)
		spoolW.Start(*spoolFlush)
	}

	// Live fleet streaming: dial before the run so a version rejection or
	// unreachable server is a usage error (2), not a mid-run surprise.
	var pub *agg.Publisher
	var aggClient *agg.Client
	if *aggSpool != "" && *aggAddr == "" {
		tool.FatalCode(2, fmt.Errorf("-agg-spool requires -agg"))
	}
	if *aggAddr != "" {
		process := *aggProcess
		if process == "" {
			host, _ := os.Hostname()
			process = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		clientOpts := agg.ClientOpts{Tool: "tesla-run", Process: process}
		if *aggSpool != "" {
			if *aggProcess == "" {
				tool.FatalCode(2, fmt.Errorf("-agg-spool requires an explicit -agg-process: the default host:pid identity changes on restart, and server-side exactly-once dedup is keyed by it"))
			}
			clientOpts.Spool = openEmptySpool(tool, *aggSpool, syncPolicy,
				"deliver it with `tesla-agg resend` first")
		}
		aggClient, err = agg.Dial(*aggAddr, clientOpts)
		if err != nil {
			tool.FatalCode(2, err)
		}
		pub = agg.NewPublisher(rec, aggClient)
		pub.Start(*aggFlush)
	}

	ret, runErr := rt.VM.Run(*entry, args...)
	// Process exit is a required-site drain for the batched event plane:
	// every staged event must reach the store and the trace rings before the
	// trace is saved, the final agg delta is cut, or any verdict is counted.
	// A nil monitor (plain build) has nothing staged.
	if rt.Monitor != nil {
		rt.Monitor.Drain()
	}
	// The trace is saved on every exit path: an aborted (fail-stop) run's
	// trace is exactly what shrinking wants. The fleet stream likewise
	// finishes on every exit path — final delta, health counters, bye —
	// before any exit code is chosen, so the fleet view of an aborted run
	// is complete.
	if rec != nil && *tracePath != "" {
		saveTrace(tool, rec, *tracePath)
	}
	spoolDegraded := finishSpool(spoolW, *traceSpool)
	aggDegraded := finishAgg(pub, aggClient, rt.Monitor)
	aggDegraded = aggDegraded || spoolDegraded
	if *health {
		printHealth(rt.Monitor)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "tesla-run: execution aborted: %v\n", runErr)
		exitViolations(counting)
		os.Exit(1)
	}
	fmt.Printf("%s returned %d\n", *entry, ret)

	if exitViolations(counting) {
		os.Exit(1)
	}
	// A clean verdict from a degraded monitor is not a clean verdict: if
	// any class overflowed, suppressed events, quarantined or lost handler
	// notifications, report it and exit 3 so scripts can tell "held" from
	// "couldn't watch". Losing part of the fleet stream is the same kind
	// of incompleteness — the fleet's view of this run cannot be trusted.
	if degradedClasses(rt.Monitor) || aggDegraded {
		if !*health { // -health already printed the table above
			printHealth(rt.Monitor)
		}
		fmt.Fprintln(os.Stderr, "tesla-run: DEGRADED: monitor lost coverage; verdict incomplete")
		os.Exit(3)
	}
	if !*plain {
		fmt.Printf("all %d assertions held\n", len(build.Autos))
	}
}

// openEmptySpool opens (or creates) a write-ahead spool directory and
// refuses one that already holds frames: a leftover spool is a crashed
// run's evidence, and appending a second run to it would interleave two
// traces into one stream.
func openEmptySpool(tool *cli.Tool, dir string, sync trace.SpoolSync, remedy string) *trace.Spool {
	sp, err := trace.OpenSpool(dir, trace.SpoolOpts{Sync: sync})
	if err != nil {
		tool.FatalCode(2, err)
	}
	if sp.FrameCount() > 0 {
		sp.Close()
		tool.FatalCode(2, fmt.Errorf("spool %s is not empty — it holds an earlier run; %s", dir, remedy))
	}
	return sp
}

// finishSpool takes the final cut into the trace spool and reports
// whether any of the run's events failed to reach it (reduced
// durability: the events were still monitored, but a replay of the spool
// would be incomplete — surfaced as degradation so scripts can tell).
func finishSpool(w *trace.SpoolWriter, dir string) bool {
	if w == nil {
		return false
	}
	if err := w.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "tesla-run: trace spool: final flush: %v\n", err)
	}
	if frames, events := w.Lost(); frames > 0 {
		fmt.Fprintf(os.Stderr, "tesla-run: trace spool: lost %d frame(s) / %d event(s) to write failures\n", frames, events)
		return true
	}
	fmt.Fprintf(os.Stderr, "tesla-run: trace spool complete in %s\n", dir)
	return false
}

// finishAgg flushes the final delta, ships the health counters and
// delivers the bye accounting. It reports whether the stream degraded —
// anything the fleet did not receive and count.
func finishAgg(pub *agg.Publisher, c *agg.Client, m *monitor.Monitor) bool {
	if c == nil {
		return false
	}
	degraded := false
	if err := pub.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "tesla-run: agg: final flush: %v\n", err)
		degraded = true
	}
	if m != nil {
		if err := c.SendHealth(m.Health()); err != nil {
			fmt.Fprintf(os.Stderr, "tesla-run: agg: health: %v\n", err)
			degraded = true
		}
	}
	if err := c.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tesla-run: agg: %v\n", err)
		degraded = true
	}
	if st := c.Stats(); st.Degraded() {
		fmt.Fprintf(os.Stderr, "tesla-run: agg: stream degraded: dropped %d frame(s) / %d event(s)\n",
			st.DroppedFrames, st.DroppedEvents)
		degraded = true
	}
	return degraded
}

// degradedClasses reports whether any class's health counters show lost
// coverage. A nil monitor (plain build) is never degraded.
func degradedClasses(m *monitor.Monitor) bool {
	return m != nil && m.Degraded()
}

// printHealth writes the per-class health table to stderr.
func printHealth(m *monitor.Monitor) {
	if m == nil {
		fmt.Fprintln(os.Stderr, "tesla-run: health: no monitor (plain build)")
		return
	}
	fmt.Fprintln(os.Stderr, "tesla-run: health:")
	for _, ch := range m.Health() {
		state := "ok"
		switch {
		case ch.Quarantined:
			state = "QUARANTINED"
		case ch.Degraded():
			state = "degraded"
		}
		fmt.Fprintf(os.Stderr,
			"  %-24s %-11s live=%d violations=%d overflows=%d evictions=%d suppressed=%d quarantines=%d handler-panics=%d\n",
			ch.Class, state, ch.Live, ch.Violations, ch.Overflows, ch.Evictions,
			ch.Suppressed, ch.Quarantines, ch.HandlerPanics)
	}
}

// exitViolations prints the detailed violation list on stdout and the
// one-line machine-greppable summary on stderr, returning whether any
// violation occurred.
func exitViolations(counting *core.CountingHandler) bool {
	vs := counting.Violations()
	if len(vs) == 0 {
		return false
	}
	fmt.Printf("%d TESLA violation(s):\n", len(vs))
	for _, v := range vs {
		fmt.Printf("  %v\n", v)
	}
	fmt.Fprintf(os.Stderr, "tesla-run: FAIL: %d violation(s), first: %s\n", len(vs), vs[0].Signature())
	return true
}

func saveTrace(tool *cli.Tool, rec *trace.Recorder, path string) {
	tr := rec.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		tool.Fatal(err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = trace.WriteJSON(f, tr)
	} else {
		err = trace.Write(f, tr)
	}
	if err != nil {
		tool.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tesla-run: wrote %d event(s) to %s\n", len(tr.Events), path)
}

type intList []int64

func (l *intList) String() string { return fmt.Sprint([]int64(*l)) }

func (l *intList) Set(s string) error {
	var v int64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}
