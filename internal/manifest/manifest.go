// Package manifest implements the on-disk automata descriptions of §4.1:
// parsed assertions are stored in a file with a .tesla extension, one per
// source file, and combined into a larger file describing all parts of the
// program that may need instrumentation. The paper serialises with Protocol
// Buffers; this implementation uses JSON (the format is incidental) and
// stores each assertion in its printed macro form, which round-trips
// through the spec parser.
package manifest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"tesla/internal/automata"
	"tesla/internal/spec"
)

// Ext is the conventional manifest file extension.
const Ext = ".tesla"

// Entry is one assertion.
type Entry struct {
	// Name identifies the assertion (conventionally file:line).
	Name string `json:"name"`
	// Text is the printed assertion, reparsable by internal/spec.
	Text string `json:"text"`
}

// File is the manifest for one source file, or a combined program manifest.
type File struct {
	// Source names the originating compilation unit ("" for combined).
	Source     string  `json:"source,omitempty"`
	Assertions []Entry `json:"assertions"`
}

// FromAssertions builds a manifest from parsed assertions.
func FromAssertions(source string, as []*spec.Assertion) *File {
	f := &File{Source: source}
	for _, a := range as {
		f.Assertions = append(f.Assertions, Entry{Name: a.Name, Text: a.String()})
	}
	return f
}

// Parse reparses every entry into assertion trees.
func (f *File) Parse() ([]*spec.Assertion, error) {
	var out []*spec.Assertion
	for _, e := range f.Assertions {
		a, err := spec.Parse(e.Name, e.Text, nil)
		if err != nil {
			return nil, fmt.Errorf("manifest: %s: %w", e.Name, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// Compile parses and compiles every assertion to an automaton, in manifest
// order (the order instrumented code indexes them by).
func (f *File) Compile() ([]*automata.Automaton, error) {
	as, err := f.Parse()
	if err != nil {
		return nil, err
	}
	var autos []*automata.Automaton
	for _, a := range as {
		auto, err := automata.Compile(a)
		if err != nil {
			return nil, err
		}
		autos = append(autos, auto)
	}
	return autos, nil
}

// Combine merges per-file manifests into one program manifest. Assertions
// in any file can name events defined in any other file, so instrumentation
// always works from the combined manifest (§4.1) — which is also why
// changing one file's assertions re-instruments every module (§5.1).
//
// The inputs are merged in source-name order regardless of argument order:
// the combined manifest's entry order fixes the automata indices compiled
// into instrumented code, and the build cache keys artifacts by the
// manifest's bytes, so combining the same fragments must always produce
// byte-identical output.
func Combine(files ...*File) (*File, error) {
	ordered := append([]*File(nil), files...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Source < ordered[j].Source })
	out := &File{}
	seen := map[string]bool{}
	for _, f := range ordered {
		for _, e := range f.Assertions {
			if seen[e.Name] {
				return nil, fmt.Errorf("manifest: duplicate assertion %q", e.Name)
			}
			seen[e.Name] = true
			out.Assertions = append(out.Assertions, e)
		}
	}
	return out, nil
}

// Encode writes the manifest as JSON.
func (f *File) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Decode reads a manifest from JSON.
func Decode(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	return &f, nil
}

// Save writes the manifest to path.
func (f *File) Save(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer w.Close()
	return f.Encode(w)
}

// Load reads a manifest from path.
func Load(path string) (*File, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return Decode(r)
}
