package analyse

import (
	"strings"
	"testing"
)

func TestSources(t *testing.T) {
	perFile, combined, err := Sources(map[string]string{
		"a.c": `
int f(int x) {
	TESLA_SYSCALL_PREVIOUSLY(check(x) == 0);
	return x;
}
`,
		"b.c": `
int g(int y) {
	TESLA_WITHIN(main, eventually(audit(y) == 0));
	TESLA_WITHIN(main, previously(check(y) == 0));
	return y;
}
`,
		"c.c": `int plain(int z) { return z; }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(perFile["a.c"].Assertions) != 1 || len(perFile["b.c"].Assertions) != 2 || len(perFile["c.c"].Assertions) != 0 {
		t.Fatalf("per-file counts wrong: %+v", perFile)
	}
	if len(combined.Assertions) != 3 {
		t.Fatalf("combined = %d", len(combined.Assertions))
	}
	// Names carry file:line positions.
	if !strings.HasPrefix(perFile["a.c"].Assertions[0].Name, "a.c:") {
		t.Fatalf("name = %q", perFile["a.c"].Assertions[0].Name)
	}
	// The combined manifest compiles.
	if _, err := combined.Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestSourcesErrors(t *testing.T) {
	if _, _, err := Sources(map[string]string{"bad.c": "int f( {"}); err == nil {
		t.Fatal("parse error must propagate")
	}
	if _, _, err := Sources(map[string]string{"bad.c": `
int f(int x) {
	TESLA_WITHIN(main, previously(check(undeclared_var) == 0));
	return x;
}
`}); err == nil {
		t.Fatal("out-of-scope assertion variable must fail analysis")
	}
}

func TestLint(t *testing.T) {
	warnings, err := LintSources(map[string]string{"a.c": `
int check(int x) { return 0; }
int amd64_syscall(int x) {
	int c = check(x);
	TESLA_SYSCALL_PREVIOUSLY(check(x) == 0);
	TESLA_SYSCALL_PREVIOUSLY(chekc(x) == 0);
	TESLA_WITHIN(no_such_bound, previously(check(x) == 0));
	TESLA_SYSCALL(incallstack(never_defined) || previously(check(x) == 0));
	return c;
}
`})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, w := range warnings {
		msgs = append(msgs, w.String())
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{`"chekc"`, `"no_such_bound"`, `"never_defined"`} {
		if !strings.Contains(joined, want) {
			t.Errorf("lint missing %s in:\n%s", want, joined)
		}
	}
	// The healthy assertion produces no warning.
	if strings.Contains(joined, `"check"`) {
		t.Errorf("false positive on defined function:\n%s", joined)
	}
	if len(warnings) != 3 {
		t.Errorf("warnings = %d:\n%s", len(warnings), joined)
	}
}

func TestLintExternalCallIsKnown(t *testing.T) {
	// A function that is only *called* (defined in a library outside the
	// program) still counts: caller-side instrumentation can observe it.
	warnings, err := LintSources(map[string]string{"a.c": `
int amd64_syscall(int x) {
	int c = ext_check(x);
	TESLA_SYSCALL_PREVIOUSLY(ext_check(x) == 0);
	return c;
}
`})
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestLintFieldEvents(t *testing.T) {
	warnings, err := LintSources(map[string]string{"a.c": `
struct proc { int p_flag; };
int amd64_syscall(struct proc *p) {
	TESLA_SYSCALL(eventually(p.p_flag = 1));
	p->p_flag = 1;
	return 0;
}
`, "b.c": `
struct proc2 { int other; };
int helper(struct proc2 *p) {
	TESLA_SYSCALL(eventually(p.missing = 1));
	return 0;
}
`})
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, w := range warnings {
		joined += w.String() + "\n"
	}
	// The resolvable field is clean; the missing one is flagged.
	if strings.Contains(joined, "p_flag") {
		t.Errorf("false positive on defined field:\n%s", joined)
	}
	if !strings.Contains(joined, `no field "missing"`) {
		t.Errorf("missing-field warning absent:\n%s", joined)
	}
}

func TestLintDescendsIntoIndexExprs(t *testing.T) {
	// The only call to check() hides inside an index expression; the
	// lint walker must still see it.
	warnings, err := LintSources(map[string]string{"a.c": `
struct pair { int a; int b; };
int amd64_syscall(struct pair *p, int x) {
	p[check(x)] = p[also_called(x)];
	p[0] += later(x);
	TESLA_SYSCALL_PREVIOUSLY(check(x) == 0);
	TESLA_SYSCALL_PREVIOUSLY(also_called(x) == 0);
	TESLA_SYSCALL_PREVIOUSLY(later(x) == 0);
	return 0;
}
`})
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestLintSourcesMultiFileDeterministic(t *testing.T) {
	sources := map[string]string{
		"z.c": `
int do_work(int x) {
	TESLA_WITHIN(main, previously(lib_fn(ANY(int))));
	TESLA_WITHIN(main, previously(nowhere(ANY(int))));
	return x;
}
`,
		"a.c": `
int lib_fn(int x) { return 0; }
int main(int x) {
	int r = lib_fn(x);
	return do_work(x);
}
`,
	}
	var first []Warning
	for i := 0; i < 5; i++ {
		warnings, err := LintSources(sources)
		if err != nil {
			t.Fatal(err)
		}
		// lib_fn is defined in the other file: resolved, no warning.
		for _, w := range warnings {
			if strings.Contains(w.Message, "lib_fn") {
				t.Fatalf("cross-file callee not resolved: %v", w)
			}
		}
		if len(warnings) != 1 || !strings.Contains(warnings[0].Message, `"nowhere"`) {
			t.Fatalf("warnings = %v", warnings)
		}
		if i == 0 {
			first = warnings
		} else if len(warnings) != len(first) || warnings[0] != first[0] {
			t.Fatalf("lint output not deterministic: %v vs %v", warnings, first)
		}
	}
}

func TestLintProgramSurfacesVerdicts(t *testing.T) {
	warnings, rep, err := LintProgram(map[string]string{"a.c": `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(ANY(int))));
	return x;
}
int main(int x) { return do_work(x); }
`}, "main")
	if err != nil {
		t.Fatal(err)
	}
	// The plain lint is silent (the function exists), but the checker
	// proves the assertion doomed.
	if len(warnings) != 1 || !strings.Contains(warnings[0].Message, "provably failing") {
		t.Fatalf("warnings = %v", warnings)
	}
	if rep == nil || len(rep.Results) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if _, failing, _ := rep.Counts(); failing != 1 {
		t.Fatalf("counts = %v", rep.Results[0].Verdict)
	}
}
