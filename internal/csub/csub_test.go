package csub

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseStructs(t *testing.T) {
	f := parse(t, `
struct ucred { int uid; };
struct protosw { int (*pru_sopoll)(struct socket *, struct ucred *); };
struct socket { struct protosw *so_proto; int so_state; };
`)
	if len(f.Structs) != 3 {
		t.Fatalf("structs = %d", len(f.Structs))
	}
	ps := f.Structs[1]
	if ps.Fields[0].Name != "pru_sopoll" || ps.Fields[0].Type.Kind != TFnPtr {
		t.Fatalf("fnptr field: %+v", ps.Fields[0])
	}
	so := f.Structs[2]
	if so.Fields[0].Type != (Type{Kind: TPtr, Struct: "protosw"}) {
		t.Fatalf("ptr field: %+v", so.Fields[0])
	}
	if so.FieldIndex("so_state") != 1 || so.FieldIndex("nope") != -1 {
		t.Fatal("FieldIndex wrong")
	}
}

func TestParseDefinesAndGlobals(t *testing.T) {
	f := parse(t, `
#define P_SUGID 256
#define NEG -5
int counter = 0;
int limit = -3;
int bare;
`)
	if f.Defines["P_SUGID"] != 256 || f.Defines["NEG"] != -5 {
		t.Fatalf("defines = %v", f.Defines)
	}
	if len(f.Globals) != 3 {
		t.Fatalf("globals = %d", len(f.Globals))
	}
	if f.Globals[1].Init.(*IntLit).V != -3 {
		t.Fatal("negative global init")
	}
	if f.Globals[2].Init != nil {
		t.Fatal("bare global should have nil init")
	}
}

func TestParseFunctionShapes(t *testing.T) {
	f := parse(t, `
int noargs() { return 1; }
int voidargs(void) { return 2; }
struct box *maker(int n) { return alloc(box); }
struct box { int v; };
long counterish(long a, struct box *b) { return a; }
`)
	if len(f.Funcs) != 4 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	if len(f.Funcs[0].Params) != 0 || len(f.Funcs[1].Params) != 0 {
		t.Fatal("no-arg forms")
	}
	if f.Funcs[3].Params[1].Type.Struct != "box" {
		t.Fatal("struct param")
	}
}

func TestParseStatements(t *testing.T) {
	f := parse(t, `
struct s { int n; };
int main(int a) {
	int x = 1;
	struct s *p = alloc(s);
	x = x + 1;
	x += 2;
	x++;
	p->n = 5;
	p->n += 1;
	p->n++;
	if (x > 3 && a) { x = 0; } else if (x < 0) { x = 1; } else { x = 2; }
	while (x != 0) { x = x - 1; }
	print(x);
	return p->n;
}
`)
	body := f.Funcs[0].Body
	if len(body) < 10 {
		t.Fatalf("statements = %d", len(body))
	}
	// Spot-check the field increments.
	as, ok := body[6].(*AssignStmt)
	if !ok || as.Op != Add {
		t.Fatalf("p->n += 1: %#v", body[6])
	}
	fe := as.LHS.(*FieldExpr)
	if fe.Name != "n" {
		t.Fatal("field name")
	}
}

func TestParseTeslaCapture(t *testing.T) {
	f := parse(t, `
int g(int vp) {
	TESLA_SYSCALL_PREVIOUSLY(mac_check(ANY(ptr), vp) == 0);
	TESLA_WITHIN(main, eventually(
		audit(vp) == 0));
	return 0;
}
`)
	var teslas []*TeslaStmt
	for _, s := range f.Funcs[0].Body {
		if ts, ok := s.(*TeslaStmt); ok {
			teslas = append(teslas, ts)
		}
	}
	if len(teslas) != 2 {
		t.Fatalf("tesla stmts = %d", len(teslas))
	}
	if !strings.HasPrefix(teslas[0].Text, "TESLA_SYSCALL_PREVIOUSLY(") ||
		!strings.HasSuffix(teslas[0].Text, ")") {
		t.Fatalf("capture 1 = %q", teslas[0].Text)
	}
	if !strings.Contains(teslas[1].Text, "eventually") {
		t.Fatalf("capture 2 = %q", teslas[1].Text)
	}
	if teslas[0].Line != 3 {
		t.Fatalf("line = %d", teslas[0].Line)
	}
}

func TestParseCommentsAndPrecedence(t *testing.T) {
	f := parse(t, `
// line comment
/* block
   comment */
int main() {
	int x = 1 + 2 * 3;        // 7, not 9
	int y = (1 + 2) * 3;      // 9
	int z = 1 < 2 == 1;       // comparisons bind tighter than ==
	int w = 1 | 2 & 3;
	return x;
}
`)
	decl := f.Funcs[0].Body[0].(*DeclStmt)
	bin := decl.Decl.Init.(*BinExpr)
	if bin.Op != "+" {
		t.Fatalf("precedence: top op %q", bin.Op)
	}
	if _, ok := bin.Y.(*BinExpr); !ok {
		t.Fatal("2*3 should nest under +")
	}
}

func TestParseIndirectCalls(t *testing.T) {
	f := parse(t, `
struct ops { int (*poll)(int); };
int main(struct ops *o, int x) {
	int r = o->poll(x);
	return r;
}
`)
	decl := f.Funcs[0].Body[0].(*DeclStmt)
	call := decl.Decl.Init.(*CallExpr)
	if _, ok := call.Fn.(*FieldExpr); !ok {
		t.Fatalf("indirect call through field: %#v", call.Fn)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`int f( { return 0; }`,
		`int f() { return 0 }`,
		`struct s { int; };`,
		`int f() { 1 = 2; }`,
		`int f() { if x { } }`,
		`int f() { TESLA_WITHIN(f, x()) }`, // missing semicolon
		`#define X`,
		`int f() { int x = ; }`,
		`bogus f() { }`,
		`int f() { while (1) { return 0; }`, // unterminated
		`/* unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse("bad.c", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse("pos.c", "int f() {\n\tint x = ;\n}\n")
	if err == nil || !strings.Contains(err.Error(), "pos.c:2") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestParseIndexExpr(t *testing.T) {
	f := parse(t, `
struct pair { int a; int b; };
int main(int i) {
	struct pair *p = alloc(pair);
	p[0] = 5;
	p[1] += 2;
	p[i]++;
	int v = p[i + 1];
	return p[0] + v;
}
`)
	fn := f.Funcs[0]
	as, ok := fn.Body[1].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", fn.Body[1])
	}
	ix, ok := as.LHS.(*IndexExpr)
	if !ok || as.Op != Set {
		t.Fatalf("lhs = %T op = %v", as.LHS, as.Op)
	}
	if _, ok := ix.X.(*Ident); !ok {
		t.Fatalf("index base = %T", ix.X)
	}
	if lit, ok := ix.Index.(*IntLit); !ok || lit.V != 0 {
		t.Fatalf("index = %#v", ix.Index)
	}
	if as2 := fn.Body[2].(*AssignStmt); as2.Op != Add {
		t.Fatalf("op = %v", as2.Op)
	}
	if as3 := fn.Body[3].(*AssignStmt); as3.Op != Incr {
		t.Fatalf("op = %v", as3.Op)
	}
	// Nested expression index.
	d := fn.Body[4].(*DeclStmt)
	if _, ok := d.Decl.Init.(*IndexExpr).Index.(*BinExpr); !ok {
		t.Fatal("index expression not parsed as expression")
	}
}

func TestParseIndexErrors(t *testing.T) {
	for _, src := range []string{
		`int main() { int v = p[; return v; }`,
		`int main() { int v = p[1; return v; }`,
		`int main() { p[0]() = 2; return 0; }`,
	} {
		if _, err := Parse("e.c", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}
