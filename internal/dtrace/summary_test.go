package dtrace_test

import (
	"reflect"
	"testing"

	"tesla/internal/core"
	"tesla/internal/dtrace"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
	"tesla/internal/trace"
)

// TestSummarizeMatchesLiveHandler records a violating run with both a live
// dtrace handler and a trace recorder attached, then checks that offline
// summarisation of the trace reproduces the live aggregations exactly.
func TestSummarizeMatchesLiveHandler(t *testing.T) {
	src := `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(x)));
	return x;
}
int main(int x) {
	int r = security_check(x + 1);
	return do_work(x);
}
`
	build, err := toolchain.BuildProgram(map[string]string{"prog.c": src}, true)
	if err != nil {
		t.Fatal(err)
	}
	live := dtrace.NewHandler(nil)
	rec := trace.NewRecorder(build.Autos, 0)
	if _, _, err := build.Run("main", monitor.Options{
		Handler: core.MultiHandler{live, rec},
		Tap:     rec,
	}, 7); err != nil {
		t.Fatal(err)
	}

	offline := dtrace.Summarize(rec.Snapshot())
	for _, pair := range []struct {
		name      string
		live, off *dtrace.Aggregation
	}{
		{"transitions", live.Transitions, offline.Transitions},
		{"accepts", live.Accepts, offline.Accepts},
		{"failures", live.Failures, offline.Failures},
	} {
		lk, ok := pair.live.Keys(), pair.off.Keys()
		if !reflect.DeepEqual(lk, ok) {
			t.Fatalf("%s keys differ: live %v, offline %v", pair.name, lk, ok)
		}
		if len(lk) == 0 && pair.name != "accepts" {
			t.Fatalf("%s: live handler recorded nothing — test exercises nothing", pair.name)
		}
		for _, k := range lk {
			if l, o := pair.live.Count(k), pair.off.Count(k); l != o {
				t.Fatalf("%s[%q]: live %d, offline %d", pair.name, k, l, o)
			}
		}
	}
}
