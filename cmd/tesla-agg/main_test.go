package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"tesla/internal/agg"
)

// TestAggEndToEnd drives the built binaries end to end: a tesla-agg serve
// process on a unix socket, three tesla-run producers streaming the same
// violating program with -agg, then tesla-agg query against the live
// server. The fleet view must show three clean producers with identical
// event counts and the violation's failure site attributed to all three.
func TestAggEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{
		"tesla-agg": filepath.Join(dir, "tesla-agg"),
		"tesla-run": filepath.Join(dir, "tesla-run"),
	}
	for pkg, out := range bins {
		cmd := exec.Command("go", "build", "-o", out, "tesla/cmd/"+pkg)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, b)
		}
	}

	sock := filepath.Join(dir, "agg.sock")
	srv := exec.Command(bins["tesla-agg"], "serve", "-listen", "unix:"+sock, "-quiet")
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatalf("start serve: %v", err)
	}
	defer func() {
		srv.Process.Signal(os.Interrupt)
		srv.Wait()
	}()
	waitForSocket(t, sock)

	src := filepath.Join("..", "..", "examples", "trace", "testdata", "doomed.c")
	for _, proc := range []string{"p1", "p2", "p3"} {
		run := exec.Command(bins["tesla-run"],
			"-agg", "unix:"+sock, "-agg-process", proc, "-arg", "7", src)
		out, err := run.CombinedOutput()
		// doomed.c violates its assertion: exit 1 is the expected verdict.
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Fatalf("tesla-run %s: want exit 1, got %v\n%s", proc, err, out)
		}
	}

	query := func(args ...string) []byte {
		t.Helper()
		cmd := exec.Command(bins["tesla-agg"], append([]string{"query", "-addr", "unix:" + sock}, args...)...)
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("query %v: %v", args, err)
		}
		return out
	}

	var sum agg.FleetSummary
	if err := json.Unmarshal(query("fleet"), &sum); err != nil {
		t.Fatalf("fleet JSON: %v", err)
	}
	if sum.CleanProducers != 3 || sum.Disconnected != 0 || len(sum.Producers) != 3 {
		t.Fatalf("fleet producers: %+v", sum)
	}
	first := sum.Producers[0]
	if first.Events == 0 {
		t.Fatalf("no events ingested: %+v", first)
	}
	for _, ps := range sum.Producers {
		// Deterministic program, three identical runs: identical streams,
		// exactly accounted (nothing dropped anywhere on a quiet box, but
		// the invariant — not the zero — is what must hold).
		if ps.Events != first.Events {
			t.Fatalf("producers diverge: %+v vs %+v", ps, first)
		}
		if ps.Events+ps.DroppedEvents != ps.SentEvents {
			t.Fatalf("accounting leak: %+v", ps)
		}
	}
	if sum.TotalEvents != 3*first.Events {
		t.Fatalf("fleet total %d != 3 * %d", sum.TotalEvents, first.Events)
	}

	var sites []agg.FailureSite
	if err := json.Unmarshal(query("failures"), &sites); err != nil {
		t.Fatalf("failures JSON: %v", err)
	}
	if len(sites) == 0 {
		t.Fatal("violating fleet reports no failure sites")
	}
	if sites[0].Total != 3 || len(sites[0].PerProcess) != 3 {
		t.Fatalf("failure not attributed to all three producers: %+v", sites[0])
	}

	var hs []agg.FleetHealth
	if err := json.Unmarshal(query("health"), &hs); err != nil {
		t.Fatalf("health JSON: %v", err)
	}
	if len(hs) == 0 || hs[0].Violations != 3 {
		t.Fatalf("fleet health: %+v", hs)
	}
}

func waitForSocket(t *testing.T, sock string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(sock); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server socket %s never appeared", sock)
}
