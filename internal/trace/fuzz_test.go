package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"tesla/internal/core"
	"tesla/internal/monitor"
)

// fuzzSeedTrace is a small trace exercising every event kind, both key
// shapes, string interning (repeated names) and the optional return value.
func fuzzSeedTrace() *Trace {
	return &Trace{
		FormatVersion: Version,
		Automata:      []string{"a", "b"},
		Dropped:       1,
		Events: []Event{
			{Seq: 1, Thread: 0, Kind: KindProgram, Prog: monitor.ProgCall, Fn: "open", Vals: []core.Value{1, 2}},
			{Seq: 2, Thread: 0, Kind: KindProgram, Prog: monitor.ProgReturn, Fn: "open", Ret: 3, HasRet: true},
			{Seq: 3, Thread: 0, Kind: KindProgram, Prog: monitor.ProgSite, Fn: "a", Auto: 0, InStack: []int{0, 2}},
			{Seq: 4, Thread: -1, Kind: KindInit, Class: "a", Key: core.NewKey(7), State: 1},
			{Seq: 5, Thread: -1, Kind: KindClone, Class: "a", ParentKey: core.AnyKey, Key: core.NewKey(7), State: 2},
			{Seq: 6, Thread: -1, Kind: KindTransition, Class: "a", Key: core.NewKey(7), From: 1, To: 2, Symbol: "open"},
			{Seq: 7, Thread: -1, Kind: KindAccept, Class: "a", Key: core.NewKey(7)},
			{Seq: 8, Thread: -1, Kind: KindFail, Class: "b", Key: core.AnyKey, Verdict: core.VerdictNoInstance, Symbol: "site"},
			{Seq: 9, Thread: -1, Kind: KindOverflow, Class: "b", Key: core.NewKey(1, 2)},
		},
	}
}

// FuzzCodecRoundTrip checks that Read never panics on arbitrary bytes, and
// that any trace Read accepts survives a binary encode/decode round trip:
// re-encoding the decoded trace yields the same trace again. (The first
// binary pass canonicalises JSON-only looseness such as empty-vs-nil
// slices, so the invariant compares the first and second binary decodes;
// for binary inputs that is the identity.)
func FuzzCodecRoundTrip(f *testing.F) {
	var bin bytes.Buffer
	if err := Write(&bin, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	var js bytes.Buffer
	if err := WriteJSON(&js, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(js.Bytes())
	f.Add([]byte("TESLATRC"))
	f.Add([]byte("{"))
	f.Add(append([]byte("TESLATRC\x01\x00\x00"), 0xff, 0xff, 0xff, 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, data []byte) {
		t1, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking or over-allocating is not
		}
		var buf bytes.Buffer
		if err := Write(&buf, t1); err != nil {
			t.Fatalf("encode of accepted trace failed: %v", err)
		}
		t2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := Write(&buf2, t2); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		t3, err := Read(bytes.NewReader(buf2.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(t2, t3) {
			t.Fatalf("binary round trip not stable:\nfirst:  %+v\nsecond: %+v", t2, t3)
		}
		if data[0] != '{' && !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("binary encoding not canonical: %x vs %x", buf.Bytes(), buf2.Bytes())
		}
	})
}

// FuzzFrameStream fuzzes the streaming layer the aggregation wire protocol
// sits on: the frame reader (truncated frames, oversized length prefixes)
// and the incremental trace decoder inside each trace-kind frame (garbage
// after the magic, truncated events). Invariants: never panic, never
// allocate past the declared bounds, and agree with the batch Read on
// every payload — a frame's trace decodes through StreamDecoder to
// exactly the events Read yields, or both reject it.
func FuzzFrameStream(f *testing.F) {
	var tr bytes.Buffer
	if err := Write(&tr, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	var stream bytes.Buffer
	fw := NewFrameWriter(&stream)
	fw.Frame(1, []byte(`{"proto":1,"codec":1}`))
	fw.Frame(2, tr.Bytes())
	fw.Frame(4, nil)
	f.Add(stream.Bytes())
	f.Add([]byte{2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // oversized prefix
	f.Add(append([]byte{2, 12}, "TESLATRCgarb"...))                              // garbage after magic
	f.Add(stream.Bytes()[:stream.Len()-3])                                       // truncated tail

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			kind, payload, err := fr.Next()
			if err != nil {
				return // rejection (or clean EOF) is fine; panicking is not
			}
			if kind != 2 {
				continue
			}
			// Trace frame: streaming and batch decodes must agree.
			sd, sdErr := NewStreamDecoder(bytes.NewReader(payload))
			batch, readErr := Read(bytes.NewReader(payload))
			if (sdErr == nil) != (readErr == nil) && sdErr != nil {
				// Read may fail later than the header; only a header
				// acceptance paired with a batch rejection needs the
				// event-level comparison below to also fail.
				t.Fatalf("header verdicts diverge: stream=%v read=%v", sdErr, readErr)
			}
			if sdErr != nil {
				continue
			}
			var events []Event
			var nextErr error
			for {
				ev, err := sd.Next()
				if err != nil {
					nextErr = err
					break
				}
				events = append(events, ev)
			}
			if readErr == nil {
				if nextErr != io.EOF {
					t.Fatalf("Read accepted but stream errored: %v", nextErr)
				}
				if !reflect.DeepEqual(events, batch.Events) && len(batch.Events) > 0 {
					t.Fatalf("streamed events diverge from Read")
				}
			} else if nextErr == io.EOF {
				t.Fatalf("Read rejected (%v) but stream decoded cleanly", readErr)
			}
		}
	})
}

// TestCodecRoundTripSeed pins the seed trace's exact round trip in the
// ordinary test suite, so codec regressions fail fast without the fuzzer.
func TestCodecRoundTripSeed(t *testing.T) {
	want := fuzzSeedTrace()
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the trace:\ngot:  %+v\nwant: %+v", got, want)
	}
}
