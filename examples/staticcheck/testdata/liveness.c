/*
 * A liveness obligation the refinement pass can discharge: the
 * «eventually» event is produced inside a counted flush loop whose bound
 * arrives as a constant call argument. The safety pass alone must keep
 * the assertion NEEDS-RUNTIME (a zero-trip loop would strand it); the
 * liveness pass proves the loop terminates with at least one trip and
 * upgrades the verdict to PROVABLY-SAFE, so the hooks are elided.
 */

int audit_log(int event) {
	return event - event;
}

int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}

int flush_log(int n) {
	int i = 0;
	while (i < n) {
		int r = audit_log(i);
		i = i + 1;
	}
	return i;
}

int main(int x) {
	int w = do_work(x);
	int f = flush_log(4);
	return w;
}
