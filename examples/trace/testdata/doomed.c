/*
 * A doomed run with noise. The assertion in do_work() requires a prior
 * security_check(x) for its own argument, but main() only ever checks
 * the wrong keys (x+1 .. x+4) before calling it. The run therefore
 * violates, and every wrong-key check is trace noise the ddmin shrinker
 * can delete: the minimal counterexample is the assertion's bound plus
 * the site itself.
 */

int security_check(int x) {
	return 0;
}

int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(x)));
	return x;
}

int main(int x) {
	int i = 1;
	while (i < 5) {
		int r = security_check(x + i);
		i = i + 1;
	}
	return do_work(x);
}
