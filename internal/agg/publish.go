package agg

import (
	"sync"
	"time"

	"tesla/internal/trace"
)

// Publisher streams a live Recorder to a Client as delta traces: each
// flush cuts exactly the events recorded since the previous flush
// (trace.Recorder.CutSince), with per-delta loss accounting, so the
// fleet store receives every event once — or an explicit drop count.
type Publisher struct {
	rec *trace.Recorder
	c   *Client

	mu  sync.Mutex
	cut *trace.Cut

	stop chan struct{}
	done chan struct{}
}

// NewPublisher pairs a recorder with a client.
func NewPublisher(rec *trace.Recorder, c *Client) *Publisher {
	return &Publisher{rec: rec, c: c}
}

// Flush cuts and sends the delta since the last flush. Empty deltas send
// nothing.
func (p *Publisher) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	tr, next := p.rec.CutSince(p.cut)
	p.cut = next
	if len(tr.Events) == 0 && tr.Dropped == 0 {
		return nil
	}
	return p.c.SendTrace(tr)
}

// Start flushes on an interval until Stop. Live flushing is what keeps a
// long-running producer's window in the fleet view fresh, and what keeps
// ring overwrites (which only a flush can outrun) near zero.
func (p *Publisher) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.Flush()
			case <-p.stop:
				return
			}
		}
	}()
}

// Stop ends the interval flusher (if started) and performs a final flush,
// so everything the run recorded is either streamed or counted lost.
func (p *Publisher) Stop() error {
	if p.stop != nil {
		close(p.stop)
		<-p.done
	}
	return p.Flush()
}
