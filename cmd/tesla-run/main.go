// tesla-run compiles, instruments and executes a csub program under TESLA:
// the full §4 workflow in one command. Violations are reported as they are
// detected; with -failstop (TESLA's default behaviour in the paper) the
// first violation aborts execution. With -trace, every program and
// automaton lifecycle event is recorded to a trace file for offline replay
// and shrinking with tesla-trace. The build runs through the parallel
// content-hash-cached graph: -j bounds the workers, -cache persists
// artifacts across runs, and -explain reports which graph nodes were
// cache hits versus rebuilt.
//
// Usage:
//
//	tesla-run [-plain] [-failstop] [-debug] [-trace out.tr] [-entry main]
//	          [-j N] [-cache dir] [-explain] [-arg N]... file.c...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
	"tesla/internal/toolchain/cli"
	"tesla/internal/trace"
)

func main() {
	tool := cli.New("tesla-run",
		"[-plain] [-failstop] [-debug] [-trace out.tr] [-j N] [-cache dir] [-explain] [-arg N]... file.c...")
	plain := flag.Bool("plain", false, "run without instrumentation (Default build)")
	failstop := flag.Bool("failstop", false, "abort on the first violation")
	debug := flag.Bool("debug", false, "trace automaton events (TESLA_DEBUG-style output)")
	tracePath := flag.String("trace", "", "record an event trace to this file (.json for JSON, else binary)")
	traceCap := flag.Int("trace-buf", 0, "per-thread trace ring capacity in events (0 = default)")
	entry := flag.String("entry", "main", "entry function")
	shards := flag.Int("shards", 0, "global-store lock stripes (0 = GOMAXPROCS, 1 = single-mutex reference store)")
	buildFlags := cli.RegisterBuildFlags()
	var args intList
	flag.Var(&args, "arg", "integer argument to the entry function (repeatable)")
	sources := tool.LoadSources(tool.ParseSourceArgs())

	opts := toolchain.BuildOptions{Instrument: !*plain}
	buildFlags.Apply(&opts)
	build, err := toolchain.BuildProgramOpts(sources, opts)
	if err != nil {
		tool.Fatal(err)
	}

	counting := core.NewCountingHandler()
	handler := core.MultiHandler{counting}
	if *debug {
		handler = append(handler, &core.PrintHandler{W: os.Stderr})
	}
	monOpts := monitor.Options{FailFast: *failstop, GlobalShards: *shards}
	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder(build.Autos, *traceCap)
		handler = append(handler, rec)
		monOpts.Tap = rec
	}
	monOpts.Handler = handler
	rt, err := build.NewRuntime(monOpts)
	if err != nil {
		tool.Fatal(err)
	}
	rt.VM.Out = os.Stdout

	ret, runErr := rt.VM.Run(*entry, args...)
	// The trace is saved on every exit path: an aborted (fail-stop) run's
	// trace is exactly what shrinking wants.
	if rec != nil {
		saveTrace(tool, rec, *tracePath)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "tesla-run: execution aborted: %v\n", runErr)
		exitViolations(counting)
		os.Exit(1)
	}
	fmt.Printf("%s returned %d\n", *entry, ret)

	if exitViolations(counting) {
		os.Exit(1)
	}
	if !*plain {
		fmt.Printf("all %d assertions held\n", len(build.Autos))
	}
}

// exitViolations prints the detailed violation list on stdout and the
// one-line machine-greppable summary on stderr, returning whether any
// violation occurred.
func exitViolations(counting *core.CountingHandler) bool {
	vs := counting.Violations()
	if len(vs) == 0 {
		return false
	}
	fmt.Printf("%d TESLA violation(s):\n", len(vs))
	for _, v := range vs {
		fmt.Printf("  %v\n", v)
	}
	fmt.Fprintf(os.Stderr, "tesla-run: FAIL: %d violation(s), first: %s\n", len(vs), vs[0].Signature())
	return true
}

func saveTrace(tool *cli.Tool, rec *trace.Recorder, path string) {
	tr := rec.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		tool.Fatal(err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = trace.WriteJSON(f, tr)
	} else {
		err = trace.Write(f, tr)
	}
	if err != nil {
		tool.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tesla-run: wrote %d event(s) to %s\n", len(tr.Events), path)
}

type intList []int64

func (l *intList) String() string { return fmt.Sprint([]int64(*l)) }

func (l *intList) Set(s string) error {
	var v int64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}
