package bench

import (
	"fmt"
	"io"
	"time"

	"tesla/internal/compiler"
	"tesla/internal/csub"
	"tesla/internal/instrument"
	"tesla/internal/ir"
	"tesla/internal/manifest"
)

// OpenSSLCodebase synthesises a csub codebase with the shape of the §5.1
// case study: a libcrypto file defining EVP_VerifyFinal, many library files
// of plain C, and a client whose main carries the figure 6 assertion —
// which references a call in another compilation unit, the property that
// makes incremental rebuilds re-instrument everything.
func OpenSSLCodebase(files, fnsPerFile int) map[string]string {
	sources := map[string]string{}

	sources["crypto_p_verify.c"] = `
int EVP_VerifyFinal(int ctx, int sig, int siglen, int key) {
	int v = sig % 7;
	if (v == 0) { return 1; }
	if (v == 1) { return -1; }
	return 0;
}
`
	for i := 0; i < files; i++ {
		src := ""
		for j := 0; j < fnsPerFile; j++ {
			next := ""
			if j+1 < fnsPerFile {
				next = fmt.Sprintf("x = x + ssl_f_%d_%d(b, x);", i, j+1)
			} else if i+1 < files {
				next = fmt.Sprintf("x = x + ssl_f_%d_0(b, x);", i+1)
			}
			src += fmt.Sprintf(`
int ssl_f_%d_%d(int a, int b) {
	int x = a * 3 + b;
	int i = 0;
	while (i < 4) {
		x = x + i * a;
		i++;
	}
	if (x > 1000) {
		x = x %% 997;
	} else {
		%s
	}
	return x;
}
`, i, j, next)
		}
		sources[fmt.Sprintf("ssl_s3_%d.c", i)] = src
	}

	sources["client.c"] = `
int fetch_document(int sig) {
	int ok = EVP_VerifyFinal(1, sig, 64, 2);
	int body = ssl_f_0_0(sig, ok);
	TESLA_WITHIN(main, previously(
		EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1));
	return body;
}
int main(int sig) { return fetch_document(sig); }
`
	return sources
}

// BuildTimes holds the four figure 10 measurements.
type BuildTimes struct {
	CleanDefault time.Duration
	CleanTESLA   time.Duration
	IncrDefault  time.Duration
	IncrTESLA    time.Duration
}

// buildState caches per-file artefacts between incremental builds.
type buildState struct {
	sources   map[string]string
	names     []string
	files     map[string]*csub.File
	units     map[string]*compiler.Unit
	manifests map[string]*manifest.File
	ctx       *compiler.Context
}

func (bs *buildState) parseAll() error {
	bs.files = map[string]*csub.File{}
	var all []*csub.File
	for _, n := range bs.names {
		f, err := csub.Parse(n, bs.sources[n])
		if err != nil {
			return err
		}
		bs.files[n] = f
		all = append(all, f)
	}
	ctx, err := compiler.NewContext(all...)
	if err != nil {
		return err
	}
	bs.ctx = ctx
	return nil
}

func (bs *buildState) compileOne(name string) error {
	u, err := compiler.CompileFile(bs.files[name], bs.ctx)
	if err != nil {
		return err
	}
	bs.units[name] = u
	bs.manifests[name] = manifest.FromAssertions(name, u.Assertions)
	return nil
}

func (bs *buildState) compileAll() error {
	bs.units = map[string]*compiler.Unit{}
	bs.manifests = map[string]*manifest.File{}
	for _, n := range bs.names {
		if err := bs.compileOne(n); err != nil {
			return err
		}
	}
	return nil
}

// instrumentAll re-instruments every IR file against the combined
// manifest — the §5.1 behaviour: "when one C file changes, it changes the
// combined .tesla file; this causes re-instrumentation of all LLVM IR
// files".
func (bs *buildState) instrumentAll() ([]*ir.Module, error) {
	var all []*manifest.File
	for _, n := range bs.names {
		all = append(all, bs.manifests[n])
	}
	combined, err := manifest.Combine(all...)
	if err != nil {
		return nil, err
	}
	defined := bs.ctx.DefinedFns()
	var mods []*ir.Module
	for i, n := range bs.names {
		// The paper's conservative strategy (§7): the tool re-loads,
		// re-parses and re-interprets the same TESLA automaton
		// description for every IR file it instruments.
		autos, err := combined.Compile()
		if err != nil {
			return nil, err
		}
		m, _, err := instrument.Module(bs.units[n].Module, autos, instrument.Options{
			DefinedFns: defined,
			Suffix:     fmt.Sprintf("__m%d", i),
		})
		if err != nil {
			return nil, err
		}
		ir.Optimize(m)
		mods = append(mods, m)
	}
	return mods, nil
}

func (bs *buildState) stripAll() []*ir.Module {
	var mods []*ir.Module
	for _, n := range bs.names {
		m := instrument.Strip(bs.units[n].Module)
		ir.Optimize(m)
		mods = append(mods, m)
	}
	return mods
}

// Fig10Measure measures clean and incremental build times with and without
// the TESLA workflow stages, over the given codebase.
func Fig10Measure(sources map[string]string) (BuildTimes, error) {
	var bt BuildTimes
	bs := &buildState{sources: sources}
	for n := range sources {
		bs.names = append(bs.names, n)
	}
	sortStrings(bs.names)

	// Clean default build: parse, compile, strip, link.
	start := time.Now()
	if err := bs.parseAll(); err != nil {
		return bt, err
	}
	if err := bs.compileAll(); err != nil {
		return bt, err
	}
	mods := bs.stripAll()
	if _, err := ir.Link("program", mods...); err != nil {
		return bt, err
	}
	bt.CleanDefault = time.Since(start)

	// Clean TESLA build: parse, compile, analyse, instrument all, link.
	start = time.Now()
	if err := bs.parseAll(); err != nil {
		return bt, err
	}
	if err := bs.compileAll(); err != nil {
		return bt, err
	}
	imods, err := bs.instrumentAll()
	if err != nil {
		return bt, err
	}
	if _, err := ir.Link("program", imods...); err != nil {
		return bt, err
	}
	bt.CleanTESLA = time.Since(start)

	// Incremental default: recompile one file, re-strip it, relink
	// cached modules.
	edited := "client.c"
	start = time.Now()
	f, err := csub.Parse(edited, bs.sources[edited])
	if err != nil {
		return bt, err
	}
	bs.files[edited] = f
	if err := bs.compileOne(edited); err != nil {
		return bt, err
	}
	// Only the changed module is re-stripped; others are cached.
	cached := make([]*ir.Module, 0, len(bs.names))
	for _, n := range bs.names {
		if n == edited {
			m := instrument.Strip(bs.units[n].Module)
			ir.Optimize(m)
			cached = append(cached, m)
		} else {
			cached = append(cached, mods[indexOf(bs.names, n)])
		}
	}
	if _, err := ir.Link("program", cached...); err != nil {
		return bt, err
	}
	bt.IncrDefault = time.Since(start)

	// Incremental TESLA: recompile one file — and then, because its
	// assertions feed the combined manifest, re-instrument every module
	// and relink.
	start = time.Now()
	f, err = csub.Parse(edited, bs.sources[edited])
	if err != nil {
		return bt, err
	}
	bs.files[edited] = f
	if err := bs.compileOne(edited); err != nil {
		return bt, err
	}
	imods, err = bs.instrumentAll()
	if err != nil {
		return bt, err
	}
	if _, err := ir.Link("program", imods...); err != nil {
		return bt, err
	}
	bt.IncrTESLA = time.Since(start)

	return bt, nil
}

// Fig10 runs the experiment and prints the figure 10 table.
func Fig10(w io.Writer, files, fnsPerFile int) error {
	bt, err := Fig10Measure(OpenSSLCodebase(files, fnsPerFile))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 10: OpenSSL build times (%d files)\n", files+2)
	fmt.Fprintf(w, "  %-24s %12v\n", "Clean build, Default", bt.CleanDefault)
	fmt.Fprintf(w, "  %-24s %12v  (%.1fx)\n", "Clean build, TESLA", bt.CleanTESLA,
		ratio(bt.CleanTESLA, bt.CleanDefault))
	fmt.Fprintf(w, "  %-24s %12v\n", "Incremental, Default", bt.IncrDefault)
	fmt.Fprintf(w, "  %-24s %12v  (%.0fx)\n", "Incremental, TESLA", bt.IncrTESLA,
		ratio(bt.IncrTESLA, bt.IncrDefault))
	fmt.Fprintf(w, "  paper shape: clean ≈2.5x slower; incremental slowdown is far larger\n")
	fmt.Fprintf(w, "  (one-to-many re-instrumentation; ≈500x on the paper's codebase)\n\n")
	return nil
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func indexOf(names []string, n string) int {
	for i, x := range names {
		if x == n {
			return i
		}
	}
	return -1
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
