package agg

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"tesla/internal/trace"
)

// ResumeSpool delivers a crashed producer's offline spool and closes the
// accounting its crash left open. The crashed run's client write-ahead-
// logged every sequenced frame before sending it, so the spool is a
// superset of what the server received from that producer; the handshake
// returns the server's acked watermark, frames at or below it are
// skipped, the rest are resent (the server deduplicates, so resending
// into an unsnapshotted server that already applied them is also safe),
// and a bye carrying the full-spool totals finally closes the producer
// cleanly: ingested + dropped == sent holds again.
//
// A connection failure mid-resume returns an error with nothing lost —
// the spool is untouched and a retry is idempotent.

// ResumeStats is what a completed resume delivered.
type ResumeStats struct {
	// Process is the producer identity the spool was replayed as.
	Process string
	// Frames and Events are the full-spool totals reported in the bye.
	Frames uint64
	Events uint64
	// RingDropped is the summed ring loss recorded in the spooled cuts.
	RingDropped uint64
	// Resent counts the frames actually rewritten (beyond the server's
	// ack watermark at handshake); Skipped were already acked durable.
	Resent  uint64
	Skipped uint64
}

// ResumeOpts configures ResumeSpool.
type ResumeOpts struct {
	// Tool names the resuming program in the hello (default
	// "tesla-agg resend").
	Tool string

	// wrapConn is the same test seam as ClientOpts.wrapConn.
	wrapConn func(net.Conn) net.Conn
}

// ResumeSpool opens the spool directory (recovering any torn tail),
// replays it to addr as process, and sends the closing bye.
func ResumeSpool(addr, process, dir string, opts ResumeOpts) (ResumeStats, error) {
	if opts.Tool == "" {
		opts.Tool = "tesla-agg resend"
	}
	st := ResumeStats{Process: process}
	spool, err := trace.OpenSpool(dir, trace.SpoolOpts{Sync: trace.SpoolSyncNone})
	if err != nil {
		return st, err
	}
	defer spool.Close()

	conn, ack, err := dialHandshake(addr, Hello{
		Proto: ProtoVersion, Codec: trace.Version,
		Tool: opts.Tool, Process: process,
	}, opts.wrapConn)
	if err != nil {
		return st, err
	}
	defer conn.Close()

	// Drain the server's per-frame acks concurrently: an unread ack
	// stream would eventually fill the socket and wedge the server's
	// apply worker against our own writes — a resume-shaped deadlock.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		fr := trace.NewFrameReader(conn)
		for {
			if _, _, err := fr.Next(); err != nil {
				return
			}
		}
	}()

	fw := trace.NewFrameWriter(conn)
	err = spool.Range(func(payload []byte) error {
		seq, events, tracePayload, err := SeqTraceInfo(payload)
		if err != nil {
			return fmt.Errorf("agg: spool %s: %w", dir, err)
		}
		st.Frames++
		st.Events += events
		// The cut's ring-loss delta sits in the trace header; decode it
		// so the bye's RingDropped matches what the live client counted.
		_, n := binary.Uvarint(tracePayload)
		if tr, err := trace.Read(bytes.NewReader(tracePayload[n:])); err == nil {
			st.RingDropped += tr.Dropped
		}
		if seq <= ack.Ack {
			st.Skipped++
			return nil
		}
		if err := fw.Frame(FrameSeqTrace, payload); err != nil {
			return fmt.Errorf("agg: resend to %s: %w", addr, err)
		}
		st.Resent++
		return nil
	})
	if err != nil {
		return st, err
	}
	if st.Frames == 0 {
		return st, fmt.Errorf("agg: spool %s holds no frames", dir)
	}

	bye, _ := json.Marshal(Bye{
		SentFrames:  st.Frames,
		SentEvents:  st.Events,
		RingDropped: st.RingDropped,
	})
	if err := fw.Frame(FrameBye, bye); err != nil {
		return st, fmt.Errorf("agg: bye to %s: %w", addr, err)
	}
	// Linger until the server drains and closes its end, so the bye (and
	// the frames before it) cannot be destroyed by our close.
	select {
	case <-readerDone:
	case <-time.After(10 * time.Second):
	}
	return st, nil
}
