package agg

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tesla/internal/trace"
)

// Server accepts producer and query connections and feeds the Store.
//
// Ingestion path per connection: the read loop validates the handshake,
// then moves trace frames into a bounded queue drained by one worker
// goroutine. The reader never blocks on aggregation — when the queue is
// full the frame is dropped and charged to the producer's drop counters
// (the PR 5 drop-new contract at fleet scope: degradation is explicit,
// accounted and queryable, never silent, and one slow stripe cannot
// backpressure the socket into stalling the producer's bye/health
// control frames).
//
// A FrameBye closes the queue and waits for the worker to drain it
// before recording the producer's accounting, so at the moment a bye is
// visible, ingested + dropped == sent holds exactly for that producer.
type Server struct {
	store *Store
	opts  ServerOpts

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// ackMu guards the live producer ack writers, keyed by process, so a
	// completed snapshot can broadcast the new durable watermarks without
	// waiting for the next frame of each producer.
	ackMu sync.Mutex
	acks  map[string]map[*ackWriter]struct{}

	// snapshot loop state (SnapshotEvery).
	snapStop chan struct{}
	snapDone chan struct{}
}

// ServerOpts configures a Server; the zero value selects the defaults.
type ServerOpts struct {
	// Queue bounds each connection's pending trace frames (default 64).
	Queue int
	// IdleTimeout bounds how long an established connection may sit
	// between frames (default 2 minutes; < 0 disables). Without it a
	// stalled producer — or a slow-loris client that completes the
	// handshake and then goes quiet — pins its goroutine, queue and
	// connection forever; the handshake timeout alone only covers the
	// time before hello.
	IdleTimeout time.Duration
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// NewServer creates a server over store.
func NewServer(store *Store, opts ServerOpts) *Server {
	if opts.Queue <= 0 {
		opts.Queue = 64
	}
	if opts.IdleTimeout == 0 {
		opts.IdleTimeout = 2 * time.Minute
	}
	return &Server{store: store, opts: opts, conns: map[net.Conn]struct{}{}, acks: map[string]map[*ackWriter]struct{}{}}
}

// Store returns the server's aggregation store.
func (s *Server) Store() *Store { return s.store }

// Serve accepts connections on ln until Close. It returns nil after a
// Close-initiated shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection, waits for their
// workers to drain, and stops the snapshot loop (if one is running). The
// drain is what makes SIGTERM graceful: every frame already queued is
// applied and accounted before Close returns, so a final snapshot taken
// after Close captures the complete state.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.mu.Lock()
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
		s.snapStop = nil
	}
	return err
}

// SnapshotEvery starts a loop persisting the store to path every
// interval, acking the fresh durable watermarks to live producers after
// each write. It flips the store into durable-ack mode first, so no ack
// ever runs ahead of the snapshot file. Close stops the loop; callers
// should take one final SnapshotNow after Close to capture the drained
// state.
func (s *Server) SnapshotEvery(path string, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	s.store.SetDurable(true)
	s.snapStop = make(chan struct{})
	s.snapDone = make(chan struct{})
	go func() {
		defer close(s.snapDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := s.SnapshotNow(path); err != nil {
					s.logf("agg: snapshot: %v", err)
				}
			case <-s.snapStop:
				return
			}
		}
	}()
}

// SnapshotNow persists one snapshot to path and broadcasts the new
// durable watermarks.
func (s *Server) SnapshotNow(path string) error {
	durable, err := s.store.WriteSnapshot(path)
	if err != nil {
		return err
	}
	s.ackMu.Lock()
	defer s.ackMu.Unlock()
	for process, seq := range durable {
		for aw := range s.acks[process] {
			aw.ack(seq)
		}
	}
	return nil
}

// ackWriter serialises server→producer frames on one connection (the
// hello ack, then FrameAcks from the worker and snapshot broadcaster).
// Writes carry a deadline: a producer that stopped reading must not
// wedge the worker — its connection dies instead, and the frames it
// never acked will be resent and deduplicated.
type ackWriter struct {
	mu   sync.Mutex
	conn net.Conn
	fw   *trace.FrameWriter
}

func (aw *ackWriter) ack(seq uint64) {
	payload, _ := json.Marshal(Ack{Seq: seq})
	aw.mu.Lock()
	defer aw.mu.Unlock()
	aw.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if aw.fw.Frame(FrameAck, payload) != nil {
		aw.conn.Close()
	}
	aw.conn.SetWriteDeadline(time.Time{})
}

func (s *Server) registerAck(process string, aw *ackWriter) {
	s.ackMu.Lock()
	if s.acks[process] == nil {
		s.acks[process] = map[*ackWriter]struct{}{}
	}
	s.acks[process][aw] = struct{}{}
	s.ackMu.Unlock()
}

func (s *Server) unregisterAck(process string, aw *ackWriter) {
	s.ackMu.Lock()
	delete(s.acks[process], aw)
	if len(s.acks[process]) == 0 {
		delete(s.acks, process)
	}
	s.ackMu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// handshakeTimeout bounds how long a connection may dawdle before its
// hello; it keeps a wedged client from pinning goroutines forever.
const handshakeTimeout = 30 * time.Second

// handle runs one connection from magic to close.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))

	var magicBuf [len(Magic)]byte
	if _, err := io.ReadFull(conn, magicBuf[:]); err != nil || string(magicBuf[:]) != Magic {
		s.logf("agg: %s: not a TESLAAGG stream", conn.RemoteAddr())
		return
	}
	fr := trace.NewFrameReader(conn)
	fw := trace.NewFrameWriter(conn)

	kind, payload, err := fr.Next()
	if err != nil || kind != FrameHello {
		s.logf("agg: %s: expected hello frame, got kind %d (%v)", conn.RemoteAddr(), kind, err)
		return
	}
	var hello Hello
	if err := json.Unmarshal(payload, &hello); err != nil {
		s.logf("agg: %s: bad hello: %v", conn.RemoteAddr(), err)
		return
	}
	if hello.Proto < MinProtoVersion || hello.Proto > ProtoVersion || hello.Codec != trace.Version {
		// Version negotiation: reject at the handshake with both sides'
		// versions and the producing tool named — an old producer is
		// never accepted and then killed mid-stream by a codec error.
		// Protos back to MinProtoVersion are accepted: a v1 producer
		// streams unsequenced frames and simply gets no dedup or acks.
		msg := rejectHello(hello)
		ack, _ := json.Marshal(HelloAck{OK: false, Message: msg, Proto: ProtoVersion, Codec: trace.Version})
		fw.Frame(FrameHelloAck, ack)
		s.logf("agg: %s: rejected: %s", conn.RemoteAddr(), msg)
		return
	}
	ackFrame := HelloAck{OK: true, Proto: ProtoVersion, Codec: trace.Version}
	if !hello.Query && hello.Proto >= 2 {
		// The resume watermark: a reconnecting producer prunes its
		// resend set to seq > Ack before sending anything.
		ackFrame.Ack = s.store.AckSeq(producerName(hello))
	}
	ack, _ := json.Marshal(ackFrame)
	if err := fw.Frame(FrameHelloAck, ack); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	if hello.Query {
		s.serveQueries(conn, fr, fw)
		return
	}
	s.serveProducer(hello, conn, fr, fw)
}

func producerName(h Hello) string {
	if h.Process == "" {
		return "unnamed"
	}
	return h.Process
}

// idleDeadline arms (or clears, when disabled) the per-frame read
// deadline on an established connection.
func (s *Server) idleDeadline(conn net.Conn) {
	if s.opts.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
	} else {
		conn.SetReadDeadline(time.Time{})
	}
}

// frameJob is one unit of worker-queue work for a producer connection: a
// trace frame to apply, or (payload == nil) a drop marker for a frame
// the queue rejected. Drop markers flow through the queue — blocking,
// unlike frames — so apply and drop accounting reach the store in
// arrival order and the applied watermark stays monotonic; a read-time
// drop racing the worker could otherwise be snapshotted before the
// frames that preceded it.
type frameJob struct {
	seq     uint64 // 0 for v1 unsequenced frames
	events  uint64
	payload []byte
}

// serveProducer runs the ingestion loop for one producer connection.
func (s *Server) serveProducer(hello Hello, conn net.Conn, fr *trace.FrameReader, fw *trace.FrameWriter) {
	process := producerName(hello)
	s.store.Connected(Hello{Process: process, Tool: hello.Tool})

	aw := &ackWriter{conn: conn, fw: fw}
	if hello.Proto >= 2 {
		s.registerAck(process, aw)
		defer s.unregisterAck(process, aw)
	}

	queue := make(chan frameJob, s.opts.Queue)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for job := range queue {
			switch {
			case job.payload == nil:
				s.store.DropSeqFrame(process, job.seq, job.events)
			case job.seq > 0:
				if err := s.store.ApplySeqFrame(process, job.seq, job.payload); err != nil {
					s.logf("%v", err)
				}
			default:
				if err := s.store.ApplyFrame(process, job.payload); err != nil {
					s.logf("%v", err)
				}
			}
			if job.seq > 0 && hello.Proto >= 2 {
				aw.ack(s.store.AckSeq(process))
			}
		}
	}()

	clean := false
	drained := false
loop:
	for {
		s.idleDeadline(conn)
		kind, payload, err := fr.Next()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("agg: %s: read: %v", process, err)
			}
			break
		}
		switch kind {
		case FrameTrace:
			// v1: unsequenced, no dedup, drop-new accounted at read time
			// (no watermark to keep monotonic).
			select {
			case queue <- frameJob{payload: payload}:
			default:
				s.store.DropFrame(process, FrameEventCount(payload))
			}
		case FrameSeqTrace:
			seq, events, tracePayload, err := SeqTraceInfo(payload)
			if err != nil {
				s.logf("agg: %s: %v", process, err)
				s.store.DropFrame(process, 0)
				continue
			}
			if !s.store.BeginSeqFrame(process, seq, events) {
				// Duplicate resend: already applied (or restored from a
				// snapshot covering it). Re-ack so the client prunes it.
				aw.ack(s.store.AckSeq(process))
				continue
			}
			select {
			case queue <- frameJob{seq: seq, events: events, payload: tracePayload}:
			default:
				// Queue full: drop-new, but the accounting travels
				// through the queue as a marker so it lands in order.
				queue <- frameJob{seq: seq, events: events}
			}
		case FrameHealth:
			var rows []HealthRow
			if err := json.Unmarshal(payload, &rows); err == nil {
				s.store.MergeHealth(process, rows)
			}
		case FrameBye:
			var bye Bye
			if err := json.Unmarshal(payload, &bye); err != nil {
				s.logf("agg: %s: bad bye: %v", process, err)
				break loop
			}
			// Drain before recording: once the bye is visible in a
			// query, the producer's ingested + dropped == sent exactly.
			close(queue)
			<-done
			drained = true
			s.store.ByeReceived(process, bye)
			clean = true
			break loop
		default:
			s.logf("agg: %s: unknown frame kind %d", process, kind)
		}
	}
	if !drained {
		close(queue)
		<-done
	}
	s.store.Closed(process, clean)
}

// serveQueries answers query frames until the client goes away.
func (s *Server) serveQueries(conn net.Conn, fr *trace.FrameReader, fw *trace.FrameWriter) {
	for {
		s.idleDeadline(conn)
		kind, payload, err := fr.Next()
		if err != nil {
			return
		}
		if kind != FrameQuery {
			continue
		}
		var q Query
		if err := json.Unmarshal(payload, &q); err != nil {
			fw.Frame(FrameResult, errJSON(fmt.Errorf("bad query: %w", err)))
			continue
		}
		res, err := s.Answer(q)
		if err != nil {
			fw.Frame(FrameResult, errJSON(err))
			continue
		}
		if fw.Frame(FrameResult, res) != nil {
			return
		}
	}
}

// Answer evaluates one query against the store, returning indented JSON
// with stable field order.
func (s *Server) Answer(q Query) ([]byte, error) {
	var v any
	switch q.Q {
	case "", "fleet":
		v = s.store.Fleet()
	case "failures":
		v = s.store.Failures()
	case "topk":
		if q.Class == "" {
			return nil, fmt.Errorf("topk query needs a class")
		}
		v = s.store.TopK(q.Class, q.K)
	case "samples":
		v = s.store.Samples(q.Class)
	case "health":
		v = s.store.Health()
	default:
		return nil, fmt.Errorf("unknown query %q (want fleet, failures, topk, samples or health)", q.Q)
	}
	return json.MarshalIndent(v, "", "  ")
}

func errJSON(err error) []byte {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return b
}
