package csub

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct
)

type token struct {
	kind tokKind
	text string
	num  int64
	pos  int
	line int
}

type lexer struct {
	file string
	src  string
	pos  int
	line int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1}
}

// multi-character punctuation, longest first.
var punct2 = []string{"->", "==", "!=", "<=", ">=", "&&", "||", "+=", "++"}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("%s:%d: unterminated comment", l.file, l.line)
			}
			l.line += strings.Count(l.src[l.pos:l.pos+end+4], "\n")
			l.pos += end + 4
		default:
			goto scan
		}
	}
	return token{kind: tEOF, pos: l.pos, line: l.line}, nil

scan:
	start, line := l.pos, l.line
	c := l.src[l.pos]
	switch {
	case isAlpha(c):
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tIdent, text: l.src[start:l.pos], pos: start, line: line}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && isNum(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		n, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, fmt.Errorf("%s:%d: bad number %q", l.file, line, text)
		}
		return token{kind: tNumber, num: n, text: text, pos: start, line: line}, nil
	case c == '#':
		l.pos++
		return token{kind: tPunct, text: "#", pos: start, line: line}, nil
	default:
		for _, p := range punct2 {
			if strings.HasPrefix(l.src[l.pos:], p) {
				l.pos += len(p)
				return token{kind: tPunct, text: p, pos: start, line: line}, nil
			}
		}
		l.pos++
		return token{kind: tPunct, text: string(c), pos: start, line: line}, nil
	}
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isAlnum(c byte) bool { return isAlpha(c) || c >= '0' && c <= '9' }

func isNum(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' || c == 'x' || c == 'X'
}
