package csub_test

import (
	"strings"
	"testing"

	"tesla/internal/compiler"
	"tesla/internal/csub"
)

// FuzzCsubParse feeds arbitrary source through the whole front end: the
// parser must never panic and must position every error ("file:line: ..."),
// and whatever parses must also survive the compiler (type checker and IR
// lowering) without panicking — compile errors are fine, crashes are not.
func FuzzCsubParse(f *testing.F) {
	seeds := []string{
		``,
		`int g = 3;`,
		`int g = -3; int h = !0;`,
		`#define N 4
struct box { int v; int next; };
int sum(struct box *b, int n) {
	int i = 0; int acc = 0;
	while (i < n) { acc = acc + b->v; i = i + 1; }
	return acc + N;
}`,
		`int open(int fd);
int main(int fd) {
	TESLA_SYSCALL_PREVIOUSLY(open(fd) == 0);
	return open(fd);
}`,
		`int f() { TESLA_WITHIN(f, eventually(g(ANY(ptr)) == 1)); return 0; }`,
		`int f(int x) { if (x) { return 1; } else { return 0; } }`,
		`int f() { TESLA_WITHIN(f, x()) }`, // missing semicolon
		`int g = x;`,                       // non-constant initialiser
		`struct s { int a; }; int f(struct s *p) { p->a = 1; return p[0]; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		file, err := csub.Parse("fuzz.c", src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "fuzz.c:") {
				t.Fatalf("parse error not positioned: %v", err)
			}
			return
		}
		if file == nil {
			t.Fatal("Parse returned nil file without error")
		}
		// The compiler runs its own assertion parser over TESLA macro text
		// and type-checks the AST; none of it may panic on parser-accepted
		// input.
		_, _, _ = compiler.Compile(map[string]string{"fuzz.c": src})
	})
}
