// Package objc is a miniature Objective-C runtime: selector-based dynamic
// dispatch with an interposition mechanism. In the paper (§4.3), methods
// can be replaced at run time, so callee-side instrumentation is impossible
// statically; instead the modified GNUstep runtime consults a global table
// of interposition hooks before calling any method. That table — and the
// performance ladder of figure 14a (no tracing compiled in, tracing
// support idle, trivial interposition, full TESLA) — is reproduced here.
package objc

import (
	"fmt"

	"tesla/internal/core"
	"tesla/internal/monitor"
)

// Method is an implementation bound to a selector.
type Method func(rt *Runtime, self *Object, args ...core.Value) core.Value

// Class is an Objective-C class: a method table with single inheritance.
type Class struct {
	Name    string
	Super   *Class
	methods map[string]Method
}

// NewClass creates a class.
func NewClass(name string, super *Class) *Class {
	return &Class{Name: name, Super: super, methods: map[string]Method{}}
}

// AddMethod installs (or replaces — this is a dynamic language) a method.
func (c *Class) AddMethod(selector string, m Method) {
	c.methods[selector] = m
}

func (c *Class) lookup(selector string) Method {
	for cl := c; cl != nil; cl = cl.Super {
		if m, ok := cl.methods[selector]; ok {
			return m
		}
	}
	return nil
}

// Object is an instance.
type Object struct {
	ID    core.Value
	Class *Class
	// IVars is simple instance storage.
	IVars map[string]core.Value
}

// TraceMode is the runtime build/configuration ladder of figure 14a.
type TraceMode int

const (
	// NoTracing: a normal release build — dispatch never consults the
	// interposition table.
	NoTracing TraceMode = iota
	// TracingCompiled: the runtime is linked with tracing enabled, but
	// nothing is interposed; every send pays the table consultation.
	TracingCompiled
	// Interposed: a trivial interposition function is installed on the
	// instrumented selectors.
	Interposed
	// TESLA: interposition hooks forward events to a TESLA monitor
	// thread (and through it to automata and custom handlers).
	TESLA
)

func (m TraceMode) String() string {
	switch m {
	case NoTracing:
		return "release"
	case TracingCompiled:
		return "tracing-compiled"
	case Interposed:
		return "interposition"
	case TESLA:
		return "TESLA"
	default:
		return fmt.Sprintf("TraceMode(%d)", int(m))
	}
}

// Hook is an interposition callback invoked before the method runs.
type Hook func(self *Object, selector string, args []core.Value)

// Runtime is the Objective-C runtime instance.
type Runtime struct {
	Mode   TraceMode
	nextID core.Value

	// hooks is the global interposition table consulted before calling
	// any method (when tracing is compiled in).
	hooks map[string]Hook
	// retHooks fire after the method returns (fig. 8's "extra events on
	// method return").
	retHooks map[string]Hook

	// Thread, in TESLA mode, receives message-send events.
	Thread *monitor.Thread
	// MsgCount tallies dispatches for benchmarks.
	MsgCount uint64
}

// NewRuntime creates a runtime in the given mode.
func NewRuntime(mode TraceMode) *Runtime {
	return &Runtime{
		Mode:     mode,
		nextID:   1,
		hooks:    map[string]Hook{},
		retHooks: map[string]Hook{},
	}
}

// NewObject instantiates a class.
func (rt *Runtime) NewObject(c *Class) *Object {
	rt.nextID++
	return &Object{ID: rt.nextID, Class: c, IVars: map[string]core.Value{}}
}

// Interpose installs an entry hook for a selector.
func (rt *Runtime) Interpose(selector string, h Hook) {
	rt.hooks[selector] = h
}

// InterposeReturn installs a return hook for a selector.
func (rt *Runtime) InterposeReturn(selector string, h Hook) {
	rt.retHooks[selector] = h
}

// InterposeTESLA wires the given selectors to the monitor thread: the
// mechanism by which figure 8's assertion instruments ~110 AppKit methods
// without access to their source.
func (rt *Runtime) InterposeTESLA(th *monitor.Thread, selectors []string, returns []string) {
	rt.Thread = th
	for _, sel := range selectors {
		s := sel
		rt.Interpose(s, func(self *Object, _ string, args []core.Value) {
			th.Send(s, self.ID, args...)
		})
	}
	for _, sel := range returns {
		s := sel
		rt.InterposeReturn(s, func(self *Object, _ string, args []core.Value) {
			th.SendReturn(s, 0, self.ID, args...)
		})
	}
}

// MsgSend is objc_msgSend: dynamic dispatch with interposition.
func (rt *Runtime) MsgSend(self *Object, selector string, args ...core.Value) core.Value {
	rt.MsgCount++
	if rt.Mode != NoTracing {
		// The tracing-enabled runtime consults the global table before
		// calling any method.
		if h := rt.hooks[selector]; h != nil {
			h(self, selector, args)
		}
	}
	m := self.Class.lookup(selector)
	if m == nil {
		panic(fmt.Sprintf("objc: %s does not respond to %q", self.Class.Name, selector))
	}
	ret := m(rt, self, args...)
	if rt.Mode != NoTracing {
		if h := rt.retHooks[selector]; h != nil {
			h(self, selector, args)
		}
	}
	return ret
}

// RespondsTo reports whether the object implements the selector.
func (rt *Runtime) RespondsTo(self *Object, selector string) bool {
	return self.Class.lookup(selector) != nil
}
