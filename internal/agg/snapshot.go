package agg

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tesla/internal/trace"
)

// Store snapshot/restore: the durability half of tesla-agg. A snapshot
// is a frame-consistent copy of everything the store knows — totals,
// per-producer accounting including the sequence watermarks, every
// aggregated site with its reservoir samples — taken under the applyMu
// write lock so no frame is captured half-applied. It is written
// atomically (temp file, fsync, rename, directory fsync), so the file on
// disk is always a complete snapshot: either the old one or the new one,
// never a torn one. On restart, Restore rebuilds the store and the
// restored receivedSeq watermarks make resent frames from recovering
// producers deduplicate exactly where the snapshot left off — the server
// half of the exactly-once contract.

// SnapshotVersion is the snapshot schema version; mismatches are
// rejected at load (restoring half-understood state would corrupt
// accounting silently).
const SnapshotVersion = 1

// Snapshot is the serialised store state.
type Snapshot struct {
	Version int `json:"version"`

	TotalFrames   uint64 `json:"totalFrames"`
	TotalEvents   uint64 `json:"totalEvents"`
	DroppedFrames uint64 `json:"droppedFrames"`
	DroppedEvents uint64 `json:"droppedEvents"`

	Producers []SnapProducer `json:"producers"`
	Sites     []SnapSite     `json:"sites"`
}

// SnapProducer is one producer's persisted accounting. Seq is the
// applied watermark at snapshot time — after a restore it becomes the
// received, applied and durable watermark at once.
type SnapProducer struct {
	Process       string               `json:"process"`
	Tool          string               `json:"tool,omitempty"`
	Clean         bool                 `json:"clean,omitempty"`
	Disconnects   int                  `json:"disconnects,omitempty"`
	Frames        uint64               `json:"frames"`
	Events        uint64               `json:"events"`
	DroppedFrames uint64               `json:"droppedFrames,omitempty"`
	DroppedEvents uint64               `json:"droppedEvents,omitempty"`
	RingDropped   uint64               `json:"ringDropped,omitempty"`
	BadFrames     uint64               `json:"badFrames,omitempty"`
	DupFrames     uint64               `json:"dupFrames,omitempty"`
	DupEvents     uint64               `json:"dupEvents,omitempty"`
	Seq           uint64               `json:"seq,omitempty"`
	Bye           *Bye                 `json:"bye,omitempty"`
	Health        map[string]HealthRow `json:"health,omitempty"`
}

// SnapSite is one aggregated cell.
type SnapSite struct {
	Process string     `json:"process"`
	Class   string     `json:"class"`
	Kind    trace.Kind `json:"kind"`
	From    uint32     `json:"from,omitempty"`
	To      uint32     `json:"to,omitempty"`
	Symbol  string     `json:"symbol,omitempty"`
	Verdict string     `json:"verdict,omitempty"`
	Count   uint64     `json:"count"`
	Seen    uint64     `json:"seen,omitempty"`
	Samples []Sample   `json:"samples,omitempty"`
}

// Snapshot captures the store. It blocks frame applies for the copy
// (applyMu write side), which is the price of frame-atomicity; the copy
// itself is proportional to live state, not to ingestion history.
func (s *Store) Snapshot() *Snapshot {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()

	snap := &Snapshot{
		Version:       SnapshotVersion,
		TotalFrames:   s.frames.Load(),
		TotalEvents:   s.events.Load(),
		DroppedFrames: s.droppedFrames.Load(),
		DroppedEvents: s.droppedEvents.Load(),
	}
	s.forEachSite(func(k siteKey, a *siteAgg) {
		site := SnapSite{
			Process: k.process, Class: k.class, Kind: k.kind,
			From: k.from, To: k.to, Symbol: k.symbol, Verdict: k.verdict,
			Count: a.count, Seen: a.seen,
		}
		for _, smp := range a.samples {
			site.Samples = append(site.Samples, Sample{
				Process: smp.Process,
				Events:  append([]trace.Event(nil), smp.Events...),
			})
		}
		snap.Sites = append(snap.Sites, site)
	})
	sort.Slice(snap.Sites, func(i, j int) bool { return siteLess(&snap.Sites[i], &snap.Sites[j]) })

	s.mu.Lock()
	for _, p := range s.procs {
		sp := SnapProducer{
			Process:       p.process,
			Tool:          p.tool,
			Clean:         p.clean,
			Disconnects:   p.disconnects,
			Frames:        p.frames,
			Events:        p.events,
			DroppedFrames: p.droppedFrames,
			DroppedEvents: p.droppedEvents,
			RingDropped:   p.ringDropped,
			BadFrames:     p.badFrames,
			DupFrames:     p.dupFrames,
			DupEvents:     p.dupEvents,
			Seq:           p.appliedSeq,
		}
		if p.hasBye {
			bye := p.bye
			sp.Bye = &bye
		}
		if len(p.health) > 0 {
			sp.Health = make(map[string]HealthRow, len(p.health))
			for k, v := range p.health {
				sp.Health[k] = v
			}
		}
		snap.Producers = append(snap.Producers, sp)
	}
	s.mu.Unlock()
	sort.Slice(snap.Producers, func(i, j int) bool {
		return snap.Producers[i].Process < snap.Producers[j].Process
	})
	return snap
}

func siteLess(a, b *SnapSite) bool {
	switch {
	case a.Process != b.Process:
		return a.Process < b.Process
	case a.Class != b.Class:
		return a.Class < b.Class
	case a.Kind != b.Kind:
		return a.Kind < b.Kind
	case a.From != b.From:
		return a.From < b.From
	case a.To != b.To:
		return a.To < b.To
	case a.Symbol != b.Symbol:
		return a.Symbol < b.Symbol
	default:
		return a.Verdict < b.Verdict
	}
}

// WriteSnapshot snapshots the store and persists it atomically at path,
// then advances every producer's durable watermark to the snapshotted
// sequence. It returns those watermarks so the server can broadcast
// fresh acks — the moment a snapshot lands is the moment clients may
// prune their spools.
func (s *Store) WriteSnapshot(path string) (map[string]uint64, error) {
	snap := s.Snapshot()
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(path, data); err != nil {
		return nil, err
	}
	durable := make(map[string]uint64, len(snap.Producers))
	s.mu.Lock()
	for _, sp := range snap.Producers {
		p := s.proc(sp.Process)
		if sp.Seq > p.durableSeq {
			p.durableSeq = sp.Seq
		}
		durable[sp.Process] = p.durableSeq
	}
	s.mu.Unlock()
	return durable, nil
}

// LoadSnapshot reads a snapshot file. A missing file is (nil, nil): a
// fresh store is the correct restore of "never snapshotted".
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("agg: snapshot %s: %w", path, err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("agg: snapshot %s is schema v%d; this tesla-agg reads v%d", path, snap.Version, SnapshotVersion)
	}
	return &snap, nil
}

// Restore installs a snapshot into a fresh store (nil is a no-op). Every
// producer comes back disconnected with its received, applied and
// durable watermarks set to the snapshotted sequence, so a recovering
// producer's resends deduplicate from exactly the durable prefix.
// Reservoir RNG state is not persisted: post-restore samples continue
// from the configured seed, which keeps sampling fair but not byte-
// reproducible across a crash (counts, unlike samples, are exact).
func (s *Store) Restore(snap *Snapshot) {
	if snap == nil {
		return
	}
	s.frames.Store(snap.TotalFrames)
	s.events.Store(snap.TotalEvents)
	s.droppedFrames.Store(snap.DroppedFrames)
	s.droppedEvents.Store(snap.DroppedEvents)

	for i := range snap.Sites {
		site := &snap.Sites[i]
		k := siteKey{
			process: site.Process, class: site.Class, kind: site.Kind,
			from: site.From, to: site.To, symbol: site.Symbol, verdict: site.Verdict,
		}
		st := s.stripeOf(k)
		st.mu.Lock()
		a := st.sites[k]
		if a == nil {
			a = &siteAgg{}
			st.sites[k] = a
		}
		a.count = site.Count
		a.seen = site.Seen
		a.samples = nil
		for _, smp := range site.Samples {
			a.samples = append(a.samples, Sample{
				Process: smp.Process,
				Events:  append([]trace.Event(nil), smp.Events...),
			})
		}
		st.mu.Unlock()
	}

	s.mu.Lock()
	for _, sp := range snap.Producers {
		p := s.proc(sp.Process)
		p.tool = sp.Tool
		p.clean = sp.Clean
		p.disconnects = sp.Disconnects
		p.frames = sp.Frames
		p.events = sp.Events
		p.droppedFrames = sp.DroppedFrames
		p.droppedEvents = sp.DroppedEvents
		p.ringDropped = sp.RingDropped
		p.badFrames = sp.BadFrames
		p.dupFrames = sp.DupFrames
		p.dupEvents = sp.DupEvents
		p.receivedSeq = sp.Seq
		p.appliedSeq = sp.Seq
		p.durableSeq = sp.Seq
		if sp.Bye != nil {
			p.bye = *sp.Bye
			p.hasBye = true
		}
		if len(sp.Health) > 0 {
			p.health = make(map[string]HealthRow, len(sp.Health))
			for k, v := range sp.Health {
				p.health[k] = v
			}
		}
	}
	s.mu.Unlock()
}

// writeFileAtomic writes data so path always holds either the previous
// complete file or the new complete file: write to a temp file in the
// same directory, fsync it, rename over path, fsync the directory.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
