// Benchmarks regenerating the paper's evaluation (§5), one benchmark family
// per table/figure. Absolute numbers reflect this simulator, not the
// paper's FreeBSD/LLVM testbed; the comparisons within each family are the
// reproduction target. cmd/tesla-bench prints the same data as formatted
// tables.
package tesla

import (
	"sync"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/bench"
	"tesla/internal/core"
	"tesla/internal/gui"
	"tesla/internal/kernel"
	"tesla/internal/monitor"
	"tesla/internal/objc"
	"tesla/internal/spec"
	"tesla/internal/toolchain"
	"tesla/internal/xnee"
)

// BenchmarkFig10Build measures clean and incremental builds of the
// synthetic OpenSSL codebase, with and without the TESLA workflow.
func BenchmarkFig10Build(b *testing.B) {
	sources := bench.OpenSSLCodebase(12, 6)
	for _, which := range []string{"CleanDefault", "CleanTESLA", "IncrDefault", "IncrTESLA"} {
		b.Run(which, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bt, err := bench.Fig10Measure(sources)
				if err != nil {
					b.Fatal(err)
				}
				switch which {
				case "CleanDefault":
					b.ReportMetric(float64(bt.CleanDefault.Nanoseconds()), "ns/build")
				case "CleanTESLA":
					b.ReportMetric(float64(bt.CleanTESLA.Nanoseconds()), "ns/build")
				case "IncrDefault":
					b.ReportMetric(float64(bt.IncrDefault.Nanoseconds()), "ns/build")
				case "IncrTESLA":
					b.ReportMetric(float64(bt.IncrTESLA.Nanoseconds()), "ns/build")
				}
			}
		})
	}
}

// BenchmarkFig11aOpenClose is the lmbench-style open/close microbenchmark
// across kernel configurations.
func BenchmarkFig11aOpenClose(b *testing.B) {
	for _, cfg := range bench.KernelConfigs() {
		b.Run(cfg.Name, func(b *testing.B) {
			k, err := bench.BootConfig(cfg, kernel.BugConfig{})
			if err != nil {
				b.Fatal(err)
			}
			th := k.NewThread()
			bench.OpenClosePrewarm(th)
			b.ResetTimer()
			kernel.OpenClose(th, b.N)
		})
	}
}

// BenchmarkFig11bOLTP is the socket-intensive macrobenchmark.
func BenchmarkFig11bOLTP(b *testing.B) {
	for _, cfg := range bench.KernelConfigs() {
		b.Run(cfg.Name, func(b *testing.B) {
			k, err := bench.BootConfig(cfg, kernel.BugConfig{})
			if err != nil {
				b.Fatal(err)
			}
			th := k.NewThread()
			pair, err := kernel.SetupOLTP(th)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernel.OLTPTransaction(th, pair)
			}
		})
	}
}

// BenchmarkFig11bBuild is the FS/compute-intensive macrobenchmark.
func BenchmarkFig11bBuild(b *testing.B) {
	for _, cfg := range bench.KernelConfigs() {
		b.Run(cfg.Name, func(b *testing.B) {
			k, err := bench.BootConfig(cfg, kernel.BugConfig{})
			if err != nil {
				b.Fatal(err)
			}
			th := k.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernel.BuildStep(th, i)
			}
		})
	}
}

// BenchmarkFig12Context compares per-thread and global assertion contexts:
// the global context serialises all threads' events behind one lock, which
// comes at a run-time cost under concurrency.
func BenchmarkFig12Context(b *testing.B) {
	for _, ctx := range []spec.Context{spec.PerThread, spec.Global} {
		b.Run(ctx.String(), func(b *testing.B) {
			a := spec.Assert("fig12", ctx, spec.WithinBound("amd64_syscall"),
				spec.Previously(spec.Call("mac_socket_check_poll",
					spec.AnyPtr(), spec.Var("so")).ReturnsInt(0)))
			auto := automata.MustCompile(a)
			mon := monitor.MustNew(monitor.Options{}, auto)
			k := kernel.New(kernel.Config{Monitor: mon})

			// One kernel thread and socket pair per goroutine,
			// created before the clock starts.
			var mu sync.Mutex
			mkThread := func() (*kernel.Thread, kernel.OLTPPair) {
				mu.Lock()
				defer mu.Unlock()
				th := k.NewThread()
				pair, err := kernel.SetupOLTP(th)
				if err != nil {
					b.Fatal(err)
				}
				return th, pair
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				th, pair := mkThread()
				for pb.Next() {
					th.Poll(pair.Client)
				}
			})
		})
	}
}

// BenchmarkFig13LazyInit compares the naive implementation (work on every
// syscall-bounded automaton at every syscall) against the lazy-init
// optimisation, for micro and macro workloads.
func BenchmarkFig13LazyInit(b *testing.B) {
	cases := []struct {
		name  string
		naive bool
		macro bool
	}{
		{"MicroPre", true, false},
		{"MicroPost", false, false},
		{"MacroPre", true, true},
		{"MacroPost", false, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := bench.KernelConfig{Name: c.name, Sets: kernel.SetAll, Naive: c.naive}
			k, err := bench.BootConfig(cfg, kernel.BugConfig{})
			if err != nil {
				b.Fatal(err)
			}
			th := k.NewThread()
			pair, err := kernel.SetupOLTP(th)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.macro {
					kernel.OLTPTransaction(th, pair)
				} else {
					// Micro: one cheap syscall per iteration —
					// the per-syscall automaton bookkeeping
					// dominates.
					th.Poll(pair.Client)
				}
			}
		})
	}
}

// BenchmarkFig14aMsgSend is the Objective-C message-send ladder: release,
// tracing compiled in, trivial interposition, full TESLA.
func BenchmarkFig14aMsgSend(b *testing.B) {
	for _, mode := range []objc.TraceMode{objc.NoTracing, objc.TracingCompiled, objc.Interposed, objc.TESLA} {
		b.Run(mode.String(), func(b *testing.B) {
			rt := objc.NewRuntime(mode)
			cls := objc.NewClass("Probe", nil)
			cls.AddMethod("ping", func(*objc.Runtime, *objc.Object, ...core.Value) core.Value { return 1 })
			obj := rt.NewObject(cls)
			switch mode {
			case objc.Interposed:
				rt.Interpose("ping", func(*objc.Object, string, []core.Value) {})
			case objc.TESLA:
				auto := automata.MustCompile(spec.Within("fig14a", "loop",
					spec.Previously(spec.AtLeast(0, spec.Msg(spec.Any("id"), "ping")))))
				m := monitor.MustNew(monitor.Options{}, auto)
				th := m.NewThread()
				rt.InterposeTESLA(th, []string{"ping"}, nil)
				th.Call("loop")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.MsgSend(obj, "ping")
			}
		})
	}
}

// BenchmarkFig14bRedraw measures run-loop iterations (Xnee dialog replay)
// across the four tracing configurations.
func BenchmarkFig14bRedraw(b *testing.B) {
	for _, mode := range []bench.Fig14bMode{bench.BaselineMode, bench.InterpositionMode, bench.TESLAMode, bench.TracingMode} {
		b.Run(mode.String(), func(b *testing.B) {
			_, rl, err := bench.Fig14bSetup(mode)
			if err != nil {
				b.Fatal(err)
			}
			script := xnee.DialogSession(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rl.ProcessBatch(script.Batches[i%len(script.Batches)])
			}
		})
	}
}

// BenchmarkCoreUpdateState is the hot-path cost of one libtesla event.
func BenchmarkCoreUpdateState(b *testing.B) {
	cls := &core.Class{Name: "bench", States: 5, Limit: 8}
	s := core.NewStore(core.PerThread, nil)
	s.Register(cls)
	enter := core.TransitionSet{{From: 0, To: 1, Flags: core.TransInit}}
	check := core.TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 2, KeyMask: 1}}
	exit := core.TransitionSet{
		{From: 1, To: 4, Flags: core.TransCleanup},
		{From: 2, To: 4, Flags: core.TransCleanup},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.UpdateState(cls, "enter", 0, core.AnyKey, enter)
		s.UpdateState(cls, "check", 0, core.NewKey(core.Value(i&7)), check)
		s.UpdateState(cls, "exit", 0, core.AnyKey, exit)
	}
}

// BenchmarkAblationPreallocation compares preallocated instance tables of
// different sizes: scanning cost grows with the block, motivating the
// fixed small default.
func BenchmarkAblationPreallocation(b *testing.B) {
	for _, limit := range []int{8, 32, 256} {
		b.Run(map[int]string{8: "limit8", 32: "limit32", 256: "limit256"}[limit], func(b *testing.B) {
			cls := &core.Class{Name: "prealloc", States: 5, Limit: limit}
			s := core.NewStore(core.PerThread, nil)
			s.Register(cls)
			enter := core.TransitionSet{{From: 0, To: 1, Flags: core.TransInit}}
			check := core.TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 2, KeyMask: 1}}
			exit := core.TransitionSet{
				{From: 1, To: 4, Flags: core.TransCleanup},
				{From: 2, To: 4, Flags: core.TransCleanup},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.UpdateState(cls, "enter", 0, core.AnyKey, enter)
				for j := 0; j < 4; j++ {
					s.UpdateState(cls, "check", 0, core.NewKey(core.Value(j)), check)
				}
				s.UpdateState(cls, "exit", 0, core.AnyKey, exit)
			}
		})
	}
}

// BenchmarkAblationCallerVsCallee compares caller- and callee-side
// instrumentation of the same event in the compiled pipeline.
func BenchmarkAblationCallerVsCallee(b *testing.B) {
	prog := func(side string) map[string]string {
		return map[string]string{"p.c": `
int lib_op(int x) { return x + 1; }
int run(int n) {
	int i = 0;
	int acc = 0;
	while (i < n) {
		acc = acc + lib_op(i);
		i++;
	}
	TESLA_WITHIN(main, previously(` + side + `(lib_op(ANY(int)) == 1)));
	return acc;
}
int main(int n) { return run(n); }
`}
	}
	for _, side := range []string{"caller", "callee"} {
		b.Run(side, func(b *testing.B) {
			build, err := toolchain.BuildProgram(prog(side), true)
			if err != nil {
				b.Fatal(err)
			}
			rt, err := build.NewRuntime(monitor.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.VM.Run("main", 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVMOverhead compares instrumented vs uninstrumented execution of
// the same program on the IR interpreter. The instrumented rung runs twice:
// through the compiled step engines (the default) and pinned to the
// interpreted transition walk (NoEngine) — the gap between the two is the
// interpreter tax the engines remove.
func BenchmarkVMOverhead(b *testing.B) {
	src := map[string]string{"p.c": `
int chk(int x) { return 0; }
int work(int n) {
	int i = 0;
	int acc = 0;
	while (i < n) {
		int c = chk(i);
		acc = acc + i * 3 % 11 + c;
		i++;
	}
	TESLA_WITHIN(main, previously(chk(ANY(int)) == 0));
	return acc;
}
int main(int n) { return work(n); }
`}
	rungs := []struct {
		name         string
		instrumented bool
		opts         monitor.Options
	}{
		{"plain", false, monitor.Options{}},
		{"instrumented", true, monitor.Options{}},
		{"instrumented-noengine", true, monitor.Options{NoEngine: true}},
	}
	for _, r := range rungs {
		b.Run(r.name, func(b *testing.B) {
			build, err := toolchain.BuildProgram(src, r.instrumented)
			if err != nil {
				b.Fatal(err)
			}
			rt, err := build.NewRuntime(r.opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.VM.Run("main", 100); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGUICursorTracking measures the cursor/tracking machinery with
// TESLA tracing attached — the §3.5.3 debugging setup.
func BenchmarkGUICursorTracking(b *testing.B) {
	_, rl, err := bench.Fig14bSetup(bench.TESLAMode)
	if err != nil {
		b.Fatal(err)
	}
	script := xnee.CursorCrossing(gui.Rect{X: 0, Y: 0, W: 100, H: 100}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, batch := range script.Batches {
			rl.ProcessBatch(batch)
		}
	}
}
