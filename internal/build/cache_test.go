package build_test

// Cache-behaviour tests: what re-runs after an edit. These pin down the
// §5.1 rebuild semantics the graph exists to reproduce — a body edit
// re-instruments one unit, an assertion edit re-instruments all of them —
// plus cache robustness (corrupt objects) and diagnostic collection.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tesla/internal/build"
	"tesla/internal/toolchain"
)

// threeFiles is a small cross-file program: lib defines the event, crypto
// uses it, client asserts it.
func threeFiles() map[string]string {
	return map[string]string{
		"lib.c": `
int checksum(int x) { return x % 97; }
`,
		"crypto.c": `
int verify(int sig) {
	int c = checksum(sig);
	if (c == 0) { return 1; }
	return 0;
}
`,
		"client.c": `
int fetch(int sig) {
	int ok = verify(sig);
	TESLA_WITHIN(main, previously(verify(ANY(int)) == 1));
	return ok;
}
int main(int sig) { return fetch(sig); }
`,
	}
}

// statuses maps node ID → status for a build's report.
func statuses(b *toolchain.Build) map[string]build.Status {
	out := map[string]build.Status{}
	for _, n := range b.Graph.Nodes {
		out[n.ID] = n.Status
	}
	return out
}

func mustBuild(t *testing.T, sources map[string]string, opts toolchain.BuildOptions) *toolchain.Build {
	t.Helper()
	b, err := toolchain.BuildProgramOpts(sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSecondBuildAllHits(t *testing.T) {
	dir := t.TempDir()
	opts := toolchain.BuildOptions{Instrument: true, CacheDir: dir}
	cold := mustBuild(t, threeFiles(), opts)
	if c := cold.Graph.Counts(); c.Built == 0 {
		t.Fatalf("cold build should build: %s", cold.Graph.Summary())
	}
	warm := mustBuild(t, threeFiles(), opts)
	c := warm.Graph.Counts()
	if !warm.Graph.AllCached() || c.DiskHits == 0 {
		t.Fatalf("warm build not fully cached: %s", warm.Graph.Summary())
	}
	// No file may have been re-parsed.
	for _, n := range warm.Graph.Nodes {
		if strings.HasPrefix(n.ID, "parse:") {
			t.Errorf("warm build re-parsed: %s", n.ID)
		}
	}
	if cold.Program.String() != warm.Program.String() {
		t.Fatal("warm program differs from cold")
	}
}

// TestBodyEditReinstrumentsOneUnit: editing a function body leaves the
// manifest fragments unchanged, so only the edited unit re-compiles and
// re-instruments; every other unit's artifacts are reused.
func TestBodyEditReinstrumentsOneUnit(t *testing.T) {
	dir := t.TempDir()
	opts := toolchain.BuildOptions{Instrument: true, CacheDir: dir}
	mustBuild(t, threeFiles(), opts)

	edited := threeFiles()
	edited["lib.c"] = `
int checksum(int x) { return x % 89; }
`
	incr := mustBuild(t, edited, opts)
	st := statuses(incr)

	for id, want := range map[string]build.Status{
		"compile:lib.c":       build.StatusBuilt,
		"instrument:lib.c":    build.StatusBuilt,
		"analyse:lib.c":       build.StatusBuilt, // re-runs, reproduces same bytes
		"combine":             build.StatusDiskHit,
		"automata":            build.StatusDiskHit,
		"compile:crypto.c":    build.StatusDiskHit,
		"compile:client.c":    build.StatusDiskHit,
		"instrument:crypto.c": build.StatusDiskHit,
		"instrument:client.c": build.StatusDiskHit,
		"link":                build.StatusBuilt,
	} {
		if st[id] != want {
			t.Errorf("%s: status %s, want %s", id, st[id], want)
		}
	}
	// Only the edited file was parsed.
	for _, n := range incr.Graph.Nodes {
		if strings.HasPrefix(n.ID, "parse:") && n.ID != "parse:lib.c" {
			t.Errorf("incremental build parsed %s", n.ID)
		}
	}
}

// TestAssertionEditReinstrumentsEverything reproduces the paper's
// one-to-many property: touching one file's assertion changes the combined
// manifest, which every unit's instrumentation keys on — all of them
// rebuild, even though only one source changed.
func TestAssertionEditReinstrumentsEverything(t *testing.T) {
	dir := t.TempDir()
	opts := toolchain.BuildOptions{Instrument: true, CacheDir: dir}
	mustBuild(t, threeFiles(), opts)

	edited := threeFiles()
	edited["client.c"] = strings.Replace(edited["client.c"],
		"verify(ANY(int)) == 1", "verify(ANY(int)) == 0", 1)
	incr := mustBuild(t, edited, opts)
	st := statuses(incr)

	for id, want := range map[string]build.Status{
		"compile:client.c":    build.StatusBuilt,
		"analyse:client.c":    build.StatusBuilt,
		"combine":             build.StatusBuilt,
		"automata":            build.StatusBuilt,
		"instrument:lib.c":    build.StatusBuilt, // unchanged source, re-instrumented
		"instrument:crypto.c": build.StatusBuilt, // unchanged source, re-instrumented
		"instrument:client.c": build.StatusBuilt,
		"compile:lib.c":       build.StatusDiskHit, // but never re-compiled
		"compile:crypto.c":    build.StatusDiskHit,
		"link":                build.StatusBuilt,
	} {
		if st[id] != want {
			t.Errorf("%s: status %s, want %s", id, st[id], want)
		}
	}
}

// TestInterfaceEditRecompilesDependents: adding a #define changes the
// file's interface summary, which every compile keys on (the role of a
// header edit) — but unchanged files still early-cut at instrumentation
// because their recompiled modules hash identically.
func TestInterfaceEditRecompilesDependents(t *testing.T) {
	dir := t.TempDir()
	opts := toolchain.BuildOptions{Instrument: true, CacheDir: dir}
	mustBuild(t, threeFiles(), opts)

	edited := threeFiles()
	edited["lib.c"] = `
#define MODULUS 97
int checksum(int x) { return x % MODULUS; }
`
	incr := mustBuild(t, edited, opts)
	st := statuses(incr)
	for _, id := range []string{"compile:lib.c", "compile:crypto.c", "compile:client.c"} {
		if st[id] != build.StatusBuilt {
			t.Errorf("%s: status %s, want %s (interface change must recompile)", id, st[id], build.StatusBuilt)
		}
	}
	// crypto.c and client.c recompile to identical modules: early cutoff
	// keeps their instrumentation cached.
	for _, id := range []string{"instrument:crypto.c", "instrument:client.c"} {
		if st[id] != build.StatusDiskHit {
			t.Errorf("%s: status %s, want %s (early cutoff)", id, st[id], build.StatusDiskHit)
		}
	}
}

// TestCorruptCacheObjectRebuilds: a truncated or garbage object is a miss,
// not an error.
func TestCorruptCacheObjectRebuilds(t *testing.T) {
	dir := t.TempDir()
	opts := toolchain.BuildOptions{Instrument: true, CacheDir: dir}
	cold := mustBuild(t, threeFiles(), opts)

	objects := filepath.Join(dir, "objects")
	var clobbered int
	err := filepath.Walk(objects, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		clobbered++
		return os.WriteFile(path, []byte("not an artifact"), 0o644)
	})
	if err != nil || clobbered == 0 {
		t.Fatalf("clobber failed: %d objects, %v", clobbered, err)
	}

	rebuilt := mustBuild(t, threeFiles(), opts)
	if cold.Program.String() != rebuilt.Program.String() {
		t.Fatal("rebuild over corrupt cache produced different program")
	}
	warm := mustBuild(t, threeFiles(), opts)
	if !warm.Graph.AllCached() {
		t.Fatalf("cache did not repair itself: %s", warm.Graph.Summary())
	}
}

// TestAllParseErrorsReported: the build must surface every failing file's
// diagnostics with positions, not stop at the first.
func TestAllParseErrorsReported(t *testing.T) {
	_, err := toolchain.BuildProgram(map[string]string{
		"good.c": "int main(int x) { return x; }\n",
		"bad1.c": "int f( { return 0; }\n",
		"bad2.c": "int g() { return 0\n",
	}, true)
	if err == nil {
		t.Fatal("want parse errors")
	}
	msg := err.Error()
	for _, want := range []string{"bad1.c:", "bad2.c:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing diagnostics for %s", msg, want)
		}
	}
	var list *build.ErrorList
	if !asErrorList(err, &list) || len(list.Errs) != 2 {
		t.Fatalf("want ErrorList with 2 entries, got %T: %v", err, err)
	}
}

// TestAllCompileErrorsReported: same for the compile stage — both files'
// errors, each with file:line.
func TestAllCompileErrorsReported(t *testing.T) {
	_, err := toolchain.BuildProgram(map[string]string{
		"bad1.c": "int f(int x) { y = 3; return x; }\n",
		"bad2.c": "int g(int x) { z = 4; return x; }\n",
		"main.c": "int main(int x) { return x; }\n",
	}, true)
	if err == nil {
		t.Fatal("want compile errors")
	}
	msg := err.Error()
	for _, want := range []string{"bad1.c:1", "bad2.c:1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing positioned diagnostic %s", msg, want)
		}
	}
}

func asErrorList(err error, target **build.ErrorList) bool {
	if l, ok := err.(*build.ErrorList); ok {
		*target = l
		return true
	}
	return false
}
