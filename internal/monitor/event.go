// Package monitor is the event-translation layer between instrumented
// programs and libtesla (internal/core). The instrumenter of §4.2 generates
// event translators that (1) check an event's static parameters and (2) on
// success build a variable–value key and call tesla_update_state; this
// package performs both tasks at run time for every automaton that
// references an event, and implements the per-context lazy-initialisation
// optimisation of §5.2.2 (figure 13).
//
// Go substrates (the kernel, SSL, GUI simulators) call the Thread methods
// directly where instrumented C code would call generated hooks; the IR
// interpreter (internal/vm) drives the same methods from instrumented code.
package monitor

import (
	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/spec"
)

// Memory resolves pointer indirection for ANY/&x patterns that match the
// value an argument points at. The VM supplies its heap; Go substrates can
// supply a lookup over their object tables. A nil Memory makes indirect
// patterns match the raw pointer value.
type Memory interface {
	Load(addr core.Value) (core.Value, bool)
}

// matchFunc checks a function-event symbol against observed arguments
// (and, for exit events, the return value), producing the key the event
// binds. ok is false if any static check fails.
func matchFunc(sym *automata.Symbol, args []core.Value, ret core.Value, hasRet bool, mem Memory) (core.Key, bool) {
	if len(args) < len(sym.Args) {
		return core.AnyKey, false
	}
	key := core.AnyKey
	bind := func(slot int, v core.Value) bool {
		if key.Bound(slot) && key.Data[slot] != v {
			return false // same variable matched two different values
		}
		key = key.Set(slot, v)
		return true
	}
	for i, p := range sym.Args {
		v := resolve(args[i], p.Indirect, mem)
		switch p.Kind {
		case spec.PatVar:
			// Captured below via sym.Captures; bind here for the
			// duplicate-variable consistency check.
			slot := slotOf(sym, automata.CapArg, i)
			if slot >= 0 && !bind(slot, v) {
				return core.AnyKey, false
			}
		default:
			if !p.Matches(int64(v)) {
				return core.AnyKey, false
			}
		}
	}
	if sym.Ret != nil {
		if !hasRet {
			return core.AnyKey, false
		}
		v := resolve(ret, sym.Ret.Indirect, mem)
		if sym.Ret.Kind == spec.PatVar {
			slot := slotOf(sym, automata.CapRet, 0)
			if slot >= 0 && !bind(slot, v) {
				return core.AnyKey, false
			}
		} else if !sym.Ret.Matches(int64(v)) {
			return core.AnyKey, false
		}
	}
	return key, true
}

// matchField checks a field-assignment symbol against an observed store.
func matchField(sym *automata.Symbol, target core.Value, op spec.AssignOp, value core.Value, mem Memory) (core.Key, bool) {
	if sym.AssignOp != op {
		return core.AnyKey, false
	}
	key := core.AnyKey
	if p := sym.Target; p.Kind == spec.PatVar {
		slot := slotOf(sym, automata.CapTarget, 0)
		if slot >= 0 {
			key = key.Set(slot, target)
		}
	} else if !p.Matches(int64(target)) {
		return core.AnyKey, false
	}
	if op != spec.OpIncr {
		if p := sym.Value; p.Kind == spec.PatVar {
			slot := slotOf(sym, automata.CapValue, 0)
			if slot >= 0 {
				if key.Bound(slot) && key.Data[slot] != value {
					return core.AnyKey, false
				}
				key = key.Set(slot, value)
			}
		} else if !p.Matches(int64(value)) {
			return core.AnyKey, false
		}
	}
	return key, true
}

// siteKey builds the key an assertion-site event binds: every scope
// variable, in slot order.
func siteKey(auto *automata.Automaton, vals []core.Value) core.Key {
	key := core.AnyKey
	for i := range auto.Vars {
		if i < len(vals) {
			key = key.Set(i, vals[i])
		}
	}
	return key
}

func slotOf(sym *automata.Symbol, src automata.CapSrc, index int) int {
	for _, c := range sym.Captures {
		if c.Src == src && (src == automata.CapRet || src == automata.CapTarget || src == automata.CapValue || c.Index == index) {
			return c.Slot
		}
	}
	return -1
}

func resolve(v core.Value, indirect bool, mem Memory) core.Value {
	if !indirect || mem == nil {
		return v
	}
	if pointee, ok := mem.Load(v); ok {
		return pointee
	}
	return v
}
