package spec

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseFig1 parses the paper's figure 1 assertion.
func TestParseFig1(t *testing.T) {
	src := `TESLA_WITHIN(enclosing_fn, previously(
		security_check(ANY(ptr), o, op) == 0))`
	a, err := Parse("foo.c:3", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Context != PerThread {
		t.Error("WITHIN should be per-thread")
	}
	if a.Bound != WithinBound("enclosing_fn") {
		t.Errorf("bound = %v", a.Bound)
	}
	seq, ok := a.Expr.(*Sequence)
	if !ok || len(seq.Exprs) != 2 {
		t.Fatalf("previously(x) should expand to [x, SITE]: %v", a.Expr)
	}
	fe, ok := seq.Exprs[0].(*FunctionEvent)
	if !ok {
		t.Fatalf("first expr: %T", seq.Exprs[0])
	}
	if fe.Fn != "security_check" || fe.Kind != FuncExit || fe.Ret == nil || fe.Ret.Const != 0 {
		t.Errorf("function event wrong: %v", fe)
	}
	if len(fe.Args) != 3 || fe.Args[0].Kind != PatAny || fe.Args[1] != Var("o") || fe.Args[2] != Var("op") {
		t.Errorf("args wrong: %v", fe.Args)
	}
	if _, ok := seq.Exprs[1].(*AssertionSite); !ok {
		t.Errorf("second expr should be assertion site: %T", seq.Exprs[1])
	}
}

// TestParseFig4 parses the MAC socket-poll assertion of figure 4.
func TestParseFig4(t *testing.T) {
	src := `TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(active_cred, so) == 0)`
	a, err := Parse("uipc.c:9", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bound.Begin.Fn != SyscallFn {
		t.Errorf("syscall bound = %v", a.Bound)
	}
	vars := Vars(a.Expr)
	if !reflect.DeepEqual(vars, []string{"active_cred", "so"}) {
		t.Errorf("vars = %v", vars)
	}
}

// TestParseFig6 parses the libfetch/OpenSSL assertion of figure 6.
func TestParseFig6(t *testing.T) {
	src := `TESLA_WITHIN(main, previously(
		EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1))`
	a, err := Parse("fetch.c:1", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq := a.Expr.(*Sequence)
	fe := seq.Exprs[0].(*FunctionEvent)
	if fe.Fn != "EVP_VerifyFinal" || fe.Ret.Const != 1 || len(fe.Args) != 4 {
		t.Errorf("event = %v", fe)
	}
}

// TestParseFig7 parses the UFS read assertion with OR, incallstack, called
// and flags.
func TestParseFig7(t *testing.T) {
	env := &Env{Consts: map[string]int64{"IO_NOMACCHECK": 0x80}}
	src := `TESLA_SYSCALL(incallstack(ufs_readdir)
		|| previously(called(vn_rdwr(vp, flags(IO_NOMACCHECK))))
		|| previously(mac_vnode_check_read(ANY(ptr), vp) == 0))`
	a, err := Parse("ufs.c:88", src, env)
	if err != nil {
		t.Fatal(err)
	}
	be, ok := a.Expr.(*BoolExpr)
	if !ok || be.Op != OrOp || len(be.Exprs) != 3 {
		t.Fatalf("expr = %v", a.Expr)
	}
	if _, ok := be.Exprs[0].(*InCallStack); !ok {
		t.Errorf("first operand: %T", be.Exprs[0])
	}
	seq := be.Exprs[1].(*Sequence)
	fe := seq.Exprs[0].(*FunctionEvent)
	if fe.Fn != "vn_rdwr" || len(fe.Args) != 2 {
		t.Fatalf("vn_rdwr event: %v", fe)
	}
	if fe.Args[1].Kind != PatFlags || fe.Args[1].Const != 0x80 {
		t.Errorf("flags pattern: %v", fe.Args[1])
	}
}

// TestParseFig8 parses the Objective-C tracing assertion of figure 8.
func TestParseFig8(t *testing.T) {
	src := `TESLA_WITHIN(startDrawing, previously(ATLEAST(0,
		[ANY(id) push],
		[ANY(id) pop],
		[ANY(id) drawWithFrame: ANY(NSRect) inView: ANY(id)])))`
	a, err := Parse("gui.m:5", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq := a.Expr.(*Sequence)
	al, ok := seq.Exprs[0].(*ATLeast)
	if !ok || al.Min != 0 || len(al.Exprs) != 3 {
		t.Fatalf("ATLEAST = %v", seq.Exprs[0])
	}
	push := al.Exprs[0].(*FunctionEvent)
	if !push.ObjC || push.Fn != "push" || len(push.Args) != 1 {
		t.Errorf("push = %v", push)
	}
	draw := al.Exprs[2].(*FunctionEvent)
	if draw.Fn != "drawWithFrame:inView:" || len(draw.Args) != 3 {
		t.Errorf("draw = %v", draw)
	}
}

func TestParseExplicitBoundAndContext(t *testing.T) {
	src := `TESLA_GLOBAL(call(syscall_entry), returnfrom(syscall_exit),
		eventually(audit(pid)))`
	a, err := Parse("g.c:1", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Context != Global {
		t.Error("context should be global")
	}
	if a.Bound.Begin != (StaticEvent{StaticCall, "syscall_entry"}) ||
		a.Bound.End != (StaticEvent{StaticReturn, "syscall_exit"}) {
		t.Errorf("bound = %v", a.Bound)
	}
	seq := a.Expr.(*Sequence)
	if _, ok := seq.Exprs[0].(*AssertionSite); !ok {
		t.Error("eventually should start with the assertion site")
	}
}

func TestParseTeslaAssert(t *testing.T) {
	src := `TESLA_ASSERT(global, call(begin), returnfrom(end), TSEQUENCE(a(), b()))`
	a, err := Parse("x:1", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Context != Global {
		t.Error("context")
	}
	seq := a.Expr.(*Sequence)
	if len(seq.Exprs) != 2 {
		t.Errorf("TSEQUENCE arity: %v", seq)
	}
}

func TestParseModifiers(t *testing.T) {
	a, err := Parse("m:1", `TESLA_WITHIN(f, strict(previously(caller(g(x) == 0))))`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Strict {
		t.Error("strict modifier lost")
	}
	seq := a.Expr.(*Sequence)
	fe := seq.Exprs[0].(*FunctionEvent)
	if fe.Side != SideCaller {
		t.Error("caller modifier lost")
	}

	a2, err := Parse("m:2", `TESLA_WITHIN(f, conditional(previously(callee(call(g)))))`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Strict {
		t.Error("conditional must not set strict")
	}
	fe2 := a2.Expr.(*Sequence).Exprs[0].(*FunctionEvent)
	if fe2.Side != SideCallee {
		t.Error("callee modifier lost")
	}
}

func TestParseFieldAssign(t *testing.T) {
	env := &Env{
		Consts:     map[string]int64{"NEXT_STATE": 4},
		VarStructs: map[string]string{"s": "state_machine"},
	}
	cases := []struct {
		src  string
		op   AssignOp
		cval int64
	}{
		{`TESLA_WITHIN(f, eventually(s.foo = NEXT_STATE))`, OpAssign, 4},
		{`TESLA_WITHIN(f, eventually(s.foo += 1))`, OpAddAssign, 1},
		{`TESLA_WITHIN(f, eventually(s.foo++))`, OpIncr, 0},
	}
	for _, c := range cases {
		a, err := Parse("fa", c.src, env)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		seq := a.Expr.(*Sequence)
		fa, ok := seq.Exprs[1].(*FieldAssignEvent)
		if !ok {
			t.Fatalf("%s: %T", c.src, seq.Exprs[1])
		}
		if fa.Op != c.op || fa.Struct != "state_machine" || fa.Field != "foo" {
			t.Errorf("%s: %v", c.src, fa)
		}
		if c.op == OpAssign && (fa.Value.Kind != PatConst || fa.Value.Const != 4) {
			t.Errorf("%s: value %v", c.src, fa.Value)
		}
	}
}

func TestParseOptionalXorIndirect(t *testing.T) {
	e, err := ParseExpr(`optional(check(x)) ^ other(&out) == 0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	be := e.(*BoolExpr)
	if be.Op != XorOp || len(be.Exprs) != 2 {
		t.Fatalf("expr = %v", e)
	}
	if _, ok := be.Exprs[0].(*Optional); !ok {
		t.Errorf("optional lost: %T", be.Exprs[0])
	}
	fe := be.Exprs[1].(*FunctionEvent)
	if !fe.Args[0].Indirect || fe.Args[0].Var != "out" {
		t.Errorf("indirect pattern: %v", fe.Args[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`FROB(f, x())`,
		`TESLA_WITHIN(f)`,
		`TESLA_WITHIN(f, )`,
		`TESLA_WITHIN(f, a() || b() ^ c())`, // mixed ops need parens
		`TESLA_WITHIN(f, previously(g(x) == ))`,
		`TESLA_WITHIN(f, ATLEAST(x, a()))`,
		`TESLA_WITHIN(f, s.foo)`,
		`TESLA_ASSERT(bogus, call(a), returnfrom(b), c())`,
		`TESLA_WITHIN(f, previously(flagsy(flags(UNKNOWN))))`,
		`TESLA_WITHIN(f, x()) trailing`,
	}
	for _, src := range bad {
		if _, err := Parse("t", src, nil); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseMixedOpsWithParens(t *testing.T) {
	e, err := ParseExpr(`(a() || b()) ^ c()`, nil)
	if err != nil {
		t.Fatal(err)
	}
	be := e.(*BoolExpr)
	if be.Op != XorOp {
		t.Fatalf("outer op: %v", be.Op)
	}
	inner := be.Exprs[0].(*BoolExpr)
	if inner.Op != OrOp {
		t.Fatalf("inner op: %v", inner.Op)
	}
}

func TestCommentsSkipped(t *testing.T) {
	src := `TESLA_WITHIN(f, /* block */ previously(
		// line comment
		g(x) == 0))`
	if _, err := Parse("c", src, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderParserEquivalence checks the Go DSL and the text parser agree.
func TestBuilderParserEquivalence(t *testing.T) {
	cases := []struct {
		src   string
		built *Assertion
	}{
		{
			`TESLA_WITHIN(enclosing_fn, previously(security_check(ANY(ptr), o, op) == 0))`,
			Within("eq", "enclosing_fn",
				Previously(Call("security_check", AnyPtr(), Var("o"), Var("op")).ReturnsInt(0))),
		},
		{
			`TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(active_cred, so) == 0)`,
			SyscallPreviously("eq", Call("mac_socket_check_poll", Var("active_cred"), Var("so")).ReturnsInt(0)),
		},
		{
			`TESLA_WITHIN(main, TSEQUENCE(call(open_conn), optional(call(retry)), returnfrom(close_conn)))`,
			Within("eq", "main", TSequence(
				Call("open_conn"), Opt(Call("retry")), ReturnFrom("close_conn"))),
		},
	}
	for i, c := range cases {
		parsed, err := Parse("eq", c.src, nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(parsed, c.built) {
			t.Errorf("case %d:\nparsed %#v\nbuilt  %#v", i, parsed, c.built)
		}
	}
}

// TestPrintRoundTrip: printing and reparsing yields the same tree.
func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		`TESLA_WITHIN(f, previously(g(ANY(ptr), x) == 0))`,
		`TESLA_GLOBAL(call(a), returnfrom(b), eventually(audit(pid)))`,
		`TESLA_WITHIN(f, TSEQUENCE(call(x), returnfrom(y)))`,
		`TESLA_WITHIN(f, (a() == 0 || b() == 1))`,
		`TESLA_WITHIN(f, ATLEAST(2, call(p), call(q)))`,
	}
	for _, src := range srcs {
		a1, err := Parse("rt", src, nil)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		printed := a1.String()
		// The printed form uses TESLA_PERTHREAD/TESLA_GLOBAL with an
		// explicit bound, which must reparse to the same tree.
		a2, err := Parse("rt", printed, nil)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Errorf("round trip changed tree:\n%s\n%s", src, printed)
		}
	}
}

func TestVarsCap(t *testing.T) {
	e, _ := ParseExpr(`f(a, b, c, d, e) == 0`, nil)
	vars := Vars(e)
	if len(vars) != 5 {
		t.Fatalf("vars = %v", vars)
	}
}

func TestPatternMatches(t *testing.T) {
	cases := []struct {
		p    ArgPattern
		v    int64
		want bool
	}{
		{Any("int"), 42, true},
		{Int(42), 42, true},
		{Int(42), 41, false},
		{Var("x"), 7, true}, // var matching is the dispatcher's job
		{Flags(0x6), 0x7, true},
		{Flags(0x6), 0x5, false},
		{Bitmask(0x7), 0x5, true},
		{Bitmask(0x7), 0x9, false},
	}
	for i, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Errorf("case %d: %v.Matches(%d) = %v", i, c.p, c.v, got)
		}
	}
}

func TestStringForms(t *testing.T) {
	checks := map[string]string{
		Within("s", "f", Previously(Call("g", Var("x")).ReturnsInt(0))).String(): "TESLA_PERTHREAD(call(f), returnfrom(f), TSEQUENCE(g(x) == 0, TESLA_ASSERTION_SITE))",
		Msg(Any("id"), "push").String():                                          "[ANY(id) push]",
		FieldIncr("s", "refs", Var("obj")).String():                              "s::obj.refs++",
		FieldAddAssign("s", "n", Var("o"), Int(2)).String():                      "s::o.n += 2",
		Deref(Var("out")).String():                                               "&out",
		Flags(0x80).String():                                                     "flags(0x80)",
		Bitmask(0xff).String():                                                   "bitmask(0xff)",
		InStack("ufs_readdir").(*InCallStack).String():                           "incallstack(ufs_readdir)",
	}
	for got, want := range checks {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
	if s := Xor(Call("a"), Call("b")).String(); !strings.Contains(s, "^") {
		t.Errorf("xor string: %q", s)
	}
}

func TestParseNegativeConst(t *testing.T) {
	e, err := ParseExpr(`f(x) == -1`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fe := e.(*FunctionEvent)
	if fe.Ret.Const != -1 {
		t.Errorf("ret = %v", fe.Ret)
	}
}

func TestParseHexAndMultiFlag(t *testing.T) {
	env := &Env{Consts: map[string]int64{"A": 1, "B": 2}}
	e, err := ParseExpr(`f(flags(A | B | 0x10)) == 0`, env)
	if err != nil {
		t.Fatal(err)
	}
	fe := e.(*FunctionEvent)
	if fe.Args[0].Const != 0x13 {
		t.Errorf("flags = %#x", fe.Args[0].Const)
	}
}

// TestStrictRoundTrip: the printed form of a strict assertion reparses with
// the flag intact (manifest round-trip safety).
func TestStrictRoundTrip(t *testing.T) {
	a, err := Parse("s", `TESLA_WITHIN(f, strict(previously(g(x) == 0)))`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Strict {
		t.Fatal("strict flag lost on parse")
	}
	b, err := Parse("s", a.String(), nil)
	if err != nil {
		t.Fatalf("reparse %q: %v", a.String(), err)
	}
	if !b.Strict || !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip changed assertion:\n%v\n%v", a, b)
	}
}
