package staticcheck_test

import (
	"testing"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/staticcheck"
	"tesla/internal/toolchain"
)

// TestVerdictSoundness checks the two claims the verdicts make against the
// real runtime, over a range of inputs for every corpus program:
//
//   - PROVABLY-SAFE: no execution may report a violation.
//   - PROVABLY-FAILING: every completing execution reports one.
//
// NEEDS-RUNTIME programs are exercised too (they must run, and at least
// the conditional ones genuinely violate on some input and pass on
// another — the reason a runtime is needed).
func TestVerdictSoundness(t *testing.T) {
	for _, tc := range verdictPrograms {
		t.Run(tc.name, func(t *testing.T) {
			sources := map[string]string{tc.name + ".c": tc.src}
			build, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
				Instrument: true, Check: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			verdict := build.Report.Results[0].Verdict
			if verdict != tc.verdict {
				t.Fatalf("toolchain verdict = %s, want %s", verdict, tc.verdict)
			}
			for arg := int64(-3); arg <= 10; arg++ {
				h := core.NewCountingHandler()
				_, _, err := build.Run("main", monitor.Options{Handler: h}, arg)
				if err != nil {
					// The run died (e.g. undefined callee): it did not
					// complete, so FAILING makes no claim about it. SAFE
					// still forbids violations before the death.
					if verdict == staticcheck.Safe && len(h.Violations()) > 0 {
						t.Fatalf("arg %d: SAFE program violated before dying: %v", arg, h.Violations())
					}
					continue
				}
				switch verdict {
				case staticcheck.Safe:
					if n := len(h.Violations()); n > 0 {
						t.Fatalf("arg %d: SAFE program reported %d violations", arg, n)
					}
				case staticcheck.Failing:
					if len(h.Violations()) == 0 {
						t.Fatalf("arg %d: FAILING program completed without a violation", arg)
					}
				}
			}
		})
	}
}

// TestConditionalNeedsRuntime pins why "conditional_event" cannot be
// classified statically: it truly violates for some inputs and truly
// passes for others.
func TestConditionalNeedsRuntime(t *testing.T) {
	var src string
	for _, tc := range verdictPrograms {
		if tc.name == "conditional_event" {
			src = tc.src
		}
	}
	build, err := toolchain.BuildProgram(map[string]string{"c.c": src}, true)
	if err != nil {
		t.Fatal(err)
	}
	run := func(arg int64) int {
		h := core.NewCountingHandler()
		if _, _, err := build.Run("main", monitor.Options{Handler: h}, arg); err != nil {
			t.Fatal(err)
		}
		return len(h.Violations())
	}
	if run(1) != 0 {
		t.Fatal("event branch taken: no violation expected")
	}
	if run(-1) == 0 {
		t.Fatal("event branch skipped: violation expected")
	}
}

// TestElisionPreservesBehaviour builds the two-assertion program with and
// without elision: the safe assertion loses all of its hooks, the failing
// one keeps them and reports the same violations either way.
func TestElisionPreservesBehaviour(t *testing.T) {
	sources := map[string]string{"two.c": `
int audit_log(int x) { return 0; }
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	TESLA_WITHIN(main, previously(security_check(ANY(int))));
	return x;
}
int main(int x) {
	int r = audit_log(x);
	return do_work(x);
}
`}
	full, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
		Instrument: true, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	elided, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
		Instrument: true, Check: true, Elide: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.ElidedHooks != 0 {
		t.Fatalf("full build elided hooks: %+v", full.Stats)
	}
	if elided.Stats.ElidedHooks == 0 || elided.Stats.ElidedSites != 1 {
		t.Fatalf("elision did not happen: %+v", elided.Stats)
	}
	if elided.Stats.Hooks+elided.Stats.ElidedHooks != full.Stats.Hooks {
		t.Fatalf("hook accounting: full %d, elided %d+%d",
			full.Stats.Hooks, elided.Stats.Hooks, elided.Stats.ElidedHooks)
	}
	if elided.Stats.Hooks >= full.Stats.Hooks {
		t.Fatalf("elision removed nothing: %d vs %d", elided.Stats.Hooks, full.Stats.Hooks)
	}

	for arg := int64(-2); arg <= 2; arg++ {
		hf, he := core.NewCountingHandler(), core.NewCountingHandler()
		rf, _, err := full.Run("main", monitor.Options{Handler: hf}, arg)
		if err != nil {
			t.Fatal(err)
		}
		re, _, err := elided.Run("main", monitor.Options{Handler: he}, arg)
		if err != nil {
			t.Fatal(err)
		}
		if rf != re {
			t.Fatalf("arg %d: return values differ: %d vs %d", arg, rf, re)
		}
		// The surviving (failing) assertion must still be caught.
		if len(hf.Violations()) != len(he.Violations()) {
			t.Fatalf("arg %d: violations differ: %d vs %d",
				arg, len(hf.Violations()), len(he.Violations()))
		}
		if len(he.Violations()) == 0 {
			t.Fatalf("arg %d: elided build lost the surviving assertion's violation", arg)
		}
	}
}

// TestLivenessGate is the soundness differential for the liveness
// refinement: every liveness corpus program is built with checking and
// elision on, then executed across a range of inputs under the real VM
// and monitor. A liveness-PROVABLY-SAFE assertion must never record a
// runtime violation — even with its hooks elided the uninstrumented
// events cannot contradict the proof — and the liveness-Safe programs
// must actually show elided hooks (the rung is real, not vacuous).
// Non-Safe programs must show zero elision.
func TestLivenessGate(t *testing.T) {
	for _, tc := range livenessPrograms {
		t.Run(tc.name, func(t *testing.T) {
			sources := map[string]string{tc.name + ".c": tc.src}

			// A full (un-elided) build observes every event, so its
			// handler is the ground truth the proof is gated against.
			full, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
				Instrument: true, Check: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			elided, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
				Instrument: true, Check: true, Elide: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := elided.Report.Results[0]
			if res.Verdict != tc.verdict || res.Liveness != tc.liveness {
				t.Fatalf("toolchain verdict = %s (liveness %v), want %s (liveness %v)",
					res.Verdict, res.Liveness, tc.verdict, tc.liveness)
			}
			if tc.verdict == staticcheck.Safe {
				if elided.Stats.ElidedHooks == 0 {
					t.Fatalf("liveness-Safe program elided no hooks: %+v", elided.Stats)
				}
			} else if elided.Stats.ElidedHooks != 0 || elided.Stats.ElidedSites != 0 {
				t.Fatalf("unproved assertion was elided: %+v", elided.Stats)
			}

			for arg := int64(-3); arg <= 10; arg++ {
				h := core.NewCountingHandler()
				_, _, err := full.Run("main", monitor.Options{Handler: h}, arg)
				if err != nil {
					if tc.verdict == staticcheck.Safe && len(h.Violations()) > 0 {
						t.Fatalf("arg %d: SAFE program violated before dying: %v", arg, h.Violations())
					}
					continue
				}
				if tc.verdict == staticcheck.Safe && len(h.Violations()) > 0 {
					t.Fatalf("arg %d: liveness-SAFE program reported %d violations",
						arg, len(h.Violations()))
				}
				he := core.NewCountingHandler()
				if _, _, err := elided.Run("main", monitor.Options{Handler: he}, arg); err != nil {
					t.Fatalf("arg %d: elided build died where full build ran: %v", arg, err)
				}
				if tc.verdict == staticcheck.Safe && len(he.Violations()) > 0 {
					t.Fatalf("arg %d: elided SAFE build reported %d violations",
						arg, len(he.Violations()))
				}
			}
		})
	}
}

// TestElideRequiresProof makes sure only SAFE automata are elided: the
// doomed and runtime-dependent assertions keep their instrumentation.
func TestElideRequiresProof(t *testing.T) {
	for _, tc := range verdictPrograms {
		if tc.verdict == staticcheck.Safe {
			continue
		}
		sources := map[string]string{tc.name + ".c": tc.src}
		b, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
			Instrument: true, Check: true, Elide: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if b.Stats.ElidedHooks != 0 || b.Stats.ElidedSites != 0 {
			t.Fatalf("%s: unproved assertion was elided: %+v", tc.name, b.Stats)
		}
	}
}
