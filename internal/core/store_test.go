package core

import (
	"testing"
)

// storeVariants runs a subtest against both store implementations.
func storeVariants(t *testing.T, fn func(t *testing.T, shards int)) {
	t.Helper()
	t.Run("reference", func(t *testing.T) { fn(t, 1) })
	t.Run("sharded", func(t *testing.T) { fn(t, 8) })
}

// TestInstancesSnapshotIsolated is the regression test for Instances
// returning copies: a snapshot taken before further events must not change
// when the store mutates its preallocated slots in place.
func TestInstancesSnapshotIsolated(t *testing.T) {
	storeVariants(t, func(t *testing.T, shards int) {
		cls := &Class{Name: "snap", States: 4, Limit: 8}
		s := NewStoreOpts(StoreOpts{Context: Global, Shards: shards})
		s.Register(cls)

		enter := TransitionSet{{From: 0, To: 1, Flags: TransInit, KeyMask: 1}}
		work := TransitionSet{{From: 1, To: 2, KeyMask: 1}}
		if err := s.UpdateState(cls, "enter", 0, NewKey(7), enter); err != nil {
			t.Fatal(err)
		}

		snap := s.Instances(cls)
		if len(snap) != 1 || snap[0].State != 1 {
			t.Fatalf("unexpected snapshot %+v", snap)
		}

		// Drive the live instance forward; the old snapshot must not move.
		if err := s.UpdateState(cls, "work", 0, NewKey(7), work); err != nil {
			t.Fatal(err)
		}
		if snap[0].State != 1 {
			t.Fatalf("snapshot aliased live slot: state moved to %d", snap[0].State)
		}

		// Expunge and reuse the slot under a different key; still isolated.
		s.ResetClass(cls)
		if err := s.UpdateState(cls, "enter", 0, NewKey(9), enter); err != nil {
			t.Fatal(err)
		}
		if snap[0].Key != NewKey(7) || !snap[0].Active {
			t.Fatalf("snapshot aliased reused slot: %+v", snap[0])
		}
	})
}

// TestAllocLeavesLiveUntouched is the regression test for the alloc/commit
// split: claiming a slot must not move the live count until the caller
// commits it, so error paths between alloc and activation cannot leak
// counts.
func TestAllocLeavesLiveUntouched(t *testing.T) {
	cls := &Class{Name: "alloc", States: 4, Limit: 4}
	s := NewStoreOpts(StoreOpts{Context: PerThread, Shards: 1})
	s.Register(cls)
	cs := s.classes[cls]

	inst := cs.alloc()
	if inst == nil {
		t.Fatal("alloc failed on empty class")
	}
	if cs.live != 0 {
		t.Fatalf("alloc moved live count to %d before commit", cs.live)
	}
	// Abandoning the slot (an error path) leaves the count right and the
	// slot reusable.
	if got := s.LiveCount(cls); got != 0 {
		t.Fatalf("LiveCount = %d after abandoned alloc", got)
	}
	again := cs.alloc()
	if again != inst {
		t.Fatalf("abandoned slot not reused: %p vs %p", again, inst)
	}
	*again = Instance{State: 1, Key: NewKey(1), Active: true}
	cs.commit()
	if got := s.LiveCount(cls); got != 1 {
		t.Fatalf("LiveCount = %d after commit", got)
	}
}

// TestShardCountSelection pins the StoreOpts.Shards contract.
func TestShardCountSelection(t *testing.T) {
	cases := []struct {
		ctx     Context
		shards  int
		sharded bool
		want    int
	}{
		{Global, 1, false, 1},
		{PerThread, 0, false, 1},
		{Global, 2, true, 2},
		{Global, 3, true, 4},    // rounded up to a power of two
		{Global, 500, true, 64}, // capped
		{PerThread, 8, true, 8}, // explicit request wins over context default
	}
	for _, c := range cases {
		s := NewStoreOpts(StoreOpts{Context: c.ctx, Shards: c.shards})
		if s.Sharded() != c.sharded || s.Shards() != c.want {
			t.Errorf("StoreOpts{%v, Shards: %d}: sharded=%v shards=%d, want %v/%d",
				c.ctx, c.shards, s.Sharded(), s.Shards(), c.sharded, c.want)
		}
	}
	if s := NewStoreOpts(StoreOpts{Context: Global}); !s.Sharded() {
		t.Error("Global store did not default to the sharded implementation")
	}
}

// TestShardedRegisterWithStorage checks the caller-storage path against the
// sharded store: the supplied block bounds capacity and re-registration
// expunges.
func TestShardedRegisterWithStorage(t *testing.T) {
	cls := &Class{Name: "storage", States: 4, Limit: 64}
	s := NewStoreOpts(StoreOpts{Context: Global, Shards: 4})
	block := make([]Instance, 2) // tighter than the class limit
	s.RegisterWithStorage(cls, block)

	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit, KeyMask: 1}}
	for k := 0; k < 3; k++ {
		s.UpdateState(cls, "enter", 0, NewKey(Value(k)), enter)
	}
	if got := s.LiveCount(cls); got != 2 {
		t.Fatalf("LiveCount = %d with 2-slot caller storage", got)
	}

	s.RegisterWithStorage(cls, make([]Instance, 4))
	if got := s.LiveCount(cls); got != 0 {
		t.Fatalf("re-registration kept %d instances live", got)
	}
}
