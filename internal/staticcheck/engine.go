package staticcheck

import (
	"fmt"
	"sort"
	"strings"

	"tesla/internal/automata"
	"tesla/internal/compiler"
	"tesla/internal/ir"
	"tesla/internal/spec"
)

// config is the abstract monitor state for one automaton at one program
// point. The partial order is set inclusion on lo/hi with the scalar
// fields exact; paths are kept apart (no join), bounded by the per-block
// valve.
type config struct {
	// active: the assertion's bound is open on this path.
	active bool
	// delivered: has any event been delivered this bound epoch?
	// 0 = none, 1 = maybe, 2 = surely. Only touched automata receive the
	// «cleanup» event at bound exit, so Incomplete verdicts require it.
	delivered uint8
	// failed: a violation has definitely been reported on this path.
	failed bool
	// lo: possible DFA states of the general instance (empty key, created
	// by «init»). A superset of the truth; the general instance never
	// moves on key-binding events (it forks and stays).
	lo automata.StateSet
	// hi: superset of the states of every live instance, clones included.
	hi automata.StateSet
}

func (c config) key() string {
	return fmt.Sprintf("%t|%d|%t|%s|%s", c.active, c.delivered, c.failed, c.lo.Key(), c.hi.Key())
}

// event is one instrumentation point the instrumenter would emit for the
// automaton under analysis, in the exact order hooks execute.
type event struct {
	bound int // 0 = symbol event, 1 = bound begin, 2 = bound end
	sym   *automata.Symbol
}

// fnEvents are the per-function hook sequences (entry block prologue and
// pre-return epilogue), mirroring instrument.instrumentFunc.
type fnEvents struct {
	entry []event
	ret   []event
}

type checker struct {
	mod  *ir.Module
	auto *automata.Automaton
	opts Options

	fns      map[string]*ir.Func
	events   map[string]*fnEvents
	stackFns map[string]bool // functions named by incallstack symbols

	summaries  map[string][]config
	inProgress map[string]bool

	bail     string          // non-empty: give up, NEEDS-RUNTIME
	reasons  map[string]bool // possible-violation findings
	failWhy  map[string]bool // guaranteed-violation findings
	mayAbort bool            // an indirect hook load may abort the VM
	escapeNF bool            // a non-failed path exits via a VM error

	graph *productGraph
}

func checkOne(mod *ir.Module, auto *automata.Automaton, opts Options) *Result {
	c := &checker{
		mod:        mod,
		auto:       auto,
		opts:       opts,
		fns:        map[string]*ir.Func{},
		events:     map[string]*fnEvents{},
		stackFns:   map[string]bool{},
		summaries:  map[string][]config{},
		inProgress: map[string]bool{},
		reasons:    map[string]bool{},
		failWhy:    map[string]bool{},
		graph:      newProductGraph(),
	}
	for _, f := range mod.Funcs {
		c.fns[f.Name] = f
	}
	for _, s := range auto.Symbols {
		if s.Kind == automata.KindInCallStack {
			c.stackFns[s.Fn] = true
		}
	}
	res := &Result{Automaton: auto, graph: c.graph}

	if auto.Spec.Strict {
		res.Verdict = NeedsRuntime
		res.Reasons = []string{"strict automata are not modelled statically"}
		return res
	}
	entry, ok := c.fns[c.opts.Entry]
	if !ok {
		res.Verdict = NeedsRuntime
		res.Reasons = []string{fmt.Sprintf("entry function %q is not defined", c.opts.Entry)}
		return res
	}
	if fn := c.findIndirectCall(entry); fn != "" {
		res.Verdict = NeedsRuntime
		res.Reasons = []string{fmt.Sprintf(
			"indirect call (OpCallPtr) reachable in %s: callees unknown statically", fn)}
		return res
	}

	exits := c.analyzeFn(entry, map[string]bool{}, map[string]bool{}, config{})

	switch {
	case c.bail != "":
		res.Verdict = NeedsRuntime
		res.Reasons = []string{c.bail}
	case len(c.reasons) == 0:
		res.Verdict = Safe
	default:
		allFail := len(exits) > 0
		for _, e := range exits {
			if !e.failed {
				allFail = false
			}
		}
		if allFail && !c.escapeNF && !c.mayAbort {
			res.Verdict = Failing
			res.Reasons = sortedReasons(c.failWhy)
		} else {
			res.Verdict = NeedsRuntime
			res.Reasons = sortedReasons(c.reasons)
		}
	}
	return res
}

func (c *checker) bailf(format string, args ...interface{}) {
	if c.bail == "" {
		c.bail = fmt.Sprintf(format, args...)
	}
}

func (c *checker) flagPossible(format string, args ...interface{}) {
	if len(c.reasons) < 32 {
		c.reasons[fmt.Sprintf(format, args...)] = true
	}
}

func (c *checker) flagFailed(format string, args ...interface{}) {
	if len(c.failWhy) < 32 {
		c.failWhy[fmt.Sprintf(format, args...)] = true
	}
}

// findIndirectCall scans the functions reachable from entry through direct
// calls for OpCallPtr. One indirect call defeats the whole analysis: the
// callee set is unknown, so any event could fire there.
func (c *checker) findIndirectCall(entry *ir.Func) string {
	seen := map[string]bool{}
	var visit func(f *ir.Func) string
	visit = func(f *ir.Func) string {
		if seen[f.Name] {
			return ""
		}
		seen[f.Name] = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpCallPtr:
					return f.Name
				case ir.OpCall:
					if g, ok := c.fns[in.Sym]; ok && !strings.HasPrefix(in.Sym, "__tesla") {
						if hit := visit(g); hit != "" {
							return hit
						}
					}
				}
			}
		}
		return ""
	}
	return visit(entry)
}

// calleeSide mirrors instrument.(*instrumenter).calleeSide.
func (c *checker) calleeSide(sym *automata.Symbol) bool {
	switch sym.Side {
	case spec.SideCallee:
		return true
	case spec.SideCaller:
		return false
	default:
		return c.opts.DefinedFns[sym.Fn]
	}
}

// eventsFor computes the entry/return hook sequences the instrumenter
// would insert in f for this automaton, in execution order.
func (c *checker) eventsFor(f *ir.Func) *fnEvents {
	if ev, ok := c.events[f.Name]; ok {
		return ev
	}
	ev := &fnEvents{}
	b := c.auto.Spec.Bound
	// Entry: call-kind bound begin, then call-kind bound end, then
	// callee-side entry translators in symbol order.
	if b.Begin.Fn == f.Name && b.Begin.Kind == spec.StaticCall {
		ev.entry = append(ev.entry, event{bound: 1})
	}
	if b.End.Fn == f.Name && b.End.Kind != spec.StaticReturn {
		ev.entry = append(ev.entry, event{bound: 2})
	}
	for _, sym := range c.auto.Symbols {
		if sym.ObjC || sym.Fn != f.Name || !c.calleeSide(sym) {
			continue
		}
		switch sym.Kind {
		case automata.KindFuncEntry:
			if len(sym.Args) <= f.NParams {
				ev.entry = append(ev.entry, event{sym: sym})
			}
		case automata.KindFuncExit:
			if len(sym.Args) <= f.NParams {
				ev.ret = append(ev.ret, event{sym: sym})
			}
		}
	}
	// Return: exit translators, then return-kind bound begin, then
	// return-kind bound end (instrumenter appends begin before end).
	if b.Begin.Fn == f.Name && b.Begin.Kind != spec.StaticCall {
		ev.ret = append(ev.ret, event{bound: 1})
	}
	if b.End.Fn == f.Name && b.End.Kind == spec.StaticReturn {
		ev.ret = append(ev.ret, event{bound: 2})
	}
	c.events[f.Name] = ev
	return ev
}

// apply advances a config over one event, recording possible and
// guaranteed violations.
func (c *checker) apply(cfg config, ev event, where string) config {
	from := cfg.key()
	label := ""
	switch {
	case ev.bound == 1:
		label = "«bound begin»"
		if cfg.active {
			c.bailf("bound re-opened while already open at %s: epochs would overlap", where)
			return cfg
		}
		cfg.active = true
		cfg.delivered = 0
		cfg.lo = automata.NewStateSet(c.auto.Start)
		cfg.hi = automata.NewStateSet(c.auto.Start)

	case ev.bound == 2:
		label = "«bound end»"
		if !cfg.active {
			return cfg // runtime ignores bound exits with no open bound
		}
		if cfg.delivered > 0 {
			for _, q := range cfg.hi {
				if !c.auto.CanCleanup(q) {
					c.flagPossible("%s: an instance may be in state %d at bound exit, which cannot accept «cleanup» (Incomplete)", where, q)
					break
				}
			}
			if cfg.delivered == 2 {
				stuck := true
				for _, q := range cfg.lo {
					if c.auto.CanCleanup(q) {
						stuck = false
						break
					}
				}
				if stuck {
					cfg.failed = true
					c.flagFailed("%s: the general instance is stuck in %s at bound exit: Incomplete on every such path", where, cfg.lo)
				}
			}
		}
		cfg.active = false
		cfg.delivered = 0
		cfg.lo, cfg.hi = nil, nil

	default:
		sym := ev.sym
		label = sym.Name
		if !cfg.active {
			return cfg // events outside the bound are ignored (lazy init)
		}
		if sym.IndirectAccess() {
			c.mayAbort = true
		}
		det := sym.Deterministic()
		moved := c.auto.DetStep(cfg.lo, sym.ID)
		if sym.ProvidesMask == 0 {
			if det {
				cfg.lo = moved
			} else {
				cfg.lo = cfg.lo.Union(moved)
			}
		}
		// mask != 0: the event forks a keyed clone; the general instance
		// stays put, so lo is unchanged.
		if sym.ProvidesMask == 0 && det {
			// AnyKey delivery that surely fires: every live instance takes
			// the conditional update, so the image is exact.
			cfg.hi = c.auto.DetStep(cfg.hi, sym.ID)
		} else {
			cfg.hi = c.auto.CondStep(cfg.hi, sym.ID)
		}
		if det {
			cfg.delivered = 2
		} else if cfg.delivered < 1 {
			cfg.delivered = 1
		}
	}
	c.graph.edge(from, cfg, label)
	return cfg
}

// applySite handles the assertion site: incallstack pseudo-events fire
// first for functions on the abstract call chain, then the required site
// symbol, whose rejection is the canonical violation.
func (c *checker) applySite(cfg config, stack map[string]bool, where string) config {
	if !cfg.active {
		// Outside the bound no instance exists and required events with
		// no live instances are ignored by libtesla.
		return cfg
	}
	for _, sym := range c.auto.Symbols {
		if sym.Kind == automata.KindInCallStack && stack[sym.Fn] {
			cfg = c.apply(cfg, event{sym: sym}, where)
		}
	}
	from := cfg.key()
	site := c.auto.Site()
	for _, q := range cfg.lo {
		if !c.auto.HasMove(q, site.ID) {
			c.flagPossible("%s: the general instance may be in state %d, which cannot accept the assertion site", where, q)
			break
		}
	}
	accepted := false
	for _, q := range cfg.hi {
		if c.auto.HasMove(q, site.ID) {
			accepted = true
			break
		}
	}
	if !accepted {
		cfg.failed = true
		c.flagFailed("%s: no live instance can accept the assertion site (states %s)", where, cfg.hi)
	}
	if len(c.auto.Vars) == 0 {
		// With no scope variables the site's key is empty and the general
		// instance itself takes the transition; every other instance also
		// receives the event, so both bounds take the exact image.
		cfg.lo = c.auto.DetStep(cfg.lo, site.ID)
		cfg.hi = c.auto.DetStep(cfg.hi, site.ID)
	} else {
		cfg.hi = c.auto.CondStep(cfg.hi, site.ID)
	}
	cfg.delivered = 2
	c.graph.edge(from, cfg, site.Name)
	return cfg
}

// stackKey canonicalises the incallstack-relevant part of the call chain.
func stackKey(stack map[string]bool) string {
	if len(stack) == 0 {
		return ""
	}
	keys := make([]string, 0, len(stack))
	for k := range stack {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// analyzeFn returns the configs at f's returns when entered with entry.
// onChain is the set of functions on the concrete abstract call chain
// (recursion detection); stack is its projection onto incallstack-relevant
// functions (part of the summary key, and what sites consult).
func (c *checker) analyzeFn(f *ir.Func, onChain, stack map[string]bool, entry config) []config {
	if c.bail != "" {
		return nil
	}
	key := f.Name + "|" + stackKey(stack) + "|" + entry.key()
	if exits, ok := c.summaries[key]; ok {
		return exits
	}
	if onChain[f.Name] {
		c.bailf("recursive call to %s: unbounded call chains are not modelled", f.Name)
		return nil
	}
	onChain[f.Name] = true
	addedStack := false
	if c.stackFns[f.Name] && !stack[f.Name] {
		stack[f.Name] = true
		addedStack = true
	}
	defer func() {
		delete(onChain, f.Name)
		if addedStack {
			delete(stack, f.Name)
		}
	}()

	ev := c.eventsFor(f)
	cfg := entry
	for _, e := range ev.entry {
		cfg = c.apply(cfg, e, f.Name)
	}
	if c.bail != "" {
		return nil
	}

	type item struct {
		blk int
		cfg config
	}
	seen := make([]map[string]bool, len(f.Blocks))
	for i := range seen {
		seen[i] = map[string]bool{}
	}
	var exits []config
	queue := []item{{0, cfg}}
	seen[0][cfg.key()] = true

	// Loops need no special casing: config transitions are deterministic
	// in the event sequence, so a terminating execution whose config
	// repeats at a loop head has the same continuation — and the same exit
	// config — as the first, already-explored visit. Diverging executions
	// never reach an exit and are outside every verdict's quantifier.
	enqueue := func(cur, target int, cfg config) {
		k := cfg.key()
		if seen[target][k] {
			return
		}
		if len(seen[target]) >= c.opts.MaxConfigs {
			c.bailf("abstract state explosion in %s (more than %d configurations per block)", f.Name, c.opts.MaxConfigs)
			return
		}
		seen[target][k] = true
		queue = append(queue, item{target, cfg})
	}

	for len(queue) > 0 && c.bail == "" {
		it := queue[0]
		queue = queue[1:]
		cur := []config{it.cfg}
		blk := f.Blocks[it.blk]

		for _, in := range blk.Instrs {
			if c.bail != "" {
				return nil
			}
			switch in.Op {
			case ir.OpRet:
				for _, cf := range cur {
					for _, e := range ev.ret {
						cf = c.apply(cf, e, f.Name)
					}
					exits = append(exits, cf)
				}
				cur = nil

			case ir.OpBr:
				for _, cf := range cur {
					enqueue(it.blk, in.Blk1, cf)
				}
				cur = nil

			case ir.OpCondBr:
				for _, cf := range cur {
					enqueue(it.blk, in.Blk1, cf)
					enqueue(it.blk, in.Blk2, cf)
				}
				cur = nil

			case ir.OpCall:
				cur = c.applyCall(f, in, cur, onChain, stack)

			case ir.OpFieldStore:
				for i, cf := range cur {
					cur[i] = c.applyFieldStore(cf, in, f.Name)
				}
			}
			if len(cur) == 0 {
				break
			}
			if len(cur) > c.opts.MaxConfigs {
				c.bailf("abstract state explosion in %s (more than %d parallel configurations)", f.Name, c.opts.MaxConfigs)
				return nil
			}
		}
		// A block that ends without a terminator is unreachable IR; any
		// config still alive simply has no continuation.
	}
	if c.bail != "" {
		return nil
	}
	exits = dedupConfigs(exits)
	c.summaries[key] = exits
	return exits
}

// dedupConfigs collapses identical exit configurations so summaries stay
// small across call-chain fan-out.
func dedupConfigs(cfgs []config) []config {
	seen := map[string]bool{}
	out := cfgs[:0]
	for _, cf := range cfgs {
		k := cf.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, cf)
		}
	}
	return out
}

// applyCall advances each config over one OpCall: assertion sites, direct
// calls into analysed callees (with caller-side hooks around them), and
// escapes into undefined functions (a VM error ends the path).
func (c *checker) applyCall(f *ir.Func, in ir.Instr, cur []config, onChain, stack map[string]bool) []config {
	where := fmt.Sprintf("%s (line %d)", f.Name, in.Line)
	if strings.HasPrefix(in.Sym, compiler.SitePseudoFn) {
		name := strings.TrimPrefix(in.Sym, compiler.SitePseudoFn+":")
		if name != c.auto.Name {
			return cur // another assertion's site: no event for this automaton
		}
		for i, cf := range cur {
			cur[i] = c.applySite(cf, stack, where)
		}
		return cur
	}
	if in.Sym == "print" || strings.HasPrefix(in.Sym, "__tesla") {
		return cur
	}

	// Caller-side entry hooks run before the call executes.
	var pre, post []*automata.Symbol
	for _, sym := range c.auto.Symbols {
		if sym.ObjC || sym.Fn != in.Sym || c.calleeSide(sym) {
			continue
		}
		if len(sym.Args) > len(in.Args) {
			continue
		}
		switch sym.Kind {
		case automata.KindFuncEntry:
			pre = append(pre, sym)
		case automata.KindFuncExit:
			post = append(post, sym)
		}
	}
	for i, cf := range cur {
		for _, sym := range pre {
			cf = c.apply(cf, event{sym: sym}, where)
		}
		cur[i] = cf
	}

	callee, defined := c.fns[in.Sym]
	if !defined {
		// The VM reports "call to undefined function" and unwinds: the
		// path ends here. A non-failed escape blocks FAILING verdicts.
		for _, cf := range cur {
			if !cf.failed {
				c.escapeNF = true
			}
		}
		return nil
	}

	var out []config
	for _, cf := range cur {
		rets := c.analyzeFn(callee, onChain, stack, cf)
		if c.bail != "" {
			return nil
		}
		for _, rc := range rets {
			for _, sym := range post {
				rc = c.apply(rc, event{sym: sym}, where)
			}
			out = append(out, rc)
		}
	}
	return out
}

// applyFieldStore fires the field-assignment translators that match the
// store's struct, field and assignment operator, in symbol order.
func (c *checker) applyFieldStore(cfg config, in ir.Instr, fname string) config {
	for _, sym := range c.auto.Symbols {
		if sym.Kind != automata.KindFieldAssign {
			continue
		}
		if sym.Struct != in.Struct.Name || sym.Field != in.Struct.Fields[in.Field].Name {
			continue
		}
		if assignKind(sym.AssignOp) != in.Assign {
			continue
		}
		cfg = c.apply(cfg, event{sym: sym}, fmt.Sprintf("%s (line %d)", fname, in.Line))
	}
	return cfg
}

func assignKind(op spec.AssignOp) ir.AssignKind {
	switch op {
	case spec.OpAddAssign:
		return ir.AssignAdd
	case spec.OpIncr:
		return ir.AssignIncr
	default:
		return ir.AssignSet
	}
}
