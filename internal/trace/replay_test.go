package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
	"tesla/internal/trace"
)

// tracePrograms is the corpus for the replay-determinism property: csub
// programs spanning the behaviours that matter to tracing — guaranteed
// violations (both no-instance and incomplete), input-dependent violations,
// keyed instances (clone traffic), incallstack resolution, and safe runs.
var tracePrograms = []struct {
	name string
	src  string
}{
	{
		name: "doomed_previously",
		src: `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(ANY(int))));
	return x;
}
int main(int x) { return do_work(x); }
`,
	},
	{
		name: "doomed_eventually",
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int main(int x) { return do_work(x); }
`,
	},
	{
		name: "conditional_event",
		src: `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(ANY(int))));
	return x;
}
int main(int x) {
	if (x > 0) {
		int r = security_check(x);
	}
	return do_work(x);
}
`,
	},
	{
		name: "keyed_event",
		src: `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(x)));
	return x;
}
int main(int x) {
	int r = security_check(x);
	int s = security_check(x + 1);
	return do_work(x);
}
`,
	},
	{
		name: "keyed_loop",
		src: `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(x)));
	return x;
}
int main(int x) {
	int i = 0;
	while (i < 4) {
		int r = security_check(i);
		i = i + 1;
	}
	return do_work(x);
}
`,
	},
	{
		name: "safe_eventually",
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int w = do_work(x);
	int r = audit_log(x);
	return w;
}
`,
	},
}

// record builds the program instrumented, runs it for arg with a recorder
// and counting handler attached, and returns the trace plus live verdicts.
func record(t *testing.T, src string, arg int64) (*trace.Trace, *toolchain.Build, *core.CountingHandler) {
	t.Helper()
	build, err := toolchain.BuildProgram(map[string]string{"prog.c": src}, true)
	if err != nil {
		t.Fatal(err)
	}
	counting := core.NewCountingHandler()
	rec := trace.NewRecorder(build.Autos, 0)
	_, _, err = build.Run("main", monitor.Options{
		Handler: core.MultiHandler{counting, rec},
		Tap:     rec,
	}, arg)
	if err != nil {
		t.Fatalf("arg %d: live run failed: %v", arg, err)
	}
	return rec.Snapshot(), build, counting
}

// violationSigs projects violations onto comparable tuples.
func violationSigs(vs []*core.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Class.Name + "/" + v.Kind.String() + "/" + v.Key.String() +
			"/" + v.Symbol
	}
	return out
}

// TestReplayDeterminism is the tentpole property: for every corpus program
// and input, replaying the captured trace through fresh automata reproduces
// the live run's verdicts exactly — same violations (class, kind, key,
// symbol, order), same acceptance counts, same transition edge counts.
func TestReplayDeterminism(t *testing.T) {
	for _, tc := range tracePrograms {
		t.Run(tc.name, func(t *testing.T) {
			for arg := int64(-3); arg <= 6; arg++ {
				tr, build, live := record(t, tc.src, arg)
				if tr.Dropped != 0 {
					t.Fatalf("arg %d: %d events dropped", arg, tr.Dropped)
				}

				replayed := core.NewCountingHandler()
				m, err := monitor.New(monitor.Options{Handler: replayed}, build.Autos...)
				if err != nil {
					t.Fatal(err)
				}
				if err := trace.Feed(tr, m); err != nil {
					t.Fatalf("arg %d: replay: %v", arg, err)
				}

				liveV, replV := violationSigs(live.Violations()), violationSigs(replayed.Violations())
				if !reflect.DeepEqual(liveV, replV) {
					t.Fatalf("arg %d: violations differ\nlive:   %v\nreplay: %v", arg, liveV, replV)
				}
				for _, a := range build.Autos {
					if l, r := live.Accepts(a.Name), replayed.Accepts(a.Name); l != r {
						t.Fatalf("arg %d: %s accepts: live %d, replay %d", arg, a.Name, l, r)
					}
				}
				if l, r := live.Edges(), replayed.Edges(); !reflect.DeepEqual(l, r) {
					t.Fatalf("arg %d: transition edges differ\nlive:   %v\nreplay: %v", arg, l, r)
				}
			}
		})
	}
}

// TestReplayAfterCodecRoundTrip runs the same determinism check through a
// binary encode/decode and a JSON encode/decode, so what is proven for
// in-memory traces holds for trace files.
func TestReplayAfterCodecRoundTrip(t *testing.T) {
	tr, build, live := record(t, tracePrograms[0].src, 1)

	for _, enc := range []struct {
		name  string
		write func(*bytes.Buffer, *trace.Trace) error
	}{
		{"binary", func(b *bytes.Buffer, t *trace.Trace) error { return trace.Write(b, t) }},
		{"json", func(b *bytes.Buffer, t *trace.Trace) error { return trace.WriteJSON(b, t) }},
	} {
		t.Run(enc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := enc.write(&buf, tr); err != nil {
				t.Fatal(err)
			}
			loaded, err := trace.Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			res, err := trace.Replay(loaded, build.Autos)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Signatures(), sigsOf(live.Violations())) {
				t.Fatalf("verdicts after %s round-trip differ: %v vs %v",
					enc.name, res.Signatures(), sigsOf(live.Violations()))
			}
		})
	}
}

func sigsOf(vs []*core.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Signature()
	}
	return out
}

// TestShrinkMinimality checks the shrinker's contract on every violating
// corpus run: the shrunk trace still triggers the target violation, it is
// 1-minimal (removing any single remaining program event loses the
// violation), and whenever any event of the original was removable the
// shrinker removed at least one.
func TestShrinkMinimality(t *testing.T) {
	for _, tc := range tracePrograms {
		t.Run(tc.name, func(t *testing.T) {
			for arg := int64(-1); arg <= 1; arg++ {
				tr, build, live := record(t, tc.src, arg)
				if len(live.Violations()) == 0 {
					continue
				}
				res, err := trace.Shrink(tr, build.Autos)
				if err != nil {
					t.Fatalf("arg %d: %v", arg, err)
				}

				// Still violates the same way.
				rr, err := trace.Replay(res.Trace, build.Autos)
				if err != nil {
					t.Fatalf("arg %d: shrunk trace does not replay: %v", arg, err)
				}
				found := false
				for _, s := range rr.Signatures() {
					if s == res.Target {
						found = true
					}
				}
				if !found {
					t.Fatalf("arg %d: shrunk trace lost target %s (has %v)", arg, res.Target, rr.Signatures())
				}

				// 1-minimal: dropping any single program event loses it.
				progs := res.Trace.Programs()
				for i := range progs {
					cand := append(append([]trace.Event(nil), progs[:i]...), progs[i+1:]...)
					if replaysTo(t, cand, build, res.Target) {
						t.Fatalf("arg %d: not 1-minimal: event %d (%s) is removable", arg, i, &progs[i])
					}
				}

				// Progress: if any single original event is removable, the
				// shrinker must have removed something.
				orig := tr.Programs()
				removable := false
				for i := range orig {
					cand := append(append([]trace.Event(nil), orig[:i]...), orig[i+1:]...)
					if replaysTo(t, cand, build, res.Target) {
						removable = true
						break
					}
				}
				if removable && res.Removed == 0 {
					t.Fatalf("arg %d: events were removable but shrinker removed none", arg)
				}
			}
		})
	}
}

// replaysTo replays a bare program-event sequence and reports whether the
// target violation signature occurs.
func replaysTo(t *testing.T, events []trace.Event, build *toolchain.Build, target string) bool {
	t.Helper()
	sub, err := trace.Rerecord(events, build.Autos)
	if err != nil {
		return false
	}
	res, err := trace.Replay(sub, build.Autos)
	if err != nil {
		return false
	}
	for _, s := range res.Signatures() {
		if s == target {
			return true
		}
	}
	return false
}

// TestReportRendersCounterexample smoke-tests the reporter on a shrunk
// trace: the violation line, the timeline and the automaton path (and the
// DOT form) must all mention the failing class.
func TestReportRendersCounterexample(t *testing.T) {
	tr, build, _ := record(t, tracePrograms[1].src, 0) // doomed_eventually
	res, err := trace.Shrink(tr, build.Autos)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Report(&buf, res.Trace, build.Autos); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	class := build.Autos[0].Name
	for _, want := range []string{"violation:", class, "timeline"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	dot, err := trace.Dot(res.Trace, build.Autos, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(dot), []byte("digraph")) {
		t.Fatalf("dot output is not a digraph:\n%s", dot)
	}
}

// overloadSrc checks more keys than the default 32-slot instance table
// holds, then asserts the site for main's argument. Under EvictOldest the
// live run evicts the oldest binding (key 0), so arg 0 violates — but only
// when the replay runs under the same policy.
const overloadSrc = `
int security_check(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(x)));
	return x;
}
int main(int x) {
	int i = 0;
	while (i < 40) {
		int r = security_check(i);
		i = i + 1;
	}
	return do_work(x);
}
`

// TestReplayPolicyFaithful: a run recorded under a non-default overflow
// policy replays to the live verdict only under the same policy —
// ReplayOpts/ShrinkOpts exist exactly for this, and a default replay of the
// same trace (where the evicted instance survives) must come up clean.
func TestReplayPolicyFaithful(t *testing.T) {
	build, err := toolchain.BuildProgram(map[string]string{"prog.c": overloadSrc}, true)
	if err != nil {
		t.Fatal(err)
	}
	pol := monitor.Options{Overflow: core.EvictOldest}
	counting := core.NewCountingHandler()
	rec := trace.NewRecorder(build.Autos, 0)
	live := pol
	live.Handler = core.MultiHandler{counting, rec}
	live.Tap = rec
	if _, _, err := build.Run("main", live, 0); err != nil {
		t.Fatalf("live run failed: %v", err)
	}
	if len(counting.Violations()) != 1 {
		t.Fatalf("live run: %d violations, want 1 (key 0 evicted)", len(counting.Violations()))
	}
	tr := rec.Snapshot()

	plain, err := trace.Replay(tr, build.Autos)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Violations) != 0 {
		t.Fatalf("default-policy replay: %v, want clean (nothing evicted under drop-new)", plain.Violations)
	}

	faithful, err := trace.ReplayOpts(tr, build.Autos, pol)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := violationSigs(faithful.Violations), violationSigs(counting.Violations()); !reflect.DeepEqual(got, want) {
		t.Fatalf("policy replay = %v, want live verdicts %v", got, want)
	}

	if _, err := trace.Shrink(tr, build.Autos); err == nil {
		t.Fatal("default-policy shrink found a violation to preserve; expected it to refuse")
	}
	res, err := trace.ShrinkOpts(tr, build.Autos, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept == 0 || res.Removed == 0 {
		t.Fatalf("shrink kept %d / removed %d, want a real reduction", res.Kept, res.Removed)
	}
}
