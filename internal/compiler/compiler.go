// Package compiler lowers csub ASTs to IR (internal/ir), the front-end
// stage of the TESLA pipeline that Clang performs in the paper (§4.1/§4.2).
// Mutable locals are lowered through allocas, mirroring `clang -O0` output —
// the unoptimised form TESLA instruments. TESLA assertion macros are parsed
// in scope (so variable struct types and #define constants resolve) and
// leave a `__tesla_inline_assertion` pseudo-call carrying the values of the
// assertion's scope variables; the instrumenter later replaces it with an
// event translator, or a strip pass removes it from uninstrumented builds.
package compiler

import (
	"fmt"

	"tesla/internal/csub"
	"tesla/internal/ir"
	"tesla/internal/spec"
)

// SitePseudoFn is the pseudo-function marking assertion sites in IR,
// mirroring the paper's __tesla_inline_assertion.
const SitePseudoFn = "__tesla_inline_assertion"

// Context carries cross-file knowledge (struct layouts, #defines, defined
// functions) — the role of headers in a C build.
type Context struct {
	structDefs map[string]*csub.StructDef
	structs    map[string]*ir.StructType
	defines    map[string]int64
	fns        map[string]bool
	globals    map[string]bool
}

// NewContext indexes the given files for compilation.
func NewContext(files ...*csub.File) (*Context, error) {
	ctx := &Context{
		structDefs: map[string]*csub.StructDef{},
		structs:    map[string]*ir.StructType{},
		defines:    map[string]int64{},
		fns:        map[string]bool{},
		globals:    map[string]bool{},
	}
	for _, f := range files {
		if err := ctx.addInterface(InterfaceOf(f)); err != nil {
			return nil, err
		}
	}
	return ctx, nil
}

// DefinedFns returns the set of functions defined across the context,
// which the instrumenter uses to choose caller- vs callee-side hooks.
func (c *Context) DefinedFns() map[string]bool {
	out := make(map[string]bool, len(c.fns))
	for k := range c.fns {
		out[k] = true
	}
	return out
}

// Unit is one compiled file: its IR module plus the assertions found in it.
type Unit struct {
	Module     *ir.Module
	Assertions []*spec.Assertion
}

// CompileFile lowers one file against the context.
func CompileFile(f *csub.File, ctx *Context) (*Unit, error) {
	u := &Unit{Module: &ir.Module{Name: f.Name}}
	// Only struct types defined in this file go in the module; the linker
	// dedupes shared types by name.
	for _, s := range f.Structs {
		u.Module.Structs = append(u.Module.Structs, ctx.structs[s.Name])
	}
	for _, g := range f.Globals {
		init, err := globalInit(f, g, ctx)
		if err != nil {
			return nil, err
		}
		u.Module.Globals = append(u.Module.Globals, &ir.Global{Name: g.Name, Init: init})
	}
	for _, fn := range f.Funcs {
		c := &fnCompiler{ctx: ctx, file: f, unit: u}
		irf, err := c.compileFunc(fn)
		if err != nil {
			return nil, err
		}
		u.Module.Funcs = append(u.Module.Funcs, irf)
	}
	return u, nil
}

// globalInit evaluates a global initialiser: C static initialisers must be
// constant expressions, so only literals, #define constants and constant
// negation are accepted.
func globalInit(f *csub.File, g *csub.VarDecl, ctx *Context) (int64, error) {
	if g.Init == nil {
		return 0, nil
	}
	v, ok := constExpr(g.Init, ctx)
	if !ok {
		return 0, fmt.Errorf("%s:%d: global %s: initialiser is not a constant expression", f.Name, g.Line, g.Name)
	}
	return v, nil
}

// constExpr evaluates the constant subset of csub expressions.
func constExpr(e csub.Expr, ctx *Context) (int64, bool) {
	switch x := e.(type) {
	case *csub.IntLit:
		return x.V, true
	case *csub.Ident:
		v, ok := ctx.defines[x.Name]
		return v, ok
	case *csub.UnaryExpr:
		v, ok := constExpr(x.X, ctx)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "-":
			return -v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	}
	return 0, false
}

// Compile parses and compiles several sources as one program, returning the
// per-file units and the linked program module.
func Compile(sources map[string]string) ([]*Unit, *ir.Module, error) {
	var files []*csub.File
	for name, src := range sources {
		f, err := csub.Parse(name, src)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	ctx, err := NewContext(files...)
	if err != nil {
		return nil, nil, err
	}
	var units []*Unit
	var mods []*ir.Module
	for _, f := range files {
		u, err := CompileFile(f, ctx)
		if err != nil {
			return nil, nil, err
		}
		units = append(units, u)
		mods = append(mods, u.Module)
	}
	prog, err := ir.Link("program", mods...)
	if err != nil {
		return nil, nil, err
	}
	return units, prog, nil
}

type varInfo struct {
	addr int // register holding the alloca/global address
	typ  csub.Type
}

type scope struct {
	parent *scope
	vars   map[string]varInfo
}

func (s *scope) lookup(name string) (varInfo, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v, true
		}
	}
	return varInfo{}, false
}

type fnCompiler struct {
	ctx  *Context
	file *csub.File
	unit *Unit
	fn   *ir.Func
	cur  int  // current block index
	done bool // current block is terminated
	sc   *scope
}

func (c *fnCompiler) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", c.file.Name, line, fmt.Sprintf(format, args...))
}

func (c *fnCompiler) emit(in ir.Instr) {
	if c.done {
		// Unreachable code after return: park it in a fresh block so
		// the IR stays well-formed.
		c.cur = c.fn.NewBlock("unreachable")
		c.done = false
	}
	b := c.fn.Blocks[c.cur]
	b.Instrs = append(b.Instrs, in)
	switch in.Op {
	case ir.OpBr, ir.OpCondBr, ir.OpRet:
		c.done = true
	}
}

func (c *fnCompiler) emitConst(v int64) int {
	r := c.fn.NewReg()
	c.emit(ir.Instr{Op: ir.OpConst, Dst: r, Imm: v})
	return r
}

func (c *fnCompiler) compileFunc(fd *csub.FuncDef) (*ir.Func, error) {
	c.fn = &ir.Func{Name: fd.Name, NParams: len(fd.Params)}
	c.fn.NRegs = len(fd.Params)
	c.cur = c.fn.NewBlock("entry")
	c.sc = &scope{vars: map[string]varInfo{}}

	// Parameters land in registers 0..n-1; spill each into an alloca so
	// the body can reassign them (clang -O0 shape).
	for i, p := range fd.Params {
		addr := c.fn.NewReg()
		c.emit(ir.Instr{Op: ir.OpAlloca, Dst: addr, Imm: 1})
		c.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: i})
		c.sc.vars[p.Name] = varInfo{addr: addr, typ: p.Type}
	}

	if err := c.compileStmts(fd.Body); err != nil {
		return nil, err
	}
	if !c.done {
		r := c.emitConst(0)
		c.emit(ir.Instr{Op: ir.OpRet, X: r, HasX: true})
	}
	return c.fn, nil
}

func (c *fnCompiler) compileStmts(stmts []csub.Stmt) error {
	for _, s := range stmts {
		if err := c.compileStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *fnCompiler) compileStmt(s csub.Stmt) error {
	switch st := s.(type) {
	case *csub.DeclStmt:
		addr := c.fn.NewReg()
		c.emit(ir.Instr{Op: ir.OpAlloca, Dst: addr, Imm: 1, Line: st.Decl.Line})
		if st.Decl.Init != nil {
			v, _, err := c.compileExpr(st.Decl.Init)
			if err != nil {
				return err
			}
			c.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: v})
		} else {
			z := c.emitConst(0)
			c.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: z})
		}
		c.sc.vars[st.Decl.Name] = varInfo{addr: addr, typ: st.Decl.Type}
		return nil

	case *csub.AssignStmt:
		return c.compileAssign(st)

	case *csub.IfStmt:
		cond, _, err := c.compileExpr(st.Cond)
		if err != nil {
			return err
		}
		thenB := c.fn.NewBlock("then")
		elseB := c.fn.NewBlock("else")
		joinB := c.fn.NewBlock("join")
		c.emit(ir.Instr{Op: ir.OpCondBr, X: cond, Blk1: thenB, Blk2: elseB})

		c.cur, c.done = thenB, false
		c.pushScope()
		if err := c.compileStmts(st.Then); err != nil {
			return err
		}
		c.popScope()
		if !c.done {
			c.emit(ir.Instr{Op: ir.OpBr, Blk1: joinB})
		}

		c.cur, c.done = elseB, false
		c.pushScope()
		if err := c.compileStmts(st.Else); err != nil {
			return err
		}
		c.popScope()
		if !c.done {
			c.emit(ir.Instr{Op: ir.OpBr, Blk1: joinB})
		}

		c.cur, c.done = joinB, false
		return nil

	case *csub.WhileStmt:
		headB := c.fn.NewBlock("while.head")
		bodyB := c.fn.NewBlock("while.body")
		exitB := c.fn.NewBlock("while.exit")
		c.emit(ir.Instr{Op: ir.OpBr, Blk1: headB})
		c.cur, c.done = headB, false
		cond, _, err := c.compileExpr(st.Cond)
		if err != nil {
			return err
		}
		c.emit(ir.Instr{Op: ir.OpCondBr, X: cond, Blk1: bodyB, Blk2: exitB})
		c.cur, c.done = bodyB, false
		c.pushScope()
		if err := c.compileStmts(st.Body); err != nil {
			return err
		}
		c.popScope()
		if !c.done {
			c.emit(ir.Instr{Op: ir.OpBr, Blk1: headB})
		}
		c.cur, c.done = exitB, false
		return nil

	case *csub.ReturnStmt:
		if st.Val == nil {
			r := c.emitConst(0)
			c.emit(ir.Instr{Op: ir.OpRet, X: r, HasX: true, Line: st.Line})
			return nil
		}
		v, _, err := c.compileExpr(st.Val)
		if err != nil {
			return err
		}
		c.emit(ir.Instr{Op: ir.OpRet, X: v, HasX: true, Line: st.Line})
		return nil

	case *csub.ExprStmt:
		_, _, err := c.compileExpr(st.X)
		return err

	case *csub.TeslaStmt:
		return c.compileTesla(st)

	default:
		return fmt.Errorf("compiler: unknown statement %T", s)
	}
}

func (c *fnCompiler) pushScope() { c.sc = &scope{parent: c.sc, vars: map[string]varInfo{}} }
func (c *fnCompiler) popScope()  { c.sc = c.sc.parent }

func (c *fnCompiler) compileAssign(st *csub.AssignStmt) error {
	switch lhs := st.LHS.(type) {
	case *csub.Ident:
		info, ok := c.sc.lookup(lhs.Name)
		var addr int
		if ok {
			addr = info.addr
		} else if c.ctx.globals[lhs.Name] {
			addr = c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Sym: lhs.Name})
		} else {
			return c.errf(st.Line, "assignment to undeclared variable %q", lhs.Name)
		}
		switch st.Op {
		case csub.Set:
			v, _, err := c.compileExpr(st.RHS)
			if err != nil {
				return err
			}
			c.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: v})
		case csub.Add:
			v, _, err := c.compileExpr(st.RHS)
			if err != nil {
				return err
			}
			old := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpLoad, Dst: old, X: addr})
			sum := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpBin, Dst: sum, Imm: int64(ir.BinAdd), X: old, Y: v})
			c.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: sum})
		case csub.Incr:
			old := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpLoad, Dst: old, X: addr})
			one := c.emitConst(1)
			sum := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpBin, Dst: sum, Imm: int64(ir.BinAdd), X: old, Y: one})
			c.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: sum})
		}
		return nil

	case *csub.FieldExpr:
		base, btyp, err := c.compileExpr(lhs.X)
		if err != nil {
			return err
		}
		st2, fi, err := c.fieldOf(btyp, lhs.Name, lhs.Line)
		if err != nil {
			return err
		}
		in := ir.Instr{Op: ir.OpFieldStore, X: base, Struct: st2, Field: fi, Line: st.Line}
		switch st.Op {
		case csub.Set:
			v, _, err := c.compileExpr(st.RHS)
			if err != nil {
				return err
			}
			in.Assign, in.Y = ir.AssignSet, v
		case csub.Add:
			v, _, err := c.compileExpr(st.RHS)
			if err != nil {
				return err
			}
			in.Assign, in.Y = ir.AssignAdd, v
		case csub.Incr:
			in.Assign, in.Y = ir.AssignIncr, -1
		}
		c.emit(in)
		return nil

	case *csub.IndexExpr:
		// p[i] = v lowers to a plain word store: index stores do not go
		// through OpFieldStore, so they are invisible to field-assignment
		// events (struct fields must be named to be instrumentable).
		addr, err := c.indexAddr(lhs)
		if err != nil {
			return err
		}
		switch st.Op {
		case csub.Set:
			v, _, err := c.compileExpr(st.RHS)
			if err != nil {
				return err
			}
			c.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: v})
		case csub.Add:
			v, _, err := c.compileExpr(st.RHS)
			if err != nil {
				return err
			}
			old := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpLoad, Dst: old, X: addr})
			sum := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpBin, Dst: sum, Imm: int64(ir.BinAdd), X: old, Y: v})
			c.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: sum})
		case csub.Incr:
			old := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpLoad, Dst: old, X: addr})
			one := c.emitConst(1)
			sum := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpBin, Dst: sum, Imm: int64(ir.BinAdd), X: old, Y: one})
			c.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: sum})
		}
		return nil

	default:
		return c.errf(st.Line, "bad assignment target %T", st.LHS)
	}
}

// indexAddr computes the word address of p[i]: the base pointer plus the
// index.
func (c *fnCompiler) indexAddr(x *csub.IndexExpr) (int, error) {
	base, _, err := c.compileExpr(x.X)
	if err != nil {
		return 0, err
	}
	idx, _, err := c.compileExpr(x.Index)
	if err != nil {
		return 0, err
	}
	addr := c.fn.NewReg()
	c.emit(ir.Instr{Op: ir.OpBin, Dst: addr, Imm: int64(ir.BinAdd), X: base, Y: idx})
	return addr, nil
}

func (c *fnCompiler) fieldOf(t csub.Type, name string, line int) (*ir.StructType, int, error) {
	if t.Kind != csub.TPtr {
		return nil, 0, c.errf(line, "field access on non-pointer value")
	}
	sd := c.ctx.structDefs[t.Struct]
	if sd == nil {
		return nil, 0, c.errf(line, "unknown struct %q", t.Struct)
	}
	fi := sd.FieldIndex(name)
	if fi < 0 {
		return nil, 0, c.errf(line, "struct %s has no field %q", t.Struct, name)
	}
	return c.ctx.structs[t.Struct], fi, nil
}

// compileExpr returns the value register and the static type.
func (c *fnCompiler) compileExpr(e csub.Expr) (int, csub.Type, error) {
	intT := csub.Type{Kind: csub.TInt}
	switch x := e.(type) {
	case *csub.IntLit:
		return c.emitConst(x.V), intT, nil

	case *csub.Ident:
		if info, ok := c.sc.lookup(x.Name); ok {
			r := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpLoad, Dst: r, X: info.addr})
			return r, info.typ, nil
		}
		if v, ok := c.file.Defines[x.Name]; ok {
			return c.emitConst(v), intT, nil
		}
		if v, ok := c.ctx.defines[x.Name]; ok {
			return c.emitConst(v), intT, nil
		}
		if c.ctx.globals[x.Name] {
			addr := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Sym: x.Name})
			r := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpLoad, Dst: r, X: addr})
			return r, intT, nil
		}
		// A bare function name is a function-pointer value; unresolved
		// names are assumed to be functions from other modules and are
		// checked at link/run time.
		r := c.fn.NewReg()
		c.emit(ir.Instr{Op: ir.OpFnAddr, Dst: r, Sym: x.Name, Line: x.Line})
		return r, csub.Type{Kind: csub.TFnPtr}, nil

	case *csub.UnaryExpr:
		v, _, err := c.compileExpr(x.X)
		if err != nil {
			return 0, intT, err
		}
		switch x.Op {
		case "-":
			z := c.emitConst(0)
			r := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpBin, Dst: r, Imm: int64(ir.BinSub), X: z, Y: v})
			return r, intT, nil
		case "!":
			z := c.emitConst(0)
			r := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpBin, Dst: r, Imm: int64(ir.BinEq), X: v, Y: z})
			return r, intT, nil
		}
		return 0, intT, fmt.Errorf("compiler: unknown unary %q", x.Op)

	case *csub.BinExpr:
		if x.Op == "&&" || x.Op == "||" {
			return c.compileShortCircuit(x)
		}
		a, _, err := c.compileExpr(x.X)
		if err != nil {
			return 0, intT, err
		}
		b, _, err := c.compileExpr(x.Y)
		if err != nil {
			return 0, intT, err
		}
		kind, ok := binKinds[x.Op]
		if !ok {
			return 0, intT, fmt.Errorf("compiler: unknown operator %q", x.Op)
		}
		r := c.fn.NewReg()
		c.emit(ir.Instr{Op: ir.OpBin, Dst: r, Imm: int64(kind), X: a, Y: b})
		return r, intT, nil

	case *csub.CallExpr:
		return c.compileCall(x)

	case *csub.FieldExpr:
		base, btyp, err := c.compileExpr(x.X)
		if err != nil {
			return 0, intT, err
		}
		st, fi, err := c.fieldOf(btyp, x.Name, x.Line)
		if err != nil {
			return 0, intT, err
		}
		addr := c.fn.NewReg()
		c.emit(ir.Instr{Op: ir.OpFieldAddr, Dst: addr, X: base, Struct: st, Field: fi})
		r := c.fn.NewReg()
		c.emit(ir.Instr{Op: ir.OpLoad, Dst: r, X: addr})
		return r, c.fieldType(btyp, x.Name), nil

	case *csub.IndexExpr:
		addr, err := c.indexAddr(x)
		if err != nil {
			return 0, intT, err
		}
		r := c.fn.NewReg()
		c.emit(ir.Instr{Op: ir.OpLoad, Dst: r, X: addr})
		return r, intT, nil

	case *csub.AddrExpr:
		switch inner := x.X.(type) {
		case *csub.Ident:
			if info, ok := c.sc.lookup(inner.Name); ok {
				return info.addr, csub.Type{Kind: csub.TInt}, nil
			}
			if c.ctx.globals[inner.Name] {
				addr := c.fn.NewReg()
				c.emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Sym: inner.Name})
				return addr, intT, nil
			}
			r := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpFnAddr, Dst: r, Sym: inner.Name})
			return r, csub.Type{Kind: csub.TFnPtr}, nil
		default:
			return 0, intT, fmt.Errorf("compiler: & requires a named target")
		}

	case *csub.AllocExpr:
		st := c.ctx.structs[x.Struct]
		if st == nil {
			return 0, intT, c.errf(x.Line, "alloc of unknown struct %q", x.Struct)
		}
		r := c.fn.NewReg()
		c.emit(ir.Instr{Op: ir.OpAllocHeap, Dst: r, Struct: st})
		return r, csub.Type{Kind: csub.TPtr, Struct: x.Struct}, nil

	default:
		return 0, intT, fmt.Errorf("compiler: unknown expression %T", e)
	}
}

func (c *fnCompiler) fieldType(base csub.Type, field string) csub.Type {
	sd := c.ctx.structDefs[base.Struct]
	for _, f := range sd.Fields {
		if f.Name == field {
			return f.Type
		}
	}
	return csub.Type{Kind: csub.TInt}
}

var binKinds = map[string]ir.BinKind{
	"+": ir.BinAdd, "-": ir.BinSub, "*": ir.BinMul, "/": ir.BinDiv, "%": ir.BinRem,
	"==": ir.BinEq, "!=": ir.BinNe, "<": ir.BinLt, "<=": ir.BinLe, ">": ir.BinGt, ">=": ir.BinGe,
	"&": ir.BinAnd, "|": ir.BinOr, "^": ir.BinXor,
}

// compileShortCircuit lowers && and || through control flow and a result
// alloca, matching clang -O0.
func (c *fnCompiler) compileShortCircuit(x *csub.BinExpr) (int, csub.Type, error) {
	intT := csub.Type{Kind: csub.TInt}
	res := c.fn.NewReg()
	c.emit(ir.Instr{Op: ir.OpAlloca, Dst: res, Imm: 1})

	a, _, err := c.compileExpr(x.X)
	if err != nil {
		return 0, intT, err
	}
	z := c.emitConst(0)
	aBool := c.fn.NewReg()
	c.emit(ir.Instr{Op: ir.OpBin, Dst: aBool, Imm: int64(ir.BinNe), X: a, Y: z})
	c.emit(ir.Instr{Op: ir.OpStore, X: res, Y: aBool})

	evalB := c.fn.NewBlock("sc.rhs")
	joinB := c.fn.NewBlock("sc.join")
	if x.Op == "&&" {
		c.emit(ir.Instr{Op: ir.OpCondBr, X: aBool, Blk1: evalB, Blk2: joinB})
	} else {
		c.emit(ir.Instr{Op: ir.OpCondBr, X: aBool, Blk1: joinB, Blk2: evalB})
	}

	c.cur, c.done = evalB, false
	b, _, err := c.compileExpr(x.Y)
	if err != nil {
		return 0, intT, err
	}
	z2 := c.emitConst(0)
	bBool := c.fn.NewReg()
	c.emit(ir.Instr{Op: ir.OpBin, Dst: bBool, Imm: int64(ir.BinNe), X: b, Y: z2})
	c.emit(ir.Instr{Op: ir.OpStore, X: res, Y: bBool})
	c.emit(ir.Instr{Op: ir.OpBr, Blk1: joinB})

	c.cur, c.done = joinB, false
	out := c.fn.NewReg()
	c.emit(ir.Instr{Op: ir.OpLoad, Dst: out, X: res})
	return out, intT, nil
}

func (c *fnCompiler) compileCall(x *csub.CallExpr) (int, csub.Type, error) {
	intT := csub.Type{Kind: csub.TInt}
	var args []int
	for _, a := range x.Args {
		r, _, err := c.compileExpr(a)
		if err != nil {
			return 0, intT, err
		}
		args = append(args, r)
	}
	// Direct call when the callee is a plain function name not shadowed
	// by a variable.
	if id, ok := x.Fn.(*csub.Ident); ok {
		if _, shadowed := c.sc.lookup(id.Name); !shadowed {
			r := c.fn.NewReg()
			c.emit(ir.Instr{Op: ir.OpCall, Dst: r, Sym: id.Name, Args: args, Line: x.Line})
			return r, intT, nil
		}
	}
	fp, _, err := c.compileExpr(x.Fn)
	if err != nil {
		return 0, intT, err
	}
	r := c.fn.NewReg()
	c.emit(ir.Instr{Op: ir.OpCallPtr, Dst: r, X: fp, Args: args, Line: x.Line})
	return r, intT, nil
}

// compileTesla parses an assertion macro in scope and emits the assertion-
// site pseudo-call carrying the scope variables' current values.
func (c *fnCompiler) compileTesla(st *csub.TeslaStmt) error {
	env := &spec.Env{
		Consts:     map[string]int64{},
		VarStructs: map[string]string{},
	}
	for k, v := range c.ctx.defines {
		env.Consts[k] = v
	}
	for sc := c.sc; sc != nil; sc = sc.parent {
		for name, info := range sc.vars {
			if info.typ.Kind == csub.TPtr {
				if _, seen := env.VarStructs[name]; !seen {
					env.VarStructs[name] = info.typ.Struct
				}
			}
		}
	}
	name := fmt.Sprintf("%s:%d", c.file.Name, st.Line)
	a, err := spec.Parse(name, st.Text, env)
	if err != nil {
		return err
	}

	var args []int
	for _, v := range spec.Vars(a.Expr) {
		info, ok := c.sc.lookup(v)
		if !ok {
			return c.errf(st.Line, "assertion references %q, which is not in scope", v)
		}
		r := c.fn.NewReg()
		c.emit(ir.Instr{Op: ir.OpLoad, Dst: r, X: info.addr})
		args = append(args, r)
	}
	c.unit.Assertions = append(c.unit.Assertions, a)
	dst := c.fn.NewReg()
	c.emit(ir.Instr{
		Op:  ir.OpCall,
		Dst: dst,
		// The assertion name rides in the symbol so the pseudo-call
		// survives linking and the instrumenter can match it to its
		// automaton.
		Sym:  SitePseudoFn + ":" + a.Name,
		Args: args,
		Line: st.Line,
	})
	return nil
}
