// tesla-analyse is the TESLA analyser (§4.1): it parses csub source files,
// extracts the TESLA assertions in them and writes .tesla manifest files —
// one per source plus a combined program manifest.
//
// Usage:
//
//	tesla-analyse [-o combined.tesla] [-print] file.c...
package main

import (
	"flag"
	"fmt"
	"os"

	"tesla/internal/analyse"
)

func main() {
	out := flag.String("o", "", "path for the combined program manifest (default: program.tesla)")
	print := flag.Bool("print", false, "print manifests to stdout instead of writing files")
	lint := flag.Bool("lint", false, "also report assertions whose events can never occur")
	entry := flag.String("entry", "main", "entry point for the -lint static checker")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tesla-analyse [-o combined.tesla] [-print] file.c...")
		os.Exit(2)
	}

	sources := map[string]string{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		sources[path] = string(data)
	}

	perFile, combined, err := analyse.Sources(sources)
	if err != nil {
		fatal(err)
	}

	if *lint {
		warnings, _, err := analyse.LintProgram(sources, *entry)
		if err != nil {
			fatal(err)
		}
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "warning: %s\n", w)
		}
	}

	if *print {
		for name, m := range perFile {
			fmt.Printf("; %s (%d assertions)\n", name, len(m.Assertions))
			if err := m.Encode(os.Stdout); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("; combined (%d assertions)\n", len(combined.Assertions))
		if err := combined.Encode(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	for name, m := range perFile {
		path := name + ".tesla"
		if err := m.Save(path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d assertions)\n", path, len(m.Assertions))
	}
	target := *out
	if target == "" {
		target = "program.tesla"
	}
	if err := combined.Save(target); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d assertions)\n", target, len(combined.Assertions))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tesla-analyse:", err)
	os.Exit(1)
}
