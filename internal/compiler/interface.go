// Interface summaries: the cross-file facts a compilation unit exports to
// the rest of the build — struct layouts, #define constants, function and
// global names. They are what C headers carry, and they are all a Context
// needs: internal/build caches one summary per file so that an unchanged
// file's interface can be loaded from disk and the file itself never
// re-parsed, and so that editing a function body (which cannot change the
// summary) does not invalidate other files' compilations.
package compiler

import (
	"encoding/json"
	"fmt"
	"sort"

	"tesla/internal/csub"
	"tesla/internal/ir"
)

// Interface is the serialisable cross-file summary of one parsed file.
type Interface struct {
	Source  string            `json:"source"`
	Structs []*csub.StructDef `json:"structs,omitempty"`
	Defines map[string]int64  `json:"defines,omitempty"`
	Fns     []string          `json:"fns,omitempty"`
	Globals []string          `json:"globals,omitempty"`
}

// InterfaceOf extracts the summary from a parsed file.
func InterfaceOf(f *csub.File) *Interface {
	in := &Interface{Source: f.Name, Structs: f.Structs}
	if len(f.Defines) > 0 {
		in.Defines = f.Defines
	}
	for _, fn := range f.Funcs {
		in.Fns = append(in.Fns, fn.Name)
	}
	for _, g := range f.Globals {
		in.Globals = append(in.Globals, g.Name)
	}
	return in
}

// Encode renders the summary as canonical JSON (map keys sorted), so that
// equal summaries are byte-equal — the property content-hash cache keys
// rely on.
func (in *Interface) Encode() ([]byte, error) {
	return json.Marshal(in)
}

// DecodeInterface parses an encoded summary.
func DecodeInterface(data []byte) (*Interface, error) {
	var in Interface
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("compiler: interface: %w", err)
	}
	return &in, nil
}

// NewContextFromInterfaces indexes per-file summaries for compilation,
// exactly as NewContext indexes whole files. The summaries may arrive in
// any order; they are processed sorted by source name so duplicate
// detection reports deterministically.
func NewContextFromInterfaces(ifaces ...*Interface) (*Context, error) {
	sorted := append([]*Interface(nil), ifaces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Source < sorted[j].Source })
	ctx := &Context{
		structDefs: map[string]*csub.StructDef{},
		structs:    map[string]*ir.StructType{},
		defines:    map[string]int64{},
		fns:        map[string]bool{},
		globals:    map[string]bool{},
	}
	for _, in := range sorted {
		if err := ctx.addInterface(in); err != nil {
			return nil, err
		}
	}
	return ctx, nil
}

func (c *Context) addInterface(in *Interface) error {
	for _, s := range in.Structs {
		if _, dup := c.structDefs[s.Name]; dup {
			return fmt.Errorf("compiler: struct %s defined twice", s.Name)
		}
		c.structDefs[s.Name] = s
		st := &ir.StructType{Name: s.Name}
		for i, fd := range s.Fields {
			st.Fields = append(st.Fields, ir.Field{Name: fd.Name, Offset: i})
		}
		c.structs[s.Name] = st
	}
	for k, v := range in.Defines {
		c.defines[k] = v
	}
	for _, fn := range in.Fns {
		if c.fns[fn] {
			return fmt.Errorf("compiler: function %s defined twice", fn)
		}
		c.fns[fn] = true
	}
	for _, g := range in.Globals {
		c.globals[g] = true
	}
	return nil
}
