// Package kernel is a miniature FreeBSD-like kernel substrate: the
// evaluation target of the paper's §3.5.2/§5.2 case study. It implements
// the subsystems the TESLA kernel assertions talk about — system-call
// dispatch (AMD64Syscall), processes and credentials (including P_SUGID),
// a VFS with a UFS-style filesystem (vnode operation tables, vn_rdwr with
// IO_NOMACCHECK, readdir-internal reads), sockets behind the
// fileops → protosw → pr_usrreqs indirection chain of figure 3,
// poll/select/kqueue, a page-fault read path, and a Mandatory Access
// Control framework with hooks throughout.
//
// The kernel emits TESLA events through a monitor.Thread exactly where the
// instrumenter would place hooks in the real kernel; a nil monitor is the
// "Release" build. The §3.5.2 bugs are reproduced behind Bugs flags so the
// assertion corpus (assertions.go) can detect them.
package kernel

import (
	"fmt"
	"sync/atomic"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/spec"
)

// Mode selects the kernel build configuration benchmarked in §5.2.2.
type Mode int

const (
	// Release has no debugging aids and no instrumentation.
	Release Mode = iota
	// Debug enables the WITNESS-style lock-order checker and INVARIANTS
	// consistency checks accepted by the developer community.
	Debug
)

// BugConfig injects the §3.5.2 bugs.
type BugConfig struct {
	// KqueueMissingPollCheck: mac_socket_check_poll is invoked for the
	// select and poll system calls, but not kqueue.
	KqueueMissingPollCheck bool
	// WrongCredential: one dynamic call graph passes the cached file
	// credential down instead of the active (thread) credential, so
	// authorisation uses the credential that created the file or socket.
	WrongCredential bool
	// MissingSUGID: a process credential is modified without setting the
	// P_SUGID flag, enabling privilege escalation via debuggers.
	MissingSUGID bool
}

// Config configures a kernel instance.
type Config struct {
	Mode Mode
	Bugs BugConfig
	// Monitor, when non-nil, is the TESLA runtime the kernel's
	// instrumentation reports to. Build one from an assertion corpus via
	// assertions.go and monitor.New.
	Monitor *monitor.Monitor
}

// P_SUGID mirrors the FreeBSD process flag: set whenever process
// credentials change in a way debuggers must distrust.
const P_SUGID = 0x100

// IO_NOMACCHECK marks vn_rdwr I/O performed “internally” with MAC checks
// deliberately disabled (fig. 7).
const IO_NOMACCHECK = 0x80

// Errno values (negated FreeBSD style: 0 success, >0 error).
const (
	OK     = 0
	EPERM  = 1
	ENOENT = 2
	EBADF  = 9
	EACCES = 13
	EINVAL = 22
	EMFILE = 24
)

// Kernel is one simulated kernel instance.
type Kernel struct {
	cfg    Config
	nextID int64

	fs      *filesystem
	witness *witness

	// SyscallCount tallies dispatched system calls, for benchmarks.
	SyscallCount uint64
}

// New boots a kernel.
func New(cfg Config) *Kernel {
	k := &Kernel{cfg: cfg, nextID: 1}
	k.fs = newFilesystem(k)
	k.witness = newWitness()
	return k
}

// Config returns the kernel's configuration.
func (k *Kernel) Config() Config { return k.cfg }

func (k *Kernel) id() core.Value {
	return core.Value(atomic.AddInt64(&k.nextID, 1))
}

// Thread is one kernel thread: the unit of syscall execution and of
// TESLA's per-thread context.
type Thread struct {
	k    *Kernel
	mt   *monitor.Thread // nil in Release/Debug builds without TESLA
	proc *Proc

	// fds is the per-process descriptor table (simplified per-thread).
	fds []*File

	locks []string // WITNESS shadow stack (Debug mode)
}

// NewThread creates a thread belonging to a fresh process.
func (k *Kernel) NewThread() *Thread {
	t := &Thread{k: k, proc: k.newProc()}
	if k.cfg.Monitor != nil {
		t.mt = k.cfg.Monitor.NewThread()
	}
	return t
}

// MonitorThread exposes the TESLA thread context (nil when uninstrumented).
func (t *Thread) MonitorThread() *monitor.Thread { return t.mt }

// Proc returns the thread's process.
func (t *Thread) Proc() *Proc { return t.proc }

// Instrumentation shims: these are the hooks the TESLA instrumenter would
// insert. They compile to nearly nothing in Release builds.

func (t *Thread) enter(fn string, args ...core.Value) {
	if t.mt != nil {
		t.mt.Call(fn, args...)
	}
}

func (t *Thread) exit(fn string, ret core.Value, args ...core.Value) {
	if t.mt != nil {
		t.mt.Return(fn, ret, args...)
	}
}

func (t *Thread) site(name string, vals ...core.Value) {
	if t.mt != nil {
		t.mt.Site(name, vals...)
	}
}

func (t *Thread) assign(structName, field string, target core.Value, op spec.AssignOp, value core.Value) {
	if t.mt != nil {
		t.mt.Assign(structName, field, target, op, value)
	}
}

// debug reports whether WITNESS/INVARIANTS-style checking is on.
func (t *Thread) debug() bool { return t.k.cfg.Mode == Debug }

// invariant is an INVARIANTS-style consistency check: real work in Debug
// builds, free otherwise.
func (t *Thread) invariant(cond bool, what string) {
	if t.debug() && !cond {
		panic(fmt.Sprintf("kernel: INVARIANTS: %s", what))
	}
}

// lock/unlock drive the WITNESS lock-order checker in Debug mode.
func (t *Thread) lock(name string) {
	if t.debug() {
		t.k.witness.acquire(t, name)
	}
	t.locks = append(t.locks, name)
}

func (t *Thread) unlock(name string) {
	if n := len(t.locks); n > 0 && t.locks[n-1] == name {
		t.locks = t.locks[:n-1]
	}
	if t.debug() {
		t.k.witness.release(t, name)
	}
}

// witness is a WITNESS-style lock-order verifier: it records the global
// acquisition-order graph and checks new acquisitions against it — the
// kind of hand-crafted temporal checker §1 credits with FreeBSD rarely
// experiencing deadlocks, and the cost baseline the paper compares against.
type witness struct {
	// order[a][b] means a has been held while acquiring b.
	order map[string]map[string]bool
}

func newWitness() *witness {
	return &witness{order: map[string]map[string]bool{}}
}

func (w *witness) acquire(t *Thread, name string) {
	for _, held := range t.locks {
		if held == name {
			panic("kernel: WITNESS: recursive lock " + name)
		}
		// Record held-before relation; reversal is an order violation.
		if w.order[name] != nil && w.order[name][held] {
			panic(fmt.Sprintf("kernel: WITNESS: lock order reversal %s -> %s", held, name))
		}
		m := w.order[held]
		if m == nil {
			m = map[string]bool{}
			w.order[held] = m
		}
		m[name] = true
	}
}

func (w *witness) release(t *Thread, name string) {}
