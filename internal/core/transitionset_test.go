package core

import "testing"

// TransitionSet predicate tests: HasInit/HasCleanup and the «init» selection
// are hoisted into every SymbolPlan at lowering time, so their edge cases —
// empty sets, several init candidates, cleanup-only sets — are pinned here
// and cross-checked against the plan's cached answers.

func TestTransitionSetPredicatesEmpty(t *testing.T) {
	var ts TransitionSet
	if ts.HasInit() {
		t.Error("empty set reports HasInit")
	}
	if ts.HasCleanup() {
		t.Error("empty set reports HasCleanup")
	}
	if tr := initTransition(ts); tr != nil {
		t.Errorf("empty set yields init transition %v", tr)
	}
	if ts := (TransitionSet{{From: 1, To: 2}}); ts.HasInit() || ts.HasCleanup() || initTransition(ts) != nil {
		t.Error("plain update edge misclassified")
	}
}

func TestInitTransitionFirstCandidateWins(t *testing.T) {
	ts := TransitionSet{
		{From: 3, To: 4},
		{From: 0, To: 1, Flags: TransInit, KeyMask: 1},
		{From: 0, To: 2, Flags: TransInit, KeyMask: 3},
	}
	if !ts.HasInit() {
		t.Fatal("HasInit false with two init candidates")
	}
	tr := initTransition(ts)
	if tr == nil {
		t.Fatal("no init transition found")
	}
	// The interpreted walk takes the first init in set order; the engine's
	// hoisted selection must agree or clones land in different start states.
	if tr != &ts[1] {
		t.Errorf("initTransition picked %v, want first candidate %v", tr, ts[1])
	}
	cls := &Class{Name: "initpick", States: 8}
	p := NewSymbolPlan(cls, "enter", 0, ts)
	if !p.HasInit() {
		t.Error("plan lost the init transition")
	}
	if got := p.initTr(); got.To != 1 || got.KeyMask != 1 {
		t.Errorf("plan hoisted init %v, want first candidate", got)
	}
}

func TestTransitionSetCleanupOnly(t *testing.T) {
	ts := TransitionSet{
		{From: 2, To: 7, Flags: TransCleanup},
		{From: 4, To: 7, Flags: TransCleanup},
	}
	if ts.HasInit() {
		t.Error("cleanup-only set reports HasInit")
	}
	if !ts.HasCleanup() {
		t.Error("cleanup-only set misses HasCleanup")
	}
	if tr := initTransition(ts); tr != nil {
		t.Errorf("cleanup-only set yields init transition %v", tr)
	}
	cls := &Class{Name: "cleanuponly", States: 8}
	p := NewSymbolPlan(cls, "exit", 0, ts)
	if p.HasInit() || !p.HasCleanup() {
		t.Errorf("plan shape %s, want cleanup without init", p.Shape())
	}
}

func TestTransitionSetInitAndCleanupTogether(t *testing.T) {
	// A one-event bound: the same event opens and finalises an instance.
	ts := TransitionSet{{From: 0, To: 1, Flags: TransInit | TransCleanup}}
	if !ts.HasInit() || !ts.HasCleanup() {
		t.Fatal("combined init+cleanup flags not reported")
	}
	if tr := initTransition(ts); tr == nil || !tr.Cleanup() {
		t.Errorf("initTransition = %v, want the combined edge", tr)
	}
}
