package monitor

import (
	"fmt"
	"testing"

	"tesla/internal/core"
)

// FuzzBatchFlush explores interleavings of the batched event plane's staging
// operations — push, explicit flush, ring-overflow forced flush, required-site
// drain-through and the Health() verdict-read drain — and asserts the one
// property every interleaving must preserve: a thread's events reach the tap
// exactly once, in emission order. The ring size is fuzzed small (1..9) so
// overflow flushes land between any two events, and the tap is fuzzed between
// the batch-capable and per-event fallback delivery paths.

// orderTap records every delivered event label in arrival order. The batch
// flag selects whether the sink advertises ProgramBatch (ownership-transfer
// path) or only the per-event fallback.
type orderTap struct {
	batch bool
	got   []string
}

func (o *orderTap) ThreadTap(threadID int) ThreadTap {
	if o.batch {
		return (*orderBatchSink)(o)
	}
	return (*orderSink)(o)
}

type orderSink orderTap

func (s *orderSink) ProgramEvent(ev ProgramEvent) {
	s.got = append(s.got, labelOf(ev))
}

type orderBatchSink orderTap

func (s *orderBatchSink) ProgramEvent(ev ProgramEvent) {
	s.got = append(s.got, labelOf(ev))
}

func (s *orderBatchSink) ProgramBatch(evs []ProgramEvent) {
	for i := range evs {
		s.got = append(s.got, labelOf(evs[i]))
	}
}

func labelOf(ev ProgramEvent) string {
	return fmt.Sprintf("%s|%s|%v|%d", ev.Kind, ev.Fn, ev.Vals, ev.Auto)
}

func FuzzBatchFlush(f *testing.F) {
	f.Add(uint8(1), true, []byte{4, 4, 0, 4, 1, 4, 4, 4, 2, 4})
	f.Add(uint8(3), false, []byte{4, 4, 4, 4, 4, 4, 4, 4, 0})
	f.Add(uint8(7), true, []byte{3, 4, 1, 4, 3, 2, 4, 0, 4, 4, 4, 4, 4, 1})
	f.Add(uint8(0), true, []byte{4, 1, 4, 0, 4, 2})
	f.Fuzz(func(t *testing.T, bs uint8, batchTap bool, actions []byte) {
		size := int(bs)%9 + 1
		// FailFast makes the site's automaton fail-stop, so site events are
		// verdict-bearing and drain through the staging ring inline.
		auto := mustAuto(t, "fz", `TESLA_SYSCALL_PREVIOUSLY(chk(x) == 0)`, nil)
		tap := &orderTap{batch: batchTap}
		m := MustNew(Options{Tap: tap, BatchSize: size, FailFast: true}, auto)
		th := m.NewThread()

		var want []string
		n := core.Value(0)
		inBound := false
		for _, a := range actions {
			switch a % 8 {
			case 0: // explicit flush (a permuted flush point)
				if err := th.Flush(); err != nil {
					t.Fatalf("flush: %v", err)
				}
			case 1: // required-site event: drains through when fail-stop
				want = append(want, fmt.Sprintf("site|fz|%v|0", []core.Value{n}))
				th.Site("fz", n) // violation errors are expected, order is not
			case 2: // verdict read: Health is a required-site drain
				m.Health()
			case 3: // bound toggle: begin/end lifecycle ops ride the ring too
				if inBound {
					want = append(want, fmt.Sprintf("return|amd64_syscall|%v|0", []core.Value(nil)))
					th.Return("amd64_syscall", 0)
				} else {
					want = append(want, fmt.Sprintf("call|amd64_syscall|%v|0", []core.Value(nil)))
					th.Call("amd64_syscall")
				}
				inBound = !inBound
			default: // push: a distinct numbered event
				want = append(want, fmt.Sprintf("call|chk|%v|0", []core.Value{n}))
				th.Call("chk", n)
				n++
			}
		}
		if err := m.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}

		if len(tap.got) != len(want) {
			t.Fatalf("ring %d: %d events delivered, %d emitted\n got: %q\nwant: %q",
				size, len(tap.got), len(want), tap.got, want)
		}
		for i := range want {
			if tap.got[i] != want[i] {
				t.Fatalf("ring %d: event %d reordered: got %q want %q", size, i, tap.got[i], want[i])
			}
		}
	})
}
