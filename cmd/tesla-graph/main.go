// tesla-graph renders TESLA automata as Graphviz digraphs. With -fig9 it
// drives the kernel's socket-poll workload first and weights the
// transitions according to their occurrence at run time, reproducing
// figure 9's combined static/dynamic view.
//
// Usage:
//
//	tesla-graph -assert 'TESLA_WITHIN(f, previously(g(x) == 0))'
//	tesla-graph -manifest program.tesla [-name file.c:12]
//	tesla-graph -fig9 [-syscalls 1000]
package main

import (
	"flag"
	"fmt"
	"os"

	"tesla/internal/automata"
	"tesla/internal/bench"
	"tesla/internal/manifest"
	"tesla/internal/spec"
)

func main() {
	assert := flag.String("assert", "", "TESLA assertion macro text to compile")
	manifestPath := flag.String("manifest", "", "render automata from this manifest")
	name := flag.String("name", "", "only the named assertion from the manifest")
	fig9 := flag.Bool("fig9", false, "reproduce figure 9: run the kernel poll workload and weight the MAC automaton")
	syscalls := flag.Int("syscalls", 1000, "workload size for -fig9")
	flag.Parse()

	switch {
	case *fig9:
		if err := bench.Fig9(os.Stdout, *syscalls); err != nil {
			fatal(err)
		}
	case *assert != "":
		a, err := spec.Parse("cmdline", *assert, nil)
		if err != nil {
			fatal(err)
		}
		auto, err := automata.Compile(a)
		if err != nil {
			fatal(err)
		}
		fmt.Print(auto.Dot(nil))
	case *manifestPath != "":
		m, err := manifest.Load(*manifestPath)
		if err != nil {
			fatal(err)
		}
		autos, err := m.Compile()
		if err != nil {
			fatal(err)
		}
		for _, auto := range autos {
			if *name != "" && auto.Name != *name {
				continue
			}
			fmt.Print(auto.Dot(nil))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: tesla-graph -assert '...' | -manifest m.tesla [-name N] | -fig9")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tesla-graph:", err)
	os.Exit(1)
}
