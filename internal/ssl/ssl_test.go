package ssl

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"tesla/internal/core"
	"tesla/internal/monitor"
)

func TestDERIntegerRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 127, 128, 255, 256, 1 << 20, P - 1} {
		enc := AppendInteger(nil, v)
		got, rest, err := ParseInteger(enc)
		if err != nil {
			t.Fatalf("%d: %v", v, err)
		}
		if got != v || len(rest) != 0 {
			t.Fatalf("%d: got %d rest=%d", v, got, len(rest))
		}
	}
}

func TestQuickDERIntegerRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		v %= P
		enc := AppendInteger(nil, v)
		got, _, err := ParseInteger(enc)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDERLongForm(t *testing.T) {
	val := make([]byte, 300)
	for i := range val {
		val[i] = byte(i)
	}
	enc := AppendTLV(nil, TagSequence, val)
	tag, got, rest, err := ParseTLV(enc)
	if err != nil || tag != TagSequence || !reflect.DeepEqual(got, val) || len(rest) != 0 {
		t.Fatalf("long form: tag=%#x err=%v len=%d", tag, err, len(got))
	}
}

func TestDERErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{0x02},
		{0x02, 0x05, 0x01},       // truncated value
		{0x02, 0x84, 0, 0, 0, 0}, // unsupported length form
		{0x02, 0x81},             // truncated long form
	}
	for i, b := range bad {
		if _, _, _, err := ParseTLV(b); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// BIT STRING where INTEGER expected.
	enc := AppendTLV(nil, TagBitString, []byte{1})
	if _, _, err := ParseInteger(enc); err == nil {
		t.Error("forged tag must not parse as INTEGER")
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	enc := EncodeSignature(123456, 789012)
	r, s, err := DecodeSignature(enc)
	if err != nil || r != 123456 || s != 789012 {
		t.Fatalf("r=%d s=%d err=%v", r, s, err)
	}
}

func TestForgeSignatureTag(t *testing.T) {
	sig := EncodeSignature(99, 100)
	forged := ForgeSignatureTag(sig)
	if _, _, err := DecodeSignature(forged); err == nil {
		t.Fatal("forged signature must fail to parse")
	}
	// Original is not mutated.
	if _, _, err := DecodeSignature(sig); err != nil {
		t.Fatalf("original corrupted: %v", err)
	}
}

func TestSignVerify(t *testing.T) {
	key := GenerateKey(42)
	msg := []byte("key exchange payload")
	sig := key.Sign(Digest(msg))

	env := NewEnv(nil)
	if got := env.EVPVerifyFinal(1, sig, Digest(msg), key); got != 1 {
		t.Fatalf("valid signature: %d", got)
	}
	// Wrong digest: verification fails cleanly (0).
	if got := env.EVPVerifyFinal(1, sig, Digest([]byte("other")), key); got != 0 {
		t.Fatalf("wrong digest: %d", got)
	}
	// Forged tag: exceptional failure (-1).
	if got := env.EVPVerifyFinal(1, ForgeSignatureTag(sig), Digest(msg), key); got != -1 {
		t.Fatalf("forged: %d", got)
	}
}

func TestQuickSignVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		key := GenerateKey(rng.Int63n(1 << 40))
		msg := make([]byte, 8+rng.Intn(32))
		rng.Read(msg)
		sig := key.Sign(Digest(msg))
		env := NewEnv(nil)
		if env.EVPVerifyFinal(1, sig, Digest(msg), key) != 1 {
			return false
		}
		// A perturbed digest must not verify (requires y ≠ 1, which
		// GenerateKey guarantees).
		bad := (Digest(msg) % (P - 2)) + 1
		if bad == Digest(msg) {
			bad = Digest(msg) - 1
		}
		return env.EVPVerifyFinal(1, sig, bad, key) != 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestVulnerableClientAcceptsForgery: without TESLA, the buggy client
// accepts the malicious server's forged signature (the CVE).
func TestVulnerableClientAcceptsForgery(t *testing.T) {
	srv := NewServer(1)
	srv.Malicious = true
	c := &Client{Env: NewEnv(nil), FixedCheck: false}
	conn, err := c.SSLConnect(srv)
	if err != nil {
		t.Fatal("vulnerable client should (wrongly) accept the forgery")
	}
	if conn.Verified != -1 {
		t.Fatalf("verified = %d, want -1", conn.Verified)
	}

	// The fixed client rejects it.
	cf := &Client{Env: NewEnv(nil), FixedCheck: true}
	if _, err := cf.SSLConnect(srv); err == nil {
		t.Fatal("fixed client must reject the forgery")
	}
}

// TestFig6AssertionDetectsForgery reproduces §3.5.1: the day after the CVE
// announcement, the libfetch author writes one assertion and recompiles —
// TESLA flags the forged handshake even though the buggy check "succeeds".
func TestFig6AssertionDetectsForgery(t *testing.T) {
	run := func(malicious bool) []*core.Violation {
		auto, err := FetchAutomaton()
		if err != nil {
			t.Fatal(err)
		}
		h := core.NewCountingHandler()
		m := monitor.MustNew(monitor.Options{Handler: h}, auto)
		env := NewEnv(m.NewThread())
		srv := NewServer(5)
		srv.Malicious = malicious
		c := &Client{Env: env, FixedCheck: false}
		doc, err := FetchMain(env, c, srv, "/index.html")
		if err != nil {
			t.Fatalf("fetch: %v", err)
		}
		if !strings.Contains(doc, "hello") {
			t.Fatalf("doc = %q", doc)
		}
		return h.Violations()
	}

	if vs := run(false); len(vs) != 0 {
		t.Fatalf("honest server flagged: %v", vs)
	}
	vs := run(true)
	if len(vs) != 1 || vs[0].Kind != core.VerdictNoInstance {
		t.Fatalf("forgery not detected: %v", vs)
	}
	if !strings.Contains(vs[0].Error(), "EVP_VerifyFinal") {
		t.Fatalf("violation should cite EVP_VerifyFinal: %v", vs[0])
	}
}
