package core

import (
	"fmt"
	"io"
	"sync"
)

// Handler receives lifecycle notifications from a Store (§4.4.2: “TESLA has
// a pluggable event notification framework with a set of default handlers
// and support for user-provided handler callbacks”). All of the event types
// from §4.4.1 are reported: instance initialisation, clones, updates, errors
// and finalisation (automaton acceptance).
//
// Handlers are invoked after the store has released its internal locks: an
// event's notifications are buffered during the critical section and
// dispatched once it ends, so a handler may block or call back into the same
// store without stalling monitored threads. Instance arguments are snapshot
// copies taken while the locks were held — the underlying slots may already
// have been reused by the time the handler runs, so pointers must not be
// retained. A panicking handler does not kill the program: panics are
// recovered and counted, and past Store's HandlerPanicLimit the handler is
// quarantined (see supervise.go).
type Handler interface {
	// InstanceNew is called when an «init» transition creates an instance.
	InstanceNew(cls *Class, inst *Instance)
	// InstanceClone is called when an event specialises an instance's key.
	InstanceClone(cls *Class, parent, clone *Instance)
	// Transition is called for every state change, including those made by
	// freshly created or cloned instances. symbol names the driving event.
	Transition(cls *Class, inst *Instance, from, to uint32, symbol string)
	// Accept is called when an instance finalises in an accepting state.
	Accept(cls *Class, inst *Instance)
	// Fail is called for every detected violation.
	Fail(v *Violation)
	// Overflow is called when instance creation exceeds the class limit.
	Overflow(cls *Class, key Key)
	// Evict is called when the EvictOldest overflow policy sacrifices a
	// live instance to make room for a new one.
	Evict(cls *Class, inst *Instance)
	// Quarantine is called when a class enters (on=true) or leaves
	// (on=false) quarantine under the QuarantineClass overflow policy.
	Quarantine(cls *Class, on bool)
}

// NopHandler discards all notifications. It is the building block for
// handlers that only care about a subset of events.
type NopHandler struct{}

func (NopHandler) InstanceNew(*Class, *Instance)                        {}
func (NopHandler) InstanceClone(*Class, *Instance, *Instance)           {}
func (NopHandler) Transition(*Class, *Instance, uint32, uint32, string) {}
func (NopHandler) Accept(*Class, *Instance)                             {}
func (NopHandler) Fail(*Violation)                                      {}
func (NopHandler) Overflow(*Class, Key)                                 {}
func (NopHandler) Evict(*Class, *Instance)                              {}
func (NopHandler) Quarantine(*Class, bool)                              {}

// PrintHandler writes human-readable event traces, the userspace default
// behaviour (normally directed at stderr, controlled by TESLA_DEBUG).
type PrintHandler struct {
	W io.Writer
}

func (h *PrintHandler) InstanceNew(cls *Class, inst *Instance) {
	fmt.Fprintf(h.W, "tesla: %s: new instance %s in state %d\n", cls.Name, inst.Key, inst.State)
}

func (h *PrintHandler) InstanceClone(cls *Class, parent, clone *Instance) {
	fmt.Fprintf(h.W, "tesla: %s: clone %s -> %s (state %d)\n", cls.Name, parent.Key, clone.Key, clone.State)
}

func (h *PrintHandler) Transition(cls *Class, inst *Instance, from, to uint32, symbol string) {
	fmt.Fprintf(h.W, "tesla: %s: %s: %d -> %d on %q\n", cls.Name, inst.Key, from, to, symbol)
}

func (h *PrintHandler) Accept(cls *Class, inst *Instance) {
	fmt.Fprintf(h.W, "tesla: %s: %s accepted\n", cls.Name, inst.Key)
}

func (h *PrintHandler) Fail(v *Violation) {
	fmt.Fprintf(h.W, "%s\n", v.Error())
}

func (h *PrintHandler) Overflow(cls *Class, key Key) {
	fmt.Fprintf(h.W, "tesla: %s: instance table overflow at %s\n", cls.Name, key)
}

func (h *PrintHandler) Evict(cls *Class, inst *Instance) {
	fmt.Fprintf(h.W, "tesla: %s: evicted oldest instance %s (state %d)\n", cls.Name, inst.Key, inst.State)
}

func (h *PrintHandler) Quarantine(cls *Class, on bool) {
	if on {
		fmt.Fprintf(h.W, "tesla: %s: class quarantined after repeated overflow\n", cls.Name)
	} else {
		fmt.Fprintf(h.W, "tesla: %s: class re-armed\n", cls.Name)
	}
}

// TransitionEdge identifies one automaton edge for coverage accounting.
type TransitionEdge struct {
	Class  string
	From   uint32
	To     uint32
	Symbol string
}

// CountingHandler aggregates per-edge transition counts, the data behind the
// weighted automaton graphs of figure 9 and TESLA's “logical coverage”
// reporting. It is safe for concurrent use.
type CountingHandler struct {
	NopHandler

	mu         sync.Mutex
	edges      map[TransitionEdge]uint64
	accepts    map[string]uint64
	violations []*Violation
}

// NewCountingHandler returns an empty CountingHandler.
func NewCountingHandler() *CountingHandler {
	return &CountingHandler{
		edges:   make(map[TransitionEdge]uint64),
		accepts: make(map[string]uint64),
	}
}

func (h *CountingHandler) Transition(cls *Class, inst *Instance, from, to uint32, symbol string) {
	h.mu.Lock()
	h.edges[TransitionEdge{cls.Name, from, to, symbol}]++
	h.mu.Unlock()
}

func (h *CountingHandler) Accept(cls *Class, inst *Instance) {
	h.mu.Lock()
	h.accepts[cls.Name]++
	h.mu.Unlock()
}

func (h *CountingHandler) Fail(v *Violation) {
	h.mu.Lock()
	h.violations = append(h.violations, v)
	h.mu.Unlock()
}

// EdgeCount returns the number of times the edge fired.
func (h *CountingHandler) EdgeCount(e TransitionEdge) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.edges[e]
}

// Edges returns a copy of all edge counts.
func (h *CountingHandler) Edges() map[TransitionEdge]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[TransitionEdge]uint64, len(h.edges))
	for e, n := range h.edges {
		out[e] = n
	}
	return out
}

// Accepts returns how many instances of the named class accepted.
func (h *CountingHandler) Accepts(class string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.accepts[class]
}

// Violations returns the violations observed so far.
func (h *CountingHandler) Violations() []*Violation {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Violation(nil), h.violations...)
}

// MultiHandler fans notifications out to several handlers in order.
type MultiHandler []Handler

func (m MultiHandler) InstanceNew(cls *Class, inst *Instance) {
	for _, h := range m {
		h.InstanceNew(cls, inst)
	}
}

func (m MultiHandler) InstanceClone(cls *Class, parent, clone *Instance) {
	for _, h := range m {
		h.InstanceClone(cls, parent, clone)
	}
}

func (m MultiHandler) Transition(cls *Class, inst *Instance, from, to uint32, symbol string) {
	for _, h := range m {
		h.Transition(cls, inst, from, to, symbol)
	}
}

func (m MultiHandler) Accept(cls *Class, inst *Instance) {
	for _, h := range m {
		h.Accept(cls, inst)
	}
}

func (m MultiHandler) Fail(v *Violation) {
	for _, h := range m {
		h.Fail(v)
	}
}

func (m MultiHandler) Overflow(cls *Class, key Key) {
	for _, h := range m {
		h.Overflow(cls, key)
	}
}

func (m MultiHandler) Evict(cls *Class, inst *Instance) {
	for _, h := range m {
		h.Evict(cls, inst)
	}
}

func (m MultiHandler) Quarantine(cls *Class, on bool) {
	for _, h := range m {
		h.Quarantine(cls, on)
	}
}
