package trace

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/faultinject"
)

// spoolFrames opens dir read-only and collects every recoverable payload.
func spoolFrames(t *testing.T, dir string) [][]byte {
	t.Helper()
	sp, err := OpenSpool(dir, SpoolOpts{Sync: SpoolSyncNone})
	if err != nil {
		t.Fatalf("reopen spool: %v", err)
	}
	defer sp.Close()
	var got [][]byte
	if err := sp.Range(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("range: %v", err)
	}
	return got
}

func TestSpoolAppendReadBack(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, SpoolOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := bytes.Repeat([]byte{byte(i)}, i*13+1)
		want = append(want, p)
		if err := sp.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if sp.FrameCount() != 20 {
		t.Fatalf("FrameCount = %d, want 20", sp.FrameCount())
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if got := spoolFrames(t, dir); !reflect.DeepEqual(got, want) {
		t.Fatalf("read back %d frames, want %d, or contents differ", len(got), len(want))
	}
}

// TestSpoolSegmentRotation: tiny segments force rotation; order and
// contents survive, and reopening appends into the last segment.
func TestSpoolSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, SpoolOpts{SegmentBytes: 64, Sync: SpoolSyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 30; i++ {
		p := []byte(fmt.Sprintf("frame-%02d-%s", i, bytes.Repeat([]byte{'x'}, i%11)))
		want = append(want, p)
		if err := sp.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	sp.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected >=3 segments after rotation, got %d", len(segs))
	}

	// Reopen for append: recovery must find all frames and keep going.
	sp2, err := OpenSpool(dir, SpoolOpts{SegmentBytes: 64, Sync: SpoolSyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if rec := sp2.Recovered(); rec.Frames != 30 || rec.TruncatedBytes != 0 || rec.DroppedSegments != 0 {
		t.Fatalf("clean reopen recovered %+v", rec)
	}
	p := []byte("post-recovery frame")
	want = append(want, p)
	if err := sp2.Append(p); err != nil {
		t.Fatal(err)
	}
	sp2.Close()
	if got := spoolFrames(t, dir); !reflect.DeepEqual(got, want) {
		t.Fatalf("rotation read-back mismatch: got %d frames want %d", len(got), len(want))
	}
}

// TestSpoolTornTailRecovery simulates a crash mid-append: every possible
// truncation point of the final segment must recover to a whole-frame
// prefix, and appending after recovery must work.
func TestSpoolTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, SpoolOpts{Sync: SpoolSyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 5; i++ {
		p := bytes.Repeat([]byte{byte('a' + i)}, 9)
		want = append(want, p)
		sp.Append(p)
	}
	sp.Close()
	seg := filepath.Join(dir, segName(1))
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	frameLen := walFrameHeader + 9
	for cut := 0; cut <= len(whole); cut++ {
		if err := os.WriteFile(seg, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		sp2, err := OpenSpool(dir, SpoolOpts{Sync: SpoolSyncNone})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		wantFrames := 0
		if cut >= walHeaderSize {
			wantFrames = (cut - walHeaderSize) / frameLen
		}
		var got [][]byte
		sp2.Range(func(p []byte) error { got = append(got, append([]byte(nil), p...)); return nil })
		if len(got) != wantFrames {
			t.Fatalf("cut=%d: recovered %d frames, want prefix of %d", cut, len(got), wantFrames)
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut=%d: frame %d differs from what was appended", cut, i)
			}
		}
		// The repaired log must accept new appends at the boundary.
		if err := sp2.Append([]byte("resumed")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := sp2.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		after := spoolFrames(t, dir)
		if len(after) != wantFrames+1 || string(after[wantFrames]) != "resumed" {
			t.Fatalf("cut=%d: post-recovery append not readable", cut)
		}
	}
}

// TestSpoolMidSegmentCorruption: a flipped byte in an early segment ends
// the valid prefix there; later segments are dropped entirely.
func TestSpoolMidSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, SpoolOpts{SegmentBytes: 64, Sync: SpoolSyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 20)
		want = append(want, p)
		sp.Append(p)
	}
	sp.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	// Flip one payload byte in the second segment.
	seg2 := filepath.Join(dir, segName(segs[1]))
	data, _ := os.ReadFile(seg2)
	data[walHeaderSize+walFrameHeader+3] ^= 0xff
	os.WriteFile(seg2, data, 0o644)

	sp2, err := OpenSpool(dir, SpoolOpts{Sync: SpoolSyncNone})
	if err != nil {
		t.Fatal(err)
	}
	rec := sp2.Recovered()
	if rec.DroppedSegments == 0 || rec.TruncatedBytes == 0 {
		t.Fatalf("recovery stats %+v: expected dropped segments and truncated bytes", rec)
	}
	var got [][]byte
	sp2.Range(func(p []byte) error { got = append(got, append([]byte(nil), p...)); return nil })
	sp2.Close()
	if len(got) >= len(want) || !reflect.DeepEqual(got, want[:len(got)]) {
		t.Fatalf("recovered %d frames is not a proper prefix of %d", len(got), len(want))
	}
	// Everything in segment 1 must have survived.
	perSeg := 0
	for off := walHeaderSize; off+walFrameHeader+20 <= 64 || perSeg == 0; off += walFrameHeader + 20 {
		perSeg++
		if off+2*(walFrameHeader+20) > 64+walFrameHeader+20 {
			break
		}
	}
	if len(got) == 0 {
		t.Fatal("corruption in segment 2 wiped segment 1")
	}
}

// TestSpoolWriteFaults: injected write failures (internal/faultinject
// SiteWALWrite) skip exactly the faulted frames, leave the log valid and
// do not poison subsequent appends.
func TestSpoolWriteFaults(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(7)
	inj.SetEvery(faultinject.SiteWALWrite, 3)
	sp, err := OpenSpool(dir, SpoolOpts{
		Sync: SpoolSyncNone,
		WriteFault: func(int) error {
			if inj.Should(faultinject.SiteWALWrite, "seg") {
				return errors.New("injected write fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	var faults int
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("frame-%d", i))
		if err := sp.Append(p); err != nil {
			faults++
		} else {
			want = append(want, p)
		}
	}
	sp.Close()
	if faults != 3 {
		t.Fatalf("faults = %d, want 3 (every 3rd of 10)", faults)
	}
	if got := spoolFrames(t, dir); !reflect.DeepEqual(got, want) {
		t.Fatalf("surviving frames differ: got %d want %d", len(got), len(want))
	}
}

// TestSpoolSyncFaults: a failed fsync surfaces the error (the caller
// accounts the frame as potentially lost) but the bytes already written
// stay readable — recovery may deliver more than the conservative
// accounting promised, never less.
func TestSpoolSyncFaults(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(7)
	inj.SetEvery(faultinject.SiteWALSync, 2)
	sp, err := OpenSpool(dir, SpoolOpts{
		Sync: SpoolSyncAlways,
		SyncFault: func() error {
			if inj.Should(faultinject.SiteWALSync, "seg") {
				return errors.New("injected sync fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var errs int
	for i := 0; i < 6; i++ {
		if err := sp.Append([]byte{byte(i)}); err != nil {
			errs++
		}
	}
	sp.opts.SyncFault = nil
	sp.Close()
	if errs != 3 {
		t.Fatalf("sync errors = %d, want 3", errs)
	}
	if got := spoolFrames(t, dir); len(got) != 6 {
		t.Fatalf("recovered %d frames, want all 6 (sync failure does not unwrite)", len(got))
	}
}

// TestSpoolWriter: a live recorder streamed through a SpoolWriter must
// recover (ReadSpool) to exactly the recorder's own snapshot — same
// events, same order, same loss accounting.
func TestSpoolWriter(t *testing.T) {
	autos := []*automata.Automaton{{Name: "a"}}
	cls := &core.Class{Name: "a", States: 4, Limit: 4}
	rec := NewRecorder(autos, 0)
	sp, err := OpenSpool(t.TempDir(), SpoolOpts{Sync: SpoolSyncNone})
	if err != nil {
		t.Fatal(err)
	}
	w := NewSpoolWriter(rec, sp)
	for i := 0; i < 137; i++ {
		rec.Transition(cls, &core.Instance{Key: core.NewKey(core.Value(i))}, 0, 1, "sym")
		if i%17 == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Stop(); err != nil {
		t.Fatal(err)
	}
	if lf, le := w.Lost(); lf != 0 || le != 0 {
		t.Fatalf("lost %d frames / %d events on a healthy spool", lf, le)
	}
	sp.Close()

	got, err := ReadSpool(sp.Dir())
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Snapshot()
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Fatalf("recovered %d events != snapshot %d", len(got.Events), len(want.Events))
	}
	if got.Dropped != want.Dropped || !reflect.DeepEqual(got.Automata, want.Automata) {
		t.Fatalf("recovered metadata differs: dropped %d/%d automata %v/%v",
			got.Dropped, want.Dropped, got.Automata, want.Automata)
	}
}

// TestSpoolWriterLossAccounting: append failures surface in Lost() — the
// delta is discarded, never silently retried into a double-append.
func TestSpoolWriterLossAccounting(t *testing.T) {
	autos := []*automata.Automaton{{Name: "a"}}
	cls := &core.Class{Name: "a", States: 4, Limit: 4}
	rec := NewRecorder(autos, 0)
	fail := false
	sp, err := OpenSpool(t.TempDir(), SpoolOpts{
		Sync: SpoolSyncNone,
		WriteFault: func(int) error {
			if fail {
				return errors.New("injected")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := NewSpoolWriter(rec, sp)
	for i := 0; i < 10; i++ {
		rec.Accept(cls, &core.Instance{Key: core.NewKey(core.Value(i))})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		rec.Accept(cls, &core.Instance{Key: core.NewKey(core.Value(100 + i))})
	}
	fail = true
	if err := w.Flush(); err == nil {
		t.Fatal("flush over a failing spool succeeded")
	}
	fail = false
	if lf, le := w.Lost(); lf != 1 || le != 7 {
		t.Fatalf("Lost() = %d frames / %d events, want 1 / 7", lf, le)
	}
	sp.Close()
	got, err := ReadSpool(sp.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 10 {
		t.Fatalf("spool holds %d events, want the 10 from the successful flush", len(got.Events))
	}
}

// FuzzSpoolRecover builds a known-good spool, then truncates and
// bit-flips it the way torn writes and disk corruption would, and
// asserts the two recovery invariants: OpenSpool never panics, and what
// it yields is always a verbatim frame prefix of what was appended.
// Recovery must also be idempotent: reopening a repaired spool yields
// the same frames with nothing further to repair.
func FuzzSpoolRecover(f *testing.F) {
	f.Add(uint8(4), uint32(20), uint8(0xff), uint32(1<<30))
	f.Add(uint8(1), uint32(0), uint8(1), uint32(5))
	f.Add(uint8(7), uint32(9), uint8(0), uint32(0))
	f.Fuzz(func(t *testing.T, nFrames uint8, mutPos uint32, mutVal uint8, cutAt uint32) {
		dir := t.TempDir()
		sp, err := OpenSpool(dir, SpoolOpts{Sync: SpoolSyncNone})
		if err != nil {
			t.Fatal(err)
		}
		n := int(nFrames%8) + 1
		var want [][]byte
		for i := 0; i < n; i++ {
			p := bytes.Repeat([]byte{byte(i + 1)}, (i*37)%120+1)
			want = append(want, p)
			if err := sp.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		sp.Close()

		seg := filepath.Join(dir, segName(1))
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			data[int(mutPos)%len(data)] ^= mutVal
		}
		if cut := int(cutAt) % (len(data) + 1); cut < len(data) {
			data = data[:cut]
		}
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}

		check := func(pass string) int {
			sp2, err := OpenSpool(dir, SpoolOpts{Sync: SpoolSyncNone})
			if err != nil {
				t.Fatalf("%s: open: %v", pass, err)
			}
			defer sp2.Close()
			i := 0
			err = sp2.Range(func(p []byte) error {
				if i >= len(want) || !bytes.Equal(p, want[i]) {
					t.Fatalf("%s: frame %d is not the appended frame — recovery is not a prefix", pass, i)
				}
				i++
				return nil
			})
			if err != nil {
				t.Fatalf("%s: range: %v", pass, err)
			}
			if got := sp2.FrameCount(); got != uint64(i) {
				t.Fatalf("%s: FrameCount %d != ranged %d", pass, got, i)
			}
			return i
		}
		first := check("first open")
		second := check("reopen")
		if first != second {
			t.Fatalf("recovery not idempotent: %d then %d frames", first, second)
		}
	})
}
