package kernel

import "tesla/internal/core"

// Socket carries the protosw → pr_usrreqs indirection of figure 3.
type Socket struct {
	ID    core.Value
	Label int64
	Proto *ProtoSw
	State int64
	Buf   int64 // bytes queued
	Peer  *Socket
}

// ProtoSw mirrors struct protosw.
type ProtoSw struct {
	PrUsrreqs *PrUsrreqs
}

// PrUsrreqs mirrors struct pr_usrreqs: protocol entry points reached by
// pointer from protocol-agnostic socket code.
type PrUsrreqs struct {
	PruSopoll  func(t *Thread, so *Socket, activeCred *Ucred) int64
	PruSosend  func(t *Thread, so *Socket, cred *Ucred, n int64) int64
	PruSorecv  func(t *Thread, so *Socket, cred *Ucred, n int64) int64
	PruAttach  func(t *Thread, so *Socket) int64
	PruConnect func(t *Thread, so *Socket, peer *Socket) int64
}

var tcpUsrreqs = &PrUsrreqs{
	PruSopoll:  sopollGeneric,
	PruSosend:  sosendGeneric,
	PruSorecv:  soreceiveGeneric,
	PruAttach:  soAttachGeneric,
	PruConnect: soConnectGeneric,
}

var tcpProto = &ProtoSw{PrUsrreqs: tcpUsrreqs}

// soCreate is the protocol-agnostic socket(2) implementation.
func (t *Thread) soCreate() (*Socket, int64) {
	t.enter("socreate", 0)
	defer t.exit("socreate", 0, 0)
	if err := t.macSocketCheckCreate(t.proc.Cred); err != OK {
		return nil, err
	}
	so := &Socket{ID: t.k.id(), Proto: tcpProto}
	t.site("MS:socreate", t.proc.Cred.ID)
	if err := so.Proto.PrUsrreqs.PruAttach(t, so); err != OK {
		return nil, err
	}
	return so, OK
}

// sooPoll is the socket fileops poll entry. The wrong-credential bug lives
// here: one dynamic call graph (select) passes the cached file credential
// down instead of the active thread credential.
func sooPoll(t *Thread, fp *File, activeCred *Ucred, whence PollWhence) int64 {
	t.enter("soo_poll", fp.ID, core.Value(whence))
	so := fp.Socket
	checkCred := activeCred
	if t.k.cfg.Bugs.WrongCredential && whence == FromSelect {
		checkCred = fp.FCred
	}
	var ret int64
	if whence == FromKevent && t.k.cfg.Bugs.KqueueMissingPollCheck {
		// The kqueue path omits the MAC check entirely.
		ret = OK
	} else {
		ret = t.macSocketCheckPoll(checkCred, so)
	}
	if ret == OK {
		ret = t.sopoll(so, activeCred)
	}
	t.exit("soo_poll", core.Value(ret), fp.ID, core.Value(whence))
	return ret
}

// sopoll dispatches into protocol code through pr_usrreqs.
func (t *Thread) sopoll(so *Socket, activeCred *Ucred) int64 {
	t.enter("sopoll", so.ID)
	ret := so.Proto.PrUsrreqs.PruSopoll(t, so, activeCred)
	t.exit("sopoll", core.Value(ret), so.ID)
	return ret
}

// sopollGeneric is protocol-specific code: here, we expect that an
// access-control check has already been done (figures 3 and 4).
func sopollGeneric(t *Thread, so *Socket, activeCred *Ucred) int64 {
	t.enter("sopoll_generic", so.ID, activeCred.ID)
	// TESLA_SYSCALL_PREVIOUSLY(
	//     mac_socket_check_poll(active_cred, so) == 0);
	t.site("MS:sopoll_generic", activeCred.ID, so.ID)
	ready := int64(0)
	if so.Buf > 0 {
		ready = 1
	}
	t.exit("sopoll_generic", core.Value(ready), so.ID, activeCred.ID)
	return OK
}

func soAttachGeneric(t *Thread, so *Socket) int64 {
	t.enter("soattach_generic", so.ID)
	so.State = 1
	t.exit("soattach_generic", 0, so.ID)
	return OK
}

func soConnectGeneric(t *Thread, so *Socket, peer *Socket) int64 {
	t.enter("soconnect_generic", so.ID)
	t.site("MS:soconnect_generic", t.proc.Cred.ID, so.ID)
	so.Peer = peer
	if peer != nil {
		peer.Peer = so
	}
	so.State = 2
	t.exit("soconnect_generic", 0, so.ID)
	return OK
}

func sosendGeneric(t *Thread, so *Socket, cred *Ucred, n int64) int64 {
	t.enter("sosend_generic", so.ID, cred.ID)
	t.site("MS:sosend_generic", cred.ID, so.ID)
	if so.Peer != nil {
		so.Peer.Buf += n
	}
	t.exit("sosend_generic", core.Value(n), so.ID, cred.ID)
	return OK
}

func soreceiveGeneric(t *Thread, so *Socket, cred *Ucred, n int64) int64 {
	t.enter("soreceive_generic", so.ID, cred.ID)
	t.site("MS:soreceive_generic", cred.ID, so.ID)
	if so.Buf >= n {
		so.Buf -= n
	} else {
		so.Buf = 0
	}
	t.exit("soreceive_generic", core.Value(n), so.ID, cred.ID)
	return OK
}

// Socket-layer implementations for the remaining MS assertions.

func (t *Thread) soBind(so *Socket) int64 {
	t.enter("sobind", so.ID)
	ret := t.macSocketCheckBind(t.proc.Cred, so)
	if ret == OK {
		t.site("MS:sobind", t.proc.Cred.ID, so.ID)
		so.State = 3
	}
	t.exit("sobind", core.Value(ret), so.ID)
	return ret
}

func (t *Thread) soListen(so *Socket) int64 {
	t.enter("solisten", so.ID)
	ret := t.macSocketCheckListen(t.proc.Cred, so)
	if ret == OK {
		t.site("MS:solisten", t.proc.Cred.ID, so.ID)
		so.State = 4
	}
	t.exit("solisten", core.Value(ret), so.ID)
	return ret
}

func (t *Thread) soAccept(so *Socket) (*Socket, int64) {
	t.enter("soaccept", so.ID)
	defer t.exit("soaccept", 0, so.ID)
	if err := t.macSocketCheckAccept(t.proc.Cred, so); err != OK {
		return nil, err
	}
	t.site("MS:soaccept", t.proc.Cred.ID, so.ID)
	conn := &Socket{ID: t.k.id(), Proto: so.Proto, State: 2}
	return conn, OK
}

func (t *Thread) soVisible(so *Socket) int64 {
	t.enter("sovisible", so.ID)
	ret := t.macSocketCheckVisible(t.proc.Cred, so)
	if ret == OK {
		t.site("MS:sovisible", t.proc.Cred.ID, so.ID)
	}
	t.exit("sovisible", core.Value(ret), so.ID)
	return ret
}

func (t *Thread) soStat(so *Socket) int64 {
	t.enter("sostat", so.ID)
	ret := t.macSocketCheckStat(t.proc.Cred, so)
	if ret == OK {
		t.site("MS:sostat", t.proc.Cred.ID, so.ID)
	}
	t.exit("sostat", core.Value(ret), so.ID)
	return ret
}

func (t *Thread) soRelabel(so *Socket, label int64) int64 {
	t.enter("sorelabel", so.ID)
	ret := t.macSocketCheckRelabel(t.proc.Cred, so)
	if ret == OK {
		t.site("MS:sorelabel", t.proc.Cred.ID, so.ID)
		so.Label = label
	}
	t.exit("sorelabel", core.Value(ret), so.ID)
	return ret
}

// Socket fileops.

func sooRead(t *Thread, fp *File, n int64) int64 {
	t.enter("soo_read", fp.ID)
	ret := t.macSocketCheckReceive(t.proc.Cred, fp.Socket)
	if ret == OK {
		ret = fp.Socket.Proto.PrUsrreqs.PruSorecv(t, fp.Socket, t.proc.Cred, n)
	}
	t.exit("soo_read", core.Value(ret), fp.ID)
	return ret
}

func sooWrite(t *Thread, fp *File, n int64) int64 {
	t.enter("soo_write", fp.ID)
	ret := t.macSocketCheckSend(t.proc.Cred, fp.Socket)
	if ret == OK {
		ret = fp.Socket.Proto.PrUsrreqs.PruSosend(t, fp.Socket, t.proc.Cred, n)
	}
	t.exit("soo_write", core.Value(ret), fp.ID)
	return ret
}

func sooClose(t *Thread, fp *File) int64 {
	t.enter("soo_close", fp.ID)
	fp.Socket.State = 0
	t.exit("soo_close", 0, fp.ID)
	return OK
}
