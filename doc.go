// Package tesla is a from-scratch Go reproduction of TESLA — Temporally
// Enhanced System Logic Assertions (Anderson et al., EuroSys 2014).
//
// TESLA lets systems programmers write temporal assertions — properties
// about events in the past or future, such as "an access-control check
// happened earlier in this system call" — directly against low-level code.
// An analyser parses the assertions into finite-state automata, an
// instrumenter turns program events into automaton transitions, and the
// libtesla runtime manages per-binding automaton instances.
//
// The packages under internal/ implement the complete system and every
// substrate its evaluation needs: the assertion language and automata
// compiler, libtesla, a C-subset compiler/IR/VM pipeline standing in for
// Clang/LLVM, a FreeBSD-like kernel with a MAC framework, a miniature
// OpenSSL, an Objective-C runtime and a GNUstep-like GUI. See README.md,
// DESIGN.md and EXPERIMENTS.md, the runnable examples under examples/, and
// the benchmarks in bench_test.go which regenerate the paper's tables and
// figures.
package tesla
