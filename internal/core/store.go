package core

import (
	"fmt"
	"sync"
)

// Context selects where automata state lives (§3.2). In the thread-local
// context event serialisation is implicit and the store needs no locking;
// the global context serialises events across threads with an explicit lock,
// committing to an event order corresponding to an actual program behaviour.
type Context int

const (
	// PerThread stores automata state per thread; no synchronisation.
	PerThread Context = iota
	// Global shares one store across threads behind a lock.
	Global
)

func (c Context) String() string {
	switch c {
	case PerThread:
		return "per-thread"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("Context(%d)", int(c))
	}
}

// classState holds a class's preallocated instance block within one store.
type classState struct {
	cls *Class
	// insts is allocated once, at class registration, so that instance
	// bookkeeping never allocates on monitored code paths (§4.4.1: “In
	// the kernel we rely on preallocation to avoid dynamic allocation in
	// code paths that do not permit it”).
	insts []Instance
	live  int
}

// Store manages automata instances for one context. The zero value is not
// usable; construct with NewStore.
type Store struct {
	mu      sync.Mutex
	context Context
	handler Handler

	classes map[*Class]*classState
	// order preserves registration order for deterministic iteration.
	order []*classState

	// FailFast makes UpdateState return the first violation as an error
	// (fail-stop is TESLA's default, but it is configurable at run time).
	FailFast bool
}

// NewStore creates a store for the given context. handler may be nil, in
// which case notifications are discarded.
func NewStore(ctx Context, handler Handler) *Store {
	if handler == nil {
		handler = NopHandler{}
	}
	return &Store{
		context: ctx,
		handler: handler,
		classes: make(map[*Class]*classState),
	}
}

// Context returns the store's context.
func (s *Store) Context() Context { return s.context }

// Handler returns the store's notification handler.
func (s *Store) Handler() Handler { return s.handler }

// SetHandler replaces the notification handler.
func (s *Store) SetHandler(h Handler) {
	if h == nil {
		h = NopHandler{}
	}
	s.lock()
	s.handler = h
	s.unlock()
}

func (s *Store) lock() {
	if s.context == Global {
		s.mu.Lock()
	}
}

func (s *Store) unlock() {
	if s.context == Global {
		s.mu.Unlock()
	}
}

// Register adds a class to the store, preallocating its instance block.
// Registering the same class twice is a no-op.
func (s *Store) Register(cls *Class) {
	s.lock()
	defer s.unlock()
	if _, ok := s.classes[cls]; ok {
		return
	}
	cs := &classState{
		cls:   cls,
		insts: make([]Instance, cls.limit()),
	}
	s.classes[cls] = cs
	s.order = append(s.order, cs)
}

// RegisterWithStorage registers cls using caller-supplied instance storage
// instead of allocating its own — the §7 extension ("performance
// improvements could be gained by allowing users to delegate space within
// data structures of the instrumented program; this would naturally lead to
// per-object assertions, allowing assertions to be more easily tied to an
// object's lifetime"). The slice's length is the class's instance limit for
// this store; the caller must not touch it while the class is registered.
// Re-registering a class replaces its storage and expunges live instances.
func (s *Store) RegisterWithStorage(cls *Class, storage []Instance) {
	if len(storage) == 0 {
		s.Register(cls)
		return
	}
	for i := range storage {
		storage[i] = Instance{}
	}
	s.lock()
	defer s.unlock()
	if cs, ok := s.classes[cls]; ok {
		cs.insts = storage
		cs.live = 0
		return
	}
	cs := &classState{cls: cls, insts: storage}
	s.classes[cls] = cs
	s.order = append(s.order, cs)
}

// Registered reports whether cls has been registered.
func (s *Store) Registered(cls *Class) bool {
	s.lock()
	defer s.unlock()
	_, ok := s.classes[cls]
	return ok
}

// Classes returns registered classes in registration order.
func (s *Store) Classes() []*Class {
	s.lock()
	defer s.unlock()
	out := make([]*Class, len(s.order))
	for i, cs := range s.order {
		out[i] = cs.cls
	}
	return out
}

// Instances returns a snapshot of the live instances of cls, primarily for
// introspection and tests.
func (s *Store) Instances(cls *Class) []Instance {
	s.lock()
	defer s.unlock()
	cs := s.classes[cls]
	if cs == nil {
		return nil
	}
	var out []Instance
	for i := range cs.insts {
		if cs.insts[i].Active {
			out = append(out, cs.insts[i])
		}
	}
	return out
}

// LiveCount returns the number of active instances of cls.
func (s *Store) LiveCount(cls *Class) int {
	s.lock()
	defer s.unlock()
	cs := s.classes[cls]
	if cs == nil {
		return 0
	}
	return cs.live
}

// Reset expunges all instances of every class, as after a cleanup event.
func (s *Store) Reset() {
	s.lock()
	defer s.unlock()
	for _, cs := range s.order {
		cs.expunge()
	}
}

// ResetClass expunges all instances of one class.
func (s *Store) ResetClass(cls *Class) {
	s.lock()
	defer s.unlock()
	if cs := s.classes[cls]; cs != nil {
		cs.expunge()
	}
}

func (cs *classState) expunge() {
	for i := range cs.insts {
		cs.insts[i].Active = false
	}
	cs.live = 0
}

// findExact returns the active instance with exactly the given key, or nil.
func (cs *classState) findExact(key Key) *Instance {
	for i := range cs.insts {
		if cs.insts[i].Active && cs.insts[i].Key == key {
			return &cs.insts[i]
		}
	}
	return nil
}

// alloc claims a free preallocated slot, or returns nil on overflow.
func (cs *classState) alloc() *Instance {
	for i := range cs.insts {
		if !cs.insts[i].Active {
			cs.live++
			return &cs.insts[i]
		}
	}
	return nil
}
