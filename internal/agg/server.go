package agg

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tesla/internal/trace"
)

// Server accepts producer and query connections and feeds the Store.
//
// Ingestion path per connection: the read loop validates the handshake,
// then moves trace frames into a bounded queue drained by one worker
// goroutine. The reader never blocks on aggregation — when the queue is
// full the frame is dropped and charged to the producer's drop counters
// (the PR 5 drop-new contract at fleet scope: degradation is explicit,
// accounted and queryable, never silent, and one slow stripe cannot
// backpressure the socket into stalling the producer's bye/health
// control frames).
//
// A FrameBye closes the queue and waits for the worker to drain it
// before recording the producer's accounting, so at the moment a bye is
// visible, ingested + dropped == sent holds exactly for that producer.
type Server struct {
	store *Store
	opts  ServerOpts

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// ServerOpts configures a Server; the zero value selects the defaults.
type ServerOpts struct {
	// Queue bounds each connection's pending trace frames (default 64).
	Queue int
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// NewServer creates a server over store.
func NewServer(store *Store, opts ServerOpts) *Server {
	if opts.Queue <= 0 {
		opts.Queue = 64
	}
	return &Server{store: store, opts: opts, conns: map[net.Conn]struct{}{}}
}

// Store returns the server's aggregation store.
func (s *Server) Store() *Store { return s.store }

// Serve accepts connections on ln until Close. It returns nil after a
// Close-initiated shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection and waits for
// their workers to finish.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.mu.Lock()
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// handshakeTimeout bounds how long a connection may dawdle before its
// hello; it keeps a wedged client from pinning goroutines forever.
const handshakeTimeout = 30 * time.Second

// handle runs one connection from magic to close.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))

	var magicBuf [len(Magic)]byte
	if _, err := io.ReadFull(conn, magicBuf[:]); err != nil || string(magicBuf[:]) != Magic {
		s.logf("agg: %s: not a TESLAAGG stream", conn.RemoteAddr())
		return
	}
	fr := trace.NewFrameReader(conn)
	fw := trace.NewFrameWriter(conn)

	kind, payload, err := fr.Next()
	if err != nil || kind != FrameHello {
		s.logf("agg: %s: expected hello frame, got kind %d (%v)", conn.RemoteAddr(), kind, err)
		return
	}
	var hello Hello
	if err := json.Unmarshal(payload, &hello); err != nil {
		s.logf("agg: %s: bad hello: %v", conn.RemoteAddr(), err)
		return
	}
	if hello.Proto != ProtoVersion || hello.Codec != trace.Version {
		// Version negotiation: reject at the handshake with both sides'
		// versions and the producing tool named — an old producer is
		// never accepted and then killed mid-stream by a codec error.
		msg := rejectHello(hello)
		ack, _ := json.Marshal(HelloAck{OK: false, Message: msg, Proto: ProtoVersion, Codec: trace.Version})
		fw.Frame(FrameHelloAck, ack)
		s.logf("agg: %s: rejected: %s", conn.RemoteAddr(), msg)
		return
	}
	ack, _ := json.Marshal(HelloAck{OK: true, Proto: ProtoVersion, Codec: trace.Version})
	if err := fw.Frame(FrameHelloAck, ack); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	if hello.Query {
		s.serveQueries(fr, fw)
		return
	}
	s.serveProducer(hello, fr)
}

// serveProducer runs the ingestion loop for one producer connection.
func (s *Server) serveProducer(hello Hello, fr *trace.FrameReader) {
	process := hello.Process
	if process == "" {
		process = "unnamed"
	}
	s.store.Connected(Hello{Process: process, Tool: hello.Tool})

	queue := make(chan []byte, s.opts.Queue)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for payload := range queue {
			if err := s.store.IngestFrame(process, payload); err != nil {
				s.logf("%v", err)
			}
		}
	}()

	clean := false
	drained := false
loop:
	for {
		kind, payload, err := fr.Next()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("agg: %s: read: %v", process, err)
			}
			break
		}
		switch kind {
		case FrameTrace:
			select {
			case queue <- payload:
			default:
				// Queue full: drop-new with exact accounting, from the
				// event count the producer prefixed onto the frame.
				s.store.DropFrame(process, FrameEventCount(payload))
			}
		case FrameHealth:
			var rows []HealthRow
			if err := json.Unmarshal(payload, &rows); err == nil {
				s.store.MergeHealth(process, rows)
			}
		case FrameBye:
			var bye Bye
			if err := json.Unmarshal(payload, &bye); err != nil {
				s.logf("agg: %s: bad bye: %v", process, err)
				break loop
			}
			// Drain before recording: once the bye is visible in a
			// query, the producer's ingested + dropped == sent exactly.
			close(queue)
			<-done
			drained = true
			s.store.ByeReceived(process, bye)
			clean = true
			break loop
		default:
			s.logf("agg: %s: unknown frame kind %d", process, kind)
		}
	}
	if !drained {
		close(queue)
		<-done
	}
	s.store.Closed(process, clean)
}

// serveQueries answers query frames until the client goes away.
func (s *Server) serveQueries(fr *trace.FrameReader, fw *trace.FrameWriter) {
	for {
		kind, payload, err := fr.Next()
		if err != nil {
			return
		}
		if kind != FrameQuery {
			continue
		}
		var q Query
		if err := json.Unmarshal(payload, &q); err != nil {
			fw.Frame(FrameResult, errJSON(fmt.Errorf("bad query: %w", err)))
			continue
		}
		res, err := s.Answer(q)
		if err != nil {
			fw.Frame(FrameResult, errJSON(err))
			continue
		}
		if fw.Frame(FrameResult, res) != nil {
			return
		}
	}
}

// Answer evaluates one query against the store, returning indented JSON
// with stable field order.
func (s *Server) Answer(q Query) ([]byte, error) {
	var v any
	switch q.Q {
	case "", "fleet":
		v = s.store.Fleet()
	case "failures":
		v = s.store.Failures()
	case "topk":
		if q.Class == "" {
			return nil, fmt.Errorf("topk query needs a class")
		}
		v = s.store.TopK(q.Class, q.K)
	case "samples":
		v = s.store.Samples(q.Class)
	case "health":
		v = s.store.Health()
	default:
		return nil, fmt.Errorf("unknown query %q (want fleet, failures, topk, samples or health)", q.Q)
	}
	return json.MarshalIndent(v, "", "  ")
}

func errJSON(err error) []byte {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return b
}
