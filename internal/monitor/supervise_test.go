package monitor

import (
	"testing"

	"tesla/internal/core"
	"tesla/internal/faultinject"
)

// TestSupervisionPassthrough: store-level failure policies configured on
// monitor.Options reach both the global and per-thread stores. An injector
// that fails every allocation forces the first «init» into overflow; with
// QuarantineClass and QuarantineAfter 1, the class quarantines immediately
// and the monitor's merged health report shows it.
func TestSupervisionPassthrough(t *testing.T) {
	auto := mustAuto(t, "sp", `TESLA_SYSCALL_PREVIOUSLY(check(x) == 0)`, nil)
	inj := faultinject.New(3)
	inj.SetEvery(faultinject.SiteAlloc, 1)
	m := MustNew(Options{
		Overflow:        core.QuarantineClass,
		QuarantineAfter: 1,
		RearmEvents:     1 << 30,
		AllocFail: func(cls *core.Class) bool {
			return inj.Should(faultinject.SiteAlloc, cls.Name)
		},
	}, auto)
	th := m.NewThread()

	th.Call("amd64_syscall")
	th.Call("check", 5)
	th.Return("check", 0, 5)
	th.Site("sp", 5)
	th.Return("amd64_syscall", 0)

	hs := m.Health()
	if len(hs) != 1 || hs[0].Class != auto.Class.Name {
		t.Fatalf("Health() = %+v, want one entry for %s", hs, auto.Class.Name)
	}
	if !hs[0].Quarantined || hs[0].Quarantines == 0 || hs[0].Overflows == 0 {
		t.Fatalf("class never quarantined under total allocation failure: %+v", hs[0])
	}
	if !m.Degraded() {
		t.Fatal("Degraded() = false for a quarantined class")
	}
	if inj.TotalFired() == 0 {
		t.Fatal("injector never consulted: AllocFail passthrough broken")
	}
}

// TestHealthMergesThreads: per-thread stores contribute to the monitor-wide
// health report — violations recorded on two different threads sum into one
// per-class entry, and live instances total across stores.
func TestHealthMergesThreads(t *testing.T) {
	auto := mustAuto(t, "hm", `TESLA_SYSCALL_PREVIOUSLY(check(x) == 0)`, nil)
	m := MustNew(Options{}, auto)

	violate := func(th *Thread) {
		th.Call("amd64_syscall")
		th.Site("hm", 9) // no check(9) happened → NoInstance violation
		th.Return("amd64_syscall", 0)
	}
	violate(m.NewThread())
	violate(m.NewThread())

	hs := m.Health()
	if len(hs) != 1 {
		t.Fatalf("Health() = %+v, want one merged entry", hs)
	}
	if hs[0].Violations != 2 {
		t.Fatalf("merged Violations = %d, want 2 (one per thread)", hs[0].Violations)
	}
	if m.Degraded() {
		t.Fatalf("violations alone must not mark the monitor degraded: %+v", hs[0])
	}
}

// TestHealthCleanRun: a clean run reports no degradation and no violations.
func TestHealthCleanRun(t *testing.T) {
	auto := mustAuto(t, "cr", `TESLA_SYSCALL_PREVIOUSLY(check(x) == 0)`, nil)
	m := MustNew(Options{}, auto)
	th := m.NewThread()
	th.Call("amd64_syscall")
	th.Call("check", 5)
	th.Return("check", 0, 5)
	th.Site("cr", 5)
	th.Return("amd64_syscall", 0)
	for _, ch := range m.Health() {
		if ch.Degraded() || ch.Violations != 0 {
			t.Fatalf("clean run reports %+v", ch)
		}
	}
	if m.Degraded() {
		t.Fatal("clean run Degraded() = true")
	}
}
