package gui

import (
	"tesla/internal/core"
	"tesla/internal/monitor"
)

// Event is one user-interface event.
type Event struct {
	Kind EventKind
	X, Y int64
}

// EventKind enumerates UI events.
type EventKind int

const (
	// MouseMove moves the pointer, driving tracking rectangles.
	MouseMove EventKind = iota
	// Click triggers a partial redraw of the view under the pointer.
	Click
	// Expose forces a complete window redraw.
	Expose
	// Invalidate recomputes the tracking rectangles (scroll/resize). In
	// the §3.5.3 bug, the mouse-exited events that should accompany the
	// recreation are delivered after the events that inspect the
	// rectangles — effectively lost — so a pointer still inside a
	// recreated rectangle triggers a second mouse-entered and the same
	// cursor is pushed onto the cursor stack twice.
	Invalidate
)

// RunLoop processes event batches, delivering mouse-entered/exited events
// and redraws. An iteration is bounded by startDrawing/endDrawing — the
// bound of the fig. 8 tracing assertion.
type RunLoop struct {
	W *Window
	// Thread, when set, receives the bound events (the TESLA assertion
	// is bounded by the run-loop iteration).
	Thread *monitor.Thread
}

// NewRunLoop creates a run loop over the window.
func NewRunLoop(w *Window, th *monitor.Thread) *RunLoop {
	return &RunLoop{W: w, Thread: th}
}

func (rl *RunLoop) begin() {
	if rl.Thread != nil {
		rl.Thread.Call("startDrawing")
	}
}

func (rl *RunLoop) end() {
	if rl.Thread != nil {
		// The run-loop iteration's assertion site: between the two
		// instrumentation points, some (or none) of the API methods
		// should have been called (fig. 8).
		rl.Thread.Site("gui:runloop")
		rl.Thread.Return("startDrawing", 0)
	}
}

// ProcessBatch runs one run-loop iteration over a batch of events.
func (rl *RunLoop) ProcessBatch(events []Event) {
	rl.begin()
	defer rl.end()

	w := rl.W
	for _, ev := range events {
		switch ev.Kind {
		case MouseMove:
			w.lastX, w.lastY = ev.X, ev.Y
			for _, tr := range w.Tracking {
				now := tr.Rect.Contains(ev.X, ev.Y)
				switch {
				case now && !tr.Inside:
					tr.Inside = true
					rl.mouseEntered(tr)
				case !now && tr.Inside:
					tr.Inside = false
					rl.mouseExited(tr)
				}
			}
		case Invalidate:
			for _, tr := range w.Tracking {
				if w.DeliveryBug {
					// BUG: the rectangle is recreated with a
					// clean state, but the deferred exited
					// event for a pointer that was inside it
					// is delivered too late to matter: the
					// next move re-enters and pushes the same
					// cursor again.
					tr.Inside = false
					continue
				}
				// Correct recomputation against the current
				// pointer position, pairing an exit when the
				// pointer is no longer inside.
				now := tr.Rect.Contains(w.lastX, w.lastY)
				if tr.Inside && !now {
					rl.mouseExited(tr)
				}
				tr.Inside = now
			}
		default:
			rl.dispatch(ev)
		}
	}
}

func (rl *RunLoop) dispatch(ev Event) {
	w := rl.W
	switch ev.Kind {
	case Expose:
		w.Redraws++
		for _, v := range w.Views {
			w.RT.MsgSend(v.Obj, "display")
		}
	case Click:
		// Partial redraw: only the view under the pointer repaints
		// (the majority of events in fig. 14b only repaint portions of
		// the window; outliers are complete redraws).
		for _, v := range w.Views {
			if v.Frame.Contains(ev.X, ev.Y) {
				w.RT.MsgSend(v.Obj, "display")
			}
		}
	}
}

func (rl *RunLoop) mouseEntered(tr *TrackingRect) {
	rl.W.RT.MsgSend(rl.W.cursorObj, "push", core.Value(tr.Cursor))
}

func (rl *RunLoop) mouseExited(tr *TrackingRect) {
	rl.W.RT.MsgSend(rl.W.cursorObj, "pop")
}
