package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestDemoMatchesGolden pins the whole pipeline end to end: the recorded
// event counts, the offline-reproduced verdict, and — the point of the
// exercise — the shrunk counterexample's exact timeline. Run with -update
// after an intentional format change.
func TestDemoMatchesGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := demo(&buf, "testdata"); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	const golden = "testdata/demo.golden"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("demo output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}

	// Belt and braces on the shrinker's contract, independent of exact
	// formatting: events were removed and the target violation survived.
	if !strings.Contains(got, "removed 5") {
		t.Errorf("expected the shrinker to remove the 5 noise events:\n%s", got)
	}
	if !strings.Contains(got, "violation: doomed.c:15: no-instance") {
		t.Errorf("shrunk counterexample lost the violation:\n%s", got)
	}
}
