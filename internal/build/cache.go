package build

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the two-level artifact store behind the build graph: a memory
// map for artifacts produced or loaded during this process, and an
// optional on-disk object store for artifacts that survive it. Both levels
// are addressed by node key — the content hash of everything that went
// into producing the artifact — so a lookup never returns a stale object:
// if any input changed, the key changed.
type Cache struct {
	dir string

	mu  sync.Mutex
	mem map[string]memEntry
}

type memEntry struct {
	art  any
	hash string
}

// NewCache returns a memory-only cache.
func NewCache() *Cache {
	return &Cache{mem: map[string]memEntry{}}
}

// Open returns a cache backed by the given directory, creating it if
// needed. Objects are stored content-addressed under dir/objects.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("build: cache: %w", err)
	}
	return &Cache{dir: dir, mem: map[string]memEntry{}}, nil
}

// Dir reports the backing directory ("" for memory-only caches).
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) getMem(key string) (any, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.mem[key]
	return e.art, e.hash, ok
}

func (c *Cache) putMem(key string, art any, hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[key] = memEntry{art: art, hash: hash}
}

func (c *Cache) objectPath(key string) string {
	return filepath.Join(c.dir, "objects", key[:2], key[2:])
}

// getDisk loads an object's bytes, or reports a miss. A file that cannot
// be read is a miss, never an error: the caller rebuilds and overwrites.
func (c *Cache) getDisk(key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.objectPath(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// putDisk stores an object atomically (write-to-temp then rename), so a
// concurrent or crashed build can never leave a truncated object behind.
func (c *Cache) putDisk(key string, data []byte) error {
	if c.dir == "" {
		return nil
	}
	path := c.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// hashBytes is the content hash used for both artifact bytes and node
// keys.
func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// keyVersion salts every node key; bump it when artifact encodings or
// pipeline semantics change so stale caches invalidate wholesale.
const keyVersion = "tesla-build-v1"

// nodeKey derives a node's cache key from its kind, its literal inputs
// (source bytes, file names, pipeline options) and its dependencies'
// artifact hashes. Every component is length-prefixed so distinct input
// vectors can never collide by concatenation.
func nodeKey(kind string, extra [][]byte, depHashes []string) string {
	h := sha256.New()
	writeComponent(h, []byte(keyVersion))
	writeComponent(h, []byte(kind))
	for _, e := range extra {
		writeComponent(h, e)
	}
	for _, d := range depHashes {
		writeComponent(h, []byte(d))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeComponent(w io.Writer, data []byte) {
	fmt.Fprintf(w, "%d:", len(data))
	w.Write(data)
}
