package monitor

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tesla/internal/core"
)

// The batched per-thread event plane. With Options.BatchSize > 0 each Thread
// stages its program events in a fixed-size ring instead of taking one store
// round-trip per event: every entry point stages one ring entry (the raw
// event, copied once, for the trace tap) and appends the symbols it matched
// as deferred store ops. A flush steals the ring and applies it — tap events
// first, then ops in maximal same-store runs via core.UpdateBatch — so
// stripe locking, registration lookups and sink locking amortise across the
// batch while per-thread event order is preserved exactly.
//
// Verdicts stay exact through forced drains at the required sites:
//
//   - a verdict-bearing op (required/strict/cleanup symbol) on a fail-stop
//     automaton drains through inline, so the violation error returns from
//     the event call that caused it, as in synchronous mode;
//   - Monitor.Health and Monitor.Drain flush every thread before reading;
//   - a full ring flushes before accepting the next event — events are
//     never dropped;
//   - tesla-run drains after the program exits, before the trace is saved
//     and the verdict counted.
//
// The synchronous path (BatchSize == 0) is untouched and serves as the
// executable differential reference; the parity suites in
// batch_parity_test.go and core/differential_test.go pin the two equal.

// stagedOp is one matched symbol waiting in the ring: the store it targets
// and the deferred UpdateState call.
type stagedOp struct {
	store *core.Store
	op    core.BatchOp
}

// stagedEvent is one ring slot: the program event as staged for the tap
// (owned copies of the borrowed slices) and every store op it matched. The
// ops backing array recycles across flushes.
type stagedEvent struct {
	ev    ProgramEvent
	hasEv bool
	ops   []stagedOp
}

// batchState is one thread's staging plane. The mutex guards the ring —
// uncontended in normal operation (only the owning thread stages; another
// goroutine takes it only to drain). The flushing flag serialises
// steal+apply, so staged order is applied order, and turns a drain that
// races an in-flight flush into a no-op instead of a deadlock.
type batchState struct {
	mu    sync.Mutex
	ring  []stagedEvent // active staging buffer; n entries staged
	spare []stagedEvent // the previous flush's buffer, reused at next steal
	n     int

	flushing atomic.Bool

	// evbuf and opbuf are the flusher's scratch (one flush at a time).
	evbuf []ProgramEvent
	opbuf []core.BatchOp
}

func newBatchState(size int) *batchState {
	return &batchState{
		ring:  make([]stagedEvent, size),
		spare: make([]stagedEvent, size),
	}
}

// stageEvent opens a ring entry for one program event; subsequent stageOp
// calls from the same entry point attach to it. A full ring flushes first
// (never drops), which may surface deferred verdict errors — returned here
// so the entry point reports them.
func (th *Thread) stageEvent(ev ProgramEvent) error {
	b := th.batch
	var first error
	b.mu.Lock()
	spins := 0
	for b.n == len(b.ring) {
		b.mu.Unlock()
		flushed, err := th.flushBatch()
		if err != nil && first == nil {
			first = err
		}
		b.mu.Lock()
		if flushed {
			continue
		}
		// Another drain owns the ring mid-apply. Normally it empties the
		// ring and the loop exits; if it cannot (a handler re-entered the
		// monitor during its own flush and outran the ring), grow rather
		// than deadlock — order is still preserved.
		if spins++; spins > 64 {
			b.ring = append(b.ring, stagedEvent{})
			break
		}
		b.mu.Unlock()
		runtime.Gosched()
		b.mu.Lock()
	}
	e := &b.ring[b.n]
	b.n++
	e.ops = e.ops[:0]
	e.hasEv = th.tap != nil
	if e.hasEv {
		// Stage the event once: the entry points' borrowed slices are
		// copied here, and ownership passes to the tap sink at flush.
		e.ev = ev
		e.ev.Vals = nil
		e.ev.InStack = nil
		if len(ev.Vals) > 0 {
			e.ev.Vals = append([]core.Value(nil), ev.Vals...)
		}
		if len(ev.InStack) > 0 {
			e.ev.InStack = append([]int(nil), ev.InStack...)
		}
	}
	b.mu.Unlock()
	return first
}

// stageOp appends one matched symbol to the current ring entry. When
// drainThrough is set (verdict-bearing op on a fail-stop automaton) the ring
// flushes inline so the violation error surfaces from this event call,
// exactly as the synchronous path's UpdateState would.
func (th *Thread) stageOp(store *core.Store, op core.BatchOp, drainThrough bool) error {
	b := th.batch
	b.mu.Lock()
	if b.n == 0 {
		// A flush ran mid-event (an earlier op of this event drained
		// through, or a concurrent Drain stole the ring): continue in a
		// fresh event-less entry — the event itself was already staged.
		e := &b.ring[0]
		b.n = 1
		e.ops = e.ops[:0]
		e.hasEv = false
	}
	e := &b.ring[b.n-1]
	e.ops = append(e.ops, stagedOp{store: store, op: op})
	b.mu.Unlock()
	if drainThrough {
		_, err := th.flushBatch()
		return err
	}
	return nil
}

// opDrains reports whether a staged op must drain through synchronously:
// only verdict-bearing symbols (required, strict, or cleanup transitions)
// on automata whose effective failure action is fail-stop can turn into
// UpdateState errors, and only those pay the inline flush.
func (th *Thread) opDrains(idx int, flags core.SymbolFlags, ts core.TransitionSet) bool {
	if !th.m.failStop[idx] {
		return false
	}
	return flags&(core.SymRequired|core.SymStrict) != 0 || ts.HasCleanup()
}

// flushBatch steals the staged ring and applies it: tap events first, in
// staged order (preserving the recorder's program-event-before-caused-
// lifecycle seq invariant), then store ops in maximal same-store runs via
// core.UpdateBatch. Double-buffering lets staging continue into the other
// buffer while this one applies; the flushing flag guarantees one
// steal+apply at a time, so the previous flush's buffer is free for reuse.
// Returns flushed=false without doing anything when another flush of this
// thread is in flight (including re-entrantly: a handler that calls back
// into Health/Drain during dispatch must not deadlock).
func (th *Thread) flushBatch() (bool, error) {
	b := th.batch
	if b == nil {
		return true, nil
	}
	if !b.flushing.CompareAndSwap(false, true) {
		return false, nil
	}
	defer b.flushing.Store(false)
	b.mu.Lock()
	n := b.n
	if n == 0 {
		b.mu.Unlock()
		return true, nil
	}
	b.ring, b.spare = b.spare, b.ring
	b.n = 0
	b.mu.Unlock()
	batch := b.spare[:n]

	var first error
	if th.btap != nil {
		evs := b.evbuf[:0]
		for i := range batch {
			if batch[i].hasEv {
				evs = append(evs, batch[i].ev)
			}
		}
		if len(evs) > 0 {
			th.btap.ProgramBatch(evs)
		}
		b.evbuf = evs[:0]
	} else if th.tap != nil {
		for i := range batch {
			if batch[i].hasEv {
				th.tap.ProgramEvent(batch[i].ev)
			}
		}
	}

	ops := b.opbuf[:0]
	var cur *core.Store
	apply := func() {
		if len(ops) == 0 {
			return
		}
		if err := cur.UpdateBatch(ops); err != nil && first == nil {
			first = err
		}
		ops = ops[:0]
	}
	for i := range batch {
		for k := range batch[i].ops {
			so := &batch[i].ops[k]
			if so.store != cur {
				apply()
				cur = so.store
			}
			ops = append(ops, so.op)
		}
	}
	apply()
	b.opbuf = ops[:0]
	return true, first
}

// Flush drains the thread's staged ring, returning the first deferred
// fail-stop error. A no-op in synchronous mode or when a flush is already
// in flight.
func (th *Thread) Flush() error {
	if th.batch == nil {
		return nil
	}
	_, err := th.flushBatch()
	return err
}

// Batched reports whether the thread stages events (Options.BatchSize > 0).
func (th *Thread) Batched() bool { return th.batch != nil }

// Drain flushes every thread's staged ring — the required-site drain used
// before verdict reads, health reports, trace cuts and process exit. In
// synchronous mode it is a no-op. The returned error is the first deferred
// fail-stop violation surfaced by the flushes (also counted in Health).
func (m *Monitor) Drain() error {
	m.threadsMu.Lock()
	ths := append([]*Thread(nil), m.threads...)
	m.threadsMu.Unlock()
	var first error
	for _, th := range ths {
		if err := th.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
