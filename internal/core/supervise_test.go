package core

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// Supervision unit tests. Every behavioural test runs against both store
// implementations (Shards: 1 reference, Shards: 4 striped): the supervision
// layer must be implementation-independent.

func bothStores(t *testing.T, f func(t *testing.T, mk func(o StoreOpts) *Store)) {
	t.Helper()
	for _, tc := range []struct {
		name   string
		shards int
	}{{"reference", 1}, {"sharded", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			f(t, func(o StoreOpts) *Store {
				o.Context = Global
				o.Shards = tc.shards
				return NewStoreOpts(o)
			})
		})
	}
}

func initTS() TransitionSet {
	return TransitionSet{{From: 0, To: 1, Flags: TransInit, KeyMask: 1}}
}

// TestFailureActions covers the §4.4.2 spectrum: stop, report, callback, and
// the FailDefault → FailFast fallback.
func TestFailureActions(t *testing.T) {
	site := TransitionSet{{From: 1, To: 2, KeyMask: 1}}
	violate := func(s *Store, cls *Class) error {
		s.UpdateState(cls, "enter", 0, NewKey(1), initTS())
		// A required event with bindings no instance has: VerdictNoInstance.
		return s.UpdateState(cls, "site", SymRequired, NewKey(2), site)
	}

	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		t.Run("default-failfast", func(t *testing.T) {
			cls := &Class{Name: "d", States: 3, Limit: 4}
			s := mk(StoreOpts{})
			s.FailFast = true
			s.Register(cls)
			if err := violate(s, cls); err == nil {
				t.Fatal("FailFast default: want violation error")
			}
		})
		t.Run("default-report", func(t *testing.T) {
			cls := &Class{Name: "d", States: 3, Limit: 4}
			h := NewCountingHandler()
			s := mk(StoreOpts{Handler: h})
			s.Register(cls)
			if err := violate(s, cls); err != nil {
				t.Fatalf("non-FailFast default: unexpected error %v", err)
			}
			if len(h.Violations()) != 1 {
				t.Fatal("handler missed the violation")
			}
		})
		t.Run("class-report-overrides-failfast", func(t *testing.T) {
			cls := &Class{Name: "r", States: 3, Limit: 4, Failure: FailReport}
			s := mk(StoreOpts{})
			s.FailFast = true
			s.Register(cls)
			if err := violate(s, cls); err != nil {
				t.Fatalf("FailReport class under FailFast store: unexpected error %v", err)
			}
		})
		t.Run("class-stop-overrides-default", func(t *testing.T) {
			cls := &Class{Name: "s", States: 3, Limit: 4, Failure: FailStop}
			s := mk(StoreOpts{})
			s.Register(cls)
			if err := violate(s, cls); err == nil {
				t.Fatal("FailStop class: want violation error")
			}
		})
		t.Run("callback", func(t *testing.T) {
			var got []*Violation
			cls := &Class{
				Name: "c", States: 3, Limit: 4, Failure: FailCallback,
				OnViolation: func(v *Violation) { got = append(got, v) },
			}
			s := mk(StoreOpts{})
			s.Register(cls)
			if err := violate(s, cls); err != nil {
				t.Fatalf("FailCallback: unexpected error %v", err)
			}
			if len(got) != 1 || got[0].Kind != VerdictNoInstance {
				t.Fatalf("callback got %v", got)
			}
		})
		t.Run("store-default-action", func(t *testing.T) {
			cls := &Class{Name: "sd", States: 3, Limit: 4}
			s := mk(StoreOpts{Failure: FailStop})
			s.Register(cls)
			if err := violate(s, cls); err == nil {
				t.Fatal("store-wide FailStop: want violation error")
			}
		})
	})
}

// TestEvictOldest: the oldest live instance is sacrificed, monitoring stays
// live for new bindings, and the eviction is notified and accounted.
func TestEvictOldest(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		cls := &Class{Name: "ev", States: 3, Limit: 2, Overflow: EvictOldest}
		h := &noteHandler{}
		s := mk(StoreOpts{Handler: h})
		s.Register(cls)

		for _, v := range []Value{1, 2, 3} {
			if err := s.UpdateState(cls, "enter", 0, NewKey(v), initTS()); err != nil {
				t.Fatalf("enter %d: %v", v, err)
			}
		}
		if n := s.LiveCount(cls); n != 2 {
			t.Fatalf("live = %d, want 2 (limit held)", n)
		}
		keys := map[Value]bool{}
		for _, in := range s.Instances(cls) {
			keys[in.Key.Data[0]] = true
		}
		if keys[1] || !keys[2] || !keys[3] {
			t.Fatalf("wrong survivor set: %v (oldest should be gone)", keys)
		}
		hh := s.Health(cls)
		if hh.Overflows != 1 || hh.Evictions != 1 {
			t.Fatalf("health = %+v, want 1 overflow / 1 eviction", hh)
		}
		joined := strings.Join(h.sorted(), "\n")
		if !strings.Contains(joined, "evict|ev|(1)") {
			t.Fatalf("missing evict notification:\n%s", joined)
		}
	})
}

// TestDropNewPreserved: the default policy still reports and drops, exactly
// the seed behaviour.
func TestDropNewPreserved(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		cls := &Class{Name: "dn", States: 3, Limit: 2}
		s := mk(StoreOpts{})
		s.Register(cls)
		for _, v := range []Value{1, 2, 3} {
			s.UpdateState(cls, "enter", 0, NewKey(v), initTS())
		}
		if n := s.LiveCount(cls); n != 2 {
			t.Fatalf("live = %d", n)
		}
		keys := map[Value]bool{}
		for _, in := range s.Instances(cls) {
			keys[in.Key.Data[0]] = true
		}
		if !keys[1] || !keys[2] || keys[3] {
			t.Fatalf("DropNew changed survivors: %v", keys)
		}
		hh := s.Health(cls)
		if hh.Overflows != 1 || hh.Evictions != 0 {
			t.Fatalf("health = %+v", hh)
		}
	})
}

// TestQuarantineLifecycle: K consecutive overflows quarantine the class,
// events are suppressed and counted exactly, and the event-count re-arm
// processes the re-arming event itself.
func TestQuarantineLifecycle(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		cls := &Class{
			Name: "q", States: 3, Limit: 1,
			Overflow: QuarantineClass, QuarantineAfter: 2, RearmEvents: 3,
		}
		h := &noteHandler{}
		s := mk(StoreOpts{Handler: h})
		s.Register(cls)

		s.UpdateState(cls, "enter", 0, NewKey(1), initTS()) // fills the block
		s.UpdateState(cls, "enter", 0, NewKey(2), initTS()) // overflow, streak 1
		if s.Quarantined(cls) {
			t.Fatal("quarantined too early")
		}
		s.UpdateState(cls, "enter", 0, NewKey(3), initTS()) // overflow, streak 2 → quarantine
		if !s.Quarantined(cls) {
			t.Fatal("not quarantined after threshold")
		}
		if n := s.LiveCount(cls); n != 0 {
			t.Fatalf("quarantined class reports live = %d", n)
		}
		if in := s.Instances(cls); in != nil {
			t.Fatalf("quarantined class reports instances %v", in)
		}

		// Three suppressed events, then the fourth re-arms and processes.
		for i := 0; i < 3; i++ {
			s.UpdateState(cls, "enter", 0, NewKey(9), initTS())
			if !s.Quarantined(cls) {
				t.Fatalf("re-armed after %d events, want 3 suppressed first", i+1)
			}
		}
		s.UpdateState(cls, "enter", 0, NewKey(9), initTS())
		if s.Quarantined(cls) {
			t.Fatal("did not re-arm")
		}
		if n := s.LiveCount(cls); n != 1 {
			t.Fatalf("re-arming event was not processed: live = %d", n)
		}

		hh := s.Health(cls)
		if hh.Suppressed != 3 {
			t.Fatalf("Suppressed = %d, want exactly 3", hh.Suppressed)
		}
		if hh.Quarantines != 1 || hh.Overflows != 2 {
			t.Fatalf("health = %+v", hh)
		}
		joined := strings.Join(h.sorted(), "\n")
		if !strings.Contains(joined, "quarantine|q|true") || !strings.Contains(joined, "quarantine|q|false") {
			t.Fatalf("missing quarantine notifications:\n%s", joined)
		}
	})
}

// TestQuarantineTimedRearm: the duration-based re-arm honours the injected
// clock.
func TestQuarantineTimedRearm(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		now := time.Unix(1000, 0)
		var mu sync.Mutex
		clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
		advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

		cls := &Class{
			Name: "tq", States: 3, Limit: 1,
			Overflow: QuarantineClass, QuarantineAfter: 1, RearmAfter: time.Minute,
		}
		s := mk(StoreOpts{Clock: clock})
		s.Register(cls)

		s.UpdateState(cls, "enter", 0, NewKey(1), initTS())
		s.UpdateState(cls, "enter", 0, NewKey(2), initTS()) // overflow → quarantine
		if !s.Quarantined(cls) {
			t.Fatal("not quarantined")
		}
		s.UpdateState(cls, "enter", 0, NewKey(3), initTS())
		if !s.Quarantined(cls) {
			t.Fatal("re-armed before the deadline")
		}
		advance(2 * time.Minute)
		s.UpdateState(cls, "enter", 0, NewKey(4), initTS())
		if s.Quarantined(cls) {
			t.Fatal("did not re-arm after the deadline")
		}
		if s.LiveCount(cls) != 1 {
			t.Fatal("re-arming event not processed")
		}
	})
}

// TestResetLiftsQuarantine: Reset and ResetClass return a quarantined class
// to service without a Quarantine(off) notification.
func TestResetLiftsQuarantine(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		cls := &Class{Name: "rq", States: 3, Limit: 1, Overflow: QuarantineClass, QuarantineAfter: 1}
		s := mk(StoreOpts{})
		s.Register(cls)
		s.UpdateState(cls, "enter", 0, NewKey(1), initTS())
		s.UpdateState(cls, "enter", 0, NewKey(2), initTS())
		if !s.Quarantined(cls) {
			t.Fatal("not quarantined")
		}
		s.ResetClass(cls)
		if s.Quarantined(cls) {
			t.Fatal("ResetClass left quarantine in place")
		}
		s.UpdateState(cls, "enter", 0, NewKey(5), initTS())
		if s.LiveCount(cls) != 1 {
			t.Fatal("class unusable after ResetClass")
		}
	})
}

// panicHandler panics on selected notifications.
type panicHandler struct {
	NopHandler
	onFail  bool
	onTrans bool
}

func (h *panicHandler) Fail(v *Violation) {
	if h.onFail {
		panic("handler bug: fail")
	}
}

func (h *panicHandler) Transition(cls *Class, inst *Instance, from, to uint32, symbol string) {
	if h.onTrans {
		panic("handler bug: transition")
	}
}

// TestHandlerPanicIsolated: a panicking handler does not propagate into
// UpdateState, panics are counted per class, and past the limit the handler
// is quarantined and further notifications dropped.
func TestHandlerPanicIsolated(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		cls := &Class{Name: "ph", States: 3, Limit: 8}
		s := mk(StoreOpts{Handler: &panicHandler{onTrans: true}, HandlerPanicLimit: 3})
		s.Register(cls)

		for i := 0; i < 5; i++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("handler panic escaped UpdateState: %v", r)
					}
				}()
				s.UpdateState(cls, "enter", 0, NewKey(Value(i)), initTS())
			}()
		}
		if got := s.HandlerPanics(); got != 3 {
			t.Fatalf("HandlerPanics = %d, want 3 (limit stops further deliveries)", got)
		}
		if !s.HandlerQuarantined() {
			t.Fatal("handler not quarantined at limit")
		}
		if s.NotesDropped() == 0 {
			t.Fatal("dropped notifications not accounted")
		}
		if hh := s.Health(cls); hh.HandlerPanics != 3 {
			t.Fatalf("per-class HandlerPanics = %d", hh.HandlerPanics)
		}
		// The monitor itself is unaffected: instances kept being created.
		if n := s.LiveCount(cls); n != 5 {
			t.Fatalf("live = %d, want 5", n)
		}
	})
}

// TestCallbackPanicIsolated: OnViolation panics are recovered like handler
// panics.
func TestCallbackPanicIsolated(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		cls := &Class{
			Name: "cp", States: 3, Limit: 4, Failure: FailCallback,
			OnViolation: func(*Violation) { panic("callback bug") },
		}
		s := mk(StoreOpts{})
		s.Register(cls)
		s.UpdateState(cls, "enter", 0, NewKey(1), initTS())
		site := TransitionSet{{From: 1, To: 2, KeyMask: 1}}
		if err := s.UpdateState(cls, "site", SymRequired, NewKey(2), site); err != nil {
			t.Fatalf("unexpected error %v", err)
		}
		if s.HandlerPanics() != 1 {
			t.Fatalf("HandlerPanics = %d", s.HandlerPanics())
		}
	})
}

// reentrantHandler calls back into the store it observes — the regression
// case for notifications dispatched under the store lock (deadlock before
// the supervision layer).
type reentrantHandler struct {
	NopHandler
	s   *Store
	cls *Class
	mu  sync.Mutex
	n   int
}

func (h *reentrantHandler) Transition(cls *Class, inst *Instance, from, to uint32, symbol string) {
	h.mu.Lock()
	h.n++
	reenter := h.n == 1 // only the first notification re-enters, no recursion
	h.mu.Unlock()
	_ = h.s.LiveCount(h.cls)
	_ = h.s.Instances(h.cls)
	if reenter {
		h.s.UpdateState(h.cls, "enter", 0, NewKey(77), initTS())
	}
}

// TestReentrantHandlerNoDeadlock: a handler that reads from and updates the
// same store completes (fails by test timeout if dispatch ever moves back
// under the lock).
func TestReentrantHandlerNoDeadlock(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		cls := &Class{Name: "re", States: 3, Limit: 8}
		h := &reentrantHandler{cls: cls}
		s := mk(StoreOpts{Handler: h})
		h.s = s
		s.Register(cls)

		done := make(chan struct{})
		go func() {
			s.UpdateState(cls, "enter", 0, NewKey(1), initTS())
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("re-entrant handler deadlocked the store")
		}
		// Both the original and the re-entrant instance exist.
		if n := s.LiveCount(cls); n != 2 {
			t.Fatalf("live = %d, want 2", n)
		}
	})
}

// TestHealthReport: the per-store report covers every class in registration
// order with live counts and quarantine flags.
func TestHealthReport(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		a := &Class{Name: "a", States: 3, Limit: 2}
		b := &Class{Name: "b", States: 3, Limit: 1, Overflow: QuarantineClass, QuarantineAfter: 1}
		s := mk(StoreOpts{})
		s.Register(a)
		s.Register(b)
		s.UpdateState(a, "enter", 0, NewKey(1), initTS())
		s.UpdateState(b, "enter", 0, NewKey(1), initTS())
		s.UpdateState(b, "enter", 0, NewKey(2), initTS()) // overflow → quarantine

		rep := s.HealthReport()
		if len(rep) != 2 || rep[0].Class != "a" || rep[1].Class != "b" {
			t.Fatalf("report order: %+v", rep)
		}
		if rep[0].Quarantined || rep[0].Live != 1 || rep[0].Degraded() {
			t.Fatalf("class a: %+v", rep[0])
		}
		if !rep[1].Quarantined || rep[1].Live != 0 || !rep[1].Degraded() {
			t.Fatalf("class b: %+v", rep[1])
		}
		if rep[1].Overflows != 1 || rep[1].Quarantines != 1 {
			t.Fatalf("class b counters: %+v", rep[1])
		}
	})
}

// TestPolicyStringers pins the flag-facing names.
func TestPolicyStringers(t *testing.T) {
	if FailStop.String() != "stop" || FailReport.String() != "report" ||
		FailCallback.String() != "callback" || FailDefault.String() != "default" {
		t.Fatal("FailureAction strings changed")
	}
	if DropNew.String() != "drop-new" || EvictOldest.String() != "evict-oldest" ||
		QuarantineClass.String() != "quarantine" || OverflowDefault.String() != "default" {
		t.Fatal("OverflowPolicy strings changed")
	}
}

// TestEvictSparesParent: EvictOldest's victim is the oldest instance bound
// like the newcomer, not the class-wide oldest. A plain minimum-birth scan
// evicts the unkeyed parent «init» instance first (it is the oldest by
// construction), silently killing the clone source for every later binding
// in the bound — found by driving `tesla-run -overflow evict-oldest`
// against a program that checks more keys than the block holds.
func TestEvictSparesParent(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		cls := &Class{Name: "par", States: 3, Limit: 3, Overflow: EvictOldest}
		s := mk(StoreOpts{})
		s.Register(cls)
		enter := TransitionSet{{From: 0, To: 1, Flags: TransInit}}
		check := TransitionSet{
			{From: 1, To: 2, KeyMask: 1},
			{From: 2, To: 2, KeyMask: 1},
		}

		if err := s.UpdateState(cls, "enter", 0, AnyKey, enter); err != nil {
			t.Fatal(err)
		}
		// Three slots: the parent plus two clones fill the block; clones
		// (3) and (4) must each evict the oldest *clone*, never the parent.
		for v := Value(1); v <= 4; v++ {
			if err := s.UpdateState(cls, "check", 0, NewKey(v), check); err != nil {
				t.Fatalf("check %d: %v", v, err)
			}
		}
		parent := false
		keys := map[Value]bool{}
		for _, in := range s.Instances(cls) {
			if in.Key == AnyKey {
				parent = true
			} else {
				keys[in.Key.Data[0]] = true
			}
		}
		if !parent {
			t.Fatalf("parent (∗) evicted; survivors %v — clone source lost", keys)
		}
		if keys[1] || keys[2] || !keys[3] || !keys[4] {
			t.Fatalf("wrong clone survivor set: %v, want {3,4}", keys)
		}
		if hh := s.Health(cls); hh.Overflows != 2 || hh.Evictions != 2 {
			t.Fatalf("health = %+v, want 2 overflows / 2 evictions", hh)
		}
	})
}
