package build

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Status classifies how a node's artifact was obtained.
type Status int

const (
	// StatusBuilt: the node ran its stage.
	StatusBuilt Status = iota
	// StatusMemHit: served from this process's memory cache.
	StatusMemHit
	// StatusDiskHit: decoded from the on-disk artifact cache.
	StatusDiskHit
	// StatusSkipped: an upstream dependency failed, so the node never ran.
	StatusSkipped
	// StatusFailed: the node ran and produced an error.
	StatusFailed
)

func (s Status) String() string {
	switch s {
	case StatusBuilt:
		return "built"
	case StatusMemHit:
		return "hit (mem)"
	case StatusDiskHit:
		return "hit (disk)"
	case StatusSkipped:
		return "skipped"
	case StatusFailed:
		return "error"
	}
	return "?"
}

// errSkipped marks nodes that never ran because an upstream node failed.
var errSkipped = errors.New("build: skipped: upstream stage failed")

// node is one stage instance in the build graph. All scheduling state is
// written by the single worker that executes the node; dependents observe
// it only after the dependency counter reaches zero, which the ready
// channel orders.
type node struct {
	id   string // display name, e.g. "compile:client.c"
	kind string // key namespace, e.g. "compile"

	// deps are the nodes whose artifact hashes feed this node's key, in a
	// fixed order. extra is the literal key material (source bytes, file
	// names, pipeline options); extraFn supplies key material that is only
	// derivable after the deps completed (it must not fail).
	deps    []*node
	extra   [][]byte
	extraFn func() [][]byte

	// after are scheduling-only dependencies: the node waits for them and
	// skips when they fail, but their artifact hashes do NOT feed its key.
	// Use them when a node derives its own key material from an upstream
	// artifact (via extraFn) with finer granularity than the artifact's
	// hash — keying on both would defeat the finer cutoff.
	after []*node

	// cacheable gates the on-disk layer; in-memory caching always applies.
	cacheable bool

	run    func() (any, error)
	encode func(any) ([]byte, error)
	decode func([]byte) (any, error)

	// Scheduler state.
	pending    int32
	dependents []*node
	status     Status
	key        string
	hash       string
	art        any
	err        error
	dur        time.Duration
}

// exec runs a node set over a bounded worker pool. Nodes are released in
// dependency order; independent nodes run concurrently on up to jobs
// workers.
type exec struct {
	cache *Cache
	jobs  int
}

func (x *exec) runGraph(nodes []*node) {
	if len(nodes) == 0 {
		return
	}
	jobs := x.jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(nodes) {
		jobs = len(nodes)
	}

	ready := make(chan *node, len(nodes))
	for _, n := range nodes {
		n.pending = int32(len(n.deps) + len(n.after))
		for _, d := range n.deps {
			d.dependents = append(d.dependents, n)
		}
		for _, d := range n.after {
			d.dependents = append(d.dependents, n)
		}
	}
	for _, n := range nodes {
		if n.pending == 0 {
			ready <- n
		}
	}

	var done int32
	total := int32(len(nodes))
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range ready {
				x.execNode(n)
				for _, dep := range n.dependents {
					if atomic.AddInt32(&dep.pending, -1) == 0 {
						ready <- dep
					}
				}
				if atomic.AddInt32(&done, 1) == total {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
}

// execNode resolves one node: propagate upstream failure, derive the
// content-hash key, consult the memory and disk caches, and only then run
// the stage. Built artifacts are encoded immediately — their bytes are the
// artifact hash downstream keys depend on.
func (x *exec) execNode(n *node) {
	start := time.Now()
	defer func() { n.dur = time.Since(start) }()

	depHashes := make([]string, len(n.deps))
	for i, d := range n.deps {
		if d.err != nil {
			n.status = StatusSkipped
			n.err = errSkipped
			return
		}
		depHashes[i] = d.hash
	}
	for _, d := range n.after {
		if d.err != nil {
			n.status = StatusSkipped
			n.err = errSkipped
			return
		}
	}
	extra := n.extra
	if n.extraFn != nil {
		extra = append(append([][]byte{}, extra...), n.extraFn()...)
	}
	n.key = nodeKey(n.kind, extra, depHashes)

	if art, hash, ok := x.cache.getMem(n.key); ok {
		n.art, n.hash, n.status = art, hash, StatusMemHit
		return
	}
	if n.cacheable {
		if data, ok := x.cache.getDisk(n.key); ok {
			// A corrupt or undecodable object is treated as a miss and
			// rebuilt over.
			if art, err := n.decode(data); err == nil {
				n.art, n.hash, n.status = art, hashBytes(data), StatusDiskHit
				x.cache.putMem(n.key, n.art, n.hash)
				return
			}
		}
	}

	art, err := n.run()
	if err != nil {
		n.status = StatusFailed
		n.err = err
		return
	}
	data, err := n.encode(art)
	if err != nil {
		n.status = StatusFailed
		n.err = err
		return
	}
	n.art = art
	n.hash = hashBytes(data)
	n.status = StatusBuilt
	x.cache.putMem(n.key, n.art, n.hash)
	if n.cacheable {
		// Failing to persist is not a build failure; the artifact is in
		// hand and the next build simply rebuilds it.
		_ = x.cache.putDisk(n.key, data)
	}
}
