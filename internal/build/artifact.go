package build

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"tesla/internal/automata"
	"tesla/internal/compiler"
	"tesla/internal/instrument"
	"tesla/internal/ir"
	"tesla/internal/manifest"
)

// Artifact codecs. Every node encodes its artifact to deterministic bytes:
// the bytes are what the on-disk cache stores, and their hash is what
// downstream node keys incorporate — so "did my input change?" is always
// answered by comparing serialised content, never pointers or timestamps.

// unitArtifact is the compile node's product: the file's IR module plus
// its manifest fragment (the analyse stage extracts the fragment; carrying
// it here means a compile cache hit restores the unit's assertions without
// reparsing the source).
type unitArtifact struct {
	Module   *ir.Module
	Fragment []byte // fragment manifest, JSON-encoded
}

// moduleArtifact is the product of the instrument, strip and link nodes.
// Stats is meaningful for instrument nodes only.
type moduleArtifact struct {
	Module *ir.Module
	Stats  instrument.Stats
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("build: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("build: decode: %w", err)
	}
	return nil
}

func encodeUnit(art any) ([]byte, error)   { return gobEncode(art.(*unitArtifact)) }
func encodeModule(art any) ([]byte, error) { return gobEncode(art.(*moduleArtifact)) }

func decodeUnit(data []byte) (any, error) {
	var u unitArtifact
	if err := gobDecode(data, &u); err != nil {
		return nil, err
	}
	return &u, nil
}

func decodeModule(data []byte) (any, error) {
	var m moduleArtifact
	if err := gobDecode(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func encodeIface(art any) ([]byte, error) { return art.(*compiler.Interface).Encode() }

func decodeIface(data []byte) (any, error) { return compiler.DecodeInterface(data) }

func encodeManifest(art any) ([]byte, error) {
	var buf bytes.Buffer
	if err := art.(*manifest.File).Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeManifest(data []byte) (any, error) {
	return manifest.Decode(bytes.NewReader(data))
}

// autosArtifact pairs compiled automata with the manifest bytes they were
// compiled from. The on-disk form is just the manifest: automata
// compilation is deterministic, so decoding recompiles — the disk object
// is a recipe, not a pickle.
type autosArtifact struct {
	Autos    []*automata.Automaton
	Manifest []byte
}

func encodeAutos(art any) ([]byte, error) { return art.(*autosArtifact).Manifest, nil }

func decodeAutos(data []byte) (any, error) {
	m, err := manifest.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	autos, err := m.Compile()
	if err != nil {
		return nil, err
	}
	return &autosArtifact{Autos: autos, Manifest: data}, nil
}

// engineArtifact is the engine node's product: one compiled engine image
// per automaton class (manifest order), plus this build's lowered/reused
// split. Only the images persist; a node-level cache hit means no lowering
// happened at all, so the loader reconstructs the counters as all-reused.
type engineArtifact struct {
	Lowered int
	Reused  int
	Images  []*automata.EngineImage
}

func encodeEngines(art any) ([]byte, error) {
	return gobEncode(art.(*engineArtifact).Images)
}

func decodeEngines(data []byte) (any, error) {
	var imgs []*automata.EngineImage
	if err := gobDecode(data, &imgs); err != nil {
		return nil, err
	}
	return &engineArtifact{Reused: len(imgs), Images: imgs}, nil
}

func (u *unitArtifact) unit() (*compiler.Unit, error) {
	frag, err := manifest.Decode(bytes.NewReader(u.Fragment))
	if err != nil {
		return nil, err
	}
	as, err := frag.Parse()
	if err != nil {
		return nil, err
	}
	return &compiler.Unit{Module: u.Module, Assertions: as}, nil
}

func (u *unitArtifact) fragment() (*manifest.File, error) {
	return manifest.Decode(bytes.NewReader(u.Fragment))
}
