package spec

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Random-assertion generator for the print∘parse round-trip property: any
// tree the builder DSL can produce must print to macro text that reparses
// to the identical tree. This is the property the manifest format depends
// on (.tesla files store printed assertions).

func genPattern(r *rand.Rand) ArgPattern {
	var p ArgPattern
	switch r.Intn(5) {
	case 0:
		p = Any([]string{"int", "ptr", "id"}[r.Intn(3)])
	case 1:
		p = Int(int64(r.Intn(2001) - 1000))
	case 2:
		p = Var([]string{"a", "b", "cc", "vp", "so"}[r.Intn(5)])
	case 3:
		p = Flags(int64(1 + r.Intn(0xffff)))
	default:
		p = Bitmask(int64(1 + r.Intn(0xffff)))
	}
	if r.Intn(5) == 0 {
		p = Deref(p)
	}
	return p
}

func genFuncEvent(r *rand.Rand) *FunctionEvent {
	fn := []string{"f0", "f1", "check_thing", "g"}[r.Intn(4)]
	nargs := r.Intn(4)
	var args []ArgPattern // nil when empty, matching the parser
	for i := 0; i < nargs; i++ {
		args = append(args, genPattern(r))
	}
	switch r.Intn(3) {
	case 0:
		return Call(fn, args...)
	case 1:
		return ReturnFrom(fn, args...)
	default:
		return Call(fn, args...).Returns(genPattern(r))
	}
}

func genEvent(r *rand.Rand) Expr {
	switch r.Intn(6) {
	case 0:
		return Site()
	case 1:
		return InStack([]string{"h0", "h1"}[r.Intn(2)])
	case 2:
		op := []AssignOp{OpAssign, OpAddAssign, OpIncr}[r.Intn(3)]
		target := Var([]string{"s", "p"}[r.Intn(2)])
		structName := []string{"sock", "proc"}[r.Intn(2)]
		switch op {
		case OpIncr:
			return FieldIncr(structName, "fld", target)
		case OpAddAssign:
			return FieldAddAssign(structName, "fld", target, Int(int64(r.Intn(100))))
		default:
			return FieldAssign(structName, "fld", target, genPattern(r))
		}
	case 3:
		// Objective-C message: unary or two-part keyword selector.
		if r.Intn(2) == 0 {
			return Msg(genPattern(r), []string{"push", "pop", "display"}[r.Intn(3)])
		}
		return Msg(genPattern(r), "drawWith:inView:", genPattern(r), genPattern(r))
	default:
		return genFuncEvent(r)
	}
}

func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return genEvent(r)
	}
	switch r.Intn(6) {
	case 0:
		n := 1 + r.Intn(3)
		exprs := make([]Expr, n)
		for i := range exprs {
			exprs[i] = genExpr(r, depth-1)
		}
		return TSequence(exprs...)
	case 1:
		n := 2 + r.Intn(2)
		exprs := make([]Expr, n)
		for i := range exprs {
			exprs[i] = genExpr(r, depth-1)
		}
		if r.Intn(2) == 0 {
			return Or(exprs...)
		}
		return Xor(exprs...)
	case 2:
		return Opt(genExpr(r, depth-1))
	case 3:
		n := 1 + r.Intn(3)
		exprs := make([]Expr, n)
		for i := range exprs {
			exprs[i] = genExpr(r, depth-1)
		}
		return AtLeast(r.Intn(4), exprs...)
	default:
		return genEvent(r)
	}
}

func genAssertion(r *rand.Rand) *Assertion {
	expr := genExpr(r, 2+r.Intn(2))
	var a *Assertion
	switch r.Intn(4) {
	case 0:
		a = Within("fuzz", "bound_fn", expr)
	case 1:
		a = GlobalWithin("fuzz", "bound_fn", expr)
	case 2:
		a = Assert("fuzz", PerThread, Bound{
			Begin: StaticEvent{Kind: StaticCall, Fn: "begin_fn"},
			End:   StaticEvent{Kind: StaticReturn, Fn: "end_fn"},
		}, expr)
	default:
		a = Assert("fuzz", Global, Bound{
			Begin: StaticEvent{Kind: StaticReturn, Fn: "begin_fn"},
			End:   StaticEvent{Kind: StaticCall, Fn: "end_fn"},
		}, expr)
	}
	a.Strict = r.Intn(4) == 0
	return a
}

// TestQuickPrintParseRoundTrip: print∘parse is the identity on random
// assertion trees.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20140413)) // the paper's conference date
	f := func() bool {
		a := genAssertion(rng)
		text := a.String()
		b, err := Parse("fuzz", text, nil)
		if err != nil {
			t.Logf("unparseable print: %q: %v", text, err)
			return false
		}
		if !reflect.DeepEqual(a, b) {
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			t.Logf("round trip changed tree:\n  text: %s\n  a: %s\n  b: %s", text, ja, jb)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}
