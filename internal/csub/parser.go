package csub

import (
	"fmt"
	"strings"
)

// Parse parses one csub source file.
func Parse(file, src string) (*File, error) {
	p := &parser{lex: newLexer(file, src), src: src, file: file}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{Name: file, Defines: map[string]int64{}}
	for p.tok.kind != tEOF {
		if err := p.parseTopLevel(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

type parser struct {
	lex   *lexer
	src   string
	file  string
	tok   token
	ahead *token
}

func (p *parser) advance() error {
	if p.ahead != nil {
		p.tok = *p.ahead
		p.ahead = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (token, error) {
	if p.ahead == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.ahead = &t
	}
	return *p.ahead, nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", p.file, p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	if p.tok.kind != tPunct || p.tok.text != text {
		return p.errf("expected %q, found %q", text, p.tok.text)
	}
	return p.advance()
}

func (p *parser) accept(text string) bool {
	if p.tok.kind == tPunct && p.tok.text == text {
		if err := p.advance(); err != nil {
			return false
		}
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf("expected identifier, found %q", p.tok.text)
	}
	s := p.tok.text
	return s, p.advance()
}

func (p *parser) parseTopLevel(f *File) error {
	switch {
	case p.tok.kind == tPunct && p.tok.text == "#":
		return p.parseDefine(f)
	case p.tok.kind == tIdent && p.tok.text == "struct":
		next, err := p.peek()
		if err != nil {
			return err
		}
		// `struct X {` is a definition; `struct X *name(` is a function.
		if next.kind == tIdent {
			save := p.tok
			_ = save
			// Look two ahead by parsing tentatively: read `struct X`
			// then check for '{'.
			if err := p.advance(); err != nil { // consume 'struct'
				return err
			}
			name, err := p.ident()
			if err != nil {
				return err
			}
			if p.tok.kind == tPunct && p.tok.text == "{" {
				return p.parseStructBody(f, name)
			}
			// Function or global returning struct pointer.
			if err := p.expect("*"); err != nil {
				return err
			}
			return p.parseFuncOrGlobal(f, Type{Kind: TPtr, Struct: name})
		}
		return p.errf("expected struct name")
	case p.tok.kind == tIdent && (p.tok.text == "int" || p.tok.text == "long" || p.tok.text == "void"):
		if err := p.advance(); err != nil {
			return err
		}
		return p.parseFuncOrGlobal(f, Type{Kind: TInt})
	default:
		return p.errf("unexpected top-level token %q", p.tok.text)
	}
}

func (p *parser) parseDefine(f *File) error {
	if err := p.advance(); err != nil { // '#'
		return err
	}
	kw, err := p.ident()
	if err != nil {
		return err
	}
	if kw != "define" {
		return p.errf("unsupported preprocessor directive %q", kw)
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	neg := p.accept("-")
	if p.tok.kind != tNumber {
		return p.errf("#define %s: expected numeric value", name)
	}
	v := p.tok.num
	if neg {
		v = -v
	}
	f.Defines[name] = v
	return p.advance()
}

func (p *parser) parseStructBody(f *File, name string) error {
	sd := &StructDef{Name: name, Line: p.tok.line}
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.accept("}") {
		fd, err := p.parseFieldDef()
		if err != nil {
			return err
		}
		sd.Fields = append(sd.Fields, fd)
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	f.Structs = append(f.Structs, sd)
	return nil
}

func (p *parser) parseFieldDef() (FieldDef, error) {
	switch {
	case p.tok.kind == tIdent && p.tok.text == "struct":
		if err := p.advance(); err != nil {
			return FieldDef{}, err
		}
		sname, err := p.ident()
		if err != nil {
			return FieldDef{}, err
		}
		if err := p.expect("*"); err != nil {
			return FieldDef{}, err
		}
		name, err := p.ident()
		if err != nil {
			return FieldDef{}, err
		}
		return FieldDef{Name: name, Type: Type{Kind: TPtr, Struct: sname}}, p.expect(";")
	case p.tok.kind == tIdent && (p.tok.text == "int" || p.tok.text == "long"):
		if err := p.advance(); err != nil {
			return FieldDef{}, err
		}
		// Function-pointer field: int (*name)(…);
		if p.accept("(") {
			if err := p.expect("*"); err != nil {
				return FieldDef{}, err
			}
			name, err := p.ident()
			if err != nil {
				return FieldDef{}, err
			}
			if err := p.expect(")"); err != nil {
				return FieldDef{}, err
			}
			if err := p.expect("("); err != nil {
				return FieldDef{}, err
			}
			depth := 1
			for depth > 0 {
				if p.tok.kind == tEOF {
					return FieldDef{}, p.errf("unterminated function-pointer field")
				}
				if p.tok.kind == tPunct {
					if p.tok.text == "(" {
						depth++
					} else if p.tok.text == ")" {
						depth--
					}
				}
				if err := p.advance(); err != nil {
					return FieldDef{}, err
				}
			}
			return FieldDef{Name: name, Type: Type{Kind: TFnPtr}}, p.expect(";")
		}
		name, err := p.ident()
		if err != nil {
			return FieldDef{}, err
		}
		return FieldDef{Name: name, Type: Type{Kind: TInt}}, p.expect(";")
	default:
		return FieldDef{}, p.errf("expected field declaration, found %q", p.tok.text)
	}
}

func (p *parser) parseFuncOrGlobal(f *File, typ Type) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	line := p.tok.line
	if p.tok.kind == tPunct && p.tok.text == "(" {
		fn, err := p.parseFuncRest(name, line)
		if err != nil {
			return err
		}
		f.Funcs = append(f.Funcs, fn)
		return nil
	}
	// Global variable (integers only, constant initialiser).
	g := &VarDecl{Name: name, Type: typ, Line: line}
	if p.accept("=") {
		neg := p.accept("-")
		if p.tok.kind != tNumber {
			return p.errf("global %s: initialiser must be a constant", name)
		}
		v := p.tok.num
		if neg {
			v = -v
		}
		g.Init = &IntLit{V: v}
		if err := p.advance(); err != nil {
			return err
		}
	}
	f.Globals = append(f.Globals, g)
	return p.expect(";")
}

func (p *parser) parseFuncRest(name string, line int) (*FuncDef, error) {
	fn := &FuncDef{Name: name, Line: line}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		if p.tok.kind == tIdent && p.tok.text == "void" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		} else {
			for {
				typ, err := p.parseType()
				if err != nil {
					return nil, err
				}
				pname, err := p.ident()
				if err != nil {
					return nil, err
				}
				fn.Params = append(fn.Params, VarDecl{Name: pname, Type: typ})
				if p.accept(")") {
					break
				}
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseType() (Type, error) {
	if p.tok.kind != tIdent {
		return Type{}, p.errf("expected type, found %q", p.tok.text)
	}
	switch p.tok.text {
	case "int", "long":
		return Type{Kind: TInt}, p.advance()
	case "struct":
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		name, err := p.ident()
		if err != nil {
			return Type{}, err
		}
		return Type{Kind: TPtr, Struct: name}, p.expect("*")
	default:
		return Type{}, p.errf("unknown type %q", p.tok.text)
	}
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.accept("}") {
		if p.tok.kind == tEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	if p.tok.kind == tIdent {
		switch p.tok.text {
		case "int", "long":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return p.parseDeclRest(Type{Kind: TInt})
		case "struct":
			if err := p.advance(); err != nil {
				return nil, err
			}
			sname, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("*"); err != nil {
				return nil, err
			}
			return p.parseDeclRest(Type{Kind: TPtr, Struct: sname})
		case "if":
			return p.parseIf()
		case "while":
			return p.parseWhile()
		case "return":
			line := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.accept(";") {
				return &ReturnStmt{Line: line}, nil
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &ReturnStmt{Val: v, Line: line}, p.expect(";")
		default:
			if strings.HasPrefix(p.tok.text, "TESLA_") {
				return p.parseTesla()
			}
		}
	}
	// Expression or assignment statement.
	line := p.tok.line
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept("="):
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := checkLValue(lhs); err != nil {
			return nil, p.errf("%v", err)
		}
		return &AssignStmt{LHS: lhs, Op: Set, RHS: rhs, Line: line}, p.expect(";")
	case p.accept("+="):
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := checkLValue(lhs); err != nil {
			return nil, p.errf("%v", err)
		}
		return &AssignStmt{LHS: lhs, Op: Add, RHS: rhs, Line: line}, p.expect(";")
	case p.accept("++"):
		if err := checkLValue(lhs); err != nil {
			return nil, p.errf("%v", err)
		}
		return &AssignStmt{LHS: lhs, Op: Incr, Line: line}, p.expect(";")
	default:
		return &ExprStmt{X: lhs}, p.expect(";")
	}
}

func checkLValue(e Expr) error {
	switch e.(type) {
	case *Ident, *FieldExpr, *IndexExpr:
		return nil
	default:
		return fmt.Errorf("assignment target must be a variable, field or index")
	}
}

func (p *parser) parseDeclRest(typ Type) (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := VarDecl{Name: name, Type: typ, Line: p.tok.line}
	if p.accept("=") {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return &DeclStmt{Decl: d}, p.expect(";")
}

func (p *parser) parseIf() (Stmt, error) {
	if err := p.advance(); err != nil { // 'if'
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.tok.kind == tIdent && p.tok.text == "else" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tIdent && p.tok.text == "if" {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{nested}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	if err := p.advance(); err != nil { // 'while'
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

// parseTesla captures the raw text of a TESLA_* macro invocation through
// its balanced closing parenthesis; the analyser parses it with internal/
// spec once scope types are known.
func (p *parser) parseTesla() (Stmt, error) {
	start := p.tok.pos
	line := p.tok.line
	if err := p.advance(); err != nil { // macro name
		return nil, err
	}
	if p.tok.kind != tPunct || p.tok.text != "(" {
		return nil, p.errf("TESLA macro requires parenthesised body")
	}
	depth := 0
	var end int
	for {
		if p.tok.kind == tEOF {
			return nil, p.errf("unterminated TESLA macro")
		}
		if p.tok.kind == tPunct {
			switch p.tok.text {
			case "(":
				depth++
			case ")":
				depth--
			}
		}
		end = p.tok.pos + len(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if depth == 0 {
			break
		}
	}
	text := p.src[start:end]
	return &TeslaStmt{Text: text, Line: line}, p.expect(";")
}

// Operator precedence, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *parser) parseBin(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		if p.tok.kind == tPunct {
			for _, op := range precLevels[level] {
				if p.tok.text == op {
					matched = op
					break
				}
			}
		}
		if matched == "" {
			return lhs, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: matched, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tPunct {
		switch p.tok.text {
		case "-", "!":
			op := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: op, X: x}, nil
		case "&":
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &AddrExpr{X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.tok.kind == tPunct && p.tok.text == "->":
			line := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			x = &FieldExpr{X: x, Name: name, Line: line}
		case p.tok.kind == tPunct && p.tok.text == "[":
			line := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Index: idx, Line: line}
		case p.tok.kind == tPunct && p.tok.text == "(":
			line := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &CallExpr{Fn: x, Line: line}
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			x = call
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.kind == tNumber:
		v := p.tok.num
		return &IntLit{V: v}, p.advance()
	case p.tok.kind == tIdent:
		name := p.tok.text
		line := p.tok.line
		if name == "alloc" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			sname, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &AllocExpr{Struct: sname, Line: line}, p.expect(")")
		}
		return &Ident{Name: name, Line: line}, p.advance()
	case p.tok.kind == tPunct && p.tok.text == "(":
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.expect(")")
	default:
		return nil, p.errf("unexpected token %q in expression", p.tok.text)
	}
}
