// Package staticcheck is the compile-time half the paper leaves as future
// work (§7): an interprocedural model checker that decides, before the
// program ever runs, which assertions need their runtime instrumentation at
// all. It walks the IR control-flow graph from the program entry point,
// abstracts every instruction the instrumenter would hook (function entries
// and returns, call sites, field stores, assertion sites, bound events)
// into the automaton alphabet, and propagates the product of the program
// state with an abstraction of the libtesla instance store.
//
// Every assertion is classified as one of:
//
//   - PROVABLY-SAFE: no reachable path can produce a violation. The
//     toolchain may elide all of the assertion's hooks (instrument.Options
//     .Elide) — the paper's overhead, deleted at compile time.
//   - PROVABLY-FAILING: every terminating execution violates the
//     assertion. This is a compile-time error in spirit: the missing-check
//     bug of the opensslcve example is caught without running the program.
//   - NEEDS-RUNTIME: neither could be proved; the assertion keeps its
//     instrumentation and libtesla decides at run time.
//
// The abstraction tracks, per control-flow point and per automaton, the
// set of DFA states the general instance (the one created by «init» with
// an empty key) may occupy (LO), a superset of the states occupied by any
// live instance including clones (HI), whether the bound is open, whether
// any event has been delivered in the current bound epoch, and whether a
// violation has already definitely occurred. Soundness dictates the
// asymmetry: SAFE verdicts are refuted from HI (any instance could be the
// one that fails) but FAILING verdicts are proved from LO (the general
// instance always exists once the bound has been touched, so if it is
// surely stuck, the whole assertion surely fails). See DESIGN.md for the
// transfer functions and the soundness caveats.
package staticcheck

import (
	"sort"

	"tesla/internal/automata"
	"tesla/internal/compiler"
	"tesla/internal/csub"
	"tesla/internal/ir"
	"tesla/internal/manifest"
)

// Verdict classifies one assertion.
type Verdict int

const (
	// NeedsRuntime means the checker could not decide; keep the hooks.
	NeedsRuntime Verdict = iota
	// Safe means no reachable execution can violate the assertion.
	Safe
	// Failing means every terminating execution violates the assertion.
	Failing
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "PROVABLY-SAFE"
	case Failing:
		return "PROVABLY-FAILING"
	default:
		return "NEEDS-RUNTIME"
	}
}

// Obligation is a structured diagnostic for an undischarged liveness
// obligation: instead of a bare NEEDS-RUNTIME, the checker names the
// states that may be left pending, the events that would move them, and
// the □◇-style fairness assumption under which the assertion would hold.
// Field order is the stable JSON order consumed by `tesla-check -json`.
type Obligation struct {
	// Kind classifies the obligation: "eventually" (an instance may
	// reach bound exit without completing), "site" (the general instance
	// may reach the assertion site unable to accept it) or "budget" (the
	// analysis valve tripped before a proof).
	Kind string `json:"kind"`
	// Where is the program point the obligation was recorded at.
	Where string `json:"where,omitempty"`
	// Pending are the automaton states that may be stuck.
	Pending automata.StateSet `json:"pending,omitempty"`
	// Discharge are the event names that can move a pending state.
	Discharge []string `json:"discharge,omitempty"`
	// Fairness is the □◇ assumption over Discharge that closes the gap.
	Fairness string `json:"fairness,omitempty"`
	// Detail is the human-readable sentence rendered by tesla-check.
	Detail string `json:"detail"`
}

func (o Obligation) id() string {
	return o.Kind + "|" + o.Where + "|" + o.Fairness + "|" + o.Detail
}

// Result is the verdict for one automaton, with the reasons that support
// (or, for NEEDS-RUNTIME, that blocked) the classification.
type Result struct {
	Automaton *automata.Automaton
	Verdict   Verdict
	// Reasons are human-readable findings: for NEEDS-RUNTIME, what the
	// checker could not rule out; for FAILING, where the violation is
	// forced. Sorted and deduplicated.
	Reasons []string
	// Liveness marks verdicts decided by the liveness refinement pass
	// (value-refined product walk) rather than the plain safety pass.
	Liveness bool
	// Proof carries the refinement facts a Liveness verdict rests on
	// (pruned branches, ranked loops). Sorted and deduplicated.
	Proof []string
	// Obligations are the structured missing-fairness diagnostics for
	// NEEDS-RUNTIME verdicts (nil for decided ones). Sorted by kind,
	// location and assumption.
	Obligations []Obligation

	graph *productGraph
}

// Dot renders the explored product graph (abstract monitor configurations
// × program events) in the visual conventions of automata.Dot.
func (r *Result) Dot() string { return r.graph.dot(r.Automaton.Name) }

// Report is the verdict set for a whole program, in automaton order.
type Report struct {
	Results []*Result
}

// Result finds the result for a named assertion, or nil.
func (r *Report) Result(name string) *Result {
	for _, res := range r.Results {
		if res.Automaton.Name == name {
			return res
		}
	}
	return nil
}

// Counts tallies verdicts.
func (r *Report) Counts() (safe, failing, runtime int) {
	for _, res := range r.Results {
		switch res.Verdict {
		case Safe:
			safe++
		case Failing:
			failing++
		default:
			runtime++
		}
	}
	return
}

// SafeSet returns the names of PROVABLY-SAFE automata, the set handed to
// instrument.Options.Elide.
func (r *Report) SafeSet() map[string]bool {
	out := map[string]bool{}
	for _, res := range r.Results {
		if res.Verdict == Safe {
			out[res.Automaton.Name] = true
		}
	}
	return out
}

// Options configures a check.
type Options struct {
	// Entry is the program entry point; "" means main.
	Entry string
	// DefinedFns mirrors instrument.Options.DefinedFns: the set used to
	// pick caller- vs callee-side hooks. Nil means the module's functions.
	DefinedFns map[string]bool
	// MaxConfigs bounds distinct abstract configurations per basic block
	// before the checker gives up on an automaton (NEEDS-RUNTIME). Zero
	// means DefaultMaxConfigs.
	MaxConfigs int
	// NoLiveness disables the liveness refinement pass: verdicts come
	// from the safety pass alone (the pre-refinement behaviour). Used by
	// the elision benchmark to separate the safety and liveness rungs.
	NoLiveness bool
}

// DefaultMaxConfigs is the per-block configuration valve.
const DefaultMaxConfigs = 64

// Check classifies every automaton against the (uninstrumented) program
// module. The module is not mutated.
func Check(mod *ir.Module, autos []*automata.Automaton, opts Options) *Report {
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	if opts.MaxConfigs <= 0 {
		opts.MaxConfigs = DefaultMaxConfigs
	}
	if opts.DefinedFns == nil {
		opts.DefinedFns = map[string]bool{}
		for _, f := range mod.Funcs {
			opts.DefinedFns[f.Name] = true
		}
	}
	rep := &Report{}
	for _, a := range autos {
		rep.Results = append(rep.Results, checkOne(mod, a, opts))
	}
	return rep
}

// CheckSources runs the front end (parse, compile, analyse, link) and then
// Check — the path cmd/tesla-check and analyse.LintProgram share. The
// linked module is the raw, uninstrumented program.
func CheckSources(sources map[string]string, entry string) (*Report, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)

	var files []*csub.File
	for _, n := range names {
		f, err := csub.Parse(n, sources[n])
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	ctx, err := compiler.NewContext(files...)
	if err != nil {
		return nil, err
	}
	var mods []*ir.Module
	var manifests []*manifest.File
	for _, f := range files {
		u, err := compiler.CompileFile(f, ctx)
		if err != nil {
			return nil, err
		}
		mods = append(mods, u.Module)
		manifests = append(manifests, manifest.FromAssertions(f.Name, u.Assertions))
	}
	combined, err := manifest.Combine(manifests...)
	if err != nil {
		return nil, err
	}
	autos, err := combined.Compile()
	if err != nil {
		return nil, err
	}
	prog, err := ir.Link("program", mods...)
	if err != nil {
		return nil, err
	}
	return Check(prog, autos, Options{Entry: entry, DefinedFns: ctx.DefinedFns()}), nil
}

// sortedReasons normalises a reason set for deterministic output. Every
// reason and proof line the checker emits is routed through here so the
// CLI (and its golden files) never observe map-iteration order.
func sortedReasons(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// sortObligations is sortedReasons' structured counterpart: obligations
// leave the checker ordered by kind, location, assumption and text.
func sortObligations(set map[string]Obligation) []Obligation {
	out := make([]Obligation, 0, len(set))
	for _, o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id() < out[j].id() })
	return out
}
