package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Context selects where automata state lives (§3.2). In the thread-local
// context event serialisation is implicit and the store needs no locking;
// the global context serialises events across threads with an explicit lock,
// committing to an event order corresponding to an actual program behaviour.
type Context int

const (
	// PerThread stores automata state per thread; no synchronisation.
	PerThread Context = iota
	// Global shares one store across threads behind a lock.
	Global
)

func (c Context) String() string {
	switch c {
	case PerThread:
		return "per-thread"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("Context(%d)", int(c))
	}
}

// classState holds a class's preallocated instance block within one store
// (the unsharded reference implementation; see shard.go for the lock-striped
// one).
type classState struct {
	cls *Class
	// insts is allocated once, at class registration, so that instance
	// bookkeeping never allocates on monitored code paths (§4.4.1: “In
	// the kernel we rely on preallocation to avoid dynamic allocation in
	// code paths that do not permit it”).
	insts []Instance
	live  int

	// pol is the class's supervision policy resolved against the store's
	// defaults at registration; quar and health are its degradation
	// state and accounting, all guarded by the store mutex.
	pol         classPolicy
	quar        quarState
	quarantined bool
	health      Health
	// birthClock stamps activations so EvictOldest picks the same victim
	// in both store implementations.
	birthClock uint64
}

// StoreOpts configures a Store beyond what NewStore exposes.
type StoreOpts struct {
	// Context selects per-thread or global state (§3.2).
	Context Context
	// Handler receives lifecycle notifications; nil discards them.
	Handler Handler
	// Shards selects the instance-store implementation. 0 (auto) uses the
	// sharded lock-striped store sized to GOMAXPROCS for the Global
	// context and the unsharded reference store for PerThread. 1 is the
	// escape hatch: the seed single-mutex store with linear scans, which
	// also serves as the reference model for the differential test
	// harness. Values ≥ 2 select the sharded store with that many
	// stripes, rounded up to a power of two and capped at 64.
	Shards int

	// Failure is the store-wide default failure action for classes whose
	// Class.Failure is FailDefault. Leaving it FailDefault preserves the
	// legacy behaviour: FailStop when Store.FailFast is set, else
	// FailReport.
	Failure FailureAction
	// Overflow is the store-wide default overflow policy (DropNew when
	// left OverflowDefault).
	Overflow OverflowPolicy
	// QuarantineAfter / RearmEvents / RearmAfter are store-wide defaults
	// for the QuarantineClass policy knobs (see the Class fields).
	QuarantineAfter int
	RearmEvents     int
	RearmAfter      time.Duration
	// HandlerPanicLimit quarantines the notification handler after this
	// many recovered panics (0 = DefaultHandlerPanicLimit).
	HandlerPanicLimit int
	// NoEngine disables the compiled transition engine (engine.go):
	// UpdateStatePlan and plan-carrying batch ops fall back to the
	// interpreted table-driven walk, making the store the executable
	// reference the engine differential harness compares against.
	NoEngine bool
	// AllocFail, when non-nil, is consulted before every instance-slot
	// allocation; returning true forces the allocation to fail as if the
	// class's block were exhausted. It is the fault-injection seam used
	// by internal/faultinject; it runs under store locks and must not
	// call back into the store.
	AllocFail func(cls *Class) bool
	// Clock overrides the time source for timed quarantine re-arm
	// (deterministic tests); nil uses time.Now.
	Clock func() time.Time
}

// Store manages automata instances for one context. The zero value is not
// usable; construct with NewStore or NewStoreOpts.
type Store struct {
	mu      sync.Mutex
	context Context
	hv      atomic.Pointer[handlerCell]

	// nshards == 0 selects the unsharded reference implementation below;
	// otherwise state lives in the sharded table (shard.go).
	nshards int
	// noEngine pins this store to the interpreted walk (StoreOpts.NoEngine).
	noEngine bool
	classes  map[*Class]*classState
	// order preserves registration order for deterministic iteration.
	order []*classState
	stab  atomic.Pointer[shardTable]

	// FailFast makes UpdateState return the first violation as an error
	// (fail-stop is TESLA's default, but it is configurable at run time).
	// Set it before the store is shared between threads. Classes whose
	// Failure is not FailDefault override it individually.
	FailFast bool

	// sv is the resolved supervision configuration (supervise.go).
	sv supervision
	// Handler-isolation state: recovered panic count, quarantine flag,
	// dropped-notification count, and the per-class panic attribution.
	hpanics      atomic.Uint64
	hquar        atomic.Bool
	notesDropped atomic.Uint64
	panicMu      sync.Mutex
	panicBy      map[string]uint64
}

// handlerCell boxes the handler so it can be swapped atomically: the sharded
// store reads it outside any store-wide lock.
type handlerCell struct{ h Handler }

// shardTable is the registration snapshot of a sharded store, replaced
// copy-on-write under Store.mu so the event hot path can read it lock-free.
type shardTable struct {
	m     map[*Class]*shardedClass
	order []*shardedClass
}

// NewStore creates a store for the given context. handler may be nil, in
// which case notifications are discarded. The Global context defaults to the
// sharded lock-striped implementation; use NewStoreOpts with Shards: 1 for
// the single-mutex reference store.
func NewStore(ctx Context, handler Handler) *Store {
	return NewStoreOpts(StoreOpts{Context: ctx, Handler: handler})
}

// NewStoreOpts creates a store from explicit options.
func NewStoreOpts(o StoreOpts) *Store {
	if o.Handler == nil {
		o.Handler = NopHandler{}
	}
	s := &Store{context: o.Context, noEngine: o.NoEngine}
	s.sv.init(o)
	s.hv.Store(&handlerCell{h: o.Handler})
	switch {
	case o.Shards == 1:
		// The seed single-mutex store.
	case o.Shards == 0 && o.Context != Global:
		// Per-thread stores see no concurrency; the reference store's
		// simplicity wins by default.
	default:
		n := o.Shards
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.nshards = shardCount(n)
		s.stab.Store(&shardTable{})
		return s
	}
	s.classes = make(map[*Class]*classState)
	return s
}

// shardCount clamps and rounds a shard request to a power of two.
func shardCount(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxStoreShards {
		n = maxStoreShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Context returns the store's context.
func (s *Store) Context() Context { return s.context }

// Shards returns the number of lock stripes: 1 for the unsharded reference
// implementation.
func (s *Store) Shards() int {
	if s.nshards == 0 {
		return 1
	}
	return s.nshards
}

// Sharded reports whether the store uses the lock-striped implementation.
func (s *Store) Sharded() bool { return s.nshards > 0 }

// EngineEnabled reports whether UpdateStatePlan runs compiled engine bodies
// (false for stores built with StoreOpts.NoEngine, which take the
// interpreted reference walk instead).
func (s *Store) EngineEnabled() bool { return !s.noEngine }

// Handler returns the store's notification handler.
func (s *Store) Handler() Handler { return s.hv.Load().h }

// SetHandler replaces the notification handler.
func (s *Store) SetHandler(h Handler) {
	if h == nil {
		h = NopHandler{}
	}
	s.hv.Store(&handlerCell{h: h})
}

func (s *Store) lock() {
	if s.context == Global {
		s.mu.Lock()
	}
}

func (s *Store) unlock() {
	if s.context == Global {
		s.mu.Unlock()
	}
}

// Register adds a class to the store, preallocating its instance block.
// Registering the same class twice is a no-op.
func (s *Store) Register(cls *Class) {
	if s.nshards > 0 {
		s.registerSharded(cls, nil)
		return
	}
	s.lock()
	defer s.unlock()
	if _, ok := s.classes[cls]; ok {
		return
	}
	cs := &classState{
		cls:   cls,
		insts: make([]Instance, cls.limit()),
		pol:   s.sv.resolve(cls),
	}
	s.classes[cls] = cs
	s.order = append(s.order, cs)
}

// RegisterWithStorage registers cls using caller-supplied instance storage
// instead of allocating its own — the §7 extension ("performance
// improvements could be gained by allowing users to delegate space within
// data structures of the instrumented program; this would naturally lead to
// per-object assertions, allowing assertions to be more easily tied to an
// object's lifetime"). The slice's length is the class's instance limit for
// this store; the caller must not touch it while the class is registered.
// Re-registering a class replaces its storage and expunges live instances.
func (s *Store) RegisterWithStorage(cls *Class, storage []Instance) {
	if len(storage) == 0 {
		s.Register(cls)
		return
	}
	for i := range storage {
		storage[i] = Instance{}
	}
	if s.nshards > 0 {
		s.registerSharded(cls, storage)
		return
	}
	s.lock()
	defer s.unlock()
	if cs, ok := s.classes[cls]; ok {
		// Replacing storage resets the class wholesale, like the sharded
		// store's re-registration: supervision state starts over too.
		cs.insts = storage
		cs.live = 0
		cs.clearQuarantine()
		cs.health = Health{}
		cs.birthClock = 0
		cs.pol = s.sv.resolve(cls)
		return
	}
	cs := &classState{cls: cls, insts: storage, pol: s.sv.resolve(cls)}
	s.classes[cls] = cs
	s.order = append(s.order, cs)
}

// Registered reports whether cls has been registered.
func (s *Store) Registered(cls *Class) bool {
	if s.nshards > 0 {
		return s.shardedClassOf(cls) != nil
	}
	s.lock()
	defer s.unlock()
	_, ok := s.classes[cls]
	return ok
}

// Classes returns registered classes in registration order.
func (s *Store) Classes() []*Class {
	if s.nshards > 0 {
		t := s.stab.Load()
		out := make([]*Class, len(t.order))
		for i, sc := range t.order {
			out[i] = sc.cls
		}
		return out
	}
	s.lock()
	defer s.unlock()
	out := make([]*Class, len(s.order))
	for i, cs := range s.order {
		out[i] = cs.cls
	}
	return out
}

// Instances returns a snapshot of the live instances of cls, primarily for
// introspection and tests. The returned values are copies: later UpdateState
// calls mutate the store's preallocated slots in place, and a snapshot that
// aliased them would change under the caller mid-inspection.
func (s *Store) Instances(cls *Class) []Instance {
	if s.nshards > 0 {
		return s.instancesSharded(cls)
	}
	s.lock()
	defer s.unlock()
	cs := s.classes[cls]
	if cs == nil || cs.quarantined {
		return nil
	}
	var out []Instance
	for i := range cs.insts {
		if cs.insts[i].Active {
			inst := cs.insts[i] // copy, not alias: the slot is reused
			out = append(out, inst)
		}
	}
	return out
}

// LiveCount returns the number of active instances of cls.
func (s *Store) LiveCount(cls *Class) int {
	if s.nshards > 0 {
		sc := s.shardedClassOf(cls)
		if sc == nil || sc.quarantined.Load() || sc.needsFlush.Load() {
			return 0
		}
		return int(sc.live.Load())
	}
	s.lock()
	defer s.unlock()
	cs := s.classes[cls]
	if cs == nil || cs.quarantined {
		return 0
	}
	return cs.live
}

// Reset expunges all instances of every class, as after a cleanup event.
// Quarantined classes are silently returned to service.
func (s *Store) Reset() {
	if s.nshards > 0 {
		t := s.stab.Load()
		for _, sc := range t.order {
			s.lockShards(sc, sc.allMask())
			sc.expungeLocked()
			sc.clearQuarantine()
			s.unlockShards(sc, sc.allMask())
		}
		return
	}
	s.lock()
	defer s.unlock()
	for _, cs := range s.order {
		cs.expunge()
		cs.clearQuarantine()
	}
}

// ResetClass expunges all instances of one class and lifts any quarantine.
func (s *Store) ResetClass(cls *Class) {
	if s.nshards > 0 {
		if sc := s.shardedClassOf(cls); sc != nil {
			s.lockShards(sc, sc.allMask())
			sc.expungeLocked()
			sc.clearQuarantine()
			s.unlockShards(sc, sc.allMask())
		}
		return
	}
	s.lock()
	defer s.unlock()
	if cs := s.classes[cls]; cs != nil {
		cs.expunge()
		cs.clearQuarantine()
	}
}

func (cs *classState) expunge() {
	for i := range cs.insts {
		cs.insts[i].Active = false
	}
	cs.live = 0
}

// clearQuarantine silently resets quarantine state (Reset/ResetClass and
// storage replacement). The store mutex must be held.
func (cs *classState) clearQuarantine() {
	cs.quar = quarState{}
	cs.quarantined = false
}

// findExact returns the active instance with exactly the given key, or nil.
func (cs *classState) findExact(key Key) *Instance {
	for i := range cs.insts {
		if cs.insts[i].Active && cs.insts[i].Key == key {
			return &cs.insts[i]
		}
	}
	return nil
}

// alloc claims a free preallocated slot, or returns nil on overflow. The
// live count is left untouched until the caller commits the slot: an error
// path between alloc and activation must not leak the count.
func (cs *classState) alloc() *Instance {
	for i := range cs.insts {
		if !cs.insts[i].Active {
			return &cs.insts[i]
		}
	}
	return nil
}

// commit accounts a slot claimed by alloc once it is activated.
func (cs *classState) commit() {
	cs.live++
}
