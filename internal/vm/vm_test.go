package vm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tesla/internal/compiler"
	"tesla/internal/core"
	"tesla/internal/ir"
)

// run compiles and executes a csub program.
func run(t *testing.T, src string, entry string, args ...int64) (int64, *VM) {
	t.Helper()
	_, prog, err := compiler.Compile(map[string]string{"t.c": src})
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	ret, err := vm.Run(entry, args...)
	if err != nil {
		t.Fatal(err)
	}
	return ret, vm
}

func TestArithmeticAndControlFlow(t *testing.T) {
	cases := []struct {
		src  string
		args []int64
		want int64
	}{
		{`int main(int a, int b) { return a + b * 2; }`, []int64{3, 4}, 11},
		{`int main(int a) { if (a > 5) { return 1; } return 0; }`, []int64{7}, 1},
		{`int main(int a) { if (a > 5) { return 1; } return 0; }`, []int64{3}, 0},
		{`int main(int n) {
			int acc = 0;
			int i = 0;
			while (i < n) { acc += i; i++; }
			return acc;
		}`, []int64{10}, 45},
		{`int main(int a) { return -a; }`, []int64{5}, -5},
		{`int main(int a) { return !a; }`, []int64{0}, 1},
		{`int main(int a, int b) { return a % b; }`, []int64{17, 5}, 2},
		{`int main(int a, int b) { return a / b; }`, []int64{17, 5}, 3},
		{`int main(int a) { return a & 6 | 1; }`, []int64{5}, 5},
		{`int main(int a) { return a ^ 3; }`, []int64{5}, 6},
		// Short-circuit semantics: the RHS must not run.
		{`int boom(int x) { return x / 0; }
		  int main(int a) { if (a > 0 || boom(a)) { return 1; } return 0; }`, []int64{1}, 1},
		{`int boom(int x) { return x / 0; }
		  int main(int a) { if (a > 0 && boom(a)) { return 1; } return 0; }`, []int64{-1}, 0},
	}
	for i, c := range cases {
		got, _ := run(t, c.src, "main", c.args...)
		if got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
}

func TestStructsAndHeap(t *testing.T) {
	src := `
struct node { int v; struct node *next; };
int main(int n) {
	struct node *head = alloc(node);
	head->v = 1;
	struct node *second = alloc(node);
	second->v = 2;
	head->next = second;
	head->next->v += 10;
	return head->v + head->next->v;
}
`
	got, _ := run(t, src, "main", 0)
	if got != 13 {
		t.Fatalf("got %d", got)
	}
}

func TestFunctionPointers(t *testing.T) {
	src := `
struct ops { int (*fn)(int); };
int double_it(int x) { return x * 2; }
int triple_it(int x) { return x * 3; }
int main(int which) {
	struct ops *o = alloc(ops);
	if (which) { o->fn = double_it; } else { o->fn = triple_it; }
	return o->fn(10);
}
`
	if got, _ := run(t, src, "main", 1); got != 20 {
		t.Fatalf("double: %d", got)
	}
	if got, _ := run(t, src, "main", 0); got != 30 {
		t.Fatalf("triple: %d", got)
	}
}

func TestGlobalsAndRecursion(t *testing.T) {
	src := `
int calls = 0;
int fib(int n) {
	calls += 1;
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main(int n) {
	int r = fib(n);
	return r * 1000 + calls;
}
`
	got, _ := run(t, src, "main", 10)
	if got/1000 != 55 {
		t.Fatalf("fib(10) = %d", got/1000)
	}
	if got%1000 != 177 {
		t.Fatalf("calls = %d", got%1000)
	}
}

func TestPrintBuiltin(t *testing.T) {
	_, prog, err := compiler.Compile(map[string]string{"t.c": `
int main() { print(42); print(1, 2); return 0; }`})
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	var buf bytes.Buffer
	vm.Out = &buf
	if _, err := vm.Run("main"); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "42\n1 2\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`int main(int a) { return a / 0; }`, "division by zero"},
		{`int main(int a) { return a % 0; }`, "modulo by zero"},
		{`struct s { int v; };
		  int main() { struct s *p = alloc(s); p->v = 0; return p->v / p->v; }`, "division"},
		{`int main() { return missing_fn(1); }`, "undefined function"},
		{`int main(int a) { int r = a(1); return r; }`, "bad pointer"},
		{`int rec(int n) { return rec(n); } int main() { return rec(1); }`, "depth"},
	}
	for i, c := range cases {
		_, prog, err := compiler.Compile(map[string]string{"t.c": c.src})
		if err != nil {
			t.Fatalf("case %d compile: %v", i, err)
		}
		vm := New(prog)
		_, err = vm.Run("main", 1)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want %q", i, err, c.want)
		}
	}
}

func TestNullDereference(t *testing.T) {
	src := `
struct s { int v; };
int main() {
	struct s *p = alloc(s);
	struct s *q = 0;
	return q->v;
}
`
	_, prog, err := compiler.Compile(map[string]string{"t.c": src})
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	if _, err := vm.Run("main"); err == nil {
		t.Fatal("null dereference should fail")
	}
}

func TestStepLimit(t *testing.T) {
	_, prog, err := compiler.Compile(map[string]string{"t.c": `
int main() { while (1) { } return 0; }`})
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	vm.MaxSteps = 10_000
	if _, err := vm.Run("main"); err != ErrMaxSteps {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownEntry(t *testing.T) {
	_, prog, _ := compiler.Compile(map[string]string{"t.c": `int main() { return 0; }`})
	vm := New(prog)
	if _, err := vm.Run("nope"); err == nil {
		t.Fatal("expected unknown-function error")
	}
}

func TestMemoryInterface(t *testing.T) {
	src := `
struct s { int v; };
int stash = 0;
int main() {
	struct s *p = alloc(s);
	p->v = 77;
	stash = p;
	return p;
}
`
	_, prog, err := compiler.Compile(map[string]string{"t.c": src})
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	addr, err := vm.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := vm.Load(coreValue(addr))
	if !ok || v != 77 {
		t.Fatalf("Load(%#x) = %d, %v", addr, v, ok)
	}
	if _, ok := vm.Load(0); ok {
		t.Fatal("null load should fail")
	}
}

// TestQuickOptimizeEquivalence: the post-instrumentation optimiser must not
// change program results.
func TestQuickOptimizeEquivalence(t *testing.T) {
	src := `
int helper(int a, int b) {
	int unused = a * 99;
	int t = a + b;
	return t % 1009;
}
int main(int a, int b) {
	int x = helper(a, b);
	int y = helper(b, a);
	int dead = x * y;
	if (x > y) { return x - y; }
	return y - x + helper(a, a);
}
`
	_, prog, err := compiler.Compile(map[string]string{"t.c": src})
	if err != nil {
		t.Fatal(err)
	}
	opt := prog.Clone()
	ir.Optimize(opt)

	rng := rand.New(rand.NewSource(99))
	f := func() bool {
		a, b := rng.Int63n(10000), rng.Int63n(10000)
		r1, err1 := New(prog).Run("main", a, b)
		r2, err2 := New(opt).Run("main", a, b)
		return err1 == nil && err2 == nil && r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	// And the optimiser actually removed something.
	if count(opt) >= count(prog) {
		t.Fatalf("optimizer removed nothing: %d vs %d", count(opt), count(prog))
	}
}

func count(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

func coreValue(v int64) core.Value { return core.Value(v) }

func TestIndexedAccess(t *testing.T) {
	// p[i] addresses the i-th word of an allocation; stores and loads
	// round-trip through the heap, including compound assignment.
	src := `
struct triple { int a; int b; int c; };
int main(int i) {
	struct triple *p = alloc(triple);
	p[0] = 5;
	p[1] = 7;
	p[2] = p[0] + p[1];
	p[i] += 10;
	p[0]++;
	return p[0] + p[1] + p[2];
}
`
	got, _ := run(t, src, "main", 1)
	if got != 35 {
		t.Fatalf("got %d, want 35", got)
	}
	// Index stores alias the named fields: p[1] is p->b.
	src2 := `
struct triple { int a; int b; int c; };
int main(int x) {
	struct triple *p = alloc(triple);
	p->b = x;
	p[1] += 1;
	return p->b;
}
`
	got2, _ := run(t, src2, "main", 41)
	if got2 != 42 {
		t.Fatalf("got %d, want 42", got2)
	}
}

func TestIndexOutOfBounds(t *testing.T) {
	src := `
struct pair { int a; int b; };
int main(int i) {
	struct pair *p = alloc(pair);
	return p[i];
}
`
	_, prog, err := compiler.Compile(map[string]string{"t.c": src})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog).Run("main", 99999); err == nil {
		t.Fatal("out-of-range index must be a VM error")
	}
}
