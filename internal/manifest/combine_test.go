package manifest

import (
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"strings"
	"testing"

	"tesla/internal/spec"
)

// combinedPin is the sha256 of the encoded manifest produced by combining
// the three fragments below, in ANY order. The build cache keys automata
// and instrumentation artifacts on these bytes, so this hash may only
// change with a deliberate manifest-format change (bump keyVersion in
// internal/build when it does).
const combinedPin = "f05d63eae5e72181da7b76f0b4f6963e838450d13ea6e34ec724eba6f04c89c5"

func fragments() []*File {
	return []*File{
		FromAssertions("net/socket.c", []*spec.Assertion{
			spec.SyscallPreviously("net/socket.c:12",
				spec.Call("mac_socket_check_poll", spec.AnyPtr(), spec.Var("so")).ReturnsInt(0)),
		}),
		FromAssertions("kern/audit.c", []*spec.Assertion{
			spec.Within("kern/audit.c:40", "trap_pfault",
				spec.Eventually(spec.Call("audit", spec.Var("vp")))),
			spec.SyscallPreviously("kern/audit.c:77",
				spec.Call("priv_check").ReturnsInt(0)),
		}),
		FromAssertions("vm/fault.c", nil),
	}
}

func encoded(t *testing.T, f *File) string {
	t.Helper()
	var sb strings.Builder
	if err := f.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestCombineOrderInsensitive: combining the same per-file fragments in any
// argument order yields a byte-identical program manifest, pinned by hash.
// This is what lets the build graph cache-hit the combine stage no matter
// which order the analyse stages finished in.
func TestCombineOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var want string
	for trial := 0; trial < 20; trial++ {
		frags := fragments()
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		combined, err := Combine(frags...)
		if err != nil {
			t.Fatal(err)
		}
		got := encoded(t, combined)
		if trial == 0 {
			want = got
		} else if got != want {
			t.Fatalf("trial %d: combine is order-sensitive:\n%s\n---\n%s", trial, want, got)
		}
	}
	sum := sha256.Sum256([]byte(want))
	if got := hex.EncodeToString(sum[:]); got != combinedPin {
		t.Errorf("combined manifest hash = %s, want pinned %s\n(encoding change? bump keyVersion in internal/build and repin)", got, combinedPin)
	}
	// Entries must be grouped by source name order, not argument order.
	combined, _ := Combine(fragments()...)
	var names []string
	for _, e := range combined.Assertions {
		names = append(names, e.Name)
	}
	want2 := "kern/audit.c:40,kern/audit.c:77,net/socket.c:12"
	if got := strings.Join(names, ","); got != want2 {
		t.Errorf("entry order %s, want %s", got, want2)
	}
}
