package dtrace

import (
	"reflect"
	"strings"
	"testing"

	"tesla/internal/core"
)

func TestAggregation(t *testing.T) {
	a := NewAggregation("test")
	a.Add("x", 1)
	a.Add("y", 5)
	a.Add("x", 2)
	if a.Count("x") != 3 || a.Count("y") != 5 || a.Count("z") != 0 {
		t.Fatal("counts wrong")
	}
	if got := a.Keys(); !reflect.DeepEqual(got, []string{"y", "x"}) {
		t.Fatalf("keys = %v", got)
	}
	var sb strings.Builder
	a.Print(&sb)
	if !strings.Contains(sb.String(), "y") {
		t.Fatal("print missing key")
	}
}

func TestQuantize(t *testing.T) {
	var q Quantize
	for _, v := range []uint64{1, 2, 3, 4, 100, 100, 1000} {
		q.Add(v)
	}
	if q.Bucket(1) != 1 { // value 1
		t.Fatalf("bucket(1) = %d", q.Bucket(1))
	}
	if q.Bucket(2) != 2 { // values 2, 3
		t.Fatalf("bucket(2) = %d", q.Bucket(2))
	}
	if q.Bucket(7) != 2 { // 100 twice
		t.Fatalf("bucket(7) = %d", q.Bucket(7))
	}
	if q.Bucket(-1) != 0 || q.Bucket(99) != 0 {
		t.Fatal("out-of-range buckets")
	}
	var sb strings.Builder
	q.Print(&sb)
	if !strings.Contains(sb.String(), "@") {
		t.Fatal("histogram bars missing")
	}
}

func TestHandlerAggregates(t *testing.T) {
	stack := "amd64_syscall>sopoll"
	h := NewHandler(func() string { return stack })
	cls := &core.Class{Name: "a", States: 3, Limit: 4}
	s := core.NewStore(core.PerThread, h)
	s.Register(cls)

	enter := core.TransitionSet{{From: 0, To: 1, Flags: core.TransInit}}
	exit := core.TransitionSet{{From: 1, To: 2, Flags: core.TransCleanup}}
	s.UpdateState(cls, "enter", 0, core.AnyKey, enter)
	s.UpdateState(cls, "exit", 0, core.AnyKey, exit)
	// A required event with a live instance that cannot accept it.
	s.UpdateState(cls, "enter", 0, core.AnyKey, enter)
	s.UpdateState(cls, "site", core.SymRequired, core.NewKey(1),
		core.TransitionSet{{From: 9, To: 9}})

	if h.Transitions.Count("a @ 0->1 @ enter @ "+stack) != 2 {
		t.Fatalf("transition agg: %v", h.Transitions.Keys())
	}
	if h.Accepts.Count("a @ "+stack) != 1 {
		t.Fatal("accept agg")
	}
	if h.Failures.Count("a @ no-instance @ "+stack) != 1 {
		t.Fatalf("failure agg: %v", h.Failures.Keys())
	}

	var sb strings.Builder
	h.Report(&sb)
	for _, want := range []string{"transition counts", "acceptances", "failures", stack} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestHandlerWithoutStack(t *testing.T) {
	h := NewHandler(nil)
	cls := &core.Class{Name: "b", States: 2, Limit: 2}
	s := core.NewStore(core.PerThread, h)
	s.Register(cls)
	s.UpdateState(cls, "e", 0, core.AnyKey, core.TransitionSet{{From: 0, To: 1, Flags: core.TransInit}})
	if h.Transitions.Count("b @ 0->1 @ e") != 1 {
		t.Fatalf("keys = %v", h.Transitions.Keys())
	}
}
