package core

import (
	"strings"
	"testing"
)

// fig9Class builds the automaton of figure 9:
//
//	TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)
//
// States: 0 pre-init, 1 in-syscall (∗), 2 check done (so), 4 assertion
// passed (so). Cleanup (syscall exit) is legal from states 1, 2 and 4.
func fig9Class() *Class {
	return &Class{
		Name:        "mac.c:42",
		Description: "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)",
		States:      5,
		Limit:       8,
	}
}

const (
	symSyscallEnter = "call(amd64_syscall)"
	symMACCheck     = "mac_socket_check_poll(∗,so)==0"
	symAssert       = "«assertion»"
	symSyscallExit  = "returnfrom(amd64_syscall)"
)

func fig9Sets() (enter, check, site, exit TransitionSet) {
	enter = TransitionSet{{From: 0, To: 1, Flags: TransInit}}
	check = TransitionSet{
		{From: 1, To: 2, KeyMask: 1},
		{From: 2, To: 2, KeyMask: 1},
	}
	site = TransitionSet{
		{From: 2, To: 4, KeyMask: 1},
		{From: 4, To: 4, KeyMask: 1},
	}
	exit = TransitionSet{
		{From: 1, To: 3, Flags: TransCleanup},
		{From: 2, To: 3, Flags: TransCleanup},
		{From: 4, To: 3, Flags: TransCleanup},
	}
	return
}

func TestFig9Lifecycle(t *testing.T) {
	cls := fig9Class()
	h := NewCountingHandler()
	s := NewStore(PerThread, h)
	s.Register(cls)
	enter, check, site, exit := fig9Sets()

	// «init»: entering the syscall creates (∗) in state 1.
	if err := s.UpdateState(cls, symSyscallEnter, 0, AnyKey, enter); err != nil {
		t.Fatal(err)
	}
	insts := s.Instances(cls)
	if len(insts) != 1 || insts[0].State != 1 || insts[0].Key != AnyKey {
		t.Fatalf("after init: %+v", insts)
	}

	// Clone: a successful check on so=7 forks (7) into state 2; (∗) stays.
	so := NewKey(7)
	if err := s.UpdateState(cls, symMACCheck, 0, so, check); err != nil {
		t.Fatal(err)
	}
	insts = s.Instances(cls)
	if len(insts) != 2 {
		t.Fatalf("after clone: %+v", insts)
	}
	var star, seven *Instance
	for i := range insts {
		switch insts[i].Key {
		case AnyKey:
			star = &insts[i]
		case so:
			seven = &insts[i]
		}
	}
	if star == nil || star.State != 1 {
		t.Fatalf("parent (∗) wrong: %+v", insts)
	}
	if seven == nil || seven.State != 2 {
		t.Fatalf("clone (7) wrong: %+v", insts)
	}

	// A second distinct value forks another clone.
	if err := s.UpdateState(cls, symMACCheck, 0, NewKey(9), check); err != nil {
		t.Fatal(err)
	}
	if n := s.LiveCount(cls); n != 3 {
		t.Fatalf("after second clone: live=%d", n)
	}

	// Update: assertion site with so=7 advances (7) to state 4.
	if err := s.UpdateState(cls, symAssert, SymRequired, so, site); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range s.Instances(cls) {
		if in.Key == so && in.State == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("assertion did not advance (7): %+v", s.Instances(cls))
	}

	// «cleanup»: syscall exit accepts all and expunges.
	if err := s.UpdateState(cls, symSyscallExit, 0, AnyKey, exit); err != nil {
		t.Fatal(err)
	}
	if n := s.LiveCount(cls); n != 0 {
		t.Fatalf("after cleanup: live=%d", n)
	}
	if len(h.Violations()) != 0 {
		t.Fatalf("unexpected violations: %v", h.Violations())
	}
	if h.Accepts(cls.Name) != 3 {
		t.Fatalf("accepts = %d, want 3", h.Accepts(cls.Name))
	}
}

func TestFig9ErrorNoInstance(t *testing.T) {
	cls := fig9Class()
	h := NewCountingHandler()
	s := NewStore(PerThread, h)
	s.FailFast = true
	s.Register(cls)
	enter, check, site, _ := fig9Sets()

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.UpdateState(cls, symSyscallEnter, 0, AnyKey, enter))
	must(s.UpdateState(cls, symMACCheck, 0, NewKey(7), check))

	// Assertion site reached with so=3: mac_socket_check_poll(∗,3) never
	// returned 0, so no instance can be found to update (fig. 9 “Error”).
	err := s.UpdateState(cls, symAssert, SymRequired, NewKey(3), site)
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("want *Violation, got %v", err)
	}
	if v.Kind != VerdictNoInstance {
		t.Fatalf("kind = %v", v.Kind)
	}
	if !strings.Contains(v.Error(), "mac_socket_check_poll") {
		t.Fatalf("violation should cite assertion text: %s", v.Error())
	}
	if len(h.Violations()) != 1 {
		t.Fatalf("handler saw %d violations", len(h.Violations()))
	}
}

func TestEventuallyIncompleteAtCleanup(t *testing.T) {
	// eventually(audit(x)): after the assertion site, audit must happen
	// before the bound exits. State 1 = in bound, 2 = past site (no
	// cleanup edge!), 3 = audited.
	cls := &Class{Name: "audit", Description: "eventually(audit(x))", States: 5, Limit: 4}
	h := NewCountingHandler()
	s := NewStore(PerThread, h)
	s.Register(cls)

	// The assertion site binds x from the local scope (§4.2), so the site
	// event carries the key; audit(x) then updates the specific instance
	// in place. The (∗) parent left in state 1 exits via the bypass edge.
	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit}}
	site := TransitionSet{{From: 1, To: 2, KeyMask: 1}}
	audit := TransitionSet{{From: 2, To: 3, KeyMask: 1}}
	exit := TransitionSet{
		{From: 1, To: 4, Flags: TransCleanup},
		{From: 3, To: 4, Flags: TransCleanup},
	}

	// Path 1: obligation satisfied.
	s.UpdateState(cls, "enter", 0, AnyKey, enter)
	s.UpdateState(cls, "site", SymRequired, NewKey(1), site)
	s.UpdateState(cls, "audit", 0, NewKey(1), audit)
	s.UpdateState(cls, "exit", 0, AnyKey, exit)
	if len(h.Violations()) != 0 {
		t.Fatalf("satisfied path reported violations: %v", h.Violations())
	}

	// Path 2: site reached but audit never happens before cleanup.
	s.UpdateState(cls, "enter", 0, AnyKey, enter)
	s.UpdateState(cls, "site", SymRequired, NewKey(1), site)
	s.UpdateState(cls, "exit", 0, AnyKey, exit)
	vs := h.Violations()
	if len(vs) != 1 || vs[0].Kind != VerdictIncomplete {
		t.Fatalf("want one incomplete violation, got %v", vs)
	}
	if s.LiveCount(cls) != 0 {
		t.Fatal("cleanup must expunge even failing instances")
	}

	// Path 3: bound entered and exited without touching the site — the
	// bypass cleanup edge from state 1 makes that legal.
	s.UpdateState(cls, "enter", 0, AnyKey, enter)
	s.UpdateState(cls, "exit", 0, AnyKey, exit)
	if len(h.Violations()) != 1 {
		t.Fatalf("bypass path must not add violations: %v", h.Violations())
	}
}

func TestStrictViolation(t *testing.T) {
	cls := &Class{Name: "strict", Description: "strict ordering", States: 3, Limit: 4}
	h := NewCountingHandler()
	s := NewStore(PerThread, h)
	s.Register(cls)

	s.UpdateState(cls, "enter", 0, AnyKey, TransitionSet{{From: 0, To: 1, Flags: TransInit}})
	// Event B is only legal from state 2; in strict mode observing it in
	// state 1 is a violation and deactivates the instance.
	s.UpdateState(cls, "B", SymStrict, AnyKey, TransitionSet{{From: 2, To: 2}})
	vs := h.Violations()
	if len(vs) != 1 || vs[0].Kind != VerdictBadTransition {
		t.Fatalf("want bad-transition, got %v", vs)
	}
	if s.LiveCount(cls) != 0 {
		t.Fatal("strict violation should deactivate the instance")
	}
}

func TestNonStrictIgnoresIrrelevantEvent(t *testing.T) {
	cls := &Class{Name: "lax", States: 3, Limit: 4}
	h := NewCountingHandler()
	s := NewStore(PerThread, h)
	s.Register(cls)

	s.UpdateState(cls, "enter", 0, AnyKey, TransitionSet{{From: 0, To: 1, Flags: TransInit}})
	s.UpdateState(cls, "B", 0, AnyKey, TransitionSet{{From: 2, To: 2}})
	if len(h.Violations()) != 0 {
		t.Fatalf("non-strict must ignore: %v", h.Violations())
	}
	if s.LiveCount(cls) != 1 {
		t.Fatal("instance should survive")
	}
}

func TestEventsIgnoredBeforeInit(t *testing.T) {
	cls := &Class{Name: "preinit", States: 3, Limit: 4}
	h := NewCountingHandler()
	s := NewStore(PerThread, h)
	s.Register(cls)

	// Non-init, non-required event before any «init» is ignored.
	s.UpdateState(cls, "check", 0, NewKey(5), TransitionSet{{From: 1, To: 2, KeyMask: 1}})
	if s.LiveCount(cls) != 0 || len(h.Violations()) != 0 {
		t.Fatalf("pre-init event must be ignored: live=%d, v=%v", s.LiveCount(cls), h.Violations())
	}
}

func TestInitIsIdempotentPerKey(t *testing.T) {
	cls := &Class{Name: "dup", States: 3, Limit: 4}
	s := NewStore(PerThread, nil)
	s.Register(cls)
	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit}}

	s.UpdateState(cls, "enter", 0, AnyKey, enter)
	s.UpdateState(cls, "enter", 0, AnyKey, enter)
	if n := s.LiveCount(cls); n != 1 {
		t.Fatalf("duplicate init created %d instances", n)
	}
}

func TestCloneDedup(t *testing.T) {
	cls := fig9Class()
	s := NewStore(PerThread, nil)
	s.Register(cls)
	enter, check, _, _ := fig9Sets()

	s.UpdateState(cls, symSyscallEnter, 0, AnyKey, enter)
	s.UpdateState(cls, symMACCheck, 0, NewKey(7), check)
	s.UpdateState(cls, symMACCheck, 0, NewKey(7), check)
	// (∗) in state 1 and (7) in state 2 — the repeat check self-loops (7)
	// rather than cloning a duplicate.
	if n := s.LiveCount(cls); n != 2 {
		t.Fatalf("duplicate clone: live=%d", n)
	}
}

func TestOverflowReported(t *testing.T) {
	cls := &Class{Name: "tiny", States: 3, Limit: 2}
	h := NewCountingHandler()
	overflowed := 0
	s := NewStore(PerThread, MultiHandler{h, overflowCounter{&overflowed}})
	s.FailFast = true
	s.Register(cls)

	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit}}
	check := TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 2, KeyMask: 1}}
	s.UpdateState(cls, "enter", 0, AnyKey, enter)
	s.UpdateState(cls, "check", 0, NewKey(1), check) // fills slot 2
	err := s.UpdateState(cls, "check", 0, NewKey(2), check)
	if err != ErrOverflow {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
	if overflowed != 1 {
		t.Fatalf("overflow notifications = %d", overflowed)
	}
	// The store still functions: existing instances are intact.
	if n := s.LiveCount(cls); n != 2 {
		t.Fatalf("live=%d", n)
	}
}

type overflowCounter struct{ n *int }

func (overflowCounter) InstanceNew(*Class, *Instance)                        {}
func (overflowCounter) InstanceClone(*Class, *Instance, *Instance)           {}
func (overflowCounter) Transition(*Class, *Instance, uint32, uint32, string) {}
func (overflowCounter) Accept(*Class, *Instance)                             {}
func (overflowCounter) Fail(*Violation)                                      {}
func (c overflowCounter) Overflow(*Class, Key)                               { *c.n++ }
func (overflowCounter) Evict(*Class, *Instance)                              {}
func (overflowCounter) Quarantine(*Class, bool)                              {}

func TestImplicitRegistration(t *testing.T) {
	cls := &Class{Name: "implicit", States: 2, Limit: 2}
	s := NewStore(PerThread, nil)
	// No Register call: UpdateState registers on first use.
	s.UpdateState(cls, "enter", 0, AnyKey, TransitionSet{{From: 0, To: 1, Flags: TransInit}})
	if !s.Registered(cls) {
		t.Fatal("implicit registration failed")
	}
	if s.LiveCount(cls) != 1 {
		t.Fatal("instance not created")
	}
}

func TestResetAndResetClass(t *testing.T) {
	a := &Class{Name: "a", States: 2, Limit: 2}
	b := &Class{Name: "b", States: 2, Limit: 2}
	s := NewStore(PerThread, nil)
	s.Register(a)
	s.Register(b)
	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit}}
	s.UpdateState(a, "enter", 0, AnyKey, enter)
	s.UpdateState(b, "enter", 0, AnyKey, enter)

	s.ResetClass(a)
	if s.LiveCount(a) != 0 || s.LiveCount(b) != 1 {
		t.Fatal("ResetClass touched wrong class")
	}
	s.Reset()
	if s.LiveCount(b) != 0 {
		t.Fatal("Reset did not expunge")
	}
}

func TestGlobalStoreConcurrency(t *testing.T) {
	cls := &Class{Name: "conc", States: 3, Limit: 128}
	s := NewStore(Global, nil)
	s.Register(cls)
	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit}}
	check := TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 2, KeyMask: 1}}

	s.UpdateState(cls, "enter", 0, AnyKey, enter)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				s.UpdateState(cls, "check", 0, NewKey(Value(g*100+i%10)), check)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	// 8 goroutines × 10 distinct keys + the (∗) parent.
	if n := s.LiveCount(cls); n != 81 {
		t.Fatalf("live=%d, want 81", n)
	}
}

func TestClassString(t *testing.T) {
	cls := fig9Class()
	if got := cls.String(); !strings.Contains(got, "mac.c:42") {
		t.Errorf("String() = %q", got)
	}
	tr := Transition{From: 0, To: 1, Flags: TransInit | TransCleanup}
	if s := tr.String(); !strings.Contains(s, "init") || !strings.Contains(s, "cleanup") {
		t.Errorf("transition string = %q", s)
	}
}

func TestVerdictKindString(t *testing.T) {
	for k, want := range map[VerdictKind]string{
		VerdictAccept:        "accept",
		VerdictNoInstance:    "no-instance",
		VerdictBadTransition: "bad-transition",
		VerdictIncomplete:    "incomplete",
		VerdictKind(99):      "VerdictKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestContextString(t *testing.T) {
	if PerThread.String() != "per-thread" || Global.String() != "global" {
		t.Error("context strings wrong")
	}
	if Context(9).String() != "Context(9)" {
		t.Error("unknown context string wrong")
	}
}

// TestRegisterWithStorage: the §7 delegated-storage extension — instance
// state lives in a caller-owned slice (e.g. embedded in the monitored
// program's own object), tying automata to the object's lifetime.
func TestRegisterWithStorage(t *testing.T) {
	cls := &Class{Name: "delegated", States: 3}
	storage := make([]Instance, 2)
	s := NewStore(PerThread, nil)
	s.RegisterWithStorage(cls, storage)

	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit}}
	s.UpdateState(cls, "enter", 0, AnyKey, enter)
	if !storage[0].Active || storage[0].State != 1 {
		t.Fatalf("instance not in delegated storage: %+v", storage)
	}
	// The limit is the slice length: the third instance overflows.
	check := TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 2, KeyMask: 1}}
	s.FailFast = true
	s.UpdateState(cls, "check", 0, NewKey(1), check)
	if err := s.UpdateState(cls, "check", 0, NewKey(2), check); err != ErrOverflow {
		t.Fatalf("want overflow, got %v", err)
	}

	// Re-registering with fresh storage resets the class.
	fresh := make([]Instance, 4)
	s.RegisterWithStorage(cls, fresh)
	if s.LiveCount(cls) != 0 {
		t.Fatal("re-registration must expunge")
	}
	s.UpdateState(cls, "enter", 0, AnyKey, enter)
	if !fresh[0].Active {
		t.Fatal("fresh storage unused")
	}

	// Empty storage falls back to normal registration.
	cls2 := &Class{Name: "fallback", States: 3}
	s.RegisterWithStorage(cls2, nil)
	if !s.Registered(cls2) {
		t.Fatal("fallback registration failed")
	}
}

// TestPrintHandlerOutput: the userspace default handler (TESLA_DEBUG-style
// stderr traces) reports every lifecycle event.
func TestPrintHandlerOutput(t *testing.T) {
	var buf strings.Builder
	h := &PrintHandler{W: &buf}
	cls := fig9Class()
	s := NewStore(PerThread, h)
	s.Register(cls)
	enter, check, site, exit := fig9Sets()

	s.UpdateState(cls, symSyscallEnter, 0, AnyKey, enter)
	s.UpdateState(cls, symMACCheck, 0, NewKey(7), check)
	s.UpdateState(cls, symAssert, SymRequired, NewKey(7), site)
	s.UpdateState(cls, symAssert, SymRequired, NewKey(3), site)
	s.UpdateState(cls, symSyscallExit, 0, AnyKey, exit)

	// Overflow path.
	tiny := &Class{Name: "tiny", States: 3, Limit: 1}
	s.Register(tiny)
	s.UpdateState(tiny, "e", 0, AnyKey, TransitionSet{{From: 0, To: 1, Flags: TransInit}})
	s.UpdateState(tiny, "c", 0, NewKey(1),
		TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 2, KeyMask: 1}})

	out := buf.String()
	for _, want := range []string{
		"new instance (∗)",
		"clone (∗) -> (7)",
		"-> 1 on",                           // transition line
		"(7) accepted",                      // acceptance
		"no automaton instance matches (3)", // violation
		"overflow",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("print handler missing %q in:\n%s", want, out)
		}
	}
}
