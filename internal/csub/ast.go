// Package csub implements the C-subset front-end of the TESLA toolchain,
// standing in for Clang in the paper's pipeline (§4.1). It parses a small
// but representative slice of C — structs, pointers, function pointers,
// control flow, #define constants — plus TESLA assertion macros embedded in
// function bodies. The analyser (internal/analyse) extracts the assertions;
// the compiler (internal/compiler) lowers the rest to IR.
//
// Supported surface:
//
//	#define NAME 123
//	struct sock { int state; struct proto *p; int (*poll)(struct sock *); };
//	int counter = 0;
//	int f(int a, struct sock *s) {
//	    int x = a + 1;
//	    struct sock *t = alloc(sock);
//	    s->state = 3; s->state += 1; s->state++;
//	    s->poll = handler;            // function name as value
//	    x = s->poll(t);               // indirect call through field
//	    if (x > 0 && x != 7) { ... } else { ... }
//	    while (x) { x = x - 1; }
//	    print(x);                     // builtin
//	    TESLA_WITHIN(f, previously(check(s) == 0));
//	    return x;
//	}
package csub

// TypeKind classifies csub types.
type TypeKind int

const (
	// TInt is the 64-bit integer (C int/long collapsed).
	TInt TypeKind = iota
	// TPtr is a pointer to a named struct.
	TPtr
	// TFnPtr is a function-pointer field (signature unchecked).
	TFnPtr
)

// Type is a csub type. Every value is one machine word.
type Type struct {
	Kind   TypeKind
	Struct string // for TPtr
}

// File is one parsed compilation unit.
type File struct {
	Name    string
	Defines map[string]int64
	Structs []*StructDef
	Globals []*VarDecl
	Funcs   []*FuncDef
}

// StructDef declares a struct layout.
type StructDef struct {
	Name   string
	Fields []FieldDef
	Line   int
}

// FieldIndex returns the index of the named field, or -1.
func (s *StructDef) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FieldDef is one struct member.
type FieldDef struct {
	Name string
	Type Type
}

// VarDecl declares a global or local variable.
type VarDecl struct {
	Name string
	Type Type
	Init Expr // may be nil
	Line int
}

// FuncDef declares a function with a body.
type FuncDef struct {
	Name   string
	Params []VarDecl
	Body   []Stmt
	Line   int
}

// Stmt is a csub statement.
type Stmt interface{ stmtNode() }

// DeclStmt is a local variable declaration.
type DeclStmt struct{ Decl VarDecl }

// AssignOp is the assignment operator of an AssignStmt.
type AssignOp int

const (
	// Set is plain assignment (=).
	Set AssignOp = iota
	// Add is compound assignment (+=).
	Add
	// Incr is increment (++).
	Incr
)

// AssignStmt assigns to an identifier or struct field.
type AssignStmt struct {
	LHS  Expr // *Ident or *FieldExpr
	Op   AssignOp
	RHS  Expr // nil for Incr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	Val  Expr // may be nil
	Line int
}

// ExprStmt evaluates an expression for side effects (calls).
type ExprStmt struct{ X Expr }

// TeslaStmt is a TESLA assertion macro, captured verbatim for the analyser.
type TeslaStmt struct {
	Text string
	Line int
}

func (*DeclStmt) stmtNode()   {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*TeslaStmt) stmtNode()  {}

// Expr is a csub expression.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// Ident references a variable, function or #define constant.
type Ident struct {
	Name string
	Line int
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinExpr is a binary operation. Op is the C token (e.g. "==", "&&").
type BinExpr struct {
	Op   string
	X, Y Expr
}

// CallExpr calls Fn (an *Ident for direct calls, or any expression
// evaluating to a function pointer) with Args.
type CallExpr struct {
	Fn   Expr
	Args []Expr
	Line int
}

// FieldExpr is p->name.
type FieldExpr struct {
	X    Expr
	Name string
	Line int
}

// IndexExpr is p[i]: word-indexed access through a pointer.
type IndexExpr struct {
	X     Expr
	Index Expr
	Line  int
}

// AddrExpr is &x (function address or variable address).
type AddrExpr struct{ X Expr }

// AllocExpr is the builtin alloc(structName): heap-allocate a zeroed struct.
type AllocExpr struct {
	Struct string
	Line   int
}

func (*IntLit) exprNode()    {}
func (*Ident) exprNode()     {}
func (*UnaryExpr) exprNode() {}
func (*BinExpr) exprNode()   {}
func (*CallExpr) exprNode()  {}
func (*FieldExpr) exprNode() {}
func (*IndexExpr) exprNode() {}
func (*AddrExpr) exprNode()  {}
func (*AllocExpr) exprNode() {}
