package core

import (
	"math/rand"
	"reflect"
	"testing"

	"tesla/internal/faultinject"
)

// Compiled-vs-interpreted differential: a store driving events through the
// compiled engine bodies (UpdateStatePlan, plan-carrying batch ops) must be
// observationally equivalent to a NoEngine store fed the identical schedule
// through the interpreted table-driven walk — identical verdicts, live
// counts, instance sets, quarantine state, health counters and notification
// multisets after every event. Schedules are the randomised supervision
// sweeps from differential_test.go (overflow policies, quarantine/re-arm,
// strict and required symbols, resets), swept across the single-mutex
// reference store and every sharded stripe count, with and without injected
// allocation failures. This is the `make compile-gate` suite.

// planCache memoizes one schedule's lowered plans per (symbol, flags): the
// engine contract is link-time lowering, one plan reused for every event of
// that symbol — allocating per event would hide staleness bugs.
type planCache map[string]*SymbolPlan

func (pc planCache) plan(cls *Class, symbol string, flags SymbolFlags, ts TransitionSet) *SymbolPlan {
	id := symbol + string(rune('0'+flags))
	p, ok := pc[id]
	if !ok {
		p = NewSymbolPlan(cls, symbol, flags, ts)
		pc[id] = p
	}
	return p
}

// runEngineDifferential drives one schedule through a NoEngine store (the
// interpreted reference) and an engine store, both via UpdateStatePlan — the
// NoEngine store's UpdateStatePlan is literally the UpdateState fallback, so
// the differential also pins the dispatch switch itself.
func runEngineDifferential(t *testing.T, seed int64, shards int, failFast bool, rate float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cls := &Class{
		Name: "enginediff", States: 8, Limit: 2 + rng.Intn(8),
		Overflow:        []OverflowPolicy{DropNew, EvictOldest, QuarantineClass}[rng.Intn(3)],
		QuarantineAfter: 1 + rng.Intn(3),
		RearmEvents:     1 + rng.Intn(8),
	}
	states := uint32(3 + rng.Intn(3))

	injRef := faultinject.New(uint64(seed))
	injEng := faultinject.New(uint64(seed))
	if rate > 0 {
		injRef.SetRate(faultinject.SiteAlloc, rate)
		injEng.SetRate(faultinject.SiteAlloc, rate)
	}

	href := &noteHandler{}
	heng := &noteHandler{}
	ref := NewStoreOpts(StoreOpts{
		Context: Global, Handler: href, Shards: shards, NoEngine: true,
		AllocFail: func(c *Class) bool { return injRef.Should(faultinject.SiteAlloc, c.Name) },
	})
	eng := NewStoreOpts(StoreOpts{
		Context: Global, Handler: heng, Shards: shards,
		AllocFail: func(c *Class) bool { return injEng.Should(faultinject.SiteAlloc, c.Name) },
	})
	ref.FailFast = failFast
	eng.FailFast = failFast
	ref.Register(cls)
	eng.Register(cls)
	if ref.EngineEnabled() || !eng.EngineEnabled() {
		t.Fatalf("engine selection broken: ref=%v eng=%v", ref.EngineEnabled(), eng.EngineEnabled())
	}

	plans := planCache{}
	for i, ev := range randSchedule(rng, states, 48) {
		var errRef, errEng error
		switch ev.op {
		case "reset":
			ref.Reset()
			eng.Reset()
		case "resetclass":
			ref.ResetClass(cls)
			eng.ResetClass(cls)
		default:
			p := plans.plan(cls, ev.symbol, ev.flags, ev.ts)
			errRef = ref.UpdateStatePlan(p, ev.key)
			errEng = eng.UpdateStatePlan(p, ev.key)
		}
		if (errRef == nil) != (errEng == nil) {
			t.Fatalf("seed %d shards %d event %d (%s %s): verdict diverged: interpreted=%v engine=%v",
				seed, shards, i, ev.symbol, ev.key, errRef, errEng)
		}
		if lr, le := ref.LiveCount(cls), eng.LiveCount(cls); lr != le {
			t.Fatalf("seed %d shards %d event %d (%s %s): live diverged: interpreted=%d engine=%d",
				seed, shards, i, ev.symbol, ev.key, lr, le)
		}
		if ir, ie := instSet(ref, cls), instSet(eng, cls); !reflect.DeepEqual(ir, ie) {
			t.Fatalf("seed %d shards %d event %d (%s %s): instances diverged:\ninterpreted: %v\nengine:      %v",
				seed, shards, i, ev.symbol, ev.key, ir, ie)
		}
		if qr, qe := ref.Quarantined(cls), eng.Quarantined(cls); qr != qe {
			t.Fatalf("seed %d shards %d event %d: quarantine diverged: interpreted=%v engine=%v",
				seed, shards, i, qr, qe)
		}
		if hr, he := healthOf(ref, cls), healthOf(eng, cls); hr != he {
			t.Fatalf("seed %d shards %d event %d: health diverged:\ninterpreted: %v\nengine:      %v",
				seed, shards, i, hr, he)
		}
		if nr, ne := href.sorted(), heng.sorted(); !reflect.DeepEqual(nr, ne) {
			t.Fatalf("seed %d shards %d event %d (%s %s): notifications diverged:\ninterpreted: %v\nengine:      %v",
				seed, shards, i, ev.symbol, ev.key, nr, ne)
		}
	}
	if fr, fe := injRef.TotalFired(), injEng.TotalFired(); fr != fe {
		t.Fatalf("seed %d: injectors diverged: interpreted fired %d, engine %d", seed, fr, fe)
	}
}

// TestEngineDifferential sweeps ≥1000 randomised schedules over the
// single-mutex reference store (Shards: 1) and every sharded stripe count,
// both fail-fast modes.
func TestEngineDifferential(t *testing.T) {
	const schedules = 1250
	for i := 0; i < schedules; i++ {
		shards := []int{1, 2, 4, 8, 16}[i%5]
		runEngineDifferential(t, int64(40000+i), shards, i%2 == 0, 0)
	}
}

// TestEngineDifferentialInjected repeats the sweep with allocation failures
// injected at 1%, 10% and 50%: the compiled claim path must degrade —
// drop, evict, quarantine, suppress — exactly like the interpreted one.
func TestEngineDifferentialInjected(t *testing.T) {
	for _, rate := range []float64{0.01, 0.10, 0.50} {
		for i := 0; i < 150; i++ {
			shards := []int{1, 2, 4, 8, 16}[i%5]
			runEngineDifferential(t, int64(50000+i), shards, i%2 == 0, rate)
		}
	}
}

// runEngineBatchDifferential crosses the engine differential with the batch
// plane: Plan-carrying ops applied through UpdateBatch on an engine store
// versus the same events applied one at a time through the interpreted walk
// on a NoEngine store, compared at every flush boundary.
func runEngineBatchDifferential(t *testing.T, seed int64, shards, batchSize int, rate float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cls := &Class{
		Name: "enginebatch", States: 8, Limit: 2 + rng.Intn(8),
		Overflow:        []OverflowPolicy{DropNew, EvictOldest, QuarantineClass}[rng.Intn(3)],
		QuarantineAfter: 1 + rng.Intn(3),
		RearmEvents:     1 + rng.Intn(8),
	}
	states := uint32(3 + rng.Intn(3))

	injSeq := faultinject.New(uint64(seed))
	injBat := faultinject.New(uint64(seed))
	if rate > 0 {
		injSeq.SetRate(faultinject.SiteAlloc, rate)
		injBat.SetRate(faultinject.SiteAlloc, rate)
	}

	hseq := &noteHandler{}
	hbat := &noteHandler{}
	seq := NewStoreOpts(StoreOpts{
		Context: Global, Handler: hseq, Shards: shards, NoEngine: true,
		AllocFail: func(c *Class) bool { return injSeq.Should(faultinject.SiteAlloc, c.Name) },
	})
	bat := NewStoreOpts(StoreOpts{
		Context: Global, Handler: hbat, Shards: shards,
		AllocFail: func(c *Class) bool { return injBat.Should(faultinject.SiteAlloc, c.Name) },
	})
	seq.Register(cls)
	bat.Register(cls)

	plans := planCache{}
	var pending []BatchOp
	seqErrs := 0
	flush := func(i int) {
		if len(pending) == 0 {
			return
		}
		err := bat.UpdateBatch(pending)
		if (err != nil) != (seqErrs > 0) {
			t.Fatalf("seed %d shards %d batch %d event %d: verdict diverged: engine batch err=%v, interpreted errors=%d",
				seed, shards, batchSize, i, err, seqErrs)
		}
		pending = pending[:0]
		seqErrs = 0
	}
	compare := func(i int) {
		if lr, lb := seq.LiveCount(cls), bat.LiveCount(cls); lr != lb {
			t.Fatalf("seed %d shards %d batch %d event %d: live diverged: interpreted=%d engine=%d",
				seed, shards, batchSize, i, lr, lb)
		}
		if ir, ib := instSet(seq, cls), instSet(bat, cls); !reflect.DeepEqual(ir, ib) {
			t.Fatalf("seed %d shards %d batch %d event %d: instances diverged:\ninterpreted: %v\nengine:      %v",
				seed, shards, batchSize, i, ir, ib)
		}
		if qr, qb := seq.Quarantined(cls), bat.Quarantined(cls); qr != qb {
			t.Fatalf("seed %d shards %d batch %d event %d: quarantine diverged", seed, shards, batchSize, i)
		}
		if hr, hb := healthOf(seq, cls), healthOf(bat, cls); hr != hb {
			t.Fatalf("seed %d shards %d batch %d event %d: health diverged:\ninterpreted: %v\nengine:      %v",
				seed, shards, batchSize, i, hr, hb)
		}
		if nr, nb := hseq.sorted(), hbat.sorted(); !reflect.DeepEqual(nr, nb) {
			t.Fatalf("seed %d shards %d batch %d event %d: notifications diverged:\ninterpreted: %v\nengine:      %v",
				seed, shards, batchSize, i, nr, nb)
		}
	}

	for i, ev := range randSchedule(rng, states, 48) {
		switch ev.op {
		case "reset":
			flush(i)
			seq.Reset()
			bat.Reset()
			compare(i)
		case "resetclass":
			flush(i)
			seq.ResetClass(cls)
			bat.ResetClass(cls)
			compare(i)
		default:
			if seq.UpdateState(cls, ev.symbol, ev.flags, ev.key, ev.ts) != nil {
				seqErrs++
			}
			pending = append(pending, BatchOp{
				Cls: cls, Symbol: ev.symbol, Flags: ev.flags, Key: ev.key, TS: ev.ts,
				Plan: plans.plan(cls, ev.symbol, ev.flags, ev.ts),
			})
			if len(pending) >= batchSize || rng.Intn(6) == 0 {
				flush(i)
				compare(i)
			}
		}
	}
	flush(48)
	compare(48)
	if fs, fb := injSeq.TotalFired(), injBat.TotalFired(); fs != fb {
		t.Fatalf("seed %d: injectors diverged: interpreted fired %d, engine %d", seed, fs, fb)
	}
}

// TestEngineBatchDifferential sweeps Plan-carrying batches (sizes 1, 7 and
// batchRunMax) against the interpreted sequential walk across stripe counts.
func TestEngineBatchDifferential(t *testing.T) {
	for _, size := range []int{1, 7, 64} {
		for i := 0; i < 150; i++ {
			shards := []int{1, 2, 4, 8, 16}[i%5]
			runEngineBatchDifferential(t, int64(60000+i), shards, size, 0)
		}
	}
}

// TestEngineBatchDifferentialInjected repeats the batch sweep under injected
// allocation failures.
func TestEngineBatchDifferentialInjected(t *testing.T) {
	for _, rate := range []float64{0.10, 0.50} {
		for i := 0; i < 100; i++ {
			shards := []int{1, 2, 4, 8, 16}[i%5]
			size := []int{1, 7, 64}[i%3]
			runEngineBatchDifferential(t, int64(70000+i), shards, size, rate)
		}
	}
}
