// Package vm interprets TESLA IR (internal/ir), standing in for native
// execution of LLVM-compiled code in the paper's pipeline. Instrumented
// modules contain calls to __tesla_* intrinsics which the VM routes to a
// monitor.Thread, so instrumentation overhead is real interpreted work —
// the property the build/run-time experiments (figures 10–13) measure.
package vm

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"tesla/internal/compiler"
	"tesla/internal/core"
	"tesla/internal/ir"
	"tesla/internal/monitor"
)

// Address encoding: allocation ID in the high bits, word offset in the low
// 24; function pointers live in a disjoint range above FnBase.
const (
	offsetBits = 24
	offsetMask = 1<<offsetBits - 1
	fnBase     = int64(1) << 60
)

// ErrMaxSteps is returned when execution exceeds the configured step budget.
var ErrMaxSteps = errors.New("vm: step limit exceeded")

// VM executes one linked module.
type VM struct {
	mod  *ir.Module
	fns  map[string]*ir.Func
	fnIx []*ir.Func // function-pointer table

	heap     []allocation
	freeList []int
	globals  map[string]int64 // name → address

	// Thread, when set, receives instrumentation events from __tesla_*
	// intrinsics. Running instrumented code without a Thread fails.
	Thread *monitor.Thread
	// Out receives print() output (nil discards).
	Out io.Writer
	// MaxSteps bounds execution (0 = DefaultMaxSteps).
	MaxSteps int64

	steps    int64
	frames   []string // function-name stack for incallstack queries
	maxDepth int
}

type allocation struct {
	data []int64
	live bool
}

// DefaultMaxSteps bounds runaway programs.
const DefaultMaxSteps = 200_000_000

// DefaultMaxDepth bounds recursion.
const DefaultMaxDepth = 10_000

// New prepares a VM for the module.
func New(mod *ir.Module) *VM {
	vm := &VM{
		mod:      mod,
		fns:      map[string]*ir.Func{},
		globals:  map[string]int64{},
		maxDepth: DefaultMaxDepth,
	}
	for _, f := range mod.Funcs {
		vm.fns[f.Name] = f
		vm.fnIx = append(vm.fnIx, f)
	}
	// Allocation 0 is reserved so that address 0 is NULL.
	vm.heap = append(vm.heap, allocation{})
	for _, g := range mod.Globals {
		id := vm.alloc(1)
		vm.heap[id].data[0] = g.Init
		vm.globals[g.Name] = int64(id) << offsetBits
	}
	return vm
}

// AttachThread wires instrumentation events to a monitor thread and gives
// the monitor access to the VM's call stack and memory.
func (vm *VM) AttachThread(th *monitor.Thread) {
	vm.Thread = th
	th.StackQuery = vm.InStack
	th.SetClock(vm.Steps)
}

// Load implements monitor.Memory over the VM heap.
func (vm *VM) Load(addr core.Value) (core.Value, bool) {
	v, err := vm.load(int64(addr))
	if err != nil {
		return 0, false
	}
	return core.Value(v), true
}

// InStack reports whether fn is on the interpreter's call stack.
func (vm *VM) InStack(fn string) bool {
	for _, f := range vm.frames {
		if f == fn {
			return true
		}
	}
	return false
}

// Steps returns the number of instructions executed so far.
func (vm *VM) Steps() int64 { return vm.steps }

// FnAddr returns the function-pointer value for a named function.
func (vm *VM) FnAddr(name string) (int64, error) {
	for i, f := range vm.fnIx {
		if f.Name == name {
			return fnBase + int64(i), nil
		}
	}
	return 0, fmt.Errorf("vm: unknown function %q", name)
}

// Run executes the named function with the given arguments.
func (vm *VM) Run(fn string, args ...int64) (int64, error) {
	f := vm.fns[fn]
	if f == nil {
		return 0, fmt.Errorf("vm: unknown function %q", fn)
	}
	return vm.call(f, args)
}

func (vm *VM) alloc(words int) int {
	if n := len(vm.freeList); n > 0 {
		id := vm.freeList[n-1]
		vm.freeList = vm.freeList[:n-1]
		a := &vm.heap[id]
		if cap(a.data) >= words {
			a.data = a.data[:words]
			for i := range a.data {
				a.data[i] = 0
			}
		} else {
			a.data = make([]int64, words)
		}
		a.live = true
		return id
	}
	vm.heap = append(vm.heap, allocation{data: make([]int64, words), live: true})
	return len(vm.heap) - 1
}

func (vm *VM) free(id int) {
	vm.heap[id].live = false
	vm.freeList = append(vm.freeList, id)
}

func (vm *VM) load(addr int64) (int64, error) {
	id := addr >> offsetBits
	off := addr & offsetMask
	if id <= 0 || id >= int64(len(vm.heap)) || !vm.heap[id].live || off >= int64(len(vm.heap[id].data)) {
		return 0, fmt.Errorf("vm: invalid load from %#x", addr)
	}
	return vm.heap[id].data[off], nil
}

func (vm *VM) store(addr, val int64) error {
	id := addr >> offsetBits
	off := addr & offsetMask
	if id <= 0 || id >= int64(len(vm.heap)) || !vm.heap[id].live || off >= int64(len(vm.heap[id].data)) {
		return fmt.Errorf("vm: invalid store to %#x", addr)
	}
	vm.heap[id].data[off] = val
	return nil
}

func (vm *VM) maxSteps() int64 {
	if vm.MaxSteps > 0 {
		return vm.MaxSteps
	}
	return DefaultMaxSteps
}

func (vm *VM) call(f *ir.Func, args []int64) (ret int64, err error) {
	if len(vm.frames) >= vm.maxDepth {
		return 0, fmt.Errorf("vm: call depth exceeded in %s", f.Name)
	}
	vm.frames = append(vm.frames, f.Name)
	var frameAllocs []int
	defer func() {
		vm.frames = vm.frames[:len(vm.frames)-1]
		for _, id := range frameAllocs {
			vm.free(id)
		}
	}()

	regs := make([]int64, f.NRegs)
	copy(regs, args)

	blk, ip := 0, 0
	limit := vm.maxSteps()
	for {
		if ip >= len(f.Blocks[blk].Instrs) {
			return 0, fmt.Errorf("vm: %s: block b%d fell off the end", f.Name, blk)
		}
		in := &f.Blocks[blk].Instrs[ip]
		vm.steps++
		if vm.steps > limit {
			return 0, ErrMaxSteps
		}

		switch in.Op {
		case ir.OpConst:
			regs[in.Dst] = in.Imm
		case ir.OpAlloca:
			id := vm.alloc(int(in.Imm))
			frameAllocs = append(frameAllocs, id)
			regs[in.Dst] = int64(id) << offsetBits
		case ir.OpAllocHeap:
			id := vm.alloc(in.Struct.Size())
			regs[in.Dst] = int64(id) << offsetBits
		case ir.OpLoad:
			v, lerr := vm.load(regs[in.X])
			if lerr != nil {
				return 0, fmt.Errorf("%s: %w", f.Name, lerr)
			}
			regs[in.Dst] = v
		case ir.OpStore:
			if serr := vm.store(regs[in.X], regs[in.Y]); serr != nil {
				return 0, fmt.Errorf("%s: %w", f.Name, serr)
			}
		case ir.OpFieldAddr:
			regs[in.Dst] = regs[in.X] + int64(in.Struct.Fields[in.Field].Offset)
		case ir.OpFieldStore:
			addr := regs[in.X] + int64(in.Struct.Fields[in.Field].Offset)
			switch in.Assign {
			case ir.AssignSet:
				if serr := vm.store(addr, regs[in.Y]); serr != nil {
					return 0, fmt.Errorf("%s: %w", f.Name, serr)
				}
			case ir.AssignAdd:
				old, lerr := vm.load(addr)
				if lerr != nil {
					return 0, fmt.Errorf("%s: %w", f.Name, lerr)
				}
				if serr := vm.store(addr, old+regs[in.Y]); serr != nil {
					return 0, fmt.Errorf("%s: %w", f.Name, serr)
				}
			case ir.AssignIncr:
				old, lerr := vm.load(addr)
				if lerr != nil {
					return 0, fmt.Errorf("%s: %w", f.Name, lerr)
				}
				if serr := vm.store(addr, old+1); serr != nil {
					return 0, fmt.Errorf("%s: %w", f.Name, serr)
				}
			}
		case ir.OpBin:
			v, berr := evalBin(in.Imm2Bin(), regs[in.X], regs[in.Y])
			if berr != nil {
				return 0, fmt.Errorf("%s: %w", f.Name, berr)
			}
			regs[in.Dst] = v
		case ir.OpFnAddr:
			v, aerr := vm.FnAddr(in.Sym)
			if aerr != nil {
				return 0, aerr
			}
			regs[in.Dst] = v
		case ir.OpGlobalAddr:
			addr, ok := vm.globals[in.Sym]
			if !ok {
				return 0, fmt.Errorf("vm: unknown global %q", in.Sym)
			}
			regs[in.Dst] = addr
		case ir.OpCall:
			v, cerr := vm.dispatchCall(in, regs)
			if cerr != nil {
				return 0, cerr
			}
			regs[in.Dst] = v
		case ir.OpCallPtr:
			fp := regs[in.X]
			idx := fp - fnBase
			if idx < 0 || idx >= int64(len(vm.fnIx)) {
				return 0, fmt.Errorf("vm: %s: indirect call through bad pointer %#x", f.Name, fp)
			}
			callArgs := make([]int64, len(in.Args))
			for i, a := range in.Args {
				callArgs[i] = regs[a]
			}
			v, cerr := vm.call(vm.fnIx[idx], callArgs)
			if cerr != nil {
				return 0, cerr
			}
			regs[in.Dst] = v
		case ir.OpBr:
			blk, ip = in.Blk1, 0
			continue
		case ir.OpCondBr:
			if regs[in.X] != 0 {
				blk = in.Blk1
			} else {
				blk = in.Blk2
			}
			ip = 0
			continue
		case ir.OpRet:
			if in.HasX {
				return regs[in.X], nil
			}
			return 0, nil
		default:
			return 0, fmt.Errorf("vm: %s: bad opcode %d", f.Name, int(in.Op))
		}
		ip++
	}
}

// dispatchCall handles direct calls: user functions, builtins and TESLA
// intrinsics inserted by the instrumenter.
func (vm *VM) dispatchCall(in *ir.Instr, regs []int64) (int64, error) {
	// Generated event translators are real functions named __tesla_evt_*;
	// only names with no definition are intrinsics.
	if strings.HasPrefix(in.Sym, "__tesla") && vm.fns[in.Sym] == nil {
		return vm.teslaIntrinsic(in, regs)
	}
	switch in.Sym {
	case "print":
		if vm.Out != nil {
			vals := make([]interface{}, len(in.Args))
			for i, a := range in.Args {
				vals[i] = regs[a]
			}
			fmt.Fprintln(vm.Out, vals...)
		}
		return 0, nil
	}
	f := vm.fns[in.Sym]
	if f == nil {
		return 0, fmt.Errorf("vm: call to undefined function %q", in.Sym)
	}
	callArgs := make([]int64, len(in.Args))
	for i, a := range in.Args {
		callArgs[i] = regs[a]
	}
	return vm.call(f, callArgs)
}

func (vm *VM) teslaIntrinsic(in *ir.Instr, regs []int64) (int64, error) {
	// Residual assertion-site pseudo-calls in uninstrumented builds are
	// inert.
	if strings.HasPrefix(in.Sym, compiler.SitePseudoFn) {
		return 0, nil
	}
	th := vm.Thread
	if th == nil {
		return 0, fmt.Errorf("vm: instrumented code (%s) without an attached monitor thread", in.Sym)
	}
	vals := make([]core.Value, len(in.Args))
	for i, a := range in.Args {
		vals[i] = core.Value(regs[a])
	}
	switch {
	case in.Sym == "__tesla_bound_begin":
		return 0, th.BoundBegin(int(in.Imm))
	case in.Sym == "__tesla_bound_end":
		return 0, th.BoundEnd(int(in.Imm))
	case in.Sym == "__tesla_update":
		return 0, th.Deliver(int(in.Imm>>16), int(in.Imm&0xffff), vals...)
	case in.Sym == "__tesla_site":
		return 0, th.SiteByIndex(int(in.Imm), vals...)
	default:
		return 0, fmt.Errorf("vm: unknown TESLA intrinsic %q", in.Sym)
	}
}

func evalBin(op ir.BinKind, a, b int64) (int64, error) {
	switch op {
	case ir.BinAdd:
		return a + b, nil
	case ir.BinSub:
		return a - b, nil
	case ir.BinMul:
		return a * b, nil
	case ir.BinDiv:
		if b == 0 {
			return 0, errors.New("vm: division by zero")
		}
		return a / b, nil
	case ir.BinRem:
		if b == 0 {
			return 0, errors.New("vm: modulo by zero")
		}
		return a % b, nil
	case ir.BinEq:
		return b2i(a == b), nil
	case ir.BinNe:
		return b2i(a != b), nil
	case ir.BinLt:
		return b2i(a < b), nil
	case ir.BinLe:
		return b2i(a <= b), nil
	case ir.BinGt:
		return b2i(a > b), nil
	case ir.BinGe:
		return b2i(a >= b), nil
	case ir.BinAnd:
		return a & b, nil
	case ir.BinOr:
		return a | b, nil
	case ir.BinXor:
		return a ^ b, nil
	default:
		return 0, fmt.Errorf("vm: bad binary op %d", int(op))
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
