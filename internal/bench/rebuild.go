package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"tesla/internal/build"
	"tesla/internal/toolchain"
)

// FigRebuild measures the §5.1 rebuild matrix on the content-hash-cached
// build graph over the synthetic OpenSSL codebase: cold builds (sequential
// reference, graph at -j1 and -jN), a warm no-op rebuild, a one-file body
// edit (re-instruments only the edited unit) and a one-file assertion edit
// (the one-to-many property: the combined manifest changes, so every unit
// re-instruments while every compile stays cached).
func FigRebuild(w io.Writer, files, fnsPerFile int) error {
	sources := OpenSSLCodebase(files, fnsPerFile)
	cores := runtime.GOMAXPROCS(0)
	// The parallel scenario always exercises the multi-worker scheduler;
	// wall-clock speedup over -j1 is of course bounded by the core count.
	jobs := cores
	if jobs < 4 {
		jobs = 4
	}

	measure := func(srcs map[string]string, dir string, j int) (*toolchain.Build, time.Duration, error) {
		start := time.Now()
		b, err := toolchain.BuildProgramOpts(srcs, toolchain.BuildOptions{
			Instrument: true, CacheDir: dir, Jobs: j,
		})
		return b, time.Since(start), err
	}
	report := func(label string, d time.Duration, b *toolchain.Build, note string) {
		line := fmt.Sprintf("  %-28s %12v", label, d.Round(10*time.Microsecond))
		if b != nil {
			c := b.Graph.Counts()
			line += fmt.Sprintf("  built=%-3d hits=%-3d", c.Built, c.MemHits+c.DiskHits)
		}
		if note != "" {
			line += "  " + note
		}
		fmt.Fprintln(w, line)
	}
	// rebuilt counts the instrument nodes that actually re-ran.
	rebuilt := func(b *toolchain.Build) (instr, total int) {
		for _, n := range b.Graph.Nodes {
			if strings.HasPrefix(n.ID, "instrument:") {
				total++
				if n.Status == build.StatusBuilt {
					instr++
				}
			}
		}
		return
	}

	fmt.Fprintf(w, "Figure rebuild (§5.1): incremental re-instrumentation (%d files, %d core(s))\n",
		len(sources), cores)

	start := time.Now()
	if _, err := toolchain.BuildSequential(sources, toolchain.BuildOptions{Instrument: true}); err != nil {
		return err
	}
	report("cold, sequential reference", time.Since(start), nil, "")

	dirs := make([]string, 2)
	for i := range dirs {
		d, err := os.MkdirTemp("", "tesla-rebuild-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dirs[i] = d
	}

	b, d, err := measure(sources, dirs[0], 1)
	if err != nil {
		return err
	}
	report("cold, graph -j1", d, b, "")

	b, d, err = measure(sources, dirs[1], jobs)
	if err != nil {
		return err
	}
	report(fmt.Sprintf("cold, graph -j%d", jobs), d, b, "")

	b, d, err = measure(sources, dirs[1], jobs)
	if err != nil {
		return err
	}
	note := ""
	if b.Graph.AllCached() {
		note = "(all cached, nothing parsed)"
	}
	report("warm no-op", d, b, note)

	// Body edit: one library function changes, no assertion involved. The
	// edited file's fragment reproduces the same bytes, so combine and
	// automata hit the cache and only the edited unit re-instruments.
	bodyEdit := OpenSSLCodebase(files, fnsPerFile)
	bodyEdit["ssl_s3_0.c"] = strings.Replace(bodyEdit["ssl_s3_0.c"],
		"int x = a * 3 + b;", "int x = a * 5 + b;", 1)
	b, d, err = measure(bodyEdit, dirs[1], jobs)
	if err != nil {
		return err
	}
	in, total := rebuilt(b)
	report("body edit (1 file)", d, b, fmt.Sprintf("(re-instrumented %d/%d units)", in, total))

	// Assertion edit: the client's assertion changes, so the combined
	// manifest changes — every unit re-instruments (one-to-many) even
	// though every other compile is still served from the cache.
	assertEdit := OpenSSLCodebase(files, fnsPerFile)
	assertEdit["client.c"] = strings.Replace(assertEdit["client.c"],
		"ANY(int), ANY(ptr)) == 1", "ANY(int), ANY(ptr)) == 0", 1)
	b, d, err = measure(assertEdit, dirs[1], jobs)
	if err != nil {
		return err
	}
	in, total = rebuilt(b)
	report("assertion edit (1 file)", d, b,
		fmt.Sprintf("(one-to-many: re-instrumented %d/%d units)", in, total))

	fmt.Fprintf(w, "  paper shape: a body edit rebuilds one unit; an assertion edit rebuilds all\n")
	fmt.Fprintf(w, "  of them — but with the graph the compiles stay cached, so the §5.1\n")
	fmt.Fprintf(w, "  incremental penalty shrinks to the instrumentation stage alone.\n\n")
	return nil
}
