package kernel

import (
	"fmt"

	"tesla/internal/automata"
	"tesla/internal/spec"
)

// Set selects assertion subsets, matching table 1 of the paper:
//
//	Symbol  Description            Assertions
//	MF      MAC (filesystem)           25
//	MS      MAC (sockets)              11
//	MP      MAC (processes)            10
//	M       All MAC assertions         48
//	P       Process lifetimes          37
//	All     All TESLA assertions       96
type Set uint8

const (
	// SetMF is the MAC filesystem assertion set.
	SetMF Set = 1 << iota
	// SetMS is the MAC sockets set.
	SetMS
	// SetMP is the MAC processes set.
	SetMP
	// SetMiscMAC holds the two MAC assertions outside the three subsets
	// (kld and kenv), bringing M to 48.
	SetMiscMAC
	// SetP is the inter-process / process-lifetime set. 26 of its 37
	// assertions sit in facilities the standard workloads never reach
	// (19 procfs, 2 CPUSET, 5 POSIX real-time), reproducing the §3.5.2
	// coverage finding.
	SetP
	// SetInfra is the test-assertion set enabled in the "Infrastructure"
	// kernel configuration.
	SetInfra
)

// SetM is every MAC assertion (48).
const SetM = SetMF | SetMS | SetMP | SetMiscMAC

// SetAll is every TESLA assertion (96).
const SetAll = SetM | SetP | SetInfra

func (s Set) String() string {
	switch s {
	case SetMF:
		return "MF"
	case SetMS:
		return "MS"
	case SetMP:
		return "MP"
	case SetM:
		return "M"
	case SetP:
		return "P"
	case SetInfra:
		return "Infrastructure"
	case SetAll:
		return "All"
	case 0:
		return "none"
	default:
		return fmt.Sprintf("Set(%b)", uint8(s))
	}
}

// Assertions builds the kernel assertion corpus for the selected sets.
// Every assertion's site is emitted somewhere in this package; sets not
// selected contribute nothing (their sites become cheap hash misses).
func Assertions(sets Set) []*spec.Assertion {
	var out []*spec.Assertion
	add := func(set Set, a *spec.Assertion) {
		if sets&set != 0 {
			out = append(out, a)
		}
	}
	sp := spec.SyscallPreviously

	// ---- MF: MAC filesystem (25) ----

	// Fig. 7: open-like operations are authorised by one of three checks.
	add(SetMF, spec.Syscall("MF:ufs_open", spec.Or(
		spec.Previously(spec.Call("mac_kld_check_load", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0)),
		spec.Previously(spec.Call("mac_vnode_check_exec", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0)),
		spec.Previously(spec.Call("mac_vnode_check_open", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0)),
	)))
	// Fig. 7: reads are exempt inside ufs_readdir and under IO_NOMACCHECK.
	add(SetMF, spec.Syscall("MF:ffs_read", spec.Or(
		spec.InStack("ufs_readdir"),
		spec.Previously(spec.Call("vn_rdwr", spec.Var("vp"), spec.Flags(IO_NOMACCHECK))),
		spec.Previously(spec.Call("mac_vnode_check_read", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0)),
	)))
	add(SetMF, spec.Syscall("MF:ffs_write", spec.Or(
		spec.Previously(spec.Call("vn_rdwr", spec.Var("vp"), spec.Flags(IO_NOMACCHECK))),
		spec.Previously(spec.Call("mac_vnode_check_write", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0)),
	)))
	prevCheck := func(name, check string) *spec.Assertion {
		return sp(name, spec.Call(check, spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0))
	}
	credCheck := func(name, check string) *spec.Assertion {
		return sp(name, spec.Call(check, spec.Var("cred"), spec.Var("vp")).ReturnsInt(0))
	}
	add(SetMF, prevCheck("MF:ufs_readdir", "mac_vnode_check_readdir"))
	add(SetMF, prevCheck("MF:ufs_setattr", "mac_vnode_check_setmode"))
	add(SetMF, prevCheck("MF:ufs_getattr", "mac_vnode_check_stat"))
	add(SetMF, prevCheck("MF:ufs_getacl", "mac_vnode_check_getacl"))
	add(SetMF, prevCheck("MF:ufs_setacl", "mac_vnode_check_setacl"))
	// Extended attributes: reachable via their system calls or internally
	// from the ACL implementation (§3.5.2's "similar complex structures").
	add(SetMF, spec.Syscall("MF:ufs_getextattr", spec.Or(
		spec.InStack("ufs_getacl"),
		spec.Previously(spec.Call("mac_vnode_check_getextattr", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0)),
	)))
	add(SetMF, spec.Syscall("MF:ufs_setextattr", spec.Or(
		spec.InStack("ufs_setacl"),
		spec.Previously(spec.Call("mac_vnode_check_setextattr", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0)),
	)))
	// Page-fault I/O has its own bound (trap_pfault).
	add(SetMF, spec.Within("MF:pfault_read", "trap_pfault",
		spec.Previously(spec.Call("mac_vnode_check_read", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0))))
	add(SetMF, sp("MF:namei", spec.Call("mac_vnode_check_lookup", spec.AnyPtr(), spec.Var("dvp")).ReturnsInt(0)))
	add(SetMF, sp("MF:create", spec.Call("mac_vnode_check_create", spec.AnyPtr(), spec.Var("dvp")).ReturnsInt(0)))
	add(SetMF, prevCheck("MF:vn_poll", "mac_vnode_check_poll"))
	// Credential-precise variants: the same checks, additionally binding
	// the subject credential (the class of property that catches
	// wrong-credential bugs).
	add(SetMF, credCheck("MF:ufs_readdir_cred", "mac_vnode_check_readdir"))
	add(SetMF, credCheck("MF:ufs_setattr_cred", "mac_vnode_check_setmode"))
	add(SetMF, credCheck("MF:ufs_getattr_cred", "mac_vnode_check_stat"))
	add(SetMF, credCheck("MF:ufs_getacl_cred", "mac_vnode_check_getacl"))
	add(SetMF, credCheck("MF:ufs_setacl_cred", "mac_vnode_check_setacl"))
	add(SetMF, credCheck("MF:extattr_get_cred", "mac_vnode_check_getextattr"))
	add(SetMF, credCheck("MF:extattr_set_cred", "mac_vnode_check_setextattr"))
	// Flow assertions: once authorised, the operation reaches (or came
	// through) the filesystem implementation.
	add(SetMF, spec.SyscallEventually("MF:vn_open", spec.Call("ufs_open", spec.Var("vp"))))
	add(SetMF, sp("MF:chmod_flow",
		spec.Call("mac_vnode_check_setmode", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0),
		spec.Call("ufs_setattr", spec.Var("vp"))))
	add(SetMF, sp("MF:stat_flow",
		spec.Call("mac_vnode_check_stat", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0),
		spec.Call("ufs_getattr", spec.Var("vp"))))
	add(SetMF, sp("MF:vn_read_post", spec.ReturnFrom("ffs_read", spec.Var("vp"))))

	// ---- MS: MAC sockets (11) ----

	add(SetMS, sp("MS:socreate", spec.Call("mac_socket_check_create", spec.Var("cred")).ReturnsInt(0)))
	soCheck := func(name, check string) *spec.Assertion {
		return sp(name, spec.Call(check, spec.Var("cred"), spec.Var("so")).ReturnsInt(0))
	}
	add(SetMS, soCheck("MS:sobind", "mac_socket_check_bind"))
	add(SetMS, soCheck("MS:solisten", "mac_socket_check_listen"))
	add(SetMS, soCheck("MS:soconnect_generic", "mac_socket_check_connect"))
	add(SetMS, soCheck("MS:soaccept", "mac_socket_check_accept"))
	add(SetMS, soCheck("MS:sosend_generic", "mac_socket_check_send"))
	add(SetMS, soCheck("MS:soreceive_generic", "mac_socket_check_receive"))
	// Fig. 4: the assertion that found both the kqueue and the
	// wrong-credential bug — the check must use the *active* credential.
	add(SetMS, sp("MS:sopoll_generic",
		spec.Call("mac_socket_check_poll", spec.Var("active_cred"), spec.Var("so")).ReturnsInt(0)))
	add(SetMS, soCheck("MS:sovisible", "mac_socket_check_visible"))
	add(SetMS, soCheck("MS:sostat", "mac_socket_check_stat"))
	add(SetMS, soCheck("MS:sorelabel", "mac_socket_check_relabel"))

	// ---- MP: MAC processes (10) ----

	mpCheck := func(name, check string) *spec.Assertion {
		return sp(name, spec.Call(check, spec.Var("cred"), spec.Var("p")).ReturnsInt(0))
	}
	add(SetMP, mpCheck("MP:wait", "mac_proc_check_wait"))
	add(SetMP, mpCheck("MP:psignal", "mac_proc_check_signal"))
	add(SetMP, mpCheck("MP:ptrace", "mac_proc_check_debug"))
	add(SetMP, mpCheck("MP:sched", "mac_proc_check_sched"))
	add(SetMP, sp("MP:setuid", spec.Call("mac_cred_check_setuid", spec.Var("cred"), spec.AnyInt()).ReturnsInt(0)))
	add(SetMP, sp("MP:setgid", spec.Call("mac_cred_check_setgid", spec.Var("cred"), spec.AnyInt()).ReturnsInt(0)))
	add(SetMP, mpCheck("MP:getaudit", "mac_proc_check_getaudit"))
	add(SetMP, mpCheck("MP:setaudit", "mac_proc_check_setaudit"))
	add(SetMP, mpCheck("MP:cred_visible", "mac_cred_check_visible"))
	add(SetMP, sp("MP:kenv_get", spec.Call("mac_kenv_check_get", spec.Var("cred"), spec.Var("name")).ReturnsInt(0)))

	// ---- Miscellaneous MAC (2): M = 48 ----

	add(SetMiscMAC, sp("M:kldload", spec.Call("mac_kld_check_load", spec.AnyPtr(), spec.Var("vp")).ReturnsInt(0)))
	add(SetMiscMAC, sp("M:kenv_set", spec.Call("mac_kenv_check_set", spec.Var("cred"), spec.Var("name")).ReturnsInt(0)))

	// ---- P: inter-process / lifecycle (37) ----

	// Exercised (11).
	sugid := func(name string) *spec.Assertion {
		return spec.Syscall(name, spec.Eventually(
			spec.FieldAssign("proc", "p_flag", spec.Var("p"), spec.Flags(P_SUGID))))
	}
	add(SetP, sugid("P:setuid_sugid"))
	add(SetP, sugid("P:setgid_sugid"))
	add(SetP, sp("P:exec", spec.Call("vn_open", spec.AnyInt())))
	add(SetP, spec.SyscallEventually("P:fork", spec.Call("proc_init", spec.Any("ptr"))))
	add(SetP, spec.SyscallEventually("P:exit",
		spec.Call("proc_zombie", spec.Var("p")), spec.Call("sigparent", spec.Var("p"))))
	add(SetP, spec.SyscallEventually("P:wait", spec.Call("proc_reap", spec.Var("p"))))
	add(SetP, sp("P:psignal", spec.Call("p_cansignal", spec.Var("cred"), spec.Var("p")).ReturnsInt(0)))
	add(SetP, sp("P:ptrace", spec.Call("p_candebug", spec.Var("cred"), spec.Var("p")).ReturnsInt(0)))
	add(SetP, sp("P:setpriority", spec.Call("p_cansee", spec.Var("cred"), spec.Var("p")).ReturnsInt(0)))
	add(SetP, sp("P:getpriority", spec.Call("p_cansee", spec.Var("cred"), spec.Var("p")).ReturnsInt(0)))
	add(SetP, spec.Syscall("P:crsetcred", spec.Or(
		spec.Previously(spec.Call("mac_cred_check_setuid", spec.AnyPtr(), spec.AnyInt()).ReturnsInt(0)),
		spec.Previously(spec.Call("mac_cred_check_setgid", spec.AnyPtr(), spec.AnyInt()).ReturnsInt(0)),
		spec.Previously(spec.Call("mac_vnode_check_exec", spec.AnyPtr(), spec.AnyPtr()).ReturnsInt(0)),
	)))
	// Unexercised (26): 19 in the deprecated procfs, 2 in CPUSET, 5 in
	// POSIX real-time scheduling (§3.5.2).
	for i := 0; i < ProcfsOps; i++ {
		add(SetP, sp(fmt.Sprintf("P:procfs%d", i),
			spec.Call("p_cansee", spec.Var("cred"), spec.Var("p")).ReturnsInt(0)))
	}
	add(SetP, spec.SyscallPreviously("P:cpuset_get", spec.Call("cpuset_check", spec.Var("p"))))
	add(SetP, spec.SyscallPreviously("P:cpuset_set", spec.Call("cpuset_check", spec.Var("p"))))
	for i := 0; i < RtprioOps; i++ {
		add(SetP, sp(fmt.Sprintf("P:rtprio%d", i),
			spec.ReturnFrom(fmt.Sprintf("rtp_op%d", i), spec.Var("p"))))
	}

	// ---- Infrastructure test assertions (11): All = 96 ----

	// The test assertions reference dedicated tesla_test_* events that
	// production workloads never trigger: the Infrastructure
	// configuration therefore measures the cost of the instrumentation
	// framework itself (per-event dispatch, bound tracking), not of
	// automaton work.
	for i := 0; i < 11; i++ {
		add(SetInfra, spec.Syscall(fmt.Sprintf("Infra:%d", i),
			spec.Opt(spec.Call(fmt.Sprintf("tesla_test_%d", i)))))
	}

	return out
}

// CompileAssertions compiles a set's assertions to automata.
func CompileAssertions(sets Set) ([]*automata.Automaton, error) {
	var autos []*automata.Automaton
	for _, a := range Assertions(sets) {
		auto, err := automata.Compile(a)
		if err != nil {
			return nil, fmt.Errorf("kernel: %s: %w", a.Name, err)
		}
		autos = append(autos, auto)
	}
	return autos, nil
}
