package trace_test

import (
	"sync"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/faultinject"
	"tesla/internal/monitor"
	"tesla/internal/spec"
	"tesla/internal/trace"
)

func mustAuto(t *testing.T, name, src string) *automata.Automaton {
	t.Helper()
	a, err := spec.Parse(name, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := automata.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	return auto
}

// TestRecorderConcurrentThreads drives a global-context automaton from many
// goroutines with the recorder attached at both layers (tap + handler),
// snapshotting concurrently — the race-detector probe for the whole event
// path. The merged trace must be Seq-ordered with no duplicates, and every
// program event must be attributed to a real thread.
func TestRecorderConcurrentThreads(t *testing.T) {
	auto := mustAuto(t, "glob",
		`TESLA_GLOBAL(call(start_op), returnfrom(end_op), previously(prepare(x) == 0))`)
	rec := trace.NewRecorder([]*automata.Automaton{auto}, 0)
	m := monitor.MustNew(monitor.Options{Handler: rec, Tap: rec}, auto)

	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rec.Snapshot() // must be safe mid-recording
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := m.NewThread()
			for r := 0; r < rounds; r++ {
				x := core.Value(g*rounds + r)
				th.Call("start_op")
				th.Call("prepare", x)
				th.Return("prepare", 0, x)
				th.Site("glob", x)
				th.Return("end_op", 0)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	tr := rec.Snapshot()
	if tr.Dropped != 0 {
		t.Fatalf("%d events dropped with default ring capacity", tr.Dropped)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	seen := map[uint64]bool{}
	var prev uint64
	threads := map[int]bool{}
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Seq <= prev && i > 0 {
			t.Fatalf("event %d out of order: seq %d after %d", i, ev.Seq, prev)
		}
		prev = ev.Seq
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
		if ev.Kind == trace.KindProgram {
			if ev.Thread < 0 || ev.Thread >= goroutines {
				t.Fatalf("program event on impossible thread %d", ev.Thread)
			}
			threads[ev.Thread] = true
		} else if ev.Thread != -1 {
			t.Fatalf("lifecycle event with thread %d", ev.Thread)
		}
	}
	if len(threads) != goroutines {
		t.Fatalf("events from %d threads, want %d", len(threads), goroutines)
	}

	// The merged trace replays: the Seq order is a plausible linearisation,
	// so replay must complete and produce only verdicts the live run could
	// have produced (structural sanity, not exact equality, under races).
	if _, err := trace.Replay(tr, []*automata.Automaton{auto}); err != nil {
		t.Fatalf("concurrent trace does not replay: %v", err)
	}
}

// TestRecorderBoundedMemory overflows a tiny ring and checks the contract:
// newest events win, drops are counted, Snapshot stays Seq-sorted.
func TestRecorderBoundedMemory(t *testing.T) {
	auto := mustAuto(t, "syscall", `TESLA_SYSCALL_PREVIOUSLY(chk(x) == 0)`)
	rec := trace.NewRecorder([]*automata.Automaton{auto}, 8)
	m := monitor.MustNew(monitor.Options{Handler: rec, Tap: rec}, auto)
	th := m.NewThread()
	for i := 0; i < 100; i++ {
		th.Call("amd64_syscall")
		th.Return("amd64_syscall", 0)
	}
	tr := rec.Snapshot()
	if tr.Dropped == 0 {
		t.Fatal("expected drops from a capacity-8 ring")
	}
	var prev uint64
	for i := range tr.Events {
		if tr.Events[i].Seq <= prev {
			t.Fatalf("snapshot not sorted at %d", i)
		}
		prev = tr.Events[i].Seq
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Seq != rec.EventCount() {
		t.Fatalf("newest event seq %d, recorder count %d", last.Seq, rec.EventCount())
	}
}

// TestRecorderDropFault exercises the fault-injection seam: with every third
// lifecycle push rejected by DropFault, the snapshot's Dropped count matches
// the injector's fired count exactly and the surviving events are intact.
func TestRecorderDropFault(t *testing.T) {
	auto := mustAuto(t, "df", `TESLA_SYSCALL_PREVIOUSLY(chk(x) == 0)`)
	rec := trace.NewRecorder([]*automata.Automaton{auto}, 0)
	inj := faultinject.New(9)
	inj.SetEvery(faultinject.SiteTraceDrop, 3)
	rec.DropFault = func() bool { return inj.Should(faultinject.SiteTraceDrop, "life") }

	cls := auto.Class
	inst := &core.Instance{Active: true}
	const pushes = 50
	for i := 0; i < pushes; i++ {
		rec.InstanceNew(cls, inst)
	}
	tr := rec.Snapshot()
	fired := inj.Fired(faultinject.SiteTraceDrop, "life")
	if fired == 0 {
		t.Fatal("injector never fired; test lost its teeth")
	}
	if tr.Dropped != fired {
		t.Fatalf("Dropped = %d, injector dropped %d", tr.Dropped, fired)
	}
	life := 0
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindInit {
			life++
		}
	}
	if life != pushes-int(fired) {
		t.Fatalf("%d lifecycle events survived, want %d", life, pushes-int(fired))
	}
}
