package ir

// Optimize performs the post-instrumentation clean-up pass standing in for
// `opt -O2` in the paper's pipeline (§4.2: TESLA instruments unoptimised IR
// and optimises afterwards, since instrumentation is not robust in the
// presence of inlining). It removes instructions whose results are unused
// (the front-end emits temporaries freely) and folds constant conditional
// branches. Virtual registers are single-assignment for temporaries, so a
// use count is sufficient for liveness.
func Optimize(m *Module) {
	for _, f := range m.Funcs {
		optimizeFunc(f)
	}
}

func optimizeFunc(f *Func) {
	for {
		changed := false

		// Use counts over the whole function; storeOnly tracks allocas
		// whose address never escapes a plain store — their stores are
		// dead (dead-local elimination).
		used := make([]int, f.NRegs)
		escaped := make([]bool, f.NRegs)
		isAlloca := make([]bool, f.NRegs)
		mark := func(r int) {
			if r >= 0 && r < len(used) {
				used[r]++
			}
		}
		escape := func(r int) {
			mark(r)
			if r >= 0 && r < len(escaped) {
				escaped[r] = true
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case OpAlloca:
					if in.Dst >= 0 && in.Dst < len(isAlloca) {
						isAlloca[in.Dst] = true
					}
				case OpConst, OpAllocHeap, OpFnAddr, OpGlobalAddr:
				case OpLoad, OpFieldAddr, OpCondBr:
					escape(in.X)
				case OpStore:
					// The address is used, but not escaped: a
					// store alone cannot keep an alloca alive.
					mark(in.X)
					escape(in.Y)
				case OpBin, OpFieldStore:
					escape(in.X)
					escape(in.Y)
				case OpCall, OpCallPtr:
					escape(in.X)
					for _, a := range in.Args {
						escape(a)
					}
				case OpRet:
					if in.HasX {
						escape(in.X)
					}
				}
			}
		}
		deadAlloca := func(r int) bool {
			return r >= 0 && r < len(isAlloca) && isAlloca[r] && !escaped[r]
		}

		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for _, in := range b.Instrs {
				dead := false
				switch in.Op {
				case OpConst, OpFnAddr, OpGlobalAddr, OpFieldAddr, OpAllocHeap, OpLoad, OpBin:
					// Pure producers: dead when the result is unused.
					dead = in.Dst >= 0 && used[in.Dst] == 0
				case OpAlloca:
					dead = in.Dst >= 0 && (used[in.Dst] == 0 || deadAlloca(in.Dst))
				case OpStore:
					// A store into a never-loaded local is dead.
					dead = deadAlloca(in.X)
				}
				if dead {
					changed = true
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}

		if !changed {
			return
		}
	}
}
