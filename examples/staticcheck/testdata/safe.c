/*
 * A provably-safe temporal assertion: every path into process() runs
 * audit_log() first, so the static checker (cmd/tesla-check) classifies
 * the assertion PROVABLY-SAFE and the toolchain can elide all of its
 * instrumentation.
 */

int audit_log(int event) {
	return event - event;
}

int process(int x) {
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	return x + 1;
}

int main(int x) {
	int logged = audit_log(x);
	int n = x;
	while (n > 0) {
		n = n - 1;
	}
	return process(x);
}
