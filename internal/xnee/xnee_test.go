package xnee

import (
	"reflect"
	"strings"
	"testing"

	"tesla/internal/gui"
	"tesla/internal/objc"
)

func TestDialogSessionDeterministic(t *testing.T) {
	a := DialogSession(32)
	b := DialogSession(32)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sessions must replay identically")
	}
	if len(a.Batches) != 32 {
		t.Fatalf("batches = %d", len(a.Batches))
	}
	// Every 16th iteration is a complete redraw.
	exposes := 0
	for _, batch := range a.Batches {
		for _, ev := range batch {
			if ev.Kind == gui.Expose {
				exposes++
			}
		}
	}
	if exposes != 2 {
		t.Fatalf("exposes = %d", exposes)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := DialogSession(8)
	s.Batches = append(s.Batches, []gui.Event{{Kind: gui.Invalidate}})
	var sb strings.Builder
	if err := s.Save(&sb); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip changed script:\n%v\n%v", s, s2)
	}
}

func TestLoadErrors(t *testing.T) {
	for _, bad := range []string{"frobnicate 1 2\n---\n", "motion x y\n---\n"} {
		if _, err := Load(strings.NewReader(bad)); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestReplayDrivesWindow(t *testing.T) {
	rt := objc.NewRuntime(objc.NoTracing)
	w := gui.NewWindow(rt, gui.NewOldBackend())
	w.AddView(gui.Rect{X: 0, Y: 0, W: 400, H: 300}, 1, 4, false)
	rl := gui.NewRunLoop(w, nil)
	Replay(rl, DialogSession(64))
	if w.Redraws == 0 {
		t.Fatal("replay produced no full redraws")
	}
	if rt.MsgCount == 0 {
		t.Fatal("replay produced no message sends")
	}
}

func TestCursorCrossingShape(t *testing.T) {
	s := CursorCrossing(gui.Rect{X: 0, Y: 0, W: 100, H: 100}, 2)
	if len(s.Batches) != 6 {
		t.Fatalf("batches = %d", len(s.Batches))
	}
	// The middle batch of each repeat carries the invalidation.
	if s.Batches[1][0].Kind != gui.Invalidate {
		t.Fatal("invalidate missing")
	}
}
