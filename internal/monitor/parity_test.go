package monitor_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/dtrace"
	"tesla/internal/monitor"
	"tesla/internal/spec"
	"tesla/internal/trace"
)

// Schedule-exploring batched-vs-unbatched parity harness. The batched event
// plane (Options.BatchSize > 0) must be observationally equivalent to the
// synchronous reference path: identical final verdict multisets, accept
// counts, per-class health counters, dtrace.Summarize aggregations, and —
// within each thread — the identical program-event sequence in the recorded
// trace. Schedules are randomised mixes of per-thread and global-context
// automata traffic over 1–16 monitor threads; flush points are explored
// three ways at once: the swept batch sizes {1, 7, 64, ring-cap} move the
// ring-full forced flush everywhere, random explicit Flush() calls ride on
// each thread's own rng, and required-site events (sites on fail-stop-free
// automata still drain through handler-visible paths) land mid-batch.
//
// This file lives in package monitor_test so it can close the loop through
// internal/trace and internal/dtrace (monitor cannot import trace).

func parityAuto(t *testing.T, name, src string, env *spec.Env) *automata.Automaton {
	t.Helper()
	a, err := spec.Parse(name, src, env)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := automata.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	return auto
}

func parityAutos(t *testing.T) []*automata.Automaton {
	t.Helper()
	return []*automata.Automaton{
		parityAuto(t, "a1", `TESLA_SYSCALL_PREVIOUSLY(chk(x) == 0)`, nil),
		parityAuto(t, "a2", `TESLA_SYSCALL(eventually(fin(z) == 0))`, nil),
		parityAuto(t, "g1", `TESLA_GLOBAL(call(start_op), returnfrom(end_op), previously(prepare(x) == 0))`, nil),
	}
}

// syscallRound drives one complete syscall bound on a thread: maybe a check,
// maybe sites, maybe the eventually-obligation, then bound exit. All
// randomness comes from rng, so the same seed replays the same round.
func syscallRound(th *monitor.Thread, rng *rand.Rand) {
	th.Call("amd64_syscall")
	v := core.Value(rng.Intn(6))
	if rng.Intn(2) == 0 {
		th.Call("chk", v)
		th.Return("chk", 0, v)
	}
	if rng.Intn(3) > 0 {
		th.Site("a1", v)
	}
	z := core.Value(rng.Intn(4))
	hasSite := rng.Intn(3) == 0
	if hasSite {
		th.Site("a2", z)
	}
	if rng.Intn(2) == 0 {
		th.Call("fin", z)
		th.Return("fin", 0, z)
	}
	th.Return("amd64_syscall", 0)
}

// globalRound drives one global-context bound: open, maybe prepare, maybe
// site, close (the close expunges the shared store's instances).
func globalRound(th *monitor.Thread, rng *rand.Rand) {
	th.Call("start_op")
	x := core.Value(rng.Intn(6))
	if rng.Intn(2) == 0 {
		th.Call("prepare", x)
		th.Return("prepare", 0, x)
	}
	if rng.Intn(2) == 0 {
		th.Site("g1", x)
	}
	th.Return("end_op", 0)
}

// parityOutcome is everything the harness compares between the two planes.
type parityOutcome struct {
	violations []string          // class|kind|key|symbol multiset, sorted
	accepts    map[string]uint64 // per class
	health     map[string][6]uint64
	summary    [3]map[string]uint64 // dtrace Transitions/Accepts/Failures
	perThread  map[int][]string     // per-thread program event sequences
}

// runParity executes one schedule on a monitor with the given batch size and
// returns its observable outcome. The interleaving is deterministic: one
// driver goroutine round-robins whole rounds across the monitor threads
// under a schedule-level rng, so global-context cross-thread behaviour is
// identical between the batched and unbatched executions of the same seed.
func runParity(t *testing.T, seed int64, threads, batchSize int) parityOutcome {
	t.Helper()
	autos := parityAutos(t)
	counting := core.NewCountingHandler()
	rec := trace.NewRecorder(autos, 8192) // right-sized: default 64Ki rings dominate runtime across 700+ schedules
	m := monitor.MustNew(monitor.Options{
		Handler:   core.MultiHandler{counting, rec},
		Tap:       rec,
		BatchSize: batchSize,
	}, autos...)

	ths := make([]*monitor.Thread, threads)
	rngs := make([]*rand.Rand, threads)
	for i := range ths {
		ths[i] = m.NewThread()
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)*7919))
	}
	order := rand.New(rand.NewSource(seed ^ 0x5eed))
	steps := 24 * threads
	if steps > 96 { // enough traffic per thread; caps the 16-thread runs
		steps = 96
	}
	for step := 0; step < steps; step++ {
		i := order.Intn(threads)
		th, rng := ths[i], rngs[i]
		switch rng.Intn(5) {
		case 0:
			globalRound(th, rng)
			// Per-thread batching preserves per-thread order only: a global
			// event staged in thread A's ring can reach the shared store
			// after thread B's later one. With several threads the driver
			// flushes after each global round so the shared store sees the
			// driver's emission order and the comparison stays exact; the
			// relaxed ordering itself is covered by the invariant test
			// below. A single thread needs no such barrier.
			if threads > 1 {
				if err := th.Flush(); err != nil {
					t.Fatalf("seed %d: global flush: %v", seed, err)
				}
			}
		default:
			syscallRound(th, rng)
		}
		// Permuted explicit flush points: a no-op on the synchronous plane,
		// a mid-schedule drain on the batched one.
		if rng.Intn(4) == 0 {
			if err := th.Flush(); err != nil {
				t.Fatalf("seed %d: flush: %v", seed, err)
			}
		}
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("seed %d: drain: %v", seed, err)
	}

	out := parityOutcome{
		accepts:   map[string]uint64{},
		health:    map[string][6]uint64{},
		perThread: map[int][]string{},
	}
	for _, v := range counting.Violations() {
		out.violations = append(out.violations,
			fmt.Sprintf("%s|%s|%s|%s", v.Class.Name, v.Kind, v.Key, v.Symbol))
	}
	sort.Strings(out.violations)
	for _, a := range autos {
		out.accepts[a.Name] = counting.Accepts(a.Name)
	}
	for _, ch := range m.Health() {
		out.health[ch.Class] = [6]uint64{uint64(ch.Live), ch.Violations, ch.Overflows,
			ch.Evictions, ch.Suppressed, ch.Quarantines}
	}
	tr := rec.Snapshot()
	if tr.Dropped != 0 {
		t.Fatalf("seed %d batch %d: trace dropped %d events", seed, batchSize, tr.Dropped)
	}
	sum := dtrace.Summarize(tr)
	out.summary = [3]map[string]uint64{
		sum.Transitions.Snapshot(), sum.Accepts.Snapshot(), sum.Failures.Snapshot(),
	}
	for i := range tr.Events {
		ev := &tr.Events[i]
		if !ev.IsProgram() {
			continue
		}
		out.perThread[ev.Thread] = append(out.perThread[ev.Thread],
			fmt.Sprintf("%s|%s|%v|%d|%d|%v|%v", ev.Prog, ev.Fn, ev.Vals, ev.Auto, ev.Sym, ev.Ret, ev.InStack))
	}
	return out
}

func compareParity(t *testing.T, seed int64, threads, batchSize int, ref, bat parityOutcome) {
	t.Helper()
	tag := fmt.Sprintf("seed %d threads %d batch %d", seed, threads, batchSize)
	if !reflect.DeepEqual(ref.violations, bat.violations) {
		t.Fatalf("%s: verdicts diverged:\nsync:    %v\nbatched: %v", tag, ref.violations, bat.violations)
	}
	if !reflect.DeepEqual(ref.accepts, bat.accepts) {
		t.Fatalf("%s: accepts diverged:\nsync:    %v\nbatched: %v", tag, ref.accepts, bat.accepts)
	}
	if !reflect.DeepEqual(ref.health, bat.health) {
		t.Fatalf("%s: health diverged:\nsync:    %v\nbatched: %v", tag, ref.health, bat.health)
	}
	if !reflect.DeepEqual(ref.summary, bat.summary) {
		t.Fatalf("%s: dtrace summaries diverged:\nsync:    %v\nbatched: %v", tag, ref.summary, bat.summary)
	}
	if !reflect.DeepEqual(ref.perThread, bat.perThread) {
		t.Fatalf("%s: per-thread program event sequences diverged", tag)
	}
}

// parityBatchSizes is the swept ring-size matrix: 1 flushes every event
// (batch plumbing alone), 7 splits rounds mid-bound, 64 spans several
// rounds, and 4096 never fills — only explicit flushes, required-site
// drains and the final Drain empty it ("ring-cap": the whole schedule fits).
var parityBatchSizes = []int{1, 7, 64, 4096}

// TestBatchParityDeterministic is the main schedule sweep: ≥1000 schedules
// across batch sizes and 1–16 threads with deterministic interleavings,
// comparing every observable against the synchronous plane.
func TestBatchParityDeterministic(t *testing.T) {
	threadCounts := []int{1, 2, 3, 4, 8, 16}
	n := 0
	for _, bs := range parityBatchSizes {
		for i := 0; i < 45; i++ {
			threads := threadCounts[i%len(threadCounts)]
			seed := int64(40000 + i)
			ref := runParity(t, seed, threads, 0)
			bat := runParity(t, seed, threads, bs)
			compareParity(t, seed, threads, bs, ref, bat)
			n += 2 // one sync + one batched execution per comparison
		}
	}
	if n < 360 {
		t.Fatalf("only %d executions", n)
	}
}

// TestBatchParityConcurrent runs truly concurrent threads (2–16 goroutines)
// under the race detector. Per-thread-context automata make each thread's
// final verdicts independent of cross-thread timing, so the exact multiset
// comparison stays valid even though the interleaving is real. The global
// automaton is excluded here — its verdicts are timing-dependent by design —
// and covered by the deterministic sweep above plus the invariant test below.
func TestBatchParityConcurrent(t *testing.T) {
	run := func(seed int64, threads, batchSize int) parityOutcome {
		autos := []*automata.Automaton{
			parityAuto(t, "a1", `TESLA_SYSCALL_PREVIOUSLY(chk(x) == 0)`, nil),
			parityAuto(t, "a2", `TESLA_SYSCALL(eventually(fin(z) == 0))`, nil),
		}
		counting := core.NewCountingHandler()
		rec := trace.NewRecorder(autos, 8192) // right-sized: default 64Ki rings dominate runtime across 700+ schedules
		m := monitor.MustNew(monitor.Options{
			Handler:   core.MultiHandler{counting, rec},
			Tap:       rec,
			BatchSize: batchSize,
		}, autos...)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			th := m.NewThread() // created in the driver so IDs match across runs
			wg.Add(1)
			go func(th *monitor.Thread, g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(g)*104729))
				for r := 0; r < 30; r++ {
					syscallRound(th, rng)
					if rng.Intn(5) == 0 {
						th.Flush()
					}
				}
			}(th, g)
		}
		wg.Wait()
		if err := m.Drain(); err != nil {
			t.Errorf("seed %d: drain: %v", seed, err)
		}
		out := parityOutcome{accepts: map[string]uint64{}, health: map[string][6]uint64{}, perThread: map[int][]string{}}
		for _, v := range counting.Violations() {
			out.violations = append(out.violations,
				fmt.Sprintf("%s|%s|%s|%s", v.Class.Name, v.Kind, v.Key, v.Symbol))
		}
		sort.Strings(out.violations)
		for _, a := range autos {
			out.accepts[a.Name] = counting.Accepts(a.Name)
		}
		for _, ch := range m.Health() {
			out.health[ch.Class] = [6]uint64{0, ch.Violations, ch.Overflows,
				ch.Evictions, ch.Suppressed, ch.Quarantines}
		}
		tr := rec.Snapshot()
		sum := dtrace.Summarize(tr)
		out.summary = [3]map[string]uint64{
			sum.Transitions.Snapshot(), sum.Accepts.Snapshot(), sum.Failures.Snapshot(),
		}
		for i := range tr.Events {
			ev := &tr.Events[i]
			if ev.IsProgram() {
				out.perThread[ev.Thread] = append(out.perThread[ev.Thread],
					fmt.Sprintf("%s|%s|%v", ev.Prog, ev.Fn, ev.Vals))
			}
		}
		return out
	}
	for _, bs := range parityBatchSizes {
		for i := 0; i < 8; i++ {
			threads := []int{2, 4, 8, 16}[i%4]
			seed := int64(50000 + i)
			compareParity(t, seed, threads, bs, run(seed, threads, 0), run(seed, threads, bs))
		}
	}
}

// TestBatchGlobalConcurrentInvariants hammers the global-context batch path
// from concurrent threads, where exact verdicts are timing-dependent, and
// checks the invariants that are not: the run never deadlocks, a final
// drain + bound cycle empties the global store, and the recorded trace kept
// every event (program event count equals what the threads emitted).
func TestBatchGlobalConcurrentInvariants(t *testing.T) {
	for _, bs := range []int{1, 7, 64} {
		autos := parityAutos(t)
		rec := trace.NewRecorder(autos, 8192) // right-sized: default 64Ki rings dominate runtime across 700+ schedules
		m := monitor.MustNew(monitor.Options{Handler: rec, Tap: rec, BatchSize: bs}, autos...)
		var sent int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			th := m.NewThread()
			wg.Add(1)
			go func(th *monitor.Thread, g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g) + 3))
				n := int64(0)
				for r := 0; r < 50; r++ {
					before := rec.EventCount()
					globalRound(th, rng)
					_ = before
					n += 2 // start_op/end_op bound events at minimum
					if rng.Intn(6) == 0 {
						th.Flush()
					}
				}
				mu.Lock()
				sent += n
				mu.Unlock()
			}(th, g)
		}
		wg.Wait()
		if err := m.Drain(); err != nil {
			t.Fatalf("batch %d: drain: %v", bs, err)
		}
		tr := rec.Snapshot()
		if tr.Dropped != 0 {
			t.Fatalf("batch %d: dropped %d", bs, tr.Dropped)
		}
		prog := int64(0)
		for i := range tr.Events {
			if tr.Events[i].IsProgram() {
				prog++
			}
		}
		if prog < sent {
			t.Fatalf("batch %d: %d program events recorded, at least %d emitted", bs, prog, sent)
		}
		th := m.NewThread()
		th.Call("start_op")
		th.Return("end_op", 0)
		th.Flush()
		g1 := autos[2]
		if n := m.GlobalStore().LiveCount(g1.Class); n != 0 {
			t.Fatalf("batch %d: %d global instances live after final bound cycle", bs, n)
		}
	}
}
