package agg

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"tesla/internal/core"
	"tesla/internal/trace"
)

// Client is the producer side of the wire protocol: it streams delta
// traces to a tesla-agg server without ever blocking the monitored
// program. Sends enqueue pre-encoded frames into a bounded buffer
// drained by one writer goroutine; a broken connection is retried with
// backoff while the buffer absorbs the outage, and when the buffer
// overflows or retries exhaust, frames are dropped and counted — the
// monitored process degrades explicitly (exit 3 via Degraded), it never
// stalls and never lies.
type Client struct {
	opts ClientOpts

	frames chan wireFrame
	done   chan struct{}

	sentFrames    atomic.Uint64
	sentEvents    atomic.Uint64
	droppedFrames atomic.Uint64
	droppedEvents atomic.Uint64
	ringDropped   atomic.Uint64
	reconnects    atomic.Uint64
	byeSent       atomic.Bool
}

// ClientOpts configures a Client.
type ClientOpts struct {
	// Tool and Process identify the producer in the hello frame.
	Tool    string
	Process string
	// Buffer bounds the frames pending while the connection is down or
	// slow (default 256).
	Buffer int
	// Retries bounds reconnection attempts per frame (default 4).
	Retries int
	// Backoff is the base reconnect delay, doubled per attempt
	// (default 50ms).
	Backoff time.Duration
}

// ClientStats is a client's self-accounting; Bye ships it to the server.
type ClientStats struct {
	SentFrames    uint64
	SentEvents    uint64
	DroppedFrames uint64
	DroppedEvents uint64
	RingDropped   uint64
	Reconnects    uint64
}

// Degraded reports whether the client lost anything: a producer whose
// run was otherwise clean must exit 3 when this is set.
func (s ClientStats) Degraded() bool { return s.DroppedFrames|s.DroppedEvents != 0 }

type wireFrame struct {
	kind    byte
	payload []byte
	events  uint64
}

// Dial connects to a tesla-agg server and completes the handshake
// synchronously, so version rejections surface immediately as errors
// naming both sides. The returned client owns the connection.
func Dial(addr string, opts ClientOpts) (*Client, error) {
	if opts.Buffer <= 0 {
		opts.Buffer = 256
	}
	if opts.Retries <= 0 {
		opts.Retries = 4
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	c := &Client{
		opts:   opts,
		frames: make(chan wireFrame, opts.Buffer),
		done:   make(chan struct{}),
	}
	conn, err := c.handshake(addr)
	if err != nil {
		return nil, err
	}
	go c.writer(addr, conn)
	return c, nil
}

// handshake dials addr, sends the magic and hello, and waits for the ack.
func (c *Client) handshake(addr string) (net.Conn, error) {
	network, address := SplitAddr(addr)
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, err
	}
	hello, _ := json.Marshal(Hello{
		Proto: ProtoVersion, Codec: trace.Version,
		Tool: c.opts.Tool, Process: c.opts.Process,
	})
	fw := trace.NewFrameWriter(conn)
	if _, err := conn.Write([]byte(Magic)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := fw.Frame(FrameHello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	kind, payload, err := trace.NewFrameReader(conn).Next()
	if err != nil || kind != FrameHelloAck {
		conn.Close()
		return nil, fmt.Errorf("agg: no hello ack from %s: %v", addr, err)
	}
	var ack HelloAck
	if err := json.Unmarshal(payload, &ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("agg: bad hello ack from %s: %w", addr, err)
	}
	if !ack.OK {
		conn.Close()
		return nil, fmt.Errorf("agg: %s rejected the connection: %s", addr, ack.Message)
	}
	conn.SetReadDeadline(time.Time{})
	return conn, nil
}

// SendTrace encodes tr as one trace frame and enqueues it. It never
// blocks: a full buffer drops the frame, counted.
func (c *Client) SendTrace(tr *trace.Trace) error {
	var body bytes.Buffer
	var prefix [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(prefix[:], uint64(len(tr.Events)))
	body.Write(prefix[:n])
	if err := trace.Write(&body, tr); err != nil {
		return err
	}
	c.ringDropped.Add(tr.Dropped)
	c.enqueue(wireFrame{kind: FrameTrace, payload: body.Bytes(), events: uint64(len(tr.Events))})
	return nil
}

// SendHealth enqueues the producer's merged health counters.
func (c *Client) SendHealth(hs []core.ClassHealth) error {
	payload, err := json.Marshal(HealthRows(hs))
	if err != nil {
		return err
	}
	c.enqueue(wireFrame{kind: FrameHealth, payload: payload})
	return nil
}

func (c *Client) enqueue(f wireFrame) {
	select {
	case c.frames <- f:
	default:
		c.droppedFrames.Add(1)
		c.droppedEvents.Add(f.events)
	}
}

// Stats returns the client's accounting so far.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		SentFrames:    c.sentFrames.Load(),
		SentEvents:    c.sentEvents.Load(),
		DroppedFrames: c.droppedFrames.Load(),
		DroppedEvents: c.droppedEvents.Load(),
		RingDropped:   c.ringDropped.Load(),
		Reconnects:    c.reconnects.Load(),
	}
}

// Close drains the buffer, sends the bye accounting and closes the
// connection. It returns an error when the bye could not be delivered —
// the server will see the close as a mid-stream disconnect.
func (c *Client) Close() error {
	close(c.frames)
	<-c.done
	if !c.byeSent.Load() {
		return fmt.Errorf("agg: connection lost before final accounting was delivered")
	}
	return nil
}

// writer owns the connection: it drains the frame buffer, reconnecting
// with exponential backoff on failures, and finishes with the bye frame.
func (c *Client) writer(addr string, conn net.Conn) {
	defer close(c.done)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	fw := trace.NewFrameWriter(conn)

	send := func(f wireFrame) bool {
		for attempt := 0; ; attempt++ {
			if conn == nil {
				if attempt >= c.opts.Retries {
					return false
				}
				time.Sleep(c.opts.Backoff << attempt)
				fresh, err := c.handshake(addr)
				if err != nil {
					continue
				}
				conn, fw = fresh, trace.NewFrameWriter(fresh)
				c.reconnects.Add(1)
			}
			if err := fw.Frame(f.kind, f.payload); err == nil {
				return true
			}
			conn.Close()
			conn = nil
		}
	}

	for f := range c.frames {
		if send(f) {
			c.sentFrames.Add(1)
			c.sentEvents.Add(f.events)
		} else {
			c.droppedFrames.Add(1)
			c.droppedEvents.Add(f.events)
		}
	}
	// Final accounting. Sent/dropped are complete here: the buffer is
	// drained and only this goroutine updates the sent side.
	st := c.Stats()
	payload, _ := json.Marshal(Bye{
		SentFrames:          st.SentFrames,
		SentEvents:          st.SentEvents,
		ClientDroppedFrames: st.DroppedFrames,
		ClientDroppedEvents: st.DroppedEvents,
		RingDropped:         st.RingDropped,
	})
	if send(wireFrame{kind: FrameBye, payload: payload}) {
		c.byeSent.Store(true)
	}
}
