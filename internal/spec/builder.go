package spec

// This file provides the Go builder DSL, mirroring the high-level TESLA
// macros. Go substrates in this repository use the DSL where C code would
// use TESLA_WITHIN(...) et al.; both produce identical Assertion trees.

// SyscallFn is the function bounding TESLA_SYSCALL* assertions; in the
// paper's FreeBSD case study this is amd64_syscall (fig. 9).
var SyscallFn = "amd64_syscall"

// Within builds TESLA_WITHIN(fn, expr): a per-thread assertion bounded by
// the execution of fn.
func Within(name, fn string, expr Expr) *Assertion {
	return &Assertion{Name: name, Context: PerThread, Bound: WithinBound(fn), Expr: expr}
}

// GlobalWithin is Within in the global (cross-thread) context.
func GlobalWithin(name, fn string, expr Expr) *Assertion {
	a := Within(name, fn, expr)
	a.Context = Global
	return a
}

// Assert builds TESLA_ASSERT(context, start, end, expr) with explicit bounds.
func Assert(name string, ctx Context, bound Bound, expr Expr) *Assertion {
	return &Assertion{Name: name, Context: ctx, Bound: bound, Expr: expr}
}

// SyscallPreviously builds TESLA_SYSCALL_PREVIOUSLY(expr): within the
// current system call, expr previously held (fig. 4).
func SyscallPreviously(name string, exprs ...Expr) *Assertion {
	return Within(name, SyscallFn, Previously(exprs...))
}

// SyscallEventually builds the eventually counterpart within a system call.
func SyscallEventually(name string, exprs ...Expr) *Assertion {
	return Within(name, SyscallFn, Eventually(exprs...))
}

// Syscall builds TESLA_SYSCALL(expr): a syscall-bounded assertion whose
// expression already mentions the assertion site (fig. 7).
func Syscall(name string, expr Expr) *Assertion {
	return Within(name, SyscallFn, expr)
}

// TSequence is TSEQUENCE(e₁, …): the events in order.
func TSequence(exprs ...Expr) Expr { return &Sequence{Exprs: exprs} }

// Previously is previously(x₁, …, xₙ), expanding to
// [x₁, …, xₙ, TESLA_ASSERTION_SITE] (§3.4.1).
func Previously(exprs ...Expr) Expr {
	return &Sequence{Exprs: append(append([]Expr{}, exprs...), Site())}
}

// Eventually is eventually(x₁, …, xₙ), expanding to
// [TESLA_ASSERTION_SITE, x₁, …, xₙ].
func Eventually(exprs ...Expr) Expr {
	return &Sequence{Exprs: append([]Expr{Site()}, exprs...)}
}

// Site is the explicit TESLA_ASSERTION_SITE event.
func Site() Expr { return &AssertionSite{} }

// Or combines expressions with the inclusive-or operator.
func Or(exprs ...Expr) Expr { return &BoolExpr{Op: OrOp, Exprs: exprs} }

// Xor combines expressions with exclusive or.
func Xor(exprs ...Expr) Expr { return &BoolExpr{Op: XorOp, Exprs: exprs} }

// Opt marks a sub-expression optional.
func Opt(e Expr) Expr { return &Optional{Expr: e} }

// AtLeast is ATLEAST(n, events…): n or more occurrences drawn from the
// events, in any order.
func AtLeast(min int, exprs ...Expr) Expr { return &ATLeast{Min: min, Exprs: exprs} }

// InStack is incallstack(fn).
func InStack(fn string) Expr { return &InCallStack{Fn: fn} }

// Call is call(fn(args…)): entry into fn with matching arguments.
func Call(fn string, args ...ArgPattern) *FunctionEvent {
	return &FunctionEvent{Fn: fn, Kind: FuncEntry, Args: args}
}

// ReturnFrom is returnfrom(fn(args…)): return from fn, any return value.
func ReturnFrom(fn string, args ...ArgPattern) *FunctionEvent {
	return &FunctionEvent{Fn: fn, Kind: FuncExit, Args: args}
}

// Returns constrains the event to returns whose value matches v, converting
// a call pattern into the grammar's `fn(args) == val` form.
func (f *FunctionEvent) Returns(v ArgPattern) *FunctionEvent {
	g := *f
	g.Kind = FuncExit
	g.Ret = &v
	return &g
}

// ReturnsInt is shorthand for Returns(Int(v)).
func (f *FunctionEvent) ReturnsInt(v int64) *FunctionEvent { return f.Returns(Int(v)) }

// Callee forces callee-side instrumentation for this event.
func (f *FunctionEvent) Callee() *FunctionEvent {
	g := *f
	g.Side = SideCallee
	return &g
}

// Caller forces caller-side instrumentation for this event.
func (f *FunctionEvent) Caller() *FunctionEvent {
	g := *f
	g.Side = SideCaller
	return &g
}

// Msg is an Objective-C message-send event: [receiver selector args…].
func Msg(receiver ArgPattern, selector string, args ...ArgPattern) *FunctionEvent {
	return &FunctionEvent{
		Fn:   selector,
		Kind: FuncEntry,
		Args: append([]ArgPattern{receiver}, args...),
		ObjC: true,
	}
}

// MsgReturn observes the return of an Objective-C message (fig. 8's "extra
// events on method return").
func MsgReturn(receiver ArgPattern, selector string, args ...ArgPattern) *FunctionEvent {
	m := Msg(receiver, selector, args...)
	m.Kind = FuncExit
	return m
}

// FieldAssign is the event `target.field = value` for struct type structName.
func FieldAssign(structName, field string, target, value ArgPattern) *FieldAssignEvent {
	return &FieldAssignEvent{Struct: structName, Field: field, Op: OpAssign, Target: target, Value: value}
}

// FieldAddAssign is `target.field += value`.
func FieldAddAssign(structName, field string, target, value ArgPattern) *FieldAssignEvent {
	return &FieldAssignEvent{Struct: structName, Field: field, Op: OpAddAssign, Target: target, Value: value}
}

// FieldIncr is `target.field++`.
func FieldIncr(structName, field string, target ArgPattern) *FieldAssignEvent {
	return &FieldAssignEvent{Struct: structName, Field: field, Op: OpIncr, Target: target, Value: Any("")}
}

// Any is ANY(type): match any value of the named C type.
func Any(ctype string) ArgPattern { return ArgPattern{Kind: PatAny, CType: ctype} }

// AnyPtr is ANY(ptr).
func AnyPtr() ArgPattern { return Any("ptr") }

// AnyInt is ANY(int).
func AnyInt() ArgPattern { return Any("int") }

// Int matches the exact constant v.
func Int(v int64) ArgPattern { return ArgPattern{Kind: PatConst, Const: v} }

// Var matches the scope variable name; occurrences of the same name bind
// one automaton key slot.
func Var(name string) ArgPattern { return ArgPattern{Kind: PatVar, Var: name} }

// Flags requires all bits of f to be set (minimal bitfield pattern).
func Flags(f int64) ArgPattern { return ArgPattern{Kind: PatFlags, Const: f} }

// Bitmask requires no bits outside f (maximal bitfield pattern).
func Bitmask(f int64) ArgPattern { return ArgPattern{Kind: PatBitmask, Const: f} }

// Deref matches indirectly: the pattern applies to the value the argument
// points at (the C address-of form &x, for out-parameters).
func Deref(p ArgPattern) ArgPattern {
	p.Indirect = true
	return p
}
