//go:build race

package agg

// Under the race detector every schedule runs several times slower and
// the goal shifts from kill-point coverage to catching data races, so a
// smaller deterministic sample keeps the race gate inside its budget.
const crashSeeds = 10
