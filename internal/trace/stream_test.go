package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/core"
)

// TestStreamDecoderMatchesRead pins the incremental decoder to the batch
// reader: same header, same events, same errors, over a corpus of random
// traces.
func TestStreamDecoderMatchesRead(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		tr := randomTrace(r)
		var bin bytes.Buffer
		if err := Write(&bin, tr); err != nil {
			t.Fatal(err)
		}
		want, err := Read(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("#%d: Read: %v", i, err)
		}
		sd, err := NewStreamDecoder(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("#%d: NewStreamDecoder: %v", i, err)
		}
		if !reflect.DeepEqual(sd.Automata(), want.Automata) || sd.Dropped() != want.Dropped {
			t.Fatalf("#%d: header mismatch", i)
		}
		if sd.Len() != len(want.Events) {
			t.Fatalf("#%d: Len() = %d, want %d", i, sd.Len(), len(want.Events))
		}
		var got []Event
		for {
			ev, err := sd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("#%d: Next: %v", i, err)
			}
			got = append(got, ev)
		}
		if !reflect.DeepEqual(got, want.Events) {
			t.Fatalf("#%d: streamed events differ from Read", i)
		}
		if _, err := sd.Next(); err != io.EOF {
			t.Fatalf("#%d: Next after EOF = %v, want io.EOF", i, err)
		}
	}
}

// TestStreamDecoderTruncation: cutting the encoding anywhere must produce
// an error from the header or from some Next call — never a silently
// short stream that still reports success.
func TestStreamDecoderTruncation(t *testing.T) {
	tr := fuzzSeedTrace()
	var bin bytes.Buffer
	if err := Write(&bin, tr); err != nil {
		t.Fatal(err)
	}
	data := bin.Bytes()
	for cut := 0; cut < len(data); cut++ {
		sd, err := NewStreamDecoder(bytes.NewReader(data[:cut]))
		if err != nil {
			continue // header rejected: fine
		}
		n := 0
		for {
			_, err := sd.Next()
			if err == io.EOF {
				if n != sd.Len() {
					t.Fatalf("cut=%d: clean EOF after %d of %d events", cut, n, sd.Len())
				}
				// The declared count was satisfied before the cut — only
				// possible if the cut landed in trailing bytes, which a
				// complete trace does not have.
				t.Fatalf("cut=%d: truncated stream decoded completely", cut)
			}
			if err != nil {
				break // reported: good
			}
			n++
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	frames := []struct {
		kind    byte
		payload []byte
	}{
		{1, nil},
		{2, []byte("hello")},
		{3, bytes.Repeat([]byte{0xAB}, 1<<16)},
		{4, []byte{}},
	}
	for _, f := range frames {
		if err := fw.Frame(f.kind, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	for i, f := range frames {
		kind, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != f.kind || !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d: kind=%d len=%d, want kind=%d len=%d", i, kind, len(payload), f.kind, len(f.payload))
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// TestFrameReaderTruncation distinguishes the clean boundary (io.EOF)
// from mid-frame truncation (io.ErrUnexpectedEOF).
func TestFrameReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.Frame(2, []byte("payload bytes")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 1; cut < len(data); cut++ {
		fr := NewFrameReader(bytes.NewReader(data[:cut]))
		_, _, err := fr.Next()
		if err == nil {
			t.Fatalf("cut=%d: truncated frame accepted", cut)
		}
		if err == io.EOF {
			t.Fatalf("cut=%d: mid-frame truncation reported as clean EOF", cut)
		}
	}
	// Oversized length prefix must be rejected without allocating it.
	huge := append([]byte{1}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	if _, _, err := NewFrameReader(bytes.NewReader(huge)).Next(); err == nil {
		t.Fatal("implausible frame length accepted")
	}
}

// TestCutSinceExactAccounting drives a recorder past ring overflow and
// checks the delta contract: summing delta lengths and delta Dropped
// fields over any flush schedule accounts for every recorded event
// exactly once.
func TestCutSinceExactAccounting(t *testing.T) {
	autos := []*automata.Automaton{{Name: "a"}}
	cls := &core.Class{Name: "a", States: 4, Limit: 4}
	for _, flushEvery := range []int{1, 3, 7, 100, 100000} {
		rec := NewRecorder(autos, 8) // tiny rings: overflow is the point
		var cut *Cut
		var delivered, lost uint64
		var total int
		flush := func() {
			tr, next := rec.CutSince(cut)
			cut = next
			delivered += uint64(len(tr.Events))
			lost += tr.Dropped
			for i := 1; i < len(tr.Events); i++ {
				if tr.Events[i].Seq <= tr.Events[i-1].Seq {
					t.Fatal("delta not Seq-ordered")
				}
			}
		}
		for i := 0; i < 500; i++ {
			rec.Transition(cls, &core.Instance{Key: core.NewKey(core.Value(i))}, 0, 1, "sym")
			total++
			if total%flushEvery == 0 {
				flush()
			}
		}
		flush()
		if delivered+lost != uint64(total) {
			t.Fatalf("flushEvery=%d: delivered %d + lost %d != recorded %d",
				flushEvery, delivered, lost, total)
		}
		if flushEvery <= 8 && lost != 0 {
			t.Fatalf("flushEvery=%d: lost %d events despite flushing within ring capacity", flushEvery, lost)
		}
		if flushEvery == 100000 && lost == 0 {
			t.Fatal("single final cut over a tiny ring lost nothing; overflow accounting untested")
		}
	}
}

// TestCutSinceInjectedDrops: DropFault rejections are charged to the cut
// in which they happened, once.
func TestCutSinceInjectedDrops(t *testing.T) {
	autos := []*automata.Automaton{{Name: "a"}}
	cls := &core.Class{Name: "a", States: 4, Limit: 4}
	rec := NewRecorder(autos, 64)
	n := 0
	rec.DropFault = func() bool { n++; return n%2 == 0 }
	for i := 0; i < 10; i++ {
		rec.Accept(cls, &core.Instance{Key: core.NewKey(core.Value(i))})
	}
	tr, cut := rec.CutSince(nil)
	if len(tr.Events) != 5 || tr.Dropped != 5 {
		t.Fatalf("first cut: %d events, %d dropped; want 5, 5", len(tr.Events), tr.Dropped)
	}
	tr2, _ := rec.CutSince(cut)
	if len(tr2.Events) != 0 || tr2.Dropped != 0 {
		t.Fatalf("idle cut: %d events, %d dropped; want 0, 0", len(tr2.Events), tr2.Dropped)
	}
}
