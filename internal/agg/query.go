package agg

import (
	"fmt"
	"sort"

	"tesla/internal/dtrace"
	"tesla/internal/trace"
)

// Query results. Every slice is sorted (count descending, then name
// ascending — dtrace's printa ordering) and every struct marshals with a
// fixed field order, so query output is byte-stable for a given fleet
// state: scripts can diff it, and the examples pin it with goldens.

// FleetSummary is the top-level fleet report.
type FleetSummary struct {
	Producers      []ProducerStat `json:"producers"`
	TotalFrames    uint64         `json:"totalFrames"`
	TotalEvents    uint64         `json:"totalEvents"`
	DroppedFrames  uint64         `json:"droppedFrames"`
	DroppedEvents  uint64         `json:"droppedEvents"`
	RingDropped    uint64         `json:"ringDropped"`
	ClientDropped  uint64         `json:"clientDropped"`
	Classes        []ClassStat    `json:"classes"`
	FailureSites   int            `json:"failureSites"`
	TotalFailures  uint64         `json:"totalFailures"`
	CleanProducers int            `json:"cleanProducers"`
	Disconnected   int            `json:"disconnected"`
}

// ProducerStat is one producer's accounting.
type ProducerStat struct {
	Process       string `json:"process"`
	Tool          string `json:"tool,omitempty"`
	Connected     bool   `json:"connected"`
	Clean         bool   `json:"clean"`
	Disconnects   int    `json:"disconnects,omitempty"`
	Frames        uint64 `json:"frames"`
	Events        uint64 `json:"events"`
	DroppedFrames uint64 `json:"droppedFrames"`
	DroppedEvents uint64 `json:"droppedEvents"`
	RingDropped   uint64 `json:"ringDropped"`
	BadFrames     uint64 `json:"badFrames,omitempty"`
	// DupFrames/DupEvents count deduplicated resends (proto v2): frames a
	// recovering producer sent again that the server had already applied.
	// They are evidence of exactly-once at work, not double-counting —
	// Frames/Events exclude them.
	DupFrames     uint64 `json:"dupFrames,omitempty"`
	DupEvents     uint64 `json:"dupEvents,omitempty"`
	SentFrames    uint64 `json:"sentFrames,omitempty"`
	SentEvents    uint64 `json:"sentEvents,omitempty"`
	ClientDropped uint64 `json:"clientDropped,omitempty"`
}

// ClassStat is one automaton class's fleet-wide verdict counts.
type ClassStat struct {
	Class       string `json:"class"`
	Transitions uint64 `json:"transitions"`
	Accepts     uint64 `json:"accepts"`
	Failures    uint64 `json:"failures"`
}

// FailureSite answers "which assertion failed where, fleet-wide": one
// (class, verdict, symbol) site with its total and per-process split.
type FailureSite struct {
	Class      string      `json:"class"`
	Verdict    string      `json:"verdict"`
	Symbol     string      `json:"symbol,omitempty"`
	Total      uint64      `json:"total"`
	PerProcess []ProcCount `json:"perProcess"`
}

// ProcCount is one process's share of a site.
type ProcCount struct {
	Process string `json:"process"`
	Count   uint64 `json:"count"`
}

// SiteCount is one entry of a per-class top-K site ranking.
type SiteCount struct {
	Site  string `json:"site"`
	Count uint64 `json:"count"`
}

// FleetHealth is one class's health counters summed across the fleet.
type FleetHealth struct {
	Class         string `json:"class"`
	Quarantined   int    `json:"quarantined"` // processes currently quarantining the class
	Live          int    `json:"live"`
	Violations    uint64 `json:"violations"`
	Overflows     uint64 `json:"overflows"`
	Evictions     uint64 `json:"evictions"`
	Suppressed    uint64 `json:"suppressed"`
	Quarantines   uint64 `json:"quarantines"`
	HandlerPanics uint64 `json:"handlerPanics"`
}

// forEachSite runs fn over every aggregated cell under its stripe lock.
func (s *Store) forEachSite(fn func(k siteKey, a *siteAgg)) {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for k, a := range st.sites {
			fn(k, a)
		}
		st.mu.Unlock()
	}
}

// Fleet builds the fleet summary.
func (s *Store) Fleet() FleetSummary {
	sum := FleetSummary{
		TotalFrames:   s.frames.Load(),
		TotalEvents:   s.events.Load(),
		DroppedFrames: s.droppedFrames.Load(),
		DroppedEvents: s.droppedEvents.Load(),
	}

	classes := map[string]*ClassStat{}
	s.forEachSite(func(k siteKey, a *siteAgg) {
		cs := classes[k.class]
		if cs == nil {
			cs = &ClassStat{Class: k.class}
			classes[k.class] = cs
		}
		switch k.kind {
		case trace.KindTransition:
			cs.Transitions += a.count
		case trace.KindAccept:
			cs.Accepts += a.count
		case trace.KindFail:
			cs.Failures += a.count
			sum.TotalFailures += a.count
			sum.FailureSites++
		}
	})
	for _, cs := range classes {
		sum.Classes = append(sum.Classes, *cs)
	}
	sort.Slice(sum.Classes, func(i, j int) bool { return sum.Classes[i].Class < sum.Classes[j].Class })

	s.mu.Lock()
	for _, p := range s.procs {
		ps := ProducerStat{
			Process:       p.process,
			Tool:          p.tool,
			Connected:     p.connections > 0,
			Clean:         p.clean,
			Disconnects:   p.disconnects,
			Frames:        p.frames,
			Events:        p.events,
			DroppedFrames: p.droppedFrames,
			DroppedEvents: p.droppedEvents,
			RingDropped:   p.ringDropped,
			BadFrames:     p.badFrames,
			DupFrames:     p.dupFrames,
			DupEvents:     p.dupEvents,
		}
		if p.hasBye {
			ps.SentFrames = p.bye.SentFrames
			ps.SentEvents = p.bye.SentEvents
			ps.ClientDropped = p.bye.ClientDroppedEvents
			sum.ClientDropped += p.bye.ClientDroppedEvents
		}
		sum.RingDropped += p.ringDropped
		if p.clean {
			sum.CleanProducers++
		}
		if p.disconnects > 0 {
			sum.Disconnected++
		}
		sum.Producers = append(sum.Producers, ps)
	}
	s.mu.Unlock()
	sort.Slice(sum.Producers, func(i, j int) bool { return sum.Producers[i].Process < sum.Producers[j].Process })
	return sum
}

// Failures lists every failing site fleet-wide, most frequent first.
func (s *Store) Failures() []FailureSite {
	type fleetKey struct{ class, verdict, symbol string }
	merged := map[fleetKey]map[string]uint64{}
	s.forEachSite(func(k siteKey, a *siteAgg) {
		if k.kind != trace.KindFail {
			return
		}
		fk := fleetKey{k.class, k.verdict, k.symbol}
		if merged[fk] == nil {
			merged[fk] = map[string]uint64{}
		}
		merged[fk][k.process] += a.count
	})
	out := make([]FailureSite, 0, len(merged))
	for fk, procs := range merged {
		site := FailureSite{Class: fk.class, Verdict: fk.verdict, Symbol: fk.symbol}
		for proc, n := range procs {
			site.Total += n
			site.PerProcess = append(site.PerProcess, ProcCount{Process: proc, Count: n})
		}
		sort.Slice(site.PerProcess, func(i, j int) bool {
			a, b := site.PerProcess[i], site.PerProcess[j]
			if a.Count != b.Count {
				return a.Count > b.Count
			}
			return a.Process < b.Process
		})
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Verdict != b.Verdict {
			return a.Verdict < b.Verdict
		}
		return a.Symbol < b.Symbol
	})
	return out
}

// TopK ranks a class's hottest transition sites fleet-wide. k <= 0 means
// all sites.
func (s *Store) TopK(class string, k int) []SiteCount {
	counts := map[string]uint64{}
	s.forEachSite(func(sk siteKey, a *siteAgg) {
		if sk.kind != trace.KindTransition || sk.class != class {
			return
		}
		counts[fmt.Sprintf("%d->%d @ %s", sk.from, sk.to, sk.symbol)] += a.count
	})
	out := make([]SiteCount, 0, len(counts))
	for site, n := range counts {
		out = append(out, SiteCount{Site: site, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Site < out[j].Site
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Samples returns the reservoir-sampled failure windows for a class (all
// classes when class is empty), in a stable order.
func (s *Store) Samples(class string) []Sample {
	var out []Sample
	s.forEachSite(func(k siteKey, a *siteAgg) {
		if k.kind != trace.KindFail || (class != "" && k.class != class) {
			return
		}
		for _, smp := range a.samples {
			out = append(out, Sample{Process: smp.Process, Events: append([]trace.Event(nil), smp.Events...)})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Process != b.Process {
			return a.Process < b.Process
		}
		return a.Events[len(a.Events)-1].Seq < b.Events[len(b.Events)-1].Seq
	})
	return out
}

// Health sums each class's latest per-producer health rows fleet-wide.
func (s *Store) Health() []FleetHealth {
	merged := map[string]*FleetHealth{}
	s.mu.Lock()
	for _, p := range s.procs {
		for class, row := range p.health {
			fh := merged[class]
			if fh == nil {
				fh = &FleetHealth{Class: class}
				merged[class] = fh
			}
			if row.Quarantined {
				fh.Quarantined++
			}
			fh.Live += row.Live
			fh.Violations += row.Violations
			fh.Overflows += row.Overflows
			fh.Evictions += row.Evictions
			fh.Suppressed += row.Suppressed
			fh.Quarantines += row.Quarantines
			fh.HandlerPanics += row.HandlerPanics
		}
	}
	s.mu.Unlock()
	out := make([]FleetHealth, 0, len(merged))
	for _, fh := range merged {
		out = append(out, *fh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// Summarize rebuilds the dtrace.Summarize aggregations from the fleet
// store: the same keys, the same counts, as if every producer's trace had
// been concatenated and summarised offline. This is the differential
// surface the parity tests pin — fleet aggregation must be
// dtrace.Summarize scaled out, not a different answer.
func (s *Store) Summarize() *dtrace.Handler {
	h := dtrace.NewHandler(nil)
	s.forEachSite(func(k siteKey, a *siteAgg) {
		switch k.kind {
		case trace.KindTransition:
			h.Transitions.Add(dtrace.Key(k.class, fmt.Sprintf("%d->%d", k.from, k.to), k.symbol), a.count)
		case trace.KindAccept:
			h.Accepts.Add(dtrace.Key(k.class), a.count)
		case trace.KindFail:
			h.Failures.Add(dtrace.Key(k.class, k.verdict), a.count)
		}
	})
	return h
}
