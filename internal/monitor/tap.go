package monitor

import (
	"tesla/internal/core"
	"tesla/internal/spec"
)

// This file is the monitor's raw-event tap: an optional observer that sees
// every program event entering a Thread *before* dispatch, in the exact form
// needed to reproduce the dispatch later. internal/trace builds its ring
// buffers on this interface; the replayer feeds recorded events back through
// the same Thread entry points without re-running the VM or substrate.
//
// The tap is zero-cost when absent: every emission site is guarded by a
// single nil check on the thread's sink.

// ProgKind classifies raw program events (the Thread entry points).
type ProgKind uint8

const (
	// ProgCall is Thread.Call: entry into a named function.
	ProgCall ProgKind = iota
	// ProgReturn is Thread.Return: return from a named function.
	ProgReturn
	// ProgSend is Thread.Send: an Objective-C message send.
	ProgSend
	// ProgSendReturn is Thread.SendReturn: an Objective-C message return.
	ProgSendReturn
	// ProgAssign is Thread.Assign: a structure-field assignment.
	ProgAssign
	// ProgSite is Thread.Site/SiteByIndex: execution reaching an assertion
	// site, with incallstack branches already resolved (InStack).
	ProgSite
	// ProgBoundBegin is Thread.BoundBegin: an IR bound-entry hook.
	ProgBoundBegin
	// ProgBoundEnd is Thread.BoundEnd: an IR bound-exit hook.
	ProgBoundEnd
	// ProgDeliver is Thread.Deliver: a pre-matched event from a generated
	// translator (automaton index + symbol ID + captured values).
	ProgDeliver
)

func (k ProgKind) String() string {
	switch k {
	case ProgCall:
		return "call"
	case ProgReturn:
		return "return"
	case ProgSend:
		return "send"
	case ProgSendReturn:
		return "send-return"
	case ProgAssign:
		return "assign"
	case ProgSite:
		return "site"
	case ProgBoundBegin:
		return "bound-begin"
	case ProgBoundEnd:
		return "bound-end"
	case ProgDeliver:
		return "deliver"
	default:
		return "ProgKind(?)"
	}
}

// ProgramEvent is one raw event as it entered a Thread. Slice fields (Vals,
// InStack) are borrowed from the caller's stack: a sink that retains the
// event beyond the callback must copy them.
type ProgramEvent struct {
	Kind ProgKind
	// Time is the thread's clock at the event (VM step count when the
	// thread is attached to a VM; 0 without a clock).
	Time int64
	// Fn is the function name, selector, struct name (Assign) or
	// automaton name (Site), per Kind.
	Fn string
	// Field is the assigned field for ProgAssign.
	Field string
	// Op is the assignment operator for ProgAssign.
	Op spec.AssignOp
	// Auto/Sym locate the automaton and symbol for ProgSite (Auto only)
	// and ProgDeliver.
	Auto, Sym int
	// Slot is the bound slot for ProgBoundBegin/ProgBoundEnd.
	Slot int
	// Ret is the return value for ProgReturn/ProgSendReturn.
	Ret    core.Value
	HasRet bool
	// Vals are the event's observed values: arguments (Call/Return),
	// receiver then arguments (Send/SendReturn), {target, value}
	// (Assign), scope-variable values (Site), captured values (Deliver).
	Vals []core.Value
	// InStack lists the incallstack symbol IDs that matched the thread's
	// call stack at a ProgSite event, so replay needs no stack.
	InStack []int
}

// Tap hands out per-thread event sinks. ThreadTap is called once from
// Monitor.NewThread; the returned sink is used only from that thread, so
// implementations need no locking on the sink path.
type Tap interface {
	ThreadTap(threadID int) ThreadTap
}

// ThreadTap receives one thread's raw program events in order.
type ThreadTap interface {
	ProgramEvent(ev ProgramEvent)
}

// BatchThreadTap is the optional batch extension of ThreadTap. When a
// thread runs the batched event plane (Options.BatchSize > 0) and its sink
// implements this interface, each ring flush delivers the whole batch in
// one call, amortising sink locking — this is the Recorder/ring unification:
// events are staged once in the thread's ring and handed over wholesale.
// Ownership differs from ProgramEvent's borrowed slices: the events' Vals
// and InStack slices were copied at staging time and become the sink's to
// keep; the evs slice itself is only valid during the call.
type BatchThreadTap interface {
	ThreadTap
	ProgramBatch(evs []ProgramEvent)
}
