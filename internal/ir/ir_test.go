package ir

import (
	"strings"
	"testing"
)

func sampleModule(name string) *Module {
	st := &StructType{Name: "pair", Fields: []Field{{Name: "a", Offset: 0}, {Name: "b", Offset: 1}}}
	f := &Func{Name: name + "_fn", NParams: 1}
	f.NRegs = 1
	f.NewBlock("entry")
	r := f.NewReg()
	f.Blocks[0].Instrs = []Instr{
		{Op: OpConst, Dst: r, Imm: 7},
		{Op: OpRet, X: r, HasX: true},
	}
	return &Module{
		Name:    name,
		Structs: []*StructType{st},
		Globals: []*Global{{Name: name + "_g", Init: 3}},
		Funcs:   []*Func{f},
	}
}

func TestLink(t *testing.T) {
	a, b := sampleModule("a"), sampleModule("b")
	prog, err := Link("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 || len(prog.Globals) != 2 {
		t.Fatalf("linked: %d funcs %d globals", len(prog.Funcs), len(prog.Globals))
	}
	// Shared struct types are deduplicated by name.
	if len(prog.Structs) != 1 {
		t.Fatalf("structs = %d", len(prog.Structs))
	}
	if prog.Func("a_fn") == nil || prog.Func("missing") != nil {
		t.Fatal("Func lookup")
	}
	if prog.Struct("pair") == nil || prog.Struct("nope") != nil {
		t.Fatal("Struct lookup")
	}
}

func TestLinkConflicts(t *testing.T) {
	a := sampleModule("a")
	dup := sampleModule("a")
	if _, err := Link("prog", a, dup); err == nil {
		t.Fatal("duplicate function must fail")
	}

	b := sampleModule("b")
	b.Structs = []*StructType{{Name: "pair", Fields: []Field{{Name: "x"}}}}
	if _, err := Link("prog", a, b); err == nil {
		t.Fatal("conflicting struct layouts must fail")
	}

	c := sampleModule("c")
	c.Globals[0].Name = "a_g"
	if _, err := Link("prog", a, c); err == nil {
		t.Fatal("duplicate global must fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := sampleModule("m")
	m.Funcs[0].Blocks[0].Instrs[0].Args = []int{1, 2}
	c := m.Clone()
	c.Funcs[0].Blocks[0].Instrs[0].Imm = 99
	c.Funcs[0].Blocks[0].Instrs[0].Args[0] = 99
	if m.Funcs[0].Blocks[0].Instrs[0].Imm == 99 {
		t.Fatal("clone shares instruction storage")
	}
	if m.Funcs[0].Blocks[0].Instrs[0].Args[0] == 99 {
		t.Fatal("clone shares args storage")
	}
}

func TestPrintCoversOpcodes(t *testing.T) {
	st := &StructType{Name: "s", Fields: []Field{{Name: "f", Offset: 0}}}
	f := &Func{Name: "all", NParams: 0}
	blk := f.NewBlock("entry")
	_ = blk
	instrs := []Instr{
		{Op: OpConst, Dst: 0, Imm: 5},
		{Op: OpAlloca, Dst: 1, Imm: 1},
		{Op: OpAllocHeap, Dst: 2, Struct: st},
		{Op: OpLoad, Dst: 3, X: 1},
		{Op: OpStore, X: 1, Y: 0},
		{Op: OpFieldAddr, Dst: 4, X: 2, Struct: st, Field: 0},
		{Op: OpFieldStore, X: 2, Y: 0, Struct: st, Field: 0, Assign: AssignAdd},
		{Op: OpBin, Dst: 5, Imm: int64(BinAdd), X: 0, Y: 3},
		{Op: OpCall, Dst: 6, Sym: "g", Args: []int{0}},
		{Op: OpCallPtr, Dst: 7, X: 6, Args: []int{0}},
		{Op: OpFnAddr, Dst: 8, Sym: "g"},
		{Op: OpGlobalAddr, Dst: 9, Sym: "gg"},
		{Op: OpBr, Blk1: 0},
		{Op: OpCondBr, X: 5, Blk1: 0, Blk2: 0},
		{Op: OpRet, X: 5, HasX: true},
		{Op: OpRet},
	}
	f.Blocks[0].Instrs = instrs
	f.NRegs = 10
	m := &Module{Name: "p", Structs: []*StructType{st}, Funcs: []*Func{f},
		Globals: []*Global{{Name: "gg", Init: 1}}}
	out := m.String()
	for _, want := range []string{
		"const 5", "alloca 1", "alloc s", "load r1", "store r1, r0",
		"fieldaddr", "fieldstore", "add", "call g(r0)", "callptr r6(r0)",
		"fnaddr g", "globaladdr gg", "br b0", "condbr", "ret r5", "struct s", "global gg",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("print missing %q in:\n%s", want, out)
		}
	}
}

func TestBinKindString(t *testing.T) {
	if BinAdd.String() != "add" || BinXor.String() != "xor" {
		t.Fatal("bin names")
	}
	if !strings.Contains(BinKind(99).String(), "99") {
		t.Fatal("unknown bin name")
	}
}

func TestOptimizeRemovesUnreachableProducers(t *testing.T) {
	f := &Func{Name: "f", NParams: 0}
	f.NewBlock("entry")
	f.NRegs = 3
	f.Blocks[0].Instrs = []Instr{
		{Op: OpConst, Dst: 0, Imm: 1}, // dead
		{Op: OpConst, Dst: 1, Imm: 2},
		{Op: OpConst, Dst: 2, Imm: 3}, // dead
		{Op: OpRet, X: 1, HasX: true},
	}
	m := &Module{Name: "m", Funcs: []*Func{f}}
	Optimize(m)
	if n := len(f.Blocks[0].Instrs); n != 2 {
		t.Fatalf("instructions after DCE = %d", n)
	}
}

func TestStructHelpers(t *testing.T) {
	st := &StructType{Name: "s", Fields: []Field{{Name: "a", Offset: 0}, {Name: "b", Offset: 1}}}
	if st.FieldIndex("b") != 1 || st.FieldIndex("z") != -1 || st.Size() != 2 {
		t.Fatal("struct helpers")
	}
}
