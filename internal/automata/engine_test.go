package automata

import (
	"bytes"
	"math/rand"
	"testing"
)

const engineTestSpec = `TESLA_WITHIN(main, previously(lock(x) == 0, unlock(x) == 0))`

// TestEngineLoweringMatchesTransitions pins the lowered plan tables against
// the automaton's own transition sets: for every symbol and every state, the
// dense table must name exactly the transition the interpreted first-match
// scan would take.
func TestEngineLoweringMatchesTransitions(t *testing.T) {
	auto := compileSrc(t, "lower", engineTestSpec, nil)
	e := auto.Engine()
	if len(e.Plans) != len(auto.Symbols) {
		t.Fatalf("engine has %d plans for %d symbols", len(e.Plans), len(auto.Symbols))
	}
	if e.Auto != auto {
		t.Fatal("engine does not reference its automaton")
	}
	edges := 0
	for _, s := range auto.Symbols {
		p := e.PlanFor(s.ID)
		if p == nil {
			t.Fatalf("no plan for symbol %d (%s)", s.ID, s.Name)
		}
		if p.Symbol != s.Name || p.Flags != s.Flags {
			t.Fatalf("plan identity mismatch for %s: %s/%v", s.Name, p.Symbol, p.Flags)
		}
		ts := auto.Trans[s.ID]
		if p.HasCleanup() != ts.HasCleanup() || p.HasInit() != ts.HasInit() {
			t.Fatalf("plan %s shape flags drifted from transition set", s.Name)
		}
		next := p.Next()
		for q := uint32(0); q < uint32(len(next)); q++ {
			// The interpreted scan: first transition whose From is q.
			want := int32(-1)
			for j := range ts {
				if ts[j].From == q {
					want = int32(j)
					break
				}
			}
			if next[q] != want {
				t.Fatalf("symbol %s state %d: table says %d, first-match scan says %d",
					s.Name, q, next[q], want)
			}
			if want >= 0 {
				edges++
			}
		}
	}
	if edges == 0 {
		t.Fatal("lowered automaton has no edges at all")
	}
	if e2 := auto.Engine(); e2 != e {
		t.Fatal("Engine() must be lowered once and cached")
	}
	if e.PlanFor(-1) != nil || e.PlanFor(len(e.Plans)) != nil {
		t.Fatal("out-of-range symbol IDs must yield nil plans")
	}
}

// TestEngineImageRoundTrip serialises an engine and attaches it to a freshly
// compiled automaton of the same class: the attached plans must match the
// lowering the fresh automaton would have produced.
func TestEngineImageRoundTrip(t *testing.T) {
	auto := compileSrc(t, "round", engineTestSpec, nil)
	data, err := EncodeEngine(auto)
	if err != nil {
		t.Fatal(err)
	}
	img, err := DecodeEngineImage(data)
	if err != nil {
		t.Fatal(err)
	}

	fresh := compileSrc(t, "round", engineTestSpec, nil)
	if err := fresh.AttachEngine(img); err != nil {
		t.Fatalf("attach round-tripped image: %v", err)
	}
	want := lowerEngine(fresh)
	got := fresh.Engine()
	for i := range want.Plans {
		if !int32sEqual(got.Plans[i].Next(), want.Plans[i].Next()) {
			t.Fatalf("symbol %d: attached table differs from fresh lowering", i)
		}
		if got.Plans[i].Shape() != want.Plans[i].Shape() {
			t.Fatalf("symbol %d: shape %s, want %s", i, got.Plans[i].Shape(), want.Plans[i].Shape())
		}
	}
	// Attaching again (engine already resident) is a validated no-op.
	if err := fresh.AttachEngine(img); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
}

// TestAttachEngineRejectsCorrupt tampers with every identity and table field
// an image carries; each corruption must be rejected, and the automaton must
// still lower a correct engine lazily afterwards.
func TestAttachEngineRejectsCorrupt(t *testing.T) {
	auto := compileSrc(t, "corrupt", engineTestSpec, nil)
	data, err := EncodeEngine(auto)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name string
		mut  func(img *EngineImage)
	}{
		{"wrong class", func(img *EngineImage) { img.Class = "someone-else" }},
		{"wrong state count", func(img *EngineImage) { img.States++ }},
		{"missing symbol", func(img *EngineImage) { img.Symbols = img.Symbols[:len(img.Symbols)-1] }},
		{"renamed symbol", func(img *EngineImage) { img.Symbols[0].Name += "x" }},
		{"flipped flags", func(img *EngineImage) { img.Symbols[0].Flags ^= 1 }},
		{"truncated table", func(img *EngineImage) {
			s := &img.Symbols[len(img.Symbols)-1]
			s.Next = s.Next[:len(s.Next)-1]
		}},
		{"drifted table", func(img *EngineImage) {
			s := &img.Symbols[len(img.Symbols)-1]
			s.Next[len(s.Next)-1]++
		}},
	}
	for _, c := range corruptions {
		img, err := DecodeEngineImage(data)
		if err != nil {
			t.Fatal(err)
		}
		c.mut(img)
		victim := compileSrc(t, "corrupt", engineTestSpec, nil)
		if err := victim.AttachEngine(img); err == nil {
			t.Errorf("%s: corrupt image attached without error", c.name)
		}
		// The rejected attach must leave lazy lowering intact and correct.
		want := lowerEngine(victim)
		got := victim.Engine()
		for i := range want.Plans {
			if !int32sEqual(got.Plans[i].Next(), want.Plans[i].Next()) {
				t.Fatalf("%s: lazy lowering corrupted after rejected attach", c.name)
			}
		}
	}

	if _, err := DecodeEngineImage([]byte("not a gob stream")); err == nil {
		t.Error("garbage bytes decoded into an image")
	}
}

// TestEngineFingerprint pins the build key's sensitivity: identical automata
// agree, and any change the lowering consumes — the assertion body, and with
// it states, symbols or tables — moves the fingerprint.
func TestEngineFingerprint(t *testing.T) {
	a := compileSrc(t, "fp", engineTestSpec, nil)
	b := compileSrc(t, "fp", engineTestSpec, nil)
	if !bytes.Equal(EngineFingerprint(a), EngineFingerprint(b)) {
		t.Fatal("identical automata fingerprint differently")
	}
	c := compileSrc(t, "fp", `TESLA_WITHIN(main, previously(lock(x) == 1, unlock(x) == 0))`, nil)
	if bytes.Equal(EngineFingerprint(a), EngineFingerprint(c)) {
		t.Fatal("edited assertion kept the same fingerprint")
	}
	d := compileSrc(t, "fp2", engineTestSpec, nil)
	if bytes.Equal(EngineFingerprint(a), EngineFingerprint(d)) {
		t.Fatal("renamed class kept the same fingerprint")
	}
}

// TestStepUnifiedContract pins the relationship DetStep and CondStep inherit
// from the one parameterised walker behind them: over any state set,
// CondStep(set) == set ∪ DetStep(set) — the population view only ever adds
// the stay-behind sources to the single-instance view.
func TestStepUnifiedContract(t *testing.T) {
	auto := compileSrc(t, "unified", engineTestSpec, nil)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var set StateSet
		for q := uint32(0); q < auto.States; q++ {
			if rng.Intn(3) == 0 {
				set = set.add(q)
			}
		}
		for _, s := range auto.Symbols {
			det := auto.DetStep(set, s.ID)
			cond := auto.CondStep(set, s.ID)
			if cond.Key() != set.Union(det).Key() {
				t.Fatalf("symbol %s set %s: CondStep %s != set ∪ DetStep %s",
					s.Name, set, cond, set.Union(det))
			}
			// Each DetStep member is a Move target or an edge-less source.
			for _, q := range det {
				if _, ok := auto.Move(q, s.ID); ok {
					continue
				}
				if set.Has(q) && !auto.HasMove(q, s.ID) {
					continue
				}
				// q has an edge of its own — legal only if it is some
				// source's target.
				target := false
				for _, src := range set {
					if to, ok := auto.Move(src, s.ID); ok && to == q {
						target = true
						break
					}
				}
				if !target {
					t.Fatalf("symbol %s set %s: DetStep member %d unexplained", s.Name, set, q)
				}
			}
		}
	}
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
