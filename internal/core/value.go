// Package core implements libtesla, the run-time support library for TESLA
// (Temporally Enhanced System Logic Assertions, EuroSys 2014).
//
// libtesla accepts streams of program events and uses them to manage automata
// instances. Automata classes — one per programmer-specified assertion — are
// registered with a Store (global or thread-local). Each class can be
// instantiated a number of times, differentiated by the variables the
// instances reference (their Key). Instances move through the lifecycle
// described in §4.4.1 of the paper: «init», clone, update, error and
// «cleanup».
package core

import "fmt"

// Value is a single machine word observed by instrumentation: a C int, an
// enum, or a pointer (represented as an opaque address). TESLA argument
// matching only ever compares words for equality or against bitmasks, so a
// 64-bit integer carries every value the instrumenter can capture.
type Value int64

// KeySize is the maximum number of variables an automaton instance may bind,
// mirroring TESLA_KEY_SIZE in the reference libtesla implementation.
const KeySize = 4

// Key names an automaton instance by the variable values it has bound.
// Mask bit i set means Data[i] is significant; a zero mask is the fully
// unbound name (∗) given to instances at «init» time, before any of the
// assertion's variables are known.
type Key struct {
	Mask uint32
	Data [KeySize]Value
}

// AnyKey is the fully-unbound key (∗).
var AnyKey = Key{}

// NewKey builds a key binding the first len(vals) slots.
func NewKey(vals ...Value) Key {
	if len(vals) > KeySize {
		panic(fmt.Sprintf("core: key with %d values exceeds KeySize=%d", len(vals), KeySize))
	}
	var k Key
	for i, v := range vals {
		k.Data[i] = v
		k.Mask |= 1 << uint(i)
	}
	return k
}

// Set binds slot i to v, returning the updated key.
func (k Key) Set(i int, v Value) Key {
	if i < 0 || i >= KeySize {
		panic(fmt.Sprintf("core: key slot %d out of range", i))
	}
	k.Data[i] = v
	k.Mask |= 1 << uint(i)
	return k
}

// Bound reports whether slot i carries a value.
func (k Key) Bound(i int) bool { return k.Mask&(1<<uint(i)) != 0 }

// Compatible reports whether two keys agree on every slot bound in both.
// An instance named (∗) is compatible with every event key; (vp₁) is
// compatible with (vp₁) but not (vp₂).
func (k Key) Compatible(o Key) bool {
	common := k.Mask & o.Mask
	for i := 0; common != 0; i++ {
		if common&1 != 0 && k.Data[i] != o.Data[i] {
			return false
		}
		common >>= 1
	}
	return true
}

// SubsetOf reports whether every slot bound in k is bound in o with the same
// value, i.e. k is at least as general as o.
func (k Key) SubsetOf(o Key) bool {
	if k.Mask&^o.Mask != 0 {
		return false
	}
	return k.Compatible(o)
}

// Union merges two compatible keys into the most specific key agreeing with
// both. It panics if the keys are incompatible: callers must check first.
func (k Key) Union(o Key) Key {
	if !k.Compatible(o) {
		panic("core: union of incompatible keys")
	}
	for i := 0; i < KeySize; i++ {
		if o.Bound(i) {
			k = k.Set(i, o.Data[i])
		}
	}
	return k
}

// Specializes reports whether o adds at least one binding not present in k
// while remaining compatible — the condition under which an event causes an
// instance to be cloned rather than updated in place (§4.4.1 “Clone”).
func (k Key) Specializes(o Key) bool {
	return k.Compatible(o) && o.Mask&^k.Mask != 0
}

// String renders the key in the paper's (v₁, ∗, …) notation.
func (k Key) String() string {
	if k.Mask == 0 {
		return "(∗)"
	}
	s := "("
	hi := 0
	for i := 0; i < KeySize; i++ {
		if k.Bound(i) {
			hi = i
		}
	}
	for i := 0; i <= hi; i++ {
		if i > 0 {
			s += ","
		}
		if k.Bound(i) {
			s += fmt.Sprintf("%d", k.Data[i])
		} else {
			s += "∗"
		}
	}
	return s + ")"
}
