package core

import (
	"fmt"
	"time"
)

// TransFlags annotate a transition with lifecycle roles (§4.4.1).
type TransFlags uint8

const (
	// TransInit marks a transition that may create a fresh automaton
	// instance, e.g. entry into the function bounding the assertion.
	TransInit TransFlags = 1 << iota

	// TransCleanup marks a transition that finalises (accepts) an
	// instance, e.g. return from the bounding function. After a cleanup
	// event the class is reset: all instances are expunged and libtesla
	// resumes ignoring events until the next «init».
	TransCleanup
)

// Transition is one edge of an automaton class: on the triggering event, an
// instance in state From moves to state To. KeyMask is the set of key slots
// the instance is expected to have bound after the transition applies.
type Transition struct {
	From    uint32
	To      uint32
	KeyMask uint32
	Flags   TransFlags
}

// Init reports whether the transition can create an instance.
func (t Transition) Init() bool { return t.Flags&TransInit != 0 }

// Cleanup reports whether the transition finalises an instance.
func (t Transition) Cleanup() bool { return t.Flags&TransCleanup != 0 }

func (t Transition) String() string {
	s := fmt.Sprintf("%d→%d", t.From, t.To)
	if t.Init() {
		s += " «init»"
	}
	if t.Cleanup() {
		s += " «cleanup»"
	}
	return s
}

// TransitionSet is every transition of one automaton class that a single
// program event can drive. Event translators assemble the set statically;
// UpdateState picks the edge each live instance can take.
type TransitionSet []Transition

// HasInit reports whether any member can create an instance.
func (ts TransitionSet) HasInit() bool {
	for _, t := range ts {
		if t.Init() {
			return true
		}
	}
	return false
}

// HasCleanup reports whether any member finalises instances.
func (ts TransitionSet) HasCleanup() bool {
	for _, t := range ts {
		if t.Cleanup() {
			return true
		}
	}
	return false
}

// SymbolFlags control how UpdateState treats an event with respect to
// instances that cannot accept it.
type SymbolFlags uint8

const (
	// SymRequired marks events that some live instance must accept —
	// reaching an assertion site is the canonical example: if no instance
	// matching the site's bindings can take the transition, the assertion
	// has failed (§4.4.1 “Error”).
	SymRequired SymbolFlags = 1 << iota

	// SymStrict marks events from `strict` automata: an instance whose
	// key matches but whose state has no transition for the event is a
	// violation rather than an ignorable occurrence.
	SymStrict
)

// Class is one programmer-specified automaton. Instances of the class are
// managed by a Store and differentiated by Key.
type Class struct {
	// Name identifies the automaton, conventionally "file:line" of the
	// assertion site or a programmer-supplied label.
	Name string

	// Description is the assertion source text, reported on violations.
	Description string

	// States is the number of DFA states; state 0 is the pre-init state.
	States uint32

	// Limit bounds live instances per store. Stores preallocate Limit
	// slots so that automaton bookkeeping never allocates in code paths
	// that cannot (§4.4.1); overflow is reported, not fatal.
	Limit int

	// Failure selects what a violation of this class does to the program
	// (§4.4.2's panic/printf/probe spectrum). FailDefault defers to the
	// store. Set before the class is registered.
	Failure FailureAction

	// OnViolation is invoked (outside store locks, panic-isolated) for
	// each violation when the effective failure action is FailCallback.
	OnViolation func(*Violation)

	// Overflow selects the class's instance-table degradation policy;
	// OverflowDefault defers to the store (whose default is DropNew).
	// Set before the class is registered.
	Overflow OverflowPolicy

	// QuarantineAfter is the consecutive-overflow count that trips
	// QuarantineClass (0 = store default, then DefaultQuarantineAfter).
	QuarantineAfter int

	// RearmEvents re-arms a quarantined class after this many suppressed
	// events (0 = store default). RearmAfter re-arms after a duration;
	// when both are zero, DefaultRearmEvents applies.
	RearmEvents int
	RearmAfter  time.Duration
}

// DefaultInstanceLimit is used when a Class does not set Limit. The
// reference implementation similarly preallocates a fixed-size block.
const DefaultInstanceLimit = 32

func (c *Class) limit() int {
	if c.Limit > 0 {
		return c.Limit
	}
	return DefaultInstanceLimit
}

func (c *Class) String() string {
	return fmt.Sprintf("automaton %q (%d states)", c.Name, c.States)
}

// Instance is one live copy of an automaton class, named by the variable
// values it has bound.
type Instance struct {
	State  uint32
	Key    Key
	Active bool

	// birth orders activations class-wide, so both store implementations
	// agree on which instance EvictOldest sacrifices, and so an event's
	// pre-snapshotted candidate list can detect a slot that was evicted
	// and reused mid-event.
	birth uint64
}
