package trace_test

import (
	"reflect"
	"testing"

	"tesla/internal/core"
	"tesla/internal/dtrace"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
	"tesla/internal/trace"
)

// Replay parity over a batched corpus: a live run whose monitor staged
// events through the batched plane must record a trace that replays to the
// live verdicts, exactly as a synchronous run's trace does. The replayer is
// the reference path (ReplayOpts pins BatchSize to 0), so this closes the
// loop: batched capture → synchronous replay → identical verdicts.

// recordBatched runs one corpus program live with a batched monitor and
// returns its trace and verdicts. The post-run Drain is the process-exit
// required-site flush tesla-run performs before saving a trace.
func recordBatched(t *testing.T, src string, arg int64, batch int) (*trace.Trace, *toolchain.Build, *core.CountingHandler) {
	t.Helper()
	build, err := toolchain.BuildProgram(map[string]string{"prog.c": src}, true)
	if err != nil {
		t.Fatal(err)
	}
	counting := core.NewCountingHandler()
	rec := trace.NewRecorder(build.Autos, 0)
	_, rt, err := build.Run("main", monitor.Options{
		Handler:   core.MultiHandler{counting, rec},
		Tap:       rec,
		BatchSize: batch,
	}, arg)
	if err != nil {
		t.Fatalf("arg %d: live run failed: %v", arg, err)
	}
	if rt.Monitor != nil {
		if err := rt.Monitor.Drain(); err != nil {
			t.Fatalf("arg %d: drain: %v", arg, err)
		}
	}
	return rec.Snapshot(), build, counting
}

// TestReplayParityBatchedCorpus: for every corpus program, input and batch
// size, the batched live run's verdicts, the synchronous live run's
// verdicts, and the replay of the batched trace must all agree — violations
// (class, kind, key, symbol, order), acceptance counts and the offline
// dtrace summary.
func TestReplayParityBatchedCorpus(t *testing.T) {
	for _, tc := range tracePrograms {
		t.Run(tc.name, func(t *testing.T) {
			for _, batch := range []int{1, 7, 64} {
				for arg := int64(-2); arg <= 3; arg++ {
					syncTr, _, syncLive := record(t, tc.src, arg)
					batTr, build, batLive := recordBatched(t, tc.src, arg, batch)
					if batTr.Dropped != 0 {
						t.Fatalf("batch %d arg %d: %d events dropped", batch, arg, batTr.Dropped)
					}

					// Live parity: batching must not change the run's verdicts.
					liveS, liveB := violationSigs(syncLive.Violations()), violationSigs(batLive.Violations())
					if !reflect.DeepEqual(liveS, liveB) {
						t.Fatalf("batch %d arg %d: live verdicts differ\nsync:    %v\nbatched: %v",
							batch, arg, liveS, liveB)
					}

					// Replay parity: the batched trace reproduces them.
					res, err := trace.Replay(batTr, build.Autos)
					if err != nil {
						t.Fatalf("batch %d arg %d: replay: %v", batch, arg, err)
					}
					if !reflect.DeepEqual(res.Signatures(), sigsOf(batLive.Violations())) {
						t.Fatalf("batch %d arg %d: replayed verdicts differ\nlive:   %v\nreplay: %v",
							batch, arg, sigsOf(batLive.Violations()), res.Signatures())
					}
					for _, a := range build.Autos {
						if l, r := batLive.Accepts(a.Name), res.Accepts[a.Name]; l != r {
							t.Fatalf("batch %d arg %d: %s accepts: live %d, replay %d", batch, arg, a.Name, l, r)
						}
					}

					// The offline aggregations are order-insensitive, so the
					// batched and synchronous traces summarise identically
					// even where cross-ring interleaving shifted Seqs.
					sb, ss := dtrace.Summarize(batTr), dtrace.Summarize(syncTr)
					if !reflect.DeepEqual(sb.Transitions.Snapshot(), ss.Transitions.Snapshot()) ||
						!reflect.DeepEqual(sb.Accepts.Snapshot(), ss.Accepts.Snapshot()) ||
						!reflect.DeepEqual(sb.Failures.Snapshot(), ss.Failures.Snapshot()) {
						t.Fatalf("batch %d arg %d: dtrace summaries differ between batched and sync traces", batch, arg)
					}
				}
			}
		})
	}
}

// TestReplayIgnoresCallerBatchSize pins the flag-leak guard: replaying with
// monitor options that request batching (as tesla-trace forwarding a live
// run's flags wholesale would) must still take the synchronous reference
// path and reproduce identical verdicts.
func TestReplayIgnoresCallerBatchSize(t *testing.T) {
	tr, build, live := recordBatched(t, tracePrograms[0].src, 1, 7)
	res, err := trace.ReplayOpts(tr, build.Autos, monitor.Options{BatchSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Signatures(), sigsOf(live.Violations())) {
		t.Fatalf("BatchSize leaked into replay: %v vs %v", res.Signatures(), sigsOf(live.Violations()))
	}
}
