package trace

// ring is a bounded append-only event buffer that overwrites its oldest
// entries when full, counting what it loses. Bounding memory per thread is
// what makes always-on tracing viable in the kernel configurations the
// paper targets: a hot thread can emit millions of events, but debugging a
// violation only ever needs the recent window that led to it.
type ring struct {
	buf     []Event
	start   int // index of the oldest event
	n       int // live events
	dropped uint64
	// pushed counts every event ever pushed, including those since
	// overwritten: it is the ring's logical write position, which lets a
	// cut (recorder.CutSince) take exactly the events after a watermark
	// and account exactly for the ones the ring overwrote in between.
	pushed uint64
}

// defaultRingCap bounds each ring when the caller does not choose a size.
const defaultRingCap = 1 << 16

func newRing(capacity int) *ring {
	if capacity <= 0 {
		capacity = defaultRingCap
	}
	return &ring{buf: make([]Event, capacity)}
}

func (r *ring) push(ev Event) {
	r.pushed++
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = ev
		r.n++
		return
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// snapshot appends the ring's events, oldest first, to dst.
func (r *ring) snapshot(dst []Event) []Event {
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.buf[(r.start+i)%len(r.buf)])
	}
	return dst
}

// cutSince appends the events pushed after the prevPushed watermark to
// dst and returns the count of events that were pushed after the
// watermark but already overwritten — exactly the loss a delta consumer
// must account for. Push order, not sequence order, defines the
// watermark, so an event can never land behind a cut and be skipped
// silently.
func (r *ring) cutSince(prevPushed uint64, dst []Event) ([]Event, uint64) {
	oldest := r.pushed - uint64(r.n)
	from := prevPushed
	var lost uint64
	if from < oldest {
		lost = oldest - from
		from = oldest
	}
	for p := from; p < r.pushed; p++ {
		dst = append(dst, r.buf[(r.start+int(p-oldest))%len(r.buf)])
	}
	return dst, lost
}
