package build_test

// Differential tests: the build graph must be a perfect drop-in for the
// sequential reference pipeline. For every program in the corpus, the
// graph-built manifest, automata and linked module must be byte-identical
// to toolchain.BuildSequential's, at every worker count, with and without
// an on-disk cache, cold and warm.

import (
	"bytes"
	"os"
	"testing"

	"tesla/internal/bench"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
)

func monitorOptions() monitor.Options { return monitor.Options{} }

// corpus returns the csub programs the differential tests sweep: the
// paper-shaped single- and multi-file programs from the toolchain tests,
// the synthetic OpenSSL codebase from the figure 10 experiment, and the
// on-disk example programs.
func corpus(t *testing.T) map[string]map[string]string {
	t.Helper()
	c := map[string]map[string]string{
		"fig4":      {"uipc_socket.c": progFig4},
		"fieldflag": {"proc.c": progFieldAssign},
		"bounds":    {"cb.c": progCustomBounds},
		"openssl":   bench.OpenSSLCodebase(6, 4),
		"crossmodule": {
			"libcrypto.c": `
int EVP_VerifyFinal(int ctx, int sig, int siglen, int key) {
	if (sig == 42) { return 1; }
	return 0;
}
`,
			"client.c": `
int fetch(int sig) {
	int ok = EVP_VerifyFinal(1, sig, 8, 2);
	TESLA_WITHIN(main, previously(
		EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1));
	return ok;
}
int main(int sig) { return fetch(sig); }
`,
		},
	}
	for name, path := range map[string]string{
		"safe":   "../../examples/staticcheck/testdata/safe.c",
		"doomed": "../../examples/trace/testdata/doomed.c",
	} {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus %s: %v", name, err)
		}
		c[name] = map[string]string{name + ".c": string(src)}
	}
	return c
}

const progFig4 = `
struct ucred { int uid; };
struct protosw { int (*pru_sopoll)(struct socket *, struct ucred *); };
struct socket { struct protosw *so_proto; int so_state; };

int mac_socket_check_poll(struct ucred *cred, struct socket *so) {
	return 0;
}

int sopoll_generic(struct socket *so, struct ucred *active_cred) {
	TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0);
	return 7;
}

int sopoll(struct socket *so, struct ucred *cred) {
	return so->so_proto->pru_sopoll(so, cred);
}

int soo_poll(struct socket *so, struct ucred *active_cred, int check) {
	if (check) {
		int error = mac_socket_check_poll(active_cred, so);
		if (error != 0) { return error; }
	}
	return sopoll(so, active_cred);
}

int main(int do_check) {
	struct protosw *p = alloc(protosw);
	p->pru_sopoll = sopoll_generic;
	struct socket *so = alloc(socket);
	so->so_proto = p;
	struct ucred *cred = alloc(ucred);
	cred->uid = 1001;
	return soo_poll(so, cred, do_check);
}
`

const progFieldAssign = `
#define P_SUGID 256
struct proc { int p_flag; int p_uid; };

int setuid(struct proc *p, int uid) {
	TESLA_SYSCALL(eventually(p.p_flag = P_SUGID));
	p->p_uid = uid;
	if (uid != 0) {
		p->p_flag = P_SUGID;
	}
	return 0;
}

int amd64_syscall(struct proc *p, int uid) {
	return setuid(p, uid);
}

int main(int uid) {
	struct proc *p = alloc(proc);
	return amd64_syscall(p, uid);
}
`

const progCustomBounds = `
int begin_tx(int id) { return id; }
int end_tx(int id) { return 0; }
int log_write(int id) { return 0; }
int commit(int id, int doLog) {
	TESLA_ASSERT(perthread, call(begin_tx), returnfrom(end_tx),
		previously(log_write(id) == 0));
	return 0;
}
int main(int doLog) {
	int t = begin_tx(1);
	if (doLog) {
		int l = log_write(1);
	}
	int c = commit(1, doLog);
	return end_tx(1);
}
`

// manifestBytes renders a manifest for byte comparison.
func manifestBytes(t *testing.T, b *toolchain.Build) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := b.Manifest.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertIdentical asserts two builds produced byte-identical outputs.
func assertIdentical(t *testing.T, want, got *toolchain.Build, label string) {
	t.Helper()
	if w, g := manifestBytes(t, want), manifestBytes(t, got); !bytes.Equal(w, g) {
		t.Errorf("%s: combined manifests differ:\n--- sequential\n%s\n--- graph\n%s", label, w, g)
	}
	if len(want.Autos) != len(got.Autos) {
		t.Fatalf("%s: automata count %d != %d", label, len(want.Autos), len(got.Autos))
	}
	for i := range want.Autos {
		if w, g := want.Autos[i].Dot(nil), got.Autos[i].Dot(nil); w != g {
			t.Errorf("%s: automaton %d differs:\n--- sequential\n%s\n--- graph\n%s", label, i, w, g)
		}
	}
	if w, g := want.Program.String(), got.Program.String(); w != g {
		t.Errorf("%s: linked programs differ:\n--- sequential\n%s\n--- graph\n%s", label, w, g)
	}
	if want.Stats != got.Stats {
		t.Errorf("%s: stats %+v != %+v", label, want.Stats, got.Stats)
	}
}

func TestGraphMatchesSequential(t *testing.T) {
	for name, sources := range corpus(t) {
		for _, instrument := range []bool{true, false} {
			opts := toolchain.BuildOptions{Instrument: instrument}
			seq, err := toolchain.BuildSequential(sources, opts)
			if err != nil {
				t.Fatalf("%s: sequential: %v", name, err)
			}
			for _, jobs := range []int{1, 4} {
				opts.Jobs = jobs
				graph, err := toolchain.BuildProgramOpts(sources, opts)
				if err != nil {
					t.Fatalf("%s -j%d: graph: %v", name, jobs, err)
				}
				assertIdentical(t, seq, graph,
					name+map[bool]string{true: "/tesla", false: "/default"}[instrument])
			}
		}
	}
}

// TestGraphMatchesSequentialChecked covers the Check and Elide stages: the
// checker's verdicts and the (possibly elided) instrumentation must match.
func TestGraphMatchesSequentialChecked(t *testing.T) {
	for name, sources := range corpus(t) {
		opts := toolchain.BuildOptions{Instrument: true, Check: true, Elide: true}
		seq, err := toolchain.BuildSequential(sources, opts)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		graph, err := toolchain.BuildProgramOpts(sources, opts)
		if err != nil {
			t.Fatalf("%s: graph: %v", name, err)
		}
		assertIdentical(t, seq, graph, name+"/checked")
		ws, wf, wr := seq.Report.Counts()
		gs, gf, gr := graph.Report.Counts()
		if ws != gs || wf != gf || wr != gr {
			t.Errorf("%s: verdict counts (%d,%d,%d) != (%d,%d,%d)", name, ws, wf, wr, gs, gf, gr)
		}
	}
}

// TestGraphWarmMatchesCold: artifacts decoded from a disk cache must
// reproduce the cold build byte for byte.
func TestGraphWarmMatchesCold(t *testing.T) {
	for name, sources := range corpus(t) {
		dir := t.TempDir()
		opts := toolchain.BuildOptions{Instrument: true, CacheDir: dir}
		cold, err := toolchain.BuildProgramOpts(sources, opts)
		if err != nil {
			t.Fatalf("%s: cold: %v", name, err)
		}
		// A fresh process is simulated by a fresh Cache over the same dir.
		warm, err := toolchain.BuildProgramOpts(sources, opts)
		if err != nil {
			t.Fatalf("%s: warm: %v", name, err)
		}
		assertIdentical(t, cold, warm, name+"/warm")
		if !warm.Graph.AllCached() {
			t.Errorf("%s: warm build did work: %s", name, warm.Graph.Summary())
		}
	}
}

// TestGraphRunsLikeSequential executes both builds and compares program
// results — instrumentation differences would show as verdict divergence.
func TestGraphRunsLikeSequential(t *testing.T) {
	sources := map[string]string{"uipc_socket.c": progFig4}
	seq, err := toolchain.BuildSequential(sources, toolchain.BuildOptions{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	graph, err := toolchain.BuildProgram(sources, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, arg := range []int64{0, 1} {
		r1, _, err := seq.Run("main", monitorOptions(), arg)
		if err != nil {
			t.Fatal(err)
		}
		r2, _, err := graph.Run("main", monitorOptions(), arg)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("arg %d: sequential %d != graph %d", arg, r1, r2)
		}
	}
}
