package kernel

import (
	"tesla/internal/core"
	"tesla/internal/spec"
)

// Ucred is a FreeBSD-style credential.
type Ucred struct {
	ID  core.Value
	UID int64
	GID int64
	// Label is the MAC policy label (integrity level for the test
	// policy; higher is more privileged).
	Label int64
	refs  int
}

// Proc is a process.
type Proc struct {
	ID     core.Value
	Cred   *Ucred
	Flag   int64 // P_SUGID lives here
	Parent *Proc
	State  ProcState
	// Prio is the scheduling priority (for the MP check corpus).
	Prio int64
}

// ProcState tracks the process lifecycle.
type ProcState int

const (
	ProcRunning ProcState = iota
	ProcZombie
	ProcReaped
)

func (k *Kernel) newProc() *Proc {
	cred := &Ucred{ID: k.id(), UID: 0, GID: 0, Label: 10, refs: 1}
	return &Proc{ID: k.id(), Cred: cred, State: ProcRunning}
}

// crhold/crfree mirror credential reference counting; INVARIANTS checks
// catch over-release in Debug builds.
func (t *Thread) crhold(c *Ucred) *Ucred {
	c.refs++
	return c
}

func (t *Thread) crfree(c *Ucred) {
	t.invariant(c.refs > 0, "ucred over-release")
	c.refs--
}

// setCred installs a new credential on the process. Per the paper's
// eventually-assertion: “if a process credential is modified, then the
// P_SUGID process flag must be set to prevent privilege escalation attacks
// via debuggers.” The MissingSUGID bug omits the flag.
func (t *Thread) setCred(p *Proc, newCred *Ucred) {
	t.enter("crsetcred", p.ID, newCred.ID)
	// Every credential change must have been authorised by one of the
	// credential-changing checks earlier in this system call.
	t.site("P:crsetcred", p.ID)
	old := p.Cred
	p.Cred = t.crhold(newCred)
	t.crfree(old)
	if !t.k.cfg.Bugs.MissingSUGID {
		p.Flag |= P_SUGID
		t.assign("proc", "p_flag", p.ID, spec.OpAssign, core.Value(P_SUGID))
	}
	t.exit("crsetcred", 0, p.ID, newCred.ID)
}
