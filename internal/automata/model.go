package automata

import (
	"fmt"
	"strings"

	"tesla/internal/spec"
)

// This file exposes the automaton as an analysable transition model, the
// query surface internal/staticcheck drives when it computes the product of
// a program's control-flow graph with an assertion's state machine. The
// queries mirror libtesla's conditional update semantics exactly: a state
// with no edge for a symbol simply stays put (the store's irrelevant-event
// path), sites are move-only, and cleanup legality is a per-state property.

// StateSet is a sorted, deduplicated set of DFA state IDs. The zero value
// is the empty set.
type StateSet []uint32

// NewStateSet builds a set from the given states.
func NewStateSet(qs ...uint32) StateSet {
	var s StateSet
	for _, q := range qs {
		s = s.add(q)
	}
	return s
}

func (s StateSet) add(q uint32) StateSet {
	for i, v := range s {
		if v == q {
			return s
		}
		if v > q {
			out := make(StateSet, 0, len(s)+1)
			out = append(out, s[:i]...)
			out = append(out, q)
			return append(out, s[i:]...)
		}
	}
	return append(s, q)
}

// Has reports membership.
func (s StateSet) Has(q uint32) bool {
	for _, v := range s {
		if v == q {
			return true
		}
	}
	return false
}

// Union returns s ∪ t without mutating either operand.
func (s StateSet) Union(t StateSet) StateSet {
	out := append(StateSet(nil), s...)
	for _, q := range t {
		out = out.add(q)
	}
	return out
}

// Key is a canonical string form, usable as a map key.
func (s StateSet) Key() string {
	var sb strings.Builder
	for i, q := range s {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", q)
	}
	return sb.String()
}

func (s StateSet) String() string { return "{" + s.Key() + "}" }

// Move returns the DFA successor of state q under symbol sym, if the
// transition table has an explicit edge. The table is deterministic by
// construction (subset construction yields at most one successor per
// state and symbol).
func (a *Automaton) Move(q uint32, sym int) (uint32, bool) {
	for _, t := range a.Trans[sym] {
		if t.From == q {
			return t.To, true
		}
	}
	return 0, false
}

// HasMove reports whether state q has an explicit edge for sym.
func (a *Automaton) HasMove(q uint32, sym int) bool {
	_, ok := a.Move(q, sym)
	return ok
}

// CanCleanup reports whether an instance in state q accepts the «cleanup»
// event at bound exit; states without a cleanup edge yield an Incomplete
// verdict when the bound ends.
func (a *Automaton) CanCleanup(q uint32) bool {
	return a.HasMove(q, a.BoundEnd().ID)
}

// step is the one walker behind DetStep and CondStep. Both compute the image
// of set under sym from the same edges; they differ only in what an edge-less
// or forked source state contributes. With keepAll set every source state
// stays in the image (the population view: an instance may skip the event or
// fork a clone that leaves the parent behind); without it only edge-less
// states stay (the single-instance view: an instance with an edge takes it).
func (a *Automaton) step(set StateSet, sym int, keepAll bool) StateSet {
	var out StateSet
	if keepAll {
		out = append(StateSet(nil), set...)
	}
	for _, q := range set {
		to, ok := a.Move(q, sym)
		switch {
		case ok:
			out = out.add(to)
		case !keepAll:
			out = out.add(q)
		}
	}
	return out
}

// DetStep is the image of set under sym when the event is delivered to an
// exactly-keyed instance: each state takes its edge if one exists, else
// stays (libtesla's skip path for irrelevant conditional events).
func (a *Automaton) DetStep(set StateSet, sym int) StateSet {
	return a.step(set, sym, false)
}

// CondStep is the overapproximate image of set under sym for a population
// of instances: every state remains possible (an instance may skip the
// event, or fork a clone leaving the parent behind) and every explicit
// edge target becomes possible.
func (a *Automaton) CondStep(set StateSet, sym int) StateSet {
	return a.step(set, sym, true)
}

// Deterministic reports whether the symbol's event translator delivers on
// every occurrence of its program event: no constant/flags/bitmask pattern
// to fail, no duplicate-variable consistency check, and no indirect load.
// Deterministic symbols let the static checker treat delivery as certain;
// all others are "may fire".
func (s *Symbol) Deterministic() bool {
	seen := map[string]bool{}
	ok := true
	check := func(p spec.ArgPattern) {
		if p.Indirect {
			ok = false
			return
		}
		switch p.Kind {
		case spec.PatConst, spec.PatFlags, spec.PatBitmask:
			ok = false
		case spec.PatVar:
			if seen[p.Var] {
				ok = false
			}
			seen[p.Var] = true
		}
	}
	switch s.Kind {
	case KindFieldAssign:
		check(s.Target)
		if s.AssignOp != spec.OpIncr {
			check(s.Value)
		}
	default:
		for _, p := range s.Args {
			check(p)
		}
		if s.Kind == KindFuncExit && s.Ret != nil {
			check(*s.Ret)
		}
	}
	return ok
}

// IndirectAccess reports whether delivering the symbol dereferences a
// pointer (an `*x` pattern or capture). Such loads can abort the VM on a
// bad address, so static analysis must treat the hook as a possible
// program-exit point.
func (s *Symbol) IndirectAccess() bool {
	pats := append([]spec.ArgPattern{}, s.Args...)
	if s.Ret != nil {
		pats = append(pats, *s.Ret)
	}
	if s.Kind == KindFieldAssign {
		pats = append(pats, s.Target, s.Value)
	}
	for _, p := range pats {
		if p.Indirect {
			return true
		}
	}
	for _, c := range s.Captures {
		if c.Indirect {
			return true
		}
	}
	return false
}
