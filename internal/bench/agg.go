package bench

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tesla/internal/agg"
	"tesla/internal/core"
	"tesla/internal/trace"
)

// FigAgg measures the fleet aggregation service under concurrent producer
// load: P producers stream pre-encoded delta-trace frames to one
// in-process tesla-agg server over loopback TCP, and the figure reports
// sustained fleet events/s per producer count alongside the exact-
// accounting invariant — every event a producer sent is either in the
// store's ingested total or in a drop counter; the two always sum.

const (
	aggFigEventsPerFrame = 512
	aggFigTotalEvents    = 1 << 20 // ~1M events split across the fleet
)

// aggFigTrace builds one delta trace with a transition-heavy mix shaped
// like a live producer's flush (mostly transitions, periodic accepts, a
// rare failure).
func aggFigTrace(seqBase uint64) *trace.Trace {
	tr := &trace.Trace{FormatVersion: trace.Version}
	for i := 0; i < aggFigEventsPerFrame; i++ {
		ev := trace.Event{Seq: seqBase + uint64(i) + 1, Thread: -1, Class: "session"}
		switch {
		case i%64 == 63:
			ev.Kind = trace.KindFail
			ev.Symbol = "site"
			ev.Verdict = core.VerdictNoInstance
		case i%16 == 15:
			ev.Kind = trace.KindAccept
		default:
			ev.Kind = trace.KindTransition
			ev.From, ev.To = uint32(i%4), uint32((i+1)%4)
			ev.Symbol = "work"
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr
}

// FigAggMeasure runs one fleet round with p producers streaming frames
// frames each, returning sustained events/s and the fleet summary for
// accounting checks.
func FigAggMeasure(p, frames int) (float64, agg.FleetSummary, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, agg.FleetSummary{}, err
	}
	store := agg.NewStore(agg.StoreOpts{})
	srv := agg.NewServer(store, agg.ServerOpts{})
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// Frames are pre-built once outside the timed region: the figure
	// measures the service (framing, decode, aggregation, accounting),
	// not the producers' encoding speed.
	proto := aggFigTrace(0)

	var wg sync.WaitGroup
	errs := make(chan error, p)
	start := time.Now()
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := agg.Dial(addr, agg.ClientOpts{
				Tool: "tesla-bench", Process: fmt.Sprintf("bench-%d", i),
				Buffer: 1024,
			})
			if err != nil {
				errs <- err
				return
			}
			for f := 0; f < frames; f++ {
				if err := c.SendTrace(proto); err != nil {
					errs <- err
					return
				}
			}
			errs <- c.Close()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, agg.FleetSummary{}, err
		}
	}
	// A producer's Close returns once its bye is written, not once the
	// server has read it; wait for every bye to land (frames precede the
	// bye on the same connection, so a visible bye means the producer's
	// stream is fully accounted) before freezing the clock and the store.
	deadline := time.Now().Add(30 * time.Second)
	for store.Fleet().CleanProducers < p {
		if time.Now().After(deadline) {
			return 0, store.Fleet(), fmt.Errorf("byes never drained: %d/%d clean", store.Fleet().CleanProducers, p)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	srv.Close()

	sum := store.Fleet()
	// The full invariant has three loss ledgers: the server's bounded
	// queues (DroppedEvents), the producers' bounded send buffers
	// (ClientDropped, shipped in each bye), and ring overwrites
	// (RingDropped, zero here — frames are handed straight to SendTrace).
	// What was ingested plus every counted loss is exactly what the
	// producers generated.
	sent := uint64(p * frames * aggFigEventsPerFrame)
	if got := sum.TotalEvents + sum.DroppedEvents + sum.ClientDropped; got != sent {
		return 0, sum, fmt.Errorf("accounting leak: ingested %d + server-dropped %d + client-dropped %d = %d, want %d sent",
			sum.TotalEvents, sum.DroppedEvents, sum.ClientDropped, got, sent)
	}
	for _, ps := range sum.Producers {
		if !ps.Clean {
			return 0, sum, fmt.Errorf("producer %s finished without a bye", ps.Process)
		}
		if ps.Events+ps.DroppedEvents != ps.SentEvents {
			return 0, sum, fmt.Errorf("producer %s accounting leak: %d + %d != %d",
				ps.Process, ps.Events, ps.DroppedEvents, ps.SentEvents)
		}
	}
	// Sustained rate is what the store aggregated, not what producers
	// blasted: overload shows up as drops in the summary, not as a
	// flattering rate.
	return float64(sum.TotalEvents) / elapsed.Seconds(), sum, nil
}

// FigAgg prints sustained fleet ingestion throughput against producer
// count, with the exact-accounting line per rung. iters scales the total
// event volume (the default reaches ~1M events).
func FigAgg(w io.Writer, iters int) error {
	total := iters << 9
	if total < aggFigTotalEvents {
		total = aggFigTotalEvents
	}
	fmt.Fprintln(w, "Figure agg: fleet trace aggregation, sustained ingestion vs producers")
	fmt.Fprintf(w, "  %-10s %14s %12s %12s %12s %8s\n", "producers", "events/s", "ingested", "srv-drop", "cli-drop", "exact")
	for _, p := range []int{2, 4, 8, 16} {
		frames := total / (p * aggFigEventsPerFrame)
		if frames < 1 {
			frames = 1
		}
		rate, sum, err := FigAggMeasure(p, frames)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10d %14.0f %12d %12d %12d %8s\n",
			p, rate, sum.TotalEvents, sum.DroppedEvents, sum.ClientDropped, "yes")
	}
	fmt.Fprintln(w, "  exact = ingested + server drops + client drops == sent, fleet-wide and")
	fmt.Fprintln(w, "  per producer; every bounded queue counts what it rejects, never silently")
	fmt.Fprintln(w)
	return nil
}
