package instrument

import (
	"strings"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/compiler"
	"tesla/internal/csub"
	"tesla/internal/ir"
	"tesla/internal/spec"
)

func compileUnit(t *testing.T, src string) (*compiler.Unit, *compiler.Context) {
	t.Helper()
	f, err := csub.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := compiler.NewContext(f)
	if err != nil {
		t.Fatal(err)
	}
	u, err := compiler.CompileFile(f, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return u, ctx
}

func countCalls(m *ir.Module, prefix string) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && strings.HasPrefix(in.Sym, prefix) {
					n++
				}
			}
		}
	}
	return n
}

const srcBasic = `
int check(int vp) { return 0; }
int body(int vp) {
	TESLA_SYSCALL_PREVIOUSLY(check(vp) == 0);
	return vp;
}
int amd64_syscall(int vp) {
	int c = check(vp);
	return body(vp);
}
`

func TestCalleeSideHooks(t *testing.T) {
	u, ctx := compileUnit(t, srcBasic)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sites != 1 {
		t.Fatalf("sites = %d", stats.Sites)
	}
	if stats.Translators == 0 || stats.Hooks == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// check is defined in the module: callee-side exit hook in check's
	// own body, none around the call site.
	chk := m.Func("check")
	found := false
	for _, b := range chk.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && strings.HasPrefix(in.Sym, "__tesla_evt") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("callee-side exit hook missing in check")
	}
	// Bound hooks around amd64_syscall.
	if countCalls(m, "__tesla_bound_begin") != 1 || countCalls(m, "__tesla_bound_end") == 0 {
		t.Fatal("bound hooks missing")
	}
	// The input module is untouched.
	if countCalls(u.Module, "__tesla_bound_begin") != 0 {
		t.Fatal("instrumentation mutated the input module")
	}
}

func TestCallerSideForUndefinedFn(t *testing.T) {
	src := `
int body(int vp) {
	int c = ext_check(vp);
	TESLA_SYSCALL_PREVIOUSLY(ext_check(vp) == 0);
	return vp;
}
int amd64_syscall(int vp) { return body(vp); }
`
	u, ctx := compileUnit(t, src)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	// ext_check is not defined anywhere: caller-side instrumentation.
	defined := ctx.DefinedFns()
	m, _, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: defined})
	if err != nil {
		t.Fatal(err)
	}
	body := m.Func("body")
	var hookAfterCall bool
	for _, b := range body.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Sym == "ext_check" && i+1 < len(b.Instrs) {
				next := b.Instrs[i+1]
				if next.Op == ir.OpCall && strings.HasPrefix(next.Sym, "__tesla_evt") {
					hookAfterCall = true
				}
			}
		}
	}
	if !hookAfterCall {
		t.Fatal("caller-side exit hook not inserted after the call site")
	}
}

func TestStripRemovesSites(t *testing.T) {
	u, _ := compileUnit(t, srcBasic)
	if countCalls(u.Module, compiler.SitePseudoFn) != 1 {
		t.Fatal("pseudo-call missing before strip")
	}
	s := Strip(u.Module)
	if countCalls(s, compiler.SitePseudoFn) != 0 {
		t.Fatal("strip left pseudo-calls")
	}
}

func TestTranslatorStaticChecks(t *testing.T) {
	// Flags and bitmask patterns compile to mask-and-compare chains.
	src := `
#define IO_NOMACCHECK 128
int vn_rdwr(int vp, int flags) { return 0; }
int body(int vp) {
	TESLA_SYSCALL_PREVIOUSLY(called(vn_rdwr(vp, flags(IO_NOMACCHECK))));
	return 0;
}
int amd64_syscall(int vp) {
	int r = vn_rdwr(vp, 128);
	return body(vp);
}
`
	u, ctx := compileUnit(t, src)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns()})
	if err != nil {
		t.Fatal(err)
	}
	var translator *ir.Func
	for _, f := range m.Funcs {
		if strings.HasPrefix(f.Name, "__tesla_evt") {
			translator = f
		}
	}
	if translator == nil {
		t.Fatal("translator not generated")
	}
	text := translator.String()
	if !strings.Contains(text, "and") || !strings.Contains(text, "condbr") {
		t.Fatalf("translator lacks flag checks:\n%s", text)
	}
	if !strings.Contains(text, "__tesla_update") {
		t.Fatalf("translator lacks update call:\n%s", text)
	}
}

func TestFieldStoreHooks(t *testing.T) {
	src := `
struct proc { int p_flag; };
int amd64_syscall(struct proc *p) {
	TESLA_SYSCALL(eventually(p.p_flag = 256));
	p->p_flag = 256;
	p->p_flag += 1;
	return 0;
}
`
	u, ctx := compileUnit(t, src)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns()})
	if err != nil {
		t.Fatal(err)
	}
	// Only the plain-assignment store is hooked; the compound one has a
	// different operator and does not match.
	fn := m.Func("amd64_syscall")
	hooks := 0
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpFieldStore && i+1 < len(b.Instrs) {
				next := b.Instrs[i+1]
				if next.Op == ir.OpCall && strings.HasPrefix(next.Sym, "__tesla_evt") {
					hooks++
				}
			}
		}
	}
	if hooks != 1 {
		t.Fatalf("field hooks = %d, want 1", hooks)
	}
	_ = stats
}

func TestExplicitSideModifiers(t *testing.T) {
	u, ctx := compileUnit(t, `
int lib(int x) { return 0; }
int body(int x) {
	TESLA_SYSCALL_PREVIOUSLY(caller(lib(x) == 0));
	return 0;
}
int amd64_syscall(int x) {
	int r = lib(x);
	return body(x);
}
`)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns()})
	if err != nil {
		t.Fatal(err)
	}
	// caller() forces call-site hooks even though lib is defined here.
	libFn := m.Func("lib")
	for _, b := range libFn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && strings.HasPrefix(in.Sym, "__tesla_evt") {
				t.Fatal("caller modifier must not produce callee hooks")
			}
		}
	}
	caller := m.Func("amd64_syscall")
	found := false
	for _, b := range caller.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && strings.HasPrefix(in.Sym, "__tesla_evt") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("caller-side hook missing")
	}
}

func TestSuffixDisambiguatesTranslators(t *testing.T) {
	u, ctx := compileUnit(t, srcBasic)
	auto, err := automata.Compile(u.Assertions[0])
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns(), Suffix: "__m0"})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Module(u.Module, []*automata.Automaton{auto}, Options{DefinedFns: ctx.DefinedFns(), Suffix: "__m1"})
	if err != nil {
		t.Fatal(err)
	}
	m2.Funcs = m2.Funcs[len(u.Module.Funcs):] // keep only generated translators
	if _, err := ir.Link("prog", m1, m2); err != nil {
		t.Fatalf("suffixed translators should link: %v", err)
	}
}

func TestUnmatchedSiteIsRemoved(t *testing.T) {
	u, _ := compileUnit(t, srcBasic)
	// Instrument against a different automaton: the site pseudo-call has
	// no automaton and is dropped.
	other := automata.MustCompile(spec.SyscallPreviously("other", spec.Call("zzz").ReturnsInt(0)))
	m, stats, err := Module(u.Module, []*automata.Automaton{other}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sites != 0 {
		t.Fatalf("sites = %d", stats.Sites)
	}
	if countCalls(m, compiler.SitePseudoFn) != 0 {
		t.Fatal("unmatched pseudo-call left behind")
	}
}

const srcTwoAutos = `
int check(int vp) { return 0; }
int audit(int vp) { return 0; }
int body(int vp) {
	TESLA_SYSCALL_PREVIOUSLY(check(vp) == 0);
	TESLA_SYSCALL_PREVIOUSLY(called(audit(vp)));
	return vp;
}
int amd64_syscall(int vp) {
	int c = check(vp);
	int a = audit(vp);
	return body(vp);
}
`

func twoAutos(t *testing.T) (*compiler.Unit, *compiler.Context, []*automata.Automaton) {
	t.Helper()
	u, ctx := compileUnit(t, srcTwoAutos)
	var autos []*automata.Automaton
	for _, a := range u.Assertions {
		auto, err := automata.Compile(a)
		if err != nil {
			t.Fatal(err)
		}
		autos = append(autos, auto)
	}
	if len(autos) != 2 {
		t.Fatalf("autos = %d, want 2", len(autos))
	}
	return u, ctx, autos
}

// TestElisionInvariant checks the accounting contract: for any elision
// choice, every hook the full build inserts is either inserted or counted
// as elided — never silently dropped.
func TestElisionInvariant(t *testing.T) {
	u, ctx, autos := twoAutos(t)
	_, full, err := Module(u.Module, autos, Options{DefinedFns: ctx.DefinedFns()})
	if err != nil {
		t.Fatal(err)
	}
	if full.ElidedHooks != 0 || full.ElidedSites != 0 {
		t.Fatalf("full build elided something: %+v", full)
	}
	for _, elide := range []map[string]bool{
		{autos[0].Name: true},
		{autos[1].Name: true},
		{autos[0].Name: true, autos[1].Name: true},
	} {
		_, st, err := Module(u.Module, autos, Options{DefinedFns: ctx.DefinedFns(), Elide: elide})
		if err != nil {
			t.Fatal(err)
		}
		if st.Hooks+st.ElidedHooks != full.Hooks {
			t.Errorf("elide %v: hooks %d + elided %d != full %d", elide, st.Hooks, st.ElidedHooks, full.Hooks)
		}
		if st.Sites+st.ElidedSites != full.Sites {
			t.Errorf("elide %v: sites %d + elided %d != full %d", elide, st.Sites, st.ElidedSites, full.Sites)
		}
		if st.ElidedHooks == 0 {
			t.Errorf("elide %v: nothing elided", elide)
		}
	}
}

// TestElideOneKeepsOther verifies per-automaton selectivity: eliding one
// automaton removes exactly its translators while the other automaton's
// hooks, bound events, and site survive with their original indices.
func TestElideOneKeepsOther(t *testing.T) {
	u, ctx, autos := twoAutos(t)
	m, st, err := Module(u.Module, autos, Options{
		DefinedFns: ctx.DefinedFns(),
		Elide:      map[string]bool{autos[0].Name: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if countCalls(m, "__tesla_evt_0_") != 0 {
		t.Fatal("elided automaton 0 still has event hooks")
	}
	if countCalls(m, "__tesla_evt_1_") == 0 {
		t.Fatal("surviving automaton 1 lost its event hooks")
	}
	// The surviving automaton still opens and closes its bound.
	if countCalls(m, "__tesla_bound_begin") == 0 || countCalls(m, "__tesla_bound_end") == 0 {
		t.Fatal("surviving automaton lost bound hooks")
	}
	if st.Sites != 1 || st.ElidedSites != 1 {
		t.Fatalf("sites = %d elided = %d, want 1/1", st.Sites, st.ElidedSites)
	}
	// Elided translators are not generated at all.
	for _, f := range m.Funcs {
		if strings.HasPrefix(f.Name, "__tesla_evt_0_") {
			t.Fatalf("translator %s generated for elided automaton", f.Name)
		}
	}
}

// TestElideAll leaves a module with no instrumentation calls at all; the
// elided site collapses to a constant 0 so the program still runs.
func TestElideAll(t *testing.T) {
	u, ctx, autos := twoAutos(t)
	m, st, err := Module(u.Module, autos, Options{
		DefinedFns: ctx.DefinedFns(),
		Elide:      map[string]bool{autos[0].Name: true, autos[1].Name: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Hooks != 0 || st.Sites != 0 || st.Translators != 0 {
		t.Fatalf("full elision left instrumentation: %+v", st)
	}
	if countCalls(m, "__tesla") != 0 {
		t.Fatal("full elision left __tesla calls")
	}
	if countCalls(m, compiler.SitePseudoFn) != 0 {
		t.Fatal("site pseudo-call survived")
	}
}

// TestElideFieldAndCallerHooks covers the two remaining insertion paths:
// field-store hooks and caller-side hooks for undefined callees.
func TestElideFieldAndCallerHooks(t *testing.T) {
	src := `
struct proc { int p_flag; };
int body(int x) {
	int r = ext_check(x);
	TESLA_SYSCALL_PREVIOUSLY(ext_check(x) == 0);
	return 0;
}
int amd64_syscall(struct proc *p) {
	TESLA_SYSCALL(eventually(p.p_flag = 256));
	p->p_flag = 256;
	return body(0);
}
`
	u, ctx := compileUnit(t, src)
	var autos []*automata.Automaton
	for _, a := range u.Assertions {
		auto, err := automata.Compile(a)
		if err != nil {
			t.Fatal(err)
		}
		autos = append(autos, auto)
	}
	_, full, err := Module(u.Module, autos, Options{DefinedFns: ctx.DefinedFns()})
	if err != nil {
		t.Fatal(err)
	}
	elide := map[string]bool{}
	for _, a := range autos {
		elide[a.Name] = true
	}
	m, st, err := Module(u.Module, autos, Options{DefinedFns: ctx.DefinedFns(), Elide: elide})
	if err != nil {
		t.Fatal(err)
	}
	if st.Hooks+st.ElidedHooks != full.Hooks || st.Hooks != 0 {
		t.Fatalf("stats = %+v, full = %+v", st, full)
	}
	if countCalls(m, "__tesla") != 0 {
		t.Fatal("field/caller elision left __tesla calls")
	}
}
