package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/spec"
)

// This file is the streaming half of the codec: an incremental event
// decoder over the binary trace format, and a length-prefixed frame layer
// for shipping traces over a connection. Read loads a whole trace into
// memory, which is right for replay and shrinking; an aggregation server
// ingesting thousands of producer streams must not hold more than one
// event (plus one frame) per connection, and `tesla-trace show` on a
// multi-gigabyte trace should print it in constant memory. Both sit on
// StreamDecoder; the tesla-agg wire protocol additionally wraps each
// encoded trace in a Frame so a connection can carry many delta traces
// interleaved with control messages.

// StreamDecoder decodes a binary trace incrementally: the header (format
// version, drop count, automata names) is read at construction, then Next
// yields one event at a time. Memory is bounded by the largest single
// event plus the interned string table, not by the trace length.
type StreamDecoder struct {
	dec      *decoder
	dropped  uint64
	automata []string
	nEvents  uint64
	read     uint64
	prevSeq  uint64
}

// NewStreamDecoder reads the binary header from r and returns a decoder
// positioned at the first event. It rejects bad magic, mismatched format
// versions and implausible counts exactly like Read.
func NewStreamDecoder(r io.Reader) (*StreamDecoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil || string(head) != magic {
		return nil, fmt.Errorf("trace: not a trace file (bad magic)")
	}
	dec := &decoder{r: br}
	if v := dec.uvarint(); dec.err == nil && v != Version {
		return nil, versionError(v)
	}
	sd := &StreamDecoder{dec: dec}
	sd.dropped = dec.uvarint()
	nAutos := dec.uvarint()
	if dec.err == nil && nAutos > maxTraceEvents {
		return nil, fmt.Errorf("trace: implausible automata count %d", nAutos)
	}
	for i := uint64(0); i < nAutos && dec.err == nil; i++ {
		sd.automata = append(sd.automata, dec.str())
	}
	sd.nEvents = dec.uvarint()
	if dec.err == nil && sd.nEvents > maxTraceEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", sd.nEvents)
	}
	if dec.err != nil {
		return nil, fmt.Errorf("trace: truncated or corrupt trace: %w", dec.err)
	}
	return sd, nil
}

// versionError is the shared actionable version-mismatch diagnostic: it
// names both versions and what to do about the gap. Producers on the agg
// wire protocol are rejected at the hello frame instead (with the
// producing tool named), so this is only reached for trace files.
func versionError(got uint64) error {
	return fmt.Errorf("trace: file is format version %d but this build reads version %d — re-record it with a tesla-run matching this build, or convert it with the tesla-trace that wrote it", got, Version)
}

// Automata returns the automata names recorded in the header.
func (sd *StreamDecoder) Automata() []string { return sd.automata }

// Dropped returns the producer-side ring-drop count from the header.
func (sd *StreamDecoder) Dropped() uint64 { return sd.dropped }

// Len returns the event count declared by the header.
func (sd *StreamDecoder) Len() int { return int(sd.nEvents) }

// Next decodes and returns the next event. It returns io.EOF after the
// last declared event, and a descriptive error on truncation or
// corruption.
func (sd *StreamDecoder) Next() (Event, error) {
	if sd.read >= sd.nEvents {
		return Event{}, io.EOF
	}
	ev, err := decodeEvent(sd.dec, &sd.prevSeq)
	if err != nil {
		sd.read = sd.nEvents // poison: no further progress
		return Event{}, err
	}
	sd.read++
	return ev, nil
}

// decodeEvent decodes one event record, threading the delta-coded sequence
// number through prevSeq. It is the single event-wire-format authority,
// shared by StreamDecoder and (through it) Read.
func decodeEvent(dec *decoder, prevSeq *uint64) (Event, error) {
	var ev Event
	*prevSeq += dec.uvarint()
	ev.Seq = *prevSeq
	ev.Thread = int(dec.varint())
	ev.Kind = Kind(dec.byte())
	ev.Time = dec.varint()
	switch ev.Kind {
	case KindProgram:
		if err := decodeProgram(dec, &ev); err != nil {
			return Event{}, err
		}
	case KindInit, KindClone, KindTransition, KindAccept, KindFail, KindOverflow, KindEvict, KindQuarantine:
		ev.Class = dec.str()
		ev.Symbol = dec.str()
		ev.Key = dec.key()
		ev.ParentKey = dec.key()
		ev.From = uint32(dec.uvarint())
		ev.To = uint32(dec.uvarint())
		ev.State = uint32(dec.uvarint())
		ev.Verdict = decodeVerdict(dec)
		if ev.Kind == KindQuarantine {
			ev.On = dec.byte() != 0
		}
	default:
		if dec.err != nil {
			break
		}
		return Event{}, fmt.Errorf("trace: unknown event kind %d", ev.Kind)
	}
	if dec.err != nil {
		return Event{}, fmt.Errorf("trace: truncated or corrupt trace: %w", dec.err)
	}
	return ev, nil
}

// decodeProgram decodes the KindProgram payload into ev.
func decodeProgram(dec *decoder, ev *Event) error {
	ev.Prog = monitor.ProgKind(dec.byte())
	ev.Fn = dec.str()
	ev.Field = dec.str()
	ev.Op = spec.AssignOp(dec.varint())
	ev.Auto = int(dec.varint())
	ev.Sym = int(dec.varint())
	ev.Slot = int(dec.varint())
	if dec.byte() != 0 {
		ev.HasRet = true
		ev.Ret = core.Value(dec.varint())
	}
	// Grow element-wise with a small initial capacity: a corrupt length
	// prefix must cost at most the bytes actually present, not an upfront
	// make() of the claimed size.
	if n := dec.uvarint(); n > 0 && dec.err == nil {
		if n > maxTraceEvents {
			return fmt.Errorf("trace: implausible value count %d", n)
		}
		ev.Vals = make([]core.Value, 0, minU64(n, 64))
		for j := uint64(0); j < n && dec.err == nil; j++ {
			ev.Vals = append(ev.Vals, core.Value(dec.varint()))
		}
	}
	if n := dec.uvarint(); n > 0 && dec.err == nil {
		if n > maxTraceEvents {
			return fmt.Errorf("trace: implausible instack count %d", n)
		}
		ev.InStack = make([]int, 0, minU64(n, 64))
		for j := uint64(0); j < n && dec.err == nil; j++ {
			ev.InStack = append(ev.InStack, int(dec.varint()))
		}
	}
	return nil
}

func decodeVerdict(dec *decoder) core.VerdictKind {
	return core.VerdictKind(dec.varint())
}

// Frame layer. A frame is a kind byte, a uvarint payload length and the
// payload bytes. The tesla-agg wire protocol is a stream of frames after
// an 8-byte stream magic; payload schemas belong to internal/agg — this
// layer only moves opaque, bounded payloads.

// MaxFramePayload bounds a single frame so a corrupt or hostile length
// prefix cannot make a reader allocate unboundedly.
const MaxFramePayload = 64 << 20

// FrameWriter writes length-prefixed frames. It buffers each frame into
// one Write call so concurrent readers never observe a torn header.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter returns a frame writer over w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// Frame writes one frame.
func (fw *FrameWriter) Frame(kind byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("trace: frame payload %d exceeds limit %d", len(payload), MaxFramePayload)
	}
	fw.buf = fw.buf[:0]
	fw.buf = append(fw.buf, kind)
	fw.buf = binary.AppendUvarint(fw.buf, uint64(len(payload)))
	fw.buf = append(fw.buf, payload...)
	_, err := fw.w.Write(fw.buf)
	return err
}

// FrameReader reads length-prefixed frames incrementally.
type FrameReader struct {
	r *bufio.Reader
}

// NewFrameReader returns a frame reader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &FrameReader{r: br}
}

// Next reads one frame. A clean end-of-stream at a frame boundary returns
// io.EOF; truncation inside a frame returns io.ErrUnexpectedEOF (wrapped),
// so callers can tell an orderly close from a cut connection.
func (fr *FrameReader) Next() (kind byte, payload []byte, err error) {
	kind, err = fr.r.ReadByte()
	if err != nil {
		return 0, nil, err // io.EOF here is a clean boundary
	}
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return 0, nil, fmt.Errorf("trace: truncated frame header: %w", noEOF(err))
	}
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("trace: implausible frame length %d", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, fmt.Errorf("trace: truncated frame payload: %w", noEOF(err))
	}
	return kind, payload, nil
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a frame,
// end-of-input is truncation, not a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
