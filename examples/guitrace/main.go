// guitrace replays the §3.5.3 case study: TESLA instruments ~110 GNUstep
// methods through the Objective-C runtime's interposition table (fig. 8),
// generating the event traces that localised two bugs — cursors pushed
// onto the cursor stack multiple times, and a new graphics back end unable
// to restore states in non-LIFO order.
//
//	go run ./examples/guitrace
package main

import (
	"fmt"
	"os"
	"strings"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/gui"
	"tesla/internal/monitor"
	"tesla/internal/objc"
	"tesla/internal/spec"
	"tesla/internal/xnee"
)

// traceSetup builds a TESLA-instrumented window (fig. 8's assertion over
// the full selector list).
func traceSetup(be gui.Backend, deliveryBug bool) (*gui.Window, *gui.RunLoop, *core.CountingHandler) {
	var events []spec.Expr
	for _, sel := range gui.AllSelectors() {
		events = append(events, spec.Msg(spec.Any("id"), sel))
	}
	auto, err := automata.Compile(spec.Within("gui:runloop", "startDrawing",
		spec.Previously(spec.AtLeast(0, events...))))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	handler := core.NewCountingHandler()
	mon := monitor.MustNew(monitor.Options{Handler: handler}, auto)
	th := mon.NewThread()
	rt := objc.NewRuntime(objc.TESLA)
	rt.InterposeTESLA(th, gui.AllSelectors(), []string{"drawWithFrame:inView:"})
	w := gui.NewWindow(rt, be)
	w.DeliveryBug = deliveryBug
	return w, gui.NewRunLoop(w, th), handler
}

func main() {
	fmt.Printf("instrumented selectors: %d (fig. 8's TESLAGOps.h)\n\n", len(gui.AllSelectors()))

	cursorBug()
	backendBug()
}

func cursorBug() {
	fmt.Println("== cursor push/pop pairing (June 2013 GNUstep report) ==")
	for _, bug := range []bool{false, true} {
		w, rl, handler := traceSetup(gui.NewOldBackend(), bug)
		w.AddTracking(gui.Rect{X: 0, Y: 0, W: 100, H: 100}, gui.CursorIBeam)
		xnee.Replay(rl, xnee.CursorCrossing(gui.Rect{X: 0, Y: 0, W: 100, H: 100}, 3))

		var pushes, pops uint64
		for e, n := range handler.Edges() {
			if strings.Contains(e.Symbol, "push") {
				pushes += n
			}
			if strings.Contains(e.Symbol, "pop") {
				pops += n
			}
		}
		label := "fixed delivery"
		if bug {
			label = "buggy delivery"
		}
		fmt.Printf("  %s: %d pushes, %d pops, cursor stack depth %d\n",
			label, pushes, pops, len(w.CursorStack))
	}
	fmt.Println("  trace shows mouse-entered events unpaired with mouse-exited:")
	fmt.Println("  the same cursor pushed repeatedly, a later pop removing only one copy")
	fmt.Println()
}

func backendBug() {
	fmt.Println("== non-LIFO graphics-state restore (new back end) ==")
	render := func(be gui.Backend) (int64, uint64, uint64) {
		w, rl, handler := traceSetup(be, false)
		w.AddView(gui.Rect{X: 0, Y: 0, W: 200, H: 100}, 1, 4, false)
		w.AddView(gui.Rect{X: 0, Y: 100, W: 200, H: 100}, 2, 4, true) // non-LIFO restores
		// Two exposes: the state corrupted by the mishandled non-LIFO
		// restore poisons everything drawn afterwards.
		rl.ProcessBatch([]gui.Event{{Kind: gui.Expose}})
		rl.ProcessBatch([]gui.Event{{Kind: gui.Expose}})
		var saves, tokenRestores uint64
		for e, n := range handler.Edges() {
			if strings.Contains(e.Symbol, "gsave") {
				saves += n
			}
			if strings.Contains(e.Symbol, "grestoreToken:") {
				tokenRestores += n
			}
		}
		return be.Checksum(), saves, tokenRestores
	}

	oldSum, saves, tokens := render(gui.NewOldBackend())
	newSum, _, _ := render(gui.NewNewBackend())
	fmt.Printf("  old back end render checksum: %d\n", oldSum)
	fmt.Printf("  new back end render checksum: %d\n", newSum)
	if oldSum != newSum {
		fmt.Println("  outputs differ: things are drawn on the screen incorrectly")
	}
	fmt.Printf("  trace: %d gsaves, %d non-LIFO grestoreToken: restores —\n", saves, tokens)
	fmt.Println("  the valid sequence the new back end's author did not expect.")
	fmt.Println()
	profiling()
}

// profiling reproduces the §3.5.3 optimisation finding: ordered TESLA
// traces expose save/restore pairs whose interior changes only colour and
// location — state the next cell sets explicitly anyway.
func profiling() {
	fmt.Println("== AppKit profiling: elidable save/restore pairs ==")
	var events []spec.Expr
	for _, sel := range gui.AllSelectors() {
		events = append(events, spec.Msg(spec.Any("id"), sel))
	}
	auto, err := automata.Compile(spec.Within("gui:runloop", "startDrawing",
		spec.Previously(spec.AtLeast(0, events...))))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prof := gui.NewProfiler()
	mon := monitor.MustNew(monitor.Options{Handler: prof}, auto)
	th := mon.NewThread()
	rt := objc.NewRuntime(objc.TESLA)
	rt.InterposeTESLA(th, gui.AllSelectors(), nil)
	w := gui.NewWindow(rt, gui.NewOldBackend())
	w.AddView(gui.Rect{X: 0, Y: 0, W: 400, H: 200}, 1, 12, false)
	rl := gui.NewRunLoop(w, th)
	rl.ProcessBatch([]gui.Event{{Kind: gui.Expose}})

	stats := gui.AnalyzeSaveRestore(prof.Trace())
	fmt.Printf("  %d saves, %d restores; %d pairs change only colour/location —\n",
		stats.Saves, stats.Restores, stats.Redundant)
	fmt.Println("  elidable, because the next cell always sets those values explicitly.")
	fmt.Println("  Invasive to change, but the traces show it would be worthwhile (§3.5.3).")
}
