package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"

	"tesla/internal/core"
)

// Trace files come in two interchangeable encodings sharing one format
// version: a compact binary form (the default — varint fields, delta-coded
// sequence numbers, interned strings) and a JSON form for inspection and
// toolability. Read distinguishes them by the first byte; both encoders
// write Version and both decoders reject any other version.

// magic opens every binary trace file.
const magic = "TESLATRC"

// maxTraceEvents caps what a decoder will allocate for one trace,
// protecting against corrupt or hostile length prefixes.
const maxTraceEvents = 1 << 26

// Write encodes the trace in compact binary form.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	enc := &encoder{w: bw, strings: map[string]uint64{}}
	enc.uvarint(uint64(Version))
	enc.uvarint(t.Dropped)
	enc.uvarint(uint64(len(t.Automata)))
	for _, name := range t.Automata {
		enc.str(name)
	}
	enc.uvarint(uint64(len(t.Events)))
	var prevSeq uint64
	for i := range t.Events {
		ev := &t.Events[i]
		enc.uvarint(ev.Seq - prevSeq)
		prevSeq = ev.Seq
		enc.varint(int64(ev.Thread))
		enc.byte(byte(ev.Kind))
		enc.varint(ev.Time)
		switch ev.Kind {
		case KindProgram:
			enc.byte(byte(ev.Prog))
			enc.str(ev.Fn)
			enc.str(ev.Field)
			enc.varint(int64(ev.Op))
			enc.varint(int64(ev.Auto))
			enc.varint(int64(ev.Sym))
			enc.varint(int64(ev.Slot))
			if ev.HasRet {
				enc.byte(1)
				enc.varint(int64(ev.Ret))
			} else {
				enc.byte(0)
			}
			enc.uvarint(uint64(len(ev.Vals)))
			for _, v := range ev.Vals {
				enc.varint(int64(v))
			}
			enc.uvarint(uint64(len(ev.InStack)))
			for _, id := range ev.InStack {
				enc.varint(int64(id))
			}
		default:
			enc.str(ev.Class)
			enc.str(ev.Symbol)
			enc.key(ev.Key)
			enc.key(ev.ParentKey)
			enc.uvarint(uint64(ev.From))
			enc.uvarint(uint64(ev.To))
			enc.uvarint(uint64(ev.State))
			enc.varint(int64(ev.Verdict))
			if ev.Kind == KindQuarantine {
				// Trailing byte for the newest kind only, so traces
				// without quarantine events keep the original layout.
				if ev.On {
					enc.byte(1)
				} else {
					enc.byte(0)
				}
			}
		}
	}
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// WriteJSON encodes the trace as indented JSON.
func WriteJSON(w io.Writer, t *Trace) error {
	t.FormatVersion = Version
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(t)
}

// Read decodes a trace in either encoding, sniffing the first byte: JSON
// traces start with '{', binary traces with the magic string.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("trace: empty input: %w", err)
	}
	if first[0] == '{' {
		return readJSON(br)
	}
	return readBinary(br)
}

func readJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: bad JSON trace: %w", err)
	}
	if t.FormatVersion != Version {
		return nil, versionError(uint64(t.FormatVersion))
	}
	return &t, nil
}

// readBinary loads a whole binary trace through the incremental
// StreamDecoder (stream.go), which owns the wire format.
func readBinary(br *bufio.Reader) (*Trace, error) {
	sd, err := NewStreamDecoder(br)
	if err != nil {
		return nil, err
	}
	t := &Trace{
		FormatVersion: Version,
		Automata:      sd.Automata(),
		Dropped:       sd.Dropped(),
	}
	for {
		ev, err := sd.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Events = append(t.Events, ev)
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// encoder accumulates binary output, deferring the first error. Strings are
// interned: the first occurrence writes ref == table length followed by the
// bytes; later occurrences write only the ref.
type encoder struct {
	w       *bufio.Writer
	buf     [binary.MaxVarintLen64]byte
	strings map[string]uint64
	err     error
}

func (e *encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) varint(v int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	if ref, ok := e.strings[s]; ok {
		e.uvarint(ref)
		return
	}
	ref := uint64(len(e.strings))
	e.strings[s] = ref
	e.uvarint(ref)
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

// key writes the bound mask then only the bound slots' values.
func (e *encoder) key(k core.Key) {
	e.uvarint(uint64(k.Mask))
	for i := 0; i < core.KeySize; i++ {
		if k.Bound(i) {
			e.varint(int64(k.Data[i]))
		}
	}
}

type decoder struct {
	r       *bufio.Reader
	strings []string
	err     error
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	d.err = err
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	d.err = err
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	d.err = err
	return v
}

func (d *decoder) str() string {
	ref := d.uvarint()
	if d.err != nil {
		return ""
	}
	if ref < uint64(len(d.strings)) {
		return d.strings[ref]
	}
	if ref != uint64(len(d.strings)) {
		d.err = fmt.Errorf("string ref %d out of order (table has %d)", ref, len(d.strings))
		return ""
	}
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return ""
	}
	s := string(buf)
	d.strings = append(d.strings, s)
	return s
}

func (d *decoder) key() core.Key {
	var k core.Key
	mask := d.uvarint()
	if d.err != nil {
		return k
	}
	if mask >= 1<<core.KeySize {
		d.err = fmt.Errorf("key mask %#x exceeds KeySize=%d", mask, core.KeySize)
		return k
	}
	k.Mask = uint32(mask)
	for i := 0; i < bits.Len32(k.Mask); i++ {
		if k.Bound(i) {
			k.Data[i] = core.Value(d.varint())
		}
	}
	return k
}
