package core

import (
	"os"
	"strconv"
	"sync"
	"testing"
)

// benchShards selects the store implementation under benchmark from the
// TESLA_STORE_SHARDS environment variable (1 = reference single-mutex store,
// 0 or unset = sharded auto). `make bench-compare` runs these benchmarks
// once per setting and diffs them with benchstat: the benchmark names are
// identical across runs by construction.
func benchShards() int {
	n, err := strconv.Atoi(os.Getenv("TESLA_STORE_SHARDS"))
	if err != nil {
		return 0
	}
	return n
}

// benchStore builds the OLTP-session store of the `-fig shard` figure: a
// pool of keyed sessions inside a much larger preallocated block, so the
// reference store's O(limit) scans are on display.
func benchStore(shards int) (*Store, *Class, TransitionSet, TransitionSet) {
	cls := &Class{Name: "bench", States: 8, Limit: 1024}
	s := NewStoreOpts(StoreOpts{Context: Global, Shards: shards})
	s.Register(cls)
	enter := TransitionSet{{From: 0, To: 1, Flags: TransInit, KeyMask: 1}}
	work := TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 1, KeyMask: 1}}
	site := TransitionSet{{From: 1, To: 1, KeyMask: 1}, {From: 2, To: 2, KeyMask: 1}}
	for k := 0; k < 128; k++ {
		s.UpdateState(cls, "enter", 0, NewKey(Value(k)), enter)
	}
	return s, cls, work, site
}

// BenchmarkStoreOLTP drives keyed work and required-site events through the
// global store from one goroutine.
func BenchmarkStoreOLTP(b *testing.B) {
	s, cls, work, site := benchStore(benchShards())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := NewKey(Value(i % 128))
		if i%8 == 7 {
			s.UpdateState(cls, "site", SymRequired, key, site)
		} else {
			s.UpdateState(cls, "work", 0, key, work)
		}
	}
}

// BenchmarkStoreOLTPParallel is the contended variant: RunParallel drives
// disjoint key ranges from GOMAXPROCS goroutines.
func BenchmarkStoreOLTPParallel(b *testing.B) {
	s, cls, work, site := benchStore(benchShards())
	var nextG int
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		g := nextG
		nextG++
		mu.Unlock()
		base := (g * 16) % 128
		i := 0
		for pb.Next() {
			key := NewKey(Value(base + i%16))
			if i%8 == 7 {
				s.UpdateState(cls, "site", SymRequired, key, site)
			} else {
				s.UpdateState(cls, "work", 0, key, work)
			}
			i++
		}
	})
}
