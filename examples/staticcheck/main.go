// Command staticcheck demonstrates the compile-time model checker: one
// assertion is proved safe (its instrumentation is elided), one is proved
// doomed (reported without ever running the program), and one carries a
// liveness obligation only the refinement pass can discharge (counted
// flush loop → PROVABLY-SAFE with proof lines, hooks elided).
//
//	go run ./examples/staticcheck
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"tesla/internal/staticcheck"
	"tesla/internal/toolchain"
)

func main() {
	dir := "examples/staticcheck/testdata"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	for _, name := range []string{"safe.c", "doomed.c", "liveness.c"} {
		text, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sources := map[string]string{name: string(text)}

		rep, err := staticcheck.CheckSources(sources, "main")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("== %s\n", name)
		for _, r := range rep.Results {
			fmt.Printf("  %-22s %s\n", r.Automaton.Name, r.Verdict)
			for _, reason := range r.Reasons {
				fmt.Printf("    - %s\n", reason)
			}
			for _, p := range r.Proof {
				fmt.Printf("    - %s\n", p)
			}
			for _, o := range r.Obligations {
				fmt.Printf("    - obligation: %s\n", o.Detail)
			}
		}

		// Build twice to show the elision payoff for the safe program.
		full, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{Instrument: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		elided, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
			Instrument: true, Check: true, Elide: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  hooks: %d without checker, %d with elision (%d elided)\n",
			full.Stats.Hooks, elided.Stats.Hooks, elided.Stats.ElidedHooks)
	}
}
