package agg

import (
	"math/rand"
	"reflect"
	"testing"

	"tesla/internal/core"
	"tesla/internal/dtrace"
	"tesla/internal/trace"
)

// randomLifecycleTrace builds a trace of lifecycle events over a few
// classes — the multi-process merging corpus. seqBase keeps sequence
// numbers distinct across simulated processes.
func randomLifecycleTrace(r *rand.Rand, seqBase uint64, n int) *trace.Trace {
	classes := []string{"alpha", "beta", "gamma"}
	symbols := []string{"open", "close", "check", ""}
	verdicts := []core.VerdictKind{core.VerdictNoInstance, core.VerdictBadTransition}
	tr := &trace.Trace{FormatVersion: trace.Version, Automata: classes}
	for i := 0; i < n; i++ {
		ev := trace.Event{Seq: seqBase + uint64(i) + 1, Thread: -1}
		switch r.Intn(5) {
		case 0, 1:
			ev.Kind = trace.KindTransition
			ev.Class = classes[r.Intn(len(classes))]
			ev.From = uint32(r.Intn(3))
			ev.To = uint32(r.Intn(3))
			ev.Symbol = symbols[r.Intn(3)]
		case 2:
			ev.Kind = trace.KindAccept
			ev.Class = classes[r.Intn(len(classes))]
		case 3:
			ev.Kind = trace.KindFail
			ev.Class = classes[r.Intn(len(classes))]
			ev.Symbol = symbols[r.Intn(len(symbols))]
			ev.Verdict = verdicts[r.Intn(len(verdicts))]
		case 4:
			// Noise the aggregator must count but not aggregate.
			ev.Kind = trace.KindInit
			ev.Class = classes[r.Intn(len(classes))]
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr
}

// TestSummarizeParity is the multi-trace merging differential: ingesting
// N processes' traces into the fleet store and then asking it to
// Summarize must equal dtrace.Summarize over the concatenation of those
// traces — same keys, same counts, byte for byte. Fleet aggregation is
// dtrace scaled out, not a second opinion.
func TestSummarizeParity(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		store := NewStore(StoreOpts{Stripes: 1 + r.Intn(8), Seed: int64(round)})
		merged := &trace.Trace{FormatVersion: trace.Version}
		nProcs := 1 + r.Intn(6)
		for p := 0; p < nProcs; p++ {
			tr := randomLifecycleTrace(r, uint64(p)*100000, r.Intn(400))
			store.IngestTrace(procName(p), tr)
			merged.Events = append(merged.Events, tr.Events...)
		}
		want := dtrace.Summarize(merged)
		got := store.Summarize()
		for _, pair := range []struct {
			name      string
			want, got *dtrace.Aggregation
		}{
			{"transitions", want.Transitions, got.Transitions},
			{"accepts", want.Accepts, got.Accepts},
			{"failures", want.Failures, got.Failures},
		} {
			w, g := pair.want.Snapshot(), pair.got.Snapshot()
			if !reflect.DeepEqual(w, g) {
				t.Fatalf("round %d: %s diverge\ndtrace: %v\nfleet:  %v", round, pair.name, w, g)
			}
		}
	}
}

func procName(p int) string { return string(rune('a'+p)) + "-proc" }

// TestFleetCounts checks the fleet rollup arithmetic and orderings.
func TestFleetCounts(t *testing.T) {
	store := NewStore(StoreOpts{})
	t1 := &trace.Trace{Events: []trace.Event{
		{Seq: 1, Kind: trace.KindTransition, Class: "c", From: 0, To: 1, Symbol: "s"},
		{Seq: 2, Kind: trace.KindFail, Class: "c", Symbol: "site", Verdict: core.VerdictNoInstance},
	}, Dropped: 3}
	t2 := &trace.Trace{Events: []trace.Event{
		{Seq: 1, Kind: trace.KindFail, Class: "c", Symbol: "site", Verdict: core.VerdictNoInstance},
		{Seq: 2, Kind: trace.KindAccept, Class: "c"},
	}}
	store.IngestTrace("p1", t1)
	store.IngestTrace("p2", t2)
	store.IngestTrace("p2", t1) // p2 sends a second frame

	sum := store.Fleet()
	if sum.TotalFrames != 3 || sum.TotalEvents != 6 {
		t.Fatalf("fleet totals: frames=%d events=%d", sum.TotalFrames, sum.TotalEvents)
	}
	if sum.RingDropped != 6 {
		t.Fatalf("ring dropped = %d, want 6", sum.RingDropped)
	}
	if sum.TotalFailures != 3 || sum.FailureSites != 2 {
		t.Fatalf("failures: total=%d sites=%d", sum.TotalFailures, sum.FailureSites)
	}
	if len(sum.Producers) != 2 || sum.Producers[0].Process != "p1" || sum.Producers[1].Events != 4 {
		t.Fatalf("producers: %+v", sum.Producers)
	}

	fails := store.Failures()
	if len(fails) != 1 {
		t.Fatalf("failure sites: %+v", fails)
	}
	f := fails[0]
	if f.Class != "c" || f.Total != 3 || len(f.PerProcess) != 2 {
		t.Fatalf("failure site: %+v", f)
	}
	if f.PerProcess[0].Process != "p2" || f.PerProcess[0].Count != 2 {
		t.Fatalf("per-process not count-descending: %+v", f.PerProcess)
	}

	top := store.TopK("c", 10)
	if len(top) != 1 || top[0].Site != "0->1 @ s" || top[0].Count != 2 {
		t.Fatalf("topk: %+v", top)
	}
}

// TestReservoirSamples: below the cap every failure window is kept with
// its leading context; above the cap the reservoir stays at the cap.
func TestReservoirSamples(t *testing.T) {
	store := NewStore(StoreOpts{SampleCap: 3, Window: 2, Seed: 1})
	var evs []trace.Event
	for i := 0; i < 40; i++ {
		evs = append(evs, trace.Event{Seq: uint64(i*2 + 1), Kind: trace.KindTransition, Class: "c", From: 0, To: 1, Symbol: "t"})
		evs = append(evs, trace.Event{Seq: uint64(i*2 + 2), Kind: trace.KindFail, Class: "c", Symbol: "site", Verdict: core.VerdictNoInstance})
	}
	store.IngestTrace("p", &trace.Trace{Events: evs})
	samples := store.Samples("c")
	if len(samples) != 3 {
		t.Fatalf("reservoir size %d, want cap 3", len(samples))
	}
	for _, s := range samples {
		last := s.Events[len(s.Events)-1]
		if last.Kind != trace.KindFail {
			t.Fatalf("sample does not end at the failure: %+v", s.Events)
		}
		if len(s.Events) > 3 {
			t.Fatalf("sample window exceeds Window+1: %d", len(s.Events))
		}
	}

	// Two failures only, cap 3: full capture, context preserved in order.
	store2 := NewStore(StoreOpts{SampleCap: 3, Window: 4})
	store2.IngestTrace("p", &trace.Trace{Events: []trace.Event{
		{Seq: 1, Kind: trace.KindTransition, Class: "c", Symbol: "a"},
		{Seq: 2, Kind: trace.KindFail, Class: "c", Symbol: "x", Verdict: core.VerdictNoInstance},
	}})
	got := store2.Samples("")
	if len(got) != 1 || len(got[0].Events) != 2 || got[0].Events[0].Symbol != "a" {
		t.Fatalf("context window wrong: %+v", got)
	}
}

// TestHealthRollup: latest-wins per producer, summed fleet-wide.
func TestHealthRollup(t *testing.T) {
	store := NewStore(StoreOpts{})
	store.MergeHealth("p1", []HealthRow{{Class: "c", Overflows: 1, Live: 2}})
	store.MergeHealth("p1", []HealthRow{{Class: "c", Overflows: 5, Live: 1}}) // cumulative update
	store.MergeHealth("p2", []HealthRow{{Class: "c", Overflows: 2, Quarantined: true}})
	hs := store.Health()
	if len(hs) != 1 || hs[0].Overflows != 7 || hs[0].Live != 1 || hs[0].Quarantined != 1 {
		t.Fatalf("health rollup: %+v", hs)
	}
}
