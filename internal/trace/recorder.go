package trace

import (
	"sort"
	"sync"
	"sync/atomic"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
)

// Recorder captures a live run into ring buffers. It plugs into the runtime
// at both notification layers:
//
//   - as a monitor.Tap it sees every raw program event per thread, before
//     dispatch, and records it in that thread's own ring;
//   - as a core.Handler it sees every automaton lifecycle event and records
//     it in a shared lifecycle ring (handlers run store-side, where the
//     originating thread is unknown for the global context; those events
//     carry Thread == -1).
//
// One atomic sequence counter spans all rings, so a program event always
// carries a smaller Seq than the lifecycle events it causes, and Snapshot
// can merge the rings into a single totally-ordered trace. Install it with:
//
//	rec := trace.NewRecorder(build.Autos, 0)
//	rt, err := build.NewRuntime(monitor.Options{Tap: rec, Handler: rec})
//	...
//	tr := rec.Snapshot()
type Recorder struct {
	names []string
	cap   int

	// DropFault, when non-nil, is consulted for every lifecycle event;
	// returning true drops the event (counted in the trace's Dropped
	// total) as if the ring had overflowed. It is the fault-injection
	// seam used by internal/faultinject. Set before recording starts.
	DropFault func() bool

	seq atomic.Uint64

	mu    sync.Mutex // guards sinks (growth), life and injected
	life  *ring
	sinks []*threadSink
	// injected counts DropFault rejections separately from ring
	// overwrites, so CutSince can attribute per-cut losses exactly.
	injected uint64
}

// threadSink is one thread's ring. Its mutex is uncontended during normal
// recording (only the owning thread pushes); it exists so Snapshot can read
// concurrently with live threads without a race.
type threadSink struct {
	rec *Recorder
	id  int

	mu   sync.Mutex
	ring *ring
}

// NewRecorder creates a recorder for a run over the given automata.
// perThreadCap bounds each thread's ring (and the shared lifecycle ring);
// <= 0 selects the default (65536 events).
func NewRecorder(autos []*automata.Automaton, perThreadCap int) *Recorder {
	names := make([]string, len(autos))
	for i, a := range autos {
		names[i] = a.Name
	}
	return &Recorder{
		names: names,
		cap:   perThreadCap,
		life:  newRing(perThreadCap),
	}
}

// ThreadTap implements monitor.Tap.
func (r *Recorder) ThreadTap(threadID int) monitor.ThreadTap {
	s := &threadSink{rec: r, id: threadID, ring: newRing(r.cap)}
	r.mu.Lock()
	r.sinks = append(r.sinks, s)
	r.mu.Unlock()
	return s
}

// ProgramEvent implements monitor.ThreadTap. The event's slices are
// borrowed from the caller, so they are copied here.
func (s *threadSink) ProgramEvent(ev monitor.ProgramEvent) {
	rec := Event{
		Seq:    s.rec.seq.Add(1),
		Thread: s.id,
		Kind:   KindProgram,
		Time:   ev.Time,
		Prog:   ev.Kind,
		Fn:     ev.Fn,
		Field:  ev.Field,
		Op:     ev.Op,
		Auto:   ev.Auto,
		Sym:    ev.Sym,
		Slot:   ev.Slot,
		Ret:    ev.Ret,
		HasRet: ev.HasRet,
	}
	if len(ev.Vals) > 0 {
		rec.Vals = append([]core.Value(nil), ev.Vals...)
	}
	if len(ev.InStack) > 0 {
		rec.InStack = append([]int(nil), ev.InStack...)
	}
	s.mu.Lock()
	s.ring.push(rec)
	s.mu.Unlock()
}

// ProgramBatch implements monitor.BatchThreadTap: a batched thread's ring
// flush hands over its whole staged batch in one call. The events' Vals and
// InStack slices were already copied once by the staging ring and ownership
// transfers here — events are staged once, not re-copied — and the sink
// pays one lock round and one sequence-counter update per batch instead of
// per event. Seq assignment happens at flush time, before the batch's store
// ops run, so a program event still carries a smaller Seq than the
// lifecycle events it causes.
func (s *threadSink) ProgramBatch(evs []monitor.ProgramEvent) {
	if len(evs) == 0 {
		return
	}
	base := s.rec.seq.Add(uint64(len(evs))) - uint64(len(evs))
	s.mu.Lock()
	for i := range evs {
		ev := &evs[i]
		s.ring.push(Event{
			Seq:     base + uint64(i) + 1,
			Thread:  s.id,
			Kind:    KindProgram,
			Time:    ev.Time,
			Prog:    ev.Kind,
			Fn:      ev.Fn,
			Field:   ev.Field,
			Op:      ev.Op,
			Auto:    ev.Auto,
			Sym:     ev.Sym,
			Slot:    ev.Slot,
			Ret:     ev.Ret,
			HasRet:  ev.HasRet,
			Vals:    ev.Vals,
			InStack: ev.InStack,
		})
	}
	s.mu.Unlock()
}

// lifeEvent stamps and records one lifecycle event. Handlers are dispatched
// after the store has released its locks, so this only has to serialise
// against other recorder users. DropFault, when set, can reject the event
// before it reaches the ring — the fault-injection seam for simulated ring
// drops (counted like real ones).
func (r *Recorder) lifeEvent(ev Event) {
	ev.Seq = r.seq.Add(1)
	ev.Thread = -1
	r.mu.Lock()
	if r.DropFault != nil && r.DropFault() {
		r.life.dropped++
		r.injected++
	} else {
		r.life.push(ev)
	}
	r.mu.Unlock()
}

// InstanceNew implements core.Handler.
func (r *Recorder) InstanceNew(cls *core.Class, inst *core.Instance) {
	r.lifeEvent(Event{Kind: KindInit, Class: cls.Name, Key: inst.Key, State: inst.State})
}

// InstanceClone implements core.Handler.
func (r *Recorder) InstanceClone(cls *core.Class, parent, clone *core.Instance) {
	r.lifeEvent(Event{Kind: KindClone, Class: cls.Name, Key: clone.Key, ParentKey: parent.Key, State: clone.State})
}

// Transition implements core.Handler.
func (r *Recorder) Transition(cls *core.Class, inst *core.Instance, from, to uint32, symbol string) {
	r.lifeEvent(Event{Kind: KindTransition, Class: cls.Name, Key: inst.Key, From: from, To: to, Symbol: symbol})
}

// Accept implements core.Handler.
func (r *Recorder) Accept(cls *core.Class, inst *core.Instance) {
	r.lifeEvent(Event{Kind: KindAccept, Class: cls.Name, Key: inst.Key, State: inst.State})
}

// Fail implements core.Handler.
func (r *Recorder) Fail(v *core.Violation) {
	r.lifeEvent(Event{Kind: KindFail, Class: v.Class.Name, Key: v.Key, State: v.State, Symbol: v.Symbol, Verdict: v.Kind})
}

// Overflow implements core.Handler.
func (r *Recorder) Overflow(cls *core.Class, key core.Key) {
	r.lifeEvent(Event{Kind: KindOverflow, Class: cls.Name, Key: key})
}

// Evict implements core.Handler.
func (r *Recorder) Evict(cls *core.Class, inst *core.Instance) {
	r.lifeEvent(Event{Kind: KindEvict, Class: cls.Name, Key: inst.Key, State: inst.State})
}

// Quarantine implements core.Handler.
func (r *Recorder) Quarantine(cls *core.Class, on bool) {
	r.lifeEvent(Event{Kind: KindQuarantine, Class: cls.Name, On: on})
}

// EventCount returns how many events have been recorded so far, including
// any that ring overflow has since discarded.
func (r *Recorder) EventCount() uint64 { return r.seq.Load() }

// Snapshot merges all rings into one Seq-ordered trace. It may be called
// while threads are still recording; it sees a consistent prefix of each
// ring at the moment it is locked.
func (r *Recorder) Snapshot() *Trace {
	r.mu.Lock()
	sinks := append([]*threadSink(nil), r.sinks...)
	events := r.life.snapshot(nil)
	dropped := r.life.dropped
	r.mu.Unlock()

	for _, s := range sinks {
		s.mu.Lock()
		events = s.ring.snapshot(events)
		dropped += s.ring.dropped
		s.mu.Unlock()
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return &Trace{
		FormatVersion: Version,
		Automata:      append([]string(nil), r.names...),
		Dropped:       dropped,
		Events:        events,
	}
}

// Cut is a watermark over every ring of a Recorder, as returned by
// CutSince. The zero value (or nil) means "the beginning of the run".
type Cut struct {
	life     uint64
	injected uint64
	sinks    map[*threadSink]uint64
}

// CutSince returns the events recorded after prev (nil for the start of
// the run) as a delta trace, plus the new watermark to pass next time.
// The delta's Dropped field counts only what was lost since prev — ring
// overwrites of not-yet-cut events and injected drops — so a consumer
// summing delta lengths and delta Dropped fields accounts for every
// event the run emitted, exactly once. This is the producer side of live
// streaming to an aggregation service: flush deltas while the run is
// hot, with loss explicit, never silent.
//
// The cut is a cross-ring barrier: every ring is locked before any is
// read, so the watermark captures one instant. For a single-threaded run
// (where pushes are totally ordered in time and Seq order equals push
// order across rings) each cut is therefore an exact Seq-prefix of the
// run — the property the WAL trace spool's crash-recovery invariant
// ("a recovered spool is a verbatim prefix of the uncrashed run") rests
// on. Reading one ring at a time instead would let an event land in a
// not-yet-read ring while a causally-later event in an already-read ring
// is missed, punching a Seq hole through the final, never-followed-up
// cut of a killed process.
func (r *Recorder) CutSince(prev *Cut) (*Trace, *Cut) {
	next := &Cut{sinks: map[*threadSink]uint64{}}
	var prevLife, prevInjected uint64
	var prevSinks map[*threadSink]uint64
	if prev != nil {
		prevLife, prevInjected, prevSinks = prev.life, prev.injected, prev.sinks
	}

	// Lock order: r.mu, then every sink. Push paths take a single sink
	// lock (never r.mu under it) and lifeEvent takes r.mu alone, so this
	// cannot deadlock against recording.
	r.mu.Lock()
	sinks := append([]*threadSink(nil), r.sinks...)
	for _, s := range sinks {
		s.mu.Lock()
	}
	events, dropped := r.life.cutSince(prevLife, nil)
	next.life = r.life.pushed
	next.injected = r.injected
	dropped += r.injected - prevInjected
	for _, s := range sinks {
		var lost uint64
		events, lost = s.ring.cutSince(prevSinks[s], events)
		next.sinks[s] = s.ring.pushed
		dropped += lost
	}
	for _, s := range sinks {
		s.mu.Unlock()
	}
	r.mu.Unlock()
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return &Trace{
		FormatVersion: Version,
		Automata:      append([]string(nil), r.names...),
		Dropped:       dropped,
		Events:        events,
	}, next
}
