// opensslcve replays the §3.5.1 case study end to end: a malicious
// s_server forges an ASN.1 tag inside a DSA key-exchange signature; the
// vulnerable libssl client conflates EVP_VerifyFinal's -1 exceptional
// failure with success (CVE-2008-5077); and a single TESLA assertion in the
// libfetch client — figure 6 — catches the forged handshake without
// touching OpenSSL's code.
//
//	go run ./examples/opensslcve
package main

import (
	"fmt"
	"os"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/ssl"
)

func main() {
	fmt.Println("assertion (figure 6):", ssl.FetchAssertion())
	fmt.Println()

	scenario := func(title string, malicious, fixedClient bool) {
		auto, err := ssl.FetchAutomaton()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		handler := core.NewCountingHandler()
		mon := monitor.MustNew(monitor.Options{Handler: handler}, auto)
		env := ssl.NewEnv(mon.NewThread())

		server := ssl.NewServer(1234)
		server.Malicious = malicious
		client := &ssl.Client{Env: env, FixedCheck: fixedClient}

		doc, err := ssl.FetchMain(env, client, server, "/index.html")
		fmt.Printf("%s\n", title)
		if err != nil {
			fmt.Printf("  handshake rejected: %v\n", err)
		} else {
			fmt.Printf("  fetched %d bytes\n", len(doc))
		}
		if vs := handler.Violations(); len(vs) > 0 {
			for _, v := range vs {
				fmt.Printf("  TESLA: %v\n", v)
			}
		} else if err == nil {
			fmt.Println("  TESLA: certificate verification confirmed")
		}
		fmt.Println()
	}

	scenario("honest server, vulnerable client:", false, false)
	scenario("malicious server, vulnerable client (the CVE):", true, false)
	scenario("malicious server, patched client:", true, true)

	fmt.Println("The vulnerable client happily fetched from the malicious server —")
	fmt.Println("but TESLA saw that EVP_VerifyFinal never returned success within")
	fmt.Println("main's execution, across the libssl/libcrypto boundary.")
}
