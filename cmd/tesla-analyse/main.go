// tesla-analyse is the TESLA analyser (§4.1): it parses csub source files,
// extracts the TESLA assertions in them and writes .tesla manifest files —
// one per source plus a combined program manifest.
//
// Usage:
//
//	tesla-analyse [-o combined.tesla] [-print] file.c...
package main

import (
	"flag"
	"fmt"
	"os"

	"tesla/internal/analyse"
	"tesla/internal/toolchain/cli"
)

func main() {
	tool := cli.New("tesla-analyse", "[-o combined.tesla] [-print] file.c...")
	out := flag.String("o", "", "path for the combined program manifest (default: program.tesla)")
	print := flag.Bool("print", false, "print manifests to stdout instead of writing files")
	lint := flag.Bool("lint", false, "also report assertions whose events can never occur")
	entry := flag.String("entry", "main", "entry point for the -lint static checker")
	sources := tool.LoadSources(tool.ParseSourceArgs())

	perFile, combined, err := analyse.Sources(sources)
	if err != nil {
		tool.Fatal(err)
	}

	if *lint {
		warnings, _, err := analyse.LintProgram(sources, *entry)
		if err != nil {
			tool.Fatal(err)
		}
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "warning: %s\n", w)
		}
	}

	if *print {
		for name, m := range perFile {
			fmt.Printf("; %s (%d assertions)\n", name, len(m.Assertions))
			if err := m.Encode(os.Stdout); err != nil {
				tool.Fatal(err)
			}
		}
		fmt.Printf("; combined (%d assertions)\n", len(combined.Assertions))
		if err := combined.Encode(os.Stdout); err != nil {
			tool.Fatal(err)
		}
		return
	}

	for name, m := range perFile {
		path := name + ".tesla"
		if err := m.Save(path); err != nil {
			tool.Fatal(err)
		}
		fmt.Printf("wrote %s (%d assertions)\n", path, len(m.Assertions))
	}
	target := *out
	if target == "" {
		target = "program.tesla"
	}
	if err := combined.Save(target); err != nil {
		tool.Fatal(err)
	}
	fmt.Printf("wrote %s (%d assertions)\n", target, len(combined.Assertions))
}
