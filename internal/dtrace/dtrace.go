// Package dtrace is a miniature DTrace-style probe and aggregation
// facility. In the FreeBSD kernel, TESLA's default event handler uses
// DTrace to aggregate information across events — e.g. counting how often
// a transition is triggered per stack trace (§4.4.2). This package provides
// the aggregation substrate and a core.Handler adapter.
package dtrace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"tesla/internal/core"
)

// Aggregation accumulates counts keyed by strings, like DTrace's
// @agg[key] = count().
type Aggregation struct {
	mu     sync.Mutex
	name   string
	counts map[string]uint64
}

// NewAggregation creates a named aggregation.
func NewAggregation(name string) *Aggregation {
	return &Aggregation{name: name, counts: map[string]uint64{}}
}

// Add bumps a key.
func (a *Aggregation) Add(key string, n uint64) {
	a.mu.Lock()
	a.counts[key] += n
	a.mu.Unlock()
}

// Count returns a key's tally.
func (a *Aggregation) Count(key string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counts[key]
}

// Snapshot returns a copy of the aggregation's current counts, for
// differential comparisons (the fleet store's query results are pinned
// against Summarize through it).
func (a *Aggregation) Snapshot() map[string]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]uint64, len(a.counts))
	for k, v := range a.counts {
		out[k] = v
	}
	return out
}

// Keys returns all keys, sorted by descending count then name — DTrace's
// printa ordering.
func (a *Aggregation) Keys() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]string, 0, len(a.counts))
	for k := range a.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if a.counts[keys[i]] != a.counts[keys[j]] {
			return a.counts[keys[i]] > a.counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Print writes the aggregation like dtrace's printa.
func (a *Aggregation) Print(w io.Writer) {
	for _, k := range a.Keys() {
		fmt.Fprintf(w, "  %-60s %8d\n", k, a.Count(k))
	}
}

// Quantize builds a power-of-two histogram, like DTrace's quantize().
type Quantize struct {
	mu      sync.Mutex
	buckets [64]uint64
}

// Add records a value.
func (q *Quantize) Add(v uint64) {
	b := 0
	for v > 0 {
		v >>= 1
		b++
	}
	q.mu.Lock()
	q.buckets[b]++
	q.mu.Unlock()
}

// Bucket returns the count of values whose highest bit is b.
func (q *Quantize) Bucket(b int) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if b < 0 || b >= len(q.buckets) {
		return 0
	}
	return q.buckets[b]
}

// Print renders the histogram.
func (q *Quantize) Print(w io.Writer) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var max uint64 = 1
	hi := 0
	for i, n := range q.buckets {
		if n > 0 {
			hi = i
		}
		if n > max {
			max = n
		}
	}
	for i := 0; i <= hi; i++ {
		bar := strings.Repeat("@", int(40*q.buckets[i]/max))
		fmt.Fprintf(w, "  %12d |%-40s %d\n", 1<<i, bar, q.buckets[i])
	}
}

// StackFunc supplies the current stack trace for aggregation keys.
type StackFunc func() string

// Handler is the kernel default TESLA handler: it aggregates automaton
// transitions, acceptances and violations per (class, edge, stack trace),
// instead of printing to stderr as the userspace default does.
type Handler struct {
	core.NopHandler

	Transitions *Aggregation
	Accepts     *Aggregation
	Failures    *Aggregation
	// Stack, if set, contributes a stack-trace component to keys.
	Stack StackFunc
}

// NewHandler creates an aggregating handler.
func NewHandler(stack StackFunc) *Handler {
	return &Handler{
		Transitions: NewAggregation("tesla-transitions"),
		Accepts:     NewAggregation("tesla-accepts"),
		Failures:    NewAggregation("tesla-failures"),
		Stack:       stack,
	}
}

// Key joins aggregation key components in the canonical dtrace spelling.
// It is exported so other aggregators (the fleet store) can emit keys that
// compare byte-for-byte with a Handler's.
func Key(parts ...string) string { return strings.Join(parts, " @ ") }

func (h *Handler) key(parts ...string) string {
	if h.Stack != nil {
		parts = append(parts, h.Stack())
	}
	return Key(parts...)
}

// Transition aggregates per-edge counts (the data behind fig. 9's weights).
func (h *Handler) Transition(cls *core.Class, inst *core.Instance, from, to uint32, symbol string) {
	h.Transitions.Add(h.key(cls.Name, fmt.Sprintf("%d->%d", from, to), symbol), 1)
}

// Accept aggregates automaton acceptances.
func (h *Handler) Accept(cls *core.Class, inst *core.Instance) {
	h.Accepts.Add(h.key(cls.Name), 1)
}

// Fail aggregates violations.
func (h *Handler) Fail(v *core.Violation) {
	h.Failures.Add(h.key(v.Class.Name, v.Kind.String()), 1)
}

// Report writes all aggregations.
func (h *Handler) Report(w io.Writer) {
	fmt.Fprintln(w, "tesla transition counts:")
	h.Transitions.Print(w)
	fmt.Fprintln(w, "tesla acceptances:")
	h.Accepts.Print(w)
	fmt.Fprintln(w, "tesla failures:")
	h.Failures.Print(w)
}
