package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// The sharded store partitions each class's preallocated instance block into
// lock stripes selected by Key hash, so that global-context events for
// unrelated keys proceed in parallel instead of serialising on one mutex
// (§3.2's explicit lock, whose cost figure 12 measures). Three structures
// replace the reference store's linear scans:
//
//   - a per-shard open-addressed hash index mapping an instance key to its
//     slot in the block (linear probing, backward-shift deletion). Tables
//     are sized to twice the class limit so the load factor never exceeds
//     one half even if every instance hashes to one shard;
//   - a class-wide free-slot bitmap allocated lowest-slot-first, replacing
//     the O(n) alloc scan with an O(n/64) word scan. First-fit is load-
//     bearing, not an aesthetic choice: candidate instances are processed
//     in slot order, so under overflow the slot each instance occupies
//     decides which clone attempts get the last free slots — a LIFO free
//     list diverges from the reference store there (the differential
//     harness catches it). Capacity semantics are unchanged: overflow
//     happens exactly when the class's whole block is live;
//   - atomics for the per-class live count and a census of live instances
//     per key mask, which drives lock planning below.
//
// Lock planning: an event with key E must reach every live instance whose
// key is compatible with E. A compatible instance whose mask is a subset of
// E's mask is *exactly* E projected onto that mask, so it is found with one
// hash lookup in one computable shard. The mask census says which masks are
// live: if all of them are subsets of E's mask, the event locks only the
// shards of those projections (plus clone/init targets, which are
// projections too); if any live instance binds a slot E does not, its shard
// cannot be computed and the event falls back to locking every stripe and
// scanning. Cross-shard operations — clone-from-ANY fallbacks, «cleanup»,
// Reset, Instances — take shard locks in ascending stripe order, so they
// cannot deadlock against each other or against single-shard events.
//
// The preallocation discipline of §4.4.1 is preserved: block, index tables
// and free-list links are all allocated at registration time; monitored
// paths allocate nothing.

// maxStoreShards bounds the stripe count so a lock set fits one uint64.
const maxStoreShards = 64

// keyMaskAll covers every representable key mask.
const keyMaskAll = 1<<KeySize - 1

// shardedClass is one class's state in a sharded store.
type shardedClass struct {
	cls   *Class
	limit int
	// insts is the class-wide preallocated block; shards own disjoint
	// subsets of its slots, tracked by their hash indexes.
	insts []Instance
	// free is the free-slot bitmap (bit set ⇒ slot free); allocSlot scans
	// it from word zero so slots are claimed lowest-first, matching the
	// reference allocator's first-fit scan.
	free []atomic.Uint64
	// live is the class-wide active-instance count.
	live atomic.Int32
	// masks counts live instances per key mask, for lock planning.
	masks [1 << KeySize]atomic.Int32

	shards []storeShard

	// pol is the class's supervision policy, resolved at registration.
	pol classPolicy
	// quarantined mirrors the quarantine bit for the lock-free fast path;
	// quar holds the mutable quarantine bookkeeping under quarMu.
	quarantined atomic.Bool
	quarMu      sync.Mutex
	quar        quarState
	// needsFlush defers the physical expunge of a quarantined class:
	// quarantine entry happens under a partial stripe set, so slots are
	// cleared later, by the first event that holds every stripe (plan
	// escalates to allMask while the flag is set). Until then the class is
	// logically empty: introspection reports no instances.
	needsFlush atomic.Bool
	// health is the class's degradation accounting.
	health shardedHealth
	// birthClock stamps activations, mirroring the reference store's
	// counter so EvictOldest picks the same victim in both.
	birthClock atomic.Uint64
}

func (sc *shardedClass) healthSnapshot() Health { return sc.health.snapshot() }

// clearQuarantine silently resets quarantine state (Reset/ResetClass and
// storage replacement). Callers must hold every stripe lock or own the class
// exclusively, so the deferred flush cannot race the expunge they perform.
func (sc *shardedClass) clearQuarantine() {
	sc.quarMu.Lock()
	sc.quar = quarState{}
	sc.quarantined.Store(false)
	sc.needsFlush.Store(false)
	sc.quarMu.Unlock()
}

// storeShard is one lock stripe: a mutex and the hash index of the instances
// whose keys hash to this stripe.
type storeShard struct {
	mu sync.Mutex
	// table maps probe positions to slot+1; 0 is empty. Deletion
	// backward-shifts, so a probe may stop at the first empty entry.
	table []uint32
	_     [40]byte // keep neighbouring stripes off one cache line
}

func newShardedClass(cls *Class, storage []Instance, nshards int) *shardedClass {
	if storage == nil {
		storage = make([]Instance, cls.limit())
	}
	sc := &shardedClass{
		cls:    cls,
		limit:  len(storage),
		insts:  storage,
		free:   make([]atomic.Uint64, (len(storage)+63)/64),
		shards: make([]storeShard, nshards),
	}
	tsize := 8
	for tsize < 2*sc.limit {
		tsize <<= 1
	}
	for i := range sc.shards {
		sc.shards[i].table = make([]uint32, tsize)
	}
	sc.resetFreeList()
	return sc
}

// resetFreeList marks every slot free. Callers must hold every shard lock
// (or own the class exclusively, as at registration).
func (sc *shardedClass) resetFreeList() {
	for w := range sc.free {
		n := sc.limit - w*64
		if n >= 64 {
			sc.free[w].Store(^uint64(0))
		} else {
			sc.free[w].Store(1<<uint(n) - 1)
		}
	}
}

// hashKey mixes a key's mask and bound values; unbound slots are always zero
// by construction, so equal keys hash equally.
func hashKey(k Key) uint64 {
	h := uint64(k.Mask)*0x9E3779B97F4A7C15 + 0x85EBCA77C2B2AE63
	for i := 0; i < KeySize; i++ {
		if k.Mask&(1<<uint(i)) != 0 {
			h ^= uint64(k.Data[i]) + 0x9E3779B97F4A7C15 + h<<6 + h>>2
			h *= 0xC2B2AE3D27D4EB4F
		}
	}
	h ^= h >> 29
	return h
}

// shardOf picks the stripe for a key from the hash's high bits; probe
// positions use the low bits, so stripe and probe stay decorrelated.
func (sc *shardedClass) shardOf(k Key) int {
	return int(hashKey(k)>>48) & (len(sc.shards) - 1)
}

// allMask is the lock set covering every stripe.
func (sc *shardedClass) allMask() uint64 {
	return 1<<uint(len(sc.shards)) - 1
}

// lockShards acquires the stripes in set in ascending index order — the
// fixed lock order every cross-shard operation follows. Per-thread stores
// skip locking entirely, like the reference store.
func (s *Store) lockShards(sc *shardedClass, set uint64) {
	if s.context != Global {
		return
	}
	for i := range sc.shards {
		if set&(1<<uint(i)) != 0 {
			sc.shards[i].mu.Lock()
		}
	}
}

func (s *Store) unlockShards(sc *shardedClass, set uint64) {
	if s.context != Global {
		return
	}
	for i := range sc.shards {
		if set&(1<<uint(i)) != 0 {
			sc.shards[i].mu.Unlock()
		}
	}
}

// allocSlot claims the lowest free slot, or returns -1 on overflow.
// Lock-free: events holding different stripe locks allocate concurrently,
// and sequentially the slot chosen is exactly the reference allocator's.
func (sc *shardedClass) allocSlot() int32 {
	for w := range sc.free {
		v := sc.free[w].Load()
		for v != 0 {
			b := uint(bits.TrailingZeros64(v))
			if sc.free[w].CompareAndSwap(v, v&^(1<<b)) {
				return int32(w*64) + int32(b)
			}
			v = sc.free[w].Load()
		}
	}
	return -1
}

// freeSlot returns a slot to the bitmap.
func (sc *shardedClass) freeSlot(slot int32) {
	w, bit := slot/64, uint64(1)<<uint(slot%64)
	for {
		v := sc.free[w].Load()
		if sc.free[w].CompareAndSwap(v, v|bit) {
			return
		}
	}
}

// findIn looks up the slot holding exactly key k in one stripe's index, or
// -1. The stripe lock must be held.
func (sc *shardedClass) findIn(sh *storeShard, k Key) int32 {
	mask := uint64(len(sh.table) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		e := sh.table[i]
		if e == 0 {
			return -1
		}
		if slot := int32(e - 1); sc.insts[slot].Key == k {
			return slot
		}
	}
}

// insertIn adds slot under its key to one stripe's index. The stripe lock
// must be held. The table never fills: its size is twice the class limit.
func (sc *shardedClass) insertIn(sh *storeShard, slot int32) {
	mask := uint64(len(sh.table) - 1)
	i := hashKey(sc.insts[slot].Key) & mask
	for sh.table[i] != 0 {
		i = (i + 1) & mask
	}
	sh.table[i] = uint32(slot) + 1
}

// removeIn deletes slot from one stripe's index with backward-shift
// deletion, so probes need no tombstones. The stripe lock must be held.
func (sc *shardedClass) removeIn(sh *storeShard, slot int32) {
	mask := uint64(len(sh.table) - 1)
	i := hashKey(sc.insts[slot].Key) & mask
	for {
		e := sh.table[i]
		if e == 0 {
			return // not present; nothing to shift
		}
		if int32(e-1) == slot {
			break
		}
		i = (i + 1) & mask
	}
	sh.table[i] = 0
	for j := (i + 1) & mask; ; j = (j + 1) & mask {
		e := sh.table[j]
		if e == 0 {
			return
		}
		home := hashKey(sc.insts[e-1].Key) & mask
		// The entry at j can fill the hole at i iff its home position
		// lies cyclically at or before i.
		if (j-home)&mask >= (j-i)&mask {
			sh.table[i] = e
			sh.table[j] = 0
			i = j
		}
	}
}

// activate claims slot for a new instance and indexes it. The key's stripe
// lock must be held.
func (sc *shardedClass) activate(slot int32, state uint32, k Key) *Instance {
	inst := &sc.insts[slot]
	*inst = Instance{State: state, Key: k, Active: true, birth: sc.birthClock.Add(1)}
	sc.insertIn(&sc.shards[sc.shardOf(k)], slot)
	sc.masks[k.Mask&keyMaskAll].Add(1)
	sc.live.Add(1)
	return inst
}

// deactivate unindexes slot and returns it to the free list. The key's
// stripe lock must be held.
func (sc *shardedClass) deactivate(slot int32) {
	inst := &sc.insts[slot]
	sc.removeIn(&sc.shards[sc.shardOf(inst.Key)], slot)
	sc.masks[inst.Key.Mask&keyMaskAll].Add(-1)
	sc.live.Add(-1)
	inst.Active = false
	sc.freeSlot(slot)
}

// expungeLocked clears every instance, index and counter and rebuilds the
// free list. Every shard lock must be held.
func (sc *shardedClass) expungeLocked() {
	for i := range sc.shards {
		t := sc.shards[i].table
		for j := range t {
			t[j] = 0
		}
	}
	for i := range sc.insts {
		sc.insts[i].Active = false
	}
	for m := range sc.masks {
		sc.masks[m].Store(0)
	}
	sc.live.Store(0)
	sc.resetFreeList()
}

// plan computes the lock set an event with this key and transition set
// needs: the shard of every live-mask projection of the key, the shard of
// the key itself (clone target) and of the «init» key. scan reports that
// some live instance binds a slot outside the event's mask, forcing the
// all-stripes fallback.
func (sc *shardedClass) plan(key Key, ts TransitionSet) (set uint64, scan bool) {
	return sc.planWith(key, initTransition(ts))
}

// planWith is plan with the «init» transition already selected — the
// compiled-engine path supplies the plan's hoisted init instead of scanning
// the transition set per event.
func (sc *shardedClass) planWith(key Key, init *Transition) (set uint64, scan bool) {
	// A pending quarantine flush needs exclusive ownership.
	if sc.needsFlush.Load() {
		return sc.allMask(), true
	}
	// EvictOldest's class-wide victim scan needs every stripe, but only
	// when this event could actually overflow. One event allocates at most
	// one clone per pre-event candidate plus one «init» — ≤ live+1 slots —
	// so with limit-live ≥ live+1 free slots it cannot exhaust the block
	// and normal planning applies. The headroom argument collapses when a
	// fault injector is armed (any allocation may fail), so then every
	// event takes the full set. Concurrent events can still eat the
	// headroom plan() saw; the allocation path re-checks ownership and
	// degrades that rare overflow to drop-new rather than scan unowned
	// stripes.
	if sc.pol.overflow == EvictOldest {
		live := int(sc.live.Load())
		if sc.pol.injected || sc.limit-live < live+1 {
			return sc.allMask(), true
		}
	}
	set = 1 << uint(sc.shardOf(key))
	if init != nil {
		set |= 1 << uint(sc.shardOf(key.project(init.KeyMask)))
	}
	for m := uint32(0); m <= keyMaskAll; m++ {
		if sc.masks[m].Load() == 0 {
			continue
		}
		if m&^key.Mask != 0 {
			return sc.allMask(), true
		}
		set |= 1 << uint(sc.shardOf(key.project(m)))
	}
	return set, false
}

// registerSharded adds or replaces a class in the sharded store. storage is
// nil to preallocate internally (Register) or the caller's block
// (RegisterWithStorage, which replaces and expunges on re-registration).
func (s *Store) registerSharded(cls *Class, storage []Instance) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.stab.Load()
	if _, ok := old.m[cls]; ok && storage == nil {
		return
	}
	nt := &shardTable{m: make(map[*Class]*shardedClass, len(old.m)+1)}
	for c, sc := range old.m {
		nt.m[c] = sc
	}
	sc := newShardedClass(cls, storage, s.nshards)
	sc.pol = s.sv.resolve(cls)
	replaced := false
	for _, prev := range old.order {
		if prev.cls == cls {
			nt.order = append(nt.order, sc)
			replaced = true
		} else {
			nt.order = append(nt.order, prev)
		}
	}
	if !replaced {
		nt.order = append(nt.order, sc)
	}
	nt.m[cls] = sc
	s.stab.Store(nt)
}

// shardedClassOf resolves a class against the current registration snapshot.
func (s *Store) shardedClassOf(cls *Class) *shardedClass {
	return s.stab.Load().m[cls]
}

// instancesSharded snapshots the live instances of cls in slot order.
func (s *Store) instancesSharded(cls *Class) []Instance {
	sc := s.shardedClassOf(cls)
	if sc == nil || sc.quarantined.Load() || sc.needsFlush.Load() {
		// Quarantined (or re-armed but not yet flushed): logically empty.
		return nil
	}
	s.lockShards(sc, sc.allMask())
	defer s.unlockShards(sc, sc.allMask())
	var out []Instance
	for i := range sc.insts {
		if sc.insts[i].Active {
			inst := sc.insts[i] // copy, not alias: the slot is reused
			out = append(out, inst)
		}
	}
	return out
}

// shardCand is one pre-event live instance in the sharded candidate
// snapshot; the birth stamp detects slots evicted and reused mid-event.
type shardCand struct {
	slot  int32
	birth uint64
}

// updateSharded is UpdateState over the lock-striped store. It reproduces
// the reference implementation's lifecycle exactly (init, clone, update,
// error, cleanup — §4.4.1) and its supervision behaviour (overflow policies,
// quarantine, buffered dispatch); only the locking and lookup machinery
// differ.
func (s *Store) updateSharded(sc *shardedClass, symbol string, flags SymbolFlags, key Key, ts TransitionSet) error {
	var nb noteBuf
	err := s.updateShardedLocked(sc, symbol, flags, key, ts, &nb)
	s.dispatch(&nb)
	return err
}

// shardedQuarGate runs the quarantine fast path for one event: re-arm when
// due (processing the event normally), otherwise count the suppression and
// report true so the caller skips the event. Safe both before any stripe lock
// (the single-event path) and while holding a batch run's stripes — quarMu
// only ever nests inside stripe locks.
func (s *Store) shardedQuarGate(sc *shardedClass, nb *noteBuf) bool {
	if !sc.quarantined.Load() {
		return false
	}
	sc.quarMu.Lock()
	switch {
	case !sc.quarantined.Load():
		// Re-armed by a concurrent event; proceed.
		sc.quarMu.Unlock()
	case sc.quar.rearmDue(sc.pol, s.sv.now):
		sc.quar = quarState{}
		sc.quarantined.Store(false)
		nb.add(note{kind: noteQuarantine, cls: sc.cls, on: false})
		sc.quarMu.Unlock()
	default:
		sc.quar.suppressed++
		sc.health.suppressed.Add(1)
		sc.quarMu.Unlock()
		return true
	}
	return false
}

func (s *Store) updateShardedLocked(sc *shardedClass, symbol string, flags SymbolFlags, key Key, ts TransitionSet, nb *noteBuf) error {
	// Quarantine fast path, before any stripe lock. The re-arm check runs
	// before suppression so the event that brings the class back is itself
	// processed normally; the physical expunge stays deferred (needsFlush)
	// until the stripe locks are held below.
	if s.shardedQuarGate(sc, nb) {
		return nil
	}

	// Acquire the planned lock set, then re-plan under the locks: another
	// thread may have activated an instance whose mask widens the set
	// between planning and locking. The loop escalates to all stripes
	// after one miss, so it terminates.
	set, scan := sc.plan(key, ts)
	if ts.HasCleanup() {
		// Cleanup expunges the whole class; take everything up front.
		set = sc.allMask()
	}
	for tries := 0; ; tries++ {
		s.lockShards(sc, set)
		need, nscan := sc.plan(key, ts)
		if need&^set == 0 {
			scan = nscan
			break
		}
		s.unlockShards(sc, set)
		if tries >= 1 {
			set = sc.allMask()
		} else {
			set |= need
		}
	}
	defer s.unlockShards(sc, set)
	return s.updateShardedBody(sc, symbol, flags, key, ts, nb, set, scan)
}

// shardedAllocator builds the sharded store's policy-driven slot claimer as
// a closure for the interpreted event body below. The compiled engine body
// (engine.go) calls shardedClaim directly — same policy machinery, no
// per-event closure allocation.
func (s *Store) shardedAllocator(sc *shardedClass, nb *noteBuf, failStop bool, firstErr *error, set uint64) func(Key) int32 {
	return func(k Key) int32 {
		return s.shardedClaim(sc, nb, failStop, firstErr, set, k)
	}
}

// shardedClaim claims one instance slot under the class's overflow policy.
// It mirrors the reference store's refClaim (update.go) decision for
// decision, including when the fault injector is consulted, so the
// differential harness sees identical degradation sequences. Returns the
// claimed slot or -1 to drop.
func (s *Store) shardedClaim(sc *shardedClass, nb *noteBuf, failStop bool, firstErr *error, set uint64, k Key) int32 {
	if sc.quarantined.Load() {
		// Entered quarantine earlier in this same event (or
		// concurrently); no further allocation.
		return -1
	}
	slot := int32(-1)
	if s.sv.allocFail == nil || !s.sv.allocFail(sc.cls) {
		slot = sc.allocSlot()
	}
	if slot < 0 {
		sc.health.overflows.Add(1)
		nb.add(note{kind: noteOverflow, cls: sc.cls, key: k})
		switch sc.pol.overflow {
		case EvictOldest:
			if set != sc.allMask() {
				// Concurrent events consumed the free headroom
				// plan() justified the partial lock set with; the
				// victim scan would touch unowned stripes. Degrade
				// this one allocation to drop-new (the overflow is
				// already counted above). Sequentially this cannot
				// happen: plan() takes every stripe whenever the
				// event alone could exhaust the block or an
				// injector is armed.
				break
			}
			// The full lock set is held, so the class-wide scan and
			// deactivation are safe. Same victim rule as the
			// reference store: oldest same-mask instance first, so
			// the unkeyed parent (oldest by construction) is only
			// sacrificed when nothing bound like the newcomer lives.
			victim, anyVictim := int32(-1), int32(-1)
			for i := range sc.insts {
				if !sc.insts[i].Active {
					continue
				}
				if anyVictim < 0 || sc.insts[i].birth < sc.insts[anyVictim].birth {
					anyVictim = int32(i)
				}
				if sc.insts[i].Key.Mask == k.Mask && (victim < 0 || sc.insts[i].birth < sc.insts[victim].birth) {
					victim = int32(i)
				}
			}
			if victim < 0 {
				victim = anyVictim
			}
			if victim >= 0 {
				ev := sc.insts[victim]
				sc.deactivate(victim)
				sc.health.evictions.Add(1)
				nb.add(note{kind: noteEvict, cls: sc.cls, inst: ev})
				if s.sv.allocFail == nil || !s.sv.allocFail(sc.cls) {
					slot = sc.allocSlot()
				}
			}
		case QuarantineClass:
			sc.quarMu.Lock()
			sc.quar.streak++
			if sc.quar.streak >= sc.pol.quarantineAfter {
				sc.quar.enter(sc.pol, s.sv.now)
				sc.quarantined.Store(true)
				sc.needsFlush.Store(true)
				sc.health.quarantines.Add(1)
				nb.add(note{kind: noteQuarantine, cls: sc.cls, on: true})
			}
			sc.quarMu.Unlock()
		}
	}
	if slot < 0 {
		if failStop && *firstErr == nil {
			*firstErr = ErrOverflow
		}
		return -1
	}
	if sc.pol.overflow == QuarantineClass {
		sc.quarMu.Lock()
		sc.quar.streak = 0
		sc.quarMu.Unlock()
	}
	return slot
}

// updateShardedBody is the event body proper, shared by the single-event path
// above and the batch run loop (batch.go). The caller holds the stripe locks
// in set, which must cover the event's planned need; scan selects the
// all-stripes candidate walk. This is the interpreted (table-driven) walk;
// the compiled engine body in engine.go replaces its per-event scans with
// precomputed plans, and the differential gate pins the two equal.
func (s *Store) updateShardedBody(sc *shardedClass, symbol string, flags SymbolFlags, key Key, ts TransitionSet, nb *noteBuf, set uint64, scan bool) error {
	cleanup := ts.HasCleanup()

	if sc.needsFlush.Load() && set == sc.allMask() {
		// Deferred quarantine expunge: plan() escalates to every stripe
		// while the flag is set, so the first event through after re-arm
		// lands here holding the full set. (A concurrent entry can raise
		// the flag after our plan — then this event proceeds as if
		// linearised before the quarantine and the next one flushes.)
		sc.expungeLocked()
		sc.needsFlush.Store(false)
	}

	var firstErr error
	failStop := sc.pol.failureIn(s) == FailStop
	fail := func(v *Violation) {
		sc.health.violations.Add(1)
		nb.add(note{kind: noteFail, cls: sc.cls, v: v})
		if failStop && firstErr == nil {
			firstErr = v
		}
	}

	alloc := s.shardedAllocator(sc, nb, failStop, &firstErr, set)

	// Collect the instances live before this event (so clones made below
	// are not driven by the same event), compatible with its key. With no
	// out-of-mask masks live, every compatible instance is a projection
	// of the key: a handful of O(1) index lookups replaces the reference
	// store's scan over the whole block.
	var candBuf [DefaultInstanceLimit]shardCand
	cand := candBuf[:0]
	if scan {
		for si := range sc.shards {
			for _, e := range sc.shards[si].table {
				if e == 0 {
					continue
				}
				if slot := int32(e - 1); sc.insts[slot].Key.Compatible(key) {
					cand = append(cand, shardCand{slot: slot, birth: sc.insts[slot].birth})
				}
			}
		}
	} else {
		for m := uint32(0); m <= keyMaskAll; m++ {
			if m&^key.Mask != 0 || sc.masks[m].Load() == 0 {
				continue
			}
			k := key.project(m)
			if slot := sc.findIn(&sc.shards[sc.shardOf(k)], k); slot >= 0 {
				cand = append(cand, shardCand{slot: slot, birth: sc.insts[slot].birth})
			}
		}
	}
	// Process in slot order, matching the reference store's iteration.
	// Insertion sort: candidate lists are short (≤ one per live mask off
	// the scan path) and sort.Slice would allocate on the monitored path.
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && cand[j].slot < cand[j-1].slot; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}

	matched := false
	for _, c := range cand {
		if sc.quarantined.Load() {
			// The class went out of service mid-event; the reference
			// store's expunge leaves no candidate to process.
			break
		}
		inst := &sc.insts[c.slot]
		if !inst.Active || inst.birth != c.birth {
			// Evicted mid-event (the slot may already hold a new
			// occupant, which this event must not drive).
			continue
		}

		var tr *Transition
		for j := range ts {
			if ts[j].From == inst.State {
				tr = &ts[j]
				break
			}
		}

		if tr == nil {
			switch {
			case cleanup:
				// The bound is ending but this instance is stuck
				// in a non-accepting state: an `eventually`
				// obligation was never satisfied.
				fail(&Violation{Class: sc.cls, Kind: VerdictIncomplete, Key: inst.Key, State: inst.State, Symbol: symbol})
			case flags&SymStrict != 0:
				fail(&Violation{Class: sc.cls, Kind: VerdictBadTransition, Key: inst.Key, State: inst.State, Symbol: symbol})
				sc.deactivate(c.slot)
			}
			continue
		}

		if inst.Key.Specializes(key) {
			// The event binds variables this instance has not seen:
			// clone a more specific instance and leave the parent.
			// For in-plan parents the union is the event key itself,
			// whose stripe is locked; scan-mode parents run under
			// every stripe lock.
			newKey := inst.Key.Union(key)
			if sc.findIn(&sc.shards[sc.shardOf(newKey)], newKey) >= 0 {
				matched = true
				continue
			}
			// Copy the parent before allocating: eviction may free
			// and immediately reuse the parent's own slot.
			parent := *inst
			nslot := alloc(newKey)
			if nslot < 0 {
				continue
			}
			clone := sc.activate(nslot, tr.To, newKey)
			nb.add(note{kind: noteClone, cls: sc.cls, parent: parent, inst: *clone})
			nb.add(note{kind: noteTransition, cls: sc.cls, inst: *clone, from: tr.From, to: tr.To, symbol: symbol})
			matched = true
			if tr.Cleanup() {
				nb.add(note{kind: noteAccept, cls: sc.cls, inst: *clone})
			}
			continue
		}

		from := inst.State
		inst.State = tr.To
		nb.add(note{kind: noteTransition, cls: sc.cls, inst: *inst, from: from, to: tr.To, symbol: symbol})
		matched = true
		if tr.Cleanup() {
			nb.add(note{kind: noteAccept, cls: sc.cls, inst: *inst})
		}
	}

	if !matched && !sc.quarantined.Load() {
		if init := initTransition(ts); init != nil {
			initKey := key.project(init.KeyMask)
			if sc.findIn(&sc.shards[sc.shardOf(initKey)], initKey) < 0 {
				if slot := alloc(initKey); slot >= 0 {
					inst := sc.activate(slot, init.To, initKey)
					nb.add(note{kind: noteNew, cls: sc.cls, inst: *inst})
					nb.add(note{kind: noteTransition, cls: sc.cls, inst: *inst, from: init.From, to: init.To, symbol: symbol})
					matched = true
					if init.Cleanup() {
						nb.add(note{kind: noteAccept, cls: sc.cls, inst: *inst})
					}
				}
			}
		} else if flags&SymRequired != 0 && sc.live.Load() > 0 {
			// Execution reached the assertion site with bindings for
			// which no instance exists (fig. 9 “Error”); with no live
			// instances the event arrived outside the bound and is
			// ignored, as in the reference store.
			fail(&Violation{Class: sc.cls, Kind: VerdictNoInstance, Key: key, Symbol: symbol})
		}
	}

	if cleanup && !sc.quarantined.Load() {
		// A cleanup transition resets the class: all instances are
		// expunged and events are ignored until the next «init».
		sc.expungeLocked()
	}

	return firstErr
}
