// Command fleetagg demonstrates fleet-scale trace aggregation: an
// in-process tesla-agg server receives live event streams from three
// monitored runs of the same program — two with inputs that satisfy its
// assertion, one with an input that violates it — and the fleet queries
// answer "which assertion failed where" with per-process attribution,
// without collecting or replaying a single trace file.
//
//	go run ./examples/fleetagg
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"tesla/internal/agg"
	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
	"tesla/internal/trace"
)

func main() {
	dir := "examples/fleetagg/testdata"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := demo(os.Stdout, dir); err != nil {
		fmt.Fprintln(os.Stderr, "fleetagg demo:", err)
		os.Exit(1)
	}
}

// fleet is the simulated population: three processes running the same
// program with different inputs. gated.c only passes its security check
// for positive arguments, so web-1 and web-2 hold and batch-9 violates.
var fleet = []struct {
	process string
	arg     int64
}{
	{"web-1", 7},
	{"web-2", 11},
	{"batch-9", -3},
}

// demo builds gated.c once, streams each fleet member's run to an
// in-process aggregation server, then prints the fleet queries. Runs are
// sequential and the store seeded, so the output is deterministic and the
// golden test can pin it byte for byte.
func demo(w io.Writer, dir string) error {
	src, err := os.ReadFile(filepath.Join(dir, "gated.c"))
	if err != nil {
		return err
	}
	build, err := toolchain.BuildProgram(map[string]string{"gated.c": string(src)}, true)
	if err != nil {
		return err
	}

	sock := filepath.Join(os.TempDir(), fmt.Sprintf("fleetagg-%d.sock", os.Getpid()))
	defer os.Remove(sock)
	ln, err := agg.Listen(sock)
	if err != nil {
		return err
	}
	store := agg.NewStore(agg.StoreOpts{Seed: 1})
	srv := agg.NewServer(store, agg.ServerOpts{})
	go srv.Serve(ln)
	defer srv.Close()

	for _, m := range fleet {
		violations, events, err := runProducer(build, sock, m.process, m.arg)
		if err != nil {
			return fmt.Errorf("%s: %w", m.process, err)
		}
		fmt.Fprintf(w, "%-8s main(%d): %d event(s) streamed, %d violation(s)\n",
			m.process, m.arg, events, violations)
	}

	// Wait until every bye has been read and accounted; the streams are
	// local, so this settles immediately.
	for store.Fleet().CleanProducers < len(fleet) {
		time.Sleep(time.Millisecond)
	}

	sum := store.Fleet()
	fmt.Fprintf(w, "\nfleet: %d producer(s), %d event(s) ingested, %d dropped anywhere\n",
		len(sum.Producers), sum.TotalEvents,
		sum.DroppedEvents+sum.ClientDropped+sum.RingDropped)
	for _, ps := range sum.Producers {
		status := "clean"
		if !ps.Clean {
			status = "DISCONNECTED"
		}
		fmt.Fprintf(w, "  %-8s %-6s ingested=%d sent=%d dropped=%d\n",
			ps.Process, status, ps.Events, ps.SentEvents, ps.DroppedEvents)
	}

	fmt.Fprintln(w, "\nwhich assertion failed where:")
	for _, site := range store.Failures() {
		fmt.Fprintf(w, "  %s [%s] x%d\n", site.Class, site.Verdict, site.Total)
		for _, pc := range site.PerProcess {
			fmt.Fprintf(w, "    %-8s x%d\n", pc.Process, pc.Count)
		}
	}

	if sites := store.Failures(); len(sites) > 0 {
		fmt.Fprintf(w, "\nhottest transitions for %s:\n", sites[0].Class)
		for _, sc := range store.TopK(sites[0].Class, 3) {
			fmt.Fprintf(w, "  %-24s x%d\n", sc.Site, sc.Count)
		}
	}

	fmt.Fprintln(w, "\nfleet health:")
	for _, fh := range store.Health() {
		fmt.Fprintf(w, "  %-24s violations=%d live=%d quarantined=%d\n",
			fh.Class, fh.Violations, fh.Live, fh.Quarantined)
	}
	return nil
}

// runProducer executes one monitored run with its lifecycle events
// streamed live to the aggregation server, finishing with the health
// counters and the bye accounting — the library shape of tesla-run -agg.
func runProducer(build *toolchain.Build, sock, process string, arg int64) (violations int, events uint64, err error) {
	client, err := agg.Dial(sock, agg.ClientOpts{Tool: "fleetagg", Process: process})
	if err != nil {
		return 0, 0, err
	}
	counting := core.NewCountingHandler()
	rec := trace.NewRecorder(build.Autos, 0)
	pub := agg.NewPublisher(rec, client)
	pub.Start(0)

	_, rt, runErr := build.Run("main", monitor.Options{
		Handler: core.MultiHandler{counting, rec},
		Tap:     rec,
	}, arg)

	if err := pub.Stop(); err != nil {
		return 0, 0, err
	}
	if rt != nil && rt.Monitor != nil {
		if err := client.SendHealth(rt.Monitor.Health()); err != nil {
			return 0, 0, err
		}
	}
	if err := client.Close(); err != nil {
		return 0, 0, err
	}
	if runErr != nil {
		return 0, 0, runErr
	}
	return len(counting.Violations()), client.Stats().SentEvents, nil
}
