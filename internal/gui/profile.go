package gui

import (
	"strings"
	"sync"

	"tesla/internal/core"
)

// Profiler is an ordered-trace handler supporting the §3.5.3 profiling
// finding: "according to our profiling, applications often save and restore
// the graphics state (a comparatively expensive operation), when the only
// aspects of the state that are changed in between are the current drawing
// location and the colour… the restore is unnecessary, because the next
// cell always explicitly sets these values". It records the instrumented
// message stream in order and reports elidable save/restore pairs —
// optimisation opportunities that are difficult to discover statically
// because views delegate drawing to cells provided by other objects.
type Profiler struct {
	core.NopHandler
	mu    sync.Mutex
	trace []string
}

// NewProfiler creates an empty profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// Transition records each instrumented event in order.
func (p *Profiler) Transition(cls *core.Class, inst *core.Instance, from, to uint32, symbol string) {
	p.mu.Lock()
	p.trace = append(p.trace, symbol)
	p.mu.Unlock()
}

// Trace returns a copy of the recorded event sequence.
func (p *Profiler) Trace() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.trace...)
}

// cheapOp reports state changes cells re-establish themselves before
// drawing (location, colour and per-cell attributes), which make an
// enclosing save/restore pair redundant.
func cheapOp(sel string) bool {
	return sel == "setColor:" || sel == "translate::" || strings.HasPrefix(sel, "setAttr")
}

func selectorOf(symbol string) string {
	// Symbols print as "[ANY(id) selector]" or "[ANY(id) sel: ANY(x) …]".
	s := strings.TrimPrefix(symbol, "[")
	s = strings.TrimSuffix(s, "]")
	parts := strings.Fields(s)
	if len(parts) < 2 {
		return symbol
	}
	if len(parts) == 2 {
		return parts[1]
	}
	// Keyword selector: join the parts ending in ':'.
	var sel strings.Builder
	for _, part := range parts[1:] {
		if strings.HasSuffix(part, ":") {
			sel.WriteString(part)
		}
	}
	return sel.String()
}

// SaveRestoreStats summarises graphics-state usage in a trace.
type SaveRestoreStats struct {
	// Saves and Restores are the total gsave / grestore(+Token) counts.
	Saves    int
	Restores int
	// Redundant counts restore operations whose matching save window
	// changed only the drawing location and colour — state the next cell
	// sets explicitly anyway, so the pair could be elided.
	Redundant int
}

// AnalyzeSaveRestore scans the ordered trace for elidable save/restore
// pairs.
func AnalyzeSaveRestore(trace []string) SaveRestoreStats {
	var stats SaveRestoreStats
	type frame struct{ onlyCheap bool }
	var stack []frame
	for _, sym := range trace {
		sel := selectorOf(sym)
		switch {
		case sel == "gsave":
			stats.Saves++
			stack = append(stack, frame{onlyCheap: true})
		case sel == "grestore":
			stats.Restores++
			if n := len(stack); n > 0 {
				if stack[n-1].onlyCheap {
					stats.Redundant++
				}
				stack = stack[:n-1]
			}
		case sel == "grestoreToken:":
			// A non-LIFO restore unwinds every save opened since the
			// token: one restore closing all open windows.
			stats.Restores++
			redundant := len(stack) > 0
			for _, f := range stack {
				redundant = redundant && f.onlyCheap
			}
			if redundant {
				stats.Redundant++
			}
			stack = stack[:0]
		case strings.HasPrefix(sel, "drawRect") || strings.HasPrefix(sel, "drawWithFrame"):
			// Drawing consumes state but does not dirty it.
		default:
			if !cheapOp(sel) {
				// Some other state-changing message: every open
				// save/restore window is load-bearing.
				for i := range stack {
					stack[i].onlyCheap = false
				}
			}
		}
	}
	return stats
}
