package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests over UpdateState: random event streams must preserve the
// store's structural invariants regardless of ordering.

// randomTransitionSets builds a plausible automaton shape: init from 0,
// a few keyed middle transitions, cleanup edges.
func randomSets(r *rand.Rand) (enter, mid, site, exit TransitionSet) {
	states := uint32(3 + r.Intn(3))
	enter = TransitionSet{{From: 0, To: 1, Flags: TransInit}}
	for s := uint32(1); s < states; s++ {
		mid = append(mid, Transition{From: s, To: 1 + (s % states), KeyMask: 1})
	}
	site = TransitionSet{{From: 2, To: states, KeyMask: 1}}
	for s := uint32(1); s <= states; s++ {
		if r.Intn(2) == 0 || s == 1 {
			exit = append(exit, Transition{From: s, To: states + 1, Flags: TransCleanup})
		}
	}
	return
}

// TestQuickStoreInvariants drives random event streams and checks:
//  1. no two active instances of a class share a key;
//  2. live count never exceeds the preallocation limit;
//  3. after a cleanup event the class is empty;
//  4. LiveCount agrees with Instances.
//
// The property runs against both store implementations.
func TestQuickStoreInvariants(t *testing.T) {
	storeVariants(t, func(t *testing.T, shards int) { quickStoreInvariants(t, shards) })
}

func quickStoreInvariants(t *testing.T, shards int) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		cls := &Class{Name: "q", States: 16, Limit: 4 + rng.Intn(8)}
		s := NewStoreOpts(StoreOpts{Context: PerThread, Shards: shards})
		s.Register(cls)
		enter, mid, site, exit := randomSets(rng)

		check := func() bool {
			insts := s.Instances(cls)
			if len(insts) != s.LiveCount(cls) {
				return false
			}
			if len(insts) > cls.Limit {
				return false
			}
			seen := map[Key]bool{}
			for _, in := range insts {
				if seen[in.Key] {
					return false
				}
				seen[in.Key] = true
			}
			return true
		}

		for ev := 0; ev < 60; ev++ {
			switch rng.Intn(8) {
			case 0:
				s.UpdateState(cls, "enter", 0, AnyKey, enter)
			case 1, 2, 3:
				s.UpdateState(cls, "mid", 0, NewKey(Value(rng.Intn(12))), mid)
			case 4, 5:
				s.UpdateState(cls, "site", SymRequired, NewKey(Value(rng.Intn(12))), site)
			case 6:
				s.UpdateState(cls, "exit", 0, AnyKey, exit)
				if s.LiveCount(cls) != 0 {
					return false
				}
			case 7:
				s.UpdateState(cls, "mid", SymStrict, NewKey(Value(rng.Intn(12))), mid)
			}
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneKeysSpecializeParents: after any event stream, every
// instance key is reachable by specialising the init key (here: any key is
// ≥ (∗)) — and more specifically, clones agree with the event keys that
// created them (each active key is either (∗) or a key we sent).
func TestQuickCloneKeyProvenance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		cls := &Class{Name: "prov", States: 8, Limit: 16}
		s := NewStore(PerThread, nil)
		s.Register(cls)
		enter := TransitionSet{{From: 0, To: 1, Flags: TransInit}}
		mid := TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 2, KeyMask: 1}}

		s.UpdateState(cls, "enter", 0, AnyKey, enter)
		sent := map[Key]bool{AnyKey: true}
		for i := 0; i < 20; i++ {
			k := NewKey(Value(rng.Intn(6)))
			sent[k] = true
			s.UpdateState(cls, "mid", 0, k, mid)
		}
		for _, in := range s.Instances(cls) {
			if !sent[in.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHandlerConsistency: transitions reported to the handler always
// move between valid states, and every accept is preceded by a transition.
func TestQuickHandlerConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		cls := &Class{Name: "h", States: 8, Limit: 8}
		h := NewCountingHandler()
		s := NewStore(PerThread, h)
		s.Register(cls)
		enter, mid, site, exit := randomSets(rng)
		for i := 0; i < 40; i++ {
			switch rng.Intn(4) {
			case 0:
				s.UpdateState(cls, "enter", 0, AnyKey, enter)
			case 1:
				s.UpdateState(cls, "mid", 0, NewKey(Value(rng.Intn(5))), mid)
			case 2:
				s.UpdateState(cls, "site", SymRequired, NewKey(Value(rng.Intn(5))), site)
			case 3:
				s.UpdateState(cls, "exit", 0, AnyKey, exit)
			}
		}
		var transitions uint64
		for e, n := range h.Edges() {
			if e.From == e.To && e.Symbol == "enter" {
				return false // init edges never self-loop here
			}
			transitions += n
		}
		return transitions == 0 || h.Accepts(cls.Name) <= transitions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
