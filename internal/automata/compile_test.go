package automata

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tesla/internal/core"
	"tesla/internal/spec"
)

func compileSrc(t *testing.T, name, src string, env *spec.Env) *Automaton {
	t.Helper()
	a, err := spec.Parse(name, src, env)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	return auto
}

// runString drives a symbol string through a fresh store and reports
// (accepted, violations). Symbols carry the automaton's key semantics; this
// helper uses unbound keys throughout (pure ordering checks).
func runString(auto *Automaton, seq []int) (accepted bool, violations []*core.Violation) {
	h := core.NewCountingHandler()
	s := core.NewStore(core.PerThread, h)
	s.Register(auto.Class)
	s.UpdateState(auto.Class, auto.Symbols[boundBeginID].Name, auto.Symbols[boundBeginID].Flags, core.AnyKey, auto.Trans[boundBeginID])
	for _, sym := range seq {
		s.UpdateState(auto.Class, auto.Symbols[sym].Name, auto.Symbols[sym].Flags, core.AnyKey, auto.Trans[sym])
	}
	s.UpdateState(auto.Class, auto.Symbols[boundEndID].Name, auto.Symbols[boundEndID].Flags, core.AnyKey, auto.Trans[boundEndID])
	return h.Accepts(auto.Name) > 0, h.Violations()
}

func TestCompileFig9Shape(t *testing.T) {
	auto := compileSrc(t, "fig9",
		`TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)`, nil)

	if got := auto.Vars; len(got) != 1 || got[0] != "so" {
		t.Fatalf("vars = %v", got)
	}
	// Alphabet: bound begin, bound end, site, the MAC check.
	if len(auto.Symbols) != 4 {
		t.Fatalf("symbols = %v", auto.Symbols)
	}
	if auto.BoundBegin().Fn != spec.SyscallFn || auto.BoundBegin().Kind != KindBoundBegin {
		t.Errorf("bound begin = %+v", auto.BoundBegin())
	}
	if auto.Site().Flags&core.SymRequired == 0 {
		t.Error("site must be required")
	}
	check := auto.Symbols[3]
	if check.Kind != KindFuncExit || check.Fn != "mac_socket_check_poll" {
		t.Errorf("check symbol = %+v", check)
	}
	if check.Ret == nil || check.Ret.Const != 0 {
		t.Errorf("check ret = %v", check.Ret)
	}
	if check.ProvidesMask != 1 || len(check.Captures) != 1 || check.Captures[0] != (SlotCapture{Slot: 0, Src: CapArg, Index: 1}) {
		t.Errorf("check captures = %v mask=%b", check.Captures, check.ProvidesMask)
	}

	// Init creates in Start; cleanup exists from Start (bypass), from the
	// post-check state and from the post-site state.
	if len(auto.Trans[boundBeginID]) != 1 || !auto.Trans[boundBeginID][0].Init() {
		t.Errorf("init transitions = %v", auto.Trans[boundBeginID])
	}
	if len(auto.Trans[boundEndID]) < 3 {
		t.Errorf("cleanup transitions = %v", auto.Trans[boundEndID])
	}
}

func TestPreviouslyOrdering(t *testing.T) {
	auto := compileSrc(t, "prev", `TESLA_WITHIN(f, previously(check() == 0))`, nil)
	check := auto.SymbolByName("check() == 0")
	if check == nil {
		t.Fatal("check symbol missing")
	}
	site := siteSymbolID

	// check → site: accepted.
	if ok, vs := runString(auto, []int{check.ID, site}); !ok || len(vs) != 0 {
		t.Errorf("check,site: ok=%v vs=%v", ok, vs)
	}
	// site without check: NoInstance violation at the site.
	if _, vs := runString(auto, []int{site}); len(vs) != 1 || vs[0].Kind != core.VerdictNoInstance {
		t.Errorf("site alone: %v", vs)
	}
	// check after site: violation (previously means before).
	if _, vs := runString(auto, []int{check.ID, site, check.ID}); len(vs) != 0 {
		// extra check after site is irrelevant in conditional mode
		t.Errorf("check,site,check: %v", vs)
	}
	if _, vs := runString(auto, []int{site, check.ID}); len(vs) == 0 {
		t.Error("site before check must fail")
	}
	// bound without touching the site: bypass, no violation.
	if _, vs := runString(auto, nil); len(vs) != 0 {
		t.Errorf("empty bound: %v", vs)
	}
	// check alone, never reaching the site: bypass, no violation.
	if _, vs := runString(auto, []int{check.ID}); len(vs) != 0 {
		t.Errorf("check alone: %v", vs)
	}
}

func TestEventuallyOrdering(t *testing.T) {
	auto := compileSrc(t, "ev", `TESLA_WITHIN(f, eventually(audit() == 0))`, nil)
	audit := auto.SymbolByName("audit() == 0")
	site := siteSymbolID

	// site → audit: accepted.
	if ok, vs := runString(auto, []int{site, audit.ID}); !ok || len(vs) != 0 {
		t.Errorf("site,audit: ok=%v vs=%v", ok, vs)
	}
	// site, no audit before cleanup: incomplete.
	if _, vs := runString(auto, []int{site}); len(vs) != 1 || vs[0].Kind != core.VerdictIncomplete {
		t.Errorf("site alone: %v", vs)
	}
	// never reaching the site: bypass.
	if _, vs := runString(auto, nil); len(vs) != 0 {
		t.Errorf("empty: %v", vs)
	}
}

func TestSequenceSubsequenceSemantics(t *testing.T) {
	auto := compileSrc(t, "seq", `TESLA_WITHIN(f, previously(a(), b()))`, nil)
	a := auto.SymbolByName("call(a())")
	b := auto.SymbolByName("call(b())")
	if a == nil || b == nil {
		t.Fatalf("symbols: %v", auto.Symbols)
	}
	site := siteSymbolID

	cases := []struct {
		seq  []int
		pass bool
	}{
		{[]int{a.ID, b.ID, site}, true},
		{[]int{b.ID, a.ID, b.ID, site}, true}, // a,b occurs as a subsequence
		{[]int{a.ID, site}, false},
		{[]int{b.ID, site}, false},
		{[]int{b.ID, a.ID, site}, false},
		{[]int{a.ID, a.ID, b.ID, site}, true},
	}
	for i, c := range cases {
		_, vs := runString(auto, c.seq)
		if pass := len(vs) == 0; pass != c.pass {
			t.Errorf("case %d (%v): pass=%v want %v (%v)", i, c.seq, pass, c.pass, vs)
		}
	}
}

func TestOrBranches(t *testing.T) {
	// Figure 7 shape: three alternative justifications for a read.
	env := &spec.Env{Consts: map[string]int64{"IO_NOMACCHECK": 0x80}}
	auto := compileSrc(t, "fig7", `TESLA_SYSCALL(incallstack(ufs_readdir)
		|| previously(called(vn_rdwr(flags(IO_NOMACCHECK))))
		|| previously(mac_vnode_check_read() == 0))`, env)

	ics := auto.SymbolByName("incallstack(ufs_readdir)")
	rdwr := auto.SymbolByName("call(vn_rdwr(flags(0x80)))")
	mac := auto.SymbolByName("mac_vnode_check_read() == 0")
	if ics == nil || rdwr == nil || mac == nil {
		t.Fatalf("symbols: %v", auto.Symbols)
	}
	site := siteSymbolID

	// Each branch alone satisfies the assertion.
	for _, pre := range []int{ics.ID, rdwr.ID, mac.ID} {
		if _, vs := runString(auto, []int{pre, site}); len(vs) != 0 {
			t.Errorf("branch %d: %v", pre, vs)
		}
	}
	// It is not an error for two branches to fire (inclusive or).
	if _, vs := runString(auto, []int{rdwr.ID, mac.ID, site}); len(vs) != 0 {
		t.Errorf("two branches: %v", vs)
	}
	// No branch: violation at site.
	if _, vs := runString(auto, []int{site}); len(vs) != 1 || vs[0].Kind != core.VerdictNoInstance {
		t.Errorf("no branch: %v", vs)
	}
}

func TestOptional(t *testing.T) {
	auto := compileSrc(t, "opt", `TESLA_WITHIN(f, previously(a(), optional(b()), c()))`, nil)
	a := auto.SymbolByName("call(a())")
	b := auto.SymbolByName("call(b())")
	c := auto.SymbolByName("call(c())")
	site := siteSymbolID

	if _, vs := runString(auto, []int{a.ID, b.ID, c.ID, site}); len(vs) != 0 {
		t.Errorf("a,b,c: %v", vs)
	}
	if _, vs := runString(auto, []int{a.ID, c.ID, site}); len(vs) != 0 {
		t.Errorf("a,c: %v", vs)
	}
	if _, vs := runString(auto, []int{a.ID, b.ID, site}); len(vs) == 0 {
		t.Error("a,b must fail (c missing)")
	}
}

func TestATLeast(t *testing.T) {
	auto := compileSrc(t, "al", `TESLA_WITHIN(f, previously(ATLEAST(2, call(p), call(q))))`, nil)
	p := auto.SymbolByName("call(p())")
	q := auto.SymbolByName("call(q())")
	site := siteSymbolID

	cases := []struct {
		seq  []int
		pass bool
	}{
		{[]int{p.ID, q.ID, site}, true},
		{[]int{p.ID, p.ID, site}, true},
		{[]int{q.ID, p.ID, q.ID, site}, true}, // more than the minimum
		{[]int{p.ID, site}, false},
		{[]int{site}, false},
	}
	for i, c := range cases {
		_, vs := runString(auto, c.seq)
		if pass := len(vs) == 0; pass != c.pass {
			t.Errorf("case %d: pass=%v want %v (%v)", i, pass, c.pass, vs)
		}
	}
}

func TestATLeastZeroTracing(t *testing.T) {
	// ATLEAST(0, …) — the fig. 8 tracing construct: everything passes,
	// and each occurrence is an observable transition (explicit
	// self-loops survive determinisation).
	auto := compileSrc(t, "al0", `TESLA_WITHIN(f, previously(ATLEAST(0, call(p), call(q))))`, nil)
	p := auto.SymbolByName("call(p())")
	if len(auto.Trans[p.ID]) == 0 {
		t.Fatal("ATLEAST(0) must keep explicit self-loop transitions for tracing")
	}

	h := core.NewCountingHandler()
	s := core.NewStore(core.PerThread, h)
	s.Register(auto.Class)
	s.UpdateState(auto.Class, "b", 0, core.AnyKey, auto.Trans[boundBeginID])
	for i := 0; i < 5; i++ {
		s.UpdateState(auto.Class, auto.Symbols[p.ID].Name, 0, core.AnyKey, auto.Trans[p.ID])
	}
	s.UpdateState(auto.Class, "site", core.SymRequired, core.AnyKey, auto.Trans[siteSymbolID])
	s.UpdateState(auto.Class, "e", 0, core.AnyKey, auto.Trans[boundEndID])
	if len(h.Violations()) != 0 {
		t.Fatalf("violations: %v", h.Violations())
	}
	var loops uint64
	for e, n := range h.Edges() {
		if e.Symbol == "call(p())" {
			loops += n
		}
	}
	if loops != 5 {
		t.Errorf("p transitions observed = %d, want 5", loops)
	}
}

func TestStrictRejectsSurplus(t *testing.T) {
	a, err := spec.Parse("strict", `TESLA_WITHIN(f, strict(previously(a(), b())))`, nil)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	sa := auto.SymbolByName("call(a())")
	sb := auto.SymbolByName("call(b())")
	if sa.Flags&core.SymStrict == 0 {
		t.Fatal("strict flag not propagated to symbols")
	}
	// In-order passes.
	if _, vs := runString(auto, []int{sa.ID, sb.ID, siteSymbolID}); len(vs) != 0 {
		t.Errorf("in-order: %v", vs)
	}
	// Out-of-order b first: strict violation.
	if _, vs := runString(auto, []int{sb.ID, sa.ID, sb.ID, siteSymbolID}); len(vs) == 0 {
		t.Error("strict must reject out-of-order events")
	}
}

func TestVarCapacityExceeded(t *testing.T) {
	a, err := spec.Parse("big", `TESLA_WITHIN(f, previously(g(v1, v2, v3, v4, v5) == 0))`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(a); err == nil {
		t.Fatal("expected key-size error")
	}
}

func TestEmptyExpression(t *testing.T) {
	if _, err := Compile(&spec.Assertion{Name: "nil", Bound: spec.WithinBound("f")}); err == nil {
		t.Fatal("expected error for empty expression")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile(&spec.Assertion{Name: "nil", Bound: spec.WithinBound("f")})
}

func TestSiteNormalisation(t *testing.T) {
	// A bare expression without previously/eventually gets the site
	// appended, making TSEQUENCE(a, b) mean "a then b, both before here".
	auto := compileSrc(t, "bare", `TESLA_WITHIN(f, TSEQUENCE(call(a), call(b)))`, nil)
	a := auto.SymbolByName("call(a())")
	b := auto.SymbolByName("call(b())")
	if _, vs := runString(auto, []int{a.ID, b.ID, siteSymbolID}); len(vs) != 0 {
		t.Errorf("a,b,site: %v", vs)
	}
	if _, vs := runString(auto, []int{a.ID, siteSymbolID}); len(vs) == 0 {
		t.Error("incomplete sequence must fail at site")
	}
}

func TestDotOutput(t *testing.T) {
	auto := compileSrc(t, "dot", `TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)`, nil)
	plain := auto.Dot(nil)
	for _, want := range []string{"digraph", "«init»", "«cleanup»", "mac_socket_check_poll", "doublecircle"} {
		if !strings.Contains(plain, want) {
			t.Errorf("dot output missing %q:\n%s", want, plain)
		}
	}

	h := core.NewCountingHandler()
	s := core.NewStore(core.PerThread, h)
	s.Register(auto.Class)
	s.UpdateState(auto.Class, auto.Symbols[boundBeginID].Name, 0, core.AnyKey, auto.Trans[boundBeginID])
	s.UpdateState(auto.Class, auto.Symbols[3].Name, 0, core.NewKey(7), auto.Trans[3])
	weighted := auto.Dot(h.Edges())
	if !strings.Contains(weighted, "penwidth") || !strings.Contains(weighted, "xlabel") {
		t.Errorf("weighted dot missing weights:\n%s", weighted)
	}
}

// TestQuickDFAMatchesNFA: the subset-constructed DFA accepts exactly the
// strings the ε-NFA accepts, under both conditional and strict semantics.
func TestQuickDFAMatchesNFA(t *testing.T) {
	srcs := []string{
		`TESLA_WITHIN(f, previously(a(), b()))`,
		`TESLA_WITHIN(f, previously(a() || b()))`,
		`TESLA_WITHIN(f, previously(a(), optional(b()), c()))`,
		`TESLA_WITHIN(f, previously(ATLEAST(2, call(p), call(q))))`,
		`TESLA_WITHIN(f, eventually(a(), b()))`,
		`TESLA_WITHIN(f, strict(previously(a(), b())))`,
		`TESLA_WITHIN(f, (previously(a()) || previously(b(), c())))`,
	}
	for _, src := range srcs {
		sp, err := spec.Parse("q", src, nil)
		if err != nil {
			t.Fatal(err)
		}
		auto, err := Compile(sp)
		if err != nil {
			t.Fatal(err)
		}
		nsyms := len(auto.Symbols)

		// DFA acceptance: simulate the transition table directly.
		dfaAccepts := func(seq []int) bool {
			state := auto.Start
			for _, sym := range seq {
				var next uint32
				found := false
				for _, tr := range auto.Trans[sym] {
					if tr.From == state {
						next = tr.To
						found = true
						break
					}
				}
				if found {
					state = next
					continue
				}
				// No transition: required or strict events kill
				// the run; others are ignored.
				if auto.Symbols[sym].Flags&(core.SymRequired|core.SymStrict) != 0 {
					return false
				}
			}
			for _, tr := range auto.Trans[boundEndID] {
				if tr.From == state {
					return true
				}
			}
			return false
		}

		rng := rand.New(rand.NewSource(42))
		f := func() bool {
			n := rng.Intn(8)
			seq := make([]int, n)
			for i := range seq {
				seq[i] = 3 + rng.Intn(nsyms-3) // event symbols
			}
			// Half the runs include the site somewhere.
			if rng.Intn(2) == 0 && n > 0 {
				seq[rng.Intn(n)] = siteSymbolID
			}
			nfaOK := auto.nfa.accepts(seq, sp.Strict)
			dfaOK := dfaAccepts(seq)
			if nfaOK != dfaOK {
				t.Logf("%s: seq=%v nfa=%v dfa=%v", src, seq, nfaOK, dfaOK)
			}
			return nfaOK == dfaOK
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

// TestQuickOrIsCrossProduct validates the §3.4.2 semantics: the compiled
// a∨b automaton accepts a run exactly when the automaton for a alone or the
// automaton for b alone accepts it — the observable property of the paper's
// cross-product construction states(a ∨ b) = {aᵢbⱼ}, which this
// implementation achieves by tracking both operands simultaneously in
// subset construction.
func TestQuickOrIsCrossProduct(t *testing.T) {
	operands := [][2]string{
		{`previously(a(), b())`, `previously(c())`},
		{`previously(a())`, `previously(b(), c())`},
		{`previously(a(), c())`, `previously(b(), c())`}, // shared symbol
	}
	for _, ops := range operands {
		or := compileSrc(t, "or", `TESLA_WITHIN(f, (`+ops[0]+` || `+ops[1]+`))`, nil)
		la := compileSrc(t, "la", `TESLA_WITHIN(f, `+ops[0]+`)`, nil)
		lb := compileSrc(t, "lb", `TESLA_WITHIN(f, `+ops[1]+`)`, nil)

		// Map the OR automaton's event symbols to each operand's (by
		// display name; missing = irrelevant to that operand).
		lookup := func(auto *Automaton, name string) int {
			if s := auto.SymbolByName(name); s != nil {
				return s.ID
			}
			return -1
		}

		rng := rand.New(rand.NewSource(21))
		f := func() bool {
			n := rng.Intn(7)
			seq := make([]int, 0, n+1)
			for i := 0; i < n; i++ {
				seq = append(seq, 3+rng.Intn(len(or.Symbols)-3))
			}
			seq = append(seq, siteSymbolID) // always reach the site

			passes := func(auto *Automaton, names []string) bool {
				_, vs := runStringNames(auto, names)
				return len(vs) == 0
			}
			names := make([]string, len(seq))
			for i, sym := range seq {
				names[i] = or.Symbols[sym].Name
			}
			_ = lookup
			orOK := passes(or, names)
			aOK := passes(la, names)
			bOK := passes(lb, names)
			if orOK != (aOK || bOK) {
				t.Logf("ops=%v seq=%v or=%v a=%v b=%v", ops, names, orOK, aOK, bOK)
			}
			return orOK == (aOK || bOK)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", ops, err)
		}
	}
}

// runStringNames drives events by display name, skipping names the
// automaton does not know (irrelevant events).
func runStringNames(auto *Automaton, names []string) (bool, []*core.Violation) {
	h := core.NewCountingHandler()
	s := core.NewStore(core.PerThread, h)
	s.Register(auto.Class)
	begin, end := auto.BoundBegin(), auto.BoundEnd()
	s.UpdateState(auto.Class, begin.Name, begin.Flags, core.AnyKey, auto.Trans[begin.ID])
	for _, name := range names {
		if name == "«assertion»" {
			site := auto.Site()
			s.UpdateState(auto.Class, site.Name, site.Flags, core.AnyKey, auto.Trans[site.ID])
			continue
		}
		sym := auto.SymbolByName(name)
		if sym == nil {
			continue
		}
		s.UpdateState(auto.Class, sym.Name, sym.Flags, core.AnyKey, auto.Trans[sym.ID])
	}
	s.UpdateState(auto.Class, end.Name, end.Flags, core.AnyKey, auto.Trans[end.ID])
	return h.Accepts(auto.Name) > 0, h.Violations()
}

// TestXorStrictness: in conditional mode ^ behaves like || (at least one
// operand); under strict, the surplus operand's events are violations —
// the behavioural distinction between the two operators.
func TestXorStrictness(t *testing.T) {
	lax := compileSrc(t, "xl", `TESLA_WITHIN(f, (previously(a()) ^ previously(b())))`, nil)
	a := lax.SymbolByName("call(a())")
	b := lax.SymbolByName("call(b())")
	if _, vs := runString(lax, []int{a.ID, siteSymbolID}); len(vs) != 0 {
		t.Fatalf("one branch: %v", vs)
	}
	if _, vs := runString(lax, []int{a.ID, b.ID, siteSymbolID}); len(vs) != 0 {
		t.Fatalf("conditional xor tolerates both: %v", vs)
	}

	strict := compileSrc(t, "xs", `TESLA_WITHIN(f, strict((previously(a()) ^ previously(b()))))`, nil)
	sa := strict.SymbolByName("call(a())")
	sb := strict.SymbolByName("call(b())")
	if _, vs := runString(strict, []int{sa.ID, siteSymbolID}); len(vs) != 0 {
		t.Fatalf("strict one branch: %v", vs)
	}
	if _, vs := runString(strict, []int{sa.ID, sb.ID, siteSymbolID}); len(vs) == 0 {
		t.Fatal("strict xor must reject both branches occurring")
	}
}
